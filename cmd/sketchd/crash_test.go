package main

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"setsketch/internal/datagen"
	"setsketch/internal/distributed"
	"setsketch/internal/obs"
	"setsketch/internal/wal"
)

// crashBatches is the known workload of the crash-recovery test:
// deterministic, overlapping streams so intersection/difference
// queries have non-trivial answers, split into uniform batches so the
// applied prefix after a crash can be measured in whole batches.
func crashBatches() [][]datagen.Update {
	const (
		batches   = 60
		batchSize = 50
	)
	out := make([][]datagen.Update, 0, batches)
	n := uint64(0)
	for b := 0; b < batches; b++ {
		ups := make([]datagen.Update, 0, batchSize)
		for i := 0; i < batchSize; i++ {
			e := n
			n++
			ups = append(ups, datagen.Update{Stream: "A", Elem: e % 1200, Delta: 1})
			if e%2 == 0 {
				ups = append(ups, datagen.Update{Stream: "B", Elem: (e + 300) % 1200, Delta: 1})
			}
			if e%5 == 0 {
				ups = append(ups, datagen.Update{Stream: "C", Elem: e % 400, Delta: 1})
			}
			if len(ups) >= batchSize {
				break
			}
		}
		out = append(out, ups[:batchSize:batchSize])
	}
	return out
}

// TestHelperDaemon is not a test: it is the daemon child process of
// TestCrashRecoveryBitIdentical (the standard re-exec helper-process
// pattern), so the parent has a real PID to kill -9. It serves with a
// WAL until killed, publishing its listen and admin addresses through
// a file the parent polls.
func TestHelperDaemon(t *testing.T) {
	walDir := os.Getenv("SKETCHD_HELPER_WAL_DIR")
	addrFile := os.Getenv("SKETCHD_HELPER_ADDR_FILE")
	if walDir == "" || addrFile == "" {
		t.Skip("helper process for the crash-recovery test; not a test")
	}
	// Optional shard/cache layout overrides, so the crash tests can
	// crash under one layout and recover under another.
	shards, _ := strconv.Atoi(os.Getenv("SKETCHD_HELPER_SHARDS"))
	dcache, _ := strconv.Atoi(os.Getenv("SKETCHD_HELPER_DIGEST_CACHE"))
	d, err := startDaemon(daemonConfig{
		Listen:           "127.0.0.1:0",
		AdminAddr:        "127.0.0.1:0",
		Coins:            testCoins(),
		Log:              obs.NewLogger(os.Stderr, obs.LevelWarn),
		WALDir:           walDir,
		Fsync:            "always",
		SegmentSize:      256 << 10, // small: the workload spans several segments
		SnapshotInterval: 75 * time.Millisecond,
		Shards:           shards,
		DigestCache:      dcache,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "helper:", err)
		os.Exit(1)
	}
	// Atomic publish so the parent never reads a partial write.
	tmp := addrFile + ".tmp"
	if err := os.WriteFile(tmp, []byte(d.Addr()+"\n"+d.AdminAddr()+"\n"), 0o644); err != nil {
		os.Exit(1)
	}
	if err := os.Rename(tmp, addrFile); err != nil {
		os.Exit(1)
	}
	d.Wait() // until SIGKILL
}

// startHelperDaemon re-execs the test binary as a daemon child on the
// given WAL dir and returns the process plus its listen/admin
// addresses. extraEnv entries ("KEY=value") configure the helper's
// daemon beyond the defaults.
func startHelperDaemon(t *testing.T, walDir string, extraEnv ...string) (*exec.Cmd, string, string) {
	t.Helper()
	addrFile := filepath.Join(t.TempDir(), "addr")
	cmd := exec.Command(os.Args[0], "-test.run=^TestHelperDaemon$", "-test.v")
	cmd.Env = append(os.Environ(),
		"SKETCHD_HELPER_WAL_DIR="+walDir,
		"SKETCHD_HELPER_ADDR_FILE="+addrFile,
	)
	cmd.Env = append(cmd.Env, extraEnv...)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	deadline := time.Now().Add(20 * time.Second)
	for {
		if data, err := os.ReadFile(addrFile); err == nil {
			lines := strings.Split(strings.TrimSpace(string(data)), "\n")
			if len(lines) == 2 {
				return cmd, lines[0], lines[1]
			}
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			t.Fatal("helper daemon never published its address")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// appliedUpdates reads coord_updates_credited_total from a daemon's
// admin endpoint: after recovery this is exactly the durable prefix.
func appliedUpdates(t *testing.T, adminAddr string) uint64 {
	t.Helper()
	status, _, body := httpGet(t, "http://"+adminAddr+"/metrics")
	if status != 200 {
		t.Fatalf("/metrics status %d", status)
	}
	return uint64(metricValue(t, body, "coord_updates_credited_total"))
}

// TestCrashRecoveryBitIdentical is the tentpole acceptance test: a
// daemon ingesting a known stream is hard-killed (SIGKILL) mid-batch,
// a torn final record is simulated on top, and after restart +
// exactly-once resume the estimates are bit-identical to an
// uninterrupted run over the same input.
//
// Exactly-once resume works because the layers compose: fsync=always
// means every acked batch is durable before its ack; the recovered
// daemon's coord_updates_credited_total therefore names the durable
// prefix in whole batches (each batch is one atomic WAL record), and
// the client resends everything after it.
func TestCrashRecoveryBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("re-execs the test binary; skipped in -short")
	}
	walDir := t.TempDir()
	batches := crashBatches()
	batchSize := uint64(len(batches[0]))

	// Crash under a sharded layout with the coordinator digest cache
	// armed; recover below under the unsharded layout with the cache
	// off. The WAL is layout-independent (FNV routing is a pure
	// function of the stream name), so recovery must rebuild identical
	// state regardless.
	cmd, addr, _ := startHelperDaemon(t, walDir,
		"SKETCHD_HELPER_SHARDS=4", "SKETCHD_HELPER_DIGEST_CACHE=1024")

	// Ingest until the connection dies under us: a goroutine SIGKILLs
	// the daemon once roughly half the workload is acked, so the kill
	// lands while batches are actively in flight.
	cli, err := distributed.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := cli.OpenStream("edge1", testCoins())
	if err != nil {
		t.Fatal(err)
	}
	ackedCh := make(chan int, len(batches))
	killed := make(chan struct{})
	go func() {
		defer close(killed)
		n := 0
		for range ackedCh {
			n++
			if n == len(batches)/2 {
				cmd.Process.Kill() // SIGKILL: no shutdown path runs
				return
			}
		}
	}()
	acked := 0
	for _, b := range batches {
		if _, err := sess.SendUpdates(b); err != nil {
			break
		}
		acked++
		ackedCh <- acked
	}
	close(ackedCh)
	<-killed
	cli.Close()
	cmd.Wait()
	if acked == 0 || acked == len(batches) {
		t.Fatalf("kill did not land mid-ingest: %d/%d batches acked", acked, len(batches))
	}

	// Simulate the torn write a real crash can leave: a partial frame
	// at the tail of the newest segment. Recovery must truncate it, not
	// fail.
	segs, err := filepath.Glob(filepath.Join(walDir, "*.wal"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no WAL segments in %s: %v", walDir, err)
	}
	sort.Strings(segs)
	f, err := os.OpenFile(segs[len(segs)-1], os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x40, 0x00, 0x00}); err != nil { // 3 of 8 header bytes
		t.Fatal(err)
	}
	f.Close()

	// Restart on the same WAL dir under a different shard layout;
	// recovery = snapshot + suffix replay.
	cmd2, addr2, admin2 := startHelperDaemon(t, walDir,
		"SKETCHD_HELPER_SHARDS=1", "SKETCHD_HELPER_DIGEST_CACHE=-1")
	applied := appliedUpdates(t, admin2)
	if applied%batchSize != 0 {
		t.Fatalf("recovered %d updates: not a whole number of %d-update batches", applied, batchSize)
	}
	appliedBatches := int(applied / batchSize)
	if appliedBatches < acked {
		t.Fatalf("durability lost acked work: %d batches acked, only %d recovered", acked, appliedBatches)
	}
	if appliedBatches > len(batches) {
		t.Fatalf("recovered %d batches, only %d were ever sent", appliedBatches, len(batches))
	}

	// Exactly-once resume: send everything past the durable prefix.
	cli2, err := distributed.Dial(addr2)
	if err != nil {
		t.Fatal(err)
	}
	defer cli2.Close()
	sess2, err := cli2.OpenStream("edge1", testCoins())
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range batches[appliedBatches:] {
		if _, err := sess2.SendUpdates(b); err != nil {
			t.Fatal(err)
		}
	}

	// Uninterrupted control run over the identical input.
	control, err := distributed.NewCoordinator(testCoins())
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range batches {
		if err := control.ApplyUpdates("edge1", b); err != nil {
			t.Fatal(err)
		}
	}

	for _, expr := range []string{"A & B", "A | B | C", "(A | B) - C"} {
		got, err := cli2.Query(expr, 0.2)
		if err != nil {
			t.Fatalf("query %q after recovery: %v", expr, err)
		}
		want, err := control.Estimate(expr, 0.2)
		if err != nil {
			t.Fatal(err)
		}
		if got.Value != want.Value || got.StdError != want.StdError ||
			got.Union != want.Union || got.Level != want.Level ||
			got.Valid != want.Valid || got.Witnesses != want.Witnesses {
			t.Errorf("estimate %q diverges after crash recovery:\n got %+v\nwant %+v", expr, got, want)
		}
	}

	cmd2.Process.Kill()
	cmd2.Wait()
}

// TestViewCatalogSurvivesCrash: continuous views registered over the
// wire must survive kill -9 — the catalog rides the WAL (RecView
// records plus the snapshot's view list) and recovery re-registers it,
// after which the views evaluate over the replayed updates.
func TestViewCatalogSurvivesCrash(t *testing.T) {
	if testing.Short() {
		t.Skip("re-execs the test binary; skipped in -short")
	}
	walDir := t.TempDir()
	cmd, addr, _ := startHelperDaemon(t, walDir)

	cli, err := distributed.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	stmts := []string{
		"CREATE VIEW total AS (A | B)",
		"CREATE VIEW per AS logins WINDOW 10m SLIDE 1m GROUP BY tenant EMIT ISTREAM",
		"CREATE VIEW doomed AS A",
	}
	for _, s := range stmts {
		if err := cli.CreateView(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := cli.DropView("doomed"); err != nil {
		t.Fatal(err)
	}
	sess, err := cli.OpenStream("edge1", testCoins())
	if err != nil {
		t.Fatal(err)
	}
	var ups []datagen.Update
	for i := 0; i < 500; i++ {
		ups = append(ups,
			datagen.Update{Stream: "A", Elem: uint64(i), Delta: 1},
			datagen.Update{Stream: "acme:logins", Elem: uint64(i), Delta: 1})
	}
	if _, err := sess.SendUpdates(ups); err != nil {
		t.Fatal(err)
	}

	cmd.Process.Kill() // SIGKILL: no shutdown path runs
	cmd.Wait()
	cli.Close()

	cmd2, addr2, _ := startHelperDaemon(t, walDir)
	defer func() {
		cmd2.Process.Kill()
		cmd2.Wait()
	}()
	cli2, err := distributed.Dial(addr2)
	if err != nil {
		t.Fatal(err)
	}
	defer cli2.Close()
	got, err := cli2.ListViews()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"CREATE VIEW per AS logins WINDOW 10m SLIDE 1m GROUP BY tenant EMIT ISTREAM",
		"CREATE VIEW total AS (A | B)",
	}
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Fatalf("catalog after crash:\n%s\nwant:\n%s",
			strings.Join(got, "\n"), strings.Join(want, "\n"))
	}

	// The recovered views evaluate over the replayed updates: the
	// ungrouped view sees stream A, the grouped view its acme group.
	events, err := cli2.Subscribe(distributed.WatchRequest{
		Views: []string{"total", "per"}, Eps: 0.2, EveryUpdates: 1, Interval: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.After(10 * time.Second)
	seen := map[string]float64{}
	for len(seen) < 2 {
		select {
		case ev, ok := <-events:
			if !ok || ev.Terminal {
				t.Fatalf("watch ended early: %+v (seen %v)", ev, seen)
			}
			if ev.Err != "" {
				t.Fatalf("view round error after recovery: %s", ev.Err)
			}
			key := ev.View
			if ev.Group != "" {
				key += ":" + ev.Group
			}
			seen[key] = ev.Est.Value
		case <-deadline:
			t.Fatalf("timed out waiting for view rounds (seen %v)", seen)
		}
	}
	if seen["total"] <= 0 || seen["per:acme"] <= 0 {
		t.Errorf("recovered views estimate nothing: %v", seen)
	}
}

// captureStdout runs fn with os.Stdout redirected to a pipe and
// returns what it printed.
func captureStdout(t *testing.T, fn func() error) string {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = w
	done := make(chan string, 1)
	go func() {
		var b strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := r.Read(buf)
			b.Write(buf[:n])
			if err != nil {
				done <- b.String()
				return
			}
		}
	}()
	ferr := fn()
	w.Close()
	os.Stdout = old
	out := <-done
	r.Close()
	if ferr != nil {
		t.Fatalf("inspect failed: %v\noutput:\n%s", ferr, out)
	}
	return out
}

// TestInspectWALCorruptSegment is the inspect acceptance criterion:
// on a deliberately corrupted segment, `sketchd inspect wal` reports
// the intact record count and the exact truncation point.
func TestInspectWALCorruptSegment(t *testing.T) {
	dir := t.TempDir()
	coins := testCoins()
	l, err := wal.Open(dir, wal.Options{
		Config: coins.Config,
		Seed:   coins.Seed,
		Copies: coins.Copies,
		Sync:   wal.SyncAlways,
	})
	if err != nil {
		t.Fatal(err)
	}
	append1 := func(elem uint64) {
		t.Helper()
		if _, err := l.Append(&wal.Record{
			Type: wal.RecUpdates, Site: "edge", Count: 1,
			Updates: []datagen.Update{{Stream: "A", Elem: elem, Delta: 1}},
		}); err != nil {
			t.Fatal(err)
		}
	}
	segPath := func() string {
		t.Helper()
		segs, err := filepath.Glob(filepath.Join(dir, "*.wal"))
		if err != nil || len(segs) != 1 {
			t.Fatalf("want exactly one segment, got %v (%v)", segs, err)
		}
		return segs[0]
	}
	append1(1)
	append1(2)
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(segPath())
	if err != nil {
		t.Fatal(err)
	}
	sizeAfter2 := st.Size()
	append1(3)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip one byte inside the third record's body: its CRC no longer
	// matches, so records 1..2 are the intact prefix and recovery
	// truncates exactly where record 3's frame began.
	path := segPath()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(data)) <= sizeAfter2 {
		t.Fatalf("segment did not grow past record 2: %d <= %d", len(data), sizeAfter2)
	}
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	out := captureStdout(t, func() error {
		return runInspect([]string{"wal", "-dir", dir})
	})
	for _, want := range []string{
		"seq 1..2, 2 records",
		"CORRUPT:",
		fmt.Sprintf("intact through seq 2; recovery truncates at offset %d", sizeAfter2),
		"1 corrupt segment(s)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("inspect output missing %q:\n%s", want, out)
		}
	}

	// And recovery agrees: reopening truncates the corrupt suffix and
	// the log continues from seq 3.
	l2, err := wal.Open(dir, wal.Options{
		Config: coins.Config,
		Seed:   coins.Seed,
		Copies: coins.Copies,
		Sync:   wal.SyncAlways,
	})
	if err != nil {
		t.Fatalf("reopen after corruption: %v", err)
	}
	defer l2.Close()
	if got := l2.LastSeq(); got != 2 {
		t.Errorf("reopened LastSeq = %d, want 2", got)
	}
	st, err = os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() != sizeAfter2 {
		t.Errorf("reopen truncated to %d bytes, want %d", st.Size(), sizeAfter2)
	}
}
