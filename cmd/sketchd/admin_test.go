package main

import (
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"setsketch/internal/datagen"
	"setsketch/internal/distributed"
	"setsketch/internal/ingest"
)

// metricValue extracts one sample from a Prometheus text exposition;
// series must be the exact series name including any labels.
func metricValue(t *testing.T, body, series string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, series+" ") {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimPrefix(line, series+" "), 64)
		if err != nil {
			t.Fatalf("unparsable sample %q: %v", line, err)
		}
		return v
	}
	t.Fatalf("series %q not in exposition:\n%s", series, body)
	return 0
}

func httpGet(t *testing.T, url string) (int, string, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), string(body)
}

// TestAdminEndpointIntegration is the acceptance path end to end: a
// daemon with -admin semantics serves /metrics, /healthz, and pprof; a
// streaming session drives the ingest engine and a standing watch; and
// the batch, frame, and watch-evaluation counters all read back
// nonzero through the exporter.
func TestAdminEndpointIntegration(t *testing.T) {
	coins := testCoins()
	d, err := startDaemon(daemonConfig{Listen: "127.0.0.1:0", AdminAddr: "127.0.0.1:0", Coins: coins})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	base := "http://" + d.AdminAddr()

	// Standing continuous query, registered before any updates flow.
	wcli, err := distributed.Dial(d.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer wcli.Close()
	events, err := wcli.Watch([]string{"A & B"}, 0.3, 100, 0)
	if err != nil {
		t.Fatal(err)
	}

	// Site side: sharded ingest engine sharing the daemon's registry, so
	// one exporter covers the whole pipeline in-process.
	eng, err := ingest.New(coins.Config, coins.Seed, coins.Copies,
		ingest.Options{Workers: 2, BatchSize: 32, Obs: d.Reg})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	for e := uint64(0); e < 400; e++ {
		ups := []datagen.Update{{Stream: "A", Elem: e, Delta: 1}}
		if e >= 150 {
			ups = append(ups, datagen.Update{Stream: "B", Elem: e, Delta: 1})
		}
		if err := eng.UpdateBatch(ups); err != nil {
			t.Fatal(err)
		}
	}
	scli, err := distributed.Dial(d.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer scli.Close()
	sess, err := scli.OpenStream("edge", coins)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.SendFlush(eng.Flush(), eng.Accepted()); err != nil {
		t.Fatal(err)
	}

	// The flush credited 400+ updates against the watch's every=100, so
	// at least one evaluation round streams back.
	select {
	case ev := <-events:
		if ev.Terminal {
			t.Fatalf("terminal watch event before shutdown: %q", ev.Err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no watch result within deadline")
	}

	status, ctype, body := httpGet(t, base+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("/metrics status %d", status)
	}
	if !strings.HasPrefix(ctype, "text/plain") {
		t.Errorf("/metrics content type %q, want text/plain", ctype)
	}
	if !strings.Contains(body, "# HELP") || !strings.Contains(body, "# TYPE") {
		t.Error("exposition lacks HELP/TYPE metadata")
	}
	for _, series := range []string{
		"ingest_batches_total",
		"ingest_updates_accepted_total",
		`stream_frames_received_total{type="delta"}`,
		`stream_frames_received_total{type="hello"}`,
		`stream_frames_sent_total{type="watch_result"}`,
		"watch_evaluations_total",
		"watch_rounds_total",
		"coord_deltas_merged_total",
		"stream_sessions_opened_total",
		"process_goroutines",
	} {
		if v := metricValue(t, body, series); v <= 0 {
			t.Errorf("%s = %v, want > 0", series, v)
		}
	}
	if v := metricValue(t, body, "stream_heartbeat_misses_total"); v != 0 {
		t.Errorf("heartbeat misses = %v, want 0", v)
	}

	status, _, health := httpGet(t, base+"/healthz")
	if status != http.StatusOK || strings.TrimSpace(health) != "ok" {
		t.Errorf("/healthz = %d %q, want 200 ok", status, health)
	}

	status, ctype, jbody := httpGet(t, base+"/metrics?format=json")
	if status != http.StatusOK || !strings.HasPrefix(ctype, "application/json") {
		t.Fatalf("/metrics?format=json = %d %q", status, ctype)
	}
	var parsed map[string]any
	if err := json.Unmarshal([]byte(jbody), &parsed); err != nil {
		t.Fatalf("JSON export does not parse: %v", err)
	}

	status, _, _ = httpGet(t, base+"/debug/pprof/cmdline")
	if status != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline status %d", status)
	}

	// Shutdown notifies the watcher with a terminal reason rather than
	// closing silently.
	d.Close()
	deadline := time.After(5 * time.Second)
	for {
		select {
		case ev, ok := <-events:
			if !ok {
				t.Fatal("watch channel closed without a terminal event")
			}
			if !ev.Terminal {
				continue // drain queued results
			}
			if !strings.Contains(ev.Err, "coordinator shutting down") {
				t.Errorf("terminal reason = %q, want coordinator shutdown", ev.Err)
			}
			if err := d.Wait(); err != nil {
				t.Errorf("Serve returned %v after Close", err)
			}
			return
		case <-deadline:
			t.Fatal("no terminal watch event after shutdown")
		}
	}
}
