// Command sketchd runs the distributed pieces of the paper's Figure 1
// architecture over TCP: a coordinator daemon that merges synopses and
// answers set-expression queries, site modes that summarize local
// update streams and ship them (one-shot or live), and query modes
// (point-in-time or standing).
//
//	sketchd serve  -listen :7070 [-admin :7071] [-log-level info] \
//	               [-idle-timeout 0] [-copies 512] [-s 32] [-seed 1] \
//	               [-wal-dir /var/lib/sketchd/wal] [-fsync always] \
//	               [-segment-size 16777216] [-snapshot-interval 1m] \
//	               [-cq-max-groups 4096] [-cq-group-sep :] \
//	               [-cq-rotate-interval 1s] [-shards 0] [-digest-cache 0] \
//	               [-mutex-profile-fraction 0] [-block-profile-rate 0]
//	sketchd push   -addr host:7070 -site edge1 -in updates.txt [...coins]
//	sketchd stream -addr host:7070 -site edge1 -in updates.txt \
//	               [-mode sketch|forward] [-workers N] [-flush-updates 10000] \
//	               [-wal-dir dir] [-fsync always] [-segment-size N] \
//	               [-admin :0] [-log-level info] [...coins]
//	sketchd query  -addr host:7070 -expr '(A & B) - C' [-eps 0.1]
//	sketchd watch  -addr host:7070 [-expr 'A & B'] [-view name] \
//	               [-eps 0.1] [-every 10000] [-interval 2s]
//	sketchd views  -addr host:7070 [-create 'CREATE VIEW ...'] [-drop name]
//	sketchd streams -addr host:7070
//	sketchd inspect wal -dir /var/lib/sketchd/wal
//
// push summarizes a whole file and ships the synopses once. stream
// keeps a session open and ships continuously: in sketch mode it runs
// the sharded ingest engine locally and flushes synopsis deltas
// (merged by linearity at the coordinator); in forward mode it relays
// raw update batches for the coordinator to sketch. watch registers
// standing continuous queries — ad-hoc expressions and/or continuous
// views — and prints each re-evaluation as the coordinator streams it
// back. views manages the coordinator's continuous-view catalog
// (CREATE VIEW statements with windows, groups, and emit modes — see
// QUERIES.md for the language).
//
// All parties must share the stored-coins parameters (-copies, -s,
// -wise, -seed); mismatches are rejected by the coordinator.
//
// With -admin, serve (and stream) additionally expose an operations
// endpoint — /metrics (Prometheus text or JSON), /healthz, and
// /debug/pprof/* — documented in OPERATIONS.md.
//
// With -wal-dir, serve write-ahead-logs every accepted mutation before
// applying it, snapshots merged state periodically, and on restart
// recovers bit-identical state (last snapshot + WAL suffix replay; see
// DESIGN.md "Durability"). The same flag on stream journals raw
// batches site-locally so a crashed site resends work the coordinator
// never acked. inspect wal dumps a WAL directory read-only: segments,
// record counts, snapshots, and the exact truncation point if a
// segment is corrupt.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"syscall"
	"time"

	"setsketch/internal/core"
	"setsketch/internal/cq"
	"setsketch/internal/datagen"
	"setsketch/internal/distributed"
	"setsketch/internal/ingest"
	"setsketch/internal/obs"
	"setsketch/internal/streamio"
	"setsketch/internal/wal"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "serve":
		err = runServe(os.Args[2:])
	case "push":
		err = runPush(os.Args[2:])
	case "stream":
		err = runStream(os.Args[2:])
	case "query":
		err = runQuery(os.Args[2:])
	case "watch":
		err = runWatch(os.Args[2:])
	case "views":
		err = runViews(os.Args[2:])
	case "streams":
		err = runStreams(os.Args[2:])
	case "inspect":
		err = runInspect(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "sketchd:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: sketchd {serve|push|stream|query|watch|views|streams|inspect} [flags]")
	os.Exit(2)
}

// coinFlags registers the shared stored-coins flags on a flag set.
func coinFlags(fs *flag.FlagSet) func() distributed.Coins {
	copies := fs.Int("copies", 512, "sketch copies r per stream")
	s := fs.Int("s", 32, "second-level hash functions")
	wise := fs.Int("wise", 8, "first-level independence degree")
	seed := fs.Uint64("seed", 1, "stored-coins master seed")
	return func() distributed.Coins {
		cfg := core.DefaultConfig()
		cfg.SecondLevel = *s
		cfg.FirstWise = *wise
		return distributed.Coins{Config: cfg, Seed: *seed, Copies: *copies}
	}
}

// logFlags registers the shared -log-level flag and returns a
// constructor for the process logger (writing logfmt to stderr).
func logFlags(fs *flag.FlagSet) func() (*obs.Logger, error) {
	level := fs.String("log-level", "info", "log level: debug, info, warn, or error")
	return func() (*obs.Logger, error) {
		lv, err := obs.ParseLevel(*level)
		if err != nil {
			return nil, err
		}
		return obs.NewLogger(os.Stderr, lv), nil
	}
}

// daemon is a running coordinator server plus its optional admin
// endpoint and durability layer, factored out of runServe so tests can
// start one in-process and read its metrics over HTTP.
type daemon struct {
	Coord *distributed.Coordinator
	Reg   *obs.Registry

	srv    *distributed.Server
	l      net.Listener
	admin  *http.Server
	adminL net.Listener
	done   chan error

	wlog *wal.Log
	snap *distributed.Snapshotter
	rot  *distributed.ViewRotator
	log  *obs.Logger
}

// daemonConfig configures startDaemon. The zero value (plus Listen and
// Coins) serves without admin endpoint, durability, or logging.
type daemonConfig struct {
	Listen      string
	AdminAddr   string // "" disables the admin endpoint
	Coins       distributed.Coins
	IdleTimeout time.Duration
	EstWorkers  int // witness-scan workers (0 = one per CPU, negative = serial)
	Log         *obs.Logger

	// WALDir enables durability: recovery on start (snapshot + WAL
	// suffix replay), write-ahead logging of every accepted mutation,
	// and periodic snapshots every SnapshotInterval (0 disables the
	// loop; a final snapshot is still written at clean shutdown).
	WALDir           string
	Fsync            string // "always", "never", or an interval duration
	SegmentSize      int64  // 0 = WAL default (16 MiB)
	SnapshotInterval time.Duration

	// Continuous-view engine knobs (see QUERIES.md). CQMaxGroups bounds
	// live groups per grouped view (0 = engine default 4096, negative =
	// unbounded); CQGroupSep is the group/stream separator in physical
	// stream names ("" = ":"); CQRotateInterval sweeps windowed views so
	// idle views still age (0 disables the sweep — updates and watch
	// rounds still rotate lazily).
	CQMaxGroups      int
	CQGroupSep       string
	CQRotateInterval time.Duration

	// Shards partitions coordinator state into this many lock stripes
	// (rounded up to a power of two; 0 = GOMAXPROCS-derived default;
	// 1 = the unsharded layout, bit-identical to the pre-sharding
	// coordinator). DigestCache arms the coordinator-side element-digest
	// cache on the raw-update path (0 = default 8192 entries, negative =
	// disabled).
	Shards      int
	DigestCache int

	// MutexProfileFraction and BlockProfileRate feed the corresponding
	// runtime profilers so /debug/pprof/mutex and /debug/pprof/block can
	// attribute lock contention (see OPERATIONS.md, "Walkthrough:
	// coordinator lock contention"). 0 leaves each profiler off.
	MutexProfileFraction int
	BlockProfileRate     int
}

// startDaemon listens, wires observability into the coordinator and
// server, recovers durable state when a WAL directory is configured,
// and begins serving.
func startDaemon(cfg daemonConfig) (*daemon, error) {
	if cfg.MutexProfileFraction > 0 {
		runtime.SetMutexProfileFraction(cfg.MutexProfileFraction)
	}
	if cfg.BlockProfileRate > 0 {
		runtime.SetBlockProfileRate(cfg.BlockProfileRate)
	}
	coord, err := distributed.NewCoordinator(cfg.Coins)
	if err != nil {
		return nil, err
	}
	// Repartition before anything can create state: resharding does not
	// migrate streams, so SetShards refuses once the coordinator holds
	// any.
	if cfg.Shards != 0 {
		if err := coord.SetShards(cfg.Shards); err != nil {
			return nil, err
		}
	}
	// Reconfigure the continuous-view engine before recovery so replayed
	// CREATE VIEW statements land in an engine with the right group
	// bound and separator.
	if cfg.CQMaxGroups != 0 || cfg.CQGroupSep != "" {
		if err := coord.SetCQOptions(cq.Options{MaxGroups: cfg.CQMaxGroups, GroupSep: cfg.CQGroupSep}); err != nil {
			return nil, err
		}
	}
	l, err := net.Listen("tcp", cfg.Listen)
	if err != nil {
		return nil, err
	}
	reg := obs.NewRegistry()
	coord.SetObservability(reg, cfg.Log)
	// After SetObservability: the cache binds the coord_digest_cache_*
	// counters at creation.
	coord.SetDigestCache(cfg.DigestCache)
	if cfg.EstWorkers != 0 {
		n := cfg.EstWorkers
		if n < 0 {
			n = 0 // serial
		}
		coord.SetEstimateOptions(core.EstimateOptions{Workers: n})
	}
	d := &daemon{Coord: coord, Reg: reg, l: l, done: make(chan error, 1), log: cfg.Log}
	if cfg.WALDir != "" {
		policy, ival, err := wal.ParseSyncPolicy(cfg.Fsync)
		if err != nil {
			l.Close()
			return nil, err
		}
		wlog, err := wal.Open(cfg.WALDir, wal.Options{
			Config:       cfg.Coins.Config,
			Seed:         cfg.Coins.Seed,
			Copies:       cfg.Coins.Copies,
			SegmentSize:  cfg.SegmentSize,
			Sync:         policy,
			SyncInterval: ival,
			Obs:          reg,
			Log:          cfg.Log,
		})
		if err != nil {
			l.Close()
			return nil, err
		}
		rs, err := coord.Recover(wlog)
		if err != nil {
			wlog.Close()
			l.Close()
			return nil, fmt.Errorf("wal recovery: %w", err)
		}
		coord.AttachWAL(wlog)
		d.wlog = wlog
		d.snap = distributed.StartSnapshotter(coord, cfg.SnapshotInterval, cfg.Log)
		cfg.Log.Info("durability enabled", "wal_dir", cfg.WALDir, "fsync", policy.String(),
			"snapshot_seq", rs.SnapshotSeq, "replayed_records", rs.Replayed.Records,
			"replayed_updates", rs.Replayed.Updates, "last_seq", wlog.LastSeq())
	}
	d.rot = distributed.StartViewRotator(coord, cfg.CQRotateInterval)
	srv := distributed.NewServer(coord)
	srv.IdleTimeout = cfg.IdleTimeout
	srv.SetObservability(reg, cfg.Log)
	d.srv = srv
	if cfg.AdminAddr != "" {
		al, err := net.Listen("tcp", cfg.AdminAddr)
		if err != nil {
			if d.wlog != nil {
				d.wlog.Close()
			}
			l.Close()
			return nil, fmt.Errorf("admin endpoint: %w", err)
		}
		d.adminL = al
		d.admin = &http.Server{Handler: obs.AdminMux(reg, func() error { return nil })}
		go d.admin.Serve(al)
	}
	go func() { d.done <- srv.Serve(l) }()
	return d, nil
}

// Addr returns the coordinator's listen address.
func (d *daemon) Addr() string { return d.l.Addr().String() }

// AdminAddr returns the admin endpoint's address, or "" if disabled.
func (d *daemon) AdminAddr() string {
	if d.adminL == nil {
		return ""
	}
	return d.adminL.Addr().String()
}

// Close stops both listeners and tears down connections; watch
// clients receive a terminal shutdown reason first (see Server.Close).
// With durability enabled the server drain completes before the final
// snapshot is written and the WAL is synced and closed, so a clean
// shutdown loses nothing and the next start replays (almost) no
// records.
func (d *daemon) Close() {
	if d.admin != nil {
		d.admin.Close()
	}
	d.srv.Close() // drains in-flight dispatches; all mutations logged
	d.rot.Stop()  // nil-safe
	if d.wlog != nil {
		d.snap.Stop() // nil-safe
		if err := d.Coord.WriteSnapshot(); err != nil {
			d.log.Warn("final snapshot failed", "err", err.Error())
		}
		if err := d.wlog.Close(); err != nil {
			d.log.Warn("wal close failed", "err", err.Error())
		}
	}
}

// Wait blocks until Serve returns.
func (d *daemon) Wait() error { return <-d.done }

func runServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	listen := fs.String("listen", ":7070", "address to listen on")
	admin := fs.String("admin", "", "admin endpoint address for /metrics, /healthz, /debug/pprof (disabled if empty)")
	idle := fs.Duration("idle-timeout", 0, "tear down sessions idle longer than this (0 disables)")
	estWorkers := fs.Int("estimate-workers", 0, "witness-scan workers per estimate (0 = one per CPU, negative = serial)")
	walDir := fs.String("wal-dir", "", "write-ahead-log directory; enables durability and crash recovery (disabled if empty)")
	fsync := fs.String("fsync", "always", "WAL fsync policy: always, never, or an interval like 100ms")
	segSize := fs.Int64("segment-size", 16<<20, "rotate WAL segments at this many bytes")
	snapInterval := fs.Duration("snapshot-interval", time.Minute, "write a state snapshot this often so recovery replays only a short WAL suffix (0 disables periodic snapshots)")
	cqMaxGroups := fs.Int("cq-max-groups", 0, "live groups per grouped continuous view before LRU eviction (0 = default 4096, negative = unbounded)")
	cqGroupSep := fs.String("cq-group-sep", "", "separator splitting physical stream names into group:logical for GROUP BY views (default \":\")")
	cqRotate := fs.Duration("cq-rotate-interval", time.Second, "sweep windowed continuous views this often so idle views still age out buckets (0 disables the sweep)")
	shards := fs.Int("shards", 0, "lock-striped coordinator state shards, rounded up to a power of two (0 = GOMAXPROCS-derived default, 1 = unsharded layout)")
	digestCache := fs.Int("digest-cache", 0, "coordinator element-digest cache entries for the raw-update path, rounded up to a power of two (0 = default 8192, negative = disable)")
	mutexFrac := fs.Int("mutex-profile-fraction", 0, "sample 1/n mutex contention events into /debug/pprof/mutex (0 disables)")
	blockRate := fs.Int("block-profile-rate", 0, "sample blocking events of >= n ns into /debug/pprof/block (0 disables)")
	mkLog := logFlags(fs)
	coins := coinFlags(fs)
	fs.Parse(args)

	log, err := mkLog()
	if err != nil {
		return err
	}
	d, err := startDaemon(daemonConfig{
		Listen:               *listen,
		AdminAddr:            *admin,
		Coins:                coins(),
		IdleTimeout:          *idle,
		EstWorkers:           *estWorkers,
		Log:                  log,
		WALDir:               *walDir,
		Fsync:                *fsync,
		SegmentSize:          *segSize,
		SnapshotInterval:     *snapInterval,
		CQMaxGroups:          *cqMaxGroups,
		CQGroupSep:           *cqGroupSep,
		CQRotateInterval:     *cqRotate,
		Shards:               *shards,
		DigestCache:          *digestCache,
		MutexProfileFraction: *mutexFrac,
		BlockProfileRate:     *blockRate,
	})
	if err != nil {
		return err
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		log.Info("shutting down")
		d.Close()
	}()
	log.Info("coordinator listening", "addr", d.Addr())
	if a := d.AdminAddr(); a != "" {
		log.Info("admin endpoint listening", "addr", a,
			"endpoints", "/metrics /healthz /debug/pprof/")
	}
	return d.Wait()
}

func runPush(args []string) error {
	fs := flag.NewFlagSet("push", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7070", "coordinator address")
	siteName := fs.String("site", "site", "site name (diagnostics)")
	in := fs.String("in", "-", "update-stream file (- for stdin)")
	coins := coinFlags(fs)
	fs.Parse(args)

	site, err := distributed.NewSite(*siteName, coins())
	if err != nil {
		return err
	}
	// Summarize incrementally: the update file never has to fit in
	// memory, only the synopses do.
	n, err := scanUpdateFile(*in, func(u datagen.Update) error {
		return site.Update(u.Stream, u.Elem, u.Delta)
	})
	if err != nil {
		return err
	}
	cli, err := distributed.Dial(*addr)
	if err != nil {
		return err
	}
	defer cli.Close()
	if err := cli.PushSnapshot(*siteName, site.Snapshot()); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "sketchd: pushed %d streams (%d updates) from site %q\n",
		len(site.Streams()), n, *siteName)
	return nil
}

// scanUpdateFile streams the updates of a file (stdin for "-") through
// fn one at a time and returns how many were processed.
func scanUpdateFile(path string, fn func(datagen.Update) error) (int, error) {
	r := os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return 0, err
		}
		defer f.Close()
		r = f
	}
	sc := streamio.NewScanner(r)
	n := 0
	for sc.Scan() {
		if err := fn(sc.Update()); err != nil {
			return n, err
		}
		n++
	}
	return n, sc.Err()
}

func runStream(args []string) error {
	fs := flag.NewFlagSet("stream", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7070", "coordinator address")
	siteName := fs.String("site", "site", "site name")
	in := fs.String("in", "-", "update-stream file (- for stdin)")
	mode := fs.String("mode", "sketch", "sketch: local sharded ingest + delta flushes; forward: relay raw update batches")
	workers := fs.Int("workers", 0, "ingest shard workers (0 = GOMAXPROCS)")
	batch := fs.Int("batch", 256, "updates per batch hand-off")
	digestCache := fs.Int("digest-cache", 0, "element-digest cache entries, rounded up to a power of two (0 = default 8192, negative = disable digest path)")
	flushUpdates := fs.Int("flush-updates", 10000, "flush a synopsis delta every N updates (sketch mode)")
	flushInterval := fs.Duration("flush-interval", 2*time.Second, "also flush after this long without one (sketch mode)")
	walDir := fs.String("wal-dir", "", "site journal directory; batches are journaled before processing and replayed after a crash (disabled if empty)")
	fsync := fs.String("fsync", "always", "journal fsync policy: always, never, or an interval like 100ms")
	segSize := fs.Int64("segment-size", 16<<20, "rotate journal segments at this many bytes")
	admin := fs.String("admin", "", "admin endpoint address for the site's own /metrics, /healthz, /debug/pprof (disabled if empty)")
	mkLog := logFlags(fs)
	coins := coinFlags(fs)
	fs.Parse(args)

	log, err := mkLog()
	if err != nil {
		return err
	}
	// The site's own registry: ingest_* metrics live here, not at the
	// coordinator (which exports its stream_*/coord_* view of the same
	// session).
	reg := obs.NewRegistry()
	if *admin != "" {
		al, err := net.Listen("tcp", *admin)
		if err != nil {
			return fmt.Errorf("admin endpoint: %w", err)
		}
		adminSrv := &http.Server{Handler: obs.AdminMux(reg, func() error { return nil })}
		go adminSrv.Serve(al)
		defer adminSrv.Close()
		log.Info("admin endpoint listening", "addr", al.Addr().String())
	}

	cli, err := distributed.Dial(*addr)
	if err != nil {
		return err
	}
	defer cli.Close()
	sess, err := cli.OpenStream(*siteName, coins())
	if err != nil {
		return err
	}
	log.Info("session open", "site", *siteName, "addr", *addr, "mode", *mode)

	// Site-local journal: crashed runs leave an unmarked tail that the
	// next run ships before reading new input (at-least-once).
	var journal *siteJournal
	var pending []datagen.Update
	if *walDir != "" {
		journal, pending, err = openSiteJournal(*walDir, *siteName, coins(), *fsync, *segSize, reg, log)
		if err != nil {
			return err
		}
		defer journal.Close()
		if len(pending) > 0 {
			log.Info("replaying journaled tail from a previous run", "updates", len(pending))
		}
	}

	switch *mode {
	case "forward":
		return streamForward(sess, *in, *batch, journal, pending)
	case "sketch":
		return streamSketch(sess, *in, coins(),
			ingest.Options{Workers: *workers, BatchSize: *batch, DigestCache: *digestCache, Obs: reg, Log: log},
			*flushUpdates, *flushInterval, *batch, journal, pending)
	default:
		return fmt.Errorf("stream: unknown -mode %q", *mode)
	}
}

// streamForward relays raw update batches over the session; the
// coordinator sketches them centrally. With a journal, each batch is
// journaled before it is sent and marked once the coordinator acks it.
func streamForward(sess *distributed.StreamSession, in string, batch int,
	journal *siteJournal, pending []datagen.Update) error {
	buf := make([]datagen.Update, 0, batch)
	flush := func() error {
		if len(buf) == 0 {
			return nil
		}
		if err := journal.LogBatch(buf); err != nil {
			return err
		}
		if _, err := sess.SendUpdates(buf); err != nil {
			return err
		}
		if err := journal.MarkAcked(); err != nil {
			return err
		}
		buf = buf[:0]
		return nil
	}
	// A previous run's unacked tail goes first (already journaled).
	if len(pending) > 0 {
		if _, err := sess.SendUpdates(pending); err != nil {
			return err
		}
		if err := journal.MarkAcked(); err != nil {
			return err
		}
	}
	n, err := scanUpdateFile(in, func(u datagen.Update) error {
		buf = append(buf, u)
		if len(buf) >= batch {
			return flush()
		}
		return nil
	})
	if err != nil {
		return err
	}
	if err := flush(); err != nil {
		return err
	}
	accepted, err := sess.Heartbeat()
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "sketchd: forwarded %d updates from site %q (%d accepted by coordinator)\n",
		n, sess.Site(), accepted)
	return nil
}

// streamSketch runs the sharded ingest engine locally and periodically
// flushes synopsis deltas, which the coordinator merges by linearity.
// With a journal, raw batches are journaled before they enter the
// engine and marked acked once the flush covering them lands, so a
// crash never loses updates the coordinator has not seen.
func streamSketch(sess *distributed.StreamSession, in string, coins distributed.Coins,
	opts ingest.Options, flushUpdates int, flushInterval time.Duration,
	batch int, journal *siteJournal, pending []datagen.Update) error {
	eng, err := ingest.New(coins.Config, coins.Seed, coins.Copies, opts)
	if err != nil {
		return err
	}
	defer eng.Close()

	var sinceFlush uint64
	lastFlush := time.Now()
	deltas := 0
	flush := func() error {
		if sinceFlush == 0 {
			return nil
		}
		if err := sess.SendFlush(eng.Flush(), sinceFlush); err != nil {
			return err
		}
		deltas++
		sinceFlush = 0
		lastFlush = time.Now()
		return journal.MarkAcked() // nil-safe no-op without a journal
	}
	apply := func(ups []datagen.Update) error {
		for _, u := range ups {
			if err := eng.Update(u.Stream, u.Elem, u.Delta); err != nil {
				return err
			}
		}
		sinceFlush += uint64(len(ups))
		if int(sinceFlush) >= flushUpdates ||
			(flushInterval > 0 && time.Since(lastFlush) >= flushInterval) {
			return flush()
		}
		return nil
	}
	// A previous run's unacked tail is already journaled: sketch and
	// flush it before reading new input.
	if len(pending) > 0 {
		if err := apply(pending); err != nil {
			return err
		}
		if err := flush(); err != nil {
			return err
		}
	}
	buf := make([]datagen.Update, 0, batch)
	drain := func() error {
		if len(buf) == 0 {
			return nil
		}
		if err := journal.LogBatch(buf); err != nil {
			return err
		}
		err := apply(buf)
		buf = buf[:0]
		return err
	}
	n, err := scanUpdateFile(in, func(u datagen.Update) error {
		buf = append(buf, u)
		if len(buf) >= batch {
			return drain()
		}
		return nil
	})
	if err != nil {
		return err
	}
	if err := drain(); err != nil {
		return err
	}
	if err := flush(); err != nil {
		return err
	}
	accepted, err := sess.Heartbeat()
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr,
		"sketchd: streamed %d updates from site %q via %d workers, %d delta flushes (%d accepted by coordinator)\n",
		n, sess.Site(), eng.Workers(), deltas, accepted)
	return nil
}

func runWatch(args []string) error {
	fs := flag.NewFlagSet("watch", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7070", "coordinator address")
	var exprs, views []string
	fs.Func("expr", "set expression to watch (repeatable)", func(s string) error {
		exprs = append(exprs, s)
		return nil
	})
	fs.Func("view", "continuous view to watch, registered earlier via `sketchd views -create` (repeatable)", func(s string) error {
		views = append(views, s)
		return nil
	})
	eps := fs.Float64("eps", 0.1, "relative accuracy parameter ε")
	every := fs.Uint64("every", 10000, "re-evaluate after this many accepted updates (0 disables)")
	interval := fs.Duration("interval", 0, "also re-evaluate on this wall-clock period (0 disables)")
	fs.Parse(args)
	if len(exprs) == 0 && len(views) == 0 {
		return fmt.Errorf("watch: at least one -expr or -view is required")
	}
	cli, err := distributed.Dial(*addr)
	if err != nil {
		return err
	}
	defer cli.Close()
	events, err := cli.Subscribe(distributed.WatchRequest{
		Exprs:        exprs,
		Views:        views,
		Eps:          *eps,
		EveryUpdates: *every,
		Interval:     *interval,
	})
	if err != nil {
		return err
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	fmt.Fprintf(os.Stderr, "sketchd: watching %d expression(s), %d view(s); ^C to stop\n",
		len(exprs), len(views))
	for {
		select {
		case <-sig:
			return nil
		case ev, ok := <-events:
			if !ok {
				return fmt.Errorf("watch: result stream closed by coordinator")
			}
			if ev.Terminal {
				// The server ended the watch (slow consumer, shutdown)
				// or the connection failed: surface the reason instead
				// of exiting silently.
				select {
				case <-sig: // local ^C raced the read error; clean exit
					return nil
				default:
				}
				return fmt.Errorf("watch: %s", ev.Err)
			}
			label := ev.Expr
			if ev.View != "" {
				label = "view " + ev.View
				if ev.Group != "" {
					label += "[" + ev.Group + "]"
				}
			}
			if ev.Err != "" {
				fmt.Printf("[%d @ %d updates] %s: %s\n", ev.Epoch, ev.Updates, label, ev.Err)
				continue
			}
			delta := ""
			if ev.Delta != 0 {
				delta = fmt.Sprintf("  Δ%+.0f", ev.Delta)
			}
			fmt.Printf("[%d @ %d updates] |%s| ≈ %.0f ± %.0f%s  (level %d, %d/%d valid, %d witnesses)\n",
				ev.Epoch, ev.Updates, label, ev.Est.Value, ev.Est.StdError, delta,
				ev.Est.Level, ev.Est.Valid, ev.Est.Copies, ev.Est.Witnesses)
		}
	}
}

// runViews manages the coordinator's continuous-view catalog: with no
// action flags it lists the catalog as canonical CREATE VIEW
// statements; -create registers a view and -drop removes one (both may
// be given, creates run first).
func runViews(args []string) error {
	fs := flag.NewFlagSet("views", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7070", "coordinator address")
	var creates, drops []string
	fs.Func("create", "CREATE VIEW statement to register (repeatable; see QUERIES.md)", func(s string) error {
		creates = append(creates, s)
		return nil
	})
	fs.Func("drop", "view name to drop (repeatable)", func(s string) error {
		drops = append(drops, s)
		return nil
	})
	fs.Parse(args)
	cli, err := distributed.Dial(*addr)
	if err != nil {
		return err
	}
	defer cli.Close()
	for _, stmt := range creates {
		if err := cli.CreateView(stmt); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "sketchd: created view\n")
	}
	for _, name := range drops {
		if err := cli.DropView(name); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "sketchd: dropped view %q\n", name)
	}
	if len(creates) == 0 && len(drops) == 0 {
		stmts, err := cli.ListViews()
		if err != nil {
			return err
		}
		for _, s := range stmts {
			fmt.Println(s)
		}
	}
	return nil
}

func runQuery(args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7070", "coordinator address")
	exprStr := fs.String("expr", "", "set expression (required)")
	eps := fs.Float64("eps", 0.1, "relative accuracy parameter ε")
	fs.Parse(args)
	if *exprStr == "" {
		return fmt.Errorf("query: -expr is required")
	}
	cli, err := distributed.Dial(*addr)
	if err != nil {
		return err
	}
	defer cli.Close()
	est, err := cli.Query(*exprStr, *eps)
	if err != nil {
		return err
	}
	fmt.Printf("|%s| ≈ %.0f ± %.0f  (û = %.0f, level %d, %d/%d valid copies, %d witnesses)\n",
		*exprStr, est.Value, est.StdError, est.Union, est.Level, est.Valid, est.Copies, est.Witnesses)
	return nil
}

// runInspect dumps durability state read-only; the one target so far
// is `sketchd inspect wal -dir <dir>`, which reports every segment
// (record counts by type, sequence range) and snapshot, plus the exact
// byte offset recovery would truncate to when a segment is corrupt.
func runInspect(args []string) error {
	if len(args) < 1 || args[0] != "wal" {
		return fmt.Errorf("inspect: usage: sketchd inspect wal -dir <wal-dir>")
	}
	fs := flag.NewFlagSet("inspect wal", flag.ExitOnError)
	dir := fs.String("dir", "", "WAL directory to inspect (required)")
	fs.Parse(args[1:])
	if *dir == "" {
		return fmt.Errorf("inspect wal: -dir is required")
	}
	rep, err := wal.InspectDir(*dir)
	if err != nil {
		return err
	}
	fmt.Printf("wal directory: %s\n", rep.Dir)
	var totalRecords uint64
	corrupt := 0
	for _, s := range rep.Segments {
		fmt.Printf("segment %s: %d bytes, seq %d..%d, %d records",
			filepath.Base(s.Path), s.Size, s.FirstSeq, s.LastSeq, s.Records)
		for _, t := range []byte{wal.RecUpdates, wal.RecDigests, wal.RecDelta, wal.RecMark, wal.RecView} {
			if n := s.ByType[t]; n > 0 {
				fmt.Printf(" %s=%d", wal.RecordTypeName(t), n)
			}
		}
		fmt.Println()
		if s.Corrupt != "" {
			corrupt++
			fmt.Printf("  CORRUPT: %s\n", s.Corrupt)
			fmt.Printf("  intact through seq %d; recovery truncates at offset %d\n",
				s.LastSeq, s.TruncateAt)
		}
		totalRecords += s.Records
	}
	for _, s := range rep.Snapshots {
		if s.Err != "" {
			fmt.Printf("snapshot seq %d: UNUSABLE: %s\n", s.Seq, s.Err)
			continue
		}
		fmt.Printf("snapshot seq %d: %d streams, %d updates, %d bytes (%s)\n",
			s.Seq, s.Streams, s.Updates, s.DataSize, filepath.Base(s.DataPath))
	}
	fmt.Printf("total: %d segments, %d intact records, %d snapshots",
		len(rep.Segments), totalRecords, len(rep.Snapshots))
	if corrupt > 0 {
		fmt.Printf(", %d corrupt segment(s)", corrupt)
	}
	fmt.Println()
	return nil
}

func runStreams(args []string) error {
	fs := flag.NewFlagSet("streams", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7070", "coordinator address")
	fs.Parse(args)
	cli, err := distributed.Dial(*addr)
	if err != nil {
		return err
	}
	defer cli.Close()
	names, err := cli.Streams()
	if err != nil {
		return err
	}
	for _, n := range names {
		fmt.Println(n)
	}
	return nil
}
