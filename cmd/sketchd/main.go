// Command sketchd runs the distributed pieces of the paper's Figure 1
// architecture over TCP: a coordinator daemon that merges synopses and
// answers set-expression queries, site modes that summarize local
// update streams and ship them (one-shot or live), and query modes
// (point-in-time or standing).
//
//	sketchd serve  -listen :7070 [-copies 512] [-s 32] [-seed 1]
//	sketchd push   -addr host:7070 -site edge1 -in updates.txt [...coins]
//	sketchd stream -addr host:7070 -site edge1 -in updates.txt \
//	               [-mode sketch|forward] [-workers N] [-flush-updates 10000] [...coins]
//	sketchd query  -addr host:7070 -expr '(A & B) - C' [-eps 0.1]
//	sketchd watch  -addr host:7070 -expr 'A & B' [-expr 'A | B'] \
//	               [-eps 0.1] [-every 10000] [-interval 2s]
//	sketchd streams -addr host:7070
//
// push summarizes a whole file and ships the synopses once. stream
// keeps a session open and ships continuously: in sketch mode it runs
// the sharded ingest engine locally and flushes synopsis deltas
// (merged by linearity at the coordinator); in forward mode it relays
// raw update batches for the coordinator to sketch. watch registers
// standing continuous queries and prints each re-evaluation as the
// coordinator streams it back.
//
// All parties must share the stored-coins parameters (-copies, -s,
// -wise, -seed); mismatches are rejected by the coordinator.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"setsketch/internal/core"
	"setsketch/internal/datagen"
	"setsketch/internal/distributed"
	"setsketch/internal/ingest"
	"setsketch/internal/streamio"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "serve":
		err = runServe(os.Args[2:])
	case "push":
		err = runPush(os.Args[2:])
	case "stream":
		err = runStream(os.Args[2:])
	case "query":
		err = runQuery(os.Args[2:])
	case "watch":
		err = runWatch(os.Args[2:])
	case "streams":
		err = runStreams(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "sketchd:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: sketchd {serve|push|stream|query|watch|streams} [flags]")
	os.Exit(2)
}

// coinFlags registers the shared stored-coins flags on a flag set.
func coinFlags(fs *flag.FlagSet) func() distributed.Coins {
	copies := fs.Int("copies", 512, "sketch copies r per stream")
	s := fs.Int("s", 32, "second-level hash functions")
	wise := fs.Int("wise", 8, "first-level independence degree")
	seed := fs.Uint64("seed", 1, "stored-coins master seed")
	return func() distributed.Coins {
		cfg := core.DefaultConfig()
		cfg.SecondLevel = *s
		cfg.FirstWise = *wise
		return distributed.Coins{Config: cfg, Seed: *seed, Copies: *copies}
	}
}

func runServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	listen := fs.String("listen", ":7070", "address to listen on")
	coins := coinFlags(fs)
	fs.Parse(args)

	coord, err := distributed.NewCoordinator(coins())
	if err != nil {
		return err
	}
	l, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	srv := distributed.NewServer(coord)
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Fprintln(os.Stderr, "sketchd: shutting down")
		srv.Close()
	}()
	fmt.Fprintf(os.Stderr, "sketchd: coordinator listening on %s\n", l.Addr())
	return srv.Serve(l)
}

func runPush(args []string) error {
	fs := flag.NewFlagSet("push", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7070", "coordinator address")
	siteName := fs.String("site", "site", "site name (diagnostics)")
	in := fs.String("in", "-", "update-stream file (- for stdin)")
	coins := coinFlags(fs)
	fs.Parse(args)

	site, err := distributed.NewSite(*siteName, coins())
	if err != nil {
		return err
	}
	// Summarize incrementally: the update file never has to fit in
	// memory, only the synopses do.
	n, err := scanUpdateFile(*in, func(u datagen.Update) error {
		return site.Update(u.Stream, u.Elem, u.Delta)
	})
	if err != nil {
		return err
	}
	cli, err := distributed.Dial(*addr)
	if err != nil {
		return err
	}
	defer cli.Close()
	if err := cli.PushSnapshot(*siteName, site.Snapshot()); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "sketchd: pushed %d streams (%d updates) from site %q\n",
		len(site.Streams()), n, *siteName)
	return nil
}

// scanUpdateFile streams the updates of a file (stdin for "-") through
// fn one at a time and returns how many were processed.
func scanUpdateFile(path string, fn func(datagen.Update) error) (int, error) {
	r := os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return 0, err
		}
		defer f.Close()
		r = f
	}
	sc := streamio.NewScanner(r)
	n := 0
	for sc.Scan() {
		if err := fn(sc.Update()); err != nil {
			return n, err
		}
		n++
	}
	return n, sc.Err()
}

func runStream(args []string) error {
	fs := flag.NewFlagSet("stream", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7070", "coordinator address")
	siteName := fs.String("site", "site", "site name")
	in := fs.String("in", "-", "update-stream file (- for stdin)")
	mode := fs.String("mode", "sketch", "sketch: local sharded ingest + delta flushes; forward: relay raw update batches")
	workers := fs.Int("workers", 0, "ingest shard workers (0 = GOMAXPROCS)")
	batch := fs.Int("batch", 256, "updates per batch hand-off")
	flushUpdates := fs.Int("flush-updates", 10000, "flush a synopsis delta every N updates (sketch mode)")
	flushInterval := fs.Duration("flush-interval", 2*time.Second, "also flush after this long without one (sketch mode)")
	coins := coinFlags(fs)
	fs.Parse(args)

	cli, err := distributed.Dial(*addr)
	if err != nil {
		return err
	}
	defer cli.Close()
	sess, err := cli.OpenStream(*siteName, coins())
	if err != nil {
		return err
	}

	switch *mode {
	case "forward":
		return streamForward(sess, *in, *batch)
	case "sketch":
		return streamSketch(sess, *in, coins(), ingest.Options{Workers: *workers, BatchSize: *batch},
			*flushUpdates, *flushInterval)
	default:
		return fmt.Errorf("stream: unknown -mode %q", *mode)
	}
}

// streamForward relays raw update batches over the session; the
// coordinator sketches them centrally.
func streamForward(sess *distributed.StreamSession, in string, batch int) error {
	buf := make([]datagen.Update, 0, batch)
	flush := func() error {
		if len(buf) == 0 {
			return nil
		}
		if _, err := sess.SendUpdates(buf); err != nil {
			return err
		}
		buf = buf[:0]
		return nil
	}
	n, err := scanUpdateFile(in, func(u datagen.Update) error {
		buf = append(buf, u)
		if len(buf) >= batch {
			return flush()
		}
		return nil
	})
	if err != nil {
		return err
	}
	if err := flush(); err != nil {
		return err
	}
	accepted, err := sess.Heartbeat()
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "sketchd: forwarded %d updates from site %q (%d accepted by coordinator)\n",
		n, sess.Site(), accepted)
	return nil
}

// streamSketch runs the sharded ingest engine locally and periodically
// flushes synopsis deltas, which the coordinator merges by linearity.
func streamSketch(sess *distributed.StreamSession, in string, coins distributed.Coins,
	opts ingest.Options, flushUpdates int, flushInterval time.Duration) error {
	eng, err := ingest.New(coins.Config, coins.Seed, coins.Copies, opts)
	if err != nil {
		return err
	}
	defer eng.Close()

	var sinceFlush uint64
	lastFlush := time.Now()
	deltas := 0
	flush := func() error {
		if sinceFlush == 0 {
			return nil
		}
		if err := sess.SendFlush(eng.Flush(), sinceFlush); err != nil {
			return err
		}
		deltas++
		sinceFlush = 0
		lastFlush = time.Now()
		return nil
	}
	n, err := scanUpdateFile(in, func(u datagen.Update) error {
		if err := eng.Update(u.Stream, u.Elem, u.Delta); err != nil {
			return err
		}
		sinceFlush++
		if int(sinceFlush) >= flushUpdates ||
			(flushInterval > 0 && time.Since(lastFlush) >= flushInterval) {
			return flush()
		}
		return nil
	})
	if err != nil {
		return err
	}
	if err := flush(); err != nil {
		return err
	}
	accepted, err := sess.Heartbeat()
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr,
		"sketchd: streamed %d updates from site %q via %d workers, %d delta flushes (%d accepted by coordinator)\n",
		n, sess.Site(), eng.Workers(), deltas, accepted)
	return nil
}

func runWatch(args []string) error {
	fs := flag.NewFlagSet("watch", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7070", "coordinator address")
	var exprs []string
	fs.Func("expr", "set expression to watch (repeatable)", func(s string) error {
		exprs = append(exprs, s)
		return nil
	})
	eps := fs.Float64("eps", 0.1, "relative accuracy parameter ε")
	every := fs.Uint64("every", 10000, "re-evaluate after this many accepted updates (0 disables)")
	interval := fs.Duration("interval", 0, "also re-evaluate on this wall-clock period (0 disables)")
	fs.Parse(args)
	if len(exprs) == 0 {
		return fmt.Errorf("watch: at least one -expr is required")
	}
	cli, err := distributed.Dial(*addr)
	if err != nil {
		return err
	}
	defer cli.Close()
	events, err := cli.Watch(exprs, *eps, *every, *interval)
	if err != nil {
		return err
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	fmt.Fprintf(os.Stderr, "sketchd: watching %d expression(s); ^C to stop\n", len(exprs))
	for {
		select {
		case <-sig:
			return nil
		case ev, ok := <-events:
			if !ok {
				return fmt.Errorf("watch: result stream closed by coordinator")
			}
			if ev.Err != "" {
				fmt.Printf("[%d @ %d updates] %s: %s\n", ev.Epoch, ev.Updates, ev.Expr, ev.Err)
				continue
			}
			fmt.Printf("[%d @ %d updates] |%s| ≈ %.0f ± %.0f  (level %d, %d/%d valid, %d witnesses)\n",
				ev.Epoch, ev.Updates, ev.Expr, ev.Est.Value, ev.Est.StdError,
				ev.Est.Level, ev.Est.Valid, ev.Est.Copies, ev.Est.Witnesses)
		}
	}
}

func runQuery(args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7070", "coordinator address")
	exprStr := fs.String("expr", "", "set expression (required)")
	eps := fs.Float64("eps", 0.1, "relative accuracy parameter ε")
	fs.Parse(args)
	if *exprStr == "" {
		return fmt.Errorf("query: -expr is required")
	}
	cli, err := distributed.Dial(*addr)
	if err != nil {
		return err
	}
	defer cli.Close()
	est, err := cli.Query(*exprStr, *eps)
	if err != nil {
		return err
	}
	fmt.Printf("|%s| ≈ %.0f ± %.0f  (û = %.0f, level %d, %d/%d valid copies, %d witnesses)\n",
		*exprStr, est.Value, est.StdError, est.Union, est.Level, est.Valid, est.Copies, est.Witnesses)
	return nil
}

func runStreams(args []string) error {
	fs := flag.NewFlagSet("streams", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7070", "coordinator address")
	fs.Parse(args)
	cli, err := distributed.Dial(*addr)
	if err != nil {
		return err
	}
	defer cli.Close()
	names, err := cli.Streams()
	if err != nil {
		return err
	}
	for _, n := range names {
		fmt.Println(n)
	}
	return nil
}
