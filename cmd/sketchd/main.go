// Command sketchd runs the distributed pieces of the paper's Figure 1
// architecture over TCP: a coordinator daemon that merges synopses and
// answers set-expression queries, a site mode that summarizes a local
// update-stream file and pushes the synopses, and a query mode.
//
//	sketchd serve -listen :7070 [-copies 512] [-s 32] [-seed 1]
//	sketchd push  -addr host:7070 -site edge1 -in updates.txt [...coins]
//	sketchd query -addr host:7070 -expr '(A & B) - C' [-eps 0.1]
//	sketchd streams -addr host:7070
//
// All parties must share the stored-coins parameters (-copies, -s,
// -wise, -seed); mismatches are rejected by the coordinator.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"

	"setsketch/internal/core"
	"setsketch/internal/distributed"
	"setsketch/internal/streamio"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "serve":
		err = runServe(os.Args[2:])
	case "push":
		err = runPush(os.Args[2:])
	case "query":
		err = runQuery(os.Args[2:])
	case "streams":
		err = runStreams(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "sketchd:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: sketchd {serve|push|query|streams} [flags]")
	os.Exit(2)
}

// coinFlags registers the shared stored-coins flags on a flag set.
func coinFlags(fs *flag.FlagSet) func() distributed.Coins {
	copies := fs.Int("copies", 512, "sketch copies r per stream")
	s := fs.Int("s", 32, "second-level hash functions")
	wise := fs.Int("wise", 8, "first-level independence degree")
	seed := fs.Uint64("seed", 1, "stored-coins master seed")
	return func() distributed.Coins {
		cfg := core.DefaultConfig()
		cfg.SecondLevel = *s
		cfg.FirstWise = *wise
		return distributed.Coins{Config: cfg, Seed: *seed, Copies: *copies}
	}
}

func runServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	listen := fs.String("listen", ":7070", "address to listen on")
	coins := coinFlags(fs)
	fs.Parse(args)

	coord, err := distributed.NewCoordinator(coins())
	if err != nil {
		return err
	}
	l, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	srv := distributed.NewServer(coord)
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Fprintln(os.Stderr, "sketchd: shutting down")
		srv.Close()
	}()
	fmt.Fprintf(os.Stderr, "sketchd: coordinator listening on %s\n", l.Addr())
	return srv.Serve(l)
}

func runPush(args []string) error {
	fs := flag.NewFlagSet("push", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7070", "coordinator address")
	siteName := fs.String("site", "site", "site name (diagnostics)")
	in := fs.String("in", "-", "update-stream file (- for stdin)")
	coins := coinFlags(fs)
	fs.Parse(args)

	r := os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	ups, err := streamio.Read(r)
	if err != nil {
		return err
	}
	site, err := distributed.NewSite(*siteName, coins())
	if err != nil {
		return err
	}
	for _, u := range ups {
		if err := site.Update(u.Stream, u.Elem, u.Delta); err != nil {
			return err
		}
	}
	cli, err := distributed.Dial(*addr)
	if err != nil {
		return err
	}
	defer cli.Close()
	if err := cli.PushSnapshot(*siteName, site.Snapshot()); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "sketchd: pushed %d streams (%d updates) from site %q\n",
		len(site.Streams()), len(ups), *siteName)
	return nil
}

func runQuery(args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7070", "coordinator address")
	exprStr := fs.String("expr", "", "set expression (required)")
	eps := fs.Float64("eps", 0.1, "relative accuracy parameter ε")
	fs.Parse(args)
	if *exprStr == "" {
		return fmt.Errorf("query: -expr is required")
	}
	cli, err := distributed.Dial(*addr)
	if err != nil {
		return err
	}
	defer cli.Close()
	est, err := cli.Query(*exprStr, *eps)
	if err != nil {
		return err
	}
	fmt.Printf("|%s| ≈ %.0f ± %.0f  (û = %.0f, level %d, %d/%d valid copies, %d witnesses)\n",
		*exprStr, est.Value, est.StdError, est.Union, est.Level, est.Valid, est.Copies, est.Witnesses)
	return nil
}

func runStreams(args []string) error {
	fs := flag.NewFlagSet("streams", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7070", "coordinator address")
	fs.Parse(args)
	cli, err := distributed.Dial(*addr)
	if err != nil {
		return err
	}
	defer cli.Close()
	names, err := cli.Streams()
	if err != nil {
		return err
	}
	for _, n := range names {
		fmt.Println(n)
	}
	return nil
}
