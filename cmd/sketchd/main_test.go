package main

import (
	"net"
	"os"
	"path/filepath"
	"testing"

	"setsketch/internal/core"
	"setsketch/internal/distributed"
)

// startCoordinator runs an in-process coordinator server matching the
// default coin flags with small copies for speed.
func startCoordinator(t *testing.T, coins distributed.Coins) (addr string, stop func()) {
	t.Helper()
	coord, err := distributed.NewCoordinator(coins)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := distributed.NewServer(coord)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	return l.Addr().String(), func() {
		srv.Close()
		<-done
	}
}

func testCoins() distributed.Coins {
	cfg := core.DefaultConfig()
	cfg.SecondLevel = 8
	return distributed.Coins{Config: cfg, Seed: 1, Copies: 64}
}

func writeUpdates(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "u.txt")
	content := ""
	for e := 0; e < 300; e++ {
		content += "A " + itoa(e) + " 1\n"
		if e >= 100 {
			content += "B " + itoa(e) + " 1\n"
		}
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// coinArgs renders the stored-coins flags matching testCoins.
func coinArgs() []string {
	return []string{"-copies", "64", "-s", "8", "-wise", "8", "-seed", "1"}
}

func TestPushQueryStreamsEndToEnd(t *testing.T) {
	addr, stop := startCoordinator(t, testCoins())
	defer stop()
	stream := writeUpdates(t)

	args := append([]string{"-addr", addr, "-site", "edge1", "-in", stream}, coinArgs()...)
	if err := runPush(args); err != nil {
		t.Fatal(err)
	}
	if err := runQuery([]string{"-addr", addr, "-expr", "A & B", "-eps", "0.3"}); err != nil {
		t.Fatal(err)
	}
	if err := runStreams([]string{"-addr", addr}); err != nil {
		t.Fatal(err)
	}
}

// TestStreamEndToEnd: both streaming modes land the same synopses a
// one-shot push would, so queries answer identically afterwards.
func TestStreamEndToEnd(t *testing.T) {
	stream := writeUpdates(t)
	for _, mode := range []string{"sketch", "forward"} {
		addr, stop := startCoordinator(t, testCoins())
		args := append([]string{"-addr", addr, "-site", "edge1", "-in", stream,
			"-mode", mode, "-workers", "2", "-batch", "50", "-flush-updates", "120",
			"-admin", "127.0.0.1:0", "-log-level", "warn"}, coinArgs()...)
		if err := runStream(args); err != nil {
			t.Fatalf("mode %s: %v", mode, err)
		}
		if err := runQuery([]string{"-addr", addr, "-expr", "A & B", "-eps", "0.3"}); err != nil {
			t.Fatalf("mode %s query: %v", mode, err)
		}
		stop()
	}
}

func TestStreamErrors(t *testing.T) {
	addr, stop := startCoordinator(t, testCoins())
	defer stop()
	stream := writeUpdates(t)
	// Unknown mode.
	args := append([]string{"-addr", addr, "-in", stream, "-mode", "bogus"}, coinArgs()...)
	if err := runStream(args); err == nil {
		t.Error("unknown stream mode accepted")
	}
	// Mismatched coins are rejected at the hello handshake.
	args = []string{"-addr", addr, "-in", stream,
		"-copies", "64", "-s", "8", "-wise", "8", "-seed", "42"}
	if err := runStream(args); err == nil {
		t.Error("stream with mismatched coins succeeded")
	}
	// Watch requires at least one expression.
	if err := runWatch([]string{"-addr", addr}); err == nil {
		t.Error("watch without -expr succeeded")
	}
}

func TestPushWrongCoinsRejected(t *testing.T) {
	addr, stop := startCoordinator(t, testCoins())
	defer stop()
	stream := writeUpdates(t)
	// Different seed: the coordinator must reject the push.
	args := []string{"-addr", addr, "-site", "edge1", "-in", stream,
		"-copies", "64", "-s", "8", "-wise", "8", "-seed", "42"}
	if err := runPush(args); err == nil {
		t.Fatal("push with mismatched coins succeeded")
	}
}

func TestQueryErrors(t *testing.T) {
	addr, stop := startCoordinator(t, testCoins())
	defer stop()
	if err := runQuery([]string{"-addr", addr}); err == nil {
		t.Error("query without -expr succeeded")
	}
	if err := runQuery([]string{"-addr", addr, "-expr", "MISSING"}); err == nil {
		t.Error("query over unknown stream succeeded")
	}
	if err := runQuery([]string{"-addr", "127.0.0.1:1", "-expr", "A"}); err == nil {
		t.Error("query against dead coordinator succeeded")
	}
	if err := runPush([]string{"-addr", addr, "-in", "/nonexistent"}); err == nil {
		t.Error("push of missing file succeeded")
	}
}
