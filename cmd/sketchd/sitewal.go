package main

import (
	"setsketch/internal/datagen"
	"setsketch/internal/distributed"
	"setsketch/internal/obs"
	"setsketch/internal/wal"
)

// siteJournal is the site-local durability of `sketchd stream`: raw
// update batches are journaled before they enter the local pipeline,
// and a mark record is appended once the coordinator has acked the
// flush covering them. After a crash the journal's unmarked tail is
// exactly the work the coordinator never acked; the restarted site
// ships it before reading new input. Delivery is at-least-once — a
// crash between the coordinator's ack and the mark append resends one
// flush — and the coordinator's own WAL is the exactness layer.
//
// Pruning rides on the snapshot machinery: a site holds no
// recoverable sketch state (that lives at the coordinator), so its
// checkpoints are empty snapshots whose manifest just names the acked
// mark, letting covered segments be deleted and restarts skip
// straight to the live tail.
type siteJournal struct {
	l    *wal.Log
	site string

	marks       uint64 // acked marks since the last checkpoint
	lastMarkSeq uint64
}

// markCheckpointEvery bounds how many acked marks accumulate before a
// pruning checkpoint is written (rotation also forces one).
const markCheckpointEvery = 256

// openSiteJournal opens (or creates) a site journal and returns the
// unmarked tail left by a previous crash, oldest first.
func openSiteJournal(dir, site string, coins distributed.Coins, fsyncPolicy string,
	segSize int64, reg *obs.Registry, log *obs.Logger) (*siteJournal, []datagen.Update, error) {
	policy, ival, err := wal.ParseSyncPolicy(fsyncPolicy)
	if err != nil {
		return nil, nil, err
	}
	l, err := wal.Open(dir, wal.Options{
		Config:       coins.Config,
		Seed:         coins.Seed,
		Copies:       coins.Copies,
		SegmentSize:  segSize,
		Sync:         policy,
		SyncInterval: ival,
		Obs:          reg,
		Log:          log,
	})
	if err != nil {
		return nil, nil, err
	}
	j := &siteJournal{l: l, site: site}
	pending, err := j.pending(log)
	if err != nil {
		l.Close()
		return nil, nil, err
	}
	return j, pending, nil
}

// pending replays the journal and collects the updates recorded after
// the last acked mark.
func (j *siteJournal) pending(log *obs.Logger) ([]datagen.Update, error) {
	from := uint64(1)
	snap, err := wal.LoadLatestSnapshot(j.l.Dir(), log)
	if err != nil {
		return nil, err
	}
	if snap != nil {
		from = snap.Seq + 1
	}
	var tail []datagen.Update
	_, err = j.l.Replay(from, func(rec *wal.Record) error {
		switch rec.Type {
		case wal.RecMark:
			tail = tail[:0] // everything before the mark was acked
			j.lastMarkSeq = rec.Seq
		case wal.RecUpdates:
			tail = append(tail, rec.Updates...)
		case wal.RecDigests:
			for _, d := range rec.Digests {
				tail = append(tail, datagen.Update{Stream: d.Stream, Elem: d.Elem, Delta: d.Delta})
			}
		}
		return nil
	})
	return tail, err
}

// LogBatch journals one raw batch before it enters the local pipeline.
// Nil-safe: without a journal it is a no-op.
func (j *siteJournal) LogBatch(ups []datagen.Update) error {
	if j == nil || len(ups) == 0 {
		return nil
	}
	_, err := j.l.Append(&wal.Record{
		Type: wal.RecUpdates, Site: j.site,
		Count: uint64(len(ups)), Updates: ups,
	})
	return err
}

// MarkAcked records that every journaled batch so far has been acked
// by the coordinator. Periodically — and whenever a rotation left a
// sealed segment behind — it also checkpoints so covered segments are
// pruned.
func (j *siteJournal) MarkAcked() error {
	if j == nil {
		return nil
	}
	seq, err := j.l.Append(&wal.Record{Type: wal.RecMark, Site: j.site})
	if err != nil {
		return err
	}
	j.lastMarkSeq = seq
	j.marks++
	if j.marks%markCheckpointEvery == 0 || j.l.SegmentCount() > 1 {
		return j.l.WriteSnapshot(seq, 0, nil, nil, nil)
	}
	return nil
}

// Close checkpoints at the last acked mark (never past it: an
// unmarked tail must survive for the next run to replay) and closes
// the journal.
func (j *siteJournal) Close() error {
	if j == nil {
		return nil
	}
	if j.lastMarkSeq > j.l.LastSnapshotSeq() {
		j.l.WriteSnapshot(j.lastMarkSeq, 0, nil, nil, nil)
	}
	return j.l.Close()
}
