package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"testing"
	"time"

	"setsketch/internal/core"
	"setsketch/internal/distributed"
)

func testCoins() distributed.Coins {
	cfg := core.DefaultConfig()
	cfg.SecondLevel = 16
	cfg.FirstWise = 8
	return distributed.Coins{Config: cfg, Seed: 5, Copies: 64}
}

// startServer runs an in-process coordinator server on a loopback port.
func startServer(t *testing.T, coins distributed.Coins) (addr string, coord *distributed.Coordinator) {
	t.Helper()
	coord, err := distributed.NewCoordinator(coins)
	if err != nil {
		t.Fatal(err)
	}
	srv := distributed.NewServer(coord)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	t.Cleanup(func() {
		srv.Close()
		if err := <-done; err != nil {
			t.Errorf("server: %v", err)
		}
	})
	return l.Addr().String(), coord
}

// coinArgs renders the stored-coins flags matching testCoins.
func coinArgs() []string {
	c := testCoins()
	return []string{
		"-copies", fmt.Sprint(c.Copies),
		"-s", fmt.Sprint(c.Config.SecondLevel),
		"-wise", fmt.Sprint(c.Config.FirstWise),
		"-coin-seed", fmt.Sprint(c.Seed),
	}
}

// TestRunAgainstServer drives concurrent sessions against a real
// server over TCP and checks the report: every sent batch was acked,
// the coordinator saw the streams, and the latency summary is coherent.
// Under -race this is the required concurrency pass over the client.
func TestRunAgainstServer(t *testing.T) {
	addr, coord := startServer(t, testCoins())
	var stdout, stderr bytes.Buffer
	args := append([]string{
		"-addr", addr, "-sessions", "3", "-batch", "64",
		"-warmup", "100ms", "-duration", "400ms",
		"-streams", "A,B", "-support", "1024", "-zipf", "1.0", "-deletes", "0.2",
	}, coinArgs()...)
	if err := run(args, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(stdout.Bytes(), &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v\n%s", err, stdout.String())
	}
	if rep.Sessions != 3 || rep.Batch != 64 {
		t.Fatalf("report config echo wrong: %+v", rep)
	}
	if rep.Updates == 0 || rep.Batches == 0 {
		t.Fatalf("no measured load: %+v", rep)
	}
	if rep.Updates != rep.Batches*64 {
		t.Errorf("updates %d != batches %d × 64", rep.Updates, rep.Batches)
	}
	if rep.UpdatesPerSec <= 0 {
		t.Errorf("updates_per_s = %g", rep.UpdatesPerSec)
	}
	if rep.Latency.P50 <= 0 || rep.Latency.P99 < rep.Latency.P50 || rep.Latency.Max < rep.Latency.P99 {
		t.Errorf("incoherent latency summary: %+v", rep.Latency)
	}
	var histTotal uint64
	for _, b := range rep.Histogram {
		histTotal += b.Count
	}
	if histTotal != rep.Batches {
		t.Errorf("histogram counts %d round trips, report says %d batches", histTotal, rep.Batches)
	}
	// The coordinator sketched what we sent.
	streams := coord.Streams()
	if len(streams) != 2 {
		t.Errorf("coordinator streams = %v, want A and B", streams)
	}
	if est, err := coord.Estimate("A | B", 0.2); err != nil || est.Value <= 0 {
		t.Errorf("coordinator estimate after load: %+v, %v", est, err)
	}
}

// TestRunCoinsMismatch: a session whose coins disagree with the server
// must fail loudly, not silently sketch with the wrong hash functions.
func TestRunCoinsMismatch(t *testing.T) {
	addr, _ := startServer(t, testCoins())
	var stdout, stderr bytes.Buffer
	args := []string{
		"-addr", addr, "-duration", "200ms", "-warmup", "0s",
		"-copies", "32", "-s", "16", "-wise", "8", "-coin-seed", "5",
	}
	if err := run(args, &stdout, &stderr); err == nil {
		t.Fatal("mismatched coins accepted")
	}
}

func TestRunFlagErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	cases := [][]string{
		{"-sessions", "0"},
		{"-duration", "0s"},
		{"-batch", "0"},
		{"-deletes", "1.5"},
		{"-streams", ""},
		{"-badflag"},
		{"-addr", "127.0.0.1:1", "-duration", "100ms"}, // nothing listening
	}
	for _, args := range cases {
		if err := run(args, &stdout, &stderr); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

// TestHistBuckets pins the histogram's bucket geometry: bucketLow is
// the exact inverse of bucketIdx on boundaries, indices are monotone,
// and relative bucket width stays within the HDR resolution bound.
func TestHistBuckets(t *testing.T) {
	for _, v := range []uint64{0, 1, histSub - 1, histSub, histSub + 1, 1000, 1 << 20, 1<<40 + 12345} {
		i := bucketIdx(v)
		if lo := bucketLow(i); lo > v || v >= bucketLow(i+1) {
			t.Errorf("value %d maps to bucket %d = [%d, %d)", v, i, lo, bucketLow(i+1))
		}
	}
	prev := -1
	for e := 0; e < 63; e++ {
		v := uint64(1) << e
		i := bucketIdx(v)
		if i <= prev {
			t.Fatalf("bucketIdx not monotone at 2^%d: %d <= %d", e, i, prev)
		}
		prev = i
	}
	// Relative width ≤ 1/32 above the first octave.
	for _, v := range []uint64{100, 10_000, 5_000_000} {
		i := bucketIdx(v)
		width := bucketLow(i+1) - bucketLow(i)
		if float64(width)/float64(v) > 1.0/float64(histSub)+1e-9 {
			t.Errorf("bucket width %d at value %d exceeds the resolution bound", width, v)
		}
	}
}

// TestHistQuantile feeds a known distribution and checks the summary.
func TestHistQuantile(t *testing.T) {
	var h latHist
	for i := 1; i <= 1000; i++ {
		h.observe(time.Duration(i) * time.Microsecond)
	}
	if h.n != 1000 {
		t.Fatalf("n = %d", h.n)
	}
	for _, tc := range []struct {
		q    float64
		want time.Duration
	}{
		{0.5, 500 * time.Microsecond},
		{0.9, 900 * time.Microsecond},
		{0.99, 990 * time.Microsecond},
	} {
		got := h.quantile(tc.q)
		lo := time.Duration(float64(tc.want) * 0.9)
		hi := time.Duration(float64(tc.want) * 1.1)
		if got < lo || got > hi {
			t.Errorf("quantile(%g) = %v, want ≈ %v", tc.q, got, tc.want)
		}
	}
	if h.max != 1000*time.Microsecond {
		t.Errorf("max = %v", h.max)
	}
	if m := h.mean(); m < 490*time.Microsecond || m > 510*time.Microsecond {
		t.Errorf("mean = %v, want ≈ 500µs", m)
	}
	var merged latHist
	merged.merge(&h)
	merged.merge(&h)
	if merged.n != 2000 || merged.max != h.max {
		t.Errorf("merge broken: n=%d max=%v", merged.n, merged.max)
	}
}
