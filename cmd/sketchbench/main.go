// Command sketchbench is the end-to-end load generator: it drives a
// real sketchd coordinator over TCP with N concurrent streaming
// sessions, each forwarding raw update batches drawn from the shared
// benchmark workload (datagen.LoadGen — the same Zipf/delete-ratio
// definition behind BenchmarkIngestCoalesced and streamgen -updates),
// and reports throughput plus an HDR-style latency histogram of the
// send→ack round trips as JSON.
//
//	sketchd serve -listen 127.0.0.1:7070 &
//	sketchbench -addr 127.0.0.1:7070 -sessions 4 -duration 10s \
//	            -batch 256 -zipf 1.0 -deletes 0.1 > run.json
//
// Each session is its own connection and site (site-0, site-1, ...),
// so the coordinator's per-connection handler goroutines — and with
// them the server's real multi-core behavior — are exercised exactly
// as a fleet of sketchd stream sites would. scripts/bench.sh sweeps
// -sessions against server GOMAXPROCS to produce BENCH_e2e.json.
//
// All sessions must agree with the server on the stored-coins
// parameters (-copies, -s, -wise, -coin-seed).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/bits"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"

	"setsketch/internal/core"
	"setsketch/internal/datagen"
	"setsketch/internal/distributed"
	"setsketch/internal/hashing"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "sketchbench:", err)
		os.Exit(1)
	}
}

// latency histogram: HDR-style log-spaced buckets — every power of two
// of nanoseconds is split into 32 sub-buckets, so quantiles carry at
// most ~3% quantization error at any magnitude, in constant memory,
// with no per-observation allocation. Merging is element-wise
// addition, so per-session histograms combine exactly.

const (
	histSubBits = 5 // sub-buckets per octave: 32
	histSub     = 1 << histSubBits
	histBuckets = 64 * histSub // covers all of uint64 nanoseconds
)

type latHist struct {
	counts [histBuckets]uint64
	n      uint64
	sum    time.Duration
	max    time.Duration
}

// bucketIdx maps a nanosecond value to its bucket.
func bucketIdx(v uint64) int {
	if v < histSub {
		return int(v)
	}
	e := bits.Len64(v) - 1 - histSubBits
	return (e+1)<<histSubBits + int((v>>uint(e))&(histSub-1))
}

// bucketLow is the inclusive lower bound of bucket i, the inverse of
// bucketIdx on bucket boundaries.
func bucketLow(i int) uint64 {
	if i < histSub {
		return uint64(i)
	}
	e := i>>histSubBits - 1
	return (histSub + uint64(i&(histSub-1))) << uint(e)
}

func (h *latHist) observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.counts[bucketIdx(uint64(d))]++
	h.n++
	h.sum += d
	if d > h.max {
		h.max = d
	}
}

func (h *latHist) merge(o *latHist) {
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.n += o.n
	h.sum += o.sum
	if o.max > h.max {
		h.max = o.max
	}
}

// quantile returns the q-quantile (0 < q <= 1), interpolated within
// the containing bucket.
func (h *latHist) quantile(q float64) time.Duration {
	if h.n == 0 {
		return 0
	}
	target := uint64(q * float64(h.n))
	if target >= h.n {
		return h.max
	}
	var cum uint64
	for i, c := range h.counts {
		if cum+c > target {
			lo := bucketLow(i)
			width := bucketLow(i+1) - lo
			frac := float64(target-cum) / float64(c)
			return time.Duration(float64(lo) + frac*float64(width))
		}
		cum += c
	}
	return h.max
}

func (h *latHist) mean() time.Duration {
	if h.n == 0 {
		return 0
	}
	return h.sum / time.Duration(h.n)
}

// report is the JSON result of one run; scripts/bench.sh aggregates
// these into BENCH_e2e.json.
type report struct {
	Benchmark     string   `json:"benchmark"`
	Addr          string   `json:"addr"`
	Sessions      int      `json:"sessions"`
	ClientProcs   int      `json:"client_gomaxprocs"`
	Batch         int      `json:"batch"`
	Streams       []string `json:"streams"`
	Support       int      `json:"support"`
	Zipf          float64  `json:"zipf"`
	Deletes       float64  `json:"deletes"`
	WarmupSec     float64  `json:"warmup_sec"`
	DurationSec   float64  `json:"duration_sec"`
	Updates       uint64   `json:"updates"`
	Batches       uint64   `json:"batches"`
	UpdatesPerSec float64  `json:"updates_per_s"`
	Latency       latency  `json:"round_trip_us"`
	Histogram     []bucket `json:"round_trip_hist_us"`
}

type latency struct {
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P99  float64 `json:"p99"`
	P999 float64 `json:"p999"`
	Max  float64 `json:"max"`
	Mean float64 `json:"mean"`
}

// bucket is one non-empty histogram bucket: round trips with latency
// in [Ge, Lt) microseconds.
type bucket struct {
	Ge    float64 `json:"ge"`
	Lt    float64 `json:"lt"`
	Count uint64  `json:"count"`
}

func us(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

// sessionResult is one worker's contribution: measured-window counts
// and its latency histogram, or the error that ended it.
type sessionResult struct {
	updates uint64
	batches uint64
	hist    latHist
	err     error
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("sketchbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr     = fs.String("addr", "127.0.0.1:7070", "coordinator address")
		sessions = fs.Int("sessions", 1, "concurrent streaming sessions (each its own connection and site)")
		duration = fs.Duration("duration", 10*time.Second, "measured load duration")
		warmup   = fs.Duration("warmup", time.Second, "ramp-up before measurement starts (connections opened, buffers grown)")
		batch    = fs.Int("batch", 256, "updates per batch frame")
		streams  = fs.String("streams", "A,B,C", "comma-separated stream names the load rotates through")
		support  = fs.Int("support", 1<<14, "distinct-element support of the workload")
		zipf     = fs.Float64("zipf", 1.0, "Zipf skew theta over the support (0 = uniform)")
		deletes  = fs.Float64("deletes", 0.1, "fraction of updates that delete a live element")
		seed     = fs.Uint64("seed", 1, "workload seed (each session derives its own stream from it)")
		out      = fs.String("out", "-", "JSON report file (- for stdout)")
		hist     = fs.Bool("hist", true, "include the full latency histogram in the report")

		copies   = fs.Int("copies", 512, "sketch copies r per stream (must match the server)")
		s        = fs.Int("s", 32, "second-level hash functions (must match the server)")
		wise     = fs.Int("wise", 8, "first-level independence degree (must match the server)")
		coinSeed = fs.Uint64("coin-seed", 1, "stored-coins master seed (must match the server)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *sessions < 1 {
		return fmt.Errorf("-sessions %d < 1", *sessions)
	}
	if *duration <= 0 {
		return fmt.Errorf("-duration must be positive")
	}
	if *batch < 1 {
		return fmt.Errorf("-batch %d < 1", *batch)
	}
	cfg := core.DefaultConfig()
	cfg.SecondLevel = *s
	cfg.FirstWise = *wise
	coins := distributed.Coins{Config: cfg, Seed: *coinSeed, Copies: *copies}
	spec := datagen.LoadSpec{
		Streams: strings.Split(*streams, ","),
		Domain:  datagen.DomainUniform,
		Support: *support,
		Theta:   *zipf,
		Deletes: *deletes,
	}
	// Validate the workload once up front, before opening connections.
	if _, err := datagen.NewLoadGen(spec, hashing.NewRNG(*seed)); err != nil {
		return err
	}

	start := time.Now()
	measureStart := start.Add(*warmup)
	end := measureStart.Add(*duration)
	results := make([]sessionResult, *sessions)
	var wg sync.WaitGroup
	for i := 0; i < *sessions; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			results[id] = runSession(id, *addr, coins, spec, *seed, *batch, measureStart, end)
		}(i)
	}
	wg.Wait()

	var total sessionResult
	for i := range results {
		r := &results[i]
		if r.err != nil {
			return fmt.Errorf("session %d: %w", i, r.err)
		}
		total.updates += r.updates
		total.batches += r.batches
		total.hist.merge(&r.hist)
	}

	rep := report{
		Benchmark:     "sketchbench: concurrent streaming sessions forwarding raw update batches over TCP",
		Addr:          *addr,
		Sessions:      *sessions,
		ClientProcs:   runtime.GOMAXPROCS(0),
		Batch:         *batch,
		Streams:       spec.Streams,
		Support:       *support,
		Zipf:          *zipf,
		Deletes:       *deletes,
		WarmupSec:     warmup.Seconds(),
		DurationSec:   duration.Seconds(),
		Updates:       total.updates,
		Batches:       total.batches,
		UpdatesPerSec: float64(total.updates) / duration.Seconds(),
		Latency: latency{
			P50:  us(total.hist.quantile(0.50)),
			P90:  us(total.hist.quantile(0.90)),
			P99:  us(total.hist.quantile(0.99)),
			P999: us(total.hist.quantile(0.999)),
			Max:  us(total.hist.max),
			Mean: us(total.hist.mean()),
		},
	}
	if *hist {
		for i, c := range total.hist.counts {
			if c > 0 {
				rep.Histogram = append(rep.Histogram, bucket{
					Ge:    float64(bucketLow(i)) / 1e3,
					Lt:    float64(bucketLow(i+1)) / 1e3,
					Count: c,
				})
			}
		}
	}

	dst := stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		dst = f
	}
	enc := json.NewEncoder(dst)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "sketchbench: %d sessions, %d updates in %s: %.0f updates/s, p50 %.0fµs p99 %.0fµs\n",
		*sessions, rep.Updates, duration, rep.UpdatesPerSec, rep.Latency.P50, rep.Latency.P99)
	return nil
}

// runSession opens one connection + streaming session and forwards
// batches until the shared deadline, timing each send→ack round trip.
// Batches sent before measureStart warm the connection and scratch
// buffers but are not counted.
func runSession(id int, addr string, coins distributed.Coins, spec datagen.LoadSpec,
	seed uint64, batch int, measureStart, end time.Time) sessionResult {
	var res sessionResult
	fail := func(err error) sessionResult {
		res.err = err
		return res
	}
	// Each session gets a decorrelated but deterministic workload.
	g, err := datagen.NewLoadGen(spec, hashing.NewRNG(seed+uint64(id)*0x9e3779b97f4a7c15))
	if err != nil {
		return fail(err)
	}
	cli, err := distributed.Dial(addr)
	if err != nil {
		return fail(err)
	}
	defer cli.Close()
	sess, err := cli.OpenStream(fmt.Sprintf("site-%d", id), coins)
	if err != nil {
		return fail(err)
	}
	buf := make([]datagen.Update, batch)
	var sent uint64
	for {
		now := time.Now()
		if !now.Before(end) {
			break
		}
		g.Fill(buf)
		t0 := time.Now()
		if _, err := sess.SendUpdates(buf); err != nil {
			return fail(err)
		}
		rt := time.Since(t0)
		sent += uint64(len(buf))
		if t0.After(measureStart) {
			res.hist.observe(rt)
			res.updates += uint64(len(buf))
			res.batches++
		}
	}
	// The final heartbeat's accepted total audits the ack protocol:
	// every update this session sent must have been counted.
	accepted, err := sess.Heartbeat()
	if err != nil {
		return fail(err)
	}
	if accepted != sent {
		return fail(fmt.Errorf("coordinator accepted %d updates, session sent %d", accepted, sent))
	}
	return res
}
