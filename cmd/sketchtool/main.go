// Command sketchtool builds, inspects, merges, and queries 2-level hash
// sketch synopses stored as files.
//
// Subcommands:
//
//	sketchtool build -in updates.txt -out sketches/ [-copies 512] [-s 32] [-seed 1]
//	    Replay an update stream file and write one synopsis file per
//	    stream into the output directory (<stream>.2lhs).
//
//	sketchtool estimate -dir sketches/ -expr '(A - B) & C' [-eps 0.1]
//	    Load synopses and print a cardinality estimate with diagnostics.
//
//	sketchtool exact -in updates.txt -expr '(A - B) & C'
//	    Replay the updates into exact multisets and print the true
//	    cardinality (linear memory; the baseline sketches avoid).
//
//	sketchtool info -file sketches/A.2lhs
//	    Print a synopsis file's parameters and footprint.
//
//	sketchtool merge -out merged.2lhs in1.2lhs in2.2lhs ...
//	    Merge synopses of sub-streams (same stored coins) into the
//	    synopsis of the combined stream.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"setsketch/internal/core"
	"setsketch/internal/datagen"
	"setsketch/internal/expr"
	"setsketch/internal/ingest"
	"setsketch/internal/multiset"
	"setsketch/internal/obs"
	"setsketch/internal/streamio"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "build":
		err = runBuild(os.Args[2:])
	case "estimate":
		err = runEstimate(os.Args[2:])
	case "exact":
		err = runExact(os.Args[2:])
	case "info":
		err = runInfo(os.Args[2:])
	case "merge":
		err = runMerge(os.Args[2:])
	case "union":
		err = runUnion(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "sketchtool:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: sketchtool {build|estimate|exact|info|merge|union} [flags]")
	os.Exit(2)
}

// runUnion estimates the distinct count of the union of the streams in
// the given synopsis files using the specialized Fig. 5 estimator
// (better constants than the general witness scheme). One file gives a
// plain distinct-count estimate.
func runUnion(args []string) error {
	fs := flag.NewFlagSet("union", flag.ExitOnError)
	eps := fs.Float64("eps", 0.1, "relative accuracy parameter ε")
	fs.Parse(args)
	if fs.NArg() < 1 {
		return fmt.Errorf("union: need at least one synopsis file")
	}
	fams := make([]*core.Family, 0, fs.NArg())
	for _, path := range fs.Args() {
		f, err := readFamily(path)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		fams = append(fams, f)
	}
	est, err := core.EstimateUnionMulti(fams, *eps)
	if err != nil {
		return err
	}
	fmt.Printf("|union of %d stream(s)| ≈ %.0f  (level %d, %d copies)\n",
		fs.NArg(), est.Value, est.Level, est.Copies)
	return nil
}

const fileExt = ".2lhs"

func runBuild(args []string) error {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	in := fs.String("in", "-", "update-stream file (- for stdin)")
	out := fs.String("out", ".", "output directory for synopsis files")
	copies := fs.Int("copies", 512, "sketch copies r per stream")
	s := fs.Int("s", 32, "second-level hash functions per sketch")
	wise := fs.Int("wise", 8, "first-level hash independence degree")
	seed := fs.Uint64("seed", 1, "stored-coins master seed")
	bits := fs.Bool("bits", false, "build 1-bit-cell synopses (64× smaller; rejects deletions)")
	workers := fs.Int("workers", 0, "ingest shard workers (0 = GOMAXPROCS)")
	digestCache := fs.Int("digest-cache", 0, "element-digest cache entries (0 = default 8192, negative = disable digest path)")
	level := fs.String("log-level", "warn", "progress/diagnostic log level: debug, info, warn, or error")
	fs.Parse(args)

	lv, err := obs.ParseLevel(*level)
	if err != nil {
		return err
	}
	log := obs.NewLogger(os.Stderr, lv).Named("build")

	cfg := core.DefaultConfig()
	cfg.SecondLevel = *s
	cfg.FirstWise = *wise
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}
	if *bits {
		return buildBits(*in, cfg, *seed, *copies, *out)
	}
	start := time.Now()
	// Updates flow through the ingest engine: sharded copy-range
	// workers, per-batch coalescing, and the element-digest cache — a
	// skewed input file pays the hash bill once per hot element instead
	// of once per line.
	eng, err := ingest.New(cfg, *seed, *copies, ingest.Options{
		Workers: *workers, DigestCache: *digestCache, Log: log,
	})
	if err != nil {
		return err
	}
	progress := 0
	n, err := scanUpdates(*in, func(u datagen.Update) error {
		if err := eng.Update(u.Stream, u.Elem, u.Delta); err != nil {
			return err
		}
		progress++
		if progress%(1<<20) == 0 {
			log.Info("progress", "updates", progress,
				"elapsed", time.Since(start).Round(time.Millisecond).String())
		}
		return nil
	})
	if err != nil {
		eng.Close()
		return err
	}
	if err := eng.Close(); err != nil {
		return err
	}
	fams := eng.Snapshot()
	names := sortedKeys(fams)
	for _, name := range names {
		path := filepath.Join(*out, name+fileExt)
		if err := writeFamily(path, fams[name]); err != nil {
			return err
		}
		fmt.Printf("%s: %d updates summarized in %d KiB\n",
			path, n, fams[name].MemoryBytes()/1024)
	}
	log.Info("build done", "updates", n, "streams", len(fams),
		"elapsed", time.Since(start).Round(time.Millisecond).String())
	return nil
}

// buildBits is the -bits variant of build: insert-only bit synopses.
func buildBits(in string, cfg core.Config, seed uint64, copies int, out string) error {
	fams := make(map[string]*core.BitFamily)
	n, err := scanUpdates(in, func(u datagen.Update) error {
		if u.Delta < 0 {
			return fmt.Errorf("build -bits: stream %q contains deletions; bit synopses are insert-only", u.Stream)
		}
		f, ok := fams[u.Stream]
		if !ok {
			var err error
			if f, err = core.NewBitFamily(cfg, seed, copies); err != nil {
				return err
			}
			fams[u.Stream] = f
		}
		f.Insert(u.Elem)
		return nil
	})
	if err != nil {
		return err
	}
	names := make([]string, 0, len(fams))
	for name := range fams {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		path := filepath.Join(out, name+fileExt)
		fd, err := os.Create(path)
		if err != nil {
			return err
		}
		if _, err := fams[name].WriteTo(fd); err != nil {
			fd.Close()
			return err
		}
		if err := fd.Close(); err != nil {
			return err
		}
		fmt.Printf("%s: %d updates summarized in %d KiB (bit cells)\n",
			path, n, fams[name].MemoryBytes()/1024)
	}
	return nil
}

func runEstimate(args []string) error {
	fs := flag.NewFlagSet("estimate", flag.ExitOnError)
	dir := fs.String("dir", ".", "directory holding <stream>"+fileExt+" synopsis files")
	exprStr := fs.String("expr", "", "set expression to estimate (required)")
	eps := fs.Float64("eps", 0.1, "relative accuracy parameter ε")
	single := fs.Bool("single", false, "use the paper-literal single-level witness estimator")
	fs.Parse(args)
	if *exprStr == "" {
		return fmt.Errorf("estimate: -expr is required")
	}
	node, err := expr.Parse(*exprStr)
	if err != nil {
		return err
	}
	fams := make(map[string]*core.Family)
	for _, name := range expr.Streams(node) {
		f, err := readFamily(filepath.Join(*dir, name+fileExt))
		if err != nil {
			return fmt.Errorf("stream %q: %w", name, err)
		}
		fams[name] = f
	}
	estimator := core.EstimateExpressionMultiLevel
	if *single {
		estimator = core.EstimateExpression
	}
	est, err := estimator(node, fams, *eps)
	if err != nil {
		return err
	}
	fmt.Printf("|%s| ≈ %.0f", node.String(), est.Value)
	if est.StdError > 0 {
		fmt.Printf(" ± %.0f", est.StdError)
	}
	fmt.Println()
	fmt.Printf("  union estimate û = %.0f, witness level = %d\n", est.Union, est.Level)
	fmt.Printf("  copies = %d, valid observations = %d, witnesses = %d\n",
		est.Copies, est.Valid, est.Witnesses)
	return nil
}

func runExact(args []string) error {
	fs := flag.NewFlagSet("exact", flag.ExitOnError)
	in := fs.String("in", "-", "update-stream file (- for stdin)")
	exprStr := fs.String("expr", "", "set expression to evaluate (required)")
	fs.Parse(args)
	if *exprStr == "" {
		return fmt.Errorf("exact: -expr is required")
	}
	node, err := expr.Parse(*exprStr)
	if err != nil {
		return err
	}
	ms := make(map[string]*multiset.Multiset)
	i := 0
	if _, err := scanUpdates(*in, func(u datagen.Update) error {
		i++
		m, ok := ms[u.Stream]
		if !ok {
			m = multiset.New()
			ms[u.Stream] = m
		}
		if err := m.Update(u.Elem, u.Delta); err != nil {
			return fmt.Errorf("update %d: %w", i, err)
		}
		return nil
	}); err != nil {
		return err
	}
	sets := make(map[string]multiset.Set, len(ms))
	for name, m := range ms {
		sets[name] = m.Support()
	}
	fmt.Printf("|%s| = %d\n", node.String(), len(node.EvalSet(sets)))
	return nil
}

func runInfo(args []string) error {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	file := fs.String("file", "", "synopsis file (required)")
	fs.Parse(args)
	if *file == "" {
		return fmt.Errorf("info: -file is required")
	}
	f, err := readFamily(*file)
	if err != nil {
		return err
	}
	st, err := os.Stat(*file)
	if err != nil {
		return err
	}
	cfg := f.Config()
	fmt.Printf("%s:\n", *file)
	fmt.Printf("  copies r = %d, second-level s = %d, first-level %d-wise, %d buckets\n",
		f.Copies(), cfg.SecondLevel, cfg.FirstWise, cfg.Buckets)
	fmt.Printf("  stored-coins seed = %d\n", f.Seed())
	fmt.Printf("  in-memory %d KiB, on disk %d KiB\n", f.MemoryBytes()/1024, st.Size()/1024)
	return nil
}

func runMerge(args []string) error {
	fs := flag.NewFlagSet("merge", flag.ExitOnError)
	out := fs.String("out", "", "output synopsis file (required)")
	fs.Parse(args)
	if *out == "" || fs.NArg() < 1 {
		return fmt.Errorf("merge: need -out and at least one input file")
	}
	var merged *core.Family
	for _, path := range fs.Args() {
		f, err := readFamily(path)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		if merged == nil {
			merged = f
			continue
		}
		if err := merged.Merge(f); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
	}
	if err := writeFamily(*out, merged); err != nil {
		return err
	}
	fmt.Printf("%s: merged %d synopses\n", *out, fs.NArg())
	return nil
}

// scanUpdates streams the updates of a file (stdin for "-") through fn
// one at a time — constant memory regardless of input size — and
// returns how many updates were processed.
func scanUpdates(path string, fn func(datagen.Update) error) (int, error) {
	r := os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return 0, err
		}
		defer f.Close()
		r = f
	}
	sc := streamio.NewScanner(r)
	n := 0
	for sc.Scan() {
		if err := fn(sc.Update()); err != nil {
			return n, err
		}
		n++
	}
	return n, sc.Err()
}

func writeFamily(path string, f *core.Family) error {
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.WriteTo(out); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}

// readFamily loads a synopsis file of either format: counter families
// ("2LHS") are read directly; insert-only bit families ("2LHB", from
// build -bits) are converted to occupancy-equivalent counter families,
// so every subcommand works on both.
func readFamily(path string) (*core.Family, error) {
	in, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer in.Close()
	br := bufio.NewReader(in)
	magic, err := br.Peek(4)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, core.ErrBadFormat)
	}
	if string(magic) == "2LHB" {
		bf, err := core.ReadBitFamily(br)
		if err != nil {
			return nil, err
		}
		return bf.ToCounters(), nil
	}
	return core.ReadFamily(br)
}

func sortedKeys(m map[string]*core.Family) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
