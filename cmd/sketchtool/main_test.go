package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeStream writes a small update-stream file covering three streams
// with known exact cardinalities: A = {0..199}, B = {100..299},
// C = {0..49, 250..299}; includes deletions that cancel.
func writeStream(t *testing.T) string {
	t.Helper()
	var sb strings.Builder
	sb.WriteString("# test stream\n")
	for e := 0; e < 200; e++ {
		fmt := func(s string, e int) {
			sb.WriteString(s)
			sb.WriteString(" ")
			sb.WriteString(itoa(e))
			sb.WriteString(" 1\n")
		}
		fmt("A", e)
		fmt("B", e+100)
		if e < 50 {
			fmt("C", e)
			fmt("C", e+250)
		}
	}
	// Insert-and-delete churn on A: net effect zero.
	for e := 1000; e < 1100; e++ {
		sb.WriteString("A " + itoa(e) + " 2\n")
		sb.WriteString("A " + itoa(e) + " -2\n")
	}
	path := filepath.Join(t.TempDir(), "updates.txt")
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

func TestBuildEstimateExactPipeline(t *testing.T) {
	stream := writeStream(t)
	outDir := t.TempDir()

	if err := runBuild([]string{"-in", stream, "-out", outDir, "-copies", "256", "-s", "16", "-seed", "3"}); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"A", "B", "C"} {
		if _, err := os.Stat(filepath.Join(outDir, name+fileExt)); err != nil {
			t.Fatalf("missing synopsis for %s: %v", name, err)
		}
	}
	if err := runEstimate([]string{"-dir", outDir, "-expr", "(A & B) - C", "-eps", "0.2"}); err != nil {
		t.Fatal(err)
	}
	if err := runExact([]string{"-in", stream, "-expr", "(A & B) - C"}); err != nil {
		t.Fatal(err)
	}
	if err := runInfo([]string{"-file", filepath.Join(outDir, "A"+fileExt)}); err != nil {
		t.Fatal(err)
	}
}

func TestMergeSubcommand(t *testing.T) {
	stream := writeStream(t)
	dir1, dir2 := t.TempDir(), t.TempDir()
	// Same stream summarized twice with identical coins: merging the
	// synopses is legal and produces a doubled-frequency synopsis.
	for _, d := range []string{dir1, dir2} {
		if err := runBuild([]string{"-in", stream, "-out", d, "-copies", "32", "-s", "8", "-seed", "3"}); err != nil {
			t.Fatal(err)
		}
	}
	merged := filepath.Join(t.TempDir(), "merged"+fileExt)
	err := runMerge([]string{"-out", merged,
		filepath.Join(dir1, "A"+fileExt), filepath.Join(dir2, "A"+fileExt)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(merged); err != nil {
		t.Fatal(err)
	}
	// Mismatched coins must fail.
	dir3 := t.TempDir()
	if err := runBuild([]string{"-in", stream, "-out", dir3, "-copies", "32", "-s", "8", "-seed", "99"}); err != nil {
		t.Fatal(err)
	}
	err = runMerge([]string{"-out", merged,
		filepath.Join(dir1, "A"+fileExt), filepath.Join(dir3, "A"+fileExt)})
	if err == nil {
		t.Error("merging synopses with different coins succeeded")
	}
}

func TestUnionSubcommand(t *testing.T) {
	stream := writeStream(t)
	outDir := t.TempDir()
	if err := runBuild([]string{"-in", stream, "-out", outDir, "-copies", "64", "-s", "8", "-seed", "3"}); err != nil {
		t.Fatal(err)
	}
	a := filepath.Join(outDir, "A"+fileExt)
	b := filepath.Join(outDir, "B"+fileExt)
	if err := runUnion([]string{"-eps", "0.2", a, b}); err != nil {
		t.Fatal(err)
	}
	// Single file: distinct count.
	if err := runUnion([]string{a}); err != nil {
		t.Fatal(err)
	}
	if err := runUnion([]string{}); err == nil {
		t.Error("union without files succeeded")
	}
	if err := runUnion([]string{"/nonexistent"}); err == nil {
		t.Error("union on missing file succeeded")
	}
}

func TestBuildBitsPipeline(t *testing.T) {
	stream := writeStream(t)
	outDir := t.TempDir()
	// writeStream contains deletions; -bits must reject it.
	err := runBuild([]string{"-in", stream, "-out", outDir, "-bits", "-copies", "64", "-s", "8", "-seed", "3"})
	if err == nil {
		t.Fatal("build -bits accepted a stream with deletions")
	}
	// An insert-only stream builds, and the other subcommands read the
	// bit files transparently.
	insertOnly := filepath.Join(t.TempDir(), "ins.txt")
	var sb strings.Builder
	for e := 0; e < 300; e++ {
		sb.WriteString("A " + itoa(e) + " 1\n")
		sb.WriteString("B " + itoa(e+150) + " 1\n")
	}
	if err := os.WriteFile(insertOnly, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runBuild([]string{"-in", insertOnly, "-out", outDir, "-bits", "-copies", "64", "-s", "8", "-seed", "3"}); err != nil {
		t.Fatal(err)
	}
	if err := runEstimate([]string{"-dir", outDir, "-expr", "A & B", "-eps", "0.3"}); err != nil {
		t.Fatal(err)
	}
	if err := runEstimate([]string{"-dir", outDir, "-expr", "A & B", "-eps", "0.3", "-single"}); err != nil {
		t.Fatal(err)
	}
	if err := runUnion([]string{filepath.Join(outDir, "A"+fileExt), filepath.Join(outDir, "B"+fileExt)}); err != nil {
		t.Fatal(err)
	}
}

func TestSubcommandErrors(t *testing.T) {
	if err := runEstimate([]string{"-dir", t.TempDir()}); err == nil {
		t.Error("estimate without -expr succeeded")
	}
	if err := runEstimate([]string{"-dir", t.TempDir(), "-expr", "A & B"}); err == nil {
		t.Error("estimate with missing synopsis files succeeded")
	}
	if err := runExact([]string{"-in", "/nonexistent", "-expr", "A"}); err == nil {
		t.Error("exact on missing file succeeded")
	}
	if err := runExact([]string{"-expr", ""}); err == nil {
		t.Error("exact without expression succeeded")
	}
	if err := runInfo([]string{}); err == nil {
		t.Error("info without -file succeeded")
	}
	if err := runMerge([]string{"-out", ""}); err == nil {
		t.Error("merge without inputs succeeded")
	}
	// Illegal deletion in the stream must be reported by exact replay.
	bad := filepath.Join(t.TempDir(), "bad.txt")
	if err := os.WriteFile(bad, []byte("A 1 -5\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runExact([]string{"-in", bad, "-expr", "A"}); err == nil {
		t.Error("exact accepted an illegal deletion")
	}
}
