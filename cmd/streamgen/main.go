// Command streamgen generates controlled synthetic update streams with
// the methodology of the paper's experimental study (§5.1): a fixed
// union cardinality, a target cardinality for a given set expression,
// and optional deletion churn that leaves the net multi-sets unchanged.
//
// Usage:
//
//	streamgen -expr '(A - B) & C' -union 262144 -target 8192 \
//	          -phantoms 0.5 -overcount 0.25 -seed 7 > updates.txt
//
// The output is one update triple per line: "<stream> <element> <delta>".
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"setsketch/internal/datagen"
	"setsketch/internal/expr"
	"setsketch/internal/hashing"
	"setsketch/internal/streamio"
)

func main() {
	if err := run(os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "streamgen:", err)
		os.Exit(1)
	}
}

// run executes the generator; split from main for testability.
func run(args []string, stderr io.Writer) error {
	fs := flag.NewFlagSet("streamgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		exprStr   = fs.String("expr", "A & B", "set expression whose cardinality is targeted")
		union     = fs.Int("union", 1<<18, "union cardinality u = |∪ streams|")
		target    = fs.Int("target", 1<<13, "target expression cardinality |E|")
		seed      = fs.Uint64("seed", 1, "random seed (same seed, same stream)")
		phantoms  = fs.Float64("phantoms", 0, "phantom churn ratio: extra elements inserted then fully deleted")
		overcount = fs.Float64("overcount", 0, "overcount churn ratio: elements inserted ×3 then deleted ×2")
		out       = fs.String("out", "-", "output file (- for stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	node, err := expr.Parse(*exprStr)
	if err != nil {
		return err
	}
	rng := hashing.NewRNG(*seed)
	w, err := datagen.Generate(datagen.Spec{Expr: node, Union: *union, Target: *target, Balance: true}, rng)
	if err != nil {
		return err
	}
	ups, err := datagen.RenderUpdates(w, datagen.ChurnSpec{Phantoms: *phantoms, Overcount: *overcount}, rng)
	if err != nil {
		return err
	}

	dst := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		dst = f
	}
	fmt.Fprintf(dst, "# streamgen expr=%q union=%d target=%d achieved=%d seed=%d phantoms=%g overcount=%g\n",
		*exprStr, *union, *target, w.TargetSize, *seed, *phantoms, *overcount)
	if err := streamio.Write(dst, ups); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "wrote %d updates; exact |%s| = %d, |union| = %d\n",
		len(ups), node.String(), w.TargetSize, w.UnionSize)
	return nil
}
