// Command streamgen generates controlled synthetic update streams with
// the methodology of the paper's experimental study (§5.1): a fixed
// union cardinality, a target cardinality for a given set expression,
// and optional deletion churn that leaves the net multi-sets unchanged.
//
// Usage:
//
//	streamgen -expr '(A - B) & C' -union 262144 -target 8192 \
//	          -phantoms 0.5 -overcount 0.25 -seed 7 > updates.txt
//
// With -updates N it instead emits the continuous Zipf/delete-ratio
// load the benchmarks use (datagen.LoadGen — the same workload
// definition behind cmd/sketchbench and BenchmarkIngestCoalesced):
//
//	streamgen -updates 1000000 -streams A,B,C -zipf 1.0 \
//	          -support 16384 -deletes 0.1 -seed 7 > updates.txt
//
// The output is one update triple per line: "<stream> <element> <delta>".
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"setsketch/internal/datagen"
	"setsketch/internal/expr"
	"setsketch/internal/hashing"
	"setsketch/internal/streamio"
)

func main() {
	if err := run(os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "streamgen:", err)
		os.Exit(1)
	}
}

// run executes the generator; split from main for testability.
func run(args []string, stderr io.Writer) error {
	fs := flag.NewFlagSet("streamgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		exprStr   = fs.String("expr", "A & B", "set expression whose cardinality is targeted")
		union     = fs.Int("union", 1<<18, "union cardinality u = |∪ streams|")
		target    = fs.Int("target", 1<<13, "target expression cardinality |E|")
		seed      = fs.Uint64("seed", 1, "random seed (same seed, same stream)")
		phantoms  = fs.Float64("phantoms", 0, "phantom churn ratio: extra elements inserted then fully deleted")
		overcount = fs.Float64("overcount", 0, "overcount churn ratio: elements inserted ×3 then deleted ×2")
		out       = fs.String("out", "-", "output file (- for stdout)")

		updates = fs.Int("updates", 0, "continuous-load mode: emit this many benchmark-workload updates instead of an expression workload")
		streams = fs.String("streams", "A,B,C", "continuous-load mode: comma-separated stream names")
		support = fs.Int("support", 1<<14, "continuous-load mode: distinct-element support")
		zipf    = fs.Float64("zipf", 1.0, "continuous-load mode: Zipf skew theta over the support (0 = uniform)")
		deletes = fs.Float64("deletes", 0, "continuous-load mode: fraction of updates that delete a live element")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	dst := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		dst = f
	}

	if *updates > 0 {
		return runLoad(dst, stderr, loadParams{
			updates: *updates,
			streams: *streams,
			support: *support,
			zipf:    *zipf,
			deletes: *deletes,
			seed:    *seed,
		})
	}

	node, err := expr.Parse(*exprStr)
	if err != nil {
		return err
	}
	rng := hashing.NewRNG(*seed)
	w, err := datagen.Generate(datagen.Spec{Expr: node, Union: *union, Target: *target, Balance: true}, rng)
	if err != nil {
		return err
	}
	ups, err := datagen.RenderUpdates(w, datagen.ChurnSpec{Phantoms: *phantoms, Overcount: *overcount}, rng)
	if err != nil {
		return err
	}

	fmt.Fprintf(dst, "# streamgen expr=%q union=%d target=%d achieved=%d seed=%d phantoms=%g overcount=%g\n",
		*exprStr, *union, *target, w.TargetSize, *seed, *phantoms, *overcount)
	if err := streamio.Write(dst, ups); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "wrote %d updates; exact |%s| = %d, |union| = %d\n",
		len(ups), node.String(), w.TargetSize, w.UnionSize)
	return nil
}

// loadParams bundles the continuous-load flags.
type loadParams struct {
	updates int
	streams string
	support int
	zipf    float64
	deletes float64
	seed    uint64
}

// runLoad emits the continuous benchmark workload in constant memory:
// updates are generated and written one line at a time, so arbitrarily
// long streams never materialize in full.
func runLoad(dst io.Writer, stderr io.Writer, p loadParams) error {
	names := strings.Split(p.streams, ",")
	g, err := datagen.NewLoadGen(datagen.LoadSpec{
		Streams: names,
		Domain:  datagen.DomainUniform,
		Support: p.support,
		Theta:   p.zipf,
		Deletes: p.deletes,
	}, hashing.NewRNG(p.seed))
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(dst)
	fmt.Fprintf(bw, "# streamgen updates=%d streams=%s support=%d zipf=%g deletes=%g seed=%d\n",
		p.updates, p.streams, p.support, p.zipf, p.deletes, p.seed)
	var line []byte
	for i := 0; i < p.updates; i++ {
		line = streamio.AppendUpdate(line[:0], g.Next())
		if _, err := bw.Write(line); err != nil {
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "wrote %d updates across %d streams; %d (stream, element) pairs live at end\n",
		p.updates, len(names), g.Live())
	return nil
}
