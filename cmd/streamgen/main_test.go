package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"setsketch/internal/multiset"
	"setsketch/internal/streamio"
)

func TestRunGeneratesValidStream(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "updates.txt")
	var stderr bytes.Buffer
	err := run([]string{
		"-expr", "(A - B) & C", "-union", "2048", "-target", "256",
		"-seed", "7", "-phantoms", "0.5", "-overcount", "0.25", "-out", out,
	}, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ups, err := streamio.Read(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(ups) == 0 {
		t.Fatal("no updates generated")
	}
	// Replaying the generated stream must be legal and reproduce the
	// advertised exact cardinality.
	ms := map[string]*multiset.Multiset{}
	for i, u := range ups {
		m, ok := ms[u.Stream]
		if !ok {
			m = multiset.New()
			ms[u.Stream] = m
		}
		if err := m.Update(u.Elem, u.Delta); err != nil {
			t.Fatalf("illegal update at line %d: %v", i+1, err)
		}
	}
	if len(ms) != 3 {
		t.Fatalf("generated %d streams, want 3", len(ms))
	}
	if !strings.Contains(stderr.String(), "exact |((A - B) & C)|") {
		t.Errorf("missing summary on stderr: %q", stderr.String())
	}
	// Deletions must be present given the churn flags.
	hasDeletion := false
	for _, u := range ups {
		if u.Delta < 0 {
			hasDeletion = true
			break
		}
	}
	if !hasDeletion {
		t.Error("churn flags produced no deletions")
	}
}

func TestRunDeterministic(t *testing.T) {
	dir := t.TempDir()
	out1 := filepath.Join(dir, "a.txt")
	out2 := filepath.Join(dir, "b.txt")
	var stderr bytes.Buffer
	for _, out := range []string{out1, out2} {
		if err := run([]string{"-union", "512", "-target", "64", "-seed", "9", "-out", out}, &stderr); err != nil {
			t.Fatal(err)
		}
	}
	b1, _ := os.ReadFile(out1)
	b2, _ := os.ReadFile(out2)
	if !bytes.Equal(b1, b2) {
		t.Error("same seed produced different streams")
	}
}

func TestRunErrors(t *testing.T) {
	var stderr bytes.Buffer
	cases := [][]string{
		{"-expr", "A &"},                                    // parse error
		{"-union", "0"},                                     // invalid spec
		{"-union", "100", "-target", "200"},                 // target > union
		{"-badflag"},                                        // unknown flag
		{"-out", "/nonexistent-dir-xyz/file.txt"},           // unwritable
		{"-union", "64", "-target", "8", "-phantoms", "-1"}, // bad churn
	}
	for _, args := range cases {
		if err := run(args, &stderr); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestRunLoadMode(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "load.txt")
	var stderr bytes.Buffer
	err := run([]string{
		"-updates", "20000", "-streams", "X,Y", "-support", "1024",
		"-zipf", "1.0", "-deletes", "0.2", "-seed", "11", "-out", out,
	}, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ups, err := streamio.Read(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(ups) != 20000 {
		t.Fatalf("wrote %d updates, want 20000", len(ups))
	}
	// Replay must be legal: the load generator only deletes live
	// elements, so every prefix keeps all net frequencies non-negative.
	ms := map[string]*multiset.Multiset{}
	deletions := 0
	for i, u := range ups {
		m, ok := ms[u.Stream]
		if !ok {
			m = multiset.New()
			ms[u.Stream] = m
		}
		if err := m.Update(u.Elem, u.Delta); err != nil {
			t.Fatalf("illegal update at line %d: %v", i+1, err)
		}
		if u.Delta < 0 {
			deletions++
		}
	}
	if len(ms) != 2 {
		t.Fatalf("generated %d streams, want 2", len(ms))
	}
	if deletions == 0 {
		t.Error("-deletes 0.2 produced no deletions")
	}
	if !strings.Contains(stderr.String(), "pairs live at end") {
		t.Errorf("missing load summary on stderr: %q", stderr.String())
	}
}

func TestRunLoadModeErrors(t *testing.T) {
	var stderr bytes.Buffer
	cases := [][]string{
		{"-updates", "10", "-streams", ""},  // empty stream name
		{"-updates", "10", "-support", "0"}, // bad support
		{"-updates", "10", "-deletes", "2"}, // bad delete ratio
		{"-updates", "10", "-zipf", "-0.5"}, // bad skew
	}
	for _, args := range cases {
		if err := run(args, &stderr); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}
