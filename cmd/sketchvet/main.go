// Command sketchvet is the repo's multichecker: it loads the named
// packages once and runs the four project-specific analyzers that
// machine-check the correctness invariants no compiler sees —
// guardedby (lock annotations), walbefore (append-before-apply),
// bitexact (bit-identical estimator contract), and obslint
// (metric/flag/keyword naming and documentation).
//
// Usage:
//
//	sketchvet [-timing] [packages]
//
// Packages default to ./... relative to the current directory.
// Diagnostics print one per line as file:line:col: analyzer: message;
// any diagnostic makes the exit status 1.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"setsketch/internal/analysis"
	"setsketch/internal/analysis/bitexact"
	"setsketch/internal/analysis/guardedby"
	"setsketch/internal/analysis/obslint"
	"setsketch/internal/analysis/walbefore"
)

var analyzers = []*analysis.Analyzer{
	guardedby.Analyzer,
	walbefore.Analyzer,
	bitexact.Analyzer,
	obslint.Analyzer,
}

func main() {
	timing := flag.Bool("timing", false, "print per-analyzer wall time to stderr")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: sketchvet [-timing] [packages]\n\nAnalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-10s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loadStart := time.Now()
	pkgs, err := analysis.Load("", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sketchvet: %v\n", err)
		os.Exit(2)
	}
	if *timing {
		fmt.Fprintf(os.Stderr, "sketchvet: load %d packages: %v\n", len(pkgs), time.Since(loadStart).Round(time.Millisecond))
	}

	failed := false
	for _, a := range analyzers {
		start := time.Now()
		diags, err := analysis.RunAnalyzers(pkgs, []*analysis.Analyzer{a})
		if err != nil {
			fmt.Fprintf(os.Stderr, "sketchvet: %v\n", err)
			os.Exit(2)
		}
		if *timing {
			fmt.Fprintf(os.Stderr, "sketchvet: %-10s %v\n", a.Name, time.Since(start).Round(time.Millisecond))
		}
		for _, d := range diags {
			fmt.Println(d)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}
