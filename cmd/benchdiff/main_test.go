package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeBench(t *testing.T, dir, name, body string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const oldJSON = `{
  "benchmark": "fixture",
  "results": [
    {"name": "BenchmarkA", "ns_per_op": 1000, "updates_per_s": 1000000},
    {"name": "BenchmarkB", "ns_per_op": 500},
    {"name": "BenchmarkGone", "ns_per_op": 42}
  ]
}`

func TestDiffPassesWithinThreshold(t *testing.T) {
	dir := t.TempDir()
	o := writeBench(t, dir, "old.json", oldJSON)
	n := writeBench(t, dir, "new.json", `{
  "results": [
    {"name": "BenchmarkA", "ns_per_op": 1050},
    {"name": "BenchmarkB", "ns_per_op": 400},
    {"name": "BenchmarkNew", "ns_per_op": 7}
  ]
}`)
	var stdout, stderr bytes.Buffer
	if err := run([]string{o, n}, &stdout, &stderr); err != nil {
		t.Fatalf("unexpected failure: %v\n%s", err, stdout.String())
	}
	out := stdout.String()
	for _, want := range []string{"BenchmarkA", "+5.0%", "BenchmarkNew", "new", "BenchmarkGone", "gone", "no regressions"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestDiffFlagsRegression(t *testing.T) {
	dir := t.TempDir()
	o := writeBench(t, dir, "old.json", oldJSON)
	n := writeBench(t, dir, "new.json", `{
  "results": [
    {"name": "BenchmarkA", "ns_per_op": 1200},
    {"name": "BenchmarkB", "ns_per_op": 510}
  ]
}`)
	var stdout, stderr bytes.Buffer
	err := run([]string{o, n}, &stdout, &stderr)
	if err != errRegression {
		t.Fatalf("err = %v, want errRegression\n%s", err, stdout.String())
	}
	if !strings.Contains(stdout.String(), "REGRESSION") {
		t.Errorf("output does not mark the regression:\n%s", stdout.String())
	}
	// B's +2% slowdown is within the default threshold.
	if strings.Count(stdout.String(), "REGRESSION") != 1 {
		t.Errorf("want exactly one regression:\n%s", stdout.String())
	}
	// A tighter threshold catches B too.
	stdout.Reset()
	if err := run([]string{"-threshold", "1", o, n}, &stdout, &stderr); err != errRegression {
		t.Fatalf("threshold 1%%: err = %v", err)
	}
	if strings.Count(stdout.String(), "REGRESSION") != 2 {
		t.Errorf("threshold 1%%: want two regressions:\n%s", stdout.String())
	}
}

func TestDiffErrors(t *testing.T) {
	dir := t.TempDir()
	ok := writeBench(t, dir, "ok.json", oldJSON)
	empty := writeBench(t, dir, "empty.json", `{"results": []}`)
	bad := writeBench(t, dir, "bad.json", `not json`)
	var stdout, stderr bytes.Buffer
	for _, args := range [][]string{
		{},
		{ok},
		{ok, filepath.Join(dir, "missing.json")},
		{ok, empty},
		{ok, bad},
		{bad, ok}, // OLD may be missing, but not malformed
		{"-badflag", ok, ok},
	} {
		if err := run(args, &stdout, &stderr); err == nil || err == errRegression {
			t.Errorf("run(%v) = %v, want usage/parse error", args, err)
		}
	}
}

// TestDiffMissingOldIsAllNew: a NEW file with no OLD counterpart (a
// freshly added benchmark suite) passes the gate — every result prints
// as "new", never as a regression.
func TestDiffMissingOldIsAllNew(t *testing.T) {
	dir := t.TempDir()
	n := writeBench(t, dir, "new.json", `{
  "results": [
    {"name": "BenchmarkFresh", "ns_per_op": 123},
    {"name": "BenchmarkAlsoFresh", "ns_per_op": 456}
  ]
}`)
	for _, old := range []string{
		filepath.Join(dir, "missing.json"),
		writeBench(t, dir, "empty-old.json", `{"results": []}`),
	} {
		var stdout, stderr bytes.Buffer
		if err := run([]string{old, n}, &stdout, &stderr); err != nil {
			t.Fatalf("run(%s, new) = %v, want pass\n%s", old, err, stderr.String())
		}
		out := stdout.String()
		if strings.Count(out, "new") < 2 || strings.Contains(out, "REGRESSION") {
			t.Errorf("old=%s: want both results marked new, no regressions:\n%s", old, out)
		}
		if !strings.Contains(stderr.String(), "treating every result as new") {
			t.Errorf("old=%s: missing the all-new warning on stderr: %q", old, stderr.String())
		}
	}
}
