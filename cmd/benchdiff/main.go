// Command benchdiff compares two BENCH_*.json files (as written by
// scripts/bench.sh) benchstat-style: results are matched by benchmark
// name, per-op deltas are printed, and any slowdown beyond the
// threshold fails the run — the one-command regression gate behind
// `make bench-compare OLD=... NEW=...`.
//
//	benchdiff old/BENCH_update.json BENCH_update.json
//	benchdiff -threshold 5 old.json new.json
//
// Exit status: 0 when no benchmark regressed past the threshold, 1 on
// a regression, 2 on usage or parse errors. Results present in only
// one file are reported but never fail the gate (benchmarks come and
// go); missing updates_per_s metrics are simply not compared. A
// missing or empty OLD file is likewise not an error: every NEW result
// is then "new, not regressed", so a freshly added benchmark suite
// passes the gate on its first run. A missing NEW file still fails —
// the side being judged must exist.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
)

func main() {
	switch err := run(os.Args[1:], os.Stdout, os.Stderr); {
	case err == nil:
	case err == errRegression:
		os.Exit(1)
	default:
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
}

var errRegression = fmt.Errorf("benchmark regression past threshold")

// benchFile is the subset of a BENCH_*.json file benchdiff reads.
type benchFile struct {
	Benchmark string   `json:"benchmark"`
	Results   []result `json:"results"`
}

type result struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	UpdatesPerS float64 `json:"updates_per_s"`
}

// load parses one BENCH_*.json side. With allowMissing (the OLD side),
// a nonexistent file or empty results array degrades to an empty
// baseline instead of an error: every NEW result then compares as
// "new", which never fails the gate.
func load(path string, allowMissing bool, warn io.Writer) (*benchFile, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		if allowMissing && os.IsNotExist(err) {
			fmt.Fprintf(warn, "benchdiff: %s does not exist; treating every result as new\n", path)
			return &benchFile{}, nil
		}
		return nil, err
	}
	var f benchFile
	if err := json.Unmarshal(b, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(f.Results) == 0 {
		if allowMissing {
			fmt.Fprintf(warn, "benchdiff: %s has no results; treating every result as new\n", path)
			return &benchFile{}, nil
		}
		return nil, fmt.Errorf("%s: no results array", path)
	}
	return &f, nil
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	threshold := fs.Float64("threshold", 10, "fail on ns/op slowdowns larger than this percentage")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("usage: benchdiff [-threshold pct] OLD.json NEW.json")
	}
	oldF, err := load(fs.Arg(0), true, stderr)
	if err != nil {
		return err
	}
	newF, err := load(fs.Arg(1), false, stderr)
	if err != nil {
		return err
	}
	oldBy := make(map[string]result, len(oldF.Results))
	for _, r := range oldF.Results {
		oldBy[r.Name] = r
	}

	regressions := 0
	fmt.Fprintf(stdout, "%-44s %14s %14s %9s\n", "benchmark", "old ns/op", "new ns/op", "delta")
	for _, nr := range newF.Results {
		or, ok := oldBy[nr.Name]
		if !ok {
			fmt.Fprintf(stdout, "%-44s %14s %14.0f %9s\n", nr.Name, "-", nr.NsPerOp, "new")
			continue
		}
		delete(oldBy, nr.Name)
		if or.NsPerOp <= 0 || nr.NsPerOp <= 0 {
			fmt.Fprintf(stdout, "%-44s %14.0f %14.0f %9s\n", nr.Name, or.NsPerOp, nr.NsPerOp, "?")
			continue
		}
		pct := (nr.NsPerOp - or.NsPerOp) / or.NsPerOp * 100
		mark := ""
		if pct > *threshold {
			mark = "  REGRESSION"
			regressions++
		}
		fmt.Fprintf(stdout, "%-44s %14.0f %14.0f %+8.1f%%%s\n", nr.Name, or.NsPerOp, nr.NsPerOp, pct, mark)
	}
	for name := range oldBy {
		fmt.Fprintf(stdout, "%-44s %14.0f %14s %9s\n", name, oldBy[name].NsPerOp, "-", "gone")
	}
	if regressions > 0 {
		fmt.Fprintf(stderr, "benchdiff: %d benchmark(s) regressed more than %.0f%% (ns/op)\n", regressions, *threshold)
		return errRegression
	}
	fmt.Fprintf(stdout, "no regressions past %.0f%%\n", *threshold)
	return nil
}
