// Command experiments regenerates every figure of the paper's
// evaluation (§5.2) plus the ablations documented in DESIGN.md, printing
// the same series the paper plots: trimmed-average relative error as a
// function of the number of 2-level hash sketches, one series per
// target expression cardinality.
//
//	experiments -fig 7a          # Figure 7(a): |A ∩ B|
//	experiments -fig 7b          # Figure 7(b): |A − B|
//	experiments -fig 8           # Figure 8:    |(A − B) ∩ C|
//	experiments -fig churn          # ablation: deletion churn invariance
//	experiments -fig s-ablation     # ablation: second-level count s
//	experiments -fig t-ablation     # ablation: first-level independence t
//	experiments -fig level-ablation # ablation: single- vs multi-level witnesses
//	experiments -fig baselines      # 2LHS vs MIPs under deletion churn
//	experiments -fig ratio          # error vs |E|/u from u/2 to u/1024 (§5.1 range)
//	experiments -fig memory         # §5.2 space accounting: counters vs bits
//	experiments -fig distinct       # distinct-count shootout vs all baselines
//	experiments -fig all
//
// The paper fixes u ≈ 2^18; that scale takes hours on one core, so the
// default here is u = 2^14 with -scale to move along the axis
// (-scale 16 reproduces the paper's u exactly). Error behaviour
// depends on the target/union *ratio*, which is preserved at every
// scale; EXPERIMENTS.md records measured-vs-paper numbers.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"
	"time"

	"setsketch/internal/baselines"
	"setsketch/internal/core"
	"setsketch/internal/datagen"
	"setsketch/internal/expr"
	"setsketch/internal/harness"
	"setsketch/internal/hashing"
)

func main() {
	var (
		fig    = flag.String("fig", "all", "figure to regenerate: 7a, 7b, 8, churn, s-ablation, t-ablation, all")
		scale  = flag.Int("scale", 1, "multiply the default union size u = 2^14 by this factor (16 = paper scale)")
		runs   = flag.Int("runs", 12, "randomized trials per point (paper: 10–15)")
		seed   = flag.Uint64("seed", 2003, "master random seed")
		eps    = flag.Float64("eps", 0.1, "estimator accuracy parameter ε")
		csvOut = flag.String("csv", "", "also write results as CSV to this file")
	)
	flag.Parse()

	union := (1 << 14) * *scale
	runner := &runner{union: union, runs: *runs, seed: *seed, eps: *eps}
	if *csvOut != "" {
		f, err := os.Create(*csvOut)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		runner.csv = csv.NewWriter(f)
		runner.csv.Write([]string{"figure", "target", "sketches", "trimmed_rel_error", "runs", "failed"})
		defer runner.csv.Flush()
	}

	figs := []string{*fig}
	if *fig == "all" {
		figs = []string{"7a", "7b", "8", "churn", "s-ablation", "t-ablation", "level-ablation", "baselines", "ratio", "memory", "distinct", "skew"}
	}
	for _, f := range figs {
		if err := runner.run(f); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}

type runner struct {
	union int
	runs  int
	seed  uint64
	eps   float64
	csv   *csv.Writer
}

// sketchCounts is the x-axis of every figure (the paper sweeps up to 512).
var sketchCounts = []int{64, 128, 256, 512}

// targetsFor returns the three series of a figure: e = u/4, u/16, u/32
// (the paper varies u/2 … u/2^10 and plots three sizes; u/32 matches
// the |A − B| = 8192 = 2^18/2^5 series called out in §5.2).
func (r *runner) targetsFor() []int {
	return []int{r.union / 4, r.union / 16, r.union / 32}
}

func (r *runner) run(fig string) error {
	start := time.Now()
	switch fig {
	case "7a":
		return r.sweep(fig, "Figure 7(a): set-intersection cardinality |A & B|",
			harness.Sweep{Expr: "A & B", Targets: r.targetsFor()}, start)
	case "7b":
		return r.sweep(fig, "Figure 7(b): set-difference cardinality |A - B|",
			harness.Sweep{Expr: "A - B", Targets: r.targetsFor()}, start)
	case "8":
		return r.sweep(fig, "Figure 8: set-expression cardinality |(A - B) & C|",
			harness.Sweep{Expr: "(A - B) & C", Targets: r.targetsFor()}, start)
	case "churn":
		return r.churn(start)
	case "s-ablation":
		return r.sAblation(start)
	case "t-ablation":
		return r.tAblation(start)
	case "level-ablation":
		return r.levelAblation(start)
	case "baselines":
		return r.baselines(start)
	case "ratio":
		return r.ratio(start)
	case "memory":
		return r.memory()
	case "distinct":
		return r.distinct(start)
	case "skew":
		return r.skew(start)
	default:
		return fmt.Errorf("unknown figure %q", fig)
	}
}

// sweep fills in the shared parameters, runs, and prints one figure.
func (r *runner) sweep(fig, title string, s harness.Sweep, start time.Time) error {
	s.Union = r.union
	s.SketchCounts = sketchCounts
	s.Runs = r.runs
	s.TrimFraction = 0.30
	s.Eps = r.eps
	s.Seed = r.seed
	res, err := s.Run()
	if err != nil {
		return err
	}
	r.print(fig, title, res, start)
	return nil
}

func (r *runner) print(fig, title string, res *harness.Result, start time.Time) {
	fmt.Printf("\n%s\n", title)
	fmt.Printf("u = %d, %d runs/point, 30%% trimmed mean, eps = %g  (%.1fs)\n",
		res.Sweep.Union, res.Sweep.Runs, res.Sweep.Eps, time.Since(start).Seconds())
	fmt.Printf("%-12s", "sketches")
	for _, target := range res.Sweep.Targets {
		fmt.Printf("  |E|=%-8d", target)
	}
	fmt.Println()
	for _, rcount := range res.Sweep.SketchCounts {
		fmt.Printf("%-12d", rcount)
		for _, target := range res.Sweep.Targets {
			for _, p := range res.Series(target) {
				if p.Sketches == rcount {
					fmt.Printf("  %6.1f%%     ", p.Error*100)
				}
			}
		}
		fmt.Println()
	}
	if r.csv != nil {
		for _, p := range res.Points {
			r.csv.Write([]string{
				fig,
				strconv.Itoa(p.Target),
				strconv.Itoa(p.Sketches),
				strconv.FormatFloat(p.Error, 'f', 6, 64),
				strconv.Itoa(p.Runs),
				strconv.Itoa(p.Failed),
			})
		}
	}
}

// churn shows deletion-invariance end to end: the same seeds with 0%,
// 100%, and 200% deletion churn produce bit-identical error rows.
func (r *runner) churn(start time.Time) error {
	base := harness.Sweep{
		Expr:         "A - B",
		Union:        r.union,
		Targets:      []int{r.union / 16},
		SketchCounts: sketchCounts,
		Runs:         r.runs,
		TrimFraction: 0.30,
		Eps:          r.eps,
		Seed:         r.seed,
	}
	fmt.Printf("\nAblation: deletion churn invariance, |A - B| = %d, u = %d\n", r.union/16, r.union)
	fmt.Printf("%-22s", "churn level")
	for _, rc := range sketchCounts {
		fmt.Printf("  r=%-8d", rc)
	}
	fmt.Println()
	for _, churn := range []struct {
		label string
		spec  datagen.ChurnSpec
	}{
		{"none", datagen.ChurnSpec{}},
		{"100% phantoms", datagen.ChurnSpec{Phantoms: 1.0}},
		{"200% + overcount", datagen.ChurnSpec{Phantoms: 2.0, Overcount: 0.5}},
	} {
		s := base
		s.Churn = churn.spec
		res, err := s.Run()
		if err != nil {
			return err
		}
		fmt.Printf("%-22s", churn.label)
		for _, p := range res.Series(r.union / 16) {
			fmt.Printf("  %6.1f%%   ", p.Error*100)
		}
		fmt.Println()
		if r.csv != nil {
			for _, p := range res.Points {
				r.csv.Write([]string{"churn:" + churn.label, strconv.Itoa(p.Target),
					strconv.Itoa(p.Sketches), strconv.FormatFloat(p.Error, 'f', 6, 64),
					strconv.Itoa(p.Runs), strconv.Itoa(p.Failed)})
			}
		}
	}
	fmt.Printf("(identical rows are expected: sketches are impervious to deletions; %.1fs)\n",
		time.Since(start).Seconds())
	return nil
}

// sAblation sweeps the second-level count s (Lemma 3.1: singleton tests
// err with probability 2^−s, so tiny s inflates error).
func (r *runner) sAblation(start time.Time) error {
	fmt.Printf("\nAblation: second-level hash count s, |A & B| = %d, u = %d, r = 256\n",
		r.union/16, r.union)
	fmt.Printf("%-8s  %s\n", "s", "trimmed rel error")
	for _, s := range []int{1, 2, 4, 8, 16, 32} {
		cfg := core.DefaultConfig()
		cfg.SecondLevel = s
		sweep := harness.Sweep{
			Expr: "A & B", Union: r.union, Targets: []int{r.union / 16},
			SketchCounts: []int{256}, Runs: r.runs, TrimFraction: 0.30,
			Eps: r.eps, Seed: r.seed, Config: cfg,
		}
		res, err := sweep.Run()
		if err != nil {
			return err
		}
		p := res.Points[0]
		fmt.Printf("%-8d  %6.1f%%\n", s, p.Error*100)
		if r.csv != nil {
			r.csv.Write([]string{"s-ablation:" + strconv.Itoa(s), strconv.Itoa(p.Target),
				strconv.Itoa(p.Sketches), strconv.FormatFloat(p.Error, 'f', 6, 64),
				strconv.Itoa(p.Runs), strconv.Itoa(p.Failed)})
		}
	}
	fmt.Printf("(%.1fs)\n", time.Since(start).Seconds())
	return nil
}

// levelAblation compares the paper's literal single-level witness
// scheme (Fig. 6 pseudo-code) against the multi-level harvest used for
// figure reproduction: same storage, same expectation, ~15× the valid
// observations.
func (r *runner) levelAblation(start time.Time) error {
	fmt.Printf("\nAblation: single-level (Fig. 6 literal) vs multi-level witness harvest\n")
	fmt.Printf("|A & B| = %d, u = %d\n", r.union/16, r.union)
	fmt.Printf("%-14s", "estimator")
	for _, rc := range sketchCounts {
		fmt.Printf("  r=%-8d", rc)
	}
	fmt.Println()
	for _, mode := range []struct {
		label  string
		single bool
	}{
		{"single-level", true},
		{"multi-level", false},
	} {
		sweep := harness.Sweep{
			Expr: "A & B", Union: r.union, Targets: []int{r.union / 16},
			SketchCounts: sketchCounts, Runs: r.runs, TrimFraction: 0.30,
			Eps: r.eps, Seed: r.seed, SingleLevel: mode.single,
		}
		res, err := sweep.Run()
		if err != nil {
			return err
		}
		fmt.Printf("%-14s", mode.label)
		for _, p := range res.Series(r.union / 16) {
			fmt.Printf("  %6.1f%%   ", p.Error*100)
		}
		fmt.Println()
		if r.csv != nil {
			for _, p := range res.Points {
				r.csv.Write([]string{"level-ablation:" + mode.label, strconv.Itoa(p.Target),
					strconv.Itoa(p.Sketches), strconv.FormatFloat(p.Error, 'f', 6, 64),
					strconv.Itoa(p.Runs), strconv.Itoa(p.Failed)})
			}
		}
	}
	fmt.Printf("(%.1fs)\n", time.Since(start).Seconds())
	return nil
}

// baselines contrasts 2-level hash sketches with the min-wise
// permutations (MIPs) prior art under deletion churn — the paper's §1
// motivation. The churn never changes the net multisets, so the true
// |A ∩ B| is constant; MIPs coordinates deplete as deleted elements
// were their minima, while the counter-based sketches are untouched.
// MIPs is even given the EXACT union cardinality to scale its Jaccard
// estimate (2LHS estimates its own û).
func (r *runner) baselines(start time.Time) error {
	const mipsK = 512
	union := r.union
	target := union / 4
	fmt.Printf("\nBaseline comparison under deletion churn: |A & B| = %d, u = %d\n", target, union)
	fmt.Printf("(MIPs: k = %d coordinates, exact û given; 2LHS: r = 256, own û)\n", mipsK)
	fmt.Printf("%-10s  %14s  %14s  %16s\n", "churn", "2LHS error", "MIPs error", "MIPs usable k")

	node := expr.MustParse("A & B")
	for _, churn := range []float64{0, 0.25, 0.5, 1.0, 2.0} {
		// Same seed for every row: the net multisets are identical, so
		// the 2LHS column must be constant (deletion invariance) while
		// MIPs depletes.
		rng := hashing.NewRNG(r.seed)
		w, err := datagen.Generate(datagen.Spec{Expr: node, Union: union, Target: target, Balance: true}, rng)
		if err != nil {
			return err
		}
		exact := exactIntersection(w)
		ups, err := datagen.RenderUpdates(w, datagen.ChurnSpec{Phantoms: churn}, rng)
		if err != nil {
			return err
		}

		// 2-level hash sketches: apply every update as-is.
		cfg := core.DefaultConfig()
		fams := map[string]*core.Family{}
		for _, name := range []string{"A", "B"} {
			f, err := core.NewFamily(cfg, r.seed, 256)
			if err != nil {
				return err
			}
			fams[name] = f
		}
		// MIPs: one synopsis per stream; deltas expand to unit ops.
		mips := map[string]*baselines.MIPs{}
		for _, name := range []string{"A", "B"} {
			m, err := baselines.NewMIPs(r.seed, mipsK)
			if err != nil {
				return err
			}
			mips[name] = m
		}
		for _, u := range ups {
			fams[u.Stream].Update(u.Elem, u.Delta)
			m := mips[u.Stream]
			if u.Delta > 0 {
				for i := int64(0); i < u.Delta; i++ {
					m.Insert(u.Elem)
				}
			} else {
				for i := int64(0); i < -u.Delta; i++ {
					m.Delete(u.Elem)
				}
			}
		}

		sketchEst, err := core.EstimateExpressionMultiLevel(node, fams, r.eps)
		if err != nil {
			return err
		}
		sketchErr := relError(sketchEst.Value, exact)

		mipsCol := "    DEPLETED"
		mipsEst, err := baselines.IntersectionEstimate(mips["A"], mips["B"], float64(w.UnionSize))
		if err == nil {
			mipsCol = fmt.Sprintf("%13.1f%%", relError(mipsEst, exact)*100)
		}
		usable := mips["A"].Usable()
		if u2 := mips["B"].Usable(); u2 < usable {
			usable = u2
		}
		fmt.Printf("%-10.2f  %13.1f%%  %14s  %9d/%d\n",
			churn, sketchErr*100, mipsCol, usable, mipsK)
		if r.csv != nil {
			r.csv.Write([]string{fmt.Sprintf("baselines:churn=%.2f", churn),
				strconv.Itoa(exact), "256",
				strconv.FormatFloat(sketchErr, 'f', 6, 64), "1", "0"})
		}
	}
	fmt.Printf("(%.1fs)\n", time.Since(start).Seconds())
	return nil
}

// ratio sweeps the target size e from u/2 down to u/2^10 at fixed
// r = 512, the full range §5.1 describes. Theorems 3.4/3.5 predict the
// required space grows with |A ∪ B| / |E|, so at fixed space the error
// should grow roughly like √(u/e) as e shrinks.
func (r *runner) ratio(start time.Time) error {
	var targets []int
	for div := 2; div <= 1024; div *= 2 {
		if t := r.union / div; t >= 1 {
			targets = append(targets, t)
		}
	}
	sweep := harness.Sweep{
		Expr: "A & B", Union: r.union, Targets: targets,
		SketchCounts: []int{512}, Runs: r.runs, TrimFraction: 0.30,
		Eps: r.eps, Seed: r.seed,
	}
	res, err := sweep.Run()
	if err != nil {
		return err
	}
	fmt.Printf("\nTarget-ratio sweep: |A & B| from u/2 to u/1024 at r = 512, u = %d\n", r.union)
	fmt.Printf("%-12s  %-10s  %s\n", "|E|", "u/|E|", "trimmed rel error")
	for _, target := range targets {
		for _, p := range res.Series(target) {
			fmt.Printf("%-12d  %-10d  %6.1f%%  (failed runs: %d)\n",
				target, r.union/target, p.Error*100, p.Failed)
			if r.csv != nil {
				r.csv.Write([]string{"ratio", strconv.Itoa(p.Target),
					strconv.Itoa(p.Sketches), strconv.FormatFloat(p.Error, 'f', 6, 64),
					strconv.Itoa(p.Runs), strconv.Itoa(p.Failed)})
			}
		}
	}
	fmt.Printf("(%.1fs)\n", time.Since(start).Seconds())
	return nil
}

// distinct runs the classic distinct-count problem (the special case
// all the §1 prior work targets) across every estimator in the
// repository on identical insert-only streams: the paper's 2-level
// hash sketch union estimator (Fig. 5 and the all-levels MLE), and the
// prior-art baselines Flajolet–Martin (Fig. 2), BJKST k-minimum
// values, and Gibbons distinct sampling. Trimmed-mean error over runs.
func (r *runner) distinct(start time.Time) error {
	n := r.union
	fmt.Printf("\nDistinct-count shootout: n = %d distinct elements, %d runs, 30%% trim\n", n, r.runs)
	fmt.Printf("%-34s %10s  %s\n", "estimator", "error", "synopsis bytes")

	type contender struct {
		name  string
		bytes int
		errs  []float64
	}
	contenders := []*contender{
		{name: "2LHS Fig. 5 union (r=256)"},
		{name: "2LHS all-levels MLE (r=256)"},
		{name: "FM bitmaps (r=256)"},
		{name: "BJKST k-min values (k=256)"},
		{name: "distinct sampling (cap=256)"},
	}
	for run := 0; run < r.runs; run++ {
		rng := hashing.NewRNG(hashing.DeriveSeed(r.seed, uint64(run)))
		seed := rng.Uint64()
		fam, err := core.NewBitFamily(core.DefaultConfig(), seed, 256)
		if err != nil {
			return err
		}
		fm, err := baselines.NewFM(seed, 256, 32)
		if err != nil {
			return err
		}
		bj, err := baselines.NewBJKST(seed, 256)
		if err != nil {
			return err
		}
		ds, err := baselines.NewDistinctSample(seed, 256)
		if err != nil {
			return err
		}
		seen := make(map[uint64]bool, n)
		for len(seen) < n {
			e := rng.Uint64n(1 << 32)
			if seen[e] {
				continue
			}
			seen[e] = true
			fam.Insert(e)
			fm.Insert(e)
			bj.Insert(e)
			ds.Insert(e)
		}
		fig5, err := core.EstimateUnionBits([]*core.BitFamily{fam}, r.eps)
		if err != nil {
			return err
		}
		mle, err := core.EstimateUnionBitsML([]*core.BitFamily{fam}, r.eps)
		if err != nil {
			return err
		}
		values := []float64{fig5.Value, mle.Value, fm.Estimate(), bj.Estimate(), ds.Estimate()}
		sizes := []int{fam.MemoryBytes(), fam.MemoryBytes(), fm.MemoryBytes(), 256 * 16, 256 * 16}
		for i, c := range contenders {
			c.errs = append(c.errs, relError(values[i], n))
			c.bytes = sizes[i]
		}
	}
	for _, c := range contenders {
		err := harness.TrimmedMean(c.errs, 0.30)
		fmt.Printf("%-34s %9.1f%%  %d\n", c.name, err*100, c.bytes)
		if r.csv != nil {
			r.csv.Write([]string{"distinct:" + c.name, strconv.Itoa(n), "256",
				strconv.FormatFloat(err, 'f', 6, 64), strconv.Itoa(r.runs), "0"})
		}
	}
	fmt.Printf("(%.1fs)\n", time.Since(start).Seconds())
	return nil
}

// skew stresses the estimators with adversarial element domains and
// heavy-hitter multiplicities. The paper's study draws elements
// uniformly (§5.1); t-wise independent hashing makes accuracy
// domain-oblivious, which this table verifies: errors for sequential,
// clustered, and strided domains (with Zipf-like multiplicities) match
// the uniform row within noise.
func (r *runner) skew(start time.Time) error {
	const rCopies = 256
	u, inter := r.union, r.union/4
	fmt.Printf("\nAblation: element-domain skew, |A & B| = %d, u = %d, r = %d, heavy-hitter multiplicities\n",
		inter, u, rCopies)
	fmt.Printf("%-14s  %s\n", "domain", "trimmed rel error")
	node := expr.MustParse("A & B")
	for _, d := range datagen.Domains() {
		var errs []float64
		for run := 0; run < r.runs; run++ {
			rng := hashing.NewRNG(hashing.DeriveSeed(r.seed, uint64(d), uint64(run)))
			a, b, mult, err := datagen.SkewedOverlap(d, u, inter, rng)
			if err != nil {
				return err
			}
			famSeed := rng.Uint64() // one seed: families must be aligned
			fams := map[string]*core.Family{}
			for _, name := range []string{"A", "B"} {
				f, err := core.NewFamily(core.DefaultConfig(), famSeed, rCopies)
				if err != nil {
					return err
				}
				fams[name] = f
			}
			// Insert with multiplicities; distinct counts are unchanged.
			for i, e := range a {
				fams["A"].Update(e, mult[i%len(mult)])
			}
			for i, e := range b {
				fams["B"].Update(e, mult[i%len(mult)])
			}
			est, err := core.EstimateExpressionMultiLevel(node, fams, r.eps)
			if err != nil {
				return err
			}
			errs = append(errs, relError(est.Value, inter))
		}
		e := harness.TrimmedMean(errs, 0.30)
		fmt.Printf("%-14s  %6.1f%%\n", d.String(), e*100)
		if r.csv != nil {
			r.csv.Write([]string{"skew:" + d.String(), strconv.Itoa(inter), strconv.Itoa(rCopies),
				strconv.FormatFloat(e, 'f', 6, 64), strconv.Itoa(r.runs), "0"})
		}
	}
	fmt.Printf("(%.1fs)\n", time.Since(start).Seconds())
	return nil
}

// memory prints the §5.2 space accounting: bytes per sketch for the
// counter representation (general update streams), the bit
// representation (the paper's insert-only experimental variant), and
// the paper's own "multiply the number of sketches with 32" rough
// estimate, across second-level sizes.
func (r *runner) memory() error {
	fmt.Printf("\nSpace accounting per 2-level hash sketch (61 first-level buckets)\n")
	fmt.Printf("%-6s  %16s  %14s  %18s\n", "s", "counter bytes", "bit bytes", "paper's ≈32 B/sketch")
	for _, s := range []int{8, 16, 32} {
		cfg := core.DefaultConfig()
		cfg.SecondLevel = s
		cs, err := core.NewSketch(cfg, 1)
		if err != nil {
			return err
		}
		bs, err := core.NewBitSketch(cfg, 1)
		if err != nil {
			return err
		}
		note := ""
		if s == 32 {
			note = "32 (counts only the chosen witness level: s·2 bits = 8 B + bookkeeping)"
		}
		fmt.Printf("%-6d  %16d  %14d  %18s\n", s, cs.MemoryBytes(), bs.MemoryBytes(), note)
	}
	fmt.Println("estimates from the two representations of an insert-only stream are identical (TestBitEstimatesIdenticalToCounters)")
	return nil
}

func exactIntersection(w *datagen.Workload) int {
	inA := make(map[uint64]bool, len(w.Streams["A"]))
	for _, e := range w.Streams["A"] {
		inA[e] = true
	}
	n := 0
	for _, e := range w.Streams["B"] {
		if inA[e] {
			n++
		}
	}
	return n
}

func relError(got float64, want int) float64 {
	if want == 0 {
		return got
	}
	d := got - float64(want)
	if d < 0 {
		d = -d
	}
	return d / float64(want)
}

// tAblation sweeps the first-level independence degree t (§3.6:
// Θ(log 1/ε)-wise suffices; pairwise already behaves well in practice,
// which this table documents).
func (r *runner) tAblation(start time.Time) error {
	fmt.Printf("\nAblation: first-level independence t, |A & B| = %d, u = %d, r = 256\n",
		r.union/16, r.union)
	fmt.Printf("%-8s  %s\n", "t", "trimmed rel error")
	for _, t := range []int{2, 4, 8, 16} {
		cfg := core.DefaultConfig()
		cfg.FirstWise = t
		sweep := harness.Sweep{
			Expr: "A & B", Union: r.union, Targets: []int{r.union / 16},
			SketchCounts: []int{256}, Runs: r.runs, TrimFraction: 0.30,
			Eps: r.eps, Seed: r.seed, Config: cfg,
		}
		res, err := sweep.Run()
		if err != nil {
			return err
		}
		p := res.Points[0]
		fmt.Printf("%-8d  %6.1f%%\n", t, p.Error*100)
		if r.csv != nil {
			r.csv.Write([]string{"t-ablation:" + strconv.Itoa(t), strconv.Itoa(p.Target),
				strconv.Itoa(p.Sketches), strconv.FormatFloat(p.Error, 'f', 6, 64),
				strconv.Itoa(p.Runs), strconv.Itoa(p.Failed)})
		}
	}
	fmt.Printf("(%.1fs)\n", time.Since(start).Seconds())
	return nil
}
