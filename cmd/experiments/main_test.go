package main

import (
	"testing"
	"time"
)

// tinyRunner keeps every figure branch executable in a few seconds.
func tinyRunner() *runner {
	return &runner{union: 256, runs: 2, seed: 7, eps: 0.3}
}

func TestRunEachFigure(t *testing.T) {
	if testing.Short() {
		t.Skip("figure regeneration is slow")
	}
	r := tinyRunner()
	for _, fig := range []string{"7a", "memory"} {
		if err := r.run(fig); err != nil {
			t.Errorf("fig %s: %v", fig, err)
		}
	}
}

func TestRunUnknownFigure(t *testing.T) {
	if err := tinyRunner().run("nope"); err == nil {
		t.Error("unknown figure accepted")
	}
}

func TestBaselinesFigure(t *testing.T) {
	if testing.Short() {
		t.Skip("baseline comparison is slow")
	}
	if err := tinyRunner().baselines(timeNow()); err != nil {
		t.Fatal(err)
	}
}

func TestDistinctFigure(t *testing.T) {
	if testing.Short() {
		t.Skip("shootout is slow")
	}
	if err := tinyRunner().distinct(timeNow()); err != nil {
		t.Fatal(err)
	}
}

func TestRatioFigure(t *testing.T) {
	if testing.Short() {
		t.Skip("ratio sweep is slow")
	}
	if err := tinyRunner().ratio(timeNow()); err != nil {
		t.Fatal(err)
	}
}

func TestExactIntersectionAndRelError(t *testing.T) {
	if relError(110, 100) != 0.1 {
		t.Error("relError wrong")
	}
	if relError(90, 100) != 0.1 {
		t.Error("relError not absolute")
	}
	if relError(5, 0) != 5 {
		t.Error("relError at zero truth")
	}
}

// timeNow avoids importing time in every test call site.
func timeNow() (t2 time.Time) { return time.Now() }
