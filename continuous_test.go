package setsketch

import (
	"math"
	"testing"
)

func TestContinuousQueryFires(t *testing.T) {
	p := newProcessor(t, Options{Copies: 128, SecondLevel: 16, FirstWise: 8, Seed: 3})
	var results []Estimate
	var errs []error
	id, err := p.RegisterContinuous("A & B", 0.25, 100, func(e Estimate, err error) {
		results = append(results, e)
		errs = append(errs, err)
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.ContinuousQueries() != 1 {
		t.Fatalf("registered queries = %d", p.ContinuousQueries())
	}
	// 300 updates touching A and B → interval 100 fires 6 times
	// (each loop iteration updates both streams).
	for e := uint64(0); e < 300; e++ {
		mustUpdate(t, p, "A", e, 1)
		mustUpdate(t, p, "B", e, 1) // identical streams: A & B = A
	}
	if len(results) != 6 {
		t.Fatalf("query fired %d times, want 6", len(results))
	}
	// The final estimates should be in the vicinity of the true count.
	last := results[len(results)-1]
	if errs[len(errs)-1] != nil {
		t.Fatalf("final estimate errored: %v", errs[len(errs)-1])
	}
	if last.Value <= 0 || math.Abs(last.Value-300)/300 > 0.6 {
		t.Errorf("final continuous estimate %v, want ≈ 300", last.Value)
	}

	// Updates to unrelated streams must not advance the counter.
	before := len(results)
	for e := uint64(0); e < 500; e++ {
		mustUpdate(t, p, "C", e, 1)
	}
	if len(results) != before {
		t.Error("updates to stream C fired an A & B query")
	}

	if !p.UnregisterContinuous(id) {
		t.Error("unregister of live query returned false")
	}
	if p.UnregisterContinuous(id) {
		t.Error("double unregister returned true")
	}
	for e := uint64(300); e < 500; e++ {
		mustUpdate(t, p, "A", e, 1)
	}
	if len(results) != before {
		t.Error("unregistered query still fired")
	}
}

func TestContinuousQueryValidation(t *testing.T) {
	p := newProcessor(t, Options{Copies: 16, SecondLevel: 8, FirstWise: 4, Seed: 1})
	cb := func(Estimate, error) {}
	if _, err := p.RegisterContinuous("A &", 0.2, 10, cb); err == nil {
		t.Error("garbage expression accepted")
	}
	if _, err := p.RegisterContinuous("A", 0.2, 0, cb); err == nil {
		t.Error("interval 0 accepted")
	}
	if _, err := p.RegisterContinuous("A", 0.2, 10, nil); err == nil {
		t.Error("nil callback accepted")
	}
	if _, err := p.RegisterContinuous("A", 0, 10, cb); err == nil {
		t.Error("eps 0 accepted")
	}
}

func TestContinuousQueryEarlyStreamErrors(t *testing.T) {
	// Before stream B exists, the estimate must surface an error (the
	// expression references an unknown stream) rather than silently
	// reporting nonsense.
	p := newProcessor(t, Options{Copies: 16, SecondLevel: 8, FirstWise: 4, Seed: 2})
	var lastErr error
	fired := 0
	if _, err := p.RegisterContinuous("A & B", 0.3, 1, func(e Estimate, err error) {
		fired++
		lastErr = err
	}); err != nil {
		t.Fatal(err)
	}
	mustUpdate(t, p, "A", 1, 1)
	if fired != 1 {
		t.Fatalf("fired %d times, want 1", fired)
	}
	if lastErr == nil {
		t.Error("estimate over missing stream B reported no error")
	}
	// Once B exists the query starts succeeding.
	mustUpdate(t, p, "B", 1, 1)
	if lastErr != nil {
		t.Errorf("estimate still failing after B appeared: %v", lastErr)
	}
}

func TestContinuousMultipleQueries(t *testing.T) {
	p := newProcessor(t, Options{Copies: 32, SecondLevel: 8, FirstWise: 4, Seed: 4})
	counts := map[string]int{}
	for _, q := range []string{"A", "A | B", "B - A"} {
		q := q
		if _, err := p.RegisterContinuous(q, 0.3, 50, func(Estimate, error) {
			counts[q]++
		}); err != nil {
			t.Fatal(err)
		}
	}
	for e := uint64(0); e < 100; e++ {
		mustUpdate(t, p, "A", e, 1)
	}
	// "A" and "A | B" and "B - A"? B-A references A too: all three
	// reference A, so all fire twice on 100 A-updates.
	for q, c := range counts {
		if c != 2 {
			t.Errorf("query %q fired %d times, want 2", q, c)
		}
	}
}
