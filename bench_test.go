package setsketch

// Benchmarks, one per evaluation figure of the paper plus throughput
// and ablation benches for the design choices DESIGN.md calls out.
//
// The figure benches (BenchmarkFig7aIntersection, BenchmarkFig7bDifference,
// BenchmarkFig8Expression) measure the end-to-end estimation pipeline on
// the exact workload shape of the corresponding figure at reduced scale;
// the full error-vs-space series that regenerate the figures are printed
// by `go run ./cmd/experiments` (see EXPERIMENTS.md for recorded output).

import (
	"fmt"
	"testing"
	"time"

	"setsketch/internal/baselines"
	"setsketch/internal/core"
	"setsketch/internal/datagen"
	"setsketch/internal/distributed"
	"setsketch/internal/expr"
	"setsketch/internal/hashing"
	"setsketch/internal/ingest"
	"setsketch/internal/wal"
)

// benchCfg is the paper's experimental configuration (s = 32, 8-wise).
var benchCfg = core.DefaultConfig()

// buildWorkloadFamilies generates a figure workload and summarizes it
// into aligned families of r copies.
func buildWorkloadFamilies(b *testing.B, exprStr string, union, target, r int) (expr.Node, map[string]*core.Family) {
	b.Helper()
	node := expr.MustParse(exprStr)
	rng := hashing.NewRNG(2003)
	w, err := datagen.Generate(datagen.Spec{Expr: node, Union: union, Target: target, Balance: true}, rng)
	if err != nil {
		b.Fatal(err)
	}
	fams := make(map[string]*core.Family, len(w.Streams))
	for name, elems := range w.Streams {
		f, err := core.NewFamily(benchCfg, 7, r)
		if err != nil {
			b.Fatal(err)
		}
		for _, e := range elems {
			f.Insert(e)
		}
		fams[name] = f
	}
	return node, fams
}

// benchFigure measures the estimation step of one paper figure: the
// multi-level witness estimator over r-copy families at the figure's
// target/union ratio.
func benchFigure(b *testing.B, exprStr string, ratio int) {
	const union, r = 1 << 12, 128
	node, fams := buildWorkloadFamilies(b, exprStr, union, union/ratio, r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.EstimateExpressionMultiLevel(node, fams, 0.1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7aIntersection: Figure 7(a), |A ∩ B| estimation.
func BenchmarkFig7aIntersection(b *testing.B) { benchFigure(b, "A & B", 16) }

// BenchmarkFig7bDifference: Figure 7(b), |A − B| estimation.
func BenchmarkFig7bDifference(b *testing.B) { benchFigure(b, "A - B", 16) }

// BenchmarkFig8Expression: Figure 8, |(A − B) ∩ C| estimation.
func BenchmarkFig8Expression(b *testing.B) { benchFigure(b, "(A - B) & C", 16) }

// BenchmarkSingleLevelEstimator measures the paper-literal Fig. 6
// estimator for comparison with the multi-level benches above.
func BenchmarkSingleLevelEstimator(b *testing.B) {
	const union, r = 1 << 12, 128
	node, fams := buildWorkloadFamilies(b, "A & B", union, union/16, r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.EstimateExpression(node, fams, 0.1); err != nil && err != core.ErrNoObservations {
			b.Fatal(err)
		}
	}
}

// BenchmarkUnionEstimator measures the specialized Fig. 5 estimator.
func BenchmarkUnionEstimator(b *testing.B) {
	_, fams := buildWorkloadFamilies(b, "A | B", 1<<12, 1<<12, 128)
	a, bb := fams["A"], fams["B"]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.EstimateUnion(a, bb, 0.1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkUnionML measures the all-levels maximum-likelihood union
// estimator (ternary search over the occupancy profile).
func BenchmarkUnionML(b *testing.B) {
	_, fams := buildWorkloadFamilies(b, "A | B", 1<<12, 1<<12, 128)
	pair := []*core.Family{fams["A"], fams["B"]}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.EstimateUnionMultiML(pair, 0.1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSketchUpdate measures the per-stream-item maintenance cost
// of one 2-level hash sketch (§3.1: s+1 counter updates + hashing).
func BenchmarkSketchUpdate(b *testing.B) {
	sk, err := core.NewSketch(benchCfg, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sk.Update(uint64(i), 1)
	}
}

// BenchmarkFamilyUpdate128 measures maintenance across a 128-copy
// family — the cost actually paid per arriving update at r = 128.
func BenchmarkFamilyUpdate128(b *testing.B) {
	f, err := core.NewFamily(benchCfg, 1, 128)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Update(uint64(i), 1)
	}
}

// BenchmarkProcessorUpdate measures the public-API update path,
// including stream lookup and locking.
func BenchmarkProcessorUpdate(b *testing.B) {
	p, err := NewProcessor(Options{Copies: 128, SecondLevel: 32, FirstWise: 8, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.Update("A", uint64(i), 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFamilyMerge measures coordinator-side merging of one pushed
// 128-copy synopsis (the distributed model's hot operation).
func BenchmarkFamilyMerge(b *testing.B) {
	mk := func() *core.Family {
		f, err := core.NewFamily(benchCfg, 1, 128)
		if err != nil {
			b.Fatal(err)
		}
		for e := uint64(0); e < 4096; e++ {
			f.Insert(e)
		}
		return f
	}
	dst, src := mk(), mk()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := dst.Merge(src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSerialize measures snapshot encoding of a loaded 128-copy
// family (what a site ships per stream).
func BenchmarkSerialize(b *testing.B) {
	f, err := core.NewFamily(benchCfg, 1, 128)
	if err != nil {
		b.Fatal(err)
	}
	for e := uint64(0); e < 4096; e++ {
		f.Insert(e)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.WriteTo(discard{}); err != nil {
			b.Fatal(err)
		}
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// Ablation: second-level count s drives per-update cost linearly
// (s+1 counter touches); these benches quantify the s accuracy/speed
// trade documented by `experiments -fig s-ablation`.
func BenchmarkAblationSecondLevel(b *testing.B) {
	for _, s := range []int{8, 16, 32, 64} {
		b.Run(fmt.Sprintf("s=%d", s), func(b *testing.B) {
			cfg := benchCfg
			cfg.SecondLevel = s
			sk, err := core.NewSketch(cfg, 1)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sk.Update(uint64(i), 1)
			}
		})
	}
}

// Ablation: first-level independence degree t costs t−1 multiply-adds
// per update (§3.6's Θ(log 1/ε) requirement is cheap).
func BenchmarkAblationFirstWise(b *testing.B) {
	for _, t := range []int{2, 4, 8, 16} {
		b.Run(fmt.Sprintf("t=%d", t), func(b *testing.B) {
			cfg := benchCfg
			cfg.FirstWise = t
			sk, err := core.NewSketch(cfg, 1)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sk.Update(uint64(i), 1)
			}
		})
	}
}

// BenchmarkBitSketchInsert measures the paper's §5.2 insert-only bit
// variant: same hashing, 1-bit cells, no deletion support.
func BenchmarkBitSketchInsert(b *testing.B) {
	sk, err := core.NewBitSketch(benchCfg, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sk.Insert(uint64(i))
	}
	b.ReportMetric(float64(sk.MemoryBytes()), "sketch-bytes")
}

// BenchmarkBitVsCounterEstimate compares estimate-time cost of the two
// representations at identical accuracy (the estimates are equal).
func BenchmarkBitVsCounterEstimate(b *testing.B) {
	const union, r = 1 << 12, 128
	node := expr.MustParse("A & B")
	rng := hashing.NewRNG(5)
	w, err := datagen.Generate(datagen.Spec{Expr: node, Union: union, Target: union / 16, Balance: true}, rng)
	if err != nil {
		b.Fatal(err)
	}
	bfams := make(map[string]*core.BitFamily, len(w.Streams))
	for name, elems := range w.Streams {
		f, err := core.NewBitFamily(benchCfg, 7, r)
		if err != nil {
			b.Fatal(err)
		}
		for _, e := range elems {
			f.Insert(e)
		}
		bfams[name] = f
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.EstimateExpressionMultiLevelBits(node, bfams, 0.1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFMUnion measures the Flajolet–Martin baseline (paper Fig. 2)
// per-insert cost at r = 64 for comparison with sketch maintenance.
func BenchmarkFMUnion(b *testing.B) {
	fm, err := baselines.NewFM(1, 64, 32)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fm.Insert(uint64(i))
	}
}

// BenchmarkMIPsInsert measures the min-wise permutations baseline's
// per-insert cost at k = 128 coordinates.
func BenchmarkMIPsInsert(b *testing.B) {
	m, err := baselines.NewMIPs(1, 128)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Insert(uint64(i))
	}
}

// BenchmarkSingletonChecks measures the elementary property checks of
// §3.2 (they dominate estimate-time cost).
func BenchmarkSingletonChecks(b *testing.B) {
	x, err := core.NewSketch(benchCfg, 1)
	if err != nil {
		b.Fatal(err)
	}
	y, err := core.NewSketch(benchCfg, 1)
	if err != nil {
		b.Fatal(err)
	}
	for e := uint64(0); e < 1024; e++ {
		x.Insert(e)
		y.Insert(e + 512)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.SingletonUnionBucket(x, y, i%benchCfg.Buckets)
	}
}

// --- Digest-kernel benchmarks -----------------------------------------
//
// BenchmarkUpdate vs BenchmarkUpdateDigest isolates the digest kernel's
// payoff at the paper's experimental shape (r = 128, s = 32, t = 8): the
// direct path pays r Horner evaluations plus r·s pairwise hashes per
// stream item, the digest (cache-hit) path replays r·(s+1) plain
// counter additions. BenchmarkUpdateDigestCompute is the cache-miss
// bound: compute the digest, then replay it once. Recorded results:
// BENCH_update.json (regenerate with scripts/bench.sh).

const benchDigestElems = 1024

// BenchmarkUpdate is the direct hashing path at the paper shape.
func BenchmarkUpdate(b *testing.B) {
	f, err := core.NewFamily(benchCfg, 1, 128)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Update(uint64(i%benchDigestElems), 1)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "updates/s")
}

// BenchmarkUpdateDigest is the cache-hit path: digests precomputed,
// each update is a pure replay.
func BenchmarkUpdateDigest(b *testing.B) {
	f, err := core.NewFamily(benchCfg, 1, 128)
	if err != nil {
		b.Fatal(err)
	}
	digs := make([]core.Digest, benchDigestElems)
	for e := range digs {
		digs[e] = f.Digest(uint64(e))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.UpdateDigest(digs[i%benchDigestElems], 1)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "updates/s")
}

// BenchmarkUpdateDigestCompute is the cache-miss bound: full digest
// computation plus one replay per update.
func BenchmarkUpdateDigestCompute(b *testing.B) {
	f, err := core.NewFamily(benchCfg, 1, 128)
	if err != nil {
		b.Fatal(err)
	}
	d := make(core.Digest, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.DigestInto(d, uint64(i%benchDigestElems))
		f.UpdateDigest(d, 1)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "updates/s")
}

// BenchmarkUpdateDigestComputeBatch is the cache-miss bound through the
// batch kernel: the same work as BenchmarkUpdateDigestCompute (full
// digest computation plus one replay per update) but amortized over
// 256-element batches, copy-major, so each copy's hash constants and
// counter slab are loaded once per batch instead of once per element.
// ns/op is per update in both benches; the ratio is the batch payoff.
func BenchmarkUpdateDigestComputeBatch(b *testing.B) {
	const batch = 256
	f, err := core.NewFamily(benchCfg, 1, 128)
	if err != nil {
		b.Fatal(err)
	}
	elems := make([]uint64, batch)
	deltas := make([]int64, batch)
	for k := range deltas {
		deltas[k] = 1
	}
	slab := make([]uint64, batch*128)
	ds := make([]core.Digest, batch)
	for k := range ds {
		ds[k] = core.Digest(slab[k*128 : (k+1)*128])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i += batch {
		for k := range elems {
			elems[k] = uint64((i + k) % benchDigestElems)
		}
		f.DigestBatchInto(ds, elems)
		f.UpdateBatchDigest(ds, deltas)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "updates/s")
}

// BenchmarkMergeFlat measures coordinator-side merging of one pushed
// 128-copy synopsis over the family-owned flat counter arenas (two
// linear slice additions regardless of r).
func BenchmarkMergeFlat(b *testing.B) {
	mk := func() *core.Family {
		f, err := core.NewFamily(benchCfg, 1, 128)
		if err != nil {
			b.Fatal(err)
		}
		for e := uint64(0); e < 4096; e++ {
			f.Insert(e)
		}
		return f
	}
	dst, src := mk(), mk()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := dst.Merge(src); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Live-ingest benchmarks -------------------------------------------
//
// BenchmarkIngestSerial vs BenchmarkIngestSharded measure the same
// workload — single-stream updates into a 128-copy family — through
// single-threaded family updates and through the sharded
// internal/ingest engine, whose workers own disjoint copy ranges and
// need no locks on the hot path. The speedup scales with cores (each
// worker does r/W of the per-update hashing); on a single-core host
// the sharded path only pays its batching overhead. Recorded results:
// BENCH_ingest.json.

// benchIngestUpdates pre-generates the update workload so generation
// cost stays out of the measured loop.
func benchIngestUpdates(n int) []datagen.Update {
	rng := hashing.NewRNG(2024)
	streams := []string{"A", "B", "C"}
	ups := make([]datagen.Update, n)
	for i := range ups {
		ups[i] = datagen.Update{
			Stream: streams[i%len(streams)],
			Elem:   rng.Uint64n(1 << 24),
			Delta:  1,
		}
	}
	return ups
}

// BenchmarkIngestSerial is the baseline: one goroutine updating plain
// families, as distributed.Site does.
func BenchmarkIngestSerial(b *testing.B) {
	const copies = 128
	ups := benchIngestUpdates(4096)
	fams := make(map[string]*core.Family)
	for _, name := range []string{"A", "B", "C"} {
		f, err := core.NewFamily(benchCfg, 1, copies)
		if err != nil {
			b.Fatal(err)
		}
		fams[name] = f
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := ups[i%len(ups)]
		fams[u.Stream].Update(u.Elem, u.Delta)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "updates/s")
}

// BenchmarkIngestSharded drives the ingest engine at its default
// worker count (GOMAXPROCS, capped at the copy count).
func BenchmarkIngestSharded(b *testing.B) {
	benchIngestSharded(b, 0)
}

// BenchmarkIngestShardedWorkers sweeps the worker count, exposing the
// scaling curve on whatever host runs it.
func BenchmarkIngestShardedWorkers(b *testing.B) {
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("w=%d", w), func(b *testing.B) { benchIngestSharded(b, w) })
	}
}

// benchLoadUpdates pre-renders the shared Zipf/delete-ratio workload
// (datagen.LoadGen) — the same definition cmd/sketchbench drives over
// the wire, so in-process and end-to-end numbers describe one stream.
func benchLoadUpdates(n int, deletes float64) []datagen.Update {
	g, err := datagen.NewLoadGen(datagen.LoadSpec{
		Streams: []string{"A", "B", "C"},
		Domain:  datagen.DomainUniform,
		Support: 1 << 14,
		Theta:   1.0,
		Deletes: deletes,
	}, hashing.NewRNG(2026))
	if err != nil {
		panic(err)
	}
	return g.Updates(n)
}

// BenchmarkIngestCoalesced drives the engine's digest path end to end
// on a Zipf(1.0) update stream with 10% deletions — the skewed regime
// of §5 where a few hot elements dominate the volume, batch coalescing
// folds repeats, and the digest cache absorbs the hash bill. Compare
// against BenchmarkIngestSerial (plain per-update family hashing) in
// BENCH_ingest.json.
func BenchmarkIngestCoalesced(b *testing.B) {
	const copies = 128
	ups := benchLoadUpdates(1<<16, 0.1)
	eng, err := ingest.New(benchCfg, 1, copies, ingest.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := ups[i%len(ups)]
		if err := eng.Update(u.Stream, u.Elem, u.Delta); err != nil {
			b.Fatal(err)
		}
	}
	eng.Drain()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "updates/s")
}

// --- Query-kernel benchmarks ------------------------------------------
//
// BenchmarkEstimateExpression vs BenchmarkEstimateCompiled vs
// BenchmarkEstimateParallel isolate the compiled query kernel's payoff
// at the paper's experimental shape (r = 128, s = 32): the reference
// path re-walks the raw counters with the interpreted Boolean mapping
// (map[string]bool per witness + recursive EvalBool), the compiled
// serial path evaluates the precompiled occupancy-word program over
// the packed per-family bitmaps, and the parallel path additionally
// fans the witness scan across GOMAXPROCS workers. All three return
// bit-identical estimates (pinned by TestCompiledMatchesReference).
// Recorded results: BENCH_estimate.json (regenerate with
// scripts/bench.sh).

// benchEstimateWorkload is the Fig. 8 expression at the paper shape.
func benchEstimateWorkload(b *testing.B) (expr.Node, map[string]*core.Family) {
	const union, r = 1 << 12, 128
	return buildWorkloadFamilies(b, "(A - B) & C", union, union/16, r)
}

// BenchmarkEstimateExpression is the pre-kernel reference estimator.
func BenchmarkEstimateExpression(b *testing.B) {
	node, fams := benchEstimateWorkload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.EstimateExpressionReference(node, fams, 0.1, true); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEstimateCompiled is the compiled kernel, serial scan.
func BenchmarkEstimateCompiled(b *testing.B) {
	node, fams := benchEstimateWorkload(b)
	q, err := core.CompileQuery(node)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := q.Estimate(fams, 0.1, true, core.EstimateOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEstimateParallel is the compiled kernel with the default
// worker pool (one worker per CPU).
func BenchmarkEstimateParallel(b *testing.B) {
	node, fams := benchEstimateWorkload(b)
	q, err := core.CompileQuery(node)
	if err != nil {
		b.Fatal(err)
	}
	opts := core.DefaultEstimateOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := q.Estimate(fams, 0.1, true, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Durability benchmarks --------------------------------------------
//
// BenchmarkWALAppend measures the write-ahead cost every accepted
// mutation pays before it is applied, per fsync policy: always is the
// durability ceiling (one fsync per acked batch), interval amortizes
// the sync over a window, never is the framing+write floor. Appends
// are serialized under the log mutex by design (log order == apply
// order), so these numbers do not scale with cores. BenchmarkRecovery
// measures restart cost — wal.Open's tail scan plus a full replay into
// a fresh coordinator — as the WAL grows. Recorded results:
// BENCH_wal.json (regenerate with scripts/bench.sh).

const walBenchBatch = 64

// benchWALOptions is the bench WAL shape: the paper configuration
// (s = 32 is digest-packable), r = 128 copies, default segment size.
func benchWALOptions(sync wal.SyncPolicy, ival time.Duration) wal.Options {
	return wal.Options{Config: benchCfg, Seed: 1, Copies: 128, Sync: sync, SyncInterval: ival}
}

// BenchmarkWALAppend: one digest-packed 64-update record per op.
func BenchmarkWALAppend(b *testing.B) {
	for _, pol := range []struct {
		name string
		sync wal.SyncPolicy
		ival time.Duration
	}{
		{"always", wal.SyncAlways, 0},
		{"interval=100ms", wal.SyncInterval, 100 * time.Millisecond},
		{"never", wal.SyncNever, 0},
	} {
		b.Run("fsync="+pol.name, func(b *testing.B) {
			l, err := wal.Open(b.TempDir(), benchWALOptions(pol.sync, pol.ival))
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			rec := l.BuildUpdates("bench", benchIngestUpdates(walBenchBatch))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := l.Append(rec); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.N*walBenchBatch)/b.Elapsed().Seconds(), "updates/s")
		})
	}
}

// BenchmarkRecovery: coordinator restart (open + truncate-scan +
// replay) against WALs of increasing length, no snapshot — the
// worst-case suffix.
func BenchmarkRecovery(b *testing.B) {
	coins := distributed.Coins{Config: benchCfg, Seed: 1, Copies: 128}
	for _, records := range []int{128, 512} {
		b.Run(fmt.Sprintf("records=%d", records), func(b *testing.B) {
			dir := b.TempDir()
			c, err := distributed.NewCoordinator(coins)
			if err != nil {
				b.Fatal(err)
			}
			l, err := wal.Open(dir, benchWALOptions(wal.SyncNever, 0))
			if err != nil {
				b.Fatal(err)
			}
			c.AttachWAL(l)
			ups := benchIngestUpdates(walBenchBatch)
			for i := 0; i < records; i++ {
				if err := c.ApplyUpdates("bench", ups); err != nil {
					b.Fatal(err)
				}
			}
			if err := l.Close(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c2, err := distributed.NewCoordinator(coins)
				if err != nil {
					b.Fatal(err)
				}
				l2, err := wal.Open(dir, benchWALOptions(wal.SyncNever, 0))
				if err != nil {
					b.Fatal(err)
				}
				if _, err := c2.Recover(l2); err != nil {
					b.Fatal(err)
				}
				l2.Close()
			}
			b.ReportMetric(float64(b.N*records*walBenchBatch)/b.Elapsed().Seconds(), "updates/s")
		})
	}
}

func benchIngestSharded(b *testing.B, workers int) {
	const copies = 128
	ups := benchIngestUpdates(4096)
	eng, err := ingest.New(benchCfg, 1, copies, ingest.Options{Workers: workers})
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := ups[i%len(ups)]
		if err := eng.Update(u.Stream, u.Elem, u.Delta); err != nil {
			b.Fatal(err)
		}
	}
	eng.Drain()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "updates/s")
}
