#!/usr/bin/env bash
# bench.sh — regenerate the BENCH_*.json files reproducibly on the
# current host:
#
#   BENCH_ingest.json    ingest throughput (serial vs sharded vs coalesced)
#   BENCH_update.json    digest update kernel (direct vs replay vs batch)
#   BENCH_estimate.json  query kernel (interpreted vs compiled vs parallel)
#   BENCH_wal.json       durability (WAL append, recovery)
#   BENCH_e2e.json       end-to-end: sketchbench sessions over TCP into sketchd
#
# Usage:
#   scripts/bench.sh                  # regenerate everything
#   scripts/bench.sh update e2e       # only the named sections
#   scripts/bench.sh compare OLD NEW  # diff two BENCH files (cmd/benchdiff),
#                                     # non-zero exit on >10% ns/op regressions
#
# Run from anywhere: each suite runs once, the output is parsed, and
# the JSON is rewritten in place with the current host's numbers.
set -euo pipefail
cd "$(dirname "$0")/.."

if [ "${1:-}" = "compare" ]; then
    shift
    exec go run ./cmd/benchdiff "$@"
fi

GOOS=$(go env GOOS)
GOARCH=$(go env GOARCH)
CORES=$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)

# run_bench <regex> — runs the suite, echoes raw `go test` output.
run_bench() {
    go test -run xxx -bench "$1" -benchtime 1s .
}

# parse_results <raw> <name-regex> — benchmark lines to JSON objects.
parse_results() {
    printf '%s\n' "$1" | awk -v pat="$2" '
$1 ~ pat {
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns = ""; ups = ""
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op") ns = $(i - 1)
        if ($i == "updates/s") ups = $(i - 1)
    }
    if (ns == "") next
    if (ups != "")
        printf "%s    {\"name\": \"%s\", \"ns_per_op\": %.0f, \"updates_per_s\": %.0f}", sep, name, ns, ups
    else
        printf "%s    {\"name\": \"%s\", \"ns_per_op\": %.0f}", sep, name, ns
    sep = ",\n"
}
END { print "" }'
}

# host_block <raw> — shared host JSON: cpu string and the GOMAXPROCS the
# benchmarks actually ran at (the -N suffix of the benchmark names),
# alongside the machine's online core count, so trajectory comparisons
# across hosts stay honest.
host_block() {
    local cpu maxprocs
    cpu=$(printf '%s\n' "$1" | awk -F': ' '/^cpu:/{sub(/^[ \t]+/, "", $2); print $2; exit}')
    [ -n "$cpu" ] || cpu=unknown
    maxprocs=$(printf '%s\n' "$1" | awk '/^Benchmark/{n=$1; if (match(n, /-[0-9]+$/)) {print substr(n, RSTART+1); exit}}')
    [ -n "$maxprocs" ] || maxprocs=1
    cat <<EOF
  "host": {
    "goos": "$GOOS",
    "goarch": "$GOARCH",
    "cpu": "$cpu",
    "cores": $CORES,
    "gomaxprocs": $maxprocs
  },
EOF
}

# --- BENCH_ingest.json ------------------------------------------------

bench_ingest() {
    local OUT=BENCH_ingest.json
    local CMD="go test -run xxx -bench BenchmarkIngest -benchtime 1s ."
    echo "== $CMD" >&2
    local RAW RESULTS
    RAW="$(run_bench BenchmarkIngest)"
    echo "$RAW" >&2
    RESULTS=$(parse_results "$RAW" "^BenchmarkIngest")
    if [ -z "${RESULTS// /}" ]; then
        echo "bench.sh: no BenchmarkIngest results parsed" >&2
        exit 1
    fi

    # config mirrors the constants in bench_test.go (benchCfg, copies,
    # streams, batch size, digest-cache default) and the ingest defaults;
    # update both together.
    cat > "$OUT" <<EOF
{
  "benchmark": "ingest throughput: serial family updates vs sharded copy-range workers vs digest-cached coalesced batches",
  "command": "$CMD",
$(host_block "$RAW")
  "config": {
    "copies": 128,
    "second_level": 32,
    "first_wise": 8,
    "streams": 3,
    "batch_size": 256,
    "digest_cache_entries": 8192,
    "coalesced_workload": "Zipf(1.0) over 16384 distinct elements, 10% deletions (datagen.LoadGen seed 2026)"
  },
  "results": [
$RESULTS
  ],
  "notes": [
    "Regenerate with 'make bench' (scripts/bench.sh); results vary with host core count.",
    "IngestSerial/IngestSharded draw near-uniform elements; IngestCoalesced draws the shared benchmark workload (datagen.LoadGen: Zipf(1.0) with a 10% delete ratio), the skewed regime the digest cache and per-batch coalescing target.",
    "Cache misses inside a coalesced batch are resolved through the batch digest kernel (core.Family.DigestBatch), so the residual hash bill is amortized across the whole miss set.",
    "A direct-path update costs r*(s+1) counter additions plus the full limited-independence hash bill; a digest-cache hit replays r*(s+1) plain additions with zero field arithmetic.",
    "updates_per_s is reported by the benchmark itself via b.ReportMetric."
  ]
}
EOF
    echo "bench.sh: wrote $OUT" >&2
}

# --- BENCH_update.json ------------------------------------------------

bench_update() {
    local OUT=BENCH_update.json
    local PAT='^(BenchmarkUpdate|BenchmarkUpdateDigest|BenchmarkUpdateDigestCompute|BenchmarkUpdateDigestComputeBatch|BenchmarkMergeFlat)$'
    local CMD="go test -run xxx -bench '$PAT' -benchtime 1s ."
    echo "== $CMD" >&2
    local RAW RESULTS
    RAW="$(run_bench "$PAT")"
    echo "$RAW" >&2
    RESULTS=$(parse_results "$RAW" "^(BenchmarkUpdate|BenchmarkMergeFlat)")
    if [ -z "${RESULTS// /}" ]; then
        echo "bench.sh: no update-kernel results parsed" >&2
        exit 1
    fi

    cat > "$OUT" <<EOF
{
  "benchmark": "digest update kernel at the paper shape: direct hashing path vs packed-digest replay vs batch digest kernel, plus flat-layout family merge",
  "command": "$CMD",
$(host_block "$RAW")
  "config": {
    "copies": 128,
    "second_level": 32,
    "first_wise": 8,
    "distinct_elements": 1024,
    "digest_cache_entries": 8192,
    "batch_elements": 256
  },
  "results": [
$RESULTS
  ],
  "notes": [
    "Regenerate with 'make bench' (scripts/bench.sh).",
    "Update: direct path — per item, r Horner evaluations (degree t-1) plus r*s pairwise hashes over GF(2^61-1), then r*(s+1) counter additions.",
    "UpdateDigest: cache-hit path — digests precomputed, each update replays r*(s+1) additions; the acceptance bar is >= 3x fewer ns/op than Update.",
    "UpdateDigestCompute: cache-miss bound, one element at a time — one full digest computation plus one replay.",
    "UpdateDigestComputeBatch: the batch digest kernel (DigestBatch + UpdateBatchDigest) amortizing hash setup copy-major over 256-element batches; bit-identical to the per-element path (differential + fuzz tested) and the acceptance bar is >= 2x fewer ns/op than UpdateDigestCompute. Uses AVX-512 column packing when the host has it.",
    "MergeFlat: one 128-copy synopsis merged into another over the family-owned flat counter arenas (two linear slice additions)."
  ]
}
EOF
    echo "bench.sh: wrote $OUT" >&2
}

# --- BENCH_estimate.json ----------------------------------------------

bench_estimate() {
    local OUT=BENCH_estimate.json
    local PAT='^(BenchmarkEstimateExpression|BenchmarkEstimateCompiled|BenchmarkEstimateParallel)$'
    local CMD="go test -run xxx -bench '$PAT' -benchtime 1s ."
    echo "== $CMD" >&2
    local RAW RESULTS
    RAW="$(run_bench "$PAT")"
    echo "$RAW" >&2
    RESULTS=$(parse_results "$RAW" "^BenchmarkEstimate")
    if [ -z "${RESULTS// /}" ]; then
        echo "bench.sh: no query-kernel results parsed" >&2
        exit 1
    fi

    cat > "$OUT" <<EOF
{
  "benchmark": "query kernel at the paper shape: interpreted reference estimator vs compiled occupancy-word program over packed bitmaps, serial and parallel witness scan",
  "command": "$CMD",
$(host_block "$RAW")
  "config": {
    "copies": 128,
    "second_level": 32,
    "first_wise": 8,
    "expression": "(A - B) & C",
    "union": 4096,
    "target_ratio": 16,
    "multi_level": true
  },
  "results": [
$RESULTS
  ],
  "notes": [
    "Regenerate with 'make bench' (scripts/bench.sh).",
    "EstimateExpression: pre-kernel reference — raw counter scans with a map[string]bool and recursive EvalBool per witness candidate.",
    "EstimateCompiled: compiled kernel, serial — truth-table/postfix program over a packed occupancy word, version-cached per-family occupancy and signature bitmaps, zero allocations per call; the acceptance bar is >= 3x fewer ns/op than EstimateExpression.",
    "EstimateParallel: compiled kernel with the default worker pool (one worker per CPU); identical to EstimateCompiled when gomaxprocs is 1. All three paths return bit-identical estimates.",
    "The ML union epilogue is shared by all paths, so the ratio isolates the witness-scan and Boolean-evaluation cost."
  ]
}
EOF
    echo "bench.sh: wrote $OUT" >&2
}

# --- BENCH_wal.json ---------------------------------------------------

bench_wal() {
    local OUT=BENCH_wal.json
    local PAT='^(BenchmarkWALAppend|BenchmarkRecovery)$'
    local CMD="go test -run xxx -bench '$PAT' -benchtime 1s ."
    echo "== $CMD" >&2
    local RAW RESULTS
    RAW="$(run_bench "$PAT")"
    echo "$RAW" >&2
    RESULTS=$(parse_results "$RAW" "^(BenchmarkWALAppend|BenchmarkRecovery)")
    if [ -z "${RESULTS// /}" ]; then
        echo "bench.sh: no durability results parsed" >&2
        exit 1
    fi

    cat > "$OUT" <<EOF
{
  "benchmark": "durability layer: WAL append throughput per fsync policy, and coordinator recovery (open + truncate-scan + replay) vs WAL length",
  "command": "$CMD",
$(host_block "$RAW")
  "config": {
    "copies": 128,
    "second_level": 32,
    "first_wise": 8,
    "batch_updates": 64,
    "record_encoding": "digest-packed (s = 32 <= 58)",
    "segment_size_bytes": 16777216,
    "recovery_snapshot": "none (worst-case full-suffix replay)"
  },
  "results": [
$RESULTS
  ],
  "notes": [
    "Regenerate with 'make bench-wal' or 'make bench' (scripts/bench.sh).",
    "WALAppend: one digest-packed 64-update record per op. fsync=always is the durability ceiling (one fsync per acked batch) and is bounded by device sync latency, not CPU; interval amortizes the sync over a 100ms window; never is the framing+buffered-write floor.",
    "Appends are serialized under the log mutex by design (log order must equal apply order), so WALAppend does not scale with cores; on a 1-core host the numbers are representative of any host with the same storage device.",
    "Recovery: each op is a full restart — wal.Open's tail truncate-scan plus replaying every record into a fresh coordinator via the hash-free digest path. updates_per_s is the replay rate; time grows linearly with WAL length, which is what the snapshot interval bounds in production.",
    "WAL digests are computed through the batch kernel (BuildUpdates batches each record's elements through one DigestBatch call).",
    "fsync behavior depends on the filesystem and device; on CI-grade virtual disks fsync=always can appear unrealistically fast (write cache not flushed to stable media)."
  ]
}
EOF
    echo "bench.sh: wrote $OUT" >&2
}

# --- BENCH_e2e.json ---------------------------------------------------
#
# End-to-end proof: build sketchd + sketchbench, start a real server,
# and sweep concurrent sessions × server GOMAXPROCS. Each cell is one
# sketchbench run over TCP; its mean round trip lands in ns_per_op so
# `bench.sh compare` gates e2e files too.

E2E_DURATION=${E2E_DURATION:-5s}
E2E_WARMUP=${E2E_WARMUP:-1s}
E2E_SESSIONS=${E2E_SESSIONS:-"1 2 4"}
# Server-side shard sweep: 1 is the exact unsharded baseline (bit-
# identical semantics), 0 is the default stripe count (GOMAXPROCS
# rounded up to a power of two) — the pair the >=2x multi-core
# acceptance compares.
E2E_SHARDS=${E2E_SHARDS:-"1 0"}

# jnum <file> <key> — first numeric value of "key": N in a JSON file.
jnum() {
    awk -v k="\"$2\"" '
index($0, k ":") {
    s = substr($0, index($0, k ":") + length(k) + 1)
    gsub(/[ \t,]/, "", s)
    print s
    exit
}' "$1"
}

bench_e2e() {
    local OUT=BENCH_e2e.json
    local bin tmp
    bin=$(mktemp -d)
    tmp=$(mktemp -d)
    trap 'rm -rf "$bin" "$tmp"' RETURN
    echo "== building sketchd + sketchbench" >&2
    go build -o "$bin/sketchd" ./cmd/sketchd
    go build -o "$bin/sketchbench" ./cmd/sketchbench

    # GOMAXPROCS sweep for the server: 1 and every power of two up to
    # the core count (deduplicated, so a 1-core host runs just [1]).
    local procs_list p=1
    procs_list="1"
    while [ $((p * 2)) -le "$CORES" ]; do
        p=$((p * 2))
        procs_list="$procs_list $p"
    done

    local results="" sep="" cpu=unknown shards_swept_all=""
    if [ -r /proc/cpuinfo ]; then
        cpu=$(awk -F': ' '/^model name/{print $2; exit}' /proc/cpuinfo)
    fi
    for procs in $procs_list; do
        # One server per (GOMAXPROCS, shards) cell. `-shards 0` resolves
        # server-side to ceil-pow2(GOMAXPROCS); compute the effective
        # count here too so result names carry the real stripe count and
        # duplicate cells (0 resolving to an already-swept count, e.g.
        # on a 1-core host) are skipped instead of re-measured.
        local swept_shards=""
        for shards in $E2E_SHARDS; do
            local eff=$shards
            [ "$eff" -eq 0 ] && eff=$procs
            local pw=1
            while [ "$pw" -lt "$eff" ]; do pw=$((pw * 2)); done
            eff=$pw
            case " $swept_shards " in *" $eff "*) continue ;; esac
            swept_shards="$swept_shards $eff"
            case " $shards_swept_all " in *" $eff "*) ;; *) shards_swept_all="$shards_swept_all $eff" ;; esac
            local log="$tmp/sketchd-$procs-$eff.log"
            GOMAXPROCS=$procs "$bin/sketchd" serve -listen 127.0.0.1:0 -copies 128 -s 32 -shards "$eff" >"$log" 2>&1 &
            local srv_pid=$!
            local addr="" i
            for i in $(seq 1 100); do
                addr=$(sed -n 's/.*msg="coordinator listening" addr=//p' "$log" | head -1)
                [ -n "$addr" ] && break
                kill -0 "$srv_pid" 2>/dev/null || { cat "$log" >&2; echo "bench.sh: sketchd died" >&2; exit 1; }
                sleep 0.1
            done
            if [ -z "$addr" ]; then
                echo "bench.sh: sketchd did not report a listen address" >&2
                exit 1
            fi
            for sessions in $E2E_SESSIONS; do
                echo "== sketchbench -sessions $sessions (server GOMAXPROCS=$procs, shards=$eff, $E2E_DURATION)" >&2
                local rep="$tmp/run-$procs-$eff-$sessions.json"
                "$bin/sketchbench" -addr "$addr" -sessions "$sessions" \
                    -duration "$E2E_DURATION" -warmup "$E2E_WARMUP" \
                    -batch 256 -zipf 1.0 -deletes 0.1 -support 16384 \
                    -copies 128 -s 32 -hist=false -out "$rep"
                local ups p50 p99 p999 mean
                ups=$(jnum "$rep" updates_per_s)
                p50=$(jnum "$rep" p50)
                p99=$(jnum "$rep" p99)
                p999=$(jnum "$rep" p999)
                mean=$(jnum "$rep" mean)
                results="$results$sep    {\"name\": \"e2e/sessions=$sessions/gomaxprocs=$procs/shards=$eff\", \"sessions\": $sessions, \"server_gomaxprocs\": $procs, \"server_shards\": $eff, \"ns_per_op\": $(awk -v m="$mean" 'BEGIN{printf "%.0f", m*1000}'), \"updates_per_s\": $(awk -v u="$ups" 'BEGIN{printf "%.0f", u}'), \"round_trip_us\": {\"p50\": $p50, \"p99\": $p99, \"p999\": $p999, \"mean\": $mean}}"
                sep=",\n"
            done
            kill "$srv_pid" 2>/dev/null || true
            wait "$srv_pid" 2>/dev/null || true
        done
    done

    cat > "$OUT" <<EOF
{
  "benchmark": "end-to-end over TCP: sketchbench forwards raw update batches through concurrent streaming sessions into a live sketchd coordinator",
  "command": "scripts/bench.sh e2e  (sketchbench -batch 256 -zipf 1.0 -deletes 0.1 -support 16384 -duration $E2E_DURATION per cell)",
  "host": {
    "goos": "$GOOS",
    "goarch": "$GOARCH",
    "cpu": "$cpu",
    "cores": $CORES,
    "gomaxprocs": "swept (see results)"
  },
  "config": {
    "copies": 128,
    "second_level": 32,
    "first_wise": 8,
    "batch": 256,
    "streams": 3,
    "support": 16384,
    "zipf": 1.0,
    "deletes": 0.1,
    "shards_swept": [$(printf '%s' "$shards_swept_all" | awk '{for(i=1;i<=NF;i++){printf "%s%s", (i>1?", ":""), $i}}')],
    "warmup": "$E2E_WARMUP",
    "duration": "$E2E_DURATION"
  },
  "results": [
$(printf "$results")
  ],
  "notes": [
    "Regenerate with 'make bench-e2e' (scripts/bench.sh e2e); sweep bounds come from the host core count (E2E_SESSIONS / E2E_SHARDS override).",
    "Each cell: N sketchbench sessions (one TCP connection + site each) forward 256-update binary frames and wait for the ack; the server sketches centrally via ApplyUpdates. ns_per_op is the mean send-to-ack round trip in ns; updates_per_s sums all sessions.",
    "The server is swept over -shards as well: shards=1 is the exact unsharded coordinator (bit-identical estimates, same WAL), larger counts lock-stripe the apply path so sessions on disjoint streams do not contend. Duplicate cells (shards=0 resolving to an already-swept count) are skipped.",
    "Sessions are synchronous request/reply, so per-session throughput is latency-bound; added sessions raise aggregate throughput until the server side saturates its cores.",
    "On a 1-core host (cores = 1) the sweep only shows the 1-core, shards=1 column: session scaling there measures overlap of client generation with server work on one CPU, not multi-core speedup, and sharding cannot show a wall-clock win without cores to run shards on. The >=2x shards-vs-unsharded claim at GOMAXPROCS>=4 applies to multi-core hosts; rerun 'make bench-e2e' on one to verify (the in-package BenchmarkCoordApplyShardsParallel sweep is the same comparison without the wire).",
    "The wire hot path is allocation-free at steady state on both ends (pinned by TestSessionFrameCodecAllocFree / TestServerFramePathAllocFree)."
  ]
}
EOF
    echo "bench.sh: wrote $OUT" >&2
}

# --- dispatch ---------------------------------------------------------

if [ $# -eq 0 ]; then
    set -- ingest update estimate wal e2e
fi
for section in "$@"; do
    case "$section" in
        ingest)   bench_ingest ;;
        update)   bench_update ;;
        estimate) bench_estimate ;;
        wal)      bench_wal ;;
        e2e)      bench_e2e ;;
        *)
            echo "bench.sh: unknown section '$section' (ingest|update|estimate|wal|e2e|compare)" >&2
            exit 2
            ;;
    esac
done
