#!/usr/bin/env bash
# bench.sh — regenerate BENCH_ingest.json reproducibly from the ingest
# throughput benchmarks (BenchmarkIngest* in bench_test.go). Run from
# anywhere: the benchmarks run once, the output is parsed, and the JSON
# is rewritten in place with the current host's numbers.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT=BENCH_ingest.json
CMD="go test -run xxx -bench BenchmarkIngest -benchtime 1s ."

echo "== $CMD" >&2
RAW="$($CMD)"
echo "$RAW" >&2

GOOS=$(go env GOOS)
GOARCH=$(go env GOARCH)
CPU=$(printf '%s\n' "$RAW" | awk -F': ' '/^cpu:/{sub(/^[ \t]+/, "", $2); print $2; exit}')
[ -n "$CPU" ] || CPU=unknown
CORES=$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)
# The benchmark name suffix (BenchmarkFoo-N) is the GOMAXPROCS it ran at.
MAXPROCS=$(printf '%s\n' "$RAW" | awk '/^BenchmarkIngest/{n=$1; if (match(n, /-[0-9]+$/)) {print substr(n, RSTART+1); exit}}')
[ -n "$MAXPROCS" ] || MAXPROCS=1

RESULTS=$(printf '%s\n' "$RAW" | awk '
/^BenchmarkIngest/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns = ""; ups = ""
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op") ns = $(i - 1)
        if ($i == "updates/s") ups = $(i - 1)
    }
    if (ns == "" || ups == "") next
    printf "%s    {\"name\": \"%s\", \"ns_per_op\": %.0f, \"updates_per_s\": %.0f}", sep, name, ns, ups
    sep = ",\n"
}
END { print "" }')

if [ -z "${RESULTS// /}" ]; then
    echo "bench.sh: no BenchmarkIngest results parsed" >&2
    exit 1
fi

# config mirrors the constants in bench_test.go (benchCfg, copies,
# streams, batch size); update both together.
cat > "$OUT" <<EOF
{
  "benchmark": "ingest throughput: sharded copy-range workers vs single-threaded family updates",
  "command": "$CMD",
  "host": {
    "goos": "$GOOS",
    "goarch": "$GOARCH",
    "cpu": "$CPU",
    "cores": $CORES,
    "gomaxprocs": $MAXPROCS
  },
  "config": {
    "copies": 128,
    "second_level": 32,
    "first_wise": 8,
    "streams": 3,
    "batch_size": 256
  },
  "results": [
$RESULTS
  ],
  "notes": [
    "Regenerate with 'make bench' (scripts/bench.sh); results vary with host core count.",
    "Each update costs r*(s+1) = 128*33 counter additions plus hashing; worker w performs only the [lo_w, hi_w) copy slice of that, so the hot-path work divides across workers on multi-core hosts.",
    "On a 1-core host the sharded-over-serial gain comes purely from batching (amortized stream-map lookups and lighter producer loop), not concurrent copy-shard work.",
    "updates_per_s is reported by the benchmark itself via b.ReportMetric."
  ]
}
EOF

echo "bench.sh: wrote $OUT" >&2
