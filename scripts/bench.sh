#!/usr/bin/env bash
# bench.sh — regenerate BENCH_ingest.json (ingest throughput: serial vs
# sharded vs digest-coalesced), BENCH_update.json (digest update
# kernel: direct hashing vs digest replay, plus flat-layout merge), and
# BENCH_estimate.json (query kernel: interpreted reference vs compiled
# serial vs compiled parallel) reproducibly from the benchmarks in
# bench_test.go. Run from anywhere: each suite runs once, the output is
# parsed, and the JSON is rewritten in place with the current host's
# numbers.
set -euo pipefail
cd "$(dirname "$0")/.."

GOOS=$(go env GOOS)
GOARCH=$(go env GOARCH)
CORES=$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)

# run_bench <regex> — runs the suite, echoes raw `go test` output.
run_bench() {
    go test -run xxx -bench "$1" -benchtime 1s .
}

# parse_results <raw> <name-regex> — benchmark lines to JSON objects.
parse_results() {
    printf '%s\n' "$1" | awk -v pat="$2" '
$1 ~ pat {
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns = ""; ups = ""
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op") ns = $(i - 1)
        if ($i == "updates/s") ups = $(i - 1)
    }
    if (ns == "") next
    if (ups != "")
        printf "%s    {\"name\": \"%s\", \"ns_per_op\": %.0f, \"updates_per_s\": %.0f}", sep, name, ns, ups
    else
        printf "%s    {\"name\": \"%s\", \"ns_per_op\": %.0f}", sep, name, ns
    sep = ",\n"
}
END { print "" }'
}

# host_block <raw> — shared host JSON: cpu string and the GOMAXPROCS the
# benchmarks actually ran at (the -N suffix of the benchmark names),
# alongside the machine's online core count, so trajectory comparisons
# across hosts stay honest.
host_block() {
    local cpu maxprocs
    cpu=$(printf '%s\n' "$1" | awk -F': ' '/^cpu:/{sub(/^[ \t]+/, "", $2); print $2; exit}')
    [ -n "$cpu" ] || cpu=unknown
    maxprocs=$(printf '%s\n' "$1" | awk '/^Benchmark/{n=$1; if (match(n, /-[0-9]+$/)) {print substr(n, RSTART+1); exit}}')
    [ -n "$maxprocs" ] || maxprocs=1
    cat <<EOF
  "host": {
    "goos": "$GOOS",
    "goarch": "$GOARCH",
    "cpu": "$cpu",
    "cores": $CORES,
    "gomaxprocs": $maxprocs
  },
EOF
}

# --- BENCH_ingest.json ------------------------------------------------

OUT=BENCH_ingest.json
CMD="go test -run xxx -bench BenchmarkIngest -benchtime 1s ."
echo "== $CMD" >&2
RAW="$(run_bench BenchmarkIngest)"
echo "$RAW" >&2
RESULTS=$(parse_results "$RAW" "^BenchmarkIngest")
if [ -z "${RESULTS// /}" ]; then
    echo "bench.sh: no BenchmarkIngest results parsed" >&2
    exit 1
fi

# config mirrors the constants in bench_test.go (benchCfg, copies,
# streams, batch size, digest-cache default) and the ingest defaults;
# update both together.
cat > "$OUT" <<EOF
{
  "benchmark": "ingest throughput: serial family updates vs sharded copy-range workers vs digest-cached coalesced batches",
  "command": "$CMD",
$(host_block "$RAW")
  "config": {
    "copies": 128,
    "second_level": 32,
    "first_wise": 8,
    "streams": 3,
    "batch_size": 256,
    "digest_cache_entries": 8192,
    "coalesced_workload": "Zipf(1.0) over 16384 distinct elements"
  },
  "results": [
$RESULTS
  ],
  "notes": [
    "Regenerate with 'make bench' (scripts/bench.sh); results vary with host core count.",
    "IngestSerial/IngestSharded draw near-uniform elements; IngestCoalesced draws a Zipf(1.0) stream, the skewed regime the digest cache and per-batch coalescing target.",
    "A direct-path update costs r*(s+1) counter additions plus the full limited-independence hash bill; a digest-cache hit replays r*(s+1) plain additions with zero field arithmetic.",
    "updates_per_s is reported by the benchmark itself via b.ReportMetric."
  ]
}
EOF
echo "bench.sh: wrote $OUT" >&2

# --- BENCH_update.json ------------------------------------------------

OUT=BENCH_update.json
PAT='^(BenchmarkUpdate|BenchmarkUpdateDigest|BenchmarkUpdateDigestCompute|BenchmarkMergeFlat)$'
CMD="go test -run xxx -bench '$PAT' -benchtime 1s ."
echo "== $CMD" >&2
RAW="$(run_bench "$PAT")"
echo "$RAW" >&2
RESULTS=$(parse_results "$RAW" "^(BenchmarkUpdate|BenchmarkMergeFlat)")
if [ -z "${RESULTS// /}" ]; then
    echo "bench.sh: no update-kernel results parsed" >&2
    exit 1
fi

cat > "$OUT" <<EOF
{
  "benchmark": "digest update kernel at the paper shape: direct hashing path vs packed-digest replay, plus flat-layout family merge",
  "command": "$CMD",
$(host_block "$RAW")
  "config": {
    "copies": 128,
    "second_level": 32,
    "first_wise": 8,
    "distinct_elements": 1024,
    "digest_cache_entries": 8192
  },
  "results": [
$RESULTS
  ],
  "notes": [
    "Regenerate with 'make bench' (scripts/bench.sh).",
    "Update: direct path — per item, r Horner evaluations (degree t-1) plus r*s pairwise hashes over GF(2^61-1), then r*(s+1) counter additions.",
    "UpdateDigest: cache-hit path — digests precomputed, each update replays r*(s+1) additions; the acceptance bar is >= 3x fewer ns/op than Update.",
    "UpdateDigestCompute: cache-miss bound — one full digest computation plus one replay.",
    "MergeFlat: one 128-copy synopsis merged into another over the family-owned flat counter arenas (two linear slice additions)."
  ]
}
EOF
echo "bench.sh: wrote $OUT" >&2

# --- BENCH_estimate.json ----------------------------------------------

OUT=BENCH_estimate.json
PAT='^(BenchmarkEstimateExpression|BenchmarkEstimateCompiled|BenchmarkEstimateParallel)$'
CMD="go test -run xxx -bench '$PAT' -benchtime 1s ."
echo "== $CMD" >&2
RAW="$(run_bench "$PAT")"
echo "$RAW" >&2
RESULTS=$(parse_results "$RAW" "^BenchmarkEstimate")
if [ -z "${RESULTS// /}" ]; then
    echo "bench.sh: no query-kernel results parsed" >&2
    exit 1
fi

cat > "$OUT" <<EOF
{
  "benchmark": "query kernel at the paper shape: interpreted reference estimator vs compiled occupancy-word program over packed bitmaps, serial and parallel witness scan",
  "command": "$CMD",
$(host_block "$RAW")
  "config": {
    "copies": 128,
    "second_level": 32,
    "first_wise": 8,
    "expression": "(A - B) & C",
    "union": 4096,
    "target_ratio": 16,
    "multi_level": true
  },
  "results": [
$RESULTS
  ],
  "notes": [
    "Regenerate with 'make bench' (scripts/bench.sh).",
    "EstimateExpression: pre-kernel reference — raw counter scans with a map[string]bool and recursive EvalBool per witness candidate.",
    "EstimateCompiled: compiled kernel, serial — truth-table/postfix program over a packed occupancy word, version-cached per-family occupancy and signature bitmaps, zero allocations per call; the acceptance bar is >= 3x fewer ns/op than EstimateExpression.",
    "EstimateParallel: compiled kernel with the default worker pool (one worker per CPU); identical to EstimateCompiled when gomaxprocs is 1. All three paths return bit-identical estimates.",
    "The ML union epilogue is shared by all paths, so the ratio isolates the witness-scan and Boolean-evaluation cost."
  ]
}
EOF
echo "bench.sh: wrote $OUT" >&2

# --- BENCH_wal.json ---------------------------------------------------

OUT=BENCH_wal.json
PAT='^(BenchmarkWALAppend|BenchmarkRecovery)$'
CMD="go test -run xxx -bench '$PAT' -benchtime 1s ."
echo "== $CMD" >&2
RAW="$(run_bench "$PAT")"
echo "$RAW" >&2
RESULTS=$(parse_results "$RAW" "^(BenchmarkWALAppend|BenchmarkRecovery)")
if [ -z "${RESULTS// /}" ]; then
    echo "bench.sh: no durability results parsed" >&2
    exit 1
fi

cat > "$OUT" <<EOF
{
  "benchmark": "durability layer: WAL append throughput per fsync policy, and coordinator recovery (open + truncate-scan + replay) vs WAL length",
  "command": "$CMD",
$(host_block "$RAW")
  "config": {
    "copies": 128,
    "second_level": 32,
    "first_wise": 8,
    "batch_updates": 64,
    "record_encoding": "digest-packed (s = 32 <= 58)",
    "segment_size_bytes": 16777216,
    "recovery_snapshot": "none (worst-case full-suffix replay)"
  },
  "results": [
$RESULTS
  ],
  "notes": [
    "Regenerate with 'make bench-wal' or 'make bench' (scripts/bench.sh).",
    "WALAppend: one digest-packed 64-update record per op. fsync=always is the durability ceiling (one fsync per acked batch) and is bounded by device sync latency, not CPU; interval amortizes the sync over a 100ms window; never is the framing+buffered-write floor.",
    "Appends are serialized under the log mutex by design (log order must equal apply order), so WALAppend does not scale with cores; on a 1-core host the numbers are representative of any host with the same storage device.",
    "Recovery: each op is a full restart — wal.Open's tail truncate-scan plus replaying every record into a fresh coordinator via the hash-free digest path. updates_per_s is the replay rate; time grows linearly with WAL length, which is what the snapshot interval bounds in production.",
    "fsync behavior depends on the filesystem and device; on CI-grade virtual disks fsync=always can appear unrealistically fast (write cache not flushed to stable media)."
  ]
}
EOF
echo "bench.sh: wrote $OUT" >&2
