#!/usr/bin/env bash
# check.sh — the repo's tier-1 gate plus the race detector over the
# concurrent ingest/session code, gofmt enforcement, coverage floors on
# the operator-facing layers, and a docs lint keeping OPERATIONS.md and
# QUERIES.md in sync with the code. Run from anywhere.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt -l"
UNFORMATTED=$(gofmt -l .)
if [ -n "$UNFORMATTED" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$UNFORMATTED" >&2
    exit 1
fi

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test -race ./..."
go test -race ./...

# The digest cache and batch coalescing live on the producer side of
# the ingest engine's mutex, the distributed layer drives the same
# engine from network goroutines, and the cq engine's window/group
# state is mutated under the coordinator lock while watch rounds read
# it; run those packages under the race detector twice more with fresh
# schedules so the contended paths get extra interleavings in tier-1.
# The query kernel's parallel witness scan and shared family views get
# the same treatment (scoped to the kernel tests — the whole core
# package under -race -count=2 is minutes of statistical tests).
echo "== go test -race -count=2 ./internal/ingest ./internal/distributed ./internal/cq"
go test -race -count=2 ./internal/ingest ./internal/distributed ./internal/cq
echo "== go test -race -count=2 -run 'Compiled|Kernel|Parallel|View|Version' ./internal/core"
go test -race -count=2 -run 'Compiled|Kernel|Parallel|View|Version' ./internal/core

# The WAL is the layer that must never lie about what is on disk; run
# it under the race detector twice (appenders, the snapshotter, and
# replay share the log), and run the kill -9 crash-recovery
# integration tests explicitly so a test-filter change can never
# silently drop them from the gate.
echo "== go test -race -count=2 ./internal/wal"
go test -race -count=2 ./internal/wal
echo "== go test -run 'TestCrashRecoveryBitIdentical|TestViewCatalogSurvivesCrash|TestInspectWALCorruptSegment' -count=1 ./cmd/sketchd"
go test -run 'TestCrashRecoveryBitIdentical|TestViewCatalogSurvivesCrash|TestInspectWALCorruptSegment' -count=1 ./cmd/sketchd

# Estimator bench smoke: the three query-kernel benchmarks must at
# least compile and complete one iteration (full numbers come from
# scripts/bench.sh).
echo "== go test -run=NONE -bench 'Estimate(Expression|Compiled|Parallel)$' -benchtime=1x ."
go test -run=NONE -bench 'Estimate(Expression|Compiled|Parallel)$' -benchtime=1x .

# Coverage floors on the operator-facing layers: the metrics/logging
# layer is what operators debug everything else with, recovery
# correctness is only as good as the tests pinning the on-disk
# formats, and the cq window/group semantics are contracts QUERIES.md
# promises to users.
cover_floor() {
    local pkg="$1" floor="$2" cover
    echo "== go test -cover ${pkg} (floor ${floor}%)"
    cover=$(go test -cover "$pkg" | awk '{for (i=1; i<=NF; i++) if ($i == "coverage:") {sub(/%.*/, "", $(i+1)); print $(i+1)}}')
    if [ -z "$cover" ]; then
        echo "check: could not read ${pkg} coverage" >&2
        exit 1
    fi
    if awk -v c="$cover" -v f="$floor" 'BEGIN{exit !(c < f)}'; then
        echo "check: ${pkg} coverage ${cover}% is below the ${floor}% floor" >&2
        exit 1
    fi
    echo "${pkg} coverage: ${cover}%"
}
cover_floor ./internal/obs 80
cover_floor ./internal/wal 80
cover_floor ./internal/cq 80

# Docs lint: the operational surface must stay documented. Every
# metric series name registered in non-test code must appear in
# OPERATIONS.md; every sketchd flag must appear in OPERATIONS.md or
# QUERIES.md; every keyword of the CQ statement language must appear
# in QUERIES.md. Names are extracted from the source, so adding an
# instrument or flag without documenting it fails this gate.
echo "== docs lint (OPERATIONS.md / QUERIES.md)"
LINT_FAIL=0
# wal_dir is a logfmt key that matches the series-name shape, not a metric.
METRICS=$(grep -rhoE '"(ingest|stream|coord|watch|cq|estimator|wal|process|estimate)_[a-z0-9_]+"' \
    --include='*.go' --exclude='*_test.go' . | tr -d '"' | sort -u | grep -vx 'wal_dir')
for m in $METRICS; do
    if ! grep -q "$m" OPERATIONS.md; then
        echo "docs lint: metric ${m} is not documented in OPERATIONS.md" >&2
        LINT_FAIL=1
    fi
done
FLAGS=$(grep -hoE '\.(String|Bool|Int|Int64|Uint64|Duration|Float64|Func)\("[a-z-]+"' \
    cmd/sketchd/main.go | sed -E 's/.*\("([a-z-]+)"/\1/' | sort -u)
for f in $FLAGS; do
    if ! grep -q -- "-$f" OPERATIONS.md QUERIES.md; then
        echo "docs lint: sketchd flag -${f} is not documented in OPERATIONS.md or QUERIES.md" >&2
        LINT_FAIL=1
    fi
done
for k in CREATE DROP VIEW AS WINDOW SLIDE GROUP BY EMIT RSTREAM ISTREAM UNION INTERSECT EXCEPT XOR; do
    if ! grep -q "$k" QUERIES.md; then
        echo "docs lint: CQ keyword ${k} is not documented in QUERIES.md" >&2
        LINT_FAIL=1
    fi
done
if [ "$LINT_FAIL" -ne 0 ]; then
    echo "check: docs lint failed" >&2
    exit 1
fi
echo "docs lint: OK"

echo "check: OK"
