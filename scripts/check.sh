#!/usr/bin/env bash
# check.sh — the repo's tier-1 gate plus the race detector over the
# concurrent ingest/session code, gofmt enforcement, and a coverage
# floor on the observability layer. Run from anywhere.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt -l"
UNFORMATTED=$(gofmt -l .)
if [ -n "$UNFORMATTED" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$UNFORMATTED" >&2
    exit 1
fi

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test -race ./..."
go test -race ./...

# The digest cache and batch coalescing live on the producer side of
# the ingest engine's mutex, and the distributed layer drives the same
# engine from network goroutines; run those two packages under the race
# detector twice more with fresh schedules so the cache/coalescing
# paths get extra interleavings in tier-1. The query kernel's parallel
# witness scan and shared family views get the same treatment (scoped
# to the kernel tests — the whole core package under -race -count=2 is
# minutes of statistical tests).
echo "== go test -race -count=2 ./internal/ingest ./internal/distributed"
go test -race -count=2 ./internal/ingest ./internal/distributed
echo "== go test -race -count=2 -run 'Compiled|Kernel|Parallel|View|Version' ./internal/core"
go test -race -count=2 -run 'Compiled|Kernel|Parallel|View|Version' ./internal/core

# The WAL is the layer that must never lie about what is on disk; run
# it under the race detector twice (appenders, the snapshotter, and
# replay share the log), and run the kill -9 crash-recovery
# integration test explicitly so a test-filter change can never
# silently drop it from the gate.
echo "== go test -race -count=2 ./internal/wal"
go test -race -count=2 ./internal/wal
echo "== go test -run 'TestCrashRecoveryBitIdentical|TestInspectWALCorruptSegment' -count=1 ./cmd/sketchd"
go test -run 'TestCrashRecoveryBitIdentical|TestInspectWALCorruptSegment' -count=1 ./cmd/sketchd

# Estimator bench smoke: the three query-kernel benchmarks must at
# least compile and complete one iteration (full numbers come from
# scripts/bench.sh).
echo "== go test -run=NONE -bench 'Estimate(Expression|Compiled|Parallel)$' -benchtime=1x ."
go test -run=NONE -bench 'Estimate(Expression|Compiled|Parallel)$' -benchtime=1x .

# The metrics/logging layer is what operators debug everything else
# with; keep it thoroughly tested.
OBS_FLOOR=80
echo "== go test -cover ./internal/obs (floor ${OBS_FLOOR}%)"
COVER=$(go test -cover ./internal/obs | awk '{for (i=1; i<=NF; i++) if ($i == "coverage:") {sub(/%.*/, "", $(i+1)); print $(i+1)}}')
if [ -z "$COVER" ]; then
    echo "check: could not read internal/obs coverage" >&2
    exit 1
fi
if awk -v c="$COVER" -v f="$OBS_FLOOR" 'BEGIN{exit !(c < f)}'; then
    echo "check: internal/obs coverage ${COVER}% is below the ${OBS_FLOOR}% floor" >&2
    exit 1
fi
echo "internal/obs coverage: ${COVER}%"

# Same bar for the durability layer: recovery correctness is only as
# good as the tests that pin the on-disk formats and failure paths.
WAL_FLOOR=80
echo "== go test -cover ./internal/wal (floor ${WAL_FLOOR}%)"
WCOVER=$(go test -cover ./internal/wal | awk '{for (i=1; i<=NF; i++) if ($i == "coverage:") {sub(/%.*/, "", $(i+1)); print $(i+1)}}')
if [ -z "$WCOVER" ]; then
    echo "check: could not read internal/wal coverage" >&2
    exit 1
fi
if awk -v c="$WCOVER" -v f="$WAL_FLOOR" 'BEGIN{exit !(c < f)}'; then
    echo "check: internal/wal coverage ${WCOVER}% is below the ${WAL_FLOOR}% floor" >&2
    exit 1
fi
echo "internal/wal coverage: ${WCOVER}%"

echo "check: OK"
