#!/usr/bin/env bash
# check.sh — the repo's tier-1 gate plus the race detector over the
# concurrent ingest/session code. Run from anywhere.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test -race ./..."
go test -race ./...

echo "check: OK"
