#!/usr/bin/env bash
# check.sh — the repo's tier-1 gate plus the race detector over the
# concurrent ingest/session code, gofmt enforcement, coverage floors on
# the operator-facing layers, and sketchvet, the project's own static
# analysis suite (lock discipline, WAL append-before-apply, bit-exact
# hygiene, and docs coverage for metrics/flags/keywords). Run from
# anywhere.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt -l"
UNFORMATTED=$(gofmt -l .)
if [ -n "$UNFORMATTED" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$UNFORMATTED" >&2
    exit 1
fi

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test -race ./..."
go test -race ./...

# The digest cache and batch coalescing live on the producer side of
# the ingest engine's mutex, the distributed layer drives the same
# engine from network goroutines, and the cq engine's window/group
# state is mutated under the coordinator lock while watch rounds read
# it; run those packages under the race detector twice more with fresh
# schedules so the contended paths get extra interleavings in tier-1.
# The query kernel's parallel witness scan and shared family views get
# the same treatment (scoped to the kernel tests — the whole core
# package under -race -count=2 is minutes of statistical tests).
echo "== go test -race -count=2 ./internal/ingest ./internal/distributed ./internal/cq"
go test -race -count=2 ./internal/ingest ./internal/distributed ./internal/cq
# sketchbench runs one goroutine per session against a live server in
# its tests — the load-generator client itself must be race-clean.
echo "== go test -race -count=2 ./cmd/sketchbench"
go test -race -count=2 ./cmd/sketchbench
# The sharded coordinator's whole point is concurrent sessions on
# disjoint shards; force at least 4-way parallelism under the race
# detector so shard/fence/vmu interleavings are exercised even when
# the gate runs on a small host (GOMAXPROCS otherwise equals the core
# count, which can be 1 on CI).
echo "== GOMAXPROCS=4 go test -race -count=1 ./internal/distributed"
GOMAXPROCS=4 go test -race -count=1 ./internal/distributed
echo "== go test -race -count=2 -run 'Compiled|Kernel|Parallel|View|Version' ./internal/core"
go test -race -count=2 -run 'Compiled|Kernel|Parallel|View|Version' ./internal/core

# The WAL is the layer that must never lie about what is on disk; run
# it under the race detector twice (appenders, the snapshotter, and
# replay share the log), and run the kill -9 crash-recovery
# integration tests explicitly so a test-filter change can never
# silently drop them from the gate.
echo "== go test -race -count=2 ./internal/wal"
go test -race -count=2 ./internal/wal
echo "== go test -run 'TestCrashRecoveryBitIdentical|TestViewCatalogSurvivesCrash|TestInspectWALCorruptSegment' -count=1 ./cmd/sketchd"
go test -run 'TestCrashRecoveryBitIdentical|TestViewCatalogSurvivesCrash|TestInspectWALCorruptSegment' -count=1 ./cmd/sketchd

# Bench smokes: the query-kernel, batch-digest, and wire-frame
# benchmarks must at least compile and complete one iteration (full
# numbers come from scripts/bench.sh).
echo "== go test -run=NONE -bench 'Estimate(Expression|Compiled|Parallel)$' -benchtime=1x ."
go test -run=NONE -bench 'Estimate(Expression|Compiled|Parallel)$' -benchtime=1x .
echo "== go test -run=NONE -bench 'UpdateDigestComputeBatch$' -benchtime=1x ."
go test -run=NONE -bench 'UpdateDigestComputeBatch$' -benchtime=1x .
echo "== go test -run=NONE -bench 'UpdateBatch(Encode|Decode)Frame$' -benchtime=1x ./internal/distributed"
go test -run=NONE -bench 'UpdateBatch(Encode|Decode)Frame$' -benchtime=1x ./internal/distributed
# Shard + coordinator-digest-cache smoke: the striped apply path and
# the cached raw-update path must complete a benchmark iteration.
echo "== go test -run=NONE -bench 'CoordApply(DigestCache|ShardsParallel)' -benchtime=1x ./internal/distributed"
go test -run=NONE -bench 'CoordApply(DigestCache|ShardsParallel)' -benchtime=1x ./internal/distributed

# Coverage floors on the operator-facing layers: the metrics/logging
# layer is what operators debug everything else with, recovery
# correctness is only as good as the tests pinning the on-disk
# formats, and the cq window/group semantics are contracts QUERIES.md
# promises to users.
cover_floor() {
    local pkg="$1" floor="$2" cover
    echo "== go test -cover ${pkg} (floor ${floor}%)"
    cover=$(go test -cover "$pkg" | awk '{for (i=1; i<=NF; i++) if ($i == "coverage:") {sub(/%.*/, "", $(i+1)); print $(i+1)}}')
    if [ -z "$cover" ]; then
        echo "check: could not read ${pkg} coverage" >&2
        exit 1
    fi
    if awk -v c="$cover" -v f="$floor" 'BEGIN{exit !(c < f)}'; then
        echo "check: ${pkg} coverage ${cover}% is below the ${floor}% floor" >&2
        exit 1
    fi
    echo "${pkg} coverage: ${cover}%"
}
cover_floor ./internal/obs 80
cover_floor ./internal/wal 80
cover_floor ./internal/cq 80

# sketchvet: the project's static-analysis suite. guardedby proves the
# `// guarded by:` lock annotations, walbefore proves WAL
# append-before-apply on the coordinator, bitexact keeps opted-in
# packages free of nondeterministic output constructs, and obslint
# replaces the old grep-based docs lint — every registered metric,
# sketchd flag, and CQ keyword must be named AND documented in
# OPERATIONS.md / QUERIES.md, resolved through the type checker instead
# of regexes (so loop-registered and Label-wrapped names are seen too).
echo "== sketchvet ./..."
go run ./cmd/sketchvet -timing ./...
echo "sketchvet: OK"

echo "check: OK"
