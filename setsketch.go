// Package setsketch estimates the cardinality of set expressions —
// union, intersection, and difference over any number of streams —
// from continuous update streams (insertions *and* deletions), in one
// pass and small space. It is a from-scratch implementation of
// Ganguly, Garofalakis, and Rastogi, "Processing Set Expressions over
// Continuous Update Streams" (SIGMOD 2003), built on their 2-level
// hash sketch synopsis.
//
// The entry point is the Processor, the stream query-processing engine
// of the paper's Figure 1: feed it update triples ⟨stream, element, ±v⟩
// as they arrive, then ask for (ε, δ)-style estimates of any set
// expression over the streams at any time:
//
//	p, _ := setsketch.NewProcessor(setsketch.DefaultOptions())
//	p.Insert("R1", srcAddr)     // e.g. IP sources seen at router R1
//	p.Delete("R1", expiredAddr) // deletions are first-class
//	est, _ := p.Estimate("(R1 & R2) - R3", 0.1)
//	fmt.Println(est.Value)
//
// Estimates never require rescanning past stream items, no matter how
// many deletions occur: the underlying synopsis is linear, so a
// deletion exactly cancels its insertion. Linearity also makes
// synopses mergeable — see Snapshot/Restore and MergeFrom for the
// distributed collection model, where each site summarizes its local
// streams and a coordinator combines them.
package setsketch

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"setsketch/internal/core"
	"setsketch/internal/expr"
)

// Options configures a Processor.
type Options struct {
	// Copies is the number of independent sketch copies r per stream.
	// Estimation error shrinks roughly as 1/√r; the paper's
	// experiments reach ≈10% relative error at 512 copies for
	// expression sizes down to 1/32 of the union. Default 512.
	Copies int

	// SecondLevel is the number s of second-level hash functions per
	// sketch; each singleton test errs with probability 2^−s.
	// Default 32 (the paper's experimental setting).
	SecondLevel int

	// FirstWise is the independence degree of the first-level hash
	// family (the paper's §3.6 requires Θ(log 1/ε)). Default 8.
	FirstWise int

	// Seed derives all hash functions. Processors that should exchange
	// or merge snapshots (distributed sites) must share a Seed — the
	// "stored coins" of the distributed-streams model. Default 1.
	Seed uint64

	// EstimateWorkers sets the witness-scan worker-pool size used by
	// Estimate and continuous queries. 0 uses one worker per available
	// CPU; negative scans serially on the calling goroutine. Parallel
	// and serial scans produce bit-identical estimates, so this is a
	// pure latency knob. It does not affect the synopsis ("stored
	// coins"): processors may exchange snapshots regardless of it.
	EstimateWorkers int
}

// coins returns the option fields that determine the synopsis hash
// functions and shape — what two processors must share to exchange
// snapshots. Query-side tuning (EstimateWorkers) is excluded.
func (o Options) coins() Options {
	return Options{Copies: o.Copies, SecondLevel: o.SecondLevel, FirstWise: o.FirstWise, Seed: o.Seed}
}

// estimateOptions maps the public worker knob onto the kernel options.
func estimateOptions(o Options) core.EstimateOptions {
	switch {
	case o.EstimateWorkers == 0:
		return core.DefaultEstimateOptions()
	case o.EstimateWorkers < 0:
		return core.EstimateOptions{Workers: 0}
	default:
		return core.EstimateOptions{Workers: o.EstimateWorkers}
	}
}

// DefaultOptions returns the configuration used in the paper's
// experimental study: 512 copies, 32 second-level functions.
func DefaultOptions() Options {
	return Options{Copies: 512, SecondLevel: 32, FirstWise: 8, Seed: 1}
}

// Estimate is a cardinality estimate with diagnostics.
type Estimate struct {
	// Value is the estimated number of distinct elements with positive
	// net frequency in the expression result.
	Value float64
	// Level is the first-level sketch bucket the estimate was read from.
	Level int
	// Copies is the number of sketch copies consulted.
	Copies int
	// Valid is the number of copies that yielded a usable 0/1 witness
	// observation (equals Copies for plain union estimates).
	Valid int
	// Witnesses is the number of positive witness observations.
	Witnesses int
	// Union is the union-cardinality estimate the witness estimators
	// scaled by (0 for plain union estimates).
	Union float64
	// StdError is an approximate standard error of Value (0 when the
	// estimator cannot compute one). It is an indicator for sizing
	// Copies, not a guarantee: multi-level witness observations are
	// mildly correlated, which this bar does not model.
	StdError float64
}

func fromCore(e core.Estimate) Estimate {
	return Estimate{Value: e.Value, Level: e.Level, Copies: e.Copies,
		Valid: e.Valid, Witnesses: e.Witnesses, Union: e.Union, StdError: e.StdError}
}

// Processor maintains 2-level hash sketch synopses for a collection of
// named update streams and answers set-expression cardinality queries
// over them. It is safe for concurrent use; updates to different
// streams proceed in parallel.
//
// Locking protocol: updates hold mu.RLock (shared) plus their stream's
// mutex, so updates to different streams run concurrently; estimation
// and other whole-state reads hold mu.Lock (exclusive), so they see a
// consistent snapshot of every counter.
type Processor struct {
	opts    Options
	cfg     core.Config
	estOpts core.EstimateOptions

	mu    sync.RWMutex
	fams  map[string]*core.Family
	locks map[string]*sync.Mutex

	// Continuous-query state (see continuous.go), created on first
	// registration.
	contOnce sync.Once
	cont     *continuousState
}

// NewProcessor creates a Processor. Invalid options are reported
// immediately rather than at first use.
func NewProcessor(opts Options) (*Processor, error) {
	if opts.Copies == 0 && opts.SecondLevel == 0 && opts.FirstWise == 0 && opts.Seed == 0 {
		opts = DefaultOptions()
	}
	cfg := core.Config{
		Buckets:     core.DefaultConfig().Buckets,
		SecondLevel: opts.SecondLevel,
		FirstWise:   opts.FirstWise,
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if opts.Copies < 1 {
		return nil, fmt.Errorf("setsketch: Copies = %d, need at least 1", opts.Copies)
	}
	return &Processor{
		opts:    opts,
		cfg:     cfg,
		estOpts: estimateOptions(opts),
		fams:    make(map[string]*core.Family),
		locks:   make(map[string]*sync.Mutex),
	}, nil
}

// Options returns the processor's configuration.
func (p *Processor) Options() Options { return p.opts }

// family returns (creating if needed) the synopsis and its update lock
// for a stream.
func (p *Processor) family(stream string) (*core.Family, *sync.Mutex, error) {
	p.mu.RLock()
	f, ok := p.fams[stream]
	l := p.locks[stream]
	p.mu.RUnlock()
	if ok {
		return f, l, nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if f, ok = p.fams[stream]; ok {
		return f, p.locks[stream], nil
	}
	f, err := core.NewFamily(p.cfg, p.opts.Seed, p.opts.Copies)
	if err != nil {
		return nil, nil, err
	}
	l = new(sync.Mutex)
	p.fams[stream] = f
	p.locks[stream] = l
	return f, l, nil
}

// Update applies the stream update ⟨stream, elem, ±delta⟩: delta > 0
// inserts that many copies of elem, delta < 0 deletes them. Deletions
// must be legal (never drive an element's net frequency negative);
// this is the paper's stream model and is not checked here — the
// synopsis is too small to know net frequencies, which is the point.
func (p *Processor) Update(stream string, elem uint64, delta int64) error {
	if delta == 0 {
		return nil
	}
	f, l, err := p.family(stream)
	if err != nil {
		return err
	}
	// Shared lock on mu: excludes whole-state readers (Estimate) while
	// letting updates to other streams proceed under their own locks.
	p.mu.RLock()
	l.Lock()
	f.Update(elem, delta)
	l.Unlock()
	p.mu.RUnlock()
	p.notifyContinuous(stream)
	return nil
}

// Insert is Update(stream, elem, +1).
func (p *Processor) Insert(stream string, elem uint64) error {
	return p.Update(stream, elem, 1)
}

// Delete is Update(stream, elem, −1).
func (p *Processor) Delete(stream string, elem uint64) error {
	return p.Update(stream, elem, -1)
}

// Streams returns the names of all streams seen so far, sorted.
func (p *Processor) Streams() []string {
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := make([]string, 0, len(p.fams))
	for name := range p.fams {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Estimate estimates the cardinality of a set expression over the
// processor's streams with relative-accuracy parameter eps ∈ (0, 1).
// The expression grammar accepts '|', '∪', '+' or UNION; '&', '∩' or
// INTERSECT; '-', '−' or EXCEPT; identifiers; and parentheses, with
// intersection/difference binding tighter than union:
//
//	est, err := p.Estimate("(R1 & R2) - R3", 0.1)
//
// Estimation never touches past stream items; it reads only the
// maintained synopses. ErrNoObservations is returned when no sketch
// copy produced a witness observation (raise Copies, or accept that
// |E| is too small relative to the union to resolve in this space).
func (p *Processor) Estimate(expression string, eps float64) (Estimate, error) {
	node, err := expr.Parse(expression)
	if err != nil {
		return Estimate{}, err
	}
	// Exclusive lock: estimation reads every stream's counters and must
	// not observe updates mid-flight (updates hold mu.RLock).
	p.mu.Lock()
	defer p.mu.Unlock()
	est, err := core.EstimateExpressionOpts(node, p.fams, eps, true, p.estOpts)
	return fromCore(est), err
}

// EstimateSingleLevel is Estimate using the single-level witness scheme
// exactly as the paper's Fig. 6 / §4 pseudo-code reads it (witnesses
// are drawn from one chosen first-level bucket per sketch copy). The
// default Estimate harvests witnesses from every level, which has the
// same expectation but roughly 15× the valid observations per sketch —
// see EXPERIMENTS.md. This variant exists for fidelity comparisons.
func (p *Processor) EstimateSingleLevel(expression string, eps float64) (Estimate, error) {
	node, err := expr.Parse(expression)
	if err != nil {
		return Estimate{}, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	est, err := core.EstimateExpressionOpts(node, p.fams, eps, false, p.estOpts)
	return fromCore(est), err
}

// EstimateUnion estimates |∪ streams| with the paper's specialized
// single-level estimator (Fig. 5), kept for fidelity. Estimate with a
// union expression ("A | B") is usually tighter: it scales by the
// all-levels maximum-likelihood union estimate, which reads the whole
// occupancy profile instead of one level.
func (p *Processor) EstimateUnion(streams []string, eps float64) (Estimate, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	fams := make([]*core.Family, 0, len(streams))
	for _, name := range streams {
		f, ok := p.fams[name]
		if !ok {
			return Estimate{}, fmt.Errorf("setsketch: unknown stream %q", name)
		}
		fams = append(fams, f)
	}
	est, err := core.EstimateUnionMulti(fams, eps)
	return fromCore(est), err
}

// EstimateDistinct estimates the number of distinct live elements of
// one stream.
func (p *Processor) EstimateDistinct(stream string, eps float64) (Estimate, error) {
	return p.EstimateUnion([]string{stream}, eps)
}

// ErrNoObservations is returned when an estimate could not be formed
// from any sketch copy; see Processor.Estimate.
var ErrNoObservations = core.ErrNoObservations

// Validate parses an expression and reports grammar errors without
// estimating anything.
func Validate(expression string) error {
	_, err := expr.Parse(expression)
	return err
}

// Analysis is the result of static expression analysis.
type Analysis struct {
	// Canonical is the fully-parenthesized normal form of the
	// expression.
	Canonical string
	// Streams are the distinct stream names referenced, sorted.
	Streams []string
	// Empty reports that the expression denotes ∅ for every input
	// (e.g. A - A): estimating it is pointless.
	Empty bool
	// Universe reports that the expression equals the union of its
	// streams for every input (e.g. A | (B - A)): the specialized
	// union estimator (better constants) can serve the query.
	Universe bool
}

// Analyze parses and statically analyzes an expression: it computes
// the canonical form, the referenced streams, and whether the
// expression is degenerate (always empty, or always the full union).
// Analysis is exact — it decides semantic properties by truth-table
// enumeration over the expression's streams (limited to 20 streams).
func Analyze(expression string) (Analysis, error) {
	node, err := expr.Parse(expression)
	if err != nil {
		return Analysis{}, err
	}
	empty, err := expr.IsEmpty(node)
	if err != nil {
		return Analysis{}, err
	}
	universe, err := expr.IsUniverse(node)
	if err != nil {
		return Analysis{}, err
	}
	return Analysis{
		Canonical: node.String(),
		Streams:   expr.Streams(node),
		Empty:     empty,
		Universe:  universe,
	}, nil
}

// Equivalent reports whether two expressions denote the same set for
// every possible input, e.g. "A - (B | C)" and "(A - B) & (A - C)".
func Equivalent(expr1, expr2 string) (bool, error) {
	n1, err := expr.Parse(expr1)
	if err != nil {
		return false, err
	}
	n2, err := expr.Parse(expr2)
	if err != nil {
		return false, err
	}
	return expr.Equivalent(n1, n2)
}

// Snapshot serializes the synopsis of one stream. Snapshots are
// deterministic, checksummed, and independent of future updates.
func (p *Processor) Snapshot(stream string, w io.Writer) error {
	p.mu.RLock()
	f, ok := p.fams[stream]
	l := p.locks[stream]
	p.mu.RUnlock()
	if !ok {
		return fmt.Errorf("setsketch: unknown stream %q", stream)
	}
	p.mu.RLock()
	l.Lock()
	clone := f.Clone()
	l.Unlock()
	p.mu.RUnlock()
	_, err := clone.WriteTo(w)
	return err
}

// Restore merges a snapshot (written by Snapshot, possibly by another
// Processor sharing the same Options) into the named stream. Restoring
// sub-stream snapshots from several sites yields exactly the synopsis
// of the combined stream.
func (p *Processor) Restore(stream string, r io.Reader) error {
	in, err := core.ReadFamily(r)
	if err != nil {
		return err
	}
	f, l, err := p.family(stream)
	if err != nil {
		return err
	}
	p.mu.RLock()
	defer p.mu.RUnlock()
	l.Lock()
	defer l.Unlock()
	return f.Merge(in)
}

// MergeFrom merges every stream synopsis of another Processor into
// this one. Both processors must share Options (stored coins).
func (p *Processor) MergeFrom(other *Processor) error {
	if p.opts.coins() != other.opts.coins() {
		return fmt.Errorf("setsketch: merging processors with different options")
	}
	other.mu.RLock()
	names := make([]string, 0, len(other.fams))
	for name := range other.fams {
		names = append(names, name)
	}
	sort.Strings(names)
	snaps := make(map[string]*core.Family, len(names))
	for _, name := range names {
		snaps[name] = other.fams[name].Clone()
	}
	other.mu.RUnlock()
	for _, name := range names {
		f, l, err := p.family(name)
		if err != nil {
			return err
		}
		p.mu.RLock()
		l.Lock()
		err = f.Merge(snaps[name])
		l.Unlock()
		p.mu.RUnlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// DropStream discards the synopsis of a stream, freeing its memory.
// It reports whether the stream existed.
func (p *Processor) DropStream(stream string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	_, ok := p.fams[stream]
	delete(p.fams, stream)
	delete(p.locks, stream)
	return ok
}

// ResetStream zeroes the synopsis of a stream (as if the stream had
// delivered no updates) while keeping its hash functions, so future
// snapshots remain mergeable. It reports whether the stream existed.
func (p *Processor) ResetStream(stream string) bool {
	p.mu.RLock()
	f, ok := p.fams[stream]
	l := p.locks[stream]
	p.mu.RUnlock()
	if !ok {
		return false
	}
	p.mu.RLock()
	l.Lock()
	f.Reset()
	l.Unlock()
	p.mu.RUnlock()
	return true
}

// MemoryBytes reports the total synopsis footprint across all streams.
func (p *Processor) MemoryBytes() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	var n int
	for _, f := range p.fams {
		n += f.MemoryBytes()
	}
	return n
}

// RecommendedCopies returns the copy count for an (ε, δ) union
// estimate; see the package documentation for how witness-based
// estimates additionally scale with |∪A_i|/|E|.
func RecommendedCopies(eps, delta float64) int {
	return core.RecommendedCopies(eps, delta)
}
