package setsketch_test

import (
	"fmt"
	"log"

	"setsketch"
)

// The basic workflow: stream updates in, ask for set-expression
// cardinalities at any time.
func Example() {
	p, err := setsketch.NewProcessor(setsketch.Options{
		Copies: 256, SecondLevel: 16, FirstWise: 8, Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}
	// Streams A = {0..999}, B = {500..1499}; then delete 500..599
	// from B again, so A ∩ B = {600..999}.
	for e := uint64(0); e < 1000; e++ {
		p.Insert("A", e)
		p.Insert("B", e+500)
	}
	for e := uint64(500); e < 600; e++ {
		p.Delete("B", e)
	}
	est, err := p.Estimate("A & B", 0.2)
	if err != nil {
		log.Fatal(err)
	}
	// True cardinality is 400; the estimate is randomized but tight.
	fmt.Println(est.Value > 200 && est.Value < 600)
	// Output: true
}

// Deletion invariance: a stream with churn and its net-equivalent
// stream yield the identical synopsis, hence identical estimates.
func Example_deletionInvariance() {
	opts := setsketch.Options{Copies: 64, SecondLevel: 16, FirstWise: 8, Seed: 7}
	churned, _ := setsketch.NewProcessor(opts)
	clean, _ := setsketch.NewProcessor(opts)
	for e := uint64(0); e < 500; e++ {
		churned.Insert("S", e)
		clean.Insert("S", e)
		// Phantom traffic through the churned processor only.
		churned.Update("S", e+10000, 3)
		churned.Update("S", e+10000, -3)
	}
	a, _ := churned.EstimateDistinct("S", 0.2)
	b, _ := clean.EstimateDistinct("S", 0.2)
	fmt.Println(a.Value == b.Value)
	// Output: true
}

// Insert-only workloads can use bit-cell synopses (64× less memory,
// identical estimates, no deletions) — the representation the paper's
// own experiments use.
func ExampleInsertOnlyProcessor() {
	opts := setsketch.Options{Copies: 128, SecondLevel: 16, FirstWise: 8, Seed: 5}
	bits, _ := setsketch.NewInsertOnlyProcessor(opts)
	counters, _ := setsketch.NewProcessor(opts)
	for e := uint64(0); e < 3000; e++ {
		bits.Insert("T", e)
		counters.Insert("T", e)
	}
	a, _ := bits.Estimate("T", 0.2)
	b, _ := counters.Estimate("T", 0.2)
	fmt.Println(a.Value == b.Value)
	fmt.Println(counters.MemoryBytes()/bits.MemoryBytes() > 50)
	// Output:
	// true
	// true
}

// Validate checks expression syntax without touching any synopsis.
func ExampleValidate() {
	fmt.Println(setsketch.Validate("(R1 & R2) - R3"))
	err := setsketch.Validate("R1 & & R2")
	fmt.Println(err != nil)
	// Output:
	// <nil>
	// true
}
