// IP-network monitoring: the paper's motivating scenario (§1). Three
// routers R1, R2, R3 each observe a stream of active IP-session source
// addresses; sessions open (insert) and expire (delete) continuously.
// The monitoring question — useful for spotting denial-of-service
// traffic that enters through two edge routers but bypasses the
// scrubber — is:
//
//	"how many distinct source addresses are currently seen at both
//	 R1 and R2 but not at R3?"  i.e.  |(R1 ∩ R2) − R3|
//
// Each router keeps only a small synopsis; no router ever needs to
// revisit past traffic when sessions expire.
//
// Run with: go run ./examples/ipmonitor
package main

import (
	"fmt"
	"log"
	"math/rand"

	"setsketch"
)

// session is one active flow: a source address visible at some routers.
type session struct {
	addr    uint64
	routers []string
}

func main() {
	p, err := setsketch.NewProcessor(setsketch.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))

	// Exact per-router address sets, for comparison only — a real
	// deployment would not (and could not) keep these.
	exact := map[string]map[uint64]bool{
		"R1": {}, "R2": {}, "R3": {},
	}
	active := make([]session, 0, 1<<16)

	// IPv4 addresses as uint64; a handful of /8s to make them look real.
	newAddr := func() uint64 {
		return uint64(10+rng.Intn(4))<<24 | uint64(rng.Int63n(1<<24))
	}

	open := func() {
		s := session{addr: newAddr()}
		// Traffic mix: 50% hit R1+R2 (the attack path of interest some
		// of the time also covered by R3), the rest spread around.
		switch r := rng.Float64(); {
		case r < 0.35:
			s.routers = []string{"R1", "R2"}
		case r < 0.50:
			s.routers = []string{"R1", "R2", "R3"}
		case r < 0.70:
			s.routers = []string{"R1"}
		case r < 0.90:
			s.routers = []string{"R2"}
		default:
			s.routers = []string{"R3"}
		}
		for _, router := range s.routers {
			if exact[router][s.addr] {
				continue // address already active at this router
			}
			exact[router][s.addr] = true
			if err := p.Insert(router, s.addr); err != nil {
				log.Fatal(err)
			}
		}
		active = append(active, s)
	}

	expire := func() {
		if len(active) == 0 {
			return
		}
		i := rng.Intn(len(active))
		s := active[i]
		active[i] = active[len(active)-1]
		active = active[:len(active)-1]
		for _, router := range s.routers {
			if !exact[router][s.addr] {
				continue
			}
			delete(exact[router], s.addr)
			if err := p.Delete(router, s.addr); err != nil {
				log.Fatal(err)
			}
		}
	}

	const query = "(R1 & R2) - R3"
	fmt.Printf("monitoring %q over three router streams\n\n", query)
	fmt.Printf("%-10s %12s %12s %12s %9s\n", "epoch", "sessions", "estimate", "exact", "error")

	// Simulate five epochs: ramp-up, then heavy churn (every epoch
	// expires 60% of sessions and opens new ones — thousands of
	// deletions flow through the synopses).
	for epoch := 1; epoch <= 5; epoch++ {
		for i := 0; i < 8000; i++ {
			open()
		}
		if epoch > 1 {
			for i := 0; i < int(float64(len(active))*0.6); i++ {
				expire()
			}
		}
		trueCount := exactAnswer(exact)
		est, err := p.Estimate(query, 0.1)
		if err != nil {
			log.Fatalf("epoch %d: %v", epoch, err)
		}
		relErr := 0.0
		if trueCount > 0 {
			relErr = (est.Value - float64(trueCount)) / float64(trueCount) * 100
		}
		fmt.Printf("%-10d %12d %12.0f %12d %+8.1f%%\n",
			epoch, len(active), est.Value, trueCount, relErr)
	}
	fmt.Printf("\nsynopsis memory: %.1f MiB total across 3 routers (exact sets would grow with traffic)\n",
		float64(p.MemoryBytes())/(1<<20))
}

func exactAnswer(exact map[string]map[uint64]bool) int {
	n := 0
	for addr := range exact["R1"] {
		if exact["R2"][addr] && !exact["R3"][addr] {
			n++
		}
	}
	return n
}
