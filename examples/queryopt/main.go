// Query-optimizer cardinality estimation: the paper's SQL motivation
// (§1). The SQL standard's UNION / INTERSECT / EXCEPT operators need
// result-cardinality estimates during plan costing; for large tables a
// single scan that maintains 2-level hash sketches answers them all.
//
// Tables never see deletions mid-scan, so this example uses the
// insert-only bit-cell representation — the one the paper's own
// experiments use (§5.2) — at 1/64 the memory of counter sketches with
// identical estimates.
//
// Run with: go run ./examples/queryopt
package main

import (
	"fmt"
	"log"
	"math/rand"

	"setsketch"
)

func main() {
	p, err := setsketch.NewInsertOnlyProcessor(setsketch.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2003))

	// Three "tables" of customer ids, as a warehouse might hold them:
	// orders_2024, orders_2025, and churned (closed accounts).
	// Simulate the one scan per table a DBMS statistics job would run.
	exact := map[string]map[uint64]bool{
		"orders_2024": {}, "orders_2025": {}, "churned": {},
	}
	insert := func(table string, id uint64) {
		if exact[table][id] {
			return
		}
		exact[table][id] = true
		if err := p.Insert(table, id); err != nil {
			log.Fatal(err)
		}
	}
	const customers = 80000
	for i := 0; i < 60000; i++ {
		insert("orders_2024", uint64(rng.Intn(customers)))
	}
	for i := 0; i < 60000; i++ {
		// 2025 skews to a shifted customer range: partial overlap.
		insert("orders_2025", uint64(rng.Intn(customers)/2+customers/3))
	}
	for i := 0; i < 8000; i++ {
		insert("churned", uint64(rng.Intn(customers)))
	}

	// The queries a costing pass would ask before picking a plan.
	queries := []struct {
		sql  string
		expr string
	}{
		{"2024 INTERSECT 2025", "orders_2024 & orders_2025"},
		{"2024 UNION 2025", "orders_2024 | orders_2025"},
		{"2024 EXCEPT 2025", "orders_2024 - orders_2025"},
		{"(2024 ∩ 2025) EXCEPT churned", "(orders_2024 & orders_2025) - churned"},
	}
	fmt.Printf("statistics pass over 3 tables; synopsis memory: %.2f MiB (bit cells)\n\n",
		float64(p.MemoryBytes())/(1<<20))
	fmt.Printf("%-30s %12s %12s %9s\n", "operator", "estimate", "exact", "error")
	for _, q := range queries {
		est, err := p.Estimate(q.expr, 0.1)
		if err != nil {
			log.Fatalf("estimate %q: %v", q.expr, err)
		}
		truth := exactCount(exact, q.expr)
		relErr := 0.0
		if truth > 0 {
			relErr = (est.Value - float64(truth)) / float64(truth) * 100
		}
		fmt.Printf("%-30s %12.0f %12d %+8.1f%%\n", q.sql, est.Value, truth, relErr)
	}

	// Counter sketches over the same scan would cost 64× the memory for
	// the same estimates — that headroom is why the bit representation
	// is the right default for optimizer statistics.
	counter, err := setsketch.NewProcessor(p.Options())
	if err != nil {
		log.Fatal(err)
	}
	for table, ids := range exact {
		for id := range ids {
			if err := counter.Insert(table, id); err != nil {
				log.Fatal(err)
			}
		}
	}
	fmt.Printf("\ncounter-sketch memory for the same synopses: %.1f MiB (%.0f×)\n",
		float64(counter.MemoryBytes())/(1<<20),
		float64(counter.MemoryBytes())/float64(p.MemoryBytes()))
}

func exactCount(tables map[string]map[uint64]bool, q string) int {
	in := func(t string, id uint64) bool { return tables[t][id] }
	all := map[uint64]bool{}
	for _, ids := range tables {
		for id := range ids {
			all[id] = true
		}
	}
	n := 0
	for id := range all {
		o24, o25, ch := in("orders_2024", id), in("orders_2025", id), in("churned", id)
		var ok bool
		switch q {
		case "orders_2024 & orders_2025":
			ok = o24 && o25
		case "orders_2024 | orders_2025":
			ok = o24 || o25
		case "orders_2024 - orders_2025":
			ok = o24 && !o25
		case "(orders_2024 & orders_2025) - churned":
			ok = o24 && o25 && !ch
		}
		if ok {
			n++
		}
	}
	return n
}
