// Retail-chain transaction processing (§1's second motivating domain):
// three regional stores stream purchase records — and returns, which
// are deletions — keyed by customer id. Marketing questions are set
// expressions over the per-store customer multisets:
//
//	customers active in EVERY region:      east & west & online
//	in-store-only customers:              (east | west) - online
//	online-only customers:                 online - (east | west)
//
// A returned purchase must stop counting the customer in that store
// once their net purchase count there reaches zero; the synopses track
// this exactly because deletions cancel insertions.
//
// Run with: go run ./examples/retail
package main

import (
	"fmt"
	"log"
	"math/rand"

	"setsketch"
)

func main() {
	p, err := setsketch.NewProcessor(setsketch.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))

	stores := []string{"east", "west", "online"}
	// Exact net purchase counts per store per customer (ground truth
	// for the demo; the synopses never see this table).
	net := map[string]map[uint64]int64{
		"east": {}, "west": {}, "online": {},
	}

	const customers = 60000
	type purchase struct {
		store    string
		customer uint64
	}
	var history []purchase

	buy := func() {
		c := uint64(rng.Int63n(customers))
		// Customers skew to their home region but shop everywhere;
		// online is popular across the board.
		var store string
		switch home := c % 3; {
		case rng.Float64() < 0.25:
			store = "online"
		case home == 0:
			store = "east"
		case home == 1:
			store = "west"
		default:
			store = stores[rng.Intn(2)]
		}
		if net[store][c] == 0 {
			if err := p.Insert(store, c); err != nil {
				log.Fatal(err)
			}
		} else {
			// Repeat purchase: update net frequency in the synopsis
			// too — multiplicities are tracked, distinctness is what
			// queries count.
			if err := p.Update(store, c, 1); err != nil {
				log.Fatal(err)
			}
		}
		net[store][c]++
		history = append(history, purchase{store, c})
	}

	returnOne := func() {
		if len(history) == 0 {
			return
		}
		i := rng.Intn(len(history))
		pu := history[i]
		history[i] = history[len(history)-1]
		history = history[:len(history)-1]
		if net[pu.store][pu.customer] == 0 {
			return // already fully returned
		}
		net[pu.store][pu.customer]--
		if net[pu.store][pu.customer] == 0 {
			delete(net[pu.store], pu.customer)
		}
		if err := p.Update(pu.store, pu.customer, -1); err != nil {
			log.Fatal(err)
		}
	}

	// A season of trade: 150k purchases, 15% return rate.
	for i := 0; i < 150000; i++ {
		buy()
		if rng.Float64() < 0.15 {
			returnOne()
		}
	}

	queries := []string{
		"east & west & online",
		"(east | west) - online",
		"online - (east | west)",
		"east | west | online",
	}
	fmt.Println("marketing queries over per-store customer streams (after returns):")
	fmt.Printf("\n%-26s %12s %12s %9s\n", "query", "estimate", "exact", "error")
	for _, q := range queries {
		est, err := p.Estimate(q, 0.1)
		if err != nil {
			log.Fatalf("estimate %q: %v", q, err)
		}
		trueCount := exactAnswer(net, q)
		relErr := 0.0
		if trueCount > 0 {
			relErr = (est.Value - float64(trueCount)) / float64(trueCount) * 100
		}
		fmt.Printf("%-26s %12.0f %12d %+8.1f%%\n", q, est.Value, trueCount, relErr)
	}
	fmt.Printf("\nsynopsis memory: %.1f MiB across %d stores\n",
		float64(p.MemoryBytes())/(1<<20), len(stores))
}

// exactAnswer evaluates the four demo queries against the ground truth.
func exactAnswer(net map[string]map[uint64]int64, q string) int {
	in := func(store string, c uint64) bool { return net[store][c] > 0 }
	n := 0
	for c := uint64(0); c < 60000; c++ {
		var ok bool
		switch q {
		case "east & west & online":
			ok = in("east", c) && in("west", c) && in("online", c)
		case "(east | west) - online":
			ok = (in("east", c) || in("west", c)) && !in("online", c)
		case "online - (east | west)":
			ok = in("online", c) && !(in("east", c) || in("west", c))
		case "east | west | online":
			ok = in("east", c) || in("west", c) || in("online", c)
		}
		if ok {
			n++
		}
	}
	return n
}
