// Continuous views (QUERIES.md): a tenant-grouped sliding-window view
// over multi-tenant login traffic, run in-process against a
// coordinator with an injected fake clock so eight simulated minutes
// pass in milliseconds.
//
// The view
//
//	CREATE VIEW uniq AS logins WINDOW 5m SLIDE 1m GROUP BY tenant EMIT ISTREAM
//
// answers "distinct users seen per tenant over the last five minutes",
// advancing minute by minute. Each physical stream "⟨tenant⟩:logins"
// feeds its tenant's group; ISTREAM delivery emits only groups whose
// estimate changed, carrying the signed change in Delta. Watch tenant
// initech: it logs in for two minutes, then goes quiet — five minutes
// later its buckets age out of the window (eviction is a bucket drop,
// exact by sketch linearity) and its estimate slides back to zero.
//
// Run with: go run ./examples/continuousview
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync/atomic"
	"time"

	"setsketch/internal/core"
	"setsketch/internal/cq"
	"setsketch/internal/datagen"
	"setsketch/internal/distributed"
)

// fakeClock is a cq.Options.Now source the demo advances by hand. The
// coordinator reads it from watch and rotation paths, so it is atomic.
type fakeClock struct{ ns atomic.Int64 }

func (c *fakeClock) now() time.Time          { return time.Unix(0, c.ns.Load()) }
func (c *fakeClock) advance(d time.Duration) { c.ns.Add(int64(d)) }

func main() {
	coins := distributed.Coins{Config: core.DefaultConfig(), Seed: 2003, Copies: 256}
	coord, err := distributed.NewCoordinator(coins)
	if err != nil {
		log.Fatal(err)
	}

	clock := &fakeClock{}
	clock.ns.Store(time.Date(2026, 8, 8, 9, 0, 0, 0, time.UTC).UnixNano())
	if err := coord.SetCQOptions(cq.Options{Now: clock.now}); err != nil {
		log.Fatal(err)
	}

	const stmt = "CREATE VIEW uniq AS logins WINDOW 5m SLIDE 1m GROUP BY tenant EMIT ISTREAM"
	spec, err := coord.CreateView(stmt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("registered: %s\n\n", spec.Statement())

	w, err := coord.Watch(distributed.WatchSpec{
		Views:        []string{"uniq"},
		Eps:          0.15,
		EveryUpdates: 1 << 60, // rounds fire only on our explicit ticks
		Buffer:       64,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer w.Close()

	// Three tenants with fixed user pools; each active minute a tenant
	// logs a batch of (repeating) user IDs. Distinct users in the
	// window is what the view estimates. initech stops after minute 1.
	rng := rand.New(rand.NewSource(42))
	login := func(tenant string, pool uint64, users, logins int) {
		ups := make([]datagen.Update, 0, logins)
		for i := 0; i < logins; i++ {
			ups = append(ups, datagen.Update{
				Stream: tenant + ":logins",
				Elem:   pool + uint64(rng.Intn(users)),
				Delta:  1,
			})
		}
		if err := coord.ApplyUpdates("edge", ups); err != nil {
			log.Fatal(err)
		}
	}

	for minute := 0; minute < 8; minute++ {
		login("acme", 0, 2000, 3000)
		login("globex", 100000, 600, 900)
		if minute < 2 {
			login("initech", 200000, 300, 450)
		}

		coord.Tick()
		fmt.Printf("minute %d (%s window ending %s)\n",
			minute, "5m", clock.now().Format("15:04"))
		drain(w.C)

		clock.advance(time.Minute)
		coord.RotateViews() // what -cq-rotate-interval does in a daemon
	}
}

// drain prints this round's ISTREAM results: the watch hub delivers
// one result per changed group, then goes quiet until the next tick.
func drain(c <-chan distributed.WatchResult) {
	for {
		select {
		case res, ok := <-c:
			if !ok {
				log.Fatal("watch closed")
			}
			if res.Err != "" {
				fmt.Printf("  %-8s error: %s\n", res.Group, res.Err)
				continue
			}
			fmt.Printf("  %-8s ≈ %5.0f distinct users  (Δ%+.0f)\n",
				res.Group, res.Est.Value, res.Delta)
		case <-time.After(200 * time.Millisecond):
			fmt.Println()
			return
		}
	}
}
