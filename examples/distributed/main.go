// Distributed collection (paper Fig. 1 and the stored-coins model):
// four edge sites each observe part of three update streams, summarize
// locally into 2-level hash sketches built from shared coins, and ship
// the synopses over TCP to a coordinator, which merges them — by
// sketch linearity, into exactly the synopses a single global observer
// would hold — and answers set-expression queries.
//
// Everything runs in one process over a loopback listener, but the
// site and coordinator halves communicate only through the wire
// protocol, exactly as separate machines would.
//
// Run with: go run ./examples/distributed
package main

import (
	"fmt"
	"log"
	"math/rand"
	"net"
	"sync"

	"setsketch/internal/core"
	"setsketch/internal/distributed"
)

func main() {
	// Shared stored coins: every party derives identical hash functions
	// from these three values.
	coins := distributed.Coins{Config: core.DefaultConfig(), Seed: 2003, Copies: 512}

	// Coordinator.
	coord, err := distributed.NewCoordinator(coins)
	if err != nil {
		log.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := distributed.NewServer(coord)
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(l) }()
	fmt.Printf("coordinator listening on %s\n", l.Addr())

	// Ground truth for the demo.
	var truthMu sync.Mutex
	truth := map[string]map[uint64]bool{"A": {}, "B": {}, "C": {}}

	// Four sites, each seeing a shard of the traffic, pushing over TCP.
	var wg sync.WaitGroup
	for siteID := 0; siteID < 4; siteID++ {
		wg.Add(1)
		go func(siteID int) {
			defer wg.Done()
			name := fmt.Sprintf("edge-%d", siteID)
			site, err := distributed.NewSite(name, coins)
			if err != nil {
				log.Fatal(err)
			}
			rng := rand.New(rand.NewSource(int64(siteID) + 10))
			for i := 0; i < 10000; i++ {
				e := uint64(rng.Int63n(1 << 18))
				// Element placement is a global property (element mod
				// cases), so shards agree on stream membership.
				streams := placement(e)
				for _, s := range streams {
					if err := site.Insert(s, e); err != nil {
						log.Fatal(err)
					}
					truthMu.Lock()
					truth[s][e] = true
					truthMu.Unlock()
				}
			}
			cli, err := distributed.Dial(l.Addr().String())
			if err != nil {
				log.Fatal(err)
			}
			defer cli.Close()
			if err := cli.PushSnapshot(name, site.Snapshot()); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%s: pushed synopses for streams %v\n", name, site.Streams())
		}(siteID)
	}
	wg.Wait()

	// Note: sites inserted overlapping shards (same element possibly at
	// two sites), so merged net frequencies exceed one — harmless, the
	// estimators count distinct elements.
	cli, err := distributed.Dial(l.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer cli.Close()

	fmt.Printf("\n%-16s %12s %12s %9s\n", "query", "estimate", "exact", "error")
	for _, q := range []string{"A | B | C", "A & B", "(A & B) - C", "C - A"} {
		est, err := cli.Query(q, 0.1)
		if err != nil {
			log.Fatalf("query %q: %v", q, err)
		}
		exact := exactAnswer(truth, q)
		relErr := 0.0
		if exact > 0 {
			relErr = (est.Value - float64(exact)) / float64(exact) * 100
		}
		fmt.Printf("%-16s %12.0f %12d %+8.1f%%\n", q, est.Value, exact, relErr)
	}

	srv.Close()
	if err := <-serveDone; err != nil {
		log.Fatal(err)
	}
}

// placement assigns an element to streams by global rule: ~30% in A∩B,
// some in C, etc., so the demo queries have meaningful cardinalities.
func placement(e uint64) []string {
	switch e % 10 {
	case 0, 1, 2:
		return []string{"A", "B"}
	case 3:
		return []string{"A", "B", "C"}
	case 4, 5:
		return []string{"A"}
	case 6, 7:
		return []string{"B"}
	default:
		return []string{"C"}
	}
}

func exactAnswer(truth map[string]map[uint64]bool, q string) int {
	n := 0
	seen := make(map[uint64]bool)
	for _, s := range []string{"A", "B", "C"} {
		for e := range truth[s] {
			if seen[e] {
				continue
			}
			seen[e] = true
			a, b, c := truth["A"][e], truth["B"][e], truth["C"][e]
			var ok bool
			switch q {
			case "A | B | C":
				ok = a || b || c
			case "A & B":
				ok = a && b
			case "(A & B) - C":
				ok = a && b && !c
			case "C - A":
				ok = c && !a
			}
			if ok {
				n++
			}
		}
	}
	return n
}
