// Quickstart: maintain 2-level hash sketch synopses over two update
// streams and estimate union, intersection, and difference
// cardinalities, comparing against exact answers computed on the side.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"setsketch"
)

func main() {
	// A Processor is the stream query-processing engine: it keeps one
	// small synopsis per stream and never stores stream elements.
	p, err := setsketch.NewProcessor(setsketch.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	// Feed two overlapping streams of 20k distinct elements each:
	// the first 10k of A are shared with B, the rest are private.
	rng := rand.New(rand.NewSource(1))
	exactA := make(map[uint64]bool)
	exactB := make(map[uint64]bool)
	for len(exactA) < 20000 {
		e := uint64(rng.Int63n(1 << 40))
		if exactA[e] {
			continue
		}
		exactA[e] = true
		must(p.Insert("A", e))
		if len(exactA) <= 10000 { // first half is shared with B
			exactB[e] = true
			must(p.Insert("B", e))
		}
	}
	for len(exactB) < 20000 {
		e := uint64(rng.Int63n(1 << 40))
		if exactA[e] || exactB[e] {
			continue
		}
		exactB[e] = true
		must(p.Insert("B", e))
	}

	// Deletions are first-class: remove 2000 of the shared elements
	// from B again. The synopsis needs no rescan of past items.
	removed := 0
	for e := range exactA {
		if !exactB[e] || removed >= 2000 {
			continue
		}
		delete(exactB, e)
		must(p.Delete("B", e))
		removed++
	}

	exact := map[string]int{
		"A | B": count(union(exactA, exactB)),
		"A & B": count(intersect(exactA, exactB)),
		"A - B": count(diff(exactA, exactB)),
		"B - A": count(diff(exactB, exactA)),
	}
	fmt.Printf("synopsis footprint: %.1f MiB for %d distinct elements across 2 streams\n\n",
		float64(p.MemoryBytes())/(1<<20), count(union(exactA, exactB)))
	fmt.Printf("%-8s  %10s  %10s  %8s\n", "query", "estimate", "exact", "error")
	for _, q := range []string{"A | B", "A & B", "A - B", "B - A"} {
		est, err := p.Estimate(q, 0.1)
		if err != nil {
			log.Fatalf("estimate %q: %v", q, err)
		}
		relErr := 0.0
		if exact[q] > 0 {
			relErr = (est.Value - float64(exact[q])) / float64(exact[q])
		}
		fmt.Printf("%-8s  %6.0f±%-5.0f  %10d  %+7.1f%%\n", q, est.Value, est.StdError, exact[q], relErr*100)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func count(m map[uint64]bool) int { return len(m) }

func union(a, b map[uint64]bool) map[uint64]bool {
	out := make(map[uint64]bool, len(a)+len(b))
	for e := range a {
		out[e] = true
	}
	for e := range b {
		out[e] = true
	}
	return out
}

func intersect(a, b map[uint64]bool) map[uint64]bool {
	out := make(map[uint64]bool)
	for e := range a {
		if b[e] {
			out[e] = true
		}
	}
	return out
}

func diff(a, b map[uint64]bool) map[uint64]bool {
	out := make(map[uint64]bool)
	for e := range a {
		if !b[e] {
			out[e] = true
		}
	}
	return out
}
