package ingest

import (
	"sync"
	"testing"

	"setsketch/internal/core"
	"setsketch/internal/datagen"
	"setsketch/internal/hashing"
)

var testCfg = core.Config{Buckets: 32, SecondLevel: 8, FirstWise: 4}

// serialFamilies replays updates into plain families — the ground
// truth every sharded configuration must reproduce exactly.
func serialFamilies(t *testing.T, seed uint64, copies int, ups []datagen.Update) map[string]*core.Family {
	t.Helper()
	fams := make(map[string]*core.Family)
	for _, u := range ups {
		f, ok := fams[u.Stream]
		if !ok {
			var err error
			if f, err = core.NewFamily(testCfg, seed, copies); err != nil {
				t.Fatal(err)
			}
			fams[u.Stream] = f
		}
		f.Update(u.Elem, u.Delta)
	}
	return fams
}

func randomUpdates(seed uint64, n int) []datagen.Update {
	rng := hashing.NewRNG(seed)
	streams := []string{"A", "B", "C"}
	ups := make([]datagen.Update, 0, n)
	for i := 0; i < n; i++ {
		delta := int64(1)
		if i%7 == 0 {
			delta = -1
		}
		ups = append(ups, datagen.Update{
			Stream: streams[rng.Uint64n(uint64(len(streams)))],
			Elem:   rng.Uint64n(1 << 16),
			Delta:  delta,
		})
	}
	return ups
}

// TestShardedMatchesSerial: every worker/batch configuration — including
// copy counts not divisible by the worker count and a batch size that
// leaves a partial batch at the barrier — produces bit-identical
// synopses to single-threaded ingestion.
func TestShardedMatchesSerial(t *testing.T) {
	const seed, copies = 5, 13
	ups := randomUpdates(41, 3000)
	want := serialFamilies(t, seed, copies, ups)

	for _, opts := range []Options{
		{Workers: 1, BatchSize: 64},
		{Workers: 3, BatchSize: 7},
		{Workers: 4, BatchSize: 1000}, // partial batch flushed only by barrier
		{Workers: 64, BatchSize: 256}, // workers capped at copies
	} {
		e, err := New(testCfg, seed, copies, opts)
		if err != nil {
			t.Fatal(err)
		}
		if opts.Workers > copies && e.Workers() != copies {
			t.Errorf("workers not capped at copies: %d", e.Workers())
		}
		for _, u := range ups {
			if err := e.Update(u.Stream, u.Elem, u.Delta); err != nil {
				t.Fatal(err)
			}
		}
		got := e.Snapshot()
		if len(got) != len(want) {
			t.Fatalf("opts %+v: %d streams, want %d", opts, len(got), len(want))
		}
		for name, f := range want {
			if !f.Equal(got[name]) {
				t.Errorf("opts %+v: stream %q differs from serial ingest", opts, name)
			}
		}
		if got := e.Accepted(); got != uint64(len(ups)) {
			t.Errorf("accepted %d updates, want %d", got, len(ups))
		}
		if err := e.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestUpdateBatch: batch submission matches per-update submission.
func TestUpdateBatch(t *testing.T) {
	ups := randomUpdates(43, 1500)
	want := serialFamilies(t, 2, 8, ups)
	e, err := New(testCfg, 2, 8, Options{Workers: 2, BatchSize: 100})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if err := e.UpdateBatch(ups); err != nil {
		t.Fatal(err)
	}
	got := e.Snapshot()
	for name, f := range want {
		if !f.Equal(got[name]) {
			t.Errorf("stream %q differs after UpdateBatch", name)
		}
	}
}

// TestFlushLinearity: merging successive flush deltas reconstructs the
// full-stream synopsis exactly, and a flush empties the engine state.
func TestFlushLinearity(t *testing.T) {
	const seed, copies = 9, 10
	ups := randomUpdates(77, 4000)
	want := serialFamilies(t, seed, copies, ups)

	e, err := New(testCfg, seed, copies, Options{Workers: 3, BatchSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	merged := make(map[string]*core.Family)
	chunk := len(ups) / 5
	for i := 0; i < len(ups); i += chunk {
		end := i + chunk
		if end > len(ups) {
			end = len(ups)
		}
		if err := e.UpdateBatch(ups[i:end]); err != nil {
			t.Fatal(err)
		}
		for name, delta := range e.Flush() {
			if cur, ok := merged[name]; ok {
				if err := cur.Merge(delta); err != nil {
					t.Fatal(err)
				}
			} else {
				merged[name] = delta
			}
		}
	}
	for name, f := range want {
		if !f.Equal(merged[name]) {
			t.Errorf("merged flush deltas for %q differ from full-stream synopsis", name)
		}
	}
	// After the final flush the engine's synopses are empty.
	empty, _ := core.NewFamily(testCfg, seed, copies)
	for name, f := range e.Snapshot() {
		if !f.Equal(empty) {
			t.Errorf("stream %q not reset by Flush", name)
		}
	}
}

// TestMergeSharded: delta merges interleaved with updates land exactly
// like a serial merge would.
func TestMergeSharded(t *testing.T) {
	const seed, copies = 3, 11
	ups := randomUpdates(55, 1000)
	delta, _ := core.NewFamily(testCfg, seed, copies)
	rng := hashing.NewRNG(4)
	for i := 0; i < 800; i++ {
		delta.Insert(rng.Uint64n(1 << 16))
	}
	want := serialFamilies(t, seed, copies, ups)
	if err := want["A"].Merge(delta); err != nil {
		t.Fatal(err)
	}

	e, err := New(testCfg, seed, copies, Options{Workers: 4, BatchSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if err := e.UpdateBatch(ups[:500]); err != nil {
		t.Fatal(err)
	}
	if err := e.Merge("A", delta); err != nil {
		t.Fatal(err)
	}
	if err := e.UpdateBatch(ups[500:]); err != nil {
		t.Fatal(err)
	}
	got := e.Snapshot()
	for name, f := range want {
		if !f.Equal(got[name]) {
			t.Errorf("stream %q differs after sharded merge", name)
		}
	}
	if err := e.Err(); err != nil {
		t.Fatal(err)
	}

	// Misaligned deltas are rejected at submit time.
	wrong, _ := core.NewFamily(testCfg, seed+1, copies)
	if err := e.Merge("A", wrong); err != core.ErrNotAligned {
		t.Errorf("misaligned merge: err = %v, want ErrNotAligned", err)
	}
	if err := e.Merge("A", nil); err == nil {
		t.Error("nil delta accepted")
	}
}

// TestConcurrentProducers: many goroutines submitting concurrently must
// neither race (run with -race) nor lose updates.
func TestConcurrentProducers(t *testing.T) {
	const seed, copies, producers, perProducer = 6, 8, 8, 500
	e, err := New(testCfg, seed, copies, Options{Workers: 3, BatchSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			rng := hashing.NewRNG(uint64(p) + 1000)
			for i := 0; i < perProducer; i++ {
				if err := e.Update("S", rng.Uint64n(1<<20), 1); err != nil {
					t.Error(err)
					return
				}
			}
		}(p)
	}
	wg.Wait()
	if got := e.Accepted(); got != producers*perProducer {
		t.Errorf("accepted %d, want %d", got, producers*perProducer)
	}
	// All counters must account for exactly the accepted inserts.
	var total int64
	e.View(func(fams map[string]*core.Family) {
		f := fams["S"]
		for b := 0; b < testCfg.Buckets; b++ {
			total += f.Copy(0).BucketTotal(b)
		}
	})
	if total != producers*perProducer {
		t.Errorf("copy 0 holds %d net insertions, want %d", total, producers*perProducer)
	}
}

// TestClosedEngine: submissions after Close fail cleanly; Close is
// idempotent; reads still serve the final state.
func TestClosedEngine(t *testing.T) {
	e, err := New(testCfg, 1, 4, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Update("A", 42, 1); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal("second Close errored:", err)
	}
	if err := e.Update("A", 7, 1); err == nil {
		t.Error("Update accepted after Close")
	}
	if err := e.UpdateBatch(randomUpdates(1, 3)); err == nil {
		t.Error("UpdateBatch accepted after Close")
	}
	delta, _ := core.NewFamily(testCfg, 1, 4)
	if err := e.Merge("A", delta); err == nil {
		t.Error("Merge accepted after Close")
	}
	snap := e.Snapshot()
	if snap["A"] == nil {
		t.Error("Snapshot lost state after Close")
	}
	if got := e.Streams(); len(got) != 1 || got[0] != "A" {
		t.Errorf("Streams after Close = %v", got)
	}
}

func TestNewRejectsBadParameters(t *testing.T) {
	if _, err := New(core.Config{}, 1, 4, Options{}); err == nil {
		t.Error("invalid config accepted")
	}
	if _, err := New(testCfg, 1, 0, Options{}); err == nil {
		t.Error("zero copies accepted")
	}
}

// TestDigestPathMatchesDirect: the same workload through the digest
// cache + coalescing path and through the raw per-worker hashing path
// (DigestCache < 0) must produce bit-identical synopses, with a
// deliberately tiny cache forcing evictions along the way.
func TestDigestPathMatchesDirect(t *testing.T) {
	const seed, copies = 17, 13
	ups := randomUpdates(23, 5000)
	want := serialFamilies(t, seed, copies, ups)

	for _, opts := range []Options{
		{Workers: 3, BatchSize: 32, DigestCache: -1},  // digest path off
		{Workers: 3, BatchSize: 32, DigestCache: 16},  // thrashing cache
		{Workers: 3, BatchSize: 500, DigestCache: 0},  // default cache
		{Workers: 1, BatchSize: 1, DigestCache: 1024}, // degenerate batches
	} {
		e, err := New(testCfg, seed, copies, opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.UpdateBatch(ups); err != nil {
			t.Fatal(err)
		}
		got := e.Snapshot()
		for name, f := range want {
			if !f.Equal(got[name]) {
				t.Errorf("opts %+v: stream %q differs from serial ingest", opts, name)
			}
		}
		if err := e.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCoalescing: a batch made of repeats of one element must reach the
// sketches as a single net update, and exact insert/delete cancellation
// must be dropped without touching a counter.
func TestCoalescing(t *testing.T) {
	const seed, copies = 4, 6
	e, err := New(testCfg, seed, copies, Options{Workers: 2, BatchSize: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	// 500 inserts and 500 deletes of element 1: net zero, fully folded.
	// 300 inserts of element 2: net +300 in one replay.
	for i := 0; i < 500; i++ {
		if err := e.Update("A", 1, 1); err != nil {
			t.Fatal(err)
		}
		if err := e.Update("A", 1, -1); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 300; i++ {
		if err := e.Update("A", 2, 1); err != nil {
			t.Fatal(err)
		}
	}
	got := e.Snapshot()["A"]
	want, _ := core.NewFamily(testCfg, seed, copies)
	want.Update(2, 300)
	if !want.Equal(got) {
		t.Fatal("coalesced batch differs from net-effect family")
	}
}

// TestDigestCacheDisabledForUnpackableShape: shapes with s > 58 must
// quietly fall back to the hashing path.
func TestDigestCacheDisabledForUnpackableShape(t *testing.T) {
	wide := core.Config{Buckets: 32, SecondLevel: 64, FirstWise: 4}
	ups := randomUpdates(3, 400)
	e, err := New(wide, 2, 4, Options{Workers: 2, BatchSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if e.cache != nil {
		t.Fatal("digest cache built for an unpackable shape")
	}
	if err := e.UpdateBatch(ups); err != nil {
		t.Fatal(err)
	}
	got := e.Snapshot()
	fams := make(map[string]*core.Family)
	for _, u := range ups {
		f, ok := fams[u.Stream]
		if !ok {
			f, _ = core.NewFamily(wide, 2, 4)
			fams[u.Stream] = f
		}
		f.Update(u.Elem, u.Delta)
	}
	for name, f := range fams {
		if !f.Equal(got[name]) {
			t.Errorf("stream %q differs on the fallback path", name)
		}
	}
}
