package ingest

import (
	"setsketch/internal/core"
	"setsketch/internal/hashing"
	"setsketch/internal/obs"
)

// The digest-based update kernel. Sketch hashes are a pure function of
// (stored coins, element), so the full per-element hash bill — r
// first-level polynomial evaluations plus r·s second-level bits — can
// be computed once, packed into one word per copy (core.Digest), cached
// across the stream, and replayed as s+1 branchless counter additions
// per copy. On the skewed streams the paper evaluates (§5, Zipfian
// multiplicities), the handful of heavy hitters dominating the update
// volume hit the cache almost always, so the amortized per-update cost
// drops from ~r·(t−1+s) field multiplications to r·(s+1) plain adds.
//
// The cache is direct-mapped over a power-of-two slot array, keyed by a
// seed-derived mix of the element so adversarial element sets cannot be
// aimed at one slot. It is only touched by the producer side under the
// engine mutex; the worker goroutines never see it. Entries are
// immutable once built: an eviction installs a freshly allocated digest
// and abandons the old one to the garbage collector, so digests already
// riding in queued work items stay valid without copying or locking.

// digestCache maps elements to their packed family digests.
type digestCache struct {
	mask  uint64
	mix   uint64 // seed-derived slot-hash key
	elems []uint64
	digs  []core.Digest // nil = empty slot; len(dig) = family copies

	hits      *obs.Counter
	misses    *obs.Counter
	evictions *obs.Counter
}

// newDigestCache builds a cache with size slots (a power of two).
func newDigestCache(size int, seed uint64, m metrics) *digestCache {
	return &digestCache{
		mask:      uint64(size - 1),
		mix:       hashing.DeriveSeed(seed, 0xd16e57),
		elems:     make([]uint64, size),
		digs:      make([]core.Digest, size),
		hits:      m.cacheHits,
		misses:    m.cacheMisses,
		evictions: m.cacheEvictions,
	}
}

// slot picks the element's home slot with a splitmix64-style finalizer
// over the seed-keyed element.
func (c *digestCache) slot(e uint64) uint64 {
	z := e ^ c.mix
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return (z ^ (z >> 31)) & c.mask
}

// digest returns e's packed digest, computing and caching it on a miss.
// fam may be any family built from the engine's coins — digests are a
// property of the coins, not of one stream's counters. The returned
// digest is immutable; callers may hand it to worker goroutines as-is.
func (c *digestCache) digest(fam *core.Family, e uint64) core.Digest {
	s := c.slot(e)
	if d := c.digs[s]; d != nil && c.elems[s] == e {
		c.hits.Inc()
		return d
	}
	if c.digs[s] != nil {
		c.evictions.Inc()
	}
	c.misses.Inc()
	d := fam.Digest(e)
	c.elems[s] = e
	c.digs[s] = d
	return d
}

// digestEntry is one coalesced, digest-resolved update ready for the
// workers to replay onto their copy shards.
type digestEntry struct {
	fam   *core.Family
	dig   core.Digest
	delta int64
}

// coalKey identifies an update target within one batch.
type coalKey struct {
	fam  *core.Family
	elem uint64
}

// coalesceLocked folds a batch down to one net update per (stream,
// element), drops entries whose deltas cancel exactly (linearity: a
// net-zero update is a no-op on every counter), and resolves each
// survivor to its digest through the cache. A Zipf-skewed batch with
// many repeats of the hot elements pays one digest lookup and one
// replay per distinct element instead of one per stream item.
// caller holds: mu
func (e *Engine) coalesceLocked(batch []entry) []digestEntry {
	idx := make(map[coalKey]int, len(batch))
	out := make([]digestEntry, 0, len(batch))
	keys := make([]coalKey, 0, len(batch))
	for _, en := range batch {
		k := coalKey{en.fam, en.elem}
		if i, ok := idx[k]; ok {
			out[i].delta += en.delta
			continue
		}
		idx[k] = len(out)
		keys = append(keys, k)
		out = append(out, digestEntry{fam: en.fam, delta: en.delta})
	}
	kept := out[:0]
	for i := range out {
		if out[i].delta == 0 {
			continue
		}
		out[i].dig = e.cache.digest(out[i].fam, keys[i].elem)
		kept = append(kept, out[i])
	}
	e.met.coalesced.Add(uint64(len(batch) - len(kept)))
	return kept
}
