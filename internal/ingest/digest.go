package ingest

import (
	"setsketch/internal/core"
	"setsketch/internal/hashing"
	"setsketch/internal/obs"
)

// The digest-based update kernel. Sketch hashes are a pure function of
// (stored coins, element), so the full per-element hash bill — r
// first-level polynomial evaluations plus r·s second-level bits — can
// be computed once, packed into one word per copy (core.Digest), cached
// across the stream, and replayed as s+1 branchless counter additions
// per copy. On the skewed streams the paper evaluates (§5, Zipfian
// multiplicities), the handful of heavy hitters dominating the update
// volume hit the cache almost always, so the amortized per-update cost
// drops from ~r·(t−1+s) field multiplications to r·(s+1) plain adds.
//
// The cache is direct-mapped over a power-of-two slot array, keyed by a
// seed-derived mix of the element so adversarial element sets cannot be
// aimed at one slot. It carries no lock of its own: the ingest engine
// touches it only on the producer side under the engine mutex, and the
// distributed coordinator shares one across sessions under its dmu.
// Entries are immutable once built: an eviction installs a freshly
// allocated digest and abandons the old one to the garbage collector,
// so digests already riding in queued work items stay valid without
// copying or locking.

// DigestCache maps elements to their packed family digests. It is
// exported for the distributed coordinator's raw-update path, which
// fronts its per-session digest scratch with one shared cache;
// synchronization is the caller's job.
type DigestCache struct {
	mask  uint64
	mix   uint64 // seed-derived slot-hash key
	elems []uint64
	digs  []core.Digest // nil = empty slot; len(dig) = family copies

	hits      *obs.Counter
	misses    *obs.Counter
	evictions *obs.Counter
}

// NewDigestCache builds a cache with at least size slots (rounded up to
// a power of two so slot selection is a mask), keyed by the family
// seed. The three counters record lookups served, lookups missed, and
// slots overwritten; they must be non-nil (obs instruments work
// uncollected when no registry is attached).
func NewDigestCache(size int, seed uint64, hits, misses, evictions *obs.Counter) *DigestCache {
	n := 1
	for n < size {
		n <<= 1
	}
	return &DigestCache{
		mask:      uint64(n - 1),
		mix:       hashing.DeriveSeed(seed, 0xd16e57),
		elems:     make([]uint64, n),
		digs:      make([]core.Digest, n),
		hits:      hits,
		misses:    misses,
		evictions: evictions,
	}
}

// slot picks the element's home slot with a splitmix64-style finalizer
// over the seed-keyed element.
func (c *DigestCache) slot(e uint64) uint64 {
	z := e ^ c.mix
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return (z ^ (z >> 31)) & c.mask
}

// Lookup returns e's cached digest, if present. The returned digest is
// immutable; callers may hand it to other goroutines as-is.
func (c *DigestCache) Lookup(e uint64) (core.Digest, bool) {
	s := c.slot(e)
	if d := c.digs[s]; d != nil && c.elems[s] == e {
		c.hits.Inc()
		return d, true
	}
	c.misses.Inc()
	return nil, false
}

// Contains reports whether e's digest is currently cached, without
// touching the hit/miss counters — a diagnostics and test helper for
// reasoning about direct-mapped collisions.
func (c *DigestCache) Contains(e uint64) bool {
	s := c.slot(e)
	return c.digs[s] != nil && c.elems[s] == e
}

// Install stores a freshly computed digest in e's slot, evicting
// whatever lived there. d must never be mutated after Install.
func (c *DigestCache) Install(e uint64, d core.Digest) {
	s := c.slot(e)
	if c.digs[s] != nil {
		c.evictions.Inc()
	}
	c.elems[s] = e
	c.digs[s] = d
}

// digestGroup is one family's worth of coalesced, digest-resolved
// updates, shaped for the workers' copy-major batch replay
// (core.Family.UpdateRangeBatchDigest).
type digestGroup struct {
	fam    *core.Family
	digs   []core.Digest
	deltas []int64
}

// coalKey identifies an update target within one batch.
type coalKey struct {
	fam  *core.Family
	elem uint64
}

// coalesceLocked folds a batch down to one net update per (stream,
// element), drops entries whose deltas cancel exactly (linearity: a
// net-zero update is a no-op on every counter), resolves each survivor
// to its digest, and groups the survivors per family for copy-major
// replay. Cache misses are resolved together through one
// core.Family.DigestBatch call — digests are a property of the coins,
// not of one stream's counters, so a single batched pass covers misses
// from every family in the batch and pays the hash-constant memory
// traffic once instead of once per element.
// caller holds: mu
func (e *Engine) coalesceLocked(batch []entry) []digestGroup {
	idx := make(map[coalKey]int, len(batch))
	keys := make([]coalKey, 0, len(batch))
	deltas := make([]int64, 0, len(batch))
	for _, en := range batch {
		k := coalKey{en.fam, en.elem}
		if i, ok := idx[k]; ok {
			deltas[i] += en.delta
			continue
		}
		idx[k] = len(keys)
		keys = append(keys, k)
		deltas = append(deltas, en.delta)
	}
	digs := make([]core.Digest, len(keys))
	var missElems []uint64
	var missIdx []int
	kept := 0
	for i := range keys {
		if deltas[i] == 0 {
			continue
		}
		kept++
		if d, ok := e.cache.Lookup(keys[i].elem); ok {
			digs[i] = d
			continue
		}
		missElems = append(missElems, keys[i].elem)
		missIdx = append(missIdx, i)
	}
	if len(missElems) > 0 {
		md := keys[missIdx[0]].fam.DigestBatch(missElems)
		for j, i := range missIdx {
			digs[i] = md[j]
			e.cache.Install(keys[i].elem, md[j])
		}
	}
	e.met.coalesced.Add(uint64(len(batch) - kept))
	var groups []digestGroup
	gidx := make(map[*core.Family]int, 4)
	for i := range keys {
		if deltas[i] == 0 {
			continue
		}
		gi, ok := gidx[keys[i].fam]
		if !ok {
			gi = len(groups)
			gidx[keys[i].fam] = gi
			groups = append(groups, digestGroup{fam: keys[i].fam})
		}
		groups[gi].digs = append(groups[gi].digs, digs[i])
		groups[gi].deltas = append(groups[gi].deltas, deltas[i])
	}
	return groups
}
