// Package ingest implements the high-throughput streaming ingestion
// engine: a pool of worker goroutines that shard the r sketch copies of
// every stream's synopsis family across disjoint copy ranges.
//
// The paper's synopsis is r independent 2-level hash sketches per
// stream, and an update ⟨i, e, ±v⟩ costs r·(s+1) counter additions —
// by far the dominant cost of ingest. Because the copies are
// independent and counter updates are commutative additions, copy
// ranges owned by different workers touch disjoint storage: the hot
// path needs no locks at all. The engine fans each batch of accepted
// updates out to every worker; worker w applies the whole batch to its
// own [lo_w, hi_w) copy shard via core.Family.UpdateRange. Synopsis
// deltas (from other sites, merged by linearity) shard the same way
// through core.Family.MergeRange, so merges and updates interleave
// freely without quiescing the pipeline.
//
// A Drain barrier (a sentinel work item carrying a WaitGroup, enqueued
// behind all outstanding batches on every worker's FIFO queue) gives
// the quiesced points at which Snapshot, Flush, and View read the
// synopses consistently.
package ingest

import (
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"time"

	"setsketch/internal/core"
	"setsketch/internal/datagen"
	"setsketch/internal/obs"
)

// Options tunes the engine. The zero value selects sane defaults.
type Options struct {
	// Workers is the number of shard workers. Defaults to GOMAXPROCS,
	// and is capped at the number of sketch copies (a worker with an
	// empty copy range would be useless).
	Workers int
	// BatchSize is how many accepted updates are buffered before being
	// fanned out to the workers. Defaults to 256.
	BatchSize int
	// QueueLen is the per-worker queue depth in batches; submitting
	// blocks (backpressure) when a worker falls this far behind.
	// Defaults to 8.
	QueueLen int
	// DigestCache is the capacity, in distinct elements, of the
	// per-engine digest cache (rounded up to a power of two). Because
	// every family in the engine is built from the same stored coins,
	// one cache serves all streams. 0 selects the default (8192
	// entries ≈ copies·8 bytes each); negative disables the digest
	// path entirely, hashing every update in the workers as before.
	// The digest path also disables itself when the configuration is
	// not DigestPackable (SecondLevel > 58).
	DigestCache int
	// Obs registers the engine's metrics (see OPERATIONS.md, "ingest_*")
	// on this registry. nil disables export; the engine still counts
	// internally at one atomic add per event.
	Obs *obs.Registry
	// Log receives engine lifecycle and error records. nil discards.
	Log *obs.Logger
}

func (o Options) withDefaults(copies int) Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Workers > copies {
		o.Workers = copies
	}
	if o.BatchSize <= 0 {
		o.BatchSize = 256
	}
	if o.QueueLen <= 0 {
		o.QueueLen = 8
	}
	if o.DigestCache == 0 {
		o.DigestCache = 8192
	}
	if o.DigestCache > 0 {
		// Round up to a power of two so slot selection is a mask.
		n := 1
		for n < o.DigestCache {
			n <<= 1
		}
		o.DigestCache = n
	}
	return o
}

// entry is one accepted update with its stream's family pre-resolved,
// so workers never touch the stream map.
type entry struct {
	fam   *core.Family
	elem  uint64
	delta int64
}

// workItem is one unit handed to every worker: an update batch (raw
// entries when the digest path is off, coalesced digest entries when it
// is on), an optional delta merge, and/or a barrier to arm.
type workItem struct {
	entries []entry
	groups  []digestGroup
	target  *core.Family // merge target (nil if no merge)
	delta   *core.Family // aligned delta to add into target
	barrier *sync.WaitGroup
}

type worker struct {
	lo, hi int
	ch     chan workItem

	batches *obs.Counter // work items carrying entries, applied by this worker
	applied *obs.Counter // updates applied to this worker's copy shard
}

func (w *worker) run(wg *sync.WaitGroup, fail func(error)) {
	defer wg.Done()
	for it := range w.ch {
		if len(it.entries) > 0 {
			for _, en := range it.entries {
				en.fam.UpdateRange(w.lo, w.hi, en.elem, en.delta)
			}
			w.batches.Inc()
			w.applied.Add(uint64(len(it.entries)))
		}
		if len(it.groups) > 0 {
			// Digest replay: s+1 additions per copy in [lo, hi), no
			// hashing — the digests were resolved by the producer. Each
			// group replays copy-major so a copy's counter slab streams
			// through cache once per batch, not once per element.
			n := 0
			for _, g := range it.groups {
				g.fam.UpdateRangeBatchDigest(w.lo, w.hi, g.digs, g.deltas)
				n += len(g.digs)
			}
			w.batches.Inc()
			w.applied.Add(uint64(n))
		}
		if it.delta != nil {
			// Alignment was validated at submit time; a failure here
			// means corruption, surfaced on the next Err call.
			if err := it.target.MergeRange(w.lo, w.hi, it.delta); err != nil {
				fail(err)
			}
		}
		if it.barrier != nil {
			it.barrier.Done()
		}
	}
}

// metrics is the engine's instrument set; every field works (and
// counts) even when no registry is attached, per obs's nil-Registry
// contract.
type metrics struct {
	accepted     *obs.Counter
	batches      *obs.Counter
	merges       *obs.Counter
	flushes      *obs.Counter
	drains       *obs.Counter
	workerErrors *obs.Counter
	drainSeconds *obs.Histogram

	coalesced      *obs.Counter
	cacheHits      *obs.Counter
	cacheMisses    *obs.Counter
	cacheEvictions *obs.Counter
}

func newMetrics(reg *obs.Registry) metrics {
	return metrics{
		coalesced: reg.Counter("ingest_coalesced_updates_total",
			"Updates eliminated by per-batch coalescing (repeated or net-zero elements folded before sketch work)."),
		cacheHits: reg.Counter("ingest_digest_cache_hits_total",
			"Element-digest cache hits: updates whose full hash bill was skipped."),
		cacheMisses: reg.Counter("ingest_digest_cache_misses_total",
			"Element-digest cache misses: digests computed from scratch."),
		cacheEvictions: reg.Counter("ingest_digest_cache_evictions_total",
			"Digest cache slot evictions (working set exceeding the cache, or slot collisions)."),
		accepted: reg.Counter("ingest_updates_accepted_total",
			"Stream updates accepted by the ingest engine."),
		batches: reg.Counter("ingest_batches_total",
			"Update batches broadcast to the shard workers."),
		merges: reg.Counter("ingest_merges_total",
			"Synopsis deltas merged into the engine by linearity."),
		flushes: reg.Counter("ingest_flushes_total",
			"Flush operations (drain + snapshot + reset)."),
		drains: reg.Counter("ingest_drains_total",
			"Quiescence barriers executed (Drain/Flush/Snapshot/View/Close)."),
		workerErrors: reg.Counter("ingest_worker_errors_total",
			"Asynchronous shard-worker failures (corrupted merges)."),
		drainSeconds: reg.Histogram("ingest_drain_seconds",
			"Latency of the quiescence barrier: flushing pending work and waiting for every worker.", nil),
	}
}

// Engine is the sharded ingestion pipeline for one site's synopses. It
// owns one family per observed stream and is safe for concurrent use;
// submissions from multiple goroutines serialize on a short critical
// section that only appends to the pending batch.
type Engine struct {
	cfg    core.Config
	seed   uint64
	copies int
	opts   Options

	workers []*worker
	wg      sync.WaitGroup
	met     metrics
	log     *obs.Logger

	// cache is the seed-keyed element-digest cache; nil when the digest
	// path is disabled (Options.DigestCache < 0 or an unpackable shape).
	// Only the producer side touches it.
	// guarded by: mu
	cache *DigestCache

	mu sync.Mutex
	// guarded by: mu
	fams map[string]*core.Family
	// guarded by: mu
	pending []entry
	// guarded by: mu
	accepted, merged uint64
	// guarded by: mu
	closed bool

	errOnce sync.Once
	errMu   sync.Mutex
	// guarded by: errMu
	err error
}

// New starts an engine whose synopses are built from the given stored
// coins (configuration, master seed, copy count).
func New(cfg core.Config, seed uint64, copies int, opts Options) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if copies < 1 {
		return nil, fmt.Errorf("ingest: need at least 1 copy, got %d", copies)
	}
	opts = opts.withDefaults(copies)
	e := &Engine{
		cfg:    cfg,
		seed:   seed,
		copies: copies,
		opts:   opts,
		met:    newMetrics(opts.Obs),
		log:    opts.Log.Named("ingest"),
		fams:   make(map[string]*core.Family),
	}
	if opts.DigestCache > 0 && cfg.DigestPackable() {
		e.cache = NewDigestCache(opts.DigestCache, seed,
			e.met.cacheHits, e.met.cacheMisses, e.met.cacheEvictions)
	}
	for i := 0; i < opts.Workers; i++ {
		w := &worker{
			lo: i * copies / opts.Workers,
			hi: (i + 1) * copies / opts.Workers,
			ch: make(chan workItem, opts.QueueLen),
			batches: opts.Obs.Counter(obs.Label("ingest_worker_batches_total", "worker", strconv.Itoa(i)),
				"Update batches applied, per shard worker."),
			applied: opts.Obs.Counter(obs.Label("ingest_worker_updates_total", "worker", strconv.Itoa(i)),
				"Updates applied to the worker's copy shard."),
		}
		e.workers = append(e.workers, w)
		e.wg.Add(1)
		go w.run(&e.wg, e.fail)
	}
	// Instantaneous views are sampled at export time; the newest engine
	// on a registry owns these series (GaugeFunc overwrites).
	opts.Obs.GaugeFunc("ingest_queue_depth_batches",
		"Work items queued across all shard workers (backpressure indicator).",
		func() float64 {
			depth := 0
			for _, w := range e.workers {
				depth += len(w.ch)
			}
			return float64(depth)
		})
	opts.Obs.GaugeFunc("ingest_streams",
		"Distinct streams with live synopses in the engine.",
		func() float64 {
			e.mu.Lock()
			defer e.mu.Unlock()
			return float64(len(e.fams))
		})
	cacheSlots := 0
	if e.cache != nil {
		cacheSlots = int(e.cache.mask) + 1
	}
	e.log.Debug("engine started", "workers", opts.Workers, "copies", copies,
		"batch_size", opts.BatchSize, "queue_len", opts.QueueLen, "digest_cache", cacheSlots)
	return e, nil
}

func (e *Engine) fail(err error) {
	e.met.workerErrors.Inc()
	e.log.Error("shard worker failed", "err", err)
	e.errOnce.Do(func() {
		e.errMu.Lock()
		e.err = err
		e.errMu.Unlock()
	})
}

// Err returns the first asynchronous worker error, if any.
func (e *Engine) Err() error {
	e.errMu.Lock()
	defer e.errMu.Unlock()
	return e.err
}

// Workers returns the number of shard workers.
func (e *Engine) Workers() int { return len(e.workers) }

// resolveLocked returns the family for a stream, creating it on first
// touch.
// caller holds: mu
func (e *Engine) resolveLocked(stream string) (*core.Family, error) {
	f, ok := e.fams[stream]
	if !ok {
		var err error
		if f, err = core.NewFamily(e.cfg, e.seed, e.copies); err != nil {
			return nil, err
		}
		e.fams[stream] = f
	}
	return f, nil
}

// broadcastLocked hands one work item to every worker. Caller holds
// e.mu; the send blocks when a worker's queue is full, which is the
// backpressure that keeps an over-fast producer from buffering
// unbounded work.
func (e *Engine) broadcastLocked(it workItem) {
	for _, w := range e.workers {
		w.ch <- it
	}
}

// flushPendingLocked ships the buffered partial batch, if any. With the
// digest path on, the batch is first coalesced to net per-element
// deltas and resolved to cached digests, so the workers replay pure
// counter additions.
// caller holds: mu
func (e *Engine) flushPendingLocked() {
	if len(e.pending) == 0 {
		return
	}
	batch := e.pending
	e.pending = make([]entry, 0, e.opts.BatchSize)
	if e.cache != nil {
		if groups := e.coalesceLocked(batch); len(groups) > 0 {
			e.broadcastLocked(workItem{groups: groups})
		}
	} else {
		e.broadcastLocked(workItem{entries: batch})
	}
	e.met.batches.Inc()
}

// Update accepts the stream update ⟨stream, e, ±v⟩. The update is
// buffered and fanned out to the shard workers once a full batch has
// accumulated (or at the next Drain/Flush/Snapshot barrier).
func (e *Engine) Update(stream string, elem uint64, delta int64) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return fmt.Errorf("ingest: engine is closed")
	}
	f, err := e.resolveLocked(stream)
	if err != nil {
		return err
	}
	e.pending = append(e.pending, entry{fam: f, elem: elem, delta: delta})
	e.accepted++
	e.met.accepted.Inc()
	if len(e.pending) >= e.opts.BatchSize {
		e.flushPendingLocked()
	}
	return nil
}

// UpdateBatch accepts a slice of updates in one critical section.
func (e *Engine) UpdateBatch(ups []datagen.Update) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return fmt.Errorf("ingest: engine is closed")
	}
	for _, u := range ups {
		f, err := e.resolveLocked(u.Stream)
		if err != nil {
			return err
		}
		e.pending = append(e.pending, entry{fam: f, elem: u.Elem, delta: u.Delta})
		e.accepted++
		e.met.accepted.Inc()
		if len(e.pending) >= e.opts.BatchSize {
			e.flushPendingLocked()
		}
	}
	return nil
}

// Merge adds an aligned synopsis delta for a stream into the engine's
// state by linearity, sharded across the workers exactly like updates:
// worker w merges copy range [lo_w, hi_w). The delta must have been
// built from the engine's coins.
func (e *Engine) Merge(stream string, delta *core.Family) error {
	if delta == nil {
		return fmt.Errorf("ingest: nil delta for stream %q", stream)
	}
	if delta.Config() != e.cfg || delta.Seed() != e.seed || delta.Copies() != e.copies {
		return core.ErrNotAligned
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return fmt.Errorf("ingest: engine is closed")
	}
	target, err := e.resolveLocked(stream)
	if err != nil {
		return err
	}
	// Ship the pending batch first so the merge lands in FIFO order
	// behind updates already accepted; then clone the delta so the
	// caller may reuse or mutate theirs.
	e.flushPendingLocked()
	e.broadcastLocked(workItem{target: target, delta: delta.Clone()})
	e.merged++
	e.met.merges.Inc()
	return nil
}

// drainLocked flushes the pending batch and waits until every worker
// has processed everything queued before it. Caller holds e.mu, which
// also blocks new submissions, so on return the synopses are quiescent
// and consistent. Worker queues are FIFO, so arming the barrier behind
// the flush is sufficient.
func (e *Engine) drainLocked() {
	start := time.Now()
	e.flushPendingLocked()
	var barrier sync.WaitGroup
	barrier.Add(len(e.workers))
	e.broadcastLocked(workItem{barrier: &barrier})
	barrier.Wait()
	e.met.drains.Inc()
	e.met.drainSeconds.ObserveSince(start)
}

// Drain blocks until every accepted update has been applied to all
// sketch copies.
func (e *Engine) Drain() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return
	}
	e.drainLocked()
}

// Snapshot drains the pipeline and returns deep copies of all synopses.
func (e *Engine) Snapshot() map[string]*core.Family {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.closed {
		e.drainLocked()
	}
	out := make(map[string]*core.Family, len(e.fams))
	for name, f := range e.fams {
		out[name] = f.Clone()
	}
	return out
}

// Flush drains the pipeline, then atomically snapshots all synopses
// and resets them to empty — the periodic-shipping primitive: by
// linearity, the coordinator's additive merge of successive flush
// deltas reconstructs exactly the synopsis of the full local stream.
func (e *Engine) Flush() map[string]*core.Family {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.closed {
		e.drainLocked()
	}
	out := make(map[string]*core.Family, len(e.fams))
	for name, f := range e.fams {
		out[name] = f.Clone()
		f.Reset()
	}
	e.met.flushes.Inc()
	e.log.Debug("flushed", "streams", len(out))
	return out
}

// View drains the pipeline and calls fn with the live synopsis map
// while the engine is quiescent (submissions blocked, workers idle).
// fn must not retain the map or the families past its return.
func (e *Engine) View(fn func(map[string]*core.Family)) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.closed {
		e.drainLocked()
	}
	fn(e.fams)
}

// Streams returns the names of the streams the engine has observed.
func (e *Engine) Streams() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]string, 0, len(e.fams))
	for name := range e.fams {
		out = append(out, name)
	}
	return out
}

// Accepted returns how many updates the engine has accepted.
func (e *Engine) Accepted() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.accepted
}

// Close drains outstanding work and stops the workers. Further
// submissions fail; Snapshot and Streams keep working on the final
// state. Close is idempotent.
func (e *Engine) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return e.Err()
	}
	e.drainLocked()
	e.closed = true
	for _, w := range e.workers {
		close(w.ch)
	}
	e.mu.Unlock()
	e.wg.Wait()
	return e.Err()
}
