package ingest

import (
	"strings"
	"testing"

	"setsketch/internal/obs"
)

// TestEngineMetrics: the engine's instruments track the flush/drain
// life cycle — accepted updates, batches fanned out, flushes, drains —
// and are readable both as raw instruments (get-or-create returns the
// live counter) and through the Prometheus exporter.
func TestEngineMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	e, err := New(testCfg, 3, 16, Options{Workers: 2, BatchSize: 8, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	const n = 100
	for i := 0; i < n; i++ {
		if err := e.Update("A", uint64(i), 1); err != nil {
			t.Fatal(err)
		}
	}
	deltas := e.Flush()
	if len(deltas) == 0 {
		t.Fatal("flush returned no deltas")
	}
	e.Drain()

	counter := func(name string) uint64 { return reg.Counter(name, "").Value() }
	if got := counter("ingest_updates_accepted_total"); got != n {
		t.Errorf("accepted counter = %d, want %d", got, n)
	}
	// 100 updates at BatchSize 8 force at least 12 full-batch flushes;
	// Flush and Drain add their own pending flushes.
	if got := counter("ingest_batches_total"); got < n/8 {
		t.Errorf("batches counter = %d, want >= %d", got, n/8)
	}
	if got := counter("ingest_flushes_total"); got != 1 {
		t.Errorf("flushes counter = %d, want 1", got)
	}
	// Flush drains internally; the explicit Drain makes at least two.
	if got := counter("ingest_drains_total"); got < 2 {
		t.Errorf("drains counter = %d, want >= 2", got)
	}
	if got := counter("ingest_worker_errors_total"); got != 0 {
		t.Errorf("worker errors counter = %d, want 0", got)
	}
	if got := reg.Histogram("ingest_drain_seconds", "", nil).Count(); got < 2 {
		t.Errorf("drain latency observations = %d, want >= 2", got)
	}

	// Per-worker batch counters must sum to batches × workers (every
	// batch is broadcast to all workers) and applied updates to n.
	var workerBatches, workerUpdates uint64
	for i := 0; i < 2; i++ {
		id := string(rune('0' + i))
		workerBatches += counter(obs.Label("ingest_worker_batches_total", "worker", id))
		workerUpdates += counter(obs.Label("ingest_worker_updates_total", "worker", id))
	}
	if want := counter("ingest_batches_total") * 2; workerBatches != want {
		t.Errorf("worker batches sum = %d, want %d", workerBatches, want)
	}
	if workerUpdates != n*2 {
		t.Errorf("worker updates sum = %d, want %d", workerUpdates, n*2)
	}

	// The exporter sees the same numbers.
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"ingest_updates_accepted_total 100",
		"ingest_flushes_total 1",
		"ingest_streams 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestDigestCacheMetrics: the cache instruments add up — every batch
// element is a hit or a miss, a hot element hits after its first touch,
// and coalescing accounts for folded updates.
func TestDigestCacheMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	e, err := New(testCfg, 11, 8, Options{Workers: 2, BatchSize: 64, DigestCache: 1024, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	// Round 1: 64 distinct elements, all cold.
	for i := 0; i < 64; i++ {
		if err := e.Update("A", uint64(i), 1); err != nil {
			t.Fatal(err)
		}
	}
	e.Drain()
	counter := func(name string) uint64 { return reg.Counter(name, "").Value() }
	misses1 := counter("ingest_digest_cache_misses_total")
	if misses1 == 0 {
		t.Fatal("no cache misses after a cold batch")
	}
	if got := counter("ingest_digest_cache_hits_total"); got != 0 {
		t.Errorf("cold batch produced %d hits", got)
	}

	// Round 2: the same 64 elements — all warm now (1024 slots, no
	// evictions possible at this occupancy short of slot collisions;
	// hits must dominate).
	for i := 0; i < 64; i++ {
		if err := e.Update("A", uint64(i), 1); err != nil {
			t.Fatal(err)
		}
	}
	e.Drain()
	hits := counter("ingest_digest_cache_hits_total")
	misses2 := counter("ingest_digest_cache_misses_total") - misses1
	if hits+misses2 != 64 {
		t.Errorf("warm batch: hits %d + misses %d != 64", hits, misses2)
	}
	if hits < 32 {
		t.Errorf("warm batch: only %d/64 cache hits", hits)
	}

	// Coalescing: 10 updates of one element fold to one replay.
	for i := 0; i < 10; i++ {
		if err := e.Update("A", 999, 1); err != nil {
			t.Fatal(err)
		}
	}
	e.Drain()
	if got := counter("ingest_coalesced_updates_total"); got < 9 {
		t.Errorf("coalesced counter = %d, want >= 9", got)
	}
}
