package baselines

import (
	"errors"
	"math"
	"testing"

	"setsketch/internal/hashing"
)

func distinctElems(rng *hashing.RNG, n int) []uint64 {
	seen := make(map[uint64]bool, n)
	out := make([]uint64, 0, n)
	for len(out) < n {
		e := rng.Uint64n(1 << 32)
		if !seen[e] {
			seen[e] = true
			out = append(out, e)
		}
	}
	return out
}

func TestFMAccuracy(t *testing.T) {
	rng := hashing.NewRNG(1)
	for _, n := range []int{1000, 10000} {
		f, err := NewFM(7, 64, 32)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range distinctElems(rng, n) {
			f.Insert(e)
			f.Insert(e) // duplicates must not matter
		}
		est := f.Estimate()
		if rel := math.Abs(est-float64(n)) / float64(n); rel > 0.5 {
			t.Errorf("n = %d: FM estimate %.0f (rel err %.2f)", n, est, rel)
		}
	}
}

func TestFMEmpty(t *testing.T) {
	f, err := NewFM(7, 16, 32)
	if err != nil {
		t.Fatal(err)
	}
	// Fig. 2 on an empty stream: leftmost zero is 0 everywhere, so the
	// estimate is the constant 1.2928 — FM's floor, not a true zero.
	if est := f.Estimate(); est != fmPhi {
		t.Errorf("empty FM estimate %v, want %v", est, fmPhi)
	}
}

func TestFMRejectsDeletions(t *testing.T) {
	f, err := NewFM(7, 16, 32)
	if err != nil {
		t.Fatal(err)
	}
	f.Insert(5)
	if err := f.Delete(5); !errors.Is(err, ErrDeletionsUnsupported) {
		t.Errorf("Delete err = %v, want ErrDeletionsUnsupported", err)
	}
}

func TestFMMergeIsUnion(t *testing.T) {
	rng := hashing.NewRNG(2)
	a, _ := NewFM(9, 64, 32)
	b, _ := NewFM(9, 64, 32)
	both, _ := NewFM(9, 64, 32)
	elems := distinctElems(rng, 4000)
	for i, e := range elems {
		if i%2 == 0 {
			a.Insert(e)
		} else {
			b.Insert(e)
		}
		both.Insert(e)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Estimate() != both.Estimate() {
		t.Errorf("merged estimate %.0f differs from combined-stream estimate %.0f",
			a.Estimate(), both.Estimate())
	}
	c, _ := NewFM(9, 32, 32)
	if err := a.Merge(c); err == nil {
		t.Error("merge of incompatible FM synopses succeeded")
	}
}

func TestFMValidation(t *testing.T) {
	if _, err := NewFM(1, 0, 32); err == nil {
		t.Error("r = 0 accepted")
	}
	if _, err := NewFM(1, 4, 0); err == nil {
		t.Error("width 0 accepted")
	}
	if _, err := NewFM(1, 4, 99); err == nil {
		t.Error("width 99 accepted")
	}
	f, _ := NewFM(1, 4, 32)
	if f.MemoryBytes() == 0 {
		t.Error("MemoryBytes = 0")
	}
}

func TestMIPsJaccardAccuracy(t *testing.T) {
	rng := hashing.NewRNG(3)
	const u, inter = 4000, 1000 // true Jaccard 0.25
	elems := distinctElems(rng, u)
	a, _ := NewMIPs(11, 512)
	b, _ := NewMIPs(11, 512)
	for i, e := range elems {
		switch {
		case i < inter:
			a.Insert(e)
			b.Insert(e)
		case i%2 == 0:
			a.Insert(e)
		default:
			b.Insert(e)
		}
	}
	j, err := Jaccard(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(j-0.25) > 0.06 {
		t.Errorf("Jaccard estimate %.3f, want ≈ 0.25", j)
	}
	est, err := IntersectionEstimate(a, b, u)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est-inter)/inter > 0.3 {
		t.Errorf("intersection estimate %.0f, want ≈ %d", est, inter)
	}
	sizeA := float64(inter + (u-inter+1)/2)
	d, err := DifferenceEstimate(a, b, u, sizeA)
	if err != nil {
		t.Fatal(err)
	}
	trueDiff := sizeA - inter
	if math.Abs(d-trueDiff)/trueDiff > 0.35 {
		t.Errorf("difference estimate %.0f, want ≈ %.0f", d, trueDiff)
	}
}

// TestMIPsDepletion demonstrates the paper's central criticism: deleting
// stream items destroys MIPs coordinates, and with enough deletions the
// synopsis cannot estimate at all — while 2-level hash sketches are
// untouched by the same workload (TestEstimateIntersectionUnderDeletions
// in internal/core).
func TestMIPsDepletion(t *testing.T) {
	rng := hashing.NewRNG(4)
	elems := distinctElems(rng, 2000)
	a, _ := NewMIPs(13, 128)
	for _, e := range elems {
		a.Insert(e)
	}
	if a.Usable() != 128 {
		t.Fatalf("fresh synopsis has %d usable coordinates", a.Usable())
	}
	// Delete the whole stream: every coordinate's minimum dies.
	for _, e := range elems {
		a.Delete(e)
	}
	if a.Depleted() != 128 {
		t.Errorf("full deletion left %d of 128 coordinates alive", 128-a.Depleted())
	}
	b, _ := NewMIPs(13, 128)
	b.Insert(1)
	if _, err := Jaccard(a, b); !errors.Is(err, ErrDepleted) {
		t.Errorf("Jaccard on depleted synopsis: err = %v, want ErrDepleted", err)
	}
}

// TestMIPsPartialDepletionDegrades quantifies graceful degradation: each
// deleted element kills the coordinates it was the minimum of, so the
// usable-coordinate count decreases monotonically with deletions.
func TestMIPsPartialDepletionDegrades(t *testing.T) {
	rng := hashing.NewRNG(5)
	elems := distinctElems(rng, 2000)
	a, _ := NewMIPs(17, 256)
	for _, e := range elems {
		a.Insert(e)
	}
	usable := []int{a.Usable()}
	for i := 0; i < 1000; i++ {
		a.Delete(elems[i])
		if i%250 == 249 {
			usable = append(usable, a.Usable())
		}
	}
	for i := 1; i < len(usable); i++ {
		if usable[i] > usable[i-1] {
			t.Fatalf("usable coordinates increased after deletions: %v", usable)
		}
	}
	if usable[len(usable)-1] == usable[0] {
		t.Error("1000 deletions depleted no coordinate; depletion model broken")
	}
}

func TestMIPsDeleteNonMinimumHarmless(t *testing.T) {
	a, _ := NewMIPs(19, 64)
	rng := hashing.NewRNG(6)
	elems := distinctElems(rng, 100)
	for _, e := range elems {
		a.Insert(e)
	}
	// Deleting an element that is no coordinate's minimum changes nothing.
	outside := uint64(1 << 40)
	before := a.Usable()
	a.Delete(outside)
	if a.Usable() != before {
		t.Error("deleting an untracked element depleted coordinates")
	}
}

func TestMIPsValidation(t *testing.T) {
	if _, err := NewMIPs(1, 0); err == nil {
		t.Error("k = 0 accepted")
	}
	a, _ := NewMIPs(1, 8)
	b, _ := NewMIPs(1, 16)
	if _, err := Jaccard(a, b); err == nil {
		t.Error("mismatched MIPs sizes accepted")
	}
}

func TestMIPsIdenticalStreams(t *testing.T) {
	rng := hashing.NewRNG(7)
	elems := distinctElems(rng, 500)
	a, _ := NewMIPs(23, 64)
	b, _ := NewMIPs(23, 64)
	for _, e := range elems {
		a.Insert(e)
		b.Insert(e)
	}
	j, err := Jaccard(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if j != 1 {
		t.Errorf("Jaccard of identical streams = %v, want 1", j)
	}
}
