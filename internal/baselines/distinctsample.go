package baselines

import (
	"errors"

	"setsketch/internal/hashing"
)

// DistinctSample is Gibbons' distinct sampling synopsis (VLDB 2001;
// the paper's reference [14]): a bounded-size uniform sample of the
// *distinct* values in a stream, maintained by hash-based level
// filtering. Each value has a permanent level LSB(h(v)); the synopsis
// keeps every distinct value whose level is at least the current
// threshold, raising the threshold (and evicting the newly
// sub-threshold values) whenever the sample overflows its capacity.
// The distinct count is estimated as |sample| · 2^threshold.
//
// Insertions are handled exactly. Deletions expose the structural
// problem the 2-level hash sketch paper highlights (§1): a deletion
// can remove a sampled value, but values evicted at earlier threshold
// raises are gone — the synopsis cannot re-grow the sample without
// rescanning past stream items. NeedsRescan reports when deletions
// have shrunk the sample below the occupancy a fresh synopsis would
// have, i.e. when estimates are degraded and only a rescan would
// restore the guarantee.
type DistinctSample struct {
	h         *hashing.Poly
	capacity  int
	threshold int
	// counts tracks net frequencies of the sampled distinct values.
	counts map[uint64]int64
	// evictions counts values dropped at threshold raises; > 0 means a
	// rescan would be needed to repopulate after mass deletions.
	evictions int
}

// NewDistinctSample builds a synopsis holding at most capacity
// distinct values.
func NewDistinctSample(seed uint64, capacity int) (*DistinctSample, error) {
	if capacity < 1 {
		return nil, errors.New("baselines: distinct sample needs positive capacity")
	}
	return &DistinctSample{
		h:        hashing.NewPoly(seed, 2),
		capacity: capacity,
		counts:   make(map[uint64]int64),
	}, nil
}

// level returns the permanent sampling level of a value.
func (d *DistinctSample) level(e uint64) int {
	return hashing.LSB(d.h.Hash(e), hashing.FieldBits)
}

// Insert adds one occurrence of e.
func (d *DistinctSample) Insert(e uint64) {
	if d.level(e) < d.threshold {
		return // filtered out at the current threshold
	}
	d.counts[e]++
	for len(d.counts) > d.capacity {
		d.raiseThreshold()
	}
}

// raiseThreshold increments the level threshold and evicts values that
// no longer qualify.
func (d *DistinctSample) raiseThreshold() {
	d.threshold++
	for e := range d.counts {
		if d.level(e) < d.threshold {
			delete(d.counts, e)
			d.evictions++
		}
	}
}

// Delete removes one occurrence of e. Deleting a sampled value down to
// net frequency zero removes it from the sample; the freed slot cannot
// be refilled with previously evicted values (that information is
// gone), which is exactly the depletion criticism of [14, 15].
func (d *DistinctSample) Delete(e uint64) {
	if d.level(e) < d.threshold {
		return // value was filtered; its deletions are too
	}
	if c, ok := d.counts[e]; ok {
		if c <= 1 {
			delete(d.counts, e)
		} else {
			d.counts[e] = c - 1
		}
	}
}

// Estimate returns the distinct-count estimate |sample| · 2^threshold.
func (d *DistinctSample) Estimate() float64 {
	return float64(len(d.counts)) * float64(uint64(1)<<uint(d.threshold))
}

// SampleSize returns the current number of sampled distinct values.
func (d *DistinctSample) SampleSize() int { return len(d.counts) }

// Threshold returns the current level threshold.
func (d *DistinctSample) Threshold() int { return d.threshold }

// NeedsRescan reports whether deletions have degraded the synopsis:
// the sample is badly under-occupied (below a quarter of capacity)
// even though values were evicted at threshold raises — a fresh pass
// over the surviving stream would yield a larger sample at a lower
// threshold, but the one-pass synopsis cannot recover it.
func (d *DistinctSample) NeedsRescan() bool {
	return d.evictions > 0 && d.threshold > 0 && len(d.counts) < d.capacity/4
}
