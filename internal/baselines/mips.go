package baselines

import (
	"errors"
	"math"

	"setsketch/internal/hashing"
)

// MIPs is a min-wise independent permutations synopsis (Broder et al.;
// Cohen; Indyk — the paper's §1 "Prior Work"): k independent
// (approximately min-wise) hash functions, each retaining the minimum
// hash value — and the element attaining it — over the inserted
// multi-set. Two MIPs synopses built with the same seed estimate the
// Jaccard coefficient |A ∩ B| / |A ∪ B| as the fraction of coordinates
// whose minima agree, from which intersection and difference
// cardinalities follow given a union estimate.
//
// MIPs handles insert-only streams well but is structurally unable to
// process deletions: when the current minimum element is deleted, the
// replacement minimum is unknown without rescanning past items. Delete
// models this honestly — deleting a tracked minimum marks the
// coordinate depleted, and depleted coordinates are excluded from
// estimation. Under enough deletions every coordinate depletes and the
// synopsis is useless; see TestMIPsDepletion and the churn experiment.
type MIPs struct {
	hashes   []*hashing.Poly
	minVal   []uint64
	minElem  []uint64
	occupied []bool
	depleted []bool
}

// NewMIPs builds a k-coordinate MIPs synopsis. Synopses with equal
// (seed, k) are comparable.
func NewMIPs(seed uint64, k int) (*MIPs, error) {
	if k < 1 {
		return nil, errors.New("baselines: MIPs needs at least one permutation")
	}
	m := &MIPs{
		hashes:   make([]*hashing.Poly, k),
		minVal:   make([]uint64, k),
		minElem:  make([]uint64, k),
		occupied: make([]bool, k),
		depleted: make([]bool, k),
	}
	for i := range m.hashes {
		// Degree-4 polynomials give approximately min-wise behaviour
		// (Indyk '99 shows O(log 1/ε)-wise independence suffices).
		m.hashes[i] = hashing.NewPoly(hashing.DeriveSeed(seed, uint64(i)), 4)
	}
	return m, nil
}

// Insert records one occurrence of e.
func (m *MIPs) Insert(e uint64) {
	for i, h := range m.hashes {
		v := h.Hash(e)
		if !m.occupied[i] || v < m.minVal[i] {
			m.occupied[i] = true
			m.minVal[i] = v
			m.minElem[i] = e
			// A fresh, smaller minimum repairs a depleted coordinate
			// only by luck; real systems cannot rely on it, but we
			// keep the coordinate depleted to model the guarantee
			// loss: once the true minimum was lost, agreement between
			// synopses is no longer the Jaccard indicator.
		}
	}
}

// Delete attempts to remove e. If e is the tracked minimum of a
// coordinate, that coordinate becomes depleted: the true next minimum
// cannot be recovered from the synopsis ("deletions can easily deplete
// the MIP synopsis", §1). Deletions of non-minimum elements are
// ignorable because they cannot change any minimum.
func (m *MIPs) Delete(e uint64) {
	for i := range m.hashes {
		if m.occupied[i] && m.minElem[i] == e {
			m.occupied[i] = false
			m.depleted[i] = true
		}
	}
}

// Usable returns the number of coordinates still carrying a valid
// minimum (never depleted).
func (m *MIPs) Usable() int {
	n := 0
	for i := range m.occupied {
		if m.occupied[i] && !m.depleted[i] {
			n++
		}
	}
	return n
}

// Depleted returns the number of coordinates ruined by deletions.
func (m *MIPs) Depleted() int {
	n := 0
	for _, d := range m.depleted {
		if d {
			n++
		}
	}
	return n
}

// ErrDepleted is returned when too few coordinates survive to estimate.
var ErrDepleted = errors.New("baselines: MIPs synopsis depleted by deletions; estimation impossible without rescanning the stream")

// Jaccard estimates |A ∩ B| / |A ∪ B| from two comparable synopses as
// the agreement fraction over coordinates valid in both.
func Jaccard(a, b *MIPs) (float64, error) {
	if len(a.hashes) != len(b.hashes) {
		return 0, errors.New("baselines: comparing MIPs of different sizes")
	}
	valid, agree := 0, 0
	for i := range a.hashes {
		if a.depleted[i] || b.depleted[i] || !a.occupied[i] || !b.occupied[i] {
			continue
		}
		valid++
		if a.minElem[i] == b.minElem[i] {
			agree++
		}
	}
	if valid == 0 {
		return 0, ErrDepleted
	}
	return float64(agree) / float64(valid), nil
}

// IntersectionEstimate converts a Jaccard estimate into |A ∩ B| given
// the union cardinality (exact or separately estimated).
func IntersectionEstimate(a, b *MIPs, union float64) (float64, error) {
	j, err := Jaccard(a, b)
	if err != nil {
		return 0, err
	}
	return j * union, nil
}

// DifferenceEstimate converts a Jaccard estimate into |A − B| given the
// union cardinality and |A| (exact or separately estimated):
// |A − B| = |A| − |A ∩ B| = |A| − J·|A ∪ B|, clamped at zero.
func DifferenceEstimate(a, b *MIPs, union, sizeA float64) (float64, error) {
	j, err := Jaccard(a, b)
	if err != nil {
		return 0, err
	}
	return math.Max(0, sizeA-j*union), nil
}
