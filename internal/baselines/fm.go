// Package baselines implements the prior-art estimators the paper
// positions itself against: the Flajolet–Martin bitmap distinct-count
// estimator (paper Fig. 2), which handles union over insert-only
// streams but cannot express deletions, and a min-wise independent
// permutations (MIPs) synopsis, the only pre-existing technique for
// intersection/difference — which the paper shows is depleted by
// deletions. The exact baseline is internal/multiset.
package baselines

import (
	"errors"
	"math"

	"setsketch/internal/hashing"
)

// fmPhi is the Flajolet–Martin bias-correction constant: the estimator
// returns 1.2928 · 2^(sum/r) (paper Fig. 2, step 6, where
// 1.2928 ≈ 1/φ with φ ≈ 0.77351).
const fmPhi = 1.2928

// FM is the Flajolet–Martin synopsis of paper Fig. 2: r bit-vectors of
// Θ(log M) bits, bit LSB(h_i(e)) set on every insertion of e.
//
// FM is insert-only: bits cannot be unset, so deletions are
// unsupported — exactly the limitation that motivates counter-based
// 2-level hash sketches.
type FM struct {
	width  int
	hashes []*hashing.Poly
	bits   [][]uint64 // r bitmaps, each width bits packed into words
}

// NewFM builds an FM estimator with r independent hash instances over
// a domain of width bits (Θ(log M)).
func NewFM(seed uint64, r, width int) (*FM, error) {
	if r < 1 {
		return nil, errors.New("baselines: FM needs at least one hash instance")
	}
	if width < 1 || width > hashing.FieldBits {
		return nil, errors.New("baselines: FM width out of range")
	}
	f := &FM{width: width, hashes: make([]*hashing.Poly, r), bits: make([][]uint64, r)}
	for i := range f.hashes {
		f.hashes[i] = hashing.NewPoly(hashing.DeriveSeed(seed, uint64(i)), 2)
		f.bits[i] = make([]uint64, (width+63)/64)
	}
	return f, nil
}

// Insert records one occurrence of e (Fig. 2 steps 3–4). Multiplicity
// is irrelevant: the bitmap saturates.
func (f *FM) Insert(e uint64) {
	for i, h := range f.hashes {
		b := hashing.LSB(h.Hash(e), f.width)
		f.bits[i][b/64] |= 1 << uint(b%64)
	}
}

// ErrDeletionsUnsupported is returned by Delete: FM bitmaps cannot
// express deletions.
var ErrDeletionsUnsupported = errors.New("baselines: FM bitmaps cannot process deletions")

// Delete always fails; it exists to make the baseline's limitation
// explicit at the type level for the comparison harness.
func (f *FM) Delete(uint64) error { return ErrDeletionsUnsupported }

// Merge ORs another FM synopsis built with the same seed/shape into f,
// giving the synopsis of the union of the inputs.
func (f *FM) Merge(g *FM) error {
	if len(f.bits) != len(g.bits) || f.width != g.width {
		return errors.New("baselines: merging incompatible FM synopses")
	}
	for i := range f.bits {
		for w := range f.bits[i] {
			f.bits[i][w] |= g.bits[i][w]
		}
	}
	return nil
}

// Estimate returns the Fig. 2 distinct-count estimate
// R = 1.2928 · 2^(sum/r), where sum accumulates each bitmap's
// leftmost-zero index.
func (f *FM) Estimate() float64 {
	sum := 0
	for i := range f.bits {
		sum += f.leftmostZero(i)
	}
	return fmPhi * math.Pow(2, float64(sum)/float64(len(f.bits)))
}

// leftmostZero returns the lowest bit index not set in bitmap i
// (Fig. 2 scans from the top down to find the last zero seen, which is
// the same position).
func (f *FM) leftmostZero(i int) int {
	for b := 0; b < f.width; b++ {
		if f.bits[i][b/64]&(1<<uint(b%64)) == 0 {
			return b
		}
	}
	return f.width
}

// MemoryBytes reports the bitmap footprint.
func (f *FM) MemoryBytes() int {
	return len(f.bits) * len(f.bits[0]) * 8
}
