package baselines

import (
	"math"
	"testing"

	"setsketch/internal/hashing"
)

func TestDistinctSampleExactWhenSmall(t *testing.T) {
	d, err := NewDistinctSample(1, 1024)
	if err != nil {
		t.Fatal(err)
	}
	for e := uint64(0); e < 500; e++ {
		d.Insert(e)
		d.Insert(e) // duplicates don't change the sample
	}
	// Below capacity the sample holds every distinct value exactly.
	if d.Threshold() != 0 || d.SampleSize() != 500 {
		t.Fatalf("threshold %d, sample %d; want 0, 500", d.Threshold(), d.SampleSize())
	}
	if d.Estimate() != 500 {
		t.Errorf("estimate %v, want exactly 500", d.Estimate())
	}
}

func TestDistinctSampleAccuracy(t *testing.T) {
	rng := hashing.NewRNG(2)
	for _, n := range []int{5000, 50000} {
		d, err := NewDistinctSample(7, 512)
		if err != nil {
			t.Fatal(err)
		}
		seen := make(map[uint64]bool, n)
		for len(seen) < n {
			e := rng.Uint64n(1 << 40)
			if !seen[e] {
				seen[e] = true
				d.Insert(e)
			}
		}
		est := d.Estimate()
		if rel := math.Abs(est-float64(n)) / float64(n); rel > 0.25 {
			t.Errorf("n = %d: estimate %.0f (rel err %.2f)", n, est, rel)
		}
		if d.SampleSize() > 512 {
			t.Errorf("sample overflowed capacity: %d", d.SampleSize())
		}
	}
}

// TestDistinctSampleDepletion reproduces the §1 criticism of
// sampling-based synopses: after heavy deletions the sample shrinks
// and cannot re-grow, flagging the need for a rescan.
func TestDistinctSampleDepletion(t *testing.T) {
	rng := hashing.NewRNG(3)
	d, err := NewDistinctSample(9, 256)
	if err != nil {
		t.Fatal(err)
	}
	elems := make([]uint64, 0, 20000)
	seen := make(map[uint64]bool)
	for len(elems) < 20000 {
		e := rng.Uint64n(1 << 40)
		if !seen[e] {
			seen[e] = true
			elems = append(elems, e)
			d.Insert(e)
		}
	}
	if d.NeedsRescan() {
		t.Fatal("fresh synopsis claims to need a rescan")
	}
	// Delete 99% of the stream: the true distinct count drops to 200,
	// which a fresh synopsis would hold exactly at threshold 0 — but
	// this one is stuck at a high threshold with a near-empty sample.
	for _, e := range elems[:19800] {
		d.Delete(e)
	}
	if !d.NeedsRescan() {
		t.Errorf("synopsis not flagged for rescan: threshold %d, sample %d",
			d.Threshold(), d.SampleSize())
	}
	// The estimate is now unusably coarse: granularity is 2^threshold.
	if d.Threshold() < 4 {
		t.Errorf("threshold %d unexpectedly low after 20k distinct inserts at capacity 256", d.Threshold())
	}
}

func TestDistinctSampleDeleteFiltered(t *testing.T) {
	d, err := NewDistinctSample(9, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Overflow the capacity to force a positive threshold.
	for e := uint64(0); e < 100; e++ {
		d.Insert(e)
	}
	thr := d.Threshold()
	if thr == 0 {
		t.Fatal("threshold did not rise at capacity 4")
	}
	// Deleting values that were never sampled must be a no-op.
	before := d.SampleSize()
	for e := uint64(0); e < 100; e++ {
		if d.level(e) < thr {
			d.Delete(e)
		}
	}
	if d.SampleSize() != before {
		t.Error("deleting filtered values changed the sample")
	}
}

func TestDistinctSampleValidation(t *testing.T) {
	if _, err := NewDistinctSample(1, 0); err == nil {
		t.Error("capacity 0 accepted")
	}
}

func TestBJKSTExactWhenSmall(t *testing.T) {
	b, err := NewBJKST(1, 64)
	if err != nil {
		t.Fatal(err)
	}
	for e := uint64(0); e < 50; e++ {
		b.Insert(e)
		b.Insert(e)
	}
	if b.Estimate() != 50 || b.Retained() != 50 {
		t.Errorf("estimate %v retained %d, want 50, 50", b.Estimate(), b.Retained())
	}
}

func TestBJKSTAccuracy(t *testing.T) {
	rng := hashing.NewRNG(4)
	for _, n := range []int{5000, 50000} {
		b, err := NewBJKST(11, 256)
		if err != nil {
			t.Fatal(err)
		}
		seen := make(map[uint64]bool, n)
		for len(seen) < n {
			e := rng.Uint64n(1 << 40)
			if !seen[e] {
				seen[e] = true
				b.Insert(e)
			}
		}
		est := b.Estimate()
		if rel := math.Abs(est-float64(n)) / float64(n); rel > 0.25 {
			t.Errorf("n = %d: estimate %.0f (rel err %.2f)", n, est, rel)
		}
		if b.Retained() != 256 {
			t.Errorf("retained %d, want 256", b.Retained())
		}
	}
}

func TestBJKSTDamagedByDeletions(t *testing.T) {
	rng := hashing.NewRNG(5)
	b, err := NewBJKST(13, 64)
	if err != nil {
		t.Fatal(err)
	}
	elems := make([]uint64, 2000)
	for i := range elems {
		elems[i] = rng.Uint64n(1 << 40)
		b.Insert(elems[i])
	}
	if b.Damaged() {
		t.Fatal("insert-only synopsis reports damage")
	}
	// Deleting non-retained values is harmless; deleting everything
	// guarantees retained values die.
	for _, e := range elems {
		b.Delete(e)
	}
	if !b.Damaged() {
		t.Error("mass deletion did not damage the synopsis")
	}
	if b.Retained() != 0 {
		t.Errorf("retained %d after deleting everything", b.Retained())
	}
}

func TestBJKSTValidation(t *testing.T) {
	if _, err := NewBJKST(1, 1); err == nil {
		t.Error("k = 1 accepted")
	}
}

func TestBJKSTDuplicateInsertStable(t *testing.T) {
	b, _ := NewBJKST(17, 8)
	rng := hashing.NewRNG(6)
	for i := 0; i < 100; i++ {
		b.Insert(rng.Uint64n(1 << 30))
	}
	est1 := b.Estimate()
	// Re-inserting retained elements must not change anything.
	for i := 0; i < 5; i++ {
		for e := range b.vals {
			b.Insert(e)
		}
	}
	if b.Estimate() != est1 {
		t.Error("duplicate inserts changed the estimate")
	}
}
