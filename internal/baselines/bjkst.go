package baselines

import (
	"errors"
	"sort"

	"setsketch/internal/hashing"
)

// BJKST is the k-minimum-values distinct-count estimator in the style
// of Bar-Yossef, Jayram, Kumar, Sivakumar, Trevisan (RANDOM 2002; the
// paper's reference [4]): retain the k smallest distinct hash values
// seen; if v_k is the k-th smallest as a fraction of the hash range,
// the distinct count is ≈ (k−1)/v_k.
//
// Like every minimum-retention synopsis, it is insert-only in spirit:
// deleting a retained value leaves a hole that cannot be refilled
// without rescanning (the k+1-st smallest hash was discarded). Delete
// models this by marking the synopsis damaged once a retained value is
// removed; estimates remain available but the (ε, δ) guarantee is
// void, which Damaged reports.
type BJKST struct {
	h    *hashing.Poly
	k    int
	vals map[uint64]uint64 // element → hash, the ≤ k smallest retained
	// maxRetained caches the largest retained hash for O(1) admission.
	maxRetained uint64
	damaged     bool
}

// NewBJKST builds a k-minimum-values synopsis.
func NewBJKST(seed uint64, k int) (*BJKST, error) {
	if k < 2 {
		return nil, errors.New("baselines: BJKST needs k ≥ 2")
	}
	return &BJKST{h: hashing.NewPoly(seed, 2), k: k, vals: make(map[uint64]uint64)}, nil
}

// Insert adds one occurrence of e.
func (b *BJKST) Insert(e uint64) {
	hv := b.h.Hash(e)
	if _, ok := b.vals[e]; ok {
		return // already retained; duplicates don't matter
	}
	if len(b.vals) < b.k {
		b.vals[e] = hv
		if hv > b.maxRetained {
			b.maxRetained = hv
		}
		return
	}
	if hv >= b.maxRetained {
		return // not among the k smallest
	}
	// Evict the current maximum and admit e.
	var evict uint64
	var evictHash uint64
	for el, h := range b.vals {
		if h >= evictHash {
			evict, evictHash = el, h
		}
	}
	delete(b.vals, evict)
	b.vals[e] = hv
	b.maxRetained = 0
	for _, h := range b.vals {
		if h > b.maxRetained {
			b.maxRetained = h
		}
	}
}

// Delete removes e. If e was retained, the synopsis is permanently
// damaged: the next-smallest hash beyond the retained set was thrown
// away and only a rescan could restore it.
func (b *BJKST) Delete(e uint64) {
	if _, ok := b.vals[e]; !ok {
		return
	}
	delete(b.vals, e)
	b.damaged = true
}

// Damaged reports whether deletions have voided the estimator's
// guarantee.
func (b *BJKST) Damaged() bool { return b.damaged }

// Estimate returns the distinct-count estimate. With fewer than k
// retained values the count is exact (every distinct value is
// retained); otherwise (k−1)/v_k scaled to the hash range.
func (b *BJKST) Estimate() float64 {
	if len(b.vals) < b.k {
		return float64(len(b.vals))
	}
	hashes := make([]uint64, 0, len(b.vals))
	for _, h := range b.vals {
		hashes = append(hashes, h)
	}
	sort.Slice(hashes, func(i, j int) bool { return hashes[i] < hashes[j] })
	vk := float64(hashes[b.k-1]) / float64(hashing.MersennePrime)
	if vk == 0 {
		return float64(len(b.vals))
	}
	return float64(b.k-1) / vk
}

// Retained returns the current number of retained values.
func (b *BJKST) Retained() int { return len(b.vals) }
