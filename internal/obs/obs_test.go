package obs

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total", "requests")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	// Get-or-create: same series, same instrument.
	if r.Counter("reqs_total", "") != c {
		t.Error("second Counter call returned a different instrument")
	}

	g := r.Gauge("depth", "queue depth")
	g.Set(3.5)
	g.Add(-1.25)
	if g.Value() != 2.25 {
		t.Errorf("gauge = %v, want 2.25", g.Value())
	}
	if r.Gauge("depth", "") != g {
		t.Error("second Gauge call returned a different instrument")
	}
}

func TestNilRegistryHandsOutWorkingInstruments(t *testing.T) {
	var r *Registry
	c := r.Counter("x", "")
	c.Inc()
	if c.Value() != 1 {
		t.Error("nil-registry counter broken")
	}
	g := r.Gauge("y", "")
	g.Set(7)
	if g.Value() != 7 {
		t.Error("nil-registry gauge broken")
	}
	h := r.Histogram("z", "", nil)
	h.Observe(0.5)
	if h.Count() != 1 {
		t.Error("nil-registry histogram broken")
	}
	r.CounterFunc("cf", "", func() uint64 { return 0 })
	r.GaugeFunc("gf", "", func() float64 { return 0 })
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Error(err)
	}
	var sb strings.Builder
	if err := r.WriteJSON(&sb); err != nil || strings.TrimSpace(sb.String()) != "{}" {
		t.Errorf("nil-registry JSON = %q err %v, want {}", sb.String(), err)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	cum, count, sum := h.snapshot()
	if count != 5 {
		t.Errorf("count = %d, want 5", count)
	}
	if sum != 106 {
		t.Errorf("sum = %v, want 106", sum)
	}
	// Cumulative: le=1 -> 2 (0.5, 1), le=2 -> 3, le=4 -> 4, +Inf -> 5.
	want := []uint64{2, 3, 4, 5}
	for i, w := range want {
		if cum[i] != w {
			t.Errorf("bucket %d = %d, want %d", i, cum[i], w)
		}
	}
}

func TestLabelRendering(t *testing.T) {
	if got := Label("x_total"); got != "x_total" {
		t.Errorf("no-label = %q", got)
	}
	got := Label("x_total", "worker", "3", "mode", "fast")
	if got != `x_total{worker="3",mode="fast"}` {
		t.Errorf("labels = %q", got)
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "bees").Add(2)
	r.Counter(Label("b_total", "kind", "worker"), "").Add(3)
	r.Gauge("a_gauge", "alpha").Set(1.5)
	r.CounterFunc("fn_total", "sampled", func() uint64 { return 9 })
	r.GaugeFunc("fn_gauge", "", func() float64 { return -2 })
	h := r.Histogram("lat_seconds", "latency", []float64{0.1, 1})
	h.Observe(0.0625) // powers of two keep the _sum line exact
	h.Observe(0.5)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP b_total bees\n# TYPE b_total counter\nb_total 2\nb_total{kind=\"worker\"} 3\n",
		"# HELP a_gauge alpha\n# TYPE a_gauge gauge\na_gauge 1.5\n",
		"fn_total 9\n",
		"fn_gauge -2\n",
		"lat_seconds_bucket{le=\"0.1\"} 1\n",
		"lat_seconds_bucket{le=\"1\"} 2\n",
		"lat_seconds_bucket{le=\"+Inf\"} 2\n",
		"lat_seconds_sum{} 0.5625\n",
		"lat_seconds_count{} 2\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q\n--- got:\n%s", want, out)
		}
	}
	// Series are sorted, so the gauge block precedes the counter block.
	if strings.Index(out, "a_gauge") > strings.Index(out, "b_total") {
		t.Error("series not sorted by name")
	}
}

func TestWriteJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "").Add(7)
	r.Gauge("g", "").Set(2.5)
	r.Histogram("h_seconds", "", []float64{1}).Observe(0.5)

	var sb strings.Builder
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, sb.String())
	}
	if doc["c_total"].(float64) != 7 || doc["g"].(float64) != 2.5 {
		t.Errorf("scalars wrong: %v", doc)
	}
	h := doc["h_seconds"].(map[string]any)
	if h["count"].(float64) != 1 || h["sum"].(float64) != 0.5 {
		t.Errorf("histogram wrong: %v", h)
	}
	if h["buckets"].(map[string]any)["+Inf"].(float64) != 1 {
		t.Errorf("histogram +Inf bucket wrong: %v", h)
	}
}

func TestCounterFuncOverwrites(t *testing.T) {
	r := NewRegistry()
	r.CounterFunc("f", "", func() uint64 { return 1 })
	r.CounterFunc("f", "", func() uint64 { return 2 }) // newest component wins
	r.GaugeFunc("g", "", func() float64 { return 1 })
	r.GaugeFunc("g", "", func() float64 { return 3 })
	var sb strings.Builder
	r.WritePrometheus(&sb)
	if !strings.Contains(sb.String(), "f 2\n") || !strings.Contains(sb.String(), "g 3\n") {
		t.Errorf("func metrics not overwritten:\n%s", sb.String())
	}
}

func TestFormatFloat(t *testing.T) {
	if formatFloat(3) != "3" || formatFloat(0.25) != "0.25" || formatFloat(-2) != "-2" {
		t.Error("formatFloat rendering broken")
	}
	if formatFloat(math.Inf(1)) != "+Inf" {
		t.Errorf("formatFloat(+Inf) = %q", formatFloat(math.Inf(1)))
	}
}

// TestRegistryRaceHammer pounds one registry from many goroutines —
// registration, instrument updates, and concurrent exports — and is
// meaningful under -race (the tier-1 gate runs it there).
func TestRegistryRaceHammer(t *testing.T) {
	r := NewRegistry()
	const goroutines = 16
	const iters = 300
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := Label("hammer_total", "g", string(rune('a'+g%4)))
			for i := 0; i < iters; i++ {
				r.Counter(name, "hammered").Inc()
				r.Gauge("hammer_gauge", "").Add(1)
				r.Histogram("hammer_seconds", "", nil).Observe(float64(i) / iters)
				if i%16 == 0 {
					r.GaugeFunc("hammer_fn", "", func() float64 { return float64(i) })
					var sb strings.Builder
					if err := r.WritePrometheus(&sb); err != nil {
						t.Error(err)
					}
					if err := r.WriteJSON(&sb); err != nil {
						t.Error(err)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	total := uint64(0)
	for _, l := range []string{"a", "b", "c", "d"} {
		total += r.Counter(Label("hammer_total", "g", l), "").Value()
	}
	if total != goroutines*iters {
		t.Errorf("hammered counters sum to %d, want %d", total, goroutines*iters)
	}
	if r.Histogram("hammer_seconds", "", nil).Count() != goroutines*iters {
		t.Errorf("histogram count = %d, want %d",
			r.Histogram("hammer_seconds", "", nil).Count(), goroutines*iters)
	}
}
