package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// fixedLogger returns a logger with a deterministic clock and its sink.
func fixedLogger(level Level) (*Logger, *strings.Builder) {
	var sb strings.Builder
	l := NewLogger(&sb, level)
	l.now = func() time.Time { return time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC) }
	return l, &sb
}

func TestLoggerFormat(t *testing.T) {
	l, sb := fixedLogger(LevelInfo)
	l.Info("session opened", "site", "edge1", "frames", 3)
	got := sb.String()
	want := `ts=2026-08-05T12:00:00.000Z level=info msg="session opened" site=edge1 frames=3` + "\n"
	if got != want {
		t.Errorf("record = %q, want %q", got, want)
	}
}

func TestLoggerLevelsAndNamed(t *testing.T) {
	l, sb := fixedLogger(LevelWarn)
	l.Debug("hidden")
	l.Info("hidden")
	l.Named("server").Warn("shown", "n", 1)
	l.Error("also shown")
	out := sb.String()
	if strings.Contains(out, "hidden") {
		t.Errorf("sub-level records emitted:\n%s", out)
	}
	if !strings.Contains(out, "level=warn comp=server msg=shown n=1") {
		t.Errorf("named warn record missing:\n%s", out)
	}
	if !strings.Contains(out, "level=error") {
		t.Errorf("error record missing:\n%s", out)
	}

	// Nested Named chains components; SetLevel applies to the family.
	child := l.Named("a").Named("b")
	l.SetLevel(LevelDebug)
	child.Debug("deep")
	if !strings.Contains(sb.String(), "comp=a.b msg=deep") {
		t.Errorf("nested component missing:\n%s", sb.String())
	}
}

func TestLoggerQuotingAndOddKV(t *testing.T) {
	l, sb := fixedLogger(LevelInfo)
	l.Info("x", "k", `has "quotes" and spaces`, "dangling")
	out := sb.String()
	if !strings.Contains(out, `k="has \"quotes\" and spaces"`) {
		t.Errorf("quoting broken: %s", out)
	}
	if !strings.Contains(out, "dangling=MISSING") {
		t.Errorf("dangling key not surfaced: %s", out)
	}
}

func TestNilLoggerIsSafe(t *testing.T) {
	var l *Logger
	l.Info("nothing")
	l.Named("x").Error("still nothing")
	l.SetLevel(LevelDebug)
	if l.Enabled(LevelError) {
		t.Error("nil logger claims to be enabled")
	}
}

func TestParseLevel(t *testing.T) {
	for s, want := range map[string]Level{
		"debug": LevelDebug, "info": LevelInfo, "": LevelInfo,
		"WARN": LevelWarn, "warning": LevelWarn, "error": LevelError,
	} {
		got, err := ParseLevel(s)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("bogus level accepted")
	}
	if LevelDebug.String() != "debug" || Level(99).String() == "" {
		t.Error("Level.String broken")
	}
}

// TestLoggerConcurrent exercises interleaving-free writes under -race.
func TestLoggerConcurrent(t *testing.T) {
	var sb safeBuilder
	l := NewLogger(&sb, LevelInfo)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				l.Named("w").Info("tick", "g", g, "i", i)
			}
		}(g)
	}
	wg.Wait()
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 400 {
		t.Fatalf("%d lines, want 400", len(lines))
	}
	for _, line := range lines {
		if !strings.HasPrefix(line, "ts=") || !strings.Contains(line, "msg=tick") {
			t.Fatalf("mangled line: %q", line)
		}
	}
}

// safeBuilder is a strings.Builder guarded for concurrent writers (the
// logger serializes writes, but the final read still needs the lock).
type safeBuilder struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *safeBuilder) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *safeBuilder) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}
