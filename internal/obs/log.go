package obs

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Level orders log severities. The logger emits records at or above its
// configured level.
type Level int32

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String returns the lowercase level name.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	default:
		return fmt.Sprintf("level(%d)", int32(l))
	}
}

// ParseLevel maps a flag value ("debug", "info", "warn", "error") to a
// Level.
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return LevelDebug, nil
	case "info", "":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	default:
		return LevelInfo, fmt.Errorf("obs: unknown log level %q (want debug|info|warn|error)", s)
	}
}

// Logger is a minimal leveled structured logger emitting logfmt-style
// records:
//
//	ts=2026-08-05T12:00:00.000Z level=info comp=server msg="session opened" site=edge1
//
// Records are written with a single Write under a mutex, so lines from
// concurrent goroutines never interleave. A nil *Logger discards
// everything, so components can thread a logger unconditionally.
type Logger struct {
	w     io.Writer
	mu    *sync.Mutex
	level *atomic.Int32
	comp  string
	now   func() time.Time
}

// NewLogger builds a logger writing records at or above level to w.
func NewLogger(w io.Writer, level Level) *Logger {
	l := &Logger{w: w, mu: &sync.Mutex{}, level: &atomic.Int32{}, now: time.Now}
	l.level.Store(int32(level))
	return l
}

// Named returns a logger that stamps comp=name on every record, sharing
// the parent's sink and level.
func (l *Logger) Named(name string) *Logger {
	if l == nil {
		return nil
	}
	child := *l
	if child.comp != "" {
		name = child.comp + "." + name
	}
	child.comp = name
	return &child
}

// SetLevel changes the minimum emitted level at runtime.
func (l *Logger) SetLevel(level Level) {
	if l != nil {
		l.level.Store(int32(level))
	}
}

// Enabled reports whether records at the given level would be emitted.
func (l *Logger) Enabled(level Level) bool {
	return l != nil && level >= Level(l.level.Load())
}

// Log emits one record at the given level. kv alternates keys and
// values; values are rendered with %v and quoted when they contain
// spaces or quotes.
func (l *Logger) Log(level Level, msg string, kv ...any) {
	if !l.Enabled(level) {
		return
	}
	var b strings.Builder
	b.WriteString("ts=")
	b.WriteString(l.now().UTC().Format("2006-01-02T15:04:05.000Z"))
	b.WriteString(" level=")
	b.WriteString(level.String())
	if l.comp != "" {
		b.WriteString(" comp=")
		b.WriteString(l.comp)
	}
	b.WriteString(" msg=")
	b.WriteString(quoteValue(msg))
	for i := 0; i+1 < len(kv); i += 2 {
		b.WriteByte(' ')
		fmt.Fprintf(&b, "%v", kv[i])
		b.WriteByte('=')
		b.WriteString(quoteValue(fmt.Sprintf("%v", kv[i+1])))
	}
	if len(kv)%2 == 1 { // dangling key: surface rather than drop
		b.WriteByte(' ')
		fmt.Fprintf(&b, "%v", kv[len(kv)-1])
		b.WriteString("=MISSING")
	}
	b.WriteByte('\n')
	l.mu.Lock()
	io.WriteString(l.w, b.String())
	l.mu.Unlock()
}

// Debug emits a debug-level record.
func (l *Logger) Debug(msg string, kv ...any) { l.Log(LevelDebug, msg, kv...) }

// Info emits an info-level record.
func (l *Logger) Info(msg string, kv ...any) { l.Log(LevelInfo, msg, kv...) }

// Warn emits a warn-level record.
func (l *Logger) Warn(msg string, kv ...any) { l.Log(LevelWarn, msg, kv...) }

// Error emits an error-level record.
func (l *Logger) Error(msg string, kv ...any) { l.Log(LevelError, msg, kv...) }

// quoteValue renders a logfmt value, quoting only when needed.
func quoteValue(s string) string {
	if s == "" || strings.ContainsAny(s, " \t\n\"=") {
		return fmt.Sprintf("%q", s)
	}
	return s
}
