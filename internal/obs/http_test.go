package obs

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestMetricsHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("m_total", "metric").Add(5)
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	if !strings.Contains(string(body), "m_total 5\n") {
		t.Errorf("metrics body missing counter:\n%s", body)
	}

	resp, err = http.Get(srv.URL + "?format=json")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("json content type = %q", ct)
	}
	if !strings.Contains(string(body), `"m_total": 5`) {
		t.Errorf("json body missing counter:\n%s", body)
	}
}

func TestHealthHandler(t *testing.T) {
	var failing error
	srv := httptest.NewServer(HealthHandler(func() error { return failing }))
	defer srv.Close()

	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || strings.TrimSpace(string(body)) != "ok" {
		t.Errorf("healthy: status %d body %q", resp.StatusCode, body)
	}

	failing = errors.New("coordinator stopped")
	resp, err = http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable ||
		!strings.Contains(string(body), "coordinator stopped") {
		t.Errorf("unhealthy: status %d body %q", resp.StatusCode, body)
	}
}

func TestAdminMux(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("a_total", "").Inc()
	srv := httptest.NewServer(AdminMux(reg, nil))
	defer srv.Close()

	for path, want := range map[string]string{
		"/metrics":             "a_total 1",
		"/healthz":             "ok",
		"/metrics?format=json": `"a_total": 1`,
		// Runtime series are registered by AdminMux itself.
		"/metrics?": "process_goroutines",
	} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s: status %d", path, resp.StatusCode)
		}
		if !strings.Contains(string(body), want) {
			t.Errorf("%s: body missing %q:\n%s", path, want, body)
		}
	}

	// pprof index answers (the full profile endpoints are exercised by
	// net/http/pprof's own tests; here we only assert the mounting).
	resp, err := http.Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "goroutine") {
		t.Errorf("pprof index: status %d", resp.StatusCode)
	}
}
