package obs

import (
	"fmt"
	"net/http"
	"net/http/pprof"
	"runtime"
	"time"
)

// Handler returns an http.Handler serving the registry: Prometheus text
// by default, JSON when the request carries ?format=json or an
// application/json Accept header.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Query().Get("format") == "json" ||
			req.Header.Get("Accept") == "application/json" {
			w.Header().Set("Content-Type", "application/json")
			r.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// HealthHandler serves /healthz: 200 "ok" while check returns nil, 503
// with the error text otherwise. A nil check always reports healthy.
func HealthHandler(check func() error) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if check != nil {
			if err := check(); err != nil {
				w.WriteHeader(http.StatusServiceUnavailable)
				fmt.Fprintf(w, "unhealthy: %v\n", err)
				return
			}
		}
		fmt.Fprintln(w, "ok")
	})
}

// AdminMux assembles the admin HTTP surface every long-running command
// exposes behind -admin:
//
//	/metrics        registry export (Prometheus text; ?format=json)
//	/healthz        liveness (200 ok / 503 + reason)
//	/debug/pprof/*  the standard Go profiler endpoints
//
// It also registers the process-level runtime series (goroutines, heap
// bytes, GC count, uptime) on reg.
func AdminMux(reg *Registry, check func() error) *http.ServeMux {
	RegisterRuntimeMetrics(reg)
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	mux.Handle("/healthz", HealthHandler(check))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// RegisterRuntimeMetrics registers the process-level gauges shared by
// every admin surface.
func RegisterRuntimeMetrics(reg *Registry) {
	start := time.Now()
	reg.GaugeFunc("process_goroutines", "Live goroutines.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	reg.GaugeFunc("process_heap_alloc_bytes", "Bytes of live heap objects (runtime.MemStats.HeapAlloc).",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.HeapAlloc)
		})
	reg.CounterFunc("process_gc_cycles_total", "Completed GC cycles.",
		func() uint64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return uint64(ms.NumGC)
		})
	reg.GaugeFunc("process_uptime_seconds", "Seconds since the admin surface was assembled.",
		func() float64 { return time.Since(start).Seconds() })
}
