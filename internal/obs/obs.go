// Package obs is the stdlib-only observability layer of the repo: an
// atomic metrics registry (counters, gauges, histograms, and sampled
// function metrics) with Prometheus-text and JSON exporters, a
// lightweight leveled structured logger, and the admin HTTP surface
// (/metrics, /healthz, /debug/pprof/*) that cmd/sketchd mounts behind
// its -admin flag.
//
// The package exists because the live pieces grown around the paper's
// sketches — the sharded ingest engine, the streaming wire sessions,
// and the coordinator's standing watch queries — are long-running
// concurrent systems whose health (throughput, queue depth, drop
// counts, estimator yield) must be visible without a debugger. The
// DataSketches framework line of work makes the same point: sketch
// systems live or die in production by their observable accuracy and
// retained-observation counters.
//
// Design constraints, in order:
//
//   - Hot-path cost is one atomic add per event. Instruments are
//     resolved once (at component construction) and then touched
//     lock-free; the registry lock is only taken at registration and
//     export time.
//   - Everything is optional. Instrument constructors accept a nil
//     *Registry and return fully functional (just unexported)
//     instruments, so instrumented code never branches on "is
//     observability on".
//   - No dependencies. The Prometheus text exposition format is simple
//     enough to emit by hand, and that keeps the module stdlib-only.
//
// Series names may carry Prometheus-style labels inline, e.g.
// obs.Label("ingest_worker_batches_total", "worker", "3") returns
// `ingest_worker_batches_total{worker="3"}`; the exporter groups series
// sharing a base name under one # HELP/# TYPE header.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. The zero value is
// usable; counters handed out by a Registry are additionally exported.
type Counter struct {
	v atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a metric that can go up and down. The zero value is usable.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by d (negative d decreases it).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// DefBuckets are the default histogram bucket upper bounds, in seconds,
// spanning microsecond batch hand-offs to multi-second stalls.
var DefBuckets = []float64{
	0.000025, 0.0001, 0.0005, 0.001, 0.005, 0.025, 0.1, 0.5, 1, 5, 10,
}

// Histogram counts observations into cumulative buckets, Prometheus
// style. Construct via Registry.Histogram (or NewHistogram for an
// unregistered one); the zero value is not usable.
type Histogram struct {
	bounds []float64 // sorted upper bounds; +Inf is implicit
	counts []atomic.Uint64
	sum    Gauge // CAS-accumulated sum of observations
	count  atomic.Uint64
}

// NewHistogram builds an unregistered histogram with the given upper
// bounds (nil selects DefBuckets).
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// ObserveSince records the seconds elapsed since start — the idiom for
// latency histograms.
func (h *Histogram) ObserveSince(start time.Time) {
	h.Observe(time.Since(start).Seconds())
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

// snapshot returns cumulative bucket counts aligned with h.bounds plus
// the +Inf bucket, the total count, and the sum.
func (h *Histogram) snapshot() (cum []uint64, count uint64, sum float64) {
	cum = make([]uint64, len(h.counts))
	var run uint64
	for i := range h.counts {
		run += h.counts[i].Load()
		cum[i] = run
	}
	return cum, h.count.Load(), h.sum.Value()
}

// Registry is a named collection of instruments with deterministic
// export order. All methods are safe for concurrent use, and all
// instrument constructors are get-or-create: asking twice for the same
// series returns the same instrument, so components created and torn
// down repeatedly keep accumulating into one series. Function-backed
// series (CounterFunc/GaugeFunc) instead overwrite on re-registration,
// so the newest component owns the sample.
//
// A nil *Registry is valid everywhere and hands out working,
// unregistered instruments.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	cfns     map[string]func() uint64
	gfns     map[string]func() float64
	help     map[string]string // base name -> help text
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		cfns:     make(map[string]func() uint64),
		gfns:     make(map[string]func() float64),
		help:     make(map[string]string),
	}
}

// Label renders a series name with inline Prometheus labels:
// Label("x_total", "worker", "3") == `x_total{worker="3"}`. kv pairs
// alternate key, value.
func Label(name string, kv ...string) string {
	if len(kv) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", kv[i], kv[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

// baseName strips an inline label set from a series name.
func baseName(series string) string {
	if i := strings.IndexByte(series, '{'); i >= 0 {
		return series[:i]
	}
	return series
}

func (r *Registry) setHelp(series, help string) {
	if base := baseName(series); help != "" && r.help[base] == "" {
		r.help[base] = help
	}
}

// Counter returns the registered counter for the series, creating it on
// first use. help documents the base name (first non-empty wins).
func (r *Registry) Counter(series, help string) *Counter {
	if r == nil {
		return &Counter{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[series]
	if !ok {
		c = &Counter{}
		r.counters[series] = c
	}
	r.setHelp(series, help)
	return c
}

// Gauge returns the registered gauge for the series, creating it on
// first use.
func (r *Registry) Gauge(series, help string) *Gauge {
	if r == nil {
		return &Gauge{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[series]
	if !ok {
		g = &Gauge{}
		r.gauges[series] = g
	}
	r.setHelp(series, help)
	return g
}

// Histogram returns the registered histogram for the series, creating
// it with the given bounds (nil selects DefBuckets) on first use.
func (r *Registry) Histogram(series, help string, bounds []float64) *Histogram {
	if r == nil {
		return NewHistogram(bounds)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[series]
	if !ok {
		h = NewHistogram(bounds)
		r.hists[series] = h
	}
	r.setHelp(series, help)
	return h
}

// CounterFunc registers (or replaces) a counter series sampled from fn
// at export time — for monotonic values a component already maintains.
func (r *Registry) CounterFunc(series, help string, fn func() uint64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.cfns[series] = fn
	r.setHelp(series, help)
}

// GaugeFunc registers (or replaces) a gauge series sampled from fn at
// export time — for instantaneous values like queue depths.
func (r *Registry) GaugeFunc(series, help string, fn func() float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gfns[series] = fn
	r.setHelp(series, help)
}

// series is one exported sample, resolved under the registry lock.
type series struct {
	name string
	typ  string // counter | gauge | histogram
	val  float64
	hist *Histogram
}

// collect resolves every series (sampling the function metrics) in
// sorted order, grouped so equal base names are adjacent.
func (r *Registry) collect() ([]series, map[string]string) {
	r.mu.RLock()
	out := make([]series, 0, len(r.counters)+len(r.gauges)+len(r.hists)+len(r.cfns)+len(r.gfns))
	for name, c := range r.counters {
		out = append(out, series{name: name, typ: "counter", val: float64(c.Value())})
	}
	for name, fn := range r.cfns {
		out = append(out, series{name: name, typ: "counter", val: float64(fn())})
	}
	for name, g := range r.gauges {
		out = append(out, series{name: name, typ: "gauge", val: g.Value()})
	}
	for name, fn := range r.gfns {
		out = append(out, series{name: name, typ: "gauge", val: fn()})
	}
	for name, h := range r.hists {
		out = append(out, series{name: name, typ: "histogram", hist: h})
	}
	help := make(map[string]string, len(r.help))
	for k, v := range r.help {
		help[k] = v
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out, help
}

// WritePrometheus writes every series in the Prometheus text exposition
// format (version 0.0.4), sorted by series name, with # HELP and
// # TYPE headers emitted once per base name.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	all, help := r.collect()
	lastBase := ""
	for _, s := range all {
		base := baseName(s.name)
		if base != lastBase {
			if h := help[base]; h != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", base, h); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", base, s.typ); err != nil {
				return err
			}
			lastBase = base
		}
		if s.hist != nil {
			if err := writePromHistogram(w, s.name, s.hist); err != nil {
				return err
			}
			continue
		}
		if _, err := fmt.Fprintf(w, "%s %s\n", s.name, formatFloat(s.val)); err != nil {
			return err
		}
	}
	return nil
}

// writePromHistogram renders one histogram as cumulative _bucket series
// plus _sum and _count. Inline labels on the series name are merged
// with the le label.
func writePromHistogram(w io.Writer, name string, h *Histogram) error {
	cum, count, sum := h.snapshot()
	base, labels := name, ""
	if i := strings.IndexByte(name, '{'); i >= 0 {
		base, labels = name[:i], name[i+1:len(name)-1]+","
	}
	for i, bound := range h.bounds {
		if _, err := fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n",
			base, labels, formatFloat(bound), cum[i]); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", base, labels, cum[len(cum)-1]); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum{%s} %s\n", base, strings.TrimSuffix(labels, ","), formatFloat(sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count{%s} %d\n", base, strings.TrimSuffix(labels, ","), count)
	return err
}

func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// jsonHistogram is the JSON shape of one histogram.
type jsonHistogram struct {
	Count   uint64            `json:"count"`
	Sum     float64           `json:"sum"`
	Buckets map[string]uint64 `json:"buckets"` // upper bound -> cumulative count
}

// WriteJSON writes every series as one JSON object: scalar series map
// name -> value; histograms map name -> {count, sum, buckets}.
func (r *Registry) WriteJSON(w io.Writer) error {
	if r == nil {
		_, err := io.WriteString(w, "{}\n")
		return err
	}
	all, _ := r.collect()
	doc := make(map[string]any, len(all))
	for _, s := range all {
		if s.hist != nil {
			cum, count, sum := s.hist.snapshot()
			buckets := make(map[string]uint64, len(cum))
			for i, bound := range s.hist.bounds {
				buckets[formatFloat(bound)] = cum[i]
			}
			buckets["+Inf"] = cum[len(cum)-1]
			doc[s.name] = jsonHistogram{Count: count, Sum: sum, Buckets: buckets}
			continue
		}
		doc[s.name] = s.val
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
