package streamio

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead hardens the update-stream parser: arbitrary text must
// either parse (and then round-trip through Write/Read) or be rejected
// with an error — never panic.
func FuzzRead(f *testing.F) {
	f.Add("A 1 1\nB 2 -3\n")
	f.Add("# comment\n\nstream 18446744073709551615 9223372036854775807\n")
	f.Add("x y z")
	f.Add("")
	f.Fuzz(func(t *testing.T, input string) {
		ups, err := Read(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := Write(&buf, ups); err != nil {
			t.Fatalf("parsed updates do not re-serialize: %v", err)
		}
		again, err := Read(&buf)
		if err != nil {
			t.Fatalf("re-serialized updates rejected: %v", err)
		}
		if len(again) != len(ups) {
			t.Fatalf("round trip changed update count: %d → %d", len(ups), len(again))
		}
		for i := range ups {
			if ups[i] != again[i] {
				t.Fatalf("round trip changed update %d: %+v → %+v", i, ups[i], again[i])
			}
		}
	})
}
