package streamio

import (
	"bytes"
	"strings"
	"testing"

	"setsketch/internal/datagen"
)

func TestRoundTrip(t *testing.T) {
	in := []datagen.Update{
		{Stream: "A", Elem: 1, Delta: 1},
		{Stream: "B", Elem: 18446744073709551615, Delta: -3},
		{Stream: "r_1", Elem: 42, Delta: 7},
	}
	var buf bytes.Buffer
	if err := Write(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("got %d updates, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Errorf("update %d: %+v != %+v", i, out[i], in[i])
		}
	}
}

func TestReadSkipsCommentsAndBlanks(t *testing.T) {
	src := "# header\n\nA 1 1\n   \n# trailing\nB 2 -1\n"
	out, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0].Stream != "A" || out[1].Delta != -1 {
		t.Fatalf("parsed %+v", out)
	}
}

func TestReadErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"A 1", "line 1"},
		{"A 1 1 extra", "line 1"},
		{"A x 1", "bad element"},
		{"A 1 y", "bad delta"},
		{"A -5 1", "bad element"}, // negative element
		{"A 1 0", "zero delta"},
		{"ok 1 1\nbad 2", "line 2"},
	}
	for _, c := range cases {
		_, err := Read(strings.NewReader(c.src))
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Read(%q) err = %v, want containing %q", c.src, err, c.want)
		}
	}
}

func TestReadEmpty(t *testing.T) {
	out, err := Read(strings.NewReader(""))
	if err != nil || len(out) != 0 {
		t.Fatalf("empty input: %v, %v", out, err)
	}
}
