package streamio

import (
	"bytes"
	"strings"
	"testing"

	"setsketch/internal/datagen"
)

func TestRoundTrip(t *testing.T) {
	in := []datagen.Update{
		{Stream: "A", Elem: 1, Delta: 1},
		{Stream: "B", Elem: 18446744073709551615, Delta: -3},
		{Stream: "r_1", Elem: 42, Delta: 7},
	}
	var buf bytes.Buffer
	if err := Write(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("got %d updates, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Errorf("update %d: %+v != %+v", i, out[i], in[i])
		}
	}
}

func TestReadSkipsCommentsAndBlanks(t *testing.T) {
	src := "# header\n\nA 1 1\n   \n# trailing\nB 2 -1\n"
	out, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0].Stream != "A" || out[1].Delta != -1 {
		t.Fatalf("parsed %+v", out)
	}
}

func TestReadErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"A 1", "line 1"},
		{"A 1 1 extra", "line 1"},
		{"A x 1", "bad element"},
		{"A 1 y", "bad delta"},
		{"A -5 1", "bad element"}, // negative element
		{"A 1 0", "zero delta"},
		{"ok 1 1\nbad 2", "line 2"},
	}
	for _, c := range cases {
		_, err := Read(strings.NewReader(c.src))
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Read(%q) err = %v, want containing %q", c.src, err, c.want)
		}
	}
}

// TestScannerIncremental: the iterator yields exactly the updates Read
// returns, in order, with line numbers pointing at the source lines.
func TestScannerIncremental(t *testing.T) {
	src := "# header\nA 1 1\n\nB 2 -1\n# mid\nC 3 5\n"
	want, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	sc := NewScanner(strings.NewReader(src))
	var got []datagen.Update
	var lines []int
	for sc.Scan() {
		got = append(got, sc.Update())
		lines = append(lines, sc.Line())
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("scanner yielded %d updates, Read %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("update %d: %+v != %+v", i, got[i], want[i])
		}
	}
	wantLines := []int{2, 4, 6}
	for i, l := range lines {
		if l != wantLines[i] {
			t.Errorf("update %d reported line %d, want %d", i, l, wantLines[i])
		}
	}
	// Scan after exhaustion stays false without error.
	if sc.Scan() {
		t.Error("Scan returned true after EOF")
	}
}

// TestScannerStopsAtError: the iterator yields the good prefix, then
// sticks at the first malformed line.
func TestScannerStopsAtError(t *testing.T) {
	sc := NewScanner(strings.NewReader("A 1 1\nB 2 2\nbroken line here extra\nC 3 3\n"))
	n := 0
	for sc.Scan() {
		n++
	}
	if n != 2 {
		t.Errorf("scanned %d updates before error, want 2", n)
	}
	if err := sc.Err(); err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Errorf("Err = %v, want line 3 parse error", err)
	}
	if sc.Scan() {
		t.Error("Scan resumed after error")
	}
}

func TestReadEmpty(t *testing.T) {
	out, err := Read(strings.NewReader(""))
	if err != nil || len(out) != 0 {
		t.Fatalf("empty input: %v, %v", out, err)
	}
}
