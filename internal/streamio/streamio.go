// Package streamio reads and writes update streams in a plain-text
// format shared by the command-line tools:
//
//	# comment
//	<stream> <element> <delta>
//
// one update triple ⟨i, e, ±v⟩ per line, whitespace-separated. The
// format is deliberately trivial so real systems can pipe their logs
// (NetFlow exports, transaction journals) straight into the tools.
package streamio

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"setsketch/internal/datagen"
)

// Write renders updates one per line.
func Write(w io.Writer, updates []datagen.Update) error {
	bw := bufio.NewWriter(w)
	for _, u := range updates {
		if _, err := fmt.Fprintf(bw, "%s %d %d\n", u.Stream, u.Elem, u.Delta); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses an update stream. Blank lines and lines starting with '#'
// are skipped. Errors identify the offending line number.
func Read(r io.Reader) ([]datagen.Update, error) {
	var out []datagen.Update
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return nil, fmt.Errorf("streamio: line %d: want 3 fields, got %d", lineNo, len(fields))
		}
		elem, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("streamio: line %d: bad element %q: %v", lineNo, fields[1], err)
		}
		delta, err := strconv.ParseInt(fields[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("streamio: line %d: bad delta %q: %v", lineNo, fields[2], err)
		}
		if delta == 0 {
			return nil, fmt.Errorf("streamio: line %d: zero delta", lineNo)
		}
		out = append(out, datagen.Update{Stream: fields[0], Elem: elem, Delta: delta})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
