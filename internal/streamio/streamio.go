// Package streamio reads and writes update streams in a plain-text
// format shared by the command-line tools:
//
//	# comment
//	<stream> <element> <delta>
//
// one update triple ⟨i, e, ±v⟩ per line, whitespace-separated. The
// format is deliberately trivial so real systems can pipe their logs
// (NetFlow exports, transaction journals) straight into the tools.
package streamio

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"setsketch/internal/datagen"
)

// Write renders updates one per line.
func Write(w io.Writer, updates []datagen.Update) error {
	bw := bufio.NewWriter(w)
	for _, u := range updates {
		if _, err := fmt.Fprintf(bw, "%s %d %d\n", u.Stream, u.Elem, u.Delta); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Scanner yields the updates of a stream one at a time, so arbitrarily
// long update files (or endless pipes) are processed in constant
// memory — the iterator behind live ingestion. Usage follows
// bufio.Scanner:
//
//	sc := streamio.NewScanner(r)
//	for sc.Scan() {
//		u := sc.Update()
//		...
//	}
//	if err := sc.Err(); err != nil { ... }
type Scanner struct {
	sc     *bufio.Scanner
	lineNo int
	u      datagen.Update
	err    error
}

// NewScanner wraps r for incremental update parsing.
func NewScanner(r io.Reader) *Scanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	return &Scanner{sc: sc}
}

// Scan advances to the next update, skipping blank lines and '#'
// comments. It returns false at end of input or on the first malformed
// line; Err distinguishes the two.
func (s *Scanner) Scan() bool {
	if s.err != nil {
		return false
	}
	for s.sc.Scan() {
		s.lineNo++
		line := strings.TrimSpace(s.sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			s.err = fmt.Errorf("streamio: line %d: want 3 fields, got %d", s.lineNo, len(fields))
			return false
		}
		elem, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			s.err = fmt.Errorf("streamio: line %d: bad element %q: %v", s.lineNo, fields[1], err)
			return false
		}
		delta, err := strconv.ParseInt(fields[2], 10, 64)
		if err != nil {
			s.err = fmt.Errorf("streamio: line %d: bad delta %q: %v", s.lineNo, fields[2], err)
			return false
		}
		if delta == 0 {
			s.err = fmt.Errorf("streamio: line %d: zero delta", s.lineNo)
			return false
		}
		s.u = datagen.Update{Stream: fields[0], Elem: elem, Delta: delta}
		return true
	}
	s.err = s.sc.Err()
	return false
}

// Update returns the update parsed by the last successful Scan.
func (s *Scanner) Update() datagen.Update { return s.u }

// Line returns the input line number of the last update, for error
// reporting by callers.
func (s *Scanner) Line() int { return s.lineNo }

// Err returns the first parse or read error, or nil at clean EOF.
func (s *Scanner) Err() error { return s.err }

// Read parses a whole update stream into memory via Scanner. Blank
// lines and lines starting with '#' are skipped. Errors identify the
// offending line number. Prefer Scanner for large inputs.
func Read(r io.Reader) ([]datagen.Update, error) {
	var out []datagen.Update
	sc := NewScanner(r)
	for sc.Scan() {
		out = append(out, sc.Update())
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
