// Package streamio reads and writes update streams in a plain-text
// format shared by the command-line tools:
//
//	# comment
//	<stream> <element> <delta>
//
// one update triple ⟨i, e, ±v⟩ per line, whitespace-separated. The
// format is deliberately trivial so real systems can pipe their logs
// (NetFlow exports, transaction journals) straight into the tools.
package streamio

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"strconv"

	"setsketch/internal/datagen"
)

// AppendUpdate renders one update line into buf — the allocation-free
// formatter behind Write, for callers (load generators, bench tools)
// that stream millions of lines through one scratch buffer.
func AppendUpdate(buf []byte, u datagen.Update) []byte {
	buf = append(buf, u.Stream...)
	buf = append(buf, ' ')
	buf = strconv.AppendUint(buf, u.Elem, 10)
	buf = append(buf, ' ')
	buf = strconv.AppendInt(buf, u.Delta, 10)
	return append(buf, '\n')
}

// Write renders updates one per line.
func Write(w io.Writer, updates []datagen.Update) error {
	bw := bufio.NewWriter(w)
	var line []byte
	for _, u := range updates {
		line = AppendUpdate(line[:0], u)
		if _, err := bw.Write(line); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Scanner yields the updates of a stream one at a time, so arbitrarily
// long update files (or endless pipes) are processed in constant
// memory — the iterator behind live ingestion. Usage follows
// bufio.Scanner:
//
//	sc := streamio.NewScanner(r)
//	for sc.Scan() {
//		u := sc.Update()
//		...
//	}
//	if err := sc.Err(); err != nil { ... }
//
// The parse loop works on the scanner's byte view of each line and
// interns stream names, so scanning a long stream with a bounded set of
// stream names is allocation-free at steady state — the iterator keeps
// up with the batch kernel instead of feeding the garbage collector.
type Scanner struct {
	sc     *bufio.Scanner
	lineNo int
	u      datagen.Update
	err    error
	names  map[string]string // interned stream names
}

// NewScanner wraps r for incremental update parsing.
func NewScanner(r io.Reader) *Scanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	return &Scanner{sc: sc, names: make(map[string]string)}
}

// splitField returns the first whitespace-delimited field of b and the
// unconsumed remainder.
func splitField(b []byte) (field, rest []byte) {
	i := 0
	for i < len(b) && (b[i] == ' ' || b[i] == '\t' || b[i] == '\r') {
		i++
	}
	j := i
	for j < len(b) && b[j] != ' ' && b[j] != '\t' && b[j] != '\r' {
		j++
	}
	return b[i:j], b[j:]
}

// parseUint parses a decimal uint64 from bytes without the string
// conversion strconv would force.
func parseUint(b []byte) (uint64, bool) {
	if len(b) == 0 {
		return 0, false
	}
	var v uint64
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, false
		}
		d := uint64(c - '0')
		if v > (^uint64(0)-d)/10 {
			return 0, false
		}
		v = v*10 + d
	}
	return v, true
}

// parseInt is parseUint with an optional sign.
func parseInt(b []byte) (int64, bool) {
	neg := false
	if len(b) > 0 && (b[0] == '+' || b[0] == '-') {
		neg = b[0] == '-'
		b = b[1:]
	}
	v, ok := parseUint(b)
	if !ok {
		return 0, false
	}
	if neg {
		if v > 1<<63 {
			return 0, false
		}
		return -int64(v-1) - 1, true
	}
	if v > 1<<63-1 {
		return 0, false
	}
	return int64(v), true
}

// intern returns the canonical string for a stream name, allocating it
// only the first time the name is seen.
func (s *Scanner) intern(b []byte) string {
	if name, ok := s.names[string(b)]; ok {
		return name
	}
	name := string(b)
	s.names[name] = name
	return name
}

// Scan advances to the next update, skipping blank lines and '#'
// comments. It returns false at end of input or on the first malformed
// line; Err distinguishes the two.
func (s *Scanner) Scan() bool {
	if s.err != nil {
		return false
	}
	for s.sc.Scan() {
		s.lineNo++
		line := bytes.TrimSpace(s.sc.Bytes())
		if len(line) == 0 || line[0] == '#' {
			continue
		}
		name, rest := splitField(line)
		elemF, rest := splitField(rest)
		deltaF, rest := splitField(rest)
		if extra, _ := splitField(rest); len(name) == 0 || len(elemF) == 0 || len(deltaF) == 0 || len(extra) != 0 {
			n := 0
			for f, r := splitField(line); len(f) > 0; f, r = splitField(r) {
				n++
			}
			s.err = fmt.Errorf("streamio: line %d: want 3 fields, got %d", s.lineNo, n)
			return false
		}
		elem, ok := parseUint(elemF)
		if !ok {
			s.err = fmt.Errorf("streamio: line %d: bad element %q", s.lineNo, elemF)
			return false
		}
		delta, ok := parseInt(deltaF)
		if !ok {
			s.err = fmt.Errorf("streamio: line %d: bad delta %q", s.lineNo, deltaF)
			return false
		}
		if delta == 0 {
			s.err = fmt.Errorf("streamio: line %d: zero delta", s.lineNo)
			return false
		}
		s.u = datagen.Update{Stream: s.intern(name), Elem: elem, Delta: delta}
		return true
	}
	s.err = s.sc.Err()
	return false
}

// Update returns the update parsed by the last successful Scan.
func (s *Scanner) Update() datagen.Update { return s.u }

// Line returns the input line number of the last update, for error
// reporting by callers.
func (s *Scanner) Line() int { return s.lineNo }

// Err returns the first parse or read error, or nil at clean EOF.
func (s *Scanner) Err() error { return s.err }

// Read parses a whole update stream into memory via Scanner. Blank
// lines and lines starting with '#' are skipped. Errors identify the
// offending line number. Prefer Scanner for large inputs.
func Read(r io.Reader) ([]datagen.Update, error) {
	var out []datagen.Update
	sc := NewScanner(r)
	for sc.Scan() {
		out = append(out, sc.Update())
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
