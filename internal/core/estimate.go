package core

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"setsketch/internal/expr"
)

// This file implements the paper's estimators:
//
//   - EstimateUnion / EstimateUnionMulti — procedure SetUnionEstimator
//     (Fig. 5): scan first-level bucket indices for the first whose
//     non-empty fraction drops below (1+ε)/8, then invert the occupancy
//     probability p = 1 − (1 − 1/R)^u.
//   - EstimateDifference / EstimateIntersection — procedures
//     SetDifferenceEstimator / SetIntersectionEstimator (Fig. 6, §3.5):
//     pick level j = ⌈log₂(β·û/(1−ε))⌉ with β = 2; count, among copies
//     whose level-j union bucket is a singleton, the fraction that
//     witness the operator; scale by û.
//   - EstimateExpression — the general §4 estimator: the same witness
//     scheme with the witness condition replaced by the Boolean mapping
//     B(E) over per-stream bucket-occupancy flags.

// Beta is the paper's β constant for witness-level selection; §3.4
// derives β = 2 as the value minimizing the required number of sketch
// copies (together with ε₁ = (√5−1)/2).
const Beta = 2.0

// ErrNoObservations is returned by witness-based estimators when none
// of the sketch copies produced a valid 0/1 observation (no copy had a
// singleton union bucket at the chosen level). With r = Θ(log(1/δ))
// copies this happens with probability at most δ; callers should add
// copies or treat the expression cardinality as too small to resolve.
var ErrNoObservations = errors.New("core: no sketch copy yielded a valid witness observation; increase the number of copies")

// ErrMissingStream is returned by EstimateExpression when the
// expression references a stream with no registered family.
type ErrMissingStream struct{ Name string }

func (e *ErrMissingStream) Error() string {
	return fmt.Sprintf("core: expression references stream %q with no registered synopsis", e.Name)
}

// Estimate is a cardinality estimate with its diagnostics.
type Estimate struct {
	// Value is the estimated cardinality |E|.
	Value float64
	// Level is the first-level bucket index the estimate was read from.
	Level int
	// Copies is the number of sketch copies r consulted.
	Copies int
	// Valid is the number of valid 0/1 witness observations (r' in the
	// paper's analysis); equal to Copies for the union estimator.
	Valid int
	// Witnesses is the number of positive witness observations.
	Witnesses int
	// Union is the union-cardinality estimate û the witness estimators
	// scale by; zero for the direct union estimator.
	Union float64
	// StdError is an approximate standard error of Value, when the
	// estimator can compute one (the ML union estimator via observed
	// Fisher information; witness estimators by combining binomial
	// witness noise with the û uncertainty). Zero when unavailable
	// (the paper-literal single-level estimators do not report one).
	StdError float64
}

// occupancy abstracts "bucket b is non-empty for the union of the
// estimator's input streams" over one sketch copy index.
type occupancy func(copy, bucket int) bool

// estimateUnionFrom runs the Fig. 5 level scan over r copies with the
// given occupancy oracle.
func estimateUnionFrom(cfg Config, r int, occ occupancy, eps float64) (Estimate, error) {
	if eps <= 0 || eps >= 1 {
		return Estimate{}, fmt.Errorf("core: relative accuracy ε = %v out of (0, 1)", eps)
	}
	f := (1 + eps) * float64(r) / 8
	index := 0
	count := 0
	for ; index < cfg.Buckets; index++ {
		count = 0
		for i := 0; i < r; i++ {
			if occ(i, index) {
				count++
			}
		}
		if float64(count) <= f {
			break // first index with count ≤ f (Fig. 5 step 9)
		}
	}
	Stats.UnionEstimates.Add(1)
	Stats.UnionLevelScans.Add(uint64(index + 1))
	if index == cfg.Buckets {
		// Cannot happen for domains within the sketch width: the
		// occupancy probability at the top level is ≈ u/2^Buckets < f/r.
		return Estimate{}, fmt.Errorf("core: union estimator exhausted all %d levels", cfg.Buckets)
	}
	est := Estimate{Level: index, Copies: r, Valid: r, Witnesses: count}
	if count == 0 {
		// No copy saw a live element at this level; with index = 0 the
		// union is empty, otherwise p̂ = 0 still inverts to 0, which is
		// the natural floor of the Fig. 5 formula.
		est.Value = 0
		return est, nil
	}
	p := float64(count) / float64(r)
	// R = 2^(index+1); Pr[element maps to bucket index] = 1/R.
	invR := math.Pow(2, -float64(index+1))
	// u = log(1−p̂)/log(1−1/R) (Fig. 5 step 13); Log1p keeps precision
	// for the deep levels where 1/R underflows ordinary Log(1−x).
	est.Value = math.Log1p(-p) / math.Log1p(-invR)
	return est, nil
}

// EstimateUnion estimates |A ∪ B| from aligned sketch families
// (procedure SetUnionEstimator, Fig. 5). Only the first-level bucket
// totals are consulted — as the paper notes, set union does not need
// the second-level structure.
func EstimateUnion(a, b *Family, eps float64) (Estimate, error) {
	return EstimateUnionMulti([]*Family{a, b}, eps)
}

// EstimateUnionMulti estimates |∪_i A_i| over any number of aligned
// families. It is both the n-ary union estimator and the source of the
// û estimate that the witness-based estimators scale by.
func EstimateUnionMulti(fams []*Family, eps float64) (Estimate, error) {
	if len(fams) == 0 {
		return Estimate{}, errors.New("core: union estimator needs at least one family")
	}
	r, err := alignedCopies(fams)
	if err != nil {
		return Estimate{}, err
	}
	cfg := fams[0].cfg
	occ := func(i, b int) bool {
		for _, f := range fams {
			if f.copies[i].totals[b] != 0 {
				return true
			}
		}
		return false
	}
	return estimateUnionFrom(cfg, r, occ, eps)
}

// EstimateDistinct estimates |A| for a single stream — the classic
// distinct-count problem — by running the union estimator on one
// family. Unlike bitmap-based FM sketches, it remains exact under
// deletions of the underlying multi-set.
func EstimateDistinct(a *Family, eps float64) (Estimate, error) {
	return EstimateUnionMulti([]*Family{a}, eps)
}

// alignedCopies verifies that all families are mutually aligned and
// returns the usable copy count (the minimum across families).
func alignedCopies(fams []*Family) (int, error) {
	first := fams[0]
	r := first.Copies()
	for _, f := range fams[1:] {
		if !first.Aligned(f) {
			return 0, ErrNotAligned
		}
		if f.Copies() < r {
			r = f.Copies()
		}
	}
	if r < 1 {
		return 0, errors.New("core: family has no copies")
	}
	return r, nil
}

// AtomicDiff is procedure AtomicDiffEstimator (Fig. 6) for one sketch
// copy pair at the chosen level: it returns (0, false) when the level-j
// union bucket is not a singleton (the paper's noEstimate flag), and
// otherwise (1, true) when the singleton witnesses A − B — bucket j a
// non-empty singleton for A and empty for B — or (0, true) when it does
// not.
func AtomicDiff(xa, xb *Sketch, level int) (estimate int, valid bool) {
	if !SingletonUnionBucket(xa, xb, level) {
		return 0, false
	}
	if xa.SingletonBucket(level) && xb.totals[level] == 0 {
		return 1, true
	}
	return 0, true
}

// AtomicIntersect is the AtomicIntersectEstimator variant (§3.5): the
// witness condition becomes "singleton in both A and B" (conditioned on
// the union bucket being a singleton, both singletons are necessarily
// the same element).
func AtomicIntersect(xa, xb *Sketch, level int) (estimate int, valid bool) {
	if !SingletonUnionBucket(xa, xb, level) {
		return 0, false
	}
	if xa.SingletonBucket(level) && xb.SingletonBucket(level) {
		return 1, true
	}
	return 0, true
}

// EstimateDifference estimates |A − B| (procedure SetDifferenceEstimator,
// Fig. 6). The union estimate û it needs is computed internally from
// the same families at accuracy ε/3, per §3.4.
func EstimateDifference(a, b *Family, eps float64) (Estimate, error) {
	return estimateWitnessBinary(a, b, eps, AtomicDiff)
}

// EstimateIntersection estimates |A ∩ B| (procedure
// SetIntersectionEstimator, §3.5).
func EstimateIntersection(a, b *Family, eps float64) (Estimate, error) {
	return estimateWitnessBinary(a, b, eps, AtomicIntersect)
}

func estimateWitnessBinary(a, b *Family, eps float64, atomic func(xa, xb *Sketch, level int) (int, bool)) (Estimate, error) {
	if eps <= 0 || eps >= 1 {
		return Estimate{}, fmt.Errorf("core: relative accuracy ε = %v out of (0, 1)", eps)
	}
	r, err := alignedCopies([]*Family{a, b})
	if err != nil {
		return Estimate{}, err
	}
	u, err := EstimateUnion(a, b, eps/3)
	if err != nil {
		return Estimate{}, err
	}
	est := Estimate{Copies: r, Union: u.Value}
	if u.Value == 0 {
		return est, nil // empty union ⇒ empty difference/intersection
	}
	level := chooseWitnessLevel(a.cfg, u.Value, Beta, eps)
	est.Level = level
	for i := 0; i < r; i++ {
		if obs, ok := atomic(a.copies[i], b.copies[i], level); ok {
			est.Valid++
			est.Witnesses += obs
		}
	}
	recordWitnessStats(uint64(r), est)
	if est.Valid == 0 {
		return est, ErrNoObservations
	}
	// |A op B| ≈ p̂ · û with p̂ the fraction of valid observations that
	// witnessed the operator (Fig. 6 step 8).
	est.Value = float64(est.Witnesses) / float64(est.Valid) * u.Value
	return est, nil
}

// exprOracle abstracts the per-copy, per-bucket observations the
// witness estimators read, so the same estimation logic runs over
// counter synopses (general update streams) and bit synopses (the
// paper's insert-only experimental variant, §5.2). Oracles own their
// scratch state (the flag map of the interpreted Boolean mapping), so
// the estimator itself allocates nothing per call.
type exprOracle interface {
	config() Config
	copies() int
	// occupied reports whether stream k's copy-i bucket b is non-empty.
	occupied(k, i, b int) bool
	// unionOccupied reports whether any stream's copy-i bucket b is
	// non-empty.
	unionOccupied(i, b int) bool
	// unionSingleton reports whether the union of all streams' copy-i
	// bucket-b contents is a single distinct element.
	unionSingleton(i, b int) bool
	// flags returns the oracle's reusable per-stream flag scratch map.
	flags() map[string]bool
}

// viewOracle reads every observation through the families' packed
// query views (queryview.go): occupied is a one-word bit test and
// unionSingleton is an OR of wps signature words plus the packed pair
// test — the production oracle behind counterOracle and bitOracle.
type viewOracle struct {
	cfg     Config
	r       int
	views   []*familyView
	scratch map[string]bool
}

func (o *viewOracle) config() Config         { return o.cfg }
func (o *viewOracle) copies() int            { return o.r }
func (o *viewOracle) flags() map[string]bool { return o.scratch }
func (o *viewOracle) occupied(k, i, b int) bool {
	return o.views[k].occ[i]>>uint(b)&1 == 1
}
func (o *viewOracle) unionOccupied(i, b int) bool {
	for _, v := range o.views {
		if v.occ[i]>>uint(b)&1 == 1 {
			return true
		}
	}
	return false
}
func (o *viewOracle) unionSingleton(i, b int) bool {
	if !o.unionOccupied(i, b) {
		return false
	}
	wps := o.views[0].wps
	base := (i*o.cfg.Buckets + b) * wps
	for w := 0; w < wps; w++ {
		var or uint64
		for _, v := range o.views {
			or |= v.sig[base+w]
		}
		if sigCollision(or) {
			return false
		}
	}
	return true
}

// counterOracle adapts aligned counter families through their views.
type counterOracle struct{ viewOracle }

func newCounterOracle(fams []*Family, r int, streams int) *counterOracle {
	o := &counterOracle{viewOracle{
		cfg:     fams[0].cfg,
		r:       r,
		views:   make([]*familyView, len(fams)),
		scratch: make(map[string]bool, streams),
	}}
	for k, f := range fams {
		o.views[k] = f.queryView()
	}
	return o
}

// bitOracle adapts aligned bit families through their views: union
// contents are the OR of the per-stream signatures (bits saturate, so
// OR is set union).
type bitOracle struct{ viewOracle }

func newBitOracle(fams []*BitFamily, r int, streams int) *bitOracle {
	o := &bitOracle{viewOracle{
		cfg:     fams[0].cfg,
		r:       r,
		views:   make([]*familyView, len(fams)),
		scratch: make(map[string]bool, streams),
	}}
	for k, f := range fams {
		o.views[k] = f.queryView()
	}
	return o
}

// rawCounterOracle is the pre-bitmap oracle that scans counters
// directly (SingletonUnionBucketN over summed cells). It is retained as
// the independently-derived baseline behind EstimateExpressionReference:
// differential tests pin the compiled/bitmap kernels bit-identical to
// it, and the benchmark suite measures the kernels' speedup against it.
type rawCounterOracle struct {
	fams        []*Family
	scratch     []*Sketch
	flagScratch map[string]bool
}

func newRawCounterOracle(fams []*Family, streams int) *rawCounterOracle {
	return &rawCounterOracle{
		fams:        fams,
		scratch:     make([]*Sketch, len(fams)),
		flagScratch: make(map[string]bool, streams),
	}
}

func (o *rawCounterOracle) config() Config         { return o.fams[0].cfg }
func (o *rawCounterOracle) flags() map[string]bool { return o.flagScratch }
func (o *rawCounterOracle) copies() int {
	r := o.fams[0].Copies()
	for _, f := range o.fams[1:] {
		if f.Copies() < r {
			r = f.Copies()
		}
	}
	return r
}
func (o *rawCounterOracle) occupied(k, i, b int) bool {
	return o.fams[k].copies[i].totals[b] != 0
}
func (o *rawCounterOracle) unionOccupied(i, b int) bool {
	for _, f := range o.fams {
		if f.copies[i].totals[b] != 0 {
			return true
		}
	}
	return false
}
func (o *rawCounterOracle) unionSingleton(i, b int) bool {
	for k, f := range o.fams {
		o.scratch[k] = f.copies[i]
	}
	return SingletonUnionBucketN(o.scratch, b)
}

// rawBitOracle is the pre-bitmap oracle over bit sketches, retained for
// the same differential-baseline role as rawCounterOracle.
type rawBitOracle struct {
	fams        []*BitFamily
	flagScratch map[string]bool
}

func newRawBitOracle(fams []*BitFamily, streams int) *rawBitOracle {
	return &rawBitOracle{fams: fams, flagScratch: make(map[string]bool, streams)}
}

func (o *rawBitOracle) config() Config         { return o.fams[0].cfg }
func (o *rawBitOracle) flags() map[string]bool { return o.flagScratch }
func (o *rawBitOracle) copies() int {
	r := o.fams[0].Copies()
	for _, f := range o.fams[1:] {
		if f.Copies() < r {
			r = f.Copies()
		}
	}
	return r
}
func (o *rawBitOracle) occupied(k, i, b int) bool {
	return !o.fams[k].copies[i].BucketEmpty(b)
}
func (o *rawBitOracle) unionOccupied(i, b int) bool {
	for _, f := range o.fams {
		if !f.copies[i].BucketEmpty(b) {
			return true
		}
	}
	return false
}
func (o *rawBitOracle) unionSingleton(i, b int) bool {
	// Fast path: every element sets one of the two g_1 cells, so a
	// bucket empty in every stream is decided by j = 0 alone — and
	// most (copy, level) pairs are empty.
	if !o.unionOccupied(i, b) {
		return false
	}
	s := o.fams[0].cfg.SecondLevel
	for j := 0; j < s; j++ {
		var or0, or1 bool
		for _, f := range o.fams {
			x := f.copies[i]
			or0 = or0 || x.bit(b, j, 0)
			or1 = or1 || x.bit(b, j, 1)
		}
		if or0 && or1 {
			return false // two distinct elements split by g_j
		}
	}
	return true
}

// estimateExpressionOracle is the shared §4 witness estimator. With
// multiLevel false it reads the single chosen level and the Fig. 5
// single-level û (the paper's pseudo-code, verbatim); with multiLevel
// true it harvests witnesses from every level AND scales by the
// all-levels maximum-likelihood û (see EstimateExpressionMultiLevel and
// estimateUnionMLFrom) — the same synopsis read more thoroughly on
// both axes.
func estimateExpressionOracle(e expr.Node, names []string, o exprOracle, eps float64, multiLevel bool) (Estimate, error) {
	if eps <= 0 || eps >= 1 {
		return Estimate{}, fmt.Errorf("core: relative accuracy ε = %v out of (0, 1)", eps)
	}
	cfg := o.config()
	r := o.copies()
	if r < 1 {
		return Estimate{}, errors.New("core: family has no copies")
	}
	var counts [64]int
	for level := 0; level < cfg.Buckets; level++ {
		for i := 0; i < r; i++ {
			if o.unionOccupied(i, level) {
				counts[level]++
			}
		}
	}
	var u Estimate
	var err error
	if multiLevel {
		u, err = unionMLFromCounts(cfg, r, &counts)
	} else {
		u, err = unionFromCounts(cfg, r, &counts, eps/3)
	}
	if err != nil {
		return Estimate{}, err
	}
	est := Estimate{Copies: r, Union: u.Value}
	if u.Value == 0 {
		return est, nil
	}
	lo := chooseWitnessLevel(cfg, u.Value, Beta, eps)
	hi := lo
	if multiLevel {
		lo, hi = 0, cfg.Buckets-1
	}
	est.Level = chooseWitnessLevel(cfg, u.Value, Beta, eps)

	flags := o.flags()
	for i := 0; i < r; i++ {
		for level := lo; level <= hi; level++ {
			if !o.unionSingleton(i, level) {
				continue // noEstimate: union bucket is not a singleton
			}
			est.Valid++
			for k, name := range names {
				flags[name] = o.occupied(k, i, level)
			}
			if e.EvalBool(flags) {
				est.Witnesses++
			}
		}
	}
	if err := finishWitnessEstimate(&est, u, uint64(r)*uint64(hi-lo+1)); err != nil {
		return est, err
	}
	return est, nil
}

// unionFromCounts is the Fig. 5 estimator over a precomputed occupancy
// profile: counts[j] = number of copies whose union bucket j is
// non-empty. It is shared by the interpreted oracle path and the
// compiled query kernel so both produce bit-identical values and Stats
// (the level-scan accounting matches estimateUnionFrom's early break
// even though the profile was filled eagerly).
func unionFromCounts(cfg Config, r int, counts *[64]int, eps float64) (Estimate, error) {
	if eps <= 0 || eps >= 1 {
		return Estimate{}, fmt.Errorf("core: relative accuracy ε = %v out of (0, 1)", eps)
	}
	f := (1 + eps) * float64(r) / 8
	index := 0
	count := 0
	for ; index < cfg.Buckets; index++ {
		count = counts[index]
		if float64(count) <= f {
			break // first index with count ≤ f (Fig. 5 step 9)
		}
	}
	Stats.UnionEstimates.Add(1)
	Stats.UnionLevelScans.Add(uint64(index + 1))
	if index == cfg.Buckets {
		return Estimate{}, fmt.Errorf("core: union estimator exhausted all %d levels", cfg.Buckets)
	}
	est := Estimate{Level: index, Copies: r, Valid: r, Witnesses: count}
	if count == 0 {
		est.Value = 0
		return est, nil
	}
	p := float64(count) / float64(r)
	invR := math.Pow(2, -float64(index+1))
	est.Value = math.Log1p(-p) / math.Log1p(-invR)
	return est, nil
}

// finishWitnessEstimate folds witness tallies into the final estimate —
// one shared epilogue so the interpreted, compiled, and parallel paths
// cannot drift numerically. est must carry Valid/Witnesses/Union.
//
// The error bar is the delta method: Var(p̂·û) ≈ û²·p(1−p)/valid +
// p²·Var(û). Witness observations within one sketch are correlated
// across levels, so this mildly understates multi-level noise; it is an
// indicator, not a guarantee.
func finishWitnessEstimate(est *Estimate, u Estimate, checks uint64) error {
	recordWitnessStats(checks, *est)
	if est.Valid == 0 {
		return ErrNoObservations
	}
	p := float64(est.Witnesses) / float64(est.Valid)
	est.Value = p * u.Value
	varP := p * (1 - p) / float64(est.Valid)
	est.StdError = math.Sqrt(u.Value*u.Value*varP + p*p*u.StdError*u.StdError)
	return nil
}

// orderedFamilies resolves an expression's stream names against a
// family map, in sorted-name order.
func orderedFamilies[F any](e expr.Node, fams map[string]F, isNil func(F) bool) ([]string, []F, error) {
	names := expr.Streams(e)
	ordered := make([]F, 0, len(names))
	for _, name := range names {
		f, ok := fams[name]
		if !ok || isNil(f) {
			return nil, nil, &ErrMissingStream{Name: name}
		}
		ordered = append(ordered, f)
	}
	return names, ordered, nil
}

// EstimateExpression estimates |E| for a general set expression over
// named update streams (§4). fams maps stream names to their aligned
// synopsis families; every stream referenced by e must be present.
//
// Per sketch copy, the estimator (1) requires the chosen level-j bucket
// to be a singleton for ∪_i A_i — checked by SingletonUnionBucketN over
// the summed counters — and (2) evaluates the Boolean mapping B(E) on
// the per-stream occupancy flags of that bucket: leaves are "bucket j
// non-empty in X_{A_i}", ∪ ↦ ∨, ∩ ↦ ∧, − ↦ ∧¬. The fraction of valid
// copies satisfying B(E), scaled by û = |∪_i A_i|, estimates |E|.
func EstimateExpression(e expr.Node, fams map[string]*Family, eps float64) (Estimate, error) {
	return EstimateExpressionOpts(e, fams, eps, false, DefaultEstimateOptions())
}

// EstimateExpressionOpts is EstimateExpression with explicit kernel
// options and level policy. It compiles the expression and runs the
// bitmap-backed query kernel (querykernel.go); expressions over more
// than expr.MaxCompiledStreams distinct streams fall back to the
// interpreted oracle, still reading through the packed views.
func EstimateExpressionOpts(e expr.Node, fams map[string]*Family, eps float64, multiLevel bool, opts EstimateOptions) (Estimate, error) {
	q, err := CompileQuery(e)
	if err != nil {
		names, ordered, err := orderedFamilies(e, fams, func(f *Family) bool { return f == nil })
		if err != nil {
			return Estimate{}, err
		}
		r, err := alignedCopies(ordered)
		if err != nil {
			return Estimate{}, err
		}
		return estimateExpressionOracle(e, names, newCounterOracle(ordered, r, len(names)), eps, multiLevel)
	}
	return q.Estimate(fams, eps, multiLevel, opts)
}

// EstimateExpressionReference is the pre-kernel interpreted estimator —
// counter scans, per-witness flag maps, recursive EvalBool — retained
// as the independently-derived baseline: tests pin the compiled and
// parallel kernels bit-identical to it, and the benchmark suite
// measures the kernels against it.
func EstimateExpressionReference(e expr.Node, fams map[string]*Family, eps float64, multiLevel bool) (Estimate, error) {
	names, ordered, err := orderedFamilies(e, fams, func(f *Family) bool { return f == nil })
	if err != nil {
		return Estimate{}, err
	}
	if _, err := alignedCopies(ordered); err != nil {
		return Estimate{}, err
	}
	return estimateExpressionOracle(e, names, newRawCounterOracle(ordered, len(names)), eps, multiLevel)
}

// alignedBitCopies verifies mutual alignment of bit families.
func alignedBitCopies(fams []*BitFamily) error {
	first := fams[0]
	for _, f := range fams[1:] {
		if !first.Aligned(f) {
			return ErrNotAligned
		}
	}
	return nil
}

// EstimateExpressionBits is EstimateExpression over the paper's
// insert-only bit synopses (§5.2). Estimates are identical to the
// counter version on the same insert stream and coins.
func EstimateExpressionBits(e expr.Node, fams map[string]*BitFamily, eps float64) (Estimate, error) {
	return EstimateExpressionBitsOpts(e, fams, eps, false, DefaultEstimateOptions())
}

// EstimateExpressionBitsOpts is EstimateExpressionBits with explicit
// kernel options and level policy; see EstimateExpressionOpts.
func EstimateExpressionBitsOpts(e expr.Node, fams map[string]*BitFamily, eps float64, multiLevel bool, opts EstimateOptions) (Estimate, error) {
	q, err := CompileQuery(e)
	if err != nil {
		names, ordered, err := orderedFamilies(e, fams, func(f *BitFamily) bool { return f == nil })
		if err != nil {
			return Estimate{}, err
		}
		if err := alignedBitCopies(ordered); err != nil {
			return Estimate{}, err
		}
		r := bitFamilyCopies(ordered)
		return estimateExpressionOracle(e, names, newBitOracle(ordered, r, len(names)), eps, multiLevel)
	}
	return q.EstimateBits(fams, eps, multiLevel, opts)
}

// EstimateExpressionReferenceBits is EstimateExpressionReference over
// bit synopses.
func EstimateExpressionReferenceBits(e expr.Node, fams map[string]*BitFamily, eps float64, multiLevel bool) (Estimate, error) {
	names, ordered, err := orderedFamilies(e, fams, func(f *BitFamily) bool { return f == nil })
	if err != nil {
		return Estimate{}, err
	}
	if err := alignedBitCopies(ordered); err != nil {
		return Estimate{}, err
	}
	return estimateExpressionOracle(e, names, newRawBitOracle(ordered, len(names)), eps, multiLevel)
}

// EstimateExpressionMultiLevelBits is EstimateExpressionMultiLevel
// over bit synopses.
func EstimateExpressionMultiLevelBits(e expr.Node, fams map[string]*BitFamily, eps float64) (Estimate, error) {
	return EstimateExpressionBitsOpts(e, fams, eps, true, DefaultEstimateOptions())
}

// bitFamilyCopies returns the usable copy count across aligned bit
// families (the minimum).
func bitFamilyCopies(fams []*BitFamily) int {
	r := fams[0].Copies()
	for _, f := range fams[1:] {
		if f.Copies() < r {
			r = f.Copies()
		}
	}
	return r
}

// EstimateUnionBits estimates |∪_i A_i| over bit families with the
// specialized Fig. 5 estimator.
func EstimateUnionBits(fams []*BitFamily, eps float64) (Estimate, error) {
	if len(fams) == 0 {
		return Estimate{}, errors.New("core: union estimator needs at least one family")
	}
	if err := alignedBitCopies(fams); err != nil {
		return Estimate{}, err
	}
	o := newRawBitOracle(fams, len(fams))
	occ := func(i, b int) bool { return o.unionOccupied(i, b) }
	return estimateUnionFrom(o.config(), o.copies(), occ, eps)
}

// EstimateExpressionMultiLevel estimates |E| like EstimateExpression but
// harvests witness observations from *every* first-level bucket instead
// of only the chosen level j.
//
// The key identity of the §3.4/§4 analysis — the conditional witness
// probability Pr[bucket non-empty singleton for E | bucket singleton
// for ∪A_i] = |E|/|∪A_i| — holds at every level, because both the
// numerator and denominator carry the same (1−1/R)^(|U|−1) factor
// regardless of R. The level choice in Fig. 6 only tunes the *yield*
// of valid observations at one bucket; summing over all Θ(log M)
// buckets raises the expected yield per sketch from (u/R)e^(−u/R) ≈
// 0.06–0.14 to Σ_j (u/2^j)e^(−u/2^j) ≈ 1/ln 2 ≈ 1.44 — an order of
// magnitude more valid observations from identical storage. This is
// the variant that reproduces the absolute error levels of the paper's
// experimental figures (§5.2); see EXPERIMENTS.md. Observations within
// one sketch are slightly negatively correlated across levels, which
// only helps concentration.
func EstimateExpressionMultiLevel(e expr.Node, fams map[string]*Family, eps float64) (Estimate, error) {
	return EstimateExpressionOpts(e, fams, eps, true, DefaultEstimateOptions())
}

// RecommendedCopies returns the Θ(log(1/δ)/ε²) copy count for the union
// estimator's (ε, δ) guarantee, using the explicit constant from the
// §3.3 Chernoff analysis: r ≥ 256·ln(1/δ)/(7ε²). Witness-based
// estimators additionally scale with |∪A_i|/|E| (Theorems 3.4, 3.5,
// 4.1); use RecommendedWitnessCopies when a bound on that ratio is
// known.
func RecommendedCopies(eps, delta float64) int {
	if eps <= 0 || eps >= 1 || delta <= 0 || delta >= 1 {
		return 0
	}
	return int(math.Ceil(256 * math.Log(1/delta) / (7 * eps * eps)))
}

// RecommendedWitnessCopies returns a copy count for the difference /
// intersection / expression estimators given a bound on the ratio
// |∪A_i| / |E|. It scales the Chernoff requirement r'·p ≥ 2·ln(1/δ)/ε²
// by the valid-observation yield (1−ε₁)(β−1)/β² from §3.4 with the
// optimal constants β = 2, ε₁ = (√5−1)/2.
func RecommendedWitnessCopies(eps, delta, unionToResultRatio float64) int {
	if eps <= 0 || eps >= 1 || delta <= 0 || delta >= 1 || unionToResultRatio < 1 {
		return 0
	}
	eps1 := (math.Sqrt(5) - 1) / 2
	yield := (1 - eps1) * (Beta - 1) / (Beta * Beta)
	need := 2 * math.Log(1/delta) / (eps * eps) * unionToResultRatio
	return int(math.Ceil(need / yield))
}

// SortStreams returns the expression's stream names in the order
// EstimateExpression binds them (sorted), for callers that want to
// pre-validate their family maps.
func SortStreams(names []string) []string {
	out := append([]string(nil), names...)
	sort.Strings(out)
	return out
}
