package core

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Serialization of sketch families, used to ship synopses from stream
// sites to the coordinator (paper Fig. 1) and to persist them on disk.
//
// Format (little-endian):
//
//	magic   "2LHS"            4 bytes
//	version u8                currently 1
//	buckets u16, secondLevel u16, firstWise u16
//	seed    u64               family master seed
//	copies  u32
//	per copy: totals then counts, each as zig-zag varint int64
//	crc32   u32 (IEEE, over everything after the magic)
//
// Counters are varint-encoded because most of a sketch is zero or small:
// a fresh 512-copy family serializes to a few hundred KB instead of the
// 16 MB of raw counters.

const (
	familyMagic   = "2LHS"
	familyVersion = 1
)

// ErrBadFormat is returned when deserialization encounters data that is
// not a serialized sketch family or fails its checksum.
var ErrBadFormat = errors.New("core: malformed sketch-family encoding")

// AppendTo appends the family's serialization to buf and returns the
// extended slice — the allocation-free encoder behind WriteTo, for
// callers that manage their own scratch buffers (the wire hot path).
func (f *Family) AppendTo(buf []byte) []byte {
	start := len(buf)
	buf = append(buf, familyMagic...)
	var header [15]byte
	header[0] = familyVersion
	binary.LittleEndian.PutUint16(header[1:], uint16(f.cfg.Buckets))
	binary.LittleEndian.PutUint16(header[3:], uint16(f.cfg.SecondLevel))
	binary.LittleEndian.PutUint16(header[5:], uint16(f.cfg.FirstWise))
	binary.LittleEndian.PutUint64(header[7:], f.seed)
	buf = append(buf, header[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(f.copies)))
	for _, x := range f.copies {
		for _, c := range x.totals {
			buf = binary.AppendVarint(buf, c)
		}
		for _, c := range x.counts {
			buf = binary.AppendVarint(buf, c)
		}
	}
	crc := crc32.ChecksumIEEE(buf[start+4:])
	return binary.LittleEndian.AppendUint32(buf, crc)
}

// WriteTo serializes the family. It implements io.WriterTo.
func (f *Family) WriteTo(w io.Writer) (int64, error) {
	buf := f.AppendTo(nil)
	n, err := w.Write(buf)
	return int64(n), err
}

// DecodeFamily deserializes a family from a complete in-memory encoding
// written by AppendTo/WriteTo — the slice-based twin of ReadFamily for
// delimited payloads (wire frames), skipping the buffered-reader
// machinery. Beyond the family itself it does not allocate.
func DecodeFamily(data []byte) (*Family, error) {
	const minLen = 4 + 15 + 4 + 4 // magic + header + copies + crc
	if len(data) < minLen {
		return nil, fmt.Errorf("%w: %d bytes is too short", ErrBadFormat, len(data))
	}
	if string(data[:4]) != familyMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadFormat, data[:4])
	}
	body := data[4 : len(data)-4]
	if got, want := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(data[len(data)-4:]); got != want {
		return nil, fmt.Errorf("%w: checksum mismatch (got %#x, want %#x)", ErrBadFormat, want, got)
	}
	if body[0] != familyVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadFormat, body[0])
	}
	cfg := Config{
		Buckets:     int(binary.LittleEndian.Uint16(body[1:])),
		SecondLevel: int(binary.LittleEndian.Uint16(body[3:])),
		FirstWise:   int(binary.LittleEndian.Uint16(body[5:])),
	}
	seed := binary.LittleEndian.Uint64(body[7:])
	copies := int(binary.LittleEndian.Uint32(body[15:]))
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	const maxCopies = 1 << 20
	if copies < 1 || copies > maxCopies {
		return nil, fmt.Errorf("%w: copy count %d out of range", ErrBadFormat, copies)
	}
	fam, err := NewFamily(cfg, seed, copies)
	if err != nil {
		return nil, err
	}
	p := body[19:]
	readCounters := func(cs []int64) error {
		for i := range cs {
			v, n := binary.Varint(p)
			if n <= 0 {
				return fmt.Errorf("%w: truncated counters", ErrBadFormat)
			}
			cs[i] = v
			p = p[n:]
		}
		return nil
	}
	for _, x := range fam.copies {
		if err := readCounters(x.totals); err != nil {
			return nil, err
		}
		if err := readCounters(x.counts); err != nil {
			return nil, err
		}
	}
	if len(p) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadFormat, len(p))
	}
	return fam, nil
}

// crcReader tees reads into a CRC32 accumulator.
type crcReader struct {
	r   io.Reader
	crc uint32
}

func (cr *crcReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.crc = crc32.Update(cr.crc, crc32.IEEETable, p[:n])
	return n, err
}

// ReadFamily deserializes a family written by WriteTo, verifying the
// checksum and reconstructing the hash functions from the stored seed.
func ReadFamily(r io.Reader) (*Family, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if string(magic) != familyMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadFormat, magic)
	}
	cr := &crcReader{r: br}
	header := make([]byte, 19)
	if _, err := io.ReadFull(cr, header); err != nil {
		return nil, fmt.Errorf("%w: truncated header: %v", ErrBadFormat, err)
	}
	if header[0] != familyVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadFormat, header[0])
	}
	cfg := Config{
		Buckets:     int(binary.LittleEndian.Uint16(header[1:])),
		SecondLevel: int(binary.LittleEndian.Uint16(header[3:])),
		FirstWise:   int(binary.LittleEndian.Uint16(header[5:])),
	}
	seed := binary.LittleEndian.Uint64(header[7:])
	copies := int(binary.LittleEndian.Uint32(header[15:]))
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	const maxCopies = 1 << 20
	if copies < 1 || copies > maxCopies {
		return nil, fmt.Errorf("%w: copy count %d out of range", ErrBadFormat, copies)
	}
	fam, err := NewFamily(cfg, seed, copies)
	if err != nil {
		return nil, err
	}
	// Varint decoding needs byte-granular reads that also feed the CRC.
	byter := &crcByteReader{cr: cr}
	readCounters := func(cs []int64) error {
		for i := range cs {
			v, err := binary.ReadVarint(byter)
			if err != nil {
				return err
			}
			cs[i] = v
		}
		return nil
	}
	for _, x := range fam.copies {
		if err := readCounters(x.totals); err != nil {
			return nil, fmt.Errorf("%w: truncated counters: %v", ErrBadFormat, err)
		}
		if err := readCounters(x.counts); err != nil {
			return nil, fmt.Errorf("%w: truncated counters: %v", ErrBadFormat, err)
		}
	}
	wantCRC := cr.crc
	var trailer [4]byte
	if _, err := io.ReadFull(br, trailer[:]); err != nil {
		return nil, fmt.Errorf("%w: missing checksum: %v", ErrBadFormat, err)
	}
	if got := binary.LittleEndian.Uint32(trailer[:]); got != wantCRC {
		return nil, fmt.Errorf("%w: checksum mismatch (got %#x, want %#x)", ErrBadFormat, got, wantCRC)
	}
	return fam, nil
}

// crcByteReader adapts crcReader to io.ByteReader for varint decoding.
type crcByteReader struct {
	cr  *crcReader
	buf [1]byte
}

func (b *crcByteReader) ReadByte() (byte, error) {
	if _, err := io.ReadFull(b.cr, b.buf[:]); err != nil {
		return 0, err
	}
	return b.buf[0], nil
}
