package core

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Serialization of sketch families, used to ship synopses from stream
// sites to the coordinator (paper Fig. 1) and to persist them on disk.
//
// Format (little-endian):
//
//	magic   "2LHS"            4 bytes
//	version u8                currently 1
//	buckets u16, secondLevel u16, firstWise u16
//	seed    u64               family master seed
//	copies  u32
//	per copy: totals then counts, each as zig-zag varint int64
//	crc32   u32 (IEEE, over everything after the magic)
//
// Counters are varint-encoded because most of a sketch is zero or small:
// a fresh 512-copy family serializes to a few hundred KB instead of the
// 16 MB of raw counters.

const (
	familyMagic   = "2LHS"
	familyVersion = 1
)

// ErrBadFormat is returned when deserialization encounters data that is
// not a serialized sketch family or fails its checksum.
var ErrBadFormat = errors.New("core: malformed sketch-family encoding")

// crcWriter tees writes into a CRC32 accumulator.
type crcWriter struct {
	w   io.Writer
	crc uint32
	n   int64
}

func (cw *crcWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.crc = crc32.Update(cw.crc, crc32.IEEETable, p[:n])
	cw.n += int64(n)
	return n, err
}

// WriteTo serializes the family. It implements io.WriterTo.
func (f *Family) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(familyMagic); err != nil {
		return 0, err
	}
	cw := &crcWriter{w: bw}
	var header [15]byte
	header[0] = familyVersion
	binary.LittleEndian.PutUint16(header[1:], uint16(f.cfg.Buckets))
	binary.LittleEndian.PutUint16(header[3:], uint16(f.cfg.SecondLevel))
	binary.LittleEndian.PutUint16(header[5:], uint16(f.cfg.FirstWise))
	binary.LittleEndian.PutUint64(header[7:], f.seed)
	if _, err := cw.Write(header[:]); err != nil {
		return cw.n + 4, err
	}
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], uint32(len(f.copies)))
	if _, err := cw.Write(u32[:]); err != nil {
		return cw.n + 4, err
	}
	var buf [binary.MaxVarintLen64]byte
	writeCounters := func(cs []int64) error {
		for _, c := range cs {
			n := binary.PutVarint(buf[:], c)
			if _, err := cw.Write(buf[:n]); err != nil {
				return err
			}
		}
		return nil
	}
	for _, x := range f.copies {
		if err := writeCounters(x.totals); err != nil {
			return cw.n + 4, err
		}
		if err := writeCounters(x.counts); err != nil {
			return cw.n + 4, err
		}
	}
	binary.LittleEndian.PutUint32(u32[:], cw.crc)
	if _, err := bw.Write(u32[:]); err != nil {
		return cw.n + 4, err
	}
	if err := bw.Flush(); err != nil {
		return cw.n + 8, err
	}
	return cw.n + 8, nil
}

// crcReader tees reads into a CRC32 accumulator.
type crcReader struct {
	r   io.Reader
	crc uint32
}

func (cr *crcReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.crc = crc32.Update(cr.crc, crc32.IEEETable, p[:n])
	return n, err
}

// ReadFamily deserializes a family written by WriteTo, verifying the
// checksum and reconstructing the hash functions from the stored seed.
func ReadFamily(r io.Reader) (*Family, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if string(magic) != familyMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadFormat, magic)
	}
	cr := &crcReader{r: br}
	header := make([]byte, 19)
	if _, err := io.ReadFull(cr, header); err != nil {
		return nil, fmt.Errorf("%w: truncated header: %v", ErrBadFormat, err)
	}
	if header[0] != familyVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadFormat, header[0])
	}
	cfg := Config{
		Buckets:     int(binary.LittleEndian.Uint16(header[1:])),
		SecondLevel: int(binary.LittleEndian.Uint16(header[3:])),
		FirstWise:   int(binary.LittleEndian.Uint16(header[5:])),
	}
	seed := binary.LittleEndian.Uint64(header[7:])
	copies := int(binary.LittleEndian.Uint32(header[15:]))
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	const maxCopies = 1 << 20
	if copies < 1 || copies > maxCopies {
		return nil, fmt.Errorf("%w: copy count %d out of range", ErrBadFormat, copies)
	}
	fam, err := NewFamily(cfg, seed, copies)
	if err != nil {
		return nil, err
	}
	// Varint decoding needs byte-granular reads that also feed the CRC.
	byter := &crcByteReader{cr: cr}
	readCounters := func(cs []int64) error {
		for i := range cs {
			v, err := binary.ReadVarint(byter)
			if err != nil {
				return err
			}
			cs[i] = v
		}
		return nil
	}
	for _, x := range fam.copies {
		if err := readCounters(x.totals); err != nil {
			return nil, fmt.Errorf("%w: truncated counters: %v", ErrBadFormat, err)
		}
		if err := readCounters(x.counts); err != nil {
			return nil, fmt.Errorf("%w: truncated counters: %v", ErrBadFormat, err)
		}
	}
	wantCRC := cr.crc
	var trailer [4]byte
	if _, err := io.ReadFull(br, trailer[:]); err != nil {
		return nil, fmt.Errorf("%w: missing checksum: %v", ErrBadFormat, err)
	}
	if got := binary.LittleEndian.Uint32(trailer[:]); got != wantCRC {
		return nil, fmt.Errorf("%w: checksum mismatch (got %#x, want %#x)", ErrBadFormat, got, wantCRC)
	}
	return fam, nil
}

// crcByteReader adapts crcReader to io.ByteReader for varint decoding.
type crcByteReader struct {
	cr  *crcReader
	buf [1]byte
}

func (b *crcByteReader) ReadByte() (byte, error) {
	if _, err := io.ReadFull(b.cr, b.buf[:]); err != nil {
		return 0, err
	}
	return b.buf[0], nil
}
