package core

import (
	"bytes"
	"errors"
	"testing"

	"setsketch/internal/expr"
	"setsketch/internal/hashing"
)

func mustBitFamily(t testing.TB, cfg Config, seed uint64, r int) *BitFamily {
	t.Helper()
	f, err := NewBitFamily(cfg, seed, r)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestBitSketchRejectsDeletion(t *testing.T) {
	x, err := NewBitSketch(checkCfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	x.Insert(5)
	if err := x.Delete(5); !errors.Is(err, ErrBitDeletion) {
		t.Errorf("Delete err = %v, want ErrBitDeletion", err)
	}
}

func TestBitSketchValidation(t *testing.T) {
	bad := Config{Buckets: 0, SecondLevel: 4, FirstWise: 2}
	if _, err := NewBitSketch(bad, 1); err == nil {
		t.Error("invalid config accepted")
	}
	if _, err := NewBitFamily(bad, 1, 4); err == nil {
		t.Error("invalid config accepted by family")
	}
	if _, err := NewBitFamily(checkCfg, 1, 0); err == nil {
		t.Error("zero copies accepted")
	}
}

// TestBitMatchesCounterOccupancy is the bridge invariant: on the same
// insert-only stream with the same coins, the bit sketch's set bits
// are exactly the counter sketch's non-zero cells.
func TestBitMatchesCounterOccupancy(t *testing.T) {
	bits, err := NewBitSketch(checkCfg, 99)
	if err != nil {
		t.Fatal(err)
	}
	counters := mustSketch(t, checkCfg, 99)
	rng := hashing.NewRNG(1)
	for i := 0; i < 3000; i++ {
		e := rng.Uint64n(1 << 24)
		bits.Insert(e)
		counters.Insert(e)
	}
	if !bits.MatchesCounters(counters) {
		t.Fatal("bit and counter occupancy patterns differ on the same stream")
	}
	// Singleton checks agree bucket for bucket.
	for b := 0; b < checkCfg.Buckets; b++ {
		if bits.SingletonBucket(b) != counters.SingletonBucket(b) {
			t.Fatalf("singleton check differs at bucket %d", b)
		}
		if bits.BucketEmpty(b) != counters.BucketEmpty(b) {
			t.Fatalf("emptiness differs at bucket %d", b)
		}
	}
}

// TestBitEstimatesIdenticalToCounters: every estimator returns the
// same value from either representation of an insert-only stream.
func TestBitEstimatesIdenticalToCounters(t *testing.T) {
	const r = 192
	rng := hashing.NewRNG(2)
	a, b := overlapStreams(rng, 2048, 512)

	cfams := buildFamilies(t, estCfg, 7, r, map[string][]uint64{"A": a, "B": b})
	bfams := map[string]*BitFamily{
		"A": mustBitFamily(t, estCfg, 7, r),
		"B": mustBitFamily(t, estCfg, 7, r),
	}
	for _, e := range a {
		bfams["A"].Insert(e)
	}
	for _, e := range b {
		bfams["B"].Insert(e)
	}

	for _, q := range []string{"A & B", "A - B", "A | B", "A ^ B"} {
		node := expr.MustParse(q)
		ce, cerr := EstimateExpressionMultiLevel(node, cfams, 0.2)
		be, berr := EstimateExpressionMultiLevelBits(node, bfams, 0.2)
		if (cerr == nil) != (berr == nil) {
			t.Fatalf("%s: error mismatch %v vs %v", q, cerr, berr)
		}
		if cerr == nil && ce.Value != be.Value {
			t.Errorf("%s: counter %.2f vs bit %.2f", q, ce.Value, be.Value)
		}

		cs, cserr := EstimateExpression(node, cfams, 0.2)
		bs, bserr := EstimateExpressionBits(node, bfams, 0.2)
		if (cserr == nil) != (bserr == nil) {
			t.Fatalf("%s single-level: error mismatch %v vs %v", q, cserr, bserr)
		}
		if cserr == nil && cs.Value != bs.Value {
			t.Errorf("%s single-level: counter %.2f vs bit %.2f", q, cs.Value, bs.Value)
		}
	}

	cu, err := EstimateUnionMulti([]*Family{cfams["A"], cfams["B"]}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	bu, err := EstimateUnionBits([]*BitFamily{bfams["A"], bfams["B"]}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if cu.Value != bu.Value {
		t.Errorf("union: counter %.2f vs bit %.2f", cu.Value, bu.Value)
	}
}

func TestBitMemoryIs64xSmaller(t *testing.T) {
	cf := mustFamily(t, DefaultConfig(), 1, 16)
	bf := mustBitFamily(t, DefaultConfig(), 1, 16)
	ratio := float64(cf.MemoryBytes()) / float64(bf.MemoryBytes())
	// Counters: 8 B per cell + totals; bits: 1/8 B per cell → ≈ 65×.
	if ratio < 55 || ratio > 70 {
		t.Errorf("counter/bit memory ratio %.1f, want ≈ 64", ratio)
	}
}

func TestBitMergeIsUnion(t *testing.T) {
	cfg := checkCfg
	a := mustBitFamily(t, cfg, 3, 8)
	b := mustBitFamily(t, cfg, 3, 8)
	both := mustBitFamily(t, cfg, 3, 8)
	rng := hashing.NewRNG(4)
	for i := 0; i < 1000; i++ {
		e := rng.Uint64n(1 << 20)
		both.Insert(e)
		if i%2 == 0 {
			a.Insert(e)
		} else {
			b.Insert(e)
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if !a.Copy(i).Equal(both.Copy(i)) {
			t.Fatalf("merged copy %d differs from combined-stream copy", i)
		}
	}
	other := mustBitFamily(t, cfg, 4, 8)
	if err := a.Merge(other); err != ErrNotAligned {
		t.Errorf("unaligned merge err = %v, want ErrNotAligned", err)
	}
	short := mustBitFamily(t, cfg, 3, 4)
	if err := a.Merge(short); err == nil {
		t.Error("copy-count mismatch accepted")
	}
}

func TestBitSketchCloneResetEqual(t *testing.T) {
	x, err := NewBitSketch(checkCfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	x.Insert(10)
	c := x.Clone()
	if !c.Equal(x) {
		t.Fatal("clone differs")
	}
	c.Insert(20)
	if c.Equal(x) {
		t.Fatal("clone shares storage")
	}
	c.Reset()
	if !c.BucketEmpty(0) || c.Equal(x) {
		fresh, _ := NewBitSketch(checkCfg, 5)
		if !c.Equal(fresh) {
			t.Fatal("reset sketch not empty")
		}
	}
	y, _ := NewBitSketch(checkCfg, 6)
	if x.Equal(y) {
		t.Fatal("different seeds compare equal")
	}
}

func TestBitFamilyTruncate(t *testing.T) {
	f := mustBitFamily(t, checkCfg, 7, 8)
	tr, err := f.Truncate(3)
	if err != nil || tr.Copies() != 3 {
		t.Fatalf("truncate: %v, copies %d", err, tr.Copies())
	}
	if _, err := f.Truncate(0); err == nil {
		t.Error("Truncate(0) accepted")
	}
	if _, err := f.Truncate(9); err == nil {
		t.Error("Truncate beyond size accepted")
	}
	if f.Config() != checkCfg || f.Seed() != 7 {
		t.Error("accessors broken")
	}
}

func TestBitFamilySerializeRoundTrip(t *testing.T) {
	f := mustBitFamily(t, checkCfg, 11, 8)
	rng := hashing.NewRNG(3)
	for i := 0; i < 2000; i++ {
		f.Insert(rng.Uint64n(1 << 22))
	}
	var buf bytes.Buffer
	n, err := f.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	data := append([]byte(nil), buf.Bytes()...)
	got, err := ReadBitFamily(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < f.Copies(); i++ {
		if !got.Copy(i).Equal(f.Copy(i)) {
			t.Fatalf("copy %d differs after round trip", i)
		}
	}
	// Corruption and cross-format confusion are rejected.
	data[len(data)/2] ^= 0x01
	if _, err := ReadBitFamily(bytes.NewReader(data)); !errors.Is(err, ErrBadFormat) {
		t.Errorf("corrupted bit family: err = %v", err)
	}
	cf := mustFamily(t, checkCfg, 11, 2)
	var cbuf bytes.Buffer
	if _, err := cf.WriteTo(&cbuf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBitFamily(&cbuf); !errors.Is(err, ErrBadFormat) {
		t.Errorf("counter family accepted as bit family: %v", err)
	}
	var bbuf bytes.Buffer
	if _, err := f.WriteTo(&bbuf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFamily(&bbuf); !errors.Is(err, ErrBadFormat) {
		t.Errorf("bit family accepted as counter family: %v", err)
	}
}

// TestToCountersPreservesEstimates: converting a bit family to a
// counter family preserves every estimate exactly.
func TestToCountersPreservesEstimates(t *testing.T) {
	const r = 128
	rng := hashing.NewRNG(8)
	a, b := overlapStreams(rng, 1024, 256)
	bfams := map[string]*BitFamily{
		"A": mustBitFamily(t, estCfg, 19, r),
		"B": mustBitFamily(t, estCfg, 19, r),
	}
	for _, e := range a {
		bfams["A"].Insert(e)
	}
	for _, e := range b {
		bfams["B"].Insert(e)
	}
	cfams := map[string]*Family{
		"A": bfams["A"].ToCounters(),
		"B": bfams["B"].ToCounters(),
	}
	for _, q := range []string{"A & B", "A - B", "A | B"} {
		node := expr.MustParse(q)
		be, berr := EstimateExpressionMultiLevelBits(node, bfams, 0.2)
		ce, cerr := EstimateExpressionMultiLevel(node, cfams, 0.2)
		if (berr == nil) != (cerr == nil) || (berr == nil && be.Value != ce.Value) {
			t.Errorf("%s: bit %.2f (%v) vs converted %.2f (%v)", q, be.Value, berr, ce.Value, cerr)
		}
	}
	// Converted families are mergeable with genuine counter families
	// built from the same coins.
	genuine := mustFamily(t, estCfg, 19, r)
	genuine.Insert(a[0])
	if err := genuine.Merge(cfams["A"]); err != nil {
		t.Fatalf("merging converted with genuine counters: %v", err)
	}
}

func TestBitEstimatorErrors(t *testing.T) {
	node := expr.MustParse("A & B")
	fams := map[string]*BitFamily{"A": mustBitFamily(t, checkCfg, 1, 4)}
	if _, err := EstimateExpressionBits(node, fams, 0.2); err == nil {
		t.Error("missing stream accepted")
	}
	fams["B"] = mustBitFamily(t, checkCfg, 2, 4) // wrong seed
	if _, err := EstimateExpressionBits(node, fams, 0.2); !errors.Is(err, ErrNotAligned) {
		t.Error("unaligned bit families accepted")
	}
	if _, err := EstimateUnionBits(nil, 0.2); err == nil {
		t.Error("empty family list accepted")
	}
	fams["B"] = mustBitFamily(t, checkCfg, 1, 4)
	if _, err := EstimateExpressionMultiLevelBits(node, fams, 0); err == nil {
		t.Error("eps 0 accepted")
	}
}
