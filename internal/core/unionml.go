package core

import (
	"errors"
	"math"
)

// Maximum-likelihood union estimation across all first-level buckets.
//
// The paper's SetUnionEstimator (Fig. 5) reads the occupancy count of a
// single first-level index — the first whose non-empty fraction drops
// below (1+ε)/8 — where the expected count is only ≈ r/8. At the
// experiments' r = 512 that one binomial observation carries 12–18%
// relative noise, and because every witness-based estimate scales by
// û, that noise is the dominant error term end-to-end.
//
// The same synopses contain occupancy counts at *every* level, and each
// level j's count is Binomial(r, p_j(u)) with
//
//	p_j(u) = 1 − (1 − 2^−(j+1))^u,
//
// so the whole occupancy profile is a likelihood function of the single
// unknown u. EstimateUnionML maximizes the joint (independence-
// approximate) log-likelihood
//
//	L(u) = Σ_j [ c_j·ln p_j(u) + (r − c_j)·ln(1 − p_j(u)) ]
//
// over u by ternary search (each term is concave in u, so L is
// unimodal). Counts at different levels of one sketch are mildly
// negatively correlated — the product form is an approximation — but
// every marginal is exact, so the estimator stays consistent; at
// r = 512 its observed error is ≈ 3× smaller than Fig. 5's (see the
// level ablation in EXPERIMENTS.md). This mirrors the multi-level
// witness harvest: identical storage and maintenance, strictly more of
// the synopsis read at estimation time.
func estimateUnionMLFrom(cfg Config, r int, occ occupancy) (Estimate, error) {
	if r < 1 {
		return Estimate{}, errors.New("core: family has no copies")
	}
	counts := make([]int, cfg.Buckets)
	total := 0
	for j := 0; j < cfg.Buckets; j++ {
		for i := 0; i < r; i++ {
			if occ(i, j) {
				counts[j]++
			}
		}
		total += counts[j]
	}
	Stats.UnionEstimates.Add(1)
	Stats.UnionLevelScans.Add(uint64(cfg.Buckets))
	est := Estimate{Copies: r, Valid: r, Witnesses: total}
	if total == 0 {
		return est, nil // no live element anywhere
	}
	// Precompute q_j = −ln(1 − 2^−(j+1)), so p_j(u) = 1 − e^(−q_j·u).
	q := make([]float64, cfg.Buckets)
	for j := range q {
		q[j] = -math.Log1p(-math.Pow(2, -float64(j+1)))
	}
	rf := float64(r)
	logLik := func(u float64) float64 {
		var sum float64
		for j, c := range counts {
			e := math.Exp(-q[j] * u) // 1 − p_j(u)
			p := 1 - e
			cf := float64(c)
			switch {
			case c == 0:
				sum += -q[j] * u * rf // r·ln(e^{−qu})
			case c == r:
				sum += rf * math.Log(p)
			default:
				sum += cf*math.Log(p) - q[j]*u*(rf-cf)
			}
		}
		return sum
	}
	// Ternary search on log2(u): L is unimodal in u, and the bracket
	// [2^−4, 2^62] covers every representable cardinality.
	lo, hi := -4.0, 62.0
	for iter := 0; iter < 200 && hi-lo > 1e-10; iter++ {
		m1 := lo + (hi-lo)/3
		m2 := hi - (hi-lo)/3
		if logLik(math.Exp2(m1)) < logLik(math.Exp2(m2)) {
			lo = m1
		} else {
			hi = m2
		}
	}
	est.Value = math.Exp2((lo + hi) / 2)
	// Standard error from the observed Fisher information of the
	// binomial profile: I(u) = Σ_j r·(dp_j/du)² / (p_j·(1−p_j)), with
	// dp_j/du = q_j·e^(−q_j·u).
	var info float64
	for j := range q {
		e := math.Exp(-q[j] * est.Value)
		p := 1 - e
		if p <= 0 || p >= 1 {
			continue
		}
		d := q[j] * e
		info += rf * d * d / (p * (1 - p))
	}
	if info > 0 {
		est.StdError = 1 / math.Sqrt(info)
	}
	// Report the most informative level for diagnostics: the one whose
	// expected occupancy is closest to r/2.
	best, bestGap := 0, math.Inf(1)
	for j := range counts {
		gap := math.Abs(float64(counts[j]) - rf/2)
		if gap < bestGap {
			best, bestGap = j, gap
		}
	}
	est.Level = best
	return est, nil
}

// EstimateUnionMultiML estimates |∪_i A_i| over aligned counter
// families with the all-levels maximum-likelihood estimator.
func EstimateUnionMultiML(fams []*Family, eps float64) (Estimate, error) {
	if eps <= 0 || eps >= 1 {
		return Estimate{}, errors.New("core: relative accuracy out of (0, 1)")
	}
	if len(fams) == 0 {
		return Estimate{}, errors.New("core: union estimator needs at least one family")
	}
	r, err := alignedCopies(fams)
	if err != nil {
		return Estimate{}, err
	}
	occ := func(i, b int) bool {
		for _, f := range fams {
			if f.copies[i].totals[b] != 0 {
				return true
			}
		}
		return false
	}
	return estimateUnionMLFrom(fams[0].cfg, r, occ)
}

// EstimateUnionBitsML is EstimateUnionMultiML over bit families.
func EstimateUnionBitsML(fams []*BitFamily, eps float64) (Estimate, error) {
	if eps <= 0 || eps >= 1 {
		return Estimate{}, errors.New("core: relative accuracy out of (0, 1)")
	}
	if len(fams) == 0 {
		return Estimate{}, errors.New("core: union estimator needs at least one family")
	}
	if err := alignedBitCopies(fams); err != nil {
		return Estimate{}, err
	}
	o := &bitOracle{fams: fams}
	occ := func(i, b int) bool {
		for k := range fams {
			if o.occupied(k, i, b) {
				return true
			}
		}
		return false
	}
	return estimateUnionMLFrom(o.config(), o.copies(), occ)
}
