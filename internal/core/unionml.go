package core

import (
	"errors"
	"math"
)

// Maximum-likelihood union estimation across all first-level buckets.
//
// The paper's SetUnionEstimator (Fig. 5) reads the occupancy count of a
// single first-level index — the first whose non-empty fraction drops
// below (1+ε)/8 — where the expected count is only ≈ r/8. At the
// experiments' r = 512 that one binomial observation carries 12–18%
// relative noise, and because every witness-based estimate scales by
// û, that noise is the dominant error term end-to-end.
//
// The same synopses contain occupancy counts at *every* level, and each
// level j's count is Binomial(r, p_j(u)) with
//
//	p_j(u) = 1 − (1 − 2^−(j+1))^u,
//
// so the whole occupancy profile is a likelihood function of the single
// unknown u. EstimateUnionML maximizes the joint (independence-
// approximate) log-likelihood
//
//	L(u) = Σ_j [ c_j·ln p_j(u) + (r − c_j)·ln(1 − p_j(u)) ]
//
// over u by ternary search (each term is concave in u, so L is
// unimodal). Counts at different levels of one sketch are mildly
// negatively correlated — the product form is an approximation — but
// every marginal is exact, so the estimator stays consistent; at
// r = 512 its observed error is ≈ 3× smaller than Fig. 5's (see the
// level ablation in EXPERIMENTS.md). This mirrors the multi-level
// witness harvest: identical storage and maintenance, strictly more of
// the synopsis read at estimation time.
func estimateUnionMLFrom(cfg Config, r int, occ occupancy) (Estimate, error) {
	if r < 1 {
		return Estimate{}, errors.New("core: family has no copies")
	}
	var counts [64]int
	for j := 0; j < cfg.Buckets; j++ {
		for i := 0; i < r; i++ {
			if occ(i, j) {
				counts[j]++
			}
		}
	}
	return unionMLFromCounts(cfg, r, &counts)
}

// qTable holds q_j = −ln(1 − 2^−(j+1)), so p_j(u) = 1 − e^(−q_j·u).
// Precomputed once: the table depends only on the level index, and
// hoisting it out of the estimator keeps the serial query path
// allocation-free.
var qTable = func() [64]float64 {
	var q [64]float64
	for j := range q {
		q[j] = -math.Log1p(-math.Pow(2, -float64(j+1)))
	}
	return q
}()

// unionMLFromCounts is the ML estimator over a precomputed occupancy
// profile (counts[j] = copies whose union bucket j is non-empty) —
// shared by the interpreted oracle path and the compiled query kernel
// so both produce bit-identical values and Stats.
func unionMLFromCounts(cfg Config, r int, countsArr *[64]int) (Estimate, error) {
	if r < 1 {
		return Estimate{}, errors.New("core: family has no copies")
	}
	counts := countsArr[:cfg.Buckets]
	total := 0
	for _, c := range counts {
		total += c
	}
	Stats.UnionEstimates.Add(1)
	Stats.UnionLevelScans.Add(uint64(cfg.Buckets))
	est := Estimate{Copies: r, Valid: r, Witnesses: total}
	if total == 0 {
		return est, nil // no live element anywhere
	}
	q := qTable[:cfg.Buckets]
	rf := float64(r)
	logLik := func(u float64) float64 {
		var sum float64
		for j, c := range counts {
			x := q[j] * u
			if c == 0 {
				sum += -x * rf // r·ln(e^{−qu}), no exp needed
				continue
			}
			if x >= 40 {
				// e^−x < 2^−54, so 1 − e rounds to exactly 1 and ln p to
				// exactly 0: only the −x·(r−c) term of the general case
				// survives (0 when c = r). Same bits as the slow path,
				// and it skips the exp for every saturated low level.
				sum += -x * (rf - float64(c))
				continue
			}
			e := math.Exp(-x) // 1 − p_j(u)
			p := 1 - e
			cf := float64(c)
			if c == r {
				sum += rf * math.Log(p)
			} else {
				sum += cf*math.Log(p) - x*(rf-cf)
			}
		}
		return sum
	}
	// Golden-section search on log2(u): L is unimodal in u, and the
	// bracket [2^−4, 2^62] covers every representable cardinality. Each
	// iteration reuses one interior evaluation, so the transcendental
	// bill is one logLik per step instead of ternary search's two; the
	// 1e-8 bracket tolerance leaves the maximizer within a relative
	// 7e-9 — far below the estimator's statistical noise.
	const invPhi = 0.6180339887498949
	lo, hi := -4.0, 62.0
	m1 := hi - invPhi*(hi-lo)
	m2 := lo + invPhi*(hi-lo)
	f1, f2 := logLik(math.Exp2(m1)), logLik(math.Exp2(m2))
	for iter := 0; iter < 200 && hi-lo > 1e-8; iter++ {
		if f1 < f2 {
			lo, m1, f1 = m1, m2, f2
			m2 = lo + invPhi*(hi-lo)
			f2 = logLik(math.Exp2(m2))
		} else {
			hi, m2, f2 = m2, m1, f1
			m1 = hi - invPhi*(hi-lo)
			f1 = logLik(math.Exp2(m1))
		}
	}
	est.Value = math.Exp2((lo + hi) / 2)
	// Standard error from the observed Fisher information of the
	// binomial profile: I(u) = Σ_j r·(dp_j/du)² / (p_j·(1−p_j)), with
	// dp_j/du = q_j·e^(−q_j·u).
	var info float64
	for j := range q {
		e := math.Exp(-q[j] * est.Value)
		p := 1 - e
		if p <= 0 || p >= 1 {
			continue
		}
		d := q[j] * e
		info += rf * d * d / (p * (1 - p))
	}
	if info > 0 {
		est.StdError = 1 / math.Sqrt(info)
	}
	// Report the most informative level for diagnostics: the one whose
	// expected occupancy is closest to r/2.
	best, bestGap := 0, math.Inf(1)
	for j := range counts {
		gap := math.Abs(float64(counts[j]) - rf/2)
		if gap < bestGap {
			best, bestGap = j, gap
		}
	}
	est.Level = best
	return est, nil
}

// EstimateUnionMultiML estimates |∪_i A_i| over aligned counter
// families with the all-levels maximum-likelihood estimator.
func EstimateUnionMultiML(fams []*Family, eps float64) (Estimate, error) {
	if eps <= 0 || eps >= 1 {
		return Estimate{}, errors.New("core: relative accuracy out of (0, 1)")
	}
	if len(fams) == 0 {
		return Estimate{}, errors.New("core: union estimator needs at least one family")
	}
	r, err := alignedCopies(fams)
	if err != nil {
		return Estimate{}, err
	}
	occ := func(i, b int) bool {
		for _, f := range fams {
			if f.copies[i].totals[b] != 0 {
				return true
			}
		}
		return false
	}
	return estimateUnionMLFrom(fams[0].cfg, r, occ)
}

// EstimateUnionBitsML is EstimateUnionMultiML over bit families.
func EstimateUnionBitsML(fams []*BitFamily, eps float64) (Estimate, error) {
	if eps <= 0 || eps >= 1 {
		return Estimate{}, errors.New("core: relative accuracy out of (0, 1)")
	}
	if len(fams) == 0 {
		return Estimate{}, errors.New("core: union estimator needs at least one family")
	}
	if err := alignedBitCopies(fams); err != nil {
		return Estimate{}, err
	}
	o := newRawBitOracle(fams, len(fams))
	occ := func(i, b int) bool { return o.unionOccupied(i, b) }
	return estimateUnionMLFrom(o.config(), o.copies(), occ)
}
