package core

import (
	"strings"
	"testing"
	"testing/quick"

	"setsketch/internal/hashing"
)

func mustSketch(t testing.TB, cfg Config, seed uint64) *Sketch {
	t.Helper()
	x, err := NewSketch(cfg, seed)
	if err != nil {
		t.Fatal(err)
	}
	return x
}

func mustFamily(t testing.TB, cfg Config, seed uint64, r int) *Family {
	t.Helper()
	f, err := NewFamily(cfg, seed, r)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []Config{
		{Buckets: 0, SecondLevel: 32, FirstWise: 8},
		{Buckets: 62, SecondLevel: 32, FirstWise: 8},
		{Buckets: 61, SecondLevel: 0, FirstWise: 8},
		{Buckets: 61, SecondLevel: 32, FirstWise: 1},
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %+v validated, want error", cfg)
		}
	}
	if _, err := NewSketch(bad[0], 1); err == nil {
		t.Error("NewSketch accepted invalid config")
	}
	if _, err := NewFamily(bad[0], 1, 4); err == nil {
		t.Error("NewFamily accepted invalid config")
	}
	if _, err := NewFamily(DefaultConfig(), 1, 0); err == nil {
		t.Error("NewFamily accepted zero copies")
	}
}

// TestDeletionInvariance is the paper's §3.1 claim verbatim: the sketch
// obtained at the end of an update stream is identical to a sketch that
// never saw the deleted items.
func TestDeletionInvariance(t *testing.T) {
	cfg := Config{Buckets: 61, SecondLevel: 8, FirstWise: 4}
	withDeletes := mustSketch(t, cfg, 42)
	withoutDeletes := mustSketch(t, cfg, 42)

	rng := hashing.NewRNG(7)
	survivors := make(map[uint64]int64)
	for i := 0; i < 5000; i++ {
		e := rng.Uint64n(1 << 20)
		withDeletes.Update(e, 3)
		if rng.Float64() < 0.5 {
			// Fully remove the three copies again.
			withDeletes.Update(e, -3)
		} else {
			withDeletes.Update(e, -1) // partial deletion; two copies survive
			survivors[e] += 2
		}
	}
	for e, v := range survivors {
		withoutDeletes.Update(e, v)
	}
	if !withDeletes.Equal(withoutDeletes) {
		t.Fatal("sketch with deletions differs from the deletion-free sketch of the same net multiset")
	}
	if err := withDeletes.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestLinearity: sketch(A ⊎ B) = sketch(A) merged with sketch(B), the
// property behind distributed collection and n-way union checks.
func TestLinearity(t *testing.T) {
	cfg := Config{Buckets: 61, SecondLevel: 8, FirstWise: 4}
	f := func(xs, ys []uint16) bool {
		a := mustSketch(t, cfg, 99)
		b := mustSketch(t, cfg, 99)
		combined := mustSketch(t, cfg, 99)
		for _, x := range xs {
			a.Insert(uint64(x))
			combined.Insert(uint64(x))
		}
		for _, y := range ys {
			b.Insert(uint64(y))
			combined.Insert(uint64(y))
		}
		if err := a.Merge(b); err != nil {
			return false
		}
		return a.Equal(combined)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMergeRejectsUnaligned(t *testing.T) {
	cfg := DefaultConfig()
	a := mustSketch(t, cfg, 1)
	b := mustSketch(t, cfg, 2)
	if err := a.Merge(b); err != ErrNotAligned {
		t.Errorf("merging different seeds: err = %v, want ErrNotAligned", err)
	}
	cfg2 := cfg
	cfg2.SecondLevel = 16
	c := mustSketch(t, cfg2, 1)
	if err := a.Merge(c); err != ErrNotAligned {
		t.Errorf("merging different configs: err = %v, want ErrNotAligned", err)
	}
}

func TestBucketTotalsMatchUpdates(t *testing.T) {
	x := mustSketch(t, Config{Buckets: 61, SecondLevel: 4, FirstWise: 2}, 5)
	var want int64
	rng := hashing.NewRNG(3)
	for i := 0; i < 1000; i++ {
		x.Update(rng.Uint64n(1<<16), 2)
		want += 2
	}
	var got int64
	for b := 0; b < 61; b++ {
		got += x.BucketTotal(b)
	}
	if got != want {
		t.Errorf("sum of bucket totals = %d, want %d", got, want)
	}
	if err := x.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateDetectsIllegalDeletions(t *testing.T) {
	x := mustSketch(t, Config{Buckets: 61, SecondLevel: 4, FirstWise: 2}, 5)
	x.Insert(10)
	x.Update(10, -2) // illegal: net frequency −1
	err := x.Validate()
	if err == nil {
		t.Fatal("Validate accepted a sketch with negative net frequency")
	}
	if !strings.Contains(err.Error(), "negative") {
		t.Errorf("unexpected validation error: %v", err)
	}
}

func TestCloneAndReset(t *testing.T) {
	x := mustSketch(t, Config{Buckets: 61, SecondLevel: 4, FirstWise: 2}, 5)
	x.Insert(1)
	c := x.Clone()
	if !c.Equal(x) {
		t.Fatal("clone differs from original")
	}
	c.Insert(2)
	if c.Equal(x) {
		t.Fatal("mutating clone changed original (shared counters)")
	}
	c.Reset()
	empty := mustSketch(t, x.Config(), 5)
	if !c.Equal(empty) {
		t.Fatal("reset sketch is not empty")
	}
}

func TestFirstLevelGeometric(t *testing.T) {
	// Bucket 0 should hold ≈ half the items, bucket 1 a quarter, etc.
	x := mustSketch(t, DefaultConfig(), 12)
	const n = 1 << 16
	for e := uint64(0); e < n; e++ {
		x.Insert(e)
	}
	dist := x.FirstLevelDistribution()
	for l := 0; l < 6; l++ {
		want := 1.0 / float64(int64(2)<<l)
		if dist[l] < want*0.9 || dist[l] > want*1.1 {
			t.Errorf("bucket %d holds fraction %.4f, want ≈ %.4f", l, dist[l], want)
		}
	}
	if x.MemoryBytes() != 8*(61+61*32*2) {
		t.Errorf("MemoryBytes = %d", x.MemoryBytes())
	}
}

func TestFirstLevelDistributionEmpty(t *testing.T) {
	x := mustSketch(t, DefaultConfig(), 12)
	for _, v := range x.FirstLevelDistribution() {
		if v != 0 {
			t.Fatal("empty sketch has non-zero distribution")
		}
	}
}

func TestFamilyBasics(t *testing.T) {
	cfg := Config{Buckets: 61, SecondLevel: 8, FirstWise: 4}
	f := mustFamily(t, cfg, 7, 16)
	if f.Copies() != 16 || f.Config() != cfg || f.Seed() != 7 {
		t.Fatal("family accessors broken")
	}
	f.Insert(5)
	f.Delete(5)
	empty := mustFamily(t, cfg, 7, 16)
	if !f.Equal(empty) {
		t.Fatal("insert+delete did not cancel across all copies")
	}

	// Copies use distinct hash functions: the same element should not
	// land in the same bucket pattern everywhere.
	f.Insert(123)
	distinctBuckets := make(map[int]bool)
	for i := 0; i < f.Copies(); i++ {
		for b := 0; b < cfg.Buckets; b++ {
			if f.Copy(i).BucketTotal(b) > 0 {
				distinctBuckets[b] = true
			}
		}
	}
	if len(distinctBuckets) < 2 {
		t.Error("all 16 copies hashed element 123 to the same bucket; copies are not independent")
	}
}

func TestFamilyAlignmentAcrossStreams(t *testing.T) {
	cfg := Config{Buckets: 61, SecondLevel: 8, FirstWise: 4}
	a := mustFamily(t, cfg, 7, 4)
	b := mustFamily(t, cfg, 7, 4)
	if !a.Aligned(b) {
		t.Fatal("same-seed families not aligned")
	}
	// Copy i of a and copy i of b must use identical hash functions:
	// inserting the same element must produce Equal copies.
	a.Insert(42)
	b.Insert(42)
	for i := 0; i < 4; i++ {
		if !a.Copy(i).Equal(b.Copy(i)) {
			t.Fatalf("copy %d of aligned families differs for identical input", i)
		}
	}
	c := mustFamily(t, cfg, 8, 4)
	if a.Aligned(c) {
		t.Fatal("different-seed families reported aligned")
	}
}

func TestFamilyMergeAndValidate(t *testing.T) {
	cfg := Config{Buckets: 61, SecondLevel: 8, FirstWise: 4}
	a := mustFamily(t, cfg, 7, 4)
	b := mustFamily(t, cfg, 7, 4)
	combined := mustFamily(t, cfg, 7, 4)
	for e := uint64(0); e < 100; e++ {
		a.Insert(e)
		combined.Insert(e)
	}
	for e := uint64(50); e < 150; e++ {
		b.Insert(e)
		combined.Insert(e)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if !a.Equal(combined) {
		t.Fatal("family merge is not the combined-stream family")
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}

	short := mustFamily(t, cfg, 7, 2)
	if err := a.Merge(short); err == nil {
		t.Error("merging families of different copy counts succeeded")
	}
	other := mustFamily(t, cfg, 9, 4)
	if err := a.Merge(other); err != ErrNotAligned {
		t.Errorf("merging unaligned families: err = %v, want ErrNotAligned", err)
	}
}

func TestFamilyTruncate(t *testing.T) {
	f := mustFamily(t, Config{Buckets: 61, SecondLevel: 4, FirstWise: 2}, 1, 8)
	f.Insert(9)
	tr, err := f.Truncate(3)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Copies() != 3 {
		t.Fatalf("truncated copies = %d, want 3", tr.Copies())
	}
	// Truncation is a view: updates through the view hit the parent.
	tr.Insert(10)
	if f.Copy(0).BucketEmpty(hashing.LSB(f.Copy(0).h.Hash(10), 61)) {
		t.Error("update through truncated view did not reach parent copy")
	}
	if _, err := f.Truncate(0); err == nil {
		t.Error("Truncate(0) succeeded")
	}
	if _, err := f.Truncate(9); err == nil {
		t.Error("Truncate beyond copy count succeeded")
	}
}

func TestFamilyCloneReset(t *testing.T) {
	f := mustFamily(t, Config{Buckets: 61, SecondLevel: 4, FirstWise: 2}, 1, 4)
	f.Insert(77)
	c := f.Clone()
	if !c.Equal(f) {
		t.Fatal("clone not equal")
	}
	c.Reset()
	if c.Equal(f) {
		t.Fatal("reset clone still equals populated family")
	}
	if c.MemoryBytes() != f.MemoryBytes() {
		t.Error("clone memory footprint differs")
	}
}

// TestUpdateOrderIrrelevant: sketches are order-insensitive summaries —
// any permutation of the same update multiset yields Equal sketches.
func TestUpdateOrderIrrelevant(t *testing.T) {
	cfg := Config{Buckets: 61, SecondLevel: 8, FirstWise: 4}
	updates := make([][2]int64, 200)
	rng := hashing.NewRNG(17)
	for i := range updates {
		updates[i] = [2]int64{int64(rng.Uint64n(1000)), int64(rng.Intn(3) + 1)}
	}
	forward := mustSketch(t, cfg, 4)
	backward := mustSketch(t, cfg, 4)
	shuffled := mustSketch(t, cfg, 4)
	for _, u := range updates {
		forward.Update(uint64(u[0]), u[1])
	}
	for i := len(updates) - 1; i >= 0; i-- {
		backward.Update(uint64(updates[i][0]), updates[i][1])
	}
	for _, idx := range rng.Perm(len(updates)) {
		shuffled.Update(uint64(updates[idx][0]), updates[idx][1])
	}
	if !forward.Equal(backward) || !forward.Equal(shuffled) {
		t.Fatal("update order changed the sketch")
	}
}
