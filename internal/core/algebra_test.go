package core

// Algebraic sanity tests: estimators must respect set-algebra
// identities exactly when they are structural (same synopses in, same
// quantity out) and statistically when randomness is involved.

import (
	"math"
	"testing"

	"setsketch/internal/datagen"
	"setsketch/internal/expr"
	"setsketch/internal/hashing"
)

func TestExpressionSelfIdentities(t *testing.T) {
	rng := hashing.NewRNG(71)
	elems := make([]uint64, 0, 2000)
	seen := make(map[uint64]bool)
	for len(elems) < 2000 {
		e := rng.Uint64n(1 << 30)
		if !seen[e] {
			seen[e] = true
			elems = append(elems, e)
		}
	}
	fams := buildFamilies(t, estCfg, 31, 256, map[string][]uint64{"A": elems})

	// A − A = ∅ must be estimated as exactly 0: every witness check
	// evaluates B(E) = flag ∧ ¬flag = false.
	est, err := EstimateExpressionMultiLevel(expr.MustParse("A - A"), fams, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if est.Value != 0 {
		t.Errorf("|A - A| = %v, want exactly 0", est.Value)
	}

	// A ∩ A = A ∪ A = A: all three must give the identical value, since
	// B(E) degenerates to the same flag.
	vals := make([]float64, 0, 3)
	for _, q := range []string{"A", "A & A", "A | A"} {
		est, err := EstimateExpressionMultiLevel(expr.MustParse(q), fams, 0.2)
		if err != nil {
			t.Fatal(err)
		}
		vals = append(vals, est.Value)
	}
	if vals[0] != vals[1] || vals[1] != vals[2] {
		t.Errorf("A, A&A, A|A estimates differ: %v", vals)
	}
	if rel := math.Abs(vals[0]-2000) / 2000; rel > 0.3 {
		t.Errorf("|A| estimated %v, want ≈ 2000", vals[0])
	}
}

// TestPartitionAdditivity: |A−B| + |A∩B| + |B−A| estimates, made from
// the SAME synopses at the same level, must sum to exactly the
// estimated |A∪B| — the three witness conditions partition the valid
// observations.
func TestPartitionAdditivity(t *testing.T) {
	rng := hashing.NewRNG(72)
	a, b := overlapStreams(rng, 3000, 900)
	fams := buildFamilies(t, estCfg, 33, 384, map[string][]uint64{"A": a, "B": b})

	var sum float64
	var union float64
	for _, q := range []string{"A - B", "A & B", "B - A"} {
		est, err := EstimateExpressionMultiLevel(expr.MustParse(q), fams, 0.2)
		if err != nil {
			t.Fatal(err)
		}
		sum += est.Value
		union = est.Union // same û for all three (same synopses, same ε)
	}
	if math.Abs(sum-union) > 1e-6*union {
		t.Errorf("partition estimates sum to %v, union estimate is %v", sum, union)
	}
}

// TestDeMorganStatistical: |A − (B ∪ C)| and |(A − B) ∩ (A − C)| are the
// same set; the estimators see different Boolean trees but identical
// witness outcomes, so the estimates must be exactly equal.
func TestDeMorganExact(t *testing.T) {
	rng := hashing.NewRNG(73)
	streams := map[string][]uint64{}
	for _, name := range []string{"A", "B", "C"} {
		var elems []uint64
		for i := 0; i < 1200; i++ {
			elems = append(elems, rng.Uint64n(4096))
		}
		streams[name] = elems
	}
	fams := buildFamilies(t, estCfg, 34, 256, streams)
	e1, err := EstimateExpressionMultiLevel(expr.MustParse("A - (B | C)"), fams, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := EstimateExpressionMultiLevel(expr.MustParse("(A - B) & (A - C)"), fams, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if e1.Value != e2.Value {
		t.Errorf("De Morgan forms estimate differently: %v vs %v", e1.Value, e2.Value)
	}
}

// TestDomainEdgeElements: elements at the extremes of the domain hash
// and count like any other.
func TestDomainEdgeElements(t *testing.T) {
	f := mustFamily(t, estCfg, 35, 128)
	edge := []uint64{0, 1, math.MaxUint64, math.MaxUint64 - 1, 1 << 63, hashing.MersennePrime, hashing.MersennePrime - 1}
	for _, e := range edge {
		f.Insert(e)
	}
	est, err := EstimateDistinct(f, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	// Tiny cardinalities are exactly recoverable from low levels: just
	// require a sane, positive, small estimate.
	if est.Value <= 0 || est.Value > 50 {
		t.Errorf("distinct estimate for 7 edge elements: %v", est.Value)
	}
	for _, e := range edge {
		f.Delete(e)
	}
	empty := mustFamily(t, estCfg, 35, 128)
	if !f.Equal(empty) {
		t.Error("edge elements did not cancel on deletion")
	}
}

// TestSkewRobustness: estimator accuracy is oblivious to the element
// domain's shape — sequential and strided domains (worst cases for
// weak hashing) estimate as well as uniform ones.
func TestSkewRobustness(t *testing.T) {
	const u, inter = 2048, 512
	node := expr.MustParse("A & B")
	for _, d := range datagen.Domains() {
		rng := hashing.NewRNG(900 + uint64(d))
		a, b, mult, err := datagen.SkewedOverlap(d, u, inter, rng)
		if err != nil {
			t.Fatal(err)
		}
		fams := map[string]*Family{
			"A": mustFamily(t, estCfg, 901, 384),
			"B": mustFamily(t, estCfg, 901, 384),
		}
		for i, e := range a {
			fams["A"].Update(e, mult[i%len(mult)])
		}
		for i, e := range b {
			fams["B"].Update(e, mult[i%len(mult)])
		}
		est, err := EstimateExpressionMultiLevel(node, fams, 0.2)
		if err != nil {
			t.Fatalf("%v: %v", d, err)
		}
		if e := relErr(est.Value, inter); e > 0.4 {
			t.Errorf("domain %v: estimate %.0f for true %d (rel err %.2f)", d, est.Value, inter, e)
		}
	}
}

// TestMultiLevelMatchesSingleLevelExpectation: over many independent
// workloads, single- and multi-level estimators must agree in the mean
// (both unbiased for |E|), with multi-level visibly tighter.
func TestMultiLevelMatchesSingleLevelExpectation(t *testing.T) {
	rng := hashing.NewRNG(74)
	const u, inter, runs = 2048, 512, 8
	node := expr.MustParse("A & B")
	var sumSingle, sumMulti, sqSingle, sqMulti float64
	nSingle := 0
	for run := 0; run < runs; run++ {
		a, b := overlapStreams(rng, u, inter)
		fams := buildFamilies(t, estCfg, rng.Uint64(), 256, map[string][]uint64{"A": a, "B": b})
		if est, err := EstimateExpression(node, fams, 0.2); err == nil {
			d := est.Value/inter - 1
			sumSingle += d
			sqSingle += d * d
			nSingle++
		}
		est, err := EstimateExpressionMultiLevel(node, fams, 0.2)
		if err != nil {
			t.Fatal(err)
		}
		d := est.Value/inter - 1
		sumMulti += d
		sqMulti += d * d
	}
	if nSingle == 0 {
		t.Fatal("single-level estimator never produced an estimate")
	}
	meanMulti := sumMulti / runs
	if math.Abs(meanMulti) > 0.25 {
		t.Errorf("multi-level bias %.3f too large", meanMulti)
	}
	rmsSingle := math.Sqrt(sqSingle / float64(nSingle))
	rmsMulti := math.Sqrt(sqMulti / runs)
	if rmsMulti > rmsSingle {
		t.Errorf("multi-level RMS error %.3f not below single-level %.3f", rmsMulti, rmsSingle)
	}
}
