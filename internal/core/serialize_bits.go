package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Serialization of bit families mirrors the counter-family format with
// magic "2LHB"; cell words are unsigned varints (mostly zero or
// small for sparse synopses).

const bitFamilyMagic = "2LHB"

// WriteTo serializes the bit family. It implements io.WriterTo.
func (f *BitFamily) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(bitFamilyMagic); err != nil {
		return 0, err
	}
	cw := &crcWriter{w: bw}
	var header [15]byte
	header[0] = familyVersion
	binary.LittleEndian.PutUint16(header[1:], uint16(f.cfg.Buckets))
	binary.LittleEndian.PutUint16(header[3:], uint16(f.cfg.SecondLevel))
	binary.LittleEndian.PutUint16(header[5:], uint16(f.cfg.FirstWise))
	binary.LittleEndian.PutUint64(header[7:], f.seed)
	if _, err := cw.Write(header[:]); err != nil {
		return cw.n + 4, err
	}
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], uint32(len(f.copies)))
	if _, err := cw.Write(u32[:]); err != nil {
		return cw.n + 4, err
	}
	var buf [binary.MaxVarintLen64]byte
	for _, x := range f.copies {
		for _, word := range x.bits {
			n := binary.PutUvarint(buf[:], word)
			if _, err := cw.Write(buf[:n]); err != nil {
				return cw.n + 4, err
			}
		}
	}
	binary.LittleEndian.PutUint32(u32[:], cw.crc)
	if _, err := bw.Write(u32[:]); err != nil {
		return cw.n + 4, err
	}
	if err := bw.Flush(); err != nil {
		return cw.n + 8, err
	}
	return cw.n + 8, nil
}

// ReadBitFamily deserializes a bit family written by WriteTo,
// verifying the checksum.
func ReadBitFamily(r io.Reader) (*BitFamily, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if string(magic) != bitFamilyMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadFormat, magic)
	}
	cr := &crcReader{r: br}
	header := make([]byte, 19)
	if _, err := io.ReadFull(cr, header); err != nil {
		return nil, fmt.Errorf("%w: truncated header: %v", ErrBadFormat, err)
	}
	if header[0] != familyVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadFormat, header[0])
	}
	cfg := Config{
		Buckets:     int(binary.LittleEndian.Uint16(header[1:])),
		SecondLevel: int(binary.LittleEndian.Uint16(header[3:])),
		FirstWise:   int(binary.LittleEndian.Uint16(header[5:])),
	}
	seed := binary.LittleEndian.Uint64(header[7:])
	copies := int(binary.LittleEndian.Uint32(header[15:]))
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	const maxCopies = 1 << 20
	if copies < 1 || copies > maxCopies {
		return nil, fmt.Errorf("%w: copy count %d out of range", ErrBadFormat, copies)
	}
	fam, err := NewBitFamily(cfg, seed, copies)
	if err != nil {
		return nil, err
	}
	byter := &crcByteReader{cr: cr}
	for _, x := range fam.copies {
		for i := range x.bits {
			w, err := binary.ReadUvarint(byter)
			if err != nil {
				return nil, fmt.Errorf("%w: truncated bit words: %v", ErrBadFormat, err)
			}
			x.bits[i] = w
		}
	}
	wantCRC := cr.crc
	var trailer [4]byte
	if _, err := io.ReadFull(br, trailer[:]); err != nil {
		return nil, fmt.Errorf("%w: missing checksum: %v", ErrBadFormat, err)
	}
	if got := binary.LittleEndian.Uint32(trailer[:]); got != wantCRC {
		return nil, fmt.Errorf("%w: checksum mismatch (got %#x, want %#x)", ErrBadFormat, got, wantCRC)
	}
	return fam, nil
}
