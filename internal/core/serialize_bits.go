package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// Serialization of bit families mirrors the counter-family format with
// magic "2LHB"; cell words are unsigned varints (mostly zero or
// small for sparse synopses).

const bitFamilyMagic = "2LHB"

// AppendTo appends the bit family's serialization to buf and returns
// the extended slice, mirroring Family.AppendTo.
func (f *BitFamily) AppendTo(buf []byte) []byte {
	start := len(buf)
	buf = append(buf, bitFamilyMagic...)
	var header [15]byte
	header[0] = familyVersion
	binary.LittleEndian.PutUint16(header[1:], uint16(f.cfg.Buckets))
	binary.LittleEndian.PutUint16(header[3:], uint16(f.cfg.SecondLevel))
	binary.LittleEndian.PutUint16(header[5:], uint16(f.cfg.FirstWise))
	binary.LittleEndian.PutUint64(header[7:], f.seed)
	buf = append(buf, header[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(f.copies)))
	for _, x := range f.copies {
		for _, word := range x.bits {
			buf = binary.AppendUvarint(buf, word)
		}
	}
	crc := crc32.ChecksumIEEE(buf[start+4:])
	return binary.LittleEndian.AppendUint32(buf, crc)
}

// WriteTo serializes the bit family. It implements io.WriterTo.
func (f *BitFamily) WriteTo(w io.Writer) (int64, error) {
	buf := f.AppendTo(nil)
	n, err := w.Write(buf)
	return int64(n), err
}

// ReadBitFamily deserializes a bit family written by WriteTo,
// verifying the checksum.
func ReadBitFamily(r io.Reader) (*BitFamily, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if string(magic) != bitFamilyMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadFormat, magic)
	}
	cr := &crcReader{r: br}
	header := make([]byte, 19)
	if _, err := io.ReadFull(cr, header); err != nil {
		return nil, fmt.Errorf("%w: truncated header: %v", ErrBadFormat, err)
	}
	if header[0] != familyVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadFormat, header[0])
	}
	cfg := Config{
		Buckets:     int(binary.LittleEndian.Uint16(header[1:])),
		SecondLevel: int(binary.LittleEndian.Uint16(header[3:])),
		FirstWise:   int(binary.LittleEndian.Uint16(header[5:])),
	}
	seed := binary.LittleEndian.Uint64(header[7:])
	copies := int(binary.LittleEndian.Uint32(header[15:]))
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	const maxCopies = 1 << 20
	if copies < 1 || copies > maxCopies {
		return nil, fmt.Errorf("%w: copy count %d out of range", ErrBadFormat, copies)
	}
	fam, err := NewBitFamily(cfg, seed, copies)
	if err != nil {
		return nil, err
	}
	byter := &crcByteReader{cr: cr}
	for _, x := range fam.copies {
		for i := range x.bits {
			w, err := binary.ReadUvarint(byter)
			if err != nil {
				return nil, fmt.Errorf("%w: truncated bit words: %v", ErrBadFormat, err)
			}
			x.bits[i] = w
		}
	}
	wantCRC := cr.crc
	var trailer [4]byte
	if _, err := io.ReadFull(br, trailer[:]); err != nil {
		return nil, fmt.Errorf("%w: missing checksum: %v", ErrBadFormat, err)
	}
	if got := binary.LittleEndian.Uint32(trailer[:]); got != wantCRC {
		return nil, fmt.Errorf("%w: checksum mismatch (got %#x, want %#x)", ErrBadFormat, got, wantCRC)
	}
	return fam, nil
}
