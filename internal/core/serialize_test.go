package core

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"testing"
	"testing/quick"

	"setsketch/internal/hashing"
)

func TestSerializeRoundTrip(t *testing.T) {
	cfg := Config{Buckets: 61, SecondLevel: 8, FirstWise: 4}
	f := mustFamily(t, cfg, 1234, 8)
	rng := hashing.NewRNG(1)
	for i := 0; i < 500; i++ {
		f.Update(rng.Uint64n(1<<20), int64(rng.Intn(5)+1))
	}
	var buf bytes.Buffer
	n, err := f.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	got, err := ReadFamily(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(f) {
		t.Fatal("round-tripped family differs")
	}
	// The reconstructed family must be fully functional: updating both
	// with the same element keeps them equal (hash functions restored).
	got.Insert(999)
	f.Insert(999)
	if !got.Equal(f) {
		t.Fatal("round-tripped family has different hash functions")
	}
}

func TestSerializeEmptyFamily(t *testing.T) {
	f := mustFamily(t, DefaultConfig(), 9, 4)
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	// Varint encoding keeps an empty 4-copy default family small.
	if buf.Len() > 20000 {
		t.Errorf("empty family serialized to %d bytes; varint compression broken", buf.Len())
	}
	got, err := ReadFamily(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(f) {
		t.Fatal("empty family round trip failed")
	}
}

func TestSerializeNegativeCounters(t *testing.T) {
	// Counters can be transiently negative at a site that only saw the
	// deletions of a distributed stream; zig-zag varints must survive.
	f := mustFamily(t, Config{Buckets: 61, SecondLevel: 4, FirstWise: 2}, 3, 2)
	f.Update(5, -10)
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFamily(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(f) {
		t.Fatal("negative counters corrupted by round trip")
	}
}

func TestReadFamilyRejectsCorruption(t *testing.T) {
	f := mustFamily(t, Config{Buckets: 61, SecondLevel: 4, FirstWise: 2}, 3, 2)
	f.Insert(1)
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	pristine := buf.Bytes()

	// Flip one payload byte: checksum must catch it.
	corrupted := append([]byte(nil), pristine...)
	corrupted[len(corrupted)/2] ^= 0xff
	if _, err := ReadFamily(bytes.NewReader(corrupted)); !errors.Is(err, ErrBadFormat) {
		t.Errorf("corrupted payload: err = %v, want ErrBadFormat", err)
	}

	// Truncations at every prefix length must error, never panic.
	for cut := 0; cut < len(pristine); cut += 7 {
		if _, err := ReadFamily(bytes.NewReader(pristine[:cut])); err == nil {
			t.Fatalf("truncation to %d bytes accepted", cut)
		}
	}

	// Wrong magic.
	bad := append([]byte("NOPE"), pristine[4:]...)
	if _, err := ReadFamily(bytes.NewReader(bad)); !errors.Is(err, ErrBadFormat) {
		t.Errorf("bad magic: err = %v, want ErrBadFormat", err)
	}

	// Wrong version.
	badVer := append([]byte(nil), pristine...)
	badVer[4] = 99
	if _, err := ReadFamily(bytes.NewReader(badVer)); !errors.Is(err, ErrBadFormat) {
		t.Errorf("bad version: err = %v, want ErrBadFormat", err)
	}
}

func TestSerializedSizeScalesWithContent(t *testing.T) {
	cfg := Config{Buckets: 61, SecondLevel: 32, FirstWise: 8}
	empty := mustFamily(t, cfg, 1, 64)
	full := mustFamily(t, cfg, 1, 64)
	rng := hashing.NewRNG(2)
	for i := 0; i < 20000; i++ {
		full.Insert(rng.Uint64n(1 << 24))
	}
	var be, bf bytes.Buffer
	if _, err := empty.WriteTo(&be); err != nil {
		t.Fatal(err)
	}
	if _, err := full.WriteTo(&bf); err != nil {
		t.Fatal(err)
	}
	if bf.Len() <= be.Len() {
		t.Errorf("full family (%d B) not larger than empty (%d B)", bf.Len(), be.Len())
	}
	raw := 8 * (61 + 61*32*2) * 64 * 2 // totals+counts, 64 copies, int64
	if bf.Len() >= raw {
		t.Errorf("varint encoding (%d B) not smaller than raw counters (%d B)", bf.Len(), raw)
	}
}

// TestSerializeQuickRoundTrip property-checks round-tripping over
// random update batches.
func TestSerializeQuickRoundTrip(t *testing.T) {
	cfg := Config{Buckets: 61, SecondLevel: 4, FirstWise: 2}
	f := func(elems []uint16, deltas []int8, seed uint16, copies uint8) bool {
		r := int(copies%4) + 1
		fam, err := NewFamily(cfg, uint64(seed), r)
		if err != nil {
			return false
		}
		for i, e := range elems {
			d := int64(1)
			if i < len(deltas) {
				d = int64(deltas[i])
			}
			fam.Update(uint64(e), d)
		}
		var buf bytes.Buffer
		if _, err := fam.WriteTo(&buf); err != nil {
			return false
		}
		got, err := ReadFamily(&buf)
		if err != nil {
			return false
		}
		return got.Equal(fam)
	}
	if err := quickCheck(t, f); err != nil {
		t.Error(err)
	}
}

// quickCheck wraps testing/quick with a bounded count.
func quickCheck(t *testing.T, f any) error {
	t.Helper()
	return quick.Check(f, &quick.Config{MaxCount: 40})
}

func TestSerializeDeterministic(t *testing.T) {
	f := mustFamily(t, Config{Buckets: 61, SecondLevel: 4, FirstWise: 2}, 3, 2)
	f.Insert(42)
	var b1, b2 bytes.Buffer
	if _, err := f.WriteTo(&b1); err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteTo(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("serialization is not deterministic")
	}
}

// TestSerializeGoldenBytes pins the wire format to byte-recorded
// golden values captured before the flat counter-layout refactor. The
// flat arena is an in-memory detail: WriteTo must keep emitting the
// copy-by-copy varint stream that sketchtool files and the distributed
// protocol already hold. If this test fails, the on-disk/wire format
// changed — that needs a version bump, not a golden update.
func TestSerializeGoldenBytes(t *testing.T) {
	// Small shape: exact bytes.
	f := mustFamily(t, Config{Buckets: 8, SecondLevel: 4, FirstWise: 3}, 0x5eed, 3)
	for e := uint64(0); e < 40; e++ {
		f.Update(e, int64(e%5)+1)
	}
	for e := uint64(0); e < 40; e += 4 {
		f.Update(e, -1)
	}
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	const goldenHex = "324c485301080004000300ed5e00000000000003000000920126100a0a000000583a464c920100444e12140e1826000c1a08080c041000020e000a0a000a000a00000a0a000a000a0000000000000000000000000000000000000000000000000084011e26000a0a00003a4a4e364c3842421e000a140c120c1212141a0c10160e180000000000000000000a000a000a000a000a000a02080208000000000000000000000000000000007c24201602000004403c28542c505e1e10141c081a0a1014140c0e120818120e0c0a04120412120400020002000202000000000000000000000000000000000000040400040000043d0acb81"
	if got := hex.EncodeToString(buf.Bytes()); got != goldenHex {
		t.Errorf("serialized bytes changed:\n got %s\nwant %s", got, goldenHex)
	}

	// Paper shape (61 buckets, s = 32, t = 8): too large to embed, so
	// pin its SHA-256.
	g := mustFamily(t, DefaultConfig(), 7, 4)
	for e := uint64(100); e < 160; e++ {
		g.Insert(e)
	}
	for e := uint64(100); e < 120; e++ {
		g.Delete(e)
	}
	var buf2 bytes.Buffer
	if _, err := g.WriteTo(&buf2); err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(buf2.Bytes())
	const goldenSum = "cda57cb7f104567a78ac8df6bcb97dbb86d1d17c70b6962cdc9c966e2110ffdd"
	if got := hex.EncodeToString(sum[:]); got != goldenSum {
		t.Errorf("paper-shape serialization sha256 = %s, want %s", got, goldenSum)
	}

	// And both must still round-trip through ReadFamily into families
	// the estimators can use (the consumers of sketchtool files).
	for _, b := range []*bytes.Buffer{&buf, &buf2} {
		got, err := ReadFamily(bytes.NewReader(b.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if err := got.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}
