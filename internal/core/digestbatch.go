package core

import (
	"fmt"

	"setsketch/internal/hashing"
)

// The batch digest kernel. The per-element digest path walks all r
// copies' hash constants — r polynomial coefficient vectors plus r·s
// second-level (a, b) pairs, ~72 KB at the default shape — for every
// element, so an uncached batch re-streams the whole constant set from
// L2 once per element. The batch kernel inverts the loop nest: it
// iterates copy-major, hashing every element of the batch against one
// copy's constants before moving to the next, so each constant is
// loaded once per batch and the independent per-element Horner chains
// interleave to fill multiplier stalls (see hashing.HashReducedBatch).
// The apply side does the same for the counter arenas: replaying a
// batch copy-major touches each copy's counter slab once instead of
// striding the full r-copy arena once per element.
//
// Everything here is a pure loop-order transformation of the scalar
// path — digestWordsBatch computes exactly digestWord per element, and
// UpdateRangeBatchDigest applies exactly applyDigest per (element,
// copy) — so batch results are bit-identical to the per-element path
// (enforced by TestDigestBatchMatchesScalar and FuzzDigestEquivalence).

// digestWordsBatch computes digestWord for every reduced element in xs,
// writing dw[k] = x.digestWord(xs[k]). hs is caller-provided hash
// scratch; dw, xs, and hs must have equal length and may not alias.
func (x *Sketch) digestWordsBatch(dw, xs, hs []uint64) {
	x.h.HashReducedBatch(hs, xs)
	w := x.cfg.Buckets
	for k, h := range hs {
		dw[k] = uint64(hashing.LSB(h, w))
	}
	x.gbank.PackColumns(dw, xs, digestBucketBits)
}

// DigestBatch computes the digests of every element in elems in one
// copy-major pass, amortizing the hash-constant traffic across the
// batch. The returned digests view one shared slab but are individually
// capped and never mutated after construction, so they are safe to
// cache and to ship between goroutines exactly like Digest's result.
// The configuration must be DigestPackable.
func (f *Family) DigestBatch(elems []uint64) []Digest {
	r := len(f.copies)
	slab := make([]uint64, len(elems)*r)
	ds := make([]Digest, len(elems))
	for k := range ds {
		ds[k] = Digest(slab[k*r : (k+1)*r : (k+1)*r])
	}
	f.DigestBatchInto(ds, elems)
	return ds
}

// DigestBatchInto computes elems' digests into ds, whose first
// len(elems) entries must each have length ≥ Copies(). It is the
// batch analogue of DigestInto for callers that manage digest storage
// themselves.
func (f *Family) DigestBatchInto(ds []Digest, elems []uint64) {
	if !f.cfg.DigestPackable() {
		panic(fmt.Sprintf("core: digest with SecondLevel = %d > %d", f.cfg.SecondLevel, DigestMaxSecondLevel))
	}
	n := len(elems)
	if n == 0 {
		return
	}
	// One scratch allocation per batch (three slices) against n·r hash
	// evaluations of real work; callers on the allocation-free paths
	// (estimate, frame decode) never reach here.
	scratch := make([]uint64, 3*n)
	xs, dw, hs := scratch[:n], scratch[n:2*n], scratch[2*n:]
	for k, e := range elems {
		xs[k] = hashing.Reduce61(e)
	}
	for i, x := range f.copies {
		x.digestWordsBatch(dw, xs, hs)
		for k := 0; k < n; k++ {
			ds[k][i] = dw[k]
		}
	}
}

// UpdateBatchDigest applies update k with delta deltas[k] and
// precomputed digest ds[k] to every copy, for all k, iterating
// copy-major so each copy's counter slab streams through cache once per
// batch. Equivalent to calling UpdateDigest(ds[k], deltas[k]) for every
// k in order; ds and deltas must have equal length.
func (f *Family) UpdateBatchDigest(ds []Digest, deltas []int64) {
	f.UpdateRangeBatchDigest(0, len(f.copies), ds, deltas)
}

// UpdateRangeBatchDigest is UpdateBatchDigest restricted to copies
// lo..hi-1 — the batch analogue of UpdateRangeDigest, with the same
// disjoint-storage sharding guarantee the ingest workers rely on.
func (f *Family) UpdateRangeBatchDigest(lo, hi int, ds []Digest, deltas []int64) {
	for i := lo; i < hi; i++ {
		x := f.copies[i]
		for k, d := range ds {
			x.applyDigest(d[i], deltas[k])
		}
	}
	f.bumpVersion()
}
