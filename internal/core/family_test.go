package core

import (
	"testing"

	"setsketch/internal/hashing"
)

// TestUpdateRangeCoversFamily: splitting the copy index space into
// disjoint ranges and updating each range separately must produce
// exactly the family a plain Update would have built.
func TestUpdateRangeCoversFamily(t *testing.T) {
	cfg := Config{Buckets: 32, SecondLevel: 8, FirstWise: 4}
	const r = 37 // deliberately not a multiple of the shard count
	whole, _ := NewFamily(cfg, 11, r)
	sharded, _ := NewFamily(cfg, 11, r)

	shards := [][2]int{{0, 10}, {10, 20}, {20, 37}}
	rng := hashing.NewRNG(3)
	for i := 0; i < 2000; i++ {
		e := rng.Uint64n(1 << 20)
		v := int64(1)
		if i%5 == 0 {
			v = -1
			e = rng.Uint64n(1 << 10) // deletions hit previously dense region
		}
		whole.Update(e, v)
		for _, sh := range shards {
			sharded.UpdateRange(sh[0], sh[1], e, v)
		}
	}
	if !whole.Equal(sharded) {
		t.Fatal("sharded UpdateRange differs from whole-family Update")
	}
	// Empty range is a no-op.
	before := sharded.Clone()
	sharded.UpdateRange(5, 5, 42, 1)
	if !before.Equal(sharded) {
		t.Error("empty UpdateRange mutated the family")
	}
}

// TestMergeRangeCoversFamily: merging a delta shard-by-shard must equal
// a whole-family Merge.
func TestMergeRangeCoversFamily(t *testing.T) {
	cfg := Config{Buckets: 32, SecondLevel: 8, FirstWise: 4}
	const r = 16
	base, _ := NewFamily(cfg, 7, r)
	delta, _ := NewFamily(cfg, 7, r)
	rng := hashing.NewRNG(9)
	for i := 0; i < 500; i++ {
		base.Insert(rng.Uint64n(1 << 16))
		delta.Insert(rng.Uint64n(1 << 16))
	}
	whole := base.Clone()
	if err := whole.Merge(delta); err != nil {
		t.Fatal(err)
	}
	sharded := base.Clone()
	for _, sh := range [][2]int{{0, 5}, {5, 11}, {11, 16}} {
		if err := sharded.MergeRange(sh[0], sh[1], delta); err != nil {
			t.Fatal(err)
		}
	}
	if !whole.Equal(sharded) {
		t.Fatal("sharded MergeRange differs from whole-family Merge")
	}

	// Misaligned and copy-count-mismatched deltas are rejected.
	other, _ := NewFamily(cfg, 8, r)
	if err := sharded.MergeRange(0, 4, other); err == nil {
		t.Error("MergeRange accepted a misaligned delta")
	}
	short, _ := NewFamily(cfg, 7, r-1)
	if err := sharded.MergeRange(0, 4, short); err == nil {
		t.Error("MergeRange accepted a copy-count mismatch")
	}
}
