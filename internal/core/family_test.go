package core

import (
	"testing"

	"setsketch/internal/hashing"
)

// TestUpdateRangeCoversFamily: splitting the copy index space into
// disjoint ranges and updating each range separately must produce
// exactly the family a plain Update would have built.
func TestUpdateRangeCoversFamily(t *testing.T) {
	cfg := Config{Buckets: 32, SecondLevel: 8, FirstWise: 4}
	const r = 37 // deliberately not a multiple of the shard count
	whole, _ := NewFamily(cfg, 11, r)
	sharded, _ := NewFamily(cfg, 11, r)

	shards := [][2]int{{0, 10}, {10, 20}, {20, 37}}
	rng := hashing.NewRNG(3)
	for i := 0; i < 2000; i++ {
		e := rng.Uint64n(1 << 20)
		v := int64(1)
		if i%5 == 0 {
			v = -1
			e = rng.Uint64n(1 << 10) // deletions hit previously dense region
		}
		whole.Update(e, v)
		for _, sh := range shards {
			sharded.UpdateRange(sh[0], sh[1], e, v)
		}
	}
	if !whole.Equal(sharded) {
		t.Fatal("sharded UpdateRange differs from whole-family Update")
	}
	// Empty range is a no-op.
	before := sharded.Clone()
	sharded.UpdateRange(5, 5, 42, 1)
	if !before.Equal(sharded) {
		t.Error("empty UpdateRange mutated the family")
	}
}

// TestMergeRangeCoversFamily: merging a delta shard-by-shard must equal
// a whole-family Merge.
func TestMergeRangeCoversFamily(t *testing.T) {
	cfg := Config{Buckets: 32, SecondLevel: 8, FirstWise: 4}
	const r = 16
	base, _ := NewFamily(cfg, 7, r)
	delta, _ := NewFamily(cfg, 7, r)
	rng := hashing.NewRNG(9)
	for i := 0; i < 500; i++ {
		base.Insert(rng.Uint64n(1 << 16))
		delta.Insert(rng.Uint64n(1 << 16))
	}
	whole := base.Clone()
	if err := whole.Merge(delta); err != nil {
		t.Fatal(err)
	}
	sharded := base.Clone()
	for _, sh := range [][2]int{{0, 5}, {5, 11}, {11, 16}} {
		if err := sharded.MergeRange(sh[0], sh[1], delta); err != nil {
			t.Fatal(err)
		}
	}
	if !whole.Equal(sharded) {
		t.Fatal("sharded MergeRange differs from whole-family Merge")
	}

	// Misaligned and copy-count-mismatched deltas are rejected.
	other, _ := NewFamily(cfg, 8, r)
	if err := sharded.MergeRange(0, 4, other); err == nil {
		t.Error("MergeRange accepted a misaligned delta")
	}
	short, _ := NewFamily(cfg, 7, r-1)
	if err := sharded.MergeRange(0, 4, short); err == nil {
		t.Error("MergeRange accepted a copy-count mismatch")
	}
}

// TestDigestMatchesUpdate: replaying a packed digest must touch exactly
// the counters a direct Update touches, across shapes, deletions, and
// the range entry points.
func TestDigestMatchesUpdate(t *testing.T) {
	for _, cfg := range []Config{
		DefaultConfig(), // paper shape: s = 32
		{Buckets: 8, SecondLevel: 1, FirstWise: 2},
		{Buckets: 61, SecondLevel: DigestMaxSecondLevel, FirstWise: 8},
	} {
		if !cfg.DigestPackable() {
			t.Fatalf("cfg %+v should be packable", cfg)
		}
		const r = 9
		direct, _ := NewFamily(cfg, 21, r)
		viaDigest, _ := NewFamily(cfg, 21, r)
		rng := hashing.NewRNG(8)
		for i := 0; i < 1500; i++ {
			e := rng.Uint64n(1 << 18)
			v := int64(rng.Intn(3) + 1)
			if i%4 == 0 {
				v = -1
				e = rng.Uint64n(1 << 8) // drive dense counters down through zero
			}
			direct.Update(e, v)
			d := viaDigest.Digest(e)
			// Split the replay across two disjoint copy ranges, as the
			// ingest workers do.
			viaDigest.UpdateRangeDigest(0, 4, d, v)
			viaDigest.UpdateRangeDigest(4, r, d, v)
		}
		if !direct.Equal(viaDigest) {
			t.Errorf("cfg %+v: digest-path family differs from direct updates", cfg)
		}
	}
}

// TestDigestAlignedFamilies: a digest computed by one family applies
// correctly to any aligned family — the property the ingest engine's
// shared per-seed cache relies on.
func TestDigestAlignedFamilies(t *testing.T) {
	cfg := Config{Buckets: 32, SecondLevel: 16, FirstWise: 4}
	a, _ := NewFamily(cfg, 5, 6)
	b, _ := NewFamily(cfg, 5, 6)
	want, _ := NewFamily(cfg, 5, 6)
	for e := uint64(0); e < 300; e++ {
		d := a.Digest(e) // a never receives the updates, only builds digests
		b.UpdateDigest(d, 2)
		want.Update(e, 2)
	}
	if !want.Equal(b) {
		t.Fatal("digest from an aligned sibling family applied incorrectly")
	}
}

// TestDigestUnpackable: shapes whose second-level bit vector cannot
// share a word with the bucket index must refuse to build digests.
func TestDigestUnpackable(t *testing.T) {
	cfg := Config{Buckets: 61, SecondLevel: DigestMaxSecondLevel + 1, FirstWise: 2}
	if cfg.DigestPackable() {
		t.Fatal("s = 59 reported packable")
	}
	f, _ := NewFamily(cfg, 1, 2)
	defer func() {
		if recover() == nil {
			t.Error("Digest on an unpackable shape did not panic")
		}
	}()
	f.Digest(1)
}

// TestCloneAndTruncateShareFlatLayout: Clone duplicates counters (and
// shares coins), Truncate views the flat prefix in place.
func TestCloneAndTruncateShareFlatLayout(t *testing.T) {
	cfg := Config{Buckets: 16, SecondLevel: 4, FirstWise: 2}
	f, _ := NewFamily(cfg, 13, 8)
	for e := uint64(0); e < 100; e++ {
		f.Insert(e)
	}
	c := f.Clone()
	if !c.Equal(f) {
		t.Fatal("clone differs")
	}
	c.Insert(7)
	if c.Equal(f) {
		t.Fatal("clone shares counter storage with original")
	}

	tr, err := f.Truncate(3)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Copies() != 3 {
		t.Fatalf("truncated to %d copies", tr.Copies())
	}
	// The truncated view shares storage: updating it must show through
	// the parent's first copies and nowhere else.
	before := f.Copy(5).Clone()
	tr.Insert(4242)
	if !f.Copy(5).Equal(before) {
		t.Error("truncated view wrote outside its copy prefix")
	}
	probe, _ := NewFamily(cfg, 13, 8)
	for e := uint64(0); e < 100; e++ {
		probe.Insert(e)
	}
	probe.Insert(4242)
	if !f.Copy(0).Equal(probe.Copy(0)) {
		t.Error("update through truncated view did not reach the parent's copy 0")
	}
}
