package core

import (
	"fmt"

	"setsketch/internal/hashing"
)

// Family is the r-fold replicated synopsis the estimators consume: r
// independent 2-level hash sketches of one update stream, with copy i's
// hash functions derived deterministically from (master seed, i).
//
// Families for different streams built from the same master seed and
// configuration are aligned copy-by-copy — the "stored coins" of the
// distributed-streams model: every site derives the identical hash
// functions from the shared seed, so synopses shipped to a coordinator
// merge and compare exactly.
type Family struct {
	cfg    Config
	seed   uint64
	copies []*Sketch
}

// NewFamily builds a family of r empty sketches from a master seed.
func NewFamily(cfg Config, seed uint64, r int) (*Family, error) {
	if r < 1 {
		return nil, fmt.Errorf("core: family needs at least 1 copy, got %d", r)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	copies := make([]*Sketch, r)
	for i := range copies {
		sk, err := NewSketch(cfg, hashing.DeriveSeed(seed, uint64(i)))
		if err != nil {
			return nil, err
		}
		copies[i] = sk
	}
	return &Family{cfg: cfg, seed: seed, copies: copies}, nil
}

// Config returns the family's sketch configuration.
func (f *Family) Config() Config { return f.cfg }

// Seed returns the master seed the family's coins were derived from.
func (f *Family) Seed() uint64 { return f.seed }

// Copies returns the number of independent sketch copies r.
func (f *Family) Copies() int { return len(f.copies) }

// Copy returns the i-th sketch copy.
func (f *Family) Copy(i int) *Sketch { return f.copies[i] }

// Update applies the stream update ⟨e, ±v⟩ to every copy.
func (f *Family) Update(e uint64, v int64) {
	for _, x := range f.copies {
		x.Update(e, v)
	}
}

// UpdateRange applies ⟨e, ±v⟩ to copies lo..hi-1 only. Because the r
// copies are independent sketches, updates to disjoint copy ranges
// touch disjoint counter storage — this is the lock-free entry point
// the ingest workers use to shard one family across goroutines, each
// goroutine owning its own [lo, hi) slice of the copies.
func (f *Family) UpdateRange(lo, hi int, e uint64, v int64) {
	for _, x := range f.copies[lo:hi] {
		x.Update(e, v)
	}
}

// MergeRange adds copies lo..hi-1 of g into the same copies of f. Like
// UpdateRange it touches only the [lo, hi) copy shard, so disjoint
// ranges of the same family can be merged concurrently; counter
// addition makes it commute with concurrent UpdateRange calls on the
// same shard only if those are serialized per shard (one owner per
// range). The families must be aligned with equal copy counts.
func (f *Family) MergeRange(lo, hi int, g *Family) error {
	if !f.Aligned(g) {
		return ErrNotAligned
	}
	if len(f.copies) != len(g.copies) {
		return fmt.Errorf("core: merging families with %d and %d copies", len(f.copies), len(g.copies))
	}
	for i := lo; i < hi; i++ {
		if err := f.copies[i].Merge(g.copies[i]); err != nil {
			return err
		}
	}
	return nil
}

// Insert is Update(e, +1).
func (f *Family) Insert(e uint64) { f.Update(e, 1) }

// Delete is Update(e, −1).
func (f *Family) Delete(e uint64) { f.Update(e, -1) }

// Aligned reports whether g was built with the same master seed and
// configuration (and hence the same per-copy hash functions) as f.
// Only the copy-count prefix min(f.Copies(), g.Copies()) is usable by
// estimators that take both.
func (f *Family) Aligned(g *Family) bool {
	return f.cfg == g.cfg && f.seed == g.seed
}

// Merge adds g's counters into f copy-by-copy, making f the synopsis of
// the combined update stream. The families must be aligned and have the
// same number of copies.
func (f *Family) Merge(g *Family) error {
	if !f.Aligned(g) {
		return ErrNotAligned
	}
	if len(f.copies) != len(g.copies) {
		return fmt.Errorf("core: merging families with %d and %d copies", len(f.copies), len(g.copies))
	}
	for i := range f.copies {
		if err := f.copies[i].Merge(g.copies[i]); err != nil {
			return err
		}
	}
	return nil
}

// Clone returns a deep copy of the family.
func (f *Family) Clone() *Family {
	copies := make([]*Sketch, len(f.copies))
	for i, x := range f.copies {
		copies[i] = x.Clone()
	}
	return &Family{cfg: f.cfg, seed: f.seed, copies: copies}
}

// Reset zeroes every copy's counters.
func (f *Family) Reset() {
	for _, x := range f.copies {
		x.Reset()
	}
}

// Truncate returns a view of the family restricted to its first r
// copies, sharing counter storage with f. Estimating from a prefix of
// a larger family is how the experiment harness sweeps the
// accuracy-vs-space trade-off without rebuilding synopses.
func (f *Family) Truncate(r int) (*Family, error) {
	if r < 1 || r > len(f.copies) {
		return nil, fmt.Errorf("core: truncating %d-copy family to %d copies", len(f.copies), r)
	}
	return &Family{cfg: f.cfg, seed: f.seed, copies: f.copies[:r]}, nil
}

// Equal reports whether both families are aligned and every pair of
// corresponding copies holds identical counters.
func (f *Family) Equal(g *Family) bool {
	if !f.Aligned(g) || len(f.copies) != len(g.copies) {
		return false
	}
	for i := range f.copies {
		if !f.copies[i].Equal(g.copies[i]) {
			return false
		}
	}
	return true
}

// Validate checks the internal invariants of every copy.
func (f *Family) Validate() error {
	for i, x := range f.copies {
		if err := x.Validate(); err != nil {
			return fmt.Errorf("copy %d: %w", i, err)
		}
	}
	return nil
}

// MemoryBytes reports the total counter footprint across all copies.
func (f *Family) MemoryBytes() int {
	var n int
	for _, x := range f.copies {
		n += x.MemoryBytes()
	}
	return n
}
