package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"setsketch/internal/hashing"
)

// Family is the r-fold replicated synopsis the estimators consume: r
// independent 2-level hash sketches of one update stream, with copy i's
// hash functions derived deterministically from (master seed, i).
//
// Families for different streams built from the same master seed and
// configuration are aligned copy-by-copy — the "stored coins" of the
// distributed-streams model: every site derives the identical hash
// functions from the shared seed, so synopses shipped to a coordinator
// merge and compare exactly.
//
// All r copies' counters live in two family-owned contiguous slices;
// the copies are views into them (copy i's totals occupy
// totals[i·strideTotals, i·strideTotals+Buckets), likewise counts).
// The flat layout turns Merge, Reset, and Equal into single linear
// passes and keeps the update path walking one cache-friendly arena
// instead of r separately allocated counter arrays. Per-copy strides
// are rounded up to a whole cache line (see padStride) so that copies
// never share a line: the ingest workers mutate disjoint copy ranges
// of one family concurrently, and an unpadded 61-bucket totals array
// would put the seam between two workers' shards mid-line, making
// every update at the boundary a coherence miss. The padding lanes are
// always zero and are invisible to the serialized form: WriteTo still
// walks copy-by-copy, so the wire bytes are identical to the unpadded
// layout's.
type Family struct {
	cfg    Config
	seed   uint64
	copies []*Sketch
	totals []int64 // len r·strideTotals; copy i at [i·st, i·st+Buckets)
	counts []int64 // len r·strideCounts; copy i at [i·sc, i·sc+counters())

	// version counts counter mutations (Update/Merge/Reset …) and gates
	// the lazily rebuilt query view (see queryview.go). It is a shared
	// pointer because Truncate views alias the same counter storage:
	// a mutation through any view must invalidate all of them. Atomic
	// because ingest workers call UpdateRange concurrently on disjoint
	// copy shards.
	version *atomic.Uint64
	viewMu  sync.Mutex
	view    *familyView
}

// NewFamily builds a family of r empty sketches from a master seed.
func NewFamily(cfg Config, seed uint64, r int) (*Family, error) {
	if r < 1 {
		return nil, fmt.Errorf("core: family needs at least 1 copy, got %d", r)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	f := &Family{
		cfg:     cfg,
		seed:    seed,
		copies:  make([]*Sketch, r),
		totals:  make([]int64, r*cfg.strideTotals()),
		counts:  make([]int64, r*cfg.strideCounts()),
		version: new(atomic.Uint64),
	}
	for i := range f.copies {
		f.copies[i] = newSketchView(cfg, hashing.DeriveSeed(seed, uint64(i)),
			f.copyTotals(i), f.copyCounts(i))
	}
	return f, nil
}

// arenaAlign is the arena alignment unit in int64s: 8 counters = 64
// bytes, one cache line on every target this repo benches on.
const arenaAlign = 8

// padStride rounds a per-copy counter count up to a whole cache line so
// consecutive copies in the flat arenas never share a line. The padding
// lanes are never written (copy views are length-capped) and so stay
// zero for the family's lifetime — which is what lets Merge, Reset, and
// Equal keep running over the full padded arenas.
func padStride(n int) int { return (n + arenaAlign - 1) &^ (arenaAlign - 1) }

// strideTotals is the padded per-copy stride of the totals arena.
func (c Config) strideTotals() int { return padStride(c.Buckets) }

// strideCounts is the padded per-copy stride of the counts arena.
func (c Config) strideCounts() int { return padStride(c.counters()) }

// copyTotals returns copy i's slice of the flat totals arena, capped so
// an erroneous append cannot bleed into the padding or the next copy's
// counters.
func (f *Family) copyTotals(i int) []int64 {
	st, nb := f.cfg.strideTotals(), f.cfg.Buckets
	return f.totals[i*st : i*st+nb : i*st+nb]
}

// copyCounts returns copy i's slice of the flat counts arena.
func (f *Family) copyCounts(i int) []int64 {
	sc, nc := f.cfg.strideCounts(), f.cfg.counters()
	return f.counts[i*sc : i*sc+nc : i*sc+nc]
}

// Config returns the family's sketch configuration.
func (f *Family) Config() Config { return f.cfg }

// Seed returns the master seed the family's coins were derived from.
func (f *Family) Seed() uint64 { return f.seed }

// Copies returns the number of independent sketch copies r.
func (f *Family) Copies() int { return len(f.copies) }

// Copy returns the i-th sketch copy.
func (f *Family) Copy(i int) *Sketch { return f.copies[i] }

// Update applies the stream update ⟨e, ±v⟩ to every copy. The element
// is reduced into the hash field once, not once per copy.
func (f *Family) Update(e uint64, v int64) {
	er := hashing.Reduce61(e)
	for _, x := range f.copies {
		x.updateReduced(er, v)
	}
	f.bumpVersion()
}

// UpdateRange applies ⟨e, ±v⟩ to copies lo..hi-1 only. Because the r
// copies are independent sketches, updates to disjoint copy ranges
// touch disjoint counter storage — this is the lock-free entry point
// the ingest workers use to shard one family across goroutines, each
// goroutine owning its own [lo, hi) slice of the copies.
func (f *Family) UpdateRange(lo, hi int, e uint64, v int64) {
	er := hashing.Reduce61(e)
	for _, x := range f.copies[lo:hi] {
		x.updateReduced(er, v)
	}
	f.bumpVersion()
}

// Digest is the packed replay form of one element's hash evaluations
// across a whole family: word i holds copy i's first-level bucket and
// second-level bit vector (see digestWord). Digests are pure functions
// of (seed, configuration, element) — the stored coins — so they are
// valid for every family aligned with the one that built them, can be
// cached across a stream, and can be shipped between goroutines freely
// (they are never mutated after construction).
type Digest []uint64

// DigestMaxSecondLevel is the largest s whose second-level bit vector
// still fits a digest word next to the 6-bit bucket index.
const DigestMaxSecondLevel = 64 - digestBucketBits

// DigestPackable reports whether sketches of this shape can pack an
// element's full hash outcome into one uint64 per copy (s ≤ 58; the
// paper's experimental shape s = 32 fits comfortably).
func (c Config) DigestPackable() bool { return c.SecondLevel <= DigestMaxSecondLevel }

// Digest evaluates all r first-level hashes and r·s second-level bits
// for e — the entire per-element hash bill — and packs them. Applying
// the result via UpdateDigest costs s+1 additions per copy with zero
// field arithmetic. The configuration must be DigestPackable.
func (f *Family) Digest(e uint64) Digest {
	d := make(Digest, len(f.copies))
	f.DigestInto(d, e)
	return d
}

// DigestInto computes e's digest into d, which must have length ≥
// Copies(). It lets callers that manage their own digest storage (the
// ingest cache) avoid a per-element allocation.
func (f *Family) DigestInto(d Digest, e uint64) {
	if !f.cfg.DigestPackable() {
		panic(fmt.Sprintf("core: digest with SecondLevel = %d > %d", f.cfg.SecondLevel, DigestMaxSecondLevel))
	}
	er := hashing.Reduce61(e)
	for i, x := range f.copies {
		d[i] = x.digestWord(er)
	}
}

// UpdateDigest applies the stream update ⟨e, ±v⟩ to every copy given
// e's precomputed digest: s+1 counter additions per copy, no hashing.
// Equivalent to Update(e, v) when d = f.Digest(e) (or the digest of any
// aligned family).
func (f *Family) UpdateDigest(d Digest, v int64) {
	f.UpdateRangeDigest(0, len(f.copies), d, v)
}

// UpdateRangeDigest applies a digest update to copies lo..hi-1 only —
// the digest-path analogue of UpdateRange, with the same disjoint-
// storage sharding guarantee.
func (f *Family) UpdateRangeDigest(lo, hi int, d Digest, v int64) {
	for i := lo; i < hi; i++ {
		f.copies[i].applyDigest(d[i], v)
	}
	f.bumpVersion()
}

// MergeRange adds copies lo..hi-1 of g into the same copies of f. Like
// UpdateRange it touches only the [lo, hi) copy shard, so disjoint
// ranges of the same family can be merged concurrently; counter
// addition makes it commute with concurrent UpdateRange calls on the
// same shard only if those are serialized per shard (one owner per
// range). The families must be aligned with equal copy counts.
func (f *Family) MergeRange(lo, hi int, g *Family) error {
	if !f.Aligned(g) {
		return ErrNotAligned
	}
	if len(f.copies) != len(g.copies) {
		return fmt.Errorf("core: merging families with %d and %d copies", len(f.copies), len(g.copies))
	}
	// Padded strides: the ranged-over slices include the padding lanes,
	// which are zero on both sides, so adding them is a no-op.
	st, sc := f.cfg.strideTotals(), f.cfg.strideCounts()
	for i, t := range g.totals[lo*st : hi*st] {
		f.totals[lo*st+i] += t
	}
	for i, c := range g.counts[lo*sc : hi*sc] {
		f.counts[lo*sc+i] += c
	}
	f.bumpVersion()
	return nil
}

// Insert is Update(e, +1).
func (f *Family) Insert(e uint64) { f.Update(e, 1) }

// Delete is Update(e, −1).
func (f *Family) Delete(e uint64) { f.Update(e, -1) }

// Aligned reports whether g was built with the same master seed and
// configuration (and hence the same per-copy hash functions) as f.
// Only the copy-count prefix min(f.Copies(), g.Copies()) is usable by
// estimators that take both.
func (f *Family) Aligned(g *Family) bool {
	return f.cfg == g.cfg && f.seed == g.seed
}

// Merge adds g's counters into f copy-by-copy, making f the synopsis of
// the combined update stream. With the flat layout this is two linear
// slice additions regardless of r. The families must be aligned and
// have the same number of copies.
func (f *Family) Merge(g *Family) error {
	if !f.Aligned(g) {
		return ErrNotAligned
	}
	if len(f.copies) != len(g.copies) {
		return fmt.Errorf("core: merging families with %d and %d copies", len(f.copies), len(g.copies))
	}
	for i, t := range g.totals {
		f.totals[i] += t
	}
	for i, c := range g.counts {
		f.counts[i] += c
	}
	f.bumpVersion()
	return nil
}

// Clone returns a deep copy of the family. The copies share the
// original's immutable hash functions; only counter storage is
// duplicated.
func (f *Family) Clone() *Family {
	g := &Family{
		cfg:     f.cfg,
		seed:    f.seed,
		copies:  make([]*Sketch, len(f.copies)),
		totals:  make([]int64, len(f.totals)),
		counts:  make([]int64, len(f.counts)),
		version: new(atomic.Uint64),
	}
	copy(g.totals, f.totals)
	copy(g.counts, f.counts)
	for i, x := range f.copies {
		g.copies[i] = x.viewWith(g.copyTotals(i), g.copyCounts(i))
	}
	return g
}

// Reset zeroes every copy's counters.
func (f *Family) Reset() {
	for i := range f.totals {
		f.totals[i] = 0
	}
	for i := range f.counts {
		f.counts[i] = 0
	}
	f.bumpVersion()
}

// Truncate returns a view of the family restricted to its first r
// copies, sharing counter storage with f. Estimating from a prefix of
// a larger family is how the experiment harness sweeps the
// accuracy-vs-space trade-off without rebuilding synopses.
func (f *Family) Truncate(r int) (*Family, error) {
	if r < 1 || r > len(f.copies) {
		return nil, fmt.Errorf("core: truncating %d-copy family to %d copies", len(f.copies), r)
	}
	return &Family{
		cfg:    f.cfg,
		seed:   f.seed,
		copies: f.copies[:r],
		totals: f.totals[:r*f.cfg.strideTotals()],
		counts: f.counts[:r*f.cfg.strideCounts()],
		// Share the parent's version counter: the view aliases the
		// parent's counter storage, so mutations through either must
		// invalidate both caches. The view cache itself is per-view
		// (different r ⇒ different bitmap shapes).
		version: f.version,
	}, nil
}

// Equal reports whether both families are aligned and every pair of
// corresponding copies holds identical counters.
func (f *Family) Equal(g *Family) bool {
	if !f.Aligned(g) || len(f.copies) != len(g.copies) {
		return false
	}
	for i, t := range f.totals {
		if t != g.totals[i] {
			return false
		}
	}
	for i, c := range f.counts {
		if c != g.counts[i] {
			return false
		}
	}
	return true
}

// Validate checks the internal invariants of every copy.
func (f *Family) Validate() error {
	for i, x := range f.copies {
		if err := x.Validate(); err != nil {
			return fmt.Errorf("copy %d: %w", i, err)
		}
	}
	return nil
}

// MemoryBytes reports the total counter footprint across all copies —
// the quantity the paper's space theorems bound, excluding the arena
// alignment padding (which is an implementation artifact, not synopsis
// state) and the O(t log M) hash-seed storage.
func (f *Family) MemoryBytes() int {
	if len(f.totals) == 0 && len(f.counts) == 0 {
		return 0 // per-copy storage (ToCounters views) reports as before
	}
	return 8 * len(f.copies) * (f.cfg.Buckets + f.cfg.counters())
}
