package core

import "sync/atomic"

// EstimatorStats aggregates cheap atomic counters over every estimate
// computed in the process — the observable quality signals of the
// paper's witness scheme. The singleton hit rate (SingletonHits /
// SingletonChecks) is the yield of valid 0/1 observations per probed
// (copy, level) pair, and together with Witnesses it determines the
// confidence of every reported estimate: few valid observations mean a
// wide binomial error bar regardless of the sketch size.
//
// The counters are process-global so that the estimate path — which has
// no handle on any particular coordinator — stays free of plumbing; the
// cost is a handful of atomic adds per estimate call, not per bucket.
// Exporters (distributed.Coordinator.SetObservability, the sketchd
// admin endpoint) surface them as estimator_* series.
type EstimatorStats struct {
	// Estimates counts witness-estimator invocations (expression,
	// difference, and intersection estimates; unions count separately).
	Estimates atomic.Uint64
	// NoObservations counts estimates that failed with
	// ErrNoObservations: no copy yielded a valid witness observation.
	NoObservations atomic.Uint64
	// SingletonChecks counts (copy, level) union-bucket singleton
	// probes performed by witness estimators.
	SingletonChecks atomic.Uint64
	// SingletonHits counts probes that found a singleton union bucket,
	// i.e. valid 0/1 observations (the paper's r').
	SingletonHits atomic.Uint64
	// Witnesses counts valid observations that witnessed the estimated
	// expression (the paper's positive observations).
	Witnesses atomic.Uint64
	// UnionEstimates counts Fig. 5 / ML union-estimator invocations,
	// including the û sub-estimates inside witness estimators.
	UnionEstimates atomic.Uint64
	// UnionLevelScans counts first-level bucket indices scanned by the
	// Fig. 5 level scan (epoch/copy work feeding the union estimate).
	UnionLevelScans atomic.Uint64
}

// Stats is the process-wide estimator counter set.
var Stats EstimatorStats

// recordWitnessStats folds one witness-estimator run (checks singleton
// probes, est the resulting observation tallies) into Stats.
func recordWitnessStats(checks uint64, est Estimate) {
	Stats.Estimates.Add(1)
	Stats.SingletonChecks.Add(checks)
	Stats.SingletonHits.Add(uint64(est.Valid))
	Stats.Witnesses.Add(uint64(est.Witnesses))
	if est.Valid == 0 {
		Stats.NoObservations.Add(1)
	}
}

// Snapshot returns the counters as a name -> value map, keyed by the
// exported estimator_* series names.
func (s *EstimatorStats) Snapshot() map[string]uint64 {
	return map[string]uint64{
		"estimator_estimates_total":         s.Estimates.Load(),
		"estimator_no_observations_total":   s.NoObservations.Load(),
		"estimator_singleton_checks_total":  s.SingletonChecks.Load(),
		"estimator_singleton_hits_total":    s.SingletonHits.Load(),
		"estimator_witnesses_total":         s.Witnesses.Load(),
		"estimator_union_estimates_total":   s.UnionEstimates.Load(),
		"estimator_union_level_scans_total": s.UnionLevelScans.Load(),
	}
}
