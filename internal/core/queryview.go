package core

// familyView is the query kernel's packed occupancy summary of one
// family: everything the witness scan reads, rebuilt lazily from the
// counters (or bits) whenever the family's version counter moves and
// then shared read-only by all estimate calls until the next mutation.
//
//   - occ[i] bit b       — copy i's first-level bucket b is non-empty.
//     One word per copy suffices because Config.Validate caps Buckets
//     at hashing.FieldBits = 61.
//   - sig[(i·Buckets+b)·wps + w] — word w of copy i / bucket b's cell
//     signature: bit 2j+v is "second-level cell (g_j, side v) hit".
//     A bucket is a singleton iff it is occupied and no g_j pair has
//     both sides hit: or&(or>>1)&pairMask == 0 (pairs never straddle a
//     word because the even side always sits at an even bit offset).
//
// A view is immutable once published; concurrent estimates may share
// it freely.
type familyView struct {
	version uint64   // family version the view was built at
	occ     []uint64 // len r
	sig     []uint64 // len r·Buckets·wps
	wps     int      // signature words per bucket: ceil(2s / 64)
}

// pairMask selects the even (side-0) bit of every second-level pair.
const pairMask = 0x5555555555555555

// sigWords returns the signature words per bucket for a configuration.
func sigWords(cfg Config) int { return (2*cfg.SecondLevel + 63) / 64 }

// sigCollision evaluates the packed singleton test over an OR-combined
// signature word: some pair has both sides hit ⇔ not a singleton.
func sigCollision(or uint64) bool { return or&(or>>1)&pairMask != 0 }

// Version returns the family's mutation counter. It starts at 0 and
// increases on every family-level mutation (Update, UpdateRange,
// digest updates, Merge, MergeRange, Reset); Truncate views share the
// parent's counter. Watchers use it to skip re-evaluation rounds when
// nothing they reference has changed.
func (f *Family) Version() uint64 {
	if f.version == nil {
		return 0
	}
	return f.version.Load()
}

func (f *Family) bumpVersion() {
	if f.version != nil {
		f.version.Add(1)
	}
}

// Version mirrors Family.Version for bit families.
func (f *BitFamily) Version() uint64 {
	if f.version == nil {
		return 0
	}
	return f.version.Load()
}

func (f *BitFamily) bumpVersion() {
	if f.version != nil {
		f.version.Add(1)
	}
}

// queryView returns the current packed view of the family, rebuilding
// it if the version counter moved since the cached build. Safe for
// concurrent callers (estimates run under read locks in the processor
// and coordinator); a nil version pointer (zero-value Family) disables
// caching and rebuilds every call.
func (f *Family) queryView() *familyView {
	f.viewMu.Lock()
	defer f.viewMu.Unlock()
	ver := f.Version()
	if f.view != nil && f.version != nil && f.view.version == ver {
		return f.view
	}
	v := buildCounterView(f, ver)
	if f.version != nil {
		f.view = v
	}
	return v
}

func buildCounterView(f *Family, ver uint64) *familyView {
	nb, s := f.cfg.Buckets, f.cfg.SecondLevel
	wps := sigWords(f.cfg)
	v := &familyView{
		version: ver,
		occ:     make([]uint64, len(f.copies)),
		sig:     make([]uint64, len(f.copies)*nb*wps),
		wps:     wps,
	}
	for i, x := range f.copies {
		// Read through the copy's own slices, not the family arenas:
		// ToCounters-built families have per-copy storage and nil arenas.
		var occ uint64
		base := i * nb * wps
		for b := 0; b < nb; b++ {
			if x.totals[b] != 0 {
				occ |= 1 << uint(b)
			}
			cells := x.counts[b*s*2 : (b+1)*s*2]
			for j, c := range cells {
				if c != 0 {
					v.sig[base+b*wps+j/64] |= 1 << uint(j%64)
				}
			}
		}
		v.occ[i] = occ
	}
	return v
}

// queryView mirrors Family.queryView for bit families. The signature
// words are the sketch's own packed cells re-laid per bucket; bucket
// occupancy comes from the g_1 pair exactly as BucketEmpty reads it.
func (f *BitFamily) queryView() *familyView {
	f.viewMu.Lock()
	defer f.viewMu.Unlock()
	ver := f.Version()
	if f.view != nil && f.version != nil && f.view.version == ver {
		return f.view
	}
	v := buildBitView(f, ver)
	if f.version != nil {
		f.view = v
	}
	return v
}

func buildBitView(f *BitFamily, ver uint64) *familyView {
	nb, s := f.cfg.Buckets, f.cfg.SecondLevel
	wps := sigWords(f.cfg)
	v := &familyView{
		version: ver,
		occ:     make([]uint64, len(f.copies)),
		sig:     make([]uint64, len(f.copies)*nb*wps),
		wps:     wps,
	}
	for i, x := range f.copies {
		var occ uint64
		base := i * nb * wps
		for b := 0; b < nb; b++ {
			first := b * s * 2
			var bucketOcc uint64
			for w := 0; w < wps; w++ {
				lo := first + w*64
				n := 2*s - w*64
				if n > 64 {
					n = 64
				}
				word := readBits(x.bits, lo, n)
				v.sig[base+b*wps+w] = word
				bucketOcc |= word
			}
			if bucketOcc != 0 {
				occ |= 1 << uint(b)
			}
		}
		v.occ[i] = occ
	}
	return v
}

// readBits extracts n (≤ 64) bits starting at absolute bit offset lo
// from a packed bit array.
func readBits(bits []uint64, lo, n int) uint64 {
	w, off := lo/64, uint(lo%64)
	out := bits[w] >> off
	if off > 0 && w+1 < len(bits) {
		out |= bits[w+1] << (64 - off)
	}
	if n < 64 {
		out &= 1<<uint(n) - 1
	}
	return out
}
