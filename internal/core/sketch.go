// Package core implements the paper's primary contribution: the 2-level
// hash sketch synopsis for continuous update streams and the (ε, δ)
// estimators for set union, set difference, set intersection, and general
// set-expression cardinalities built on it (Ganguly, Garofalakis,
// Rastogi; SIGMOD 2003).
//
// A 2-level hash sketch for a streaming multi-set A is conceptually a
// three-dimensional counter array X_A of size Θ(log M) × s × 2 (paper
// Fig. 3). The first level places each element e in bucket LSB(h(e))
// for a t-wise independent hash h, so bucket l receives a 2^−(l+1)
// fraction of the distinct elements. The second level splits each
// bucket's elements by s pairwise-independent binary hashes g_1 … g_s,
// enabling high-confidence singleton tests (§3.2). Counters rather than
// bits make the synopsis linear: an update ⟨e, ±v⟩ adds ±v to the s+1
// affected counters, so deletions exactly cancel insertions ("the sketch
// obtained at the end of an update stream is identical to a sketch that
// never sees the deleted items", §3.1) and sketches of sub-streams merge
// by counter addition — the property that powers both the distributed
// stored-coins model and the n-way singleton-union checks of §4.
//
//sketchvet:bitexact
package core

import (
	"errors"
	"fmt"
	"math"

	"setsketch/internal/hashing"
)

// Config carries the shape parameters of a 2-level hash sketch.
type Config struct {
	// Buckets is the number of first-level buckets (Θ(log M) in the
	// paper; the default is the hash-field width, 61, which covers
	// domains up to M² for M = 2^30 just as the paper's h: [M] → [M^k]
	// with k = 2 does).
	Buckets int

	// SecondLevel is s, the number of second-level binary hash
	// functions. Each elementary property check errs with probability
	// at most 2^−s (Lemma 3.1). The paper's experiments fix s = 32.
	SecondLevel int

	// FirstWise is the independence degree t of the first-level hash
	// family. §3.6 shows t = Θ(log 1/ε) suffices; the default of 8
	// covers ε down to well below 1%.
	FirstWise int
}

// DefaultConfig returns the configuration used throughout the paper's
// experimental study (§5): s = 32 second-level functions, 8-wise
// independent first-level hashing, and the full 61-bucket first level.
func DefaultConfig() Config {
	return Config{Buckets: hashing.FieldBits, SecondLevel: 32, FirstWise: 8}
}

// Validate checks the configuration and returns a descriptive error if
// any parameter is out of range.
func (c Config) Validate() error {
	if c.Buckets < 1 || c.Buckets > hashing.FieldBits {
		return fmt.Errorf("core: Buckets = %d out of range [1, %d]", c.Buckets, hashing.FieldBits)
	}
	if c.SecondLevel < 1 {
		return fmt.Errorf("core: SecondLevel = %d, need at least 1", c.SecondLevel)
	}
	if c.FirstWise < 2 {
		return fmt.Errorf("core: FirstWise = %d, need at least pairwise (2)", c.FirstWise)
	}
	return nil
}

// counters returns the number of second-level counters in one sketch.
func (c Config) counters() int { return c.Buckets * c.SecondLevel * 2 }

// Sketch is a single 2-level hash sketch instance: one first-level hash
// function, s second-level binary hash functions, and the counter
// array. Sketches built from the same (seed, Config) pair use identical
// hash functions and can be merged and compared bucket-by-bucket.
//
// Sketch methods are not safe for concurrent mutation; wrap updates in
// external synchronization or shard streams across goroutines.
type Sketch struct {
	cfg  Config
	seed uint64
	h    *hashing.Poly
	g    []*hashing.PairBit
	// gbank is g flattened into contiguous coefficient arrays for the
	// batch digest kernel; nil when s > 64 (shape not digest-packable,
	// so the batch kernel never runs). Same functions, same bits.
	gbank *hashing.PairBitBank

	// totals[b] is the sum of net frequencies of all elements in
	// first-level bucket b — the single O(log N) counter per bucket
	// that the set-union estimator needs (§3.3). It equals
	// counts[b][j][0] + counts[b][j][1] for every j, kept separately
	// so emptiness tests are O(1).
	totals []int64

	// counts is the flattened Θ(log M) × s × 2 counter array;
	// entry (b, j, bit) lives at index (b·s + j)·2 + bit.
	counts []int64
}

// NewSketch builds an empty sketch whose hash functions are derived
// deterministically from seed. Two sketches with equal (cfg, seed) are
// aligned: they place every element identically.
func NewSketch(cfg Config, seed uint64) (*Sketch, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return newSketchView(cfg, seed, make([]int64, cfg.Buckets), make([]int64, cfg.counters())), nil
}

// newSketchView builds a sketch whose counters live in caller-provided
// storage. Family uses it to lay all r copies' counters out in two
// contiguous family-owned slices; cfg must already be validated.
func newSketchView(cfg Config, seed uint64, totals, counts []int64) *Sketch {
	g := make([]*hashing.PairBit, cfg.SecondLevel)
	for j := range g {
		g[j] = hashing.NewPairBit(hashing.DeriveSeed(seed, 1, uint64(j)))
	}
	var bank *hashing.PairBitBank
	if cfg.SecondLevel <= 64 {
		bank = hashing.NewPairBitBank(g)
	}
	return &Sketch{
		cfg:    cfg,
		seed:   seed,
		h:      hashing.NewPoly(hashing.DeriveSeed(seed, 0), cfg.FirstWise),
		g:      g,
		gbank:  bank,
		totals: totals,
		counts: counts,
	}
}

// viewWith returns a sketch sharing x's immutable hash functions but
// reading and writing the given counter storage. Cloning a family
// re-uses the already-derived coins this way instead of re-running the
// seed derivation r·(s+1) times.
func (x *Sketch) viewWith(totals, counts []int64) *Sketch {
	return &Sketch{cfg: x.cfg, seed: x.seed, h: x.h, g: x.g, gbank: x.gbank,
		totals: totals, counts: counts}
}

// Config returns the sketch's configuration.
func (x *Sketch) Config() Config { return x.cfg }

// Seed returns the seed the sketch's hash functions were derived from.
func (x *Sketch) Seed() uint64 { return x.seed }

// Update applies the stream update ⟨e, ±v⟩: it adds v to the total
// counter of bucket LSB(h(e)) and to the matching second-level counter
// under every g_j (§3.1). Cost is s+1 counter additions plus s+1 hash
// evaluations per stream item.
func (x *Sketch) Update(e uint64, v int64) {
	x.updateReduced(hashing.Reduce61(e), v)
}

// updateReduced is Update for an element already reduced into the hash
// field. Family hoists the reduction out of its per-copy loop: one
// Reduce61 serves all r copies instead of being recomputed in each.
func (x *Sketch) updateReduced(er uint64, v int64) {
	b := hashing.LSB(x.h.HashReduced(er), x.cfg.Buckets)
	x.totals[b] += v
	base := b * x.cfg.SecondLevel * 2
	for j, g := range x.g {
		x.counts[base+2*j+g.BitReduced(er)] += v
	}
}

// Digest packing: one uint64 per copy carries everything the update
// path needs to know about an element — the first-level bucket in the
// low digestBucketBits bits (buckets range over [0, 61), so 6 bits
// suffice) and the s second-level bits above them. Replaying a packed
// word is s+1 counter additions with zero field arithmetic, which is
// what makes digests worth caching: the hashes are a pure function of
// (seed, element), so the expensive part is paid once per distinct
// element rather than once per stream item.
const (
	digestBucketBits = 6
	digestBucketMask = 1<<digestBucketBits - 1
)

// digestWord evaluates all of the sketch's hash functions at the
// reduced element er and packs the outcome: bucket | secondLevelBits<<6.
// Requires cfg.DigestPackable().
func (x *Sketch) digestWord(er uint64) uint64 {
	b := hashing.LSB(x.h.HashReduced(er), x.cfg.Buckets)
	return uint64(b) | hashing.PackBits(x.g, er)<<digestBucketBits
}

// applyDigest replays a packed digest word as s+1 counter additions.
// By construction it touches exactly the counters updateReduced would.
// The bucket's counter pairs are re-sliced into a window first so the
// loop's index arithmetic is provably in-bounds (j+1 < len(c)), letting
// the compiler drop the per-counter bounds checks on the hot path.
func (x *Sketch) applyDigest(w uint64, v int64) {
	b := int(w & digestBucketMask)
	x.totals[b] += v
	s2 := x.cfg.SecondLevel * 2
	c := x.counts[b*s2 : b*s2+s2]
	bits := w >> digestBucketBits
	for j := 0; j+2 <= len(c); j += 2 {
		c[j+int(bits&1)] += v
		bits >>= 1
	}
}

// Insert is Update(e, +1).
func (x *Sketch) Insert(e uint64) { x.Update(e, 1) }

// Delete is Update(e, −1).
func (x *Sketch) Delete(e uint64) { x.Update(e, -1) }

// count returns counter (b, j, bit).
func (x *Sketch) count(b, j, bit int) int64 {
	return x.counts[(b*x.cfg.SecondLevel+j)*2+bit]
}

// BucketTotal returns the total live count of first-level bucket b.
func (x *Sketch) BucketTotal(b int) int64 { return x.totals[b] }

// BucketEmpty reports whether first-level bucket b holds no live
// elements. Because legal update streams keep every element's net
// frequency non-negative, the bucket total is zero exactly when the
// bucket is empty — no probabilistic argument is needed.
func (x *Sketch) BucketEmpty(b int) bool { return x.totals[b] == 0 }

// Aligned reports whether two sketches were built with the same hash
// functions (same seed and configuration) and can therefore be merged
// or compared bucket-by-bucket.
func (x *Sketch) Aligned(y *Sketch) bool {
	return x.cfg == y.cfg && x.seed == y.seed
}

// ErrNotAligned is returned when sketches built with different hash
// functions or shapes are merged or compared.
var ErrNotAligned = errors.New("core: sketches are not aligned (different seed or configuration)")

// Merge adds y's counters into x, so that x becomes the sketch of the
// combined update stream (multi-set sum). This is exact, not
// approximate: linearity of the counters means merging distributed
// sub-streams is indistinguishable from having observed one stream.
func (x *Sketch) Merge(y *Sketch) error {
	if !x.Aligned(y) {
		return ErrNotAligned
	}
	for i, t := range y.totals {
		x.totals[i] += t
	}
	for i, c := range y.counts {
		x.counts[i] += c
	}
	return nil
}

// Clone returns a deep copy of the sketch.
func (x *Sketch) Clone() *Sketch {
	c := &Sketch{cfg: x.cfg, seed: x.seed, h: x.h, g: x.g,
		totals: make([]int64, len(x.totals)),
		counts: make([]int64, len(x.counts)),
	}
	copy(c.totals, x.totals)
	copy(c.counts, x.counts)
	return c
}

// Reset zeroes all counters, returning the sketch to its initial state
// while keeping its hash functions.
func (x *Sketch) Reset() {
	for i := range x.totals {
		x.totals[i] = 0
	}
	for i := range x.counts {
		x.counts[i] = 0
	}
}

// Equal reports whether two sketches are aligned and hold identical
// counters. It is the observable identity behind deletion-invariance:
// a stream and its deletion-free equivalent produce Equal sketches.
func (x *Sketch) Equal(y *Sketch) bool {
	if !x.Aligned(y) {
		return false
	}
	for i := range x.totals {
		if x.totals[i] != y.totals[i] {
			return false
		}
	}
	for i := range x.counts {
		if x.counts[i] != y.counts[i] {
			return false
		}
	}
	return true
}

// Validate checks internal invariants that hold for every legal update
// stream: all counters non-negative and every second-level pair summing
// to the bucket total. A violation indicates illegal deletions (net
// frequency driven negative) or data corruption.
func (x *Sketch) Validate() error {
	for b := 0; b < x.cfg.Buckets; b++ {
		if x.totals[b] < 0 {
			return fmt.Errorf("core: bucket %d total %d is negative (illegal deletions)", b, x.totals[b])
		}
		for j := 0; j < x.cfg.SecondLevel; j++ {
			c0, c1 := x.count(b, j, 0), x.count(b, j, 1)
			if c0 < 0 || c1 < 0 {
				return fmt.Errorf("core: counter (%d, %d) negative: (%d, %d)", b, j, c0, c1)
			}
			if c0+c1 != x.totals[b] {
				return fmt.Errorf("core: bucket %d second-level pair %d sums to %d, total is %d",
					b, j, c0+c1, x.totals[b])
			}
		}
	}
	return nil
}

// MemoryBytes reports the counter-array footprint of the sketch in
// bytes (the quantity the paper's space theorems bound, excluding the
// O(t log M) hash-seed storage).
func (x *Sketch) MemoryBytes() int {
	return 8 * (len(x.totals) + len(x.counts))
}

// FirstLevelDistribution returns, for diagnostics, the fraction of the
// total live count in each first-level bucket.
func (x *Sketch) FirstLevelDistribution() []float64 {
	var sum int64
	for _, t := range x.totals {
		sum += t
	}
	out := make([]float64, len(x.totals))
	if sum == 0 {
		return out
	}
	for i, t := range x.totals {
		out[i] = float64(t) / float64(sum)
	}
	return out
}

// chooseWitnessLevel computes the first-level bucket index used by the
// witness-based estimators: j = ⌈log₂(β·û/(1−ε))⌉ (Fig. 6 step 1),
// clamped into the valid bucket range.
func chooseWitnessLevel(cfg Config, unionEstimate, beta, eps float64) int {
	if unionEstimate < 1 {
		return 0
	}
	j := int(math.Ceil(math.Log2(beta * unionEstimate / (1 - eps))))
	if j < 0 {
		j = 0
	}
	if j > cfg.Buckets-1 {
		j = cfg.Buckets - 1
	}
	return j
}
