package core

import (
	"errors"
	"math"
	"testing"

	"setsketch/internal/expr"
	"setsketch/internal/hashing"
)

// estCfg trades a little confidence for speed in statistical tests.
var estCfg = Config{Buckets: 61, SecondLevel: 16, FirstWise: 8}

// buildFamilies creates aligned families for the named streams and
// inserts each stream's elements.
func buildFamilies(t testing.TB, cfg Config, seed uint64, r int, streams map[string][]uint64) map[string]*Family {
	t.Helper()
	fams := make(map[string]*Family, len(streams))
	for name, elems := range streams {
		f := mustFamily(t, cfg, seed, r)
		for _, e := range elems {
			f.Insert(e)
		}
		fams[name] = f
	}
	return fams
}

// overlapStreams builds two streams with |A ∪ B| = u and |A ∩ B| = inter,
// split so that |A − B| = |B − A| = (u − inter) / 2.
func overlapStreams(rng *hashing.RNG, u, inter int) (a, b []uint64) {
	seen := make(map[uint64]bool, u)
	elems := make([]uint64, 0, u)
	for len(elems) < u {
		e := rng.Uint64n(1 << 32)
		if !seen[e] {
			seen[e] = true
			elems = append(elems, e)
		}
	}
	for i, e := range elems {
		switch {
		case i < inter:
			a = append(a, e)
			b = append(b, e)
		case i%2 == 0:
			a = append(a, e)
		default:
			b = append(b, e)
		}
	}
	return a, b
}

func relErr(got float64, want int) float64 {
	return math.Abs(got-float64(want)) / float64(want)
}

func TestEstimateUnionAccuracy(t *testing.T) {
	rng := hashing.NewRNG(101)
	const u, inter, r = 4096, 1024, 256
	a, b := overlapStreams(rng, u, inter)
	fams := buildFamilies(t, estCfg, 2003, r, map[string][]uint64{"A": a, "B": b})
	est, err := EstimateUnion(fams["A"], fams["B"], 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if e := relErr(est.Value, u); e > 0.25 {
		t.Errorf("union estimate %.0f for true %d (rel err %.2f)", est.Value, u, e)
	}
	if est.Copies != r || est.Valid != r {
		t.Errorf("diagnostics: %+v", est)
	}
}

func TestEstimateDistinctSingleStream(t *testing.T) {
	rng := hashing.NewRNG(55)
	elems := make([]uint64, 0, 2000)
	seen := make(map[uint64]bool)
	for len(elems) < 2000 {
		e := rng.Uint64n(1 << 31)
		if !seen[e] {
			seen[e] = true
			elems = append(elems, e)
		}
	}
	f := mustFamily(t, estCfg, 9, 256)
	for _, e := range elems {
		f.Insert(e)
		f.Insert(e) // duplicates must not affect the distinct count
	}
	est, err := EstimateDistinct(f, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if e := relErr(est.Value, 2000); e > 0.25 {
		t.Errorf("distinct estimate %.0f for true 2000 (rel err %.2f)", est.Value, e)
	}
}

func TestEstimateUnionEmpty(t *testing.T) {
	a := mustFamily(t, estCfg, 1, 32)
	b := mustFamily(t, estCfg, 1, 32)
	est, err := EstimateUnion(a, b, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if est.Value != 0 {
		t.Errorf("union of empty streams estimated %v, want 0", est.Value)
	}
}

func TestEstimateUnionBadInputs(t *testing.T) {
	a := mustFamily(t, estCfg, 1, 8)
	b := mustFamily(t, estCfg, 2, 8) // different seed
	if _, err := EstimateUnion(a, b, 0.1); !errors.Is(err, ErrNotAligned) {
		t.Errorf("unaligned union: err = %v, want ErrNotAligned", err)
	}
	c := mustFamily(t, estCfg, 1, 8)
	for _, eps := range []float64{0, 1, -0.5, 2} {
		if _, err := EstimateUnion(a, c, eps); err == nil {
			t.Errorf("ε = %v accepted", eps)
		}
	}
	if _, err := EstimateUnionMulti(nil, 0.1); err == nil {
		t.Error("empty family list accepted")
	}
}

func TestEstimateIntersectionAccuracy(t *testing.T) {
	rng := hashing.NewRNG(77)
	const u, inter, r = 4096, 1024, 512
	a, b := overlapStreams(rng, u, inter)
	fams := buildFamilies(t, estCfg, 41, r, map[string][]uint64{"A": a, "B": b})
	est, err := EstimateIntersection(fams["A"], fams["B"], 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if e := relErr(est.Value, inter); e > 0.4 {
		t.Errorf("intersection estimate %.0f for true %d (rel err %.2f, valid %d/%d)",
			est.Value, inter, e, est.Valid, est.Copies)
	}
	if est.Valid == 0 || est.Valid > est.Copies {
		t.Errorf("implausible valid-observation count: %+v", est)
	}
}

func TestEstimateDifferenceAccuracy(t *testing.T) {
	rng := hashing.NewRNG(88)
	const u, inter, r = 4096, 2048, 512
	diff := (u - inter) / 2 // |A − B|
	a, b := overlapStreams(rng, u, inter)
	fams := buildFamilies(t, estCfg, 42, r, map[string][]uint64{"A": a, "B": b})
	est, err := EstimateDifference(fams["A"], fams["B"], 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if e := relErr(est.Value, diff); e > 0.4 {
		t.Errorf("difference estimate %.0f for true %d (rel err %.2f)", est.Value, diff, e)
	}
}

func TestEstimateDifferenceDisjointAndIdentical(t *testing.T) {
	rng := hashing.NewRNG(99)
	const u, r = 2048, 384
	// Disjoint: |A − B| = |A| = u/2.
	a, b := overlapStreams(rng, u, 0)
	fams := buildFamilies(t, estCfg, 5, r, map[string][]uint64{"A": a, "B": b})
	est, err := EstimateDifference(fams["A"], fams["B"], 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if e := relErr(est.Value, u/2); e > 0.4 {
		t.Errorf("disjoint difference %.0f, want ≈ %d", est.Value, u/2)
	}
	// Identical streams: |A − B| = 0; every witness observation is 0.
	fams2 := buildFamilies(t, estCfg, 6, r, map[string][]uint64{"A": a, "B": a})
	est2, err := EstimateDifference(fams2["A"], fams2["B"], 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if est2.Value != 0 {
		t.Errorf("A − A estimated %v, want exactly 0", est2.Value)
	}
}

func TestEstimateIntersectionUnderDeletions(t *testing.T) {
	// The headline capability: estimates remain correct when the
	// overlap is created and then partially destroyed by deletions.
	rng := hashing.NewRNG(111)
	const u, inter, r = 2048, 512, 384
	a, b := overlapStreams(rng, u, inter)
	fams := buildFamilies(t, estCfg, 7, r, map[string][]uint64{"A": a, "B": b})

	// Insert 300 extra shared elements, then delete them again: the
	// true intersection is unchanged.
	for i := 0; i < 300; i++ {
		e := rng.Uint64n(1<<32) | (1 << 40) // outside the original domain
		fams["A"].Insert(e)
		fams["B"].Insert(e)
		fams["A"].Delete(e)
		fams["B"].Delete(e)
	}
	est, err := EstimateIntersection(fams["A"], fams["B"], 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if e := relErr(est.Value, inter); e > 0.4 {
		t.Errorf("intersection under churn %.0f, want ≈ %d (rel err %.2f)", est.Value, inter, e)
	}
}

func TestEstimateExpressionMatchesBinaryOperators(t *testing.T) {
	// The §4 estimator specialized to "A - B" and "A & B" must agree
	// (statistically) with the dedicated Fig. 6 estimators.
	rng := hashing.NewRNG(2)
	const u, inter, r = 4096, 1024, 512
	a, b := overlapStreams(rng, u, inter)
	fams := buildFamilies(t, estCfg, 8, r, map[string][]uint64{"A": a, "B": b})

	exprInter := expr.MustParse("A & B")
	est, err := EstimateExpression(exprInter, fams, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if e := relErr(est.Value, inter); e > 0.4 {
		t.Errorf("expression A & B estimate %.0f, want ≈ %d", est.Value, inter)
	}

	exprDiff := expr.MustParse("A - B")
	diff := (u - inter) / 2
	est2, err := EstimateExpression(exprDiff, fams, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if e := relErr(est2.Value, diff); e > 0.4 {
		t.Errorf("expression A - B estimate %.0f, want ≈ %d", est2.Value, diff)
	}
}

func TestEstimateExpressionThreeStreams(t *testing.T) {
	// (A − B) ∩ C with a controlled construction: elements 0..2047 in
	// A; 1024..2047 also in B; C contains 0..511 and 1024..1535.
	// (A − B) = {0..1023}, so (A − B) ∩ C = {0..511}: cardinality 512.
	var a, b, c []uint64
	for e := uint64(0); e < 2048; e++ {
		a = append(a, e)
		if e >= 1024 {
			b = append(b, e)
		}
		if e < 512 || (e >= 1024 && e < 1536) {
			c = append(c, e)
		}
	}
	fams := buildFamilies(t, estCfg, 77, 512, map[string][]uint64{"A": a, "B": b, "C": c})
	est, err := EstimateExpression(expr.MustParse("(A - B) & C"), fams, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if e := relErr(est.Value, 512); e > 0.45 {
		t.Errorf("(A - B) & C estimate %.0f, want ≈ 512 (rel err %.2f)", est.Value, e)
	}
	if est.Union == 0 || est.Level == 0 {
		t.Errorf("missing diagnostics: %+v", est)
	}
}

func TestEstimateExpressionUnionViaWitness(t *testing.T) {
	// §4 handles union through the witness scheme too; check A | B.
	rng := hashing.NewRNG(3)
	const u, inter, r = 4096, 1024, 512
	a, b := overlapStreams(rng, u, inter)
	fams := buildFamilies(t, estCfg, 10, r, map[string][]uint64{"A": a, "B": b})
	est, err := EstimateExpression(expr.MustParse("A | B"), fams, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if e := relErr(est.Value, u); e > 0.35 {
		t.Errorf("witness-based union estimate %.0f, want ≈ %d", est.Value, u)
	}
}

func TestEstimateExpressionErrors(t *testing.T) {
	fams := buildFamilies(t, estCfg, 1, 8, map[string][]uint64{"A": {1, 2}})
	_, err := EstimateExpression(expr.MustParse("A - B"), fams, 0.1)
	var missing *ErrMissingStream
	if !errors.As(err, &missing) || missing.Name != "B" {
		t.Errorf("missing stream: err = %v", err)
	}
	if _, err := EstimateExpression(expr.MustParse("A"), fams, 0); err == nil {
		t.Error("ε = 0 accepted")
	}
	if missing.Error() == "" {
		t.Error("empty error message")
	}
}

func TestEstimateExpressionEmptyStreams(t *testing.T) {
	fams := map[string]*Family{
		"A": mustFamily(t, estCfg, 4, 16),
		"B": mustFamily(t, estCfg, 4, 16),
	}
	est, err := EstimateExpression(expr.MustParse("A & B"), fams, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if est.Value != 0 {
		t.Errorf("expression over empty streams estimated %v", est.Value)
	}
}

func TestAtomicEstimatorsDirectly(t *testing.T) {
	cfg := estCfg
	a := mustSketch(t, cfg, 50)
	b := mustSketch(t, cfg, 50)
	a.Insert(7)
	lvl := bucketOf(a, 7)

	// Witness for A − B: singleton in A, empty in B.
	if obs, ok := AtomicDiff(a, b, lvl); !ok || obs != 1 {
		t.Errorf("AtomicDiff = (%d, %v), want (1, true)", obs, ok)
	}
	if obs, ok := AtomicIntersect(a, b, lvl); !ok || obs != 0 {
		t.Errorf("AtomicIntersect = (%d, %v), want (0, true)", obs, ok)
	}
	// Put the same element in B: now an intersection witness, not a
	// difference witness.
	b.Insert(7)
	if obs, ok := AtomicDiff(a, b, lvl); !ok || obs != 0 {
		t.Errorf("AtomicDiff after shared insert = (%d, %v), want (0, true)", obs, ok)
	}
	if obs, ok := AtomicIntersect(a, b, lvl); !ok || obs != 1 {
		t.Errorf("AtomicIntersect after shared insert = (%d, %v), want (1, true)", obs, ok)
	}
	// Empty union bucket: noEstimate.
	if _, ok := AtomicDiff(a, b, lvl+1); ok {
		t.Error("AtomicDiff on empty bucket returned a valid observation")
	}
}

func TestChooseWitnessLevel(t *testing.T) {
	cfg := DefaultConfig()
	// û = 1000, β = 2, ε = 0.1 → ⌈log₂(2000/0.9)⌉ = ⌈11.12⌉ = 12.
	if got := chooseWitnessLevel(cfg, 1000, 2, 0.1); got != 12 {
		t.Errorf("chooseWitnessLevel(1000) = %d, want 12", got)
	}
	if got := chooseWitnessLevel(cfg, 0.5, 2, 0.1); got != 0 {
		t.Errorf("tiny union level = %d, want 0", got)
	}
	if got := chooseWitnessLevel(cfg, math.MaxFloat64/4, 2, 0.1); got != cfg.Buckets-1 {
		t.Errorf("huge union level = %d, want clamped %d", got, cfg.Buckets-1)
	}
}

func TestRecommendedCopies(t *testing.T) {
	r := RecommendedCopies(0.1, 0.05)
	// 256·ln(20)/(7·0.01) ≈ 10957.
	if r < 10000 || r > 12000 {
		t.Errorf("RecommendedCopies(0.1, 0.05) = %d, want ≈ 11000", r)
	}
	if RecommendedCopies(0, 0.1) != 0 || RecommendedCopies(0.1, 0) != 0 {
		t.Error("invalid parameters should return 0")
	}
	w := RecommendedWitnessCopies(0.1, 0.05, 8)
	if w <= r/2 {
		t.Errorf("witness copies %d not scaled by union/result ratio", w)
	}
	if RecommendedWitnessCopies(0.1, 0.05, 0.5) != 0 {
		t.Error("ratio < 1 should return 0")
	}
}

func TestEstimateExpressionMultiLevelAccuracy(t *testing.T) {
	// The multi-level variant must be unbiased for the same quantity
	// and, with ~15× the valid observations, visibly tighter.
	rng := hashing.NewRNG(600)
	const u, inter, r = 4096, 256, 256 // small target: u/16
	a, b := overlapStreams(rng, u, inter)
	fams := buildFamilies(t, estCfg, 21, r, map[string][]uint64{"A": a, "B": b})
	node := expr.MustParse("A & B")
	multi, err := EstimateExpressionMultiLevel(node, fams, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	// p = 1/16 with ≈ 1.44·r valid observations gives σ ≈ 20%; allow 2.5σ.
	if e := relErr(multi.Value, inter); e > 0.5 {
		t.Errorf("multi-level estimate %.0f for true %d (rel err %.2f)", multi.Value, inter, e)
	}
	single, err := EstimateExpression(node, fams, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if multi.Valid <= 2*single.Valid {
		t.Errorf("multi-level yield %d not ≫ single-level yield %d", multi.Valid, single.Valid)
	}
}

func TestEstimateExpressionMultiLevelEdgeCases(t *testing.T) {
	fams := map[string]*Family{
		"A": mustFamily(t, estCfg, 4, 16),
		"B": mustFamily(t, estCfg, 4, 16),
	}
	node := expr.MustParse("A & B")
	est, err := EstimateExpressionMultiLevel(node, fams, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if est.Value != 0 {
		t.Errorf("multi-level over empty streams estimated %v", est.Value)
	}
	if _, err := EstimateExpressionMultiLevel(node, map[string]*Family{"A": fams["A"]}, 0.2); err == nil {
		t.Error("missing stream accepted")
	}
	if _, err := EstimateExpressionMultiLevel(node, fams, 0); err == nil {
		t.Error("eps = 0 accepted")
	}
}

// TestErrorShrinksWithCopies reproduces the qualitative 1/√r trend of
// the paper's figures at unit-test scale: the trimmed error at r = 384
// should generally beat r = 48.
func TestErrorShrinksWithCopies(t *testing.T) {
	rng := hashing.NewRNG(500)
	const u, inter = 2048, 512
	errSmall, errLarge := 0.0, 0.0
	const runs = 5
	for run := 0; run < runs; run++ {
		a, b := overlapStreams(rng, u, inter)
		fams := buildFamilies(t, estCfg, rng.Uint64(), 384, map[string][]uint64{"A": a, "B": b})
		small := map[string]*Family{}
		for k, f := range fams {
			tr, err := f.Truncate(48)
			if err != nil {
				t.Fatal(err)
			}
			small[k] = tr
		}
		if est, err := EstimateIntersection(small["A"], small["B"], 0.3); err == nil {
			errSmall += relErr(est.Value, inter)
		} else {
			errSmall += 1
		}
		est, err := EstimateIntersection(fams["A"], fams["B"], 0.3)
		if err != nil {
			t.Fatal(err)
		}
		errLarge += relErr(est.Value, inter)
	}
	if errLarge >= errSmall {
		t.Errorf("error did not shrink with copies: r=48 avg %.3f vs r=384 avg %.3f",
			errSmall/runs, errLarge/runs)
	}
}
