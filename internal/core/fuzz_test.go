package core

import (
	"bytes"
	"testing"
)

// FuzzDigestEquivalence drives the digest-based update kernel against
// the direct hashing path with fuzzer-chosen shape, coins, and update
// sequence — including deletions that push counters down through zero —
// and requires bit-identical families. Linearity is what makes the
// digest path safe: both paths add the same ±v to the same s+1 counters
// per copy, so any divergence is a packing or replay bug.
func FuzzDigestEquivalence(f *testing.F) {
	f.Add(uint64(1), uint8(61), uint8(32), uint8(8), []byte("\x01\x02\x03\xff\x02"))
	f.Add(uint64(99), uint8(8), uint8(1), uint8(2), []byte{0, 0, 0, 0, 0, 0, 0, 0, 1})
	f.Add(uint64(7), uint8(16), uint8(58), uint8(3), []byte("stream"))
	f.Fuzz(func(t *testing.T, seed uint64, buckets, s, wise uint8, data []byte) {
		cfg := Config{
			Buckets:     1 + int(buckets)%61,
			SecondLevel: 1 + int(s)%int(DigestMaxSecondLevel),
			FirstWise:   2 + int(wise)%8,
		}
		const r = 5
		direct, err := NewFamily(cfg, seed, r)
		if err != nil {
			t.Fatal(err)
		}
		viaDigest, _ := NewFamily(cfg, seed, r)
		viaBatch, _ := NewFamily(cfg, seed, r)
		// Decode the byte stream as alternating (element, delta) nibbles:
		// a tiny element domain forces collisions, repeated elements, and
		// counters that return to zero.
		elems := make([]uint64, 0, len(data))
		deltas := make([]int64, 0, len(data))
		for i, b := range data {
			e := uint64(b >> 4)
			v := int64(b&7) - 3 // deltas in [−3, +4]
			if v == 0 {
				v = 4
			}
			elems = append(elems, e)
			deltas = append(deltas, v)
			direct.Update(e, v)
			d := viaDigest.Digest(e)
			mid := i % (r + 1)
			viaDigest.UpdateRangeDigest(0, mid, d, v)
			viaDigest.UpdateRangeDigest(mid, r, d, v)
		}
		if !direct.Equal(viaDigest) {
			t.Fatalf("digest path diverged from direct path (cfg %+v, seed %d, %d updates)",
				cfg, seed, len(data))
		}
		// The batch kernel must agree too: batch-computed digests are
		// word-for-word the scalar digests, and a split-range batch
		// replay rebuilds the same counters.
		ds := viaBatch.DigestBatch(elems)
		for k, e := range elems {
			want := direct.Digest(e)
			for i := range want {
				if ds[k][i] != want[i] {
					t.Fatalf("DigestBatch[%d][%d] = %#x, scalar Digest = %#x (elem %d)",
						k, i, ds[k][i], want[i], e)
				}
			}
		}
		mid := len(data) % (r + 1)
		viaBatch.UpdateRangeBatchDigest(0, mid, ds, deltas)
		viaBatch.UpdateRangeBatchDigest(mid, r, ds, deltas)
		if !direct.Equal(viaBatch) {
			t.Fatalf("batch digest path diverged from direct path (cfg %+v, seed %d, %d updates)",
				cfg, seed, len(data))
		}
	})
}

// FuzzReadFamily hardens deserialization: arbitrary bytes must be
// rejected cleanly (error, not panic, not unbounded allocation), and
// any input that IS accepted must re-serialize to a working family.
func FuzzReadFamily(f *testing.F) {
	// Seed with a genuine serialized family and some mutations.
	fam, err := NewFamily(Config{Buckets: 61, SecondLevel: 4, FirstWise: 2}, 3, 2)
	if err != nil {
		f.Fatal(err)
	}
	fam.Insert(42)
	fam.Update(7, 3)
	var buf bytes.Buffer
	if _, err := fam.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("2LHS"))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadFamily(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted input must be internally consistent and round-trip.
		var out bytes.Buffer
		if _, err := got.WriteTo(&out); err != nil {
			t.Fatalf("accepted family does not re-serialize: %v", err)
		}
		again, err := ReadFamily(&out)
		if err != nil {
			t.Fatalf("re-serialized family rejected: %v", err)
		}
		if !again.Equal(got) {
			t.Fatal("round trip of accepted family changed it")
		}
	})
}
