package core

import (
	"bytes"
	"testing"
)

// FuzzReadFamily hardens deserialization: arbitrary bytes must be
// rejected cleanly (error, not panic, not unbounded allocation), and
// any input that IS accepted must re-serialize to a working family.
func FuzzReadFamily(f *testing.F) {
	// Seed with a genuine serialized family and some mutations.
	fam, err := NewFamily(Config{Buckets: 61, SecondLevel: 4, FirstWise: 2}, 3, 2)
	if err != nil {
		f.Fatal(err)
	}
	fam.Insert(42)
	fam.Update(7, 3)
	var buf bytes.Buffer
	if _, err := fam.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("2LHS"))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadFamily(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted input must be internally consistent and round-trip.
		var out bytes.Buffer
		if _, err := got.WriteTo(&out); err != nil {
			t.Fatalf("accepted family does not re-serialize: %v", err)
		}
		again, err := ReadFamily(&out)
		if err != nil {
			t.Fatalf("re-serialized family rejected: %v", err)
		}
		if !again.Equal(got) {
			t.Fatal("round trip of accepted family changed it")
		}
	})
}
