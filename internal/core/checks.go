package core

// This file implements the elementary property checks of §3.2 (paper
// Fig. 4): SingletonBucket, IdenticalSingletonBucket, and
// SingletonUnionBucket, plus the n-way generalization that §4's
// set-expression estimator needs. Each check inspects only the s
// second-level counter pairs of one first-level bucket and is correct
// with probability ≥ 1 − 2^−s (Lemma 3.1).

// SingletonBucket reports whether first-level bucket b contains exactly
// one distinct live element (paper Fig. 4, procedure SingletonBucket).
// An empty bucket returns false. If the bucket holds ≥ 2 distinct
// elements, the check is fooled only when every one of the s
// pairwise-independent second-level hashes maps all of them to the same
// side — probability at most 2^−s.
func (x *Sketch) SingletonBucket(b int) bool {
	if x.totals[b] == 0 {
		return false // bucket is empty
	}
	base := b * x.cfg.SecondLevel * 2
	for j := 0; j < x.cfg.SecondLevel; j++ {
		if x.counts[base+2*j] > 0 && x.counts[base+2*j+1] > 0 {
			return false // at least two distinct elements split by g_j
		}
	}
	return true
}

// IdenticalSingletonBucket reports whether bucket b is a singleton in
// both x and y and both singletons are the same domain value (paper
// Fig. 4). The sketches must be aligned; comparing unaligned sketches
// is a programming error and returns false.
//
// Two different singleton values agree on all s second-level bit
// signatures with probability at most 2^−s.
func IdenticalSingletonBucket(x, y *Sketch, b int) bool {
	if !x.Aligned(y) {
		return false
	}
	if !x.SingletonBucket(b) || !y.SingletonBucket(b) {
		return false
	}
	base := b * x.cfg.SecondLevel * 2
	for j := 0; j < x.cfg.SecondLevel; j++ {
		if (x.counts[base+2*j] > 0) != (y.counts[base+2*j] > 0) ||
			(x.counts[base+2*j+1] > 0) != (y.counts[base+2*j+1] > 0) {
			return false // signatures differ in at least one bit
		}
	}
	return true
}

// SingletonUnionBucket reports whether the set union of the elements of
// x and y mapping to bucket b is a singleton (paper Fig. 4): either one
// bucket is a singleton and the other empty, or both are identical
// singletons.
func SingletonUnionBucket(x, y *Sketch, b int) bool {
	if x.SingletonBucket(b) && y.totals[b] == 0 {
		return true
	}
	if y.SingletonBucket(b) && x.totals[b] == 0 {
		return true
	}
	return IdenticalSingletonBucket(x, y, b)
}

// SingletonUnionBucketN generalizes SingletonUnionBucket to any number
// of aligned sketches: it reports whether the union of all live
// elements mapping to bucket b across the sketches is a singleton.
//
// It exploits linearity: because aligned sketches share hash functions,
// the counters of the union multi-set ⊎_i A_i are the per-index sums of
// the individual counters, so the n-way check is SingletonBucket
// evaluated on summed counters — no merged sketch is materialized.
// This is the primitive behind the §4 set-expression estimator's
// "bucket j is a singleton bucket for ∪_i A_i" condition.
func SingletonUnionBucketN(sketches []*Sketch, b int) bool {
	if len(sketches) == 0 {
		return false
	}
	first := sketches[0]
	var total int64
	for _, x := range sketches {
		if !first.Aligned(x) {
			return false
		}
		total += x.totals[b]
	}
	if total == 0 {
		return false
	}
	s := first.cfg.SecondLevel
	base := b * s * 2
	for j := 0; j < s; j++ {
		var c0, c1 int64
		for _, x := range sketches {
			c0 += x.counts[base+2*j]
			c1 += x.counts[base+2*j+1]
		}
		if c0 > 0 && c1 > 0 {
			return false
		}
	}
	return true
}
