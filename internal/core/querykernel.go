package core

import (
	"fmt"
	"math/bits"
	"runtime"
	"sync"

	"setsketch/internal/expr"
)

// The compiled query kernel — the read-path mirror of the digest
// update kernel (family.go). Three layers stack:
//
//  1. expr.Compile turns the expression's Boolean mapping B(E) into a
//     truth table / postfix program over a packed uint64 occupancy
//     word, replacing the per-witness map[string]bool and recursive
//     EvalBool of the interpreted estimator.
//  2. familyView (queryview.go) caches packed per-copy occupancy and
//     cell-signature bitmaps behind each family's version counter, so
//     "bucket occupied" and "union bucket singleton" are word tests.
//  3. The witness scan partitions the r independent sketch copies
//     across a bounded worker pool; per-worker integer tallies merge
//     associatively, so the result is bit-identical to the serial scan
//     (pinned against EstimateExpressionReference by tests).

// EstimateOptions tunes the query kernel. The zero value (Workers 0)
// runs serially; DefaultEstimateOptions parallelizes across
// GOMAXPROCS workers.
type EstimateOptions struct {
	// Workers is the witness-scan worker-pool size. 0 or 1 scans
	// serially on the calling goroutine; n > 1 partitions the r sketch
	// copies across min(n, r) goroutines. Results are bit-identical
	// either way.
	Workers int
}

// DefaultEstimateOptions returns the options the public wrappers use:
// one worker per available CPU.
func DefaultEstimateOptions() EstimateOptions {
	return EstimateOptions{Workers: runtime.GOMAXPROCS(0)}
}

// Query is a compiled set-expression query: the parsed node plus its
// compiled occupancy-word program and sorted stream binding. A Query
// is immutable and safe for concurrent use; watchers compile once at
// registration and reuse the Query every round.
type Query struct {
	node  expr.Node
	names []string // sorted distinct streams; bit k of the occupancy word
	prog  *expr.Program
}

// CompileQuery compiles an expression for the query kernel. It fails
// only for expressions over more than expr.MaxCompiledStreams (64)
// distinct streams; callers then fall back to the interpreted path.
func CompileQuery(e expr.Node) (*Query, error) {
	names := expr.Streams(e)
	prog, err := expr.Compile(e, names)
	if err != nil {
		return nil, err
	}
	return &Query{node: e, names: names, prog: prog}, nil
}

// Node returns the parsed expression.
func (q *Query) Node() expr.Node { return q.node }

// String renders the canonical expression text.
func (q *Query) String() string { return q.node.String() }

// Streams returns the sorted distinct stream names the query reads.
func (q *Query) Streams() []string { return append([]string(nil), q.names...) }

// Estimate runs the compiled kernel over counter families; see
// EstimateExpression for the estimator semantics. The serial path
// (opts.Workers ≤ 1) performs no allocations once the family views are
// warm.
func (q *Query) Estimate(fams map[string]*Family, eps float64, multiLevel bool, opts EstimateOptions) (Estimate, error) {
	var views [expr.MaxCompiledStreams]*familyView
	var first *Family
	r := 0
	for k, name := range q.names {
		f := fams[name]
		if f == nil {
			return Estimate{}, &ErrMissingStream{Name: name}
		}
		if k == 0 {
			first, r = f, f.Copies()
		} else {
			if !first.Aligned(f) {
				return Estimate{}, ErrNotAligned
			}
			if f.Copies() < r {
				r = f.Copies()
			}
		}
		views[k] = f.queryView()
	}
	return q.run(first.cfg, r, views[:len(q.names)], eps, multiLevel, opts.Workers)
}

// EstimateBits runs the compiled kernel over bit families; estimates
// are identical to the counter version on the same insert stream and
// coins.
func (q *Query) EstimateBits(fams map[string]*BitFamily, eps float64, multiLevel bool, opts EstimateOptions) (Estimate, error) {
	var views [expr.MaxCompiledStreams]*familyView
	var first *BitFamily
	r := 0
	for k, name := range q.names {
		f := fams[name]
		if f == nil {
			return Estimate{}, &ErrMissingStream{Name: name}
		}
		if k == 0 {
			first, r = f, f.Copies()
		} else {
			if !first.Aligned(f) {
				return Estimate{}, ErrNotAligned
			}
			if f.Copies() < r {
				r = f.Copies()
			}
		}
		views[k] = f.queryView()
	}
	return q.run(first.cfg, r, views[:len(q.names)], eps, multiLevel, opts.Workers)
}

// run is the kernel shared by both synopsis representations: a union
// occupancy pass feeding the (single-level or ML) û estimate, then the
// witness scan at the chosen level range. Both passes partition copies
// across workers when workers > 1; partial tallies are integers and
// merge associatively, and the float epilogue is the same code the
// interpreted path runs, so results are bit-identical regardless of
// worker count.
func (q *Query) run(cfg Config, r int, views []*familyView, eps float64, multiLevel bool, workers int) (Estimate, error) {
	if eps <= 0 || eps >= 1 {
		return Estimate{}, fmt.Errorf("core: relative accuracy ε = %v out of (0, 1)", eps)
	}
	if r < 1 {
		return Estimate{}, fmt.Errorf("core: family has no copies")
	}
	if workers > r {
		workers = r
	}

	var counts [64]int
	if workers > 1 {
		vs := append([]*familyView(nil), views...) // heap copy for the goroutines
		partial := make([][64]int, workers)
		forEachRange(workers, r, func(t, lo, hi int) {
			countUnionOccupancy(vs, lo, hi, &partial[t])
		})
		for t := range partial {
			for j, c := range partial[t] {
				counts[j] += c
			}
		}
	} else {
		countUnionOccupancy(views, 0, r, &counts)
	}

	var u Estimate
	var err error
	if multiLevel {
		u, err = unionMLFromCounts(cfg, r, &counts)
	} else {
		u, err = unionFromCounts(cfg, r, &counts, eps/3)
	}
	if err != nil {
		return Estimate{}, err
	}
	est := Estimate{Copies: r, Union: u.Value}
	if u.Value == 0 {
		return est, nil
	}
	lvlLo := chooseWitnessLevel(cfg, u.Value, Beta, eps)
	lvlHi := lvlLo
	if multiLevel {
		lvlLo, lvlHi = 0, cfg.Buckets-1
	}
	est.Level = chooseWitnessLevel(cfg, u.Value, Beta, eps)

	if workers > 1 {
		vs := append([]*familyView(nil), views...)
		valid := make([]int, workers)
		witness := make([]int, workers)
		forEachRange(workers, r, func(t, lo, hi int) {
			valid[t], witness[t] = scanWitnesses(q.prog, vs, cfg.Buckets, lo, hi, lvlLo, lvlHi)
		})
		for t := 0; t < workers; t++ {
			est.Valid += valid[t]
			est.Witnesses += witness[t]
		}
	} else {
		est.Valid, est.Witnesses = scanWitnesses(q.prog, views, cfg.Buckets, 0, r, lvlLo, lvlHi)
	}
	if err := finishWitnessEstimate(&est, u, uint64(r)*uint64(lvlHi-lvlLo+1)); err != nil {
		return est, err
	}
	return est, nil
}

// forEachRange splits [0, r) into `workers` near-equal chunks and runs
// fn(worker, lo, hi) concurrently, waiting for all.
func forEachRange(workers, r int, fn func(t, lo, hi int)) {
	var wg sync.WaitGroup
	wg.Add(workers)
	for t := 0; t < workers; t++ {
		go func(t int) {
			defer wg.Done()
			fn(t, t*r/workers, (t+1)*r/workers)
		}(t)
	}
	wg.Wait()
}

// countUnionOccupancy tallies, per level, the copies in [lo, hi) whose
// union first-level bucket is non-empty: one OR across streams per
// copy, then an iteration over the set bits.
func countUnionOccupancy(views []*familyView, lo, hi int, counts *[64]int) {
	for i := lo; i < hi; i++ {
		var w uint64
		for _, v := range views {
			w |= v.occ[i]
		}
		for w != 0 {
			counts[bits.TrailingZeros64(w)]++
			w &= w - 1
		}
	}
}

// scanWitnesses runs the witness scan over copies [lo, hi) and levels
// [lvlLo, lvlHi]: for each candidate whose union bucket is occupied and
// passes the packed singleton test, it builds the per-stream occupancy
// word and evaluates the compiled Boolean mapping.
func scanWitnesses(prog *expr.Program, views []*familyView, buckets, lo, hi, lvlLo, lvlHi int) (valid, witness int) {
	wps := views[0].wps
	for i := lo; i < hi; i++ {
		var union uint64
		for _, v := range views {
			union |= v.occ[i]
		}
		if union>>uint(lvlLo) == 0 {
			continue // no occupied level in range: every check is noEstimate
		}
		for level := lvlLo; level <= lvlHi; level++ {
			if union>>uint(level)&1 == 0 {
				continue // empty union bucket: not a singleton
			}
			base := (i*buckets + level) * wps
			collision := false
			for w := 0; w < wps; w++ {
				var or uint64
				for _, v := range views {
					or |= v.sig[base+w]
				}
				if sigCollision(or) {
					collision = true
					break
				}
			}
			if collision {
				continue // ≥ 2 distinct elements: noEstimate
			}
			valid++
			var occWord uint64
			for k, v := range views {
				occWord |= (v.occ[i] >> uint(level) & 1) << uint(k)
			}
			if prog.Eval(occWord) {
				witness++
			}
		}
	}
	return valid, witness
}
