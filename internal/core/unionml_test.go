package core

import (
	"math"
	"testing"

	"setsketch/internal/expr"
	"setsketch/internal/hashing"
)

func TestUnionMLAccuracy(t *testing.T) {
	rng := hashing.NewRNG(41)
	for _, n := range []int{100, 5000, 140000} {
		f := mustFamily(t, estCfg, 17, 384)
		seen := make(map[uint64]bool, n)
		for len(seen) < n {
			e := rng.Uint64n(1 << 34)
			if !seen[e] {
				seen[e] = true
				f.Insert(e)
			}
		}
		est, err := EstimateUnionMultiML([]*Family{f}, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		if rel := math.Abs(est.Value-float64(n)) / float64(n); rel > 0.15 {
			t.Errorf("n = %d: ML estimate %.0f (rel err %.3f)", n, est.Value, rel)
		}
	}
}

// TestUnionMLTighterThanFig5 quantifies the motivation: across
// independent runs, the all-levels MLE has visibly lower RMS error
// than the single-level Fig. 5 estimator on the same synopses.
func TestUnionMLTighterThanFig5(t *testing.T) {
	rng := hashing.NewRNG(42)
	const n, runs = 20000, 8
	var sqML, sqFig5 float64
	for run := 0; run < runs; run++ {
		f := mustFamily(t, estCfg, rng.Uint64(), 384)
		seen := make(map[uint64]bool, n)
		for len(seen) < n {
			e := rng.Uint64n(1 << 34)
			if !seen[e] {
				seen[e] = true
				f.Insert(e)
			}
		}
		ml, err := EstimateUnionMultiML([]*Family{f}, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		fig5, err := EstimateDistinct(f, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		dML := ml.Value/n - 1
		dF := fig5.Value/n - 1
		sqML += dML * dML
		sqFig5 += dF * dF
	}
	rmsML := math.Sqrt(sqML / runs)
	rmsFig5 := math.Sqrt(sqFig5 / runs)
	t.Logf("RMS error: ML %.4f vs Fig5 %.4f", rmsML, rmsFig5)
	if rmsML >= rmsFig5 {
		t.Errorf("ML union (%.4f) not tighter than Fig. 5 (%.4f)", rmsML, rmsFig5)
	}
}

// TestUnionMLStdErrorCalibrated checks the Fisher error bar: across
// independent runs, observed errors should mostly fall within 3
// standard errors and the bar should not be wildly pessimistic.
func TestUnionMLStdErrorCalibrated(t *testing.T) {
	rng := hashing.NewRNG(44)
	const n, runs = 10000, 10
	within3, ratioSum := 0, 0.0
	for run := 0; run < runs; run++ {
		f := mustFamily(t, estCfg, rng.Uint64(), 256)
		seen := make(map[uint64]bool, n)
		for len(seen) < n {
			e := rng.Uint64n(1 << 33)
			if !seen[e] {
				seen[e] = true
				f.Insert(e)
			}
		}
		est, err := EstimateUnionMultiML([]*Family{f}, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		if est.StdError <= 0 {
			t.Fatal("no standard error reported")
		}
		absErr := math.Abs(est.Value - n)
		if absErr <= 3*est.StdError {
			within3++
		}
		ratioSum += est.StdError / float64(n)
	}
	if within3 < runs-2 {
		t.Errorf("only %d/%d runs within 3 standard errors", within3, runs)
	}
	if avg := ratioSum / runs; avg > 0.2 {
		t.Errorf("error bar uselessly wide: avg relative stderr %.3f", avg)
	}
}

func TestWitnessStdErrorReported(t *testing.T) {
	rng := hashing.NewRNG(45)
	a, b := overlapStreams(rng, 2048, 512)
	fams := buildFamilies(t, estCfg, 46, 256, map[string][]uint64{"A": a, "B": b})
	est, err := EstimateExpressionMultiLevel(expr.MustParse("A & B"), fams, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if est.StdError <= 0 || est.StdError > est.Value {
		t.Errorf("witness StdError = %v for estimate %v", est.StdError, est.Value)
	}
}

func TestUnionMLEmptyAndErrors(t *testing.T) {
	f := mustFamily(t, estCfg, 1, 16)
	est, err := EstimateUnionMultiML([]*Family{f}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if est.Value != 0 {
		t.Errorf("empty stream ML estimate %v", est.Value)
	}
	if _, err := EstimateUnionMultiML(nil, 0.1); err == nil {
		t.Error("empty family list accepted")
	}
	if _, err := EstimateUnionMultiML([]*Family{f}, 0); err == nil {
		t.Error("eps 0 accepted")
	}
	g := mustFamily(t, estCfg, 2, 16)
	if _, err := EstimateUnionMultiML([]*Family{f, g}, 0.1); err == nil {
		t.Error("unaligned families accepted")
	}
}

func TestUnionMLSmallExactRange(t *testing.T) {
	// Tiny cardinalities: the profile pins u tightly.
	f := mustFamily(t, estCfg, 9, 256)
	for e := uint64(0); e < 10; e++ {
		f.Insert(e)
	}
	est, err := EstimateUnionMultiML([]*Family{f}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if est.Value < 5 || est.Value > 20 {
		t.Errorf("ML estimate %v for 10 elements", est.Value)
	}
}

func TestUnionMLBitsMatchesCounters(t *testing.T) {
	cf := mustFamily(t, estCfg, 21, 128)
	bf := mustBitFamily(t, estCfg, 21, 128)
	rng := hashing.NewRNG(5)
	for i := 0; i < 3000; i++ {
		e := rng.Uint64n(1 << 26)
		cf.Insert(e)
		bf.Insert(e)
	}
	ce, err := EstimateUnionMultiML([]*Family{cf}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	be, err := EstimateUnionBitsML([]*BitFamily{bf}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if ce.Value != be.Value {
		t.Errorf("counter ML %.2f vs bit ML %.2f", ce.Value, be.Value)
	}
	if _, err := EstimateUnionBitsML(nil, 0.1); err == nil {
		t.Error("empty bit family list accepted")
	}
}

// TestUnionMLDeletionInvariance: the ML estimator reads the same
// counters, so churn that cancels leaves the estimate identical.
func TestUnionMLDeletionInvariance(t *testing.T) {
	clean := mustFamily(t, estCfg, 33, 128)
	churned := mustFamily(t, estCfg, 33, 128)
	rng := hashing.NewRNG(6)
	for i := 0; i < 2000; i++ {
		e := rng.Uint64n(1 << 24)
		clean.Insert(e)
		churned.Insert(e)
		ph := (1 << 40) + rng.Uint64n(1<<20)
		churned.Update(ph, 3)
		churned.Update(ph, -3)
	}
	ec, err := EstimateUnionMultiML([]*Family{clean}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	ed, err := EstimateUnionMultiML([]*Family{churned}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if ec.Value != ed.Value {
		t.Errorf("churn changed ML estimate: %v vs %v", ec.Value, ed.Value)
	}
}
