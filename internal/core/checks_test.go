package core

import (
	"testing"

	"setsketch/internal/hashing"
)

// checkCfg keeps second-level small enough to be cheap but large enough
// that Lemma 3.1's 2^−s error probability is negligible in tests.
var checkCfg = Config{Buckets: 61, SecondLevel: 16, FirstWise: 4}

// bucketOf returns the first-level bucket a sketch's hash places e in.
func bucketOf(x *Sketch, e uint64) int {
	return hashing.LSB(x.h.Hash(e), x.cfg.Buckets)
}

func TestSingletonBucketEmpty(t *testing.T) {
	x := mustSketch(t, checkCfg, 1)
	for b := 0; b < checkCfg.Buckets; b++ {
		if x.SingletonBucket(b) {
			t.Fatalf("empty bucket %d reported singleton", b)
		}
	}
}

func TestSingletonBucketSingle(t *testing.T) {
	x := mustSketch(t, checkCfg, 1)
	x.Update(42, 5) // multiplicity must not matter, only distinctness
	b := bucketOf(x, 42)
	if !x.SingletonBucket(b) {
		t.Fatal("bucket holding one distinct element not reported singleton")
	}
	// Deleting down to one copy keeps it a singleton.
	x.Update(42, -4)
	if !x.SingletonBucket(b) {
		t.Fatal("singleton lost after partial deletion")
	}
	// Deleting the last copy empties the bucket.
	x.Update(42, -1)
	if x.SingletonBucket(b) {
		t.Fatal("empty bucket reported singleton after full deletion")
	}
}

func TestSingletonBucketDetectsPairs(t *testing.T) {
	// For many random pairs colliding in a first-level bucket, the
	// check must (almost) always detect non-singletons.
	rng := hashing.NewRNG(9)
	failures := 0
	const trials = 500
	for trial := 0; trial < trials; trial++ {
		x := mustSketch(t, checkCfg, rng.Uint64())
		e1 := rng.Uint64n(1 << 30)
		e2 := rng.Uint64n(1 << 30)
		for e2 == e1 {
			e2 = rng.Uint64n(1 << 30)
		}
		// Force both into the same bucket by retrying until collision.
		b1 := bucketOf(x, e1)
		for bucketOf(x, e2) != b1 {
			e2 = rng.Uint64n(1 << 30)
			for e2 == e1 {
				e2 = rng.Uint64n(1 << 30)
			}
		}
		x.Insert(e1)
		x.Insert(e2)
		if x.SingletonBucket(b1) {
			failures++
		}
	}
	// Lemma 3.1: error probability ≤ 2^−16 per trial; even one failure
	// in 500 trials is exceedingly unlikely.
	if failures > 0 {
		t.Errorf("SingletonBucket fooled on %d of %d two-element buckets (expected ≈ %d)",
			failures, trials, trials>>16)
	}
}

func TestSingletonBucketAfterDeletionsRevealsSurvivor(t *testing.T) {
	// Start with two elements in a bucket, delete one; the bucket must
	// become a singleton again — a behaviour bitmap sketches cannot
	// express and the reason the paper uses counters.
	x := mustSketch(t, checkCfg, 123)
	rng := hashing.NewRNG(4)
	e1 := rng.Uint64n(1 << 30)
	e2 := rng.Uint64n(1 << 30)
	for bucketOf(x, e2) != bucketOf(x, e1) || e2 == e1 {
		e2 = rng.Uint64n(1 << 30)
	}
	b := bucketOf(x, e1)
	x.Insert(e1)
	x.Insert(e2)
	if x.SingletonBucket(b) {
		t.Fatal("two-element bucket reported singleton")
	}
	x.Delete(e2)
	if !x.SingletonBucket(b) {
		t.Fatal("bucket not singleton after deleting one of two elements")
	}
}

func TestIdenticalSingletonBucket(t *testing.T) {
	a := mustSketch(t, checkCfg, 5)
	b := mustSketch(t, checkCfg, 5)
	a.Insert(100)
	b.Insert(100)
	bkt := bucketOf(a, 100)
	if !IdenticalSingletonBucket(a, b, bkt) {
		t.Fatal("identical singletons not recognized")
	}

	// Different values in the same bucket must be told apart.
	rng := hashing.NewRNG(6)
	misses := 0
	const trials = 300
	for trial := 0; trial < trials; trial++ {
		x := mustSketch(t, checkCfg, rng.Uint64())
		y := mustSketch(t, x.cfg, x.seed)
		e1 := rng.Uint64n(1 << 30)
		e2 := rng.Uint64n(1 << 30)
		for bucketOf(x, e2) != bucketOf(x, e1) || e2 == e1 {
			e2 = rng.Uint64n(1 << 30)
		}
		x.Insert(e1)
		y.Insert(e2)
		if IdenticalSingletonBucket(x, y, bucketOf(x, e1)) {
			misses++
		}
	}
	if misses > 0 {
		t.Errorf("IdenticalSingletonBucket confused distinct values %d/%d times", misses, trials)
	}
}

func TestIdenticalSingletonBucketRejects(t *testing.T) {
	a := mustSketch(t, checkCfg, 5)
	b := mustSketch(t, checkCfg, 5)
	a.Insert(100)
	bkt := bucketOf(a, 100)
	// b's bucket is empty: not identical singletons.
	if IdenticalSingletonBucket(a, b, bkt) {
		t.Fatal("singleton vs empty reported identical")
	}
	// Unaligned sketches are rejected outright.
	c := mustSketch(t, checkCfg, 6)
	c.Insert(100)
	if IdenticalSingletonBucket(a, c, bkt) {
		t.Fatal("unaligned sketches compared")
	}
}

func TestSingletonUnionBucket(t *testing.T) {
	cfg := checkCfg
	newPair := func() (a, b *Sketch) {
		return mustSketch(t, cfg, 77), mustSketch(t, cfg, 77)
	}

	// Case 1: singleton in A, empty in B.
	a, b := newPair()
	a.Insert(1)
	if !SingletonUnionBucket(a, b, bucketOf(a, 1)) {
		t.Error("singleton ∪ empty not recognized")
	}
	// Case 2: empty in A, singleton in B.
	a, b = newPair()
	b.Insert(2)
	if !SingletonUnionBucket(a, b, bucketOf(b, 2)) {
		t.Error("empty ∪ singleton not recognized")
	}
	// Case 3: same singleton in both.
	a, b = newPair()
	a.Insert(3)
	b.Insert(3)
	if !SingletonUnionBucket(a, b, bucketOf(a, 3)) {
		t.Error("identical singletons not recognized as singleton union")
	}
	// Case 4: both empty.
	a, b = newPair()
	if SingletonUnionBucket(a, b, 0) {
		t.Error("empty ∪ empty reported singleton")
	}
	// Case 5: distinct singletons in the same bucket → union of size 2.
	a, b = newPair()
	rng := hashing.NewRNG(11)
	e1 := rng.Uint64n(1 << 30)
	e2 := rng.Uint64n(1 << 30)
	for bucketOf(a, e2) != bucketOf(a, e1) || e2 == e1 {
		e2 = rng.Uint64n(1 << 30)
	}
	a.Insert(e1)
	b.Insert(e2)
	if SingletonUnionBucket(a, b, bucketOf(a, e1)) {
		t.Error("two distinct values reported as singleton union")
	}
}

func TestSingletonUnionBucketNMatchesBinary(t *testing.T) {
	// The n-way generalization must agree with the paper's binary
	// procedure on two sketches, across random states.
	cfg := checkCfg
	rng := hashing.NewRNG(21)
	for trial := 0; trial < 200; trial++ {
		a := mustSketch(t, cfg, 31)
		b := mustSketch(t, cfg, 31)
		for i, n := 0, rng.Intn(4); i < n; i++ {
			a.Insert(rng.Uint64n(256))
		}
		for i, n := 0, rng.Intn(4); i < n; i++ {
			b.Insert(rng.Uint64n(256))
		}
		for bkt := 0; bkt < 10; bkt++ {
			want := SingletonUnionBucket(a, b, bkt)
			got := SingletonUnionBucketN([]*Sketch{a, b}, bkt)
			if got != want {
				t.Fatalf("trial %d bucket %d: N-way = %v, binary = %v", trial, bkt, got, want)
			}
		}
	}
}

func TestSingletonUnionBucketNGroundTruth(t *testing.T) {
	// Compare the n-way check against exact bucket contents for three
	// streams.
	cfg := checkCfg
	rng := hashing.NewRNG(33)
	for trial := 0; trial < 100; trial++ {
		sketches := make([]*Sketch, 3)
		for i := range sketches {
			sketches[i] = mustSketch(t, cfg, 55)
		}
		// elements per bucket across the union
		union := make(map[int]map[uint64]bool)
		for i := 0; i < 12; i++ {
			e := rng.Uint64n(512)
			k := rng.Intn(3)
			sketches[k].Insert(e)
			b := bucketOf(sketches[k], e)
			if union[b] == nil {
				union[b] = make(map[uint64]bool)
			}
			union[b][e] = true
		}
		for bkt := 0; bkt < cfg.Buckets; bkt++ {
			want := len(union[bkt]) == 1
			got := SingletonUnionBucketN(sketches, bkt)
			if got != want && len(union[bkt]) >= 2 {
				// Allowed to fail only with probability 2^−16.
				t.Fatalf("trial %d bucket %d: got %v for %d-element union bucket",
					trial, bkt, got, len(union[bkt]))
			}
			if got != want && len(union[bkt]) <= 1 {
				t.Fatalf("trial %d bucket %d: deterministic case wrong (%d elements, got %v)",
					trial, bkt, len(union[bkt]), got)
			}
		}
	}
}

func TestSingletonUnionBucketNEdgeCases(t *testing.T) {
	if SingletonUnionBucketN(nil, 0) {
		t.Error("empty sketch list reported singleton")
	}
	a := mustSketch(t, checkCfg, 1)
	b := mustSketch(t, checkCfg, 2) // unaligned
	a.Insert(1)
	if SingletonUnionBucketN([]*Sketch{a, b}, bucketOf(a, 1)) {
		t.Error("unaligned sketches accepted")
	}
	// Single sketch: reduces to SingletonBucket.
	if !SingletonUnionBucketN([]*Sketch{a}, bucketOf(a, 1)) {
		t.Error("one-sketch case broken")
	}
}

// TestChecksRespectDeletions: property checks observe the net multiset.
func TestChecksRespectDeletions(t *testing.T) {
	a := mustSketch(t, checkCfg, 13)
	b := mustSketch(t, checkCfg, 13)
	a.Insert(500)
	b.Insert(500)
	bkt := bucketOf(a, 500)
	if !IdenticalSingletonBucket(a, b, bkt) {
		t.Fatal("setup failed")
	}
	b.Delete(500)
	if IdenticalSingletonBucket(a, b, bkt) {
		t.Fatal("identical-singleton check ignored deletion")
	}
	if !SingletonUnionBucket(a, b, bkt) {
		t.Fatal("singleton ∪ empty (after deletion) not recognized")
	}
}
