package core

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

func TestGenSeedCorpus(t *testing.T) {
	if os.Getenv("GEN_FUZZ_CORPUS") == "" {
		t.Skip("set GEN_FUZZ_CORPUS=1 to regenerate testdata/fuzz seeds")
	}
	write := func(name string, b []byte) {
		dir := filepath.Join("testdata", "fuzz", "FuzzReadFamily")
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		content := "go test fuzz v1\n[]byte(" + strconv.Quote(string(b)) + ")\n"
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	fam, err := NewFamily(Config{Buckets: 32, SecondLevel: 6, FirstWise: 4}, 11, 3)
	if err != nil {
		t.Fatal(err)
	}
	for e := uint64(0); e < 20; e++ {
		fam.Update(e, int64(e%5)-2)
	}
	var buf bytes.Buffer
	if _, err := fam.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	write("seed-populated-family", b)
	write("seed-truncated-family", b[:len(b)/2])
	corrupt := append([]byte(nil), b...)
	corrupt[len(corrupt)/3] ^= 0xff
	write("seed-corrupt-family", corrupt)
}
