package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"setsketch/internal/hashing"
)

// BitSketch is the insert-only variant of the 2-level hash sketch that
// the paper's own experimental study uses (§5.2: "since we are only
// considering insert-only streams, this estimate assumes simple bits
// (instead of counters) at each cell"). Every Θ(log M) × s × 2 cell is
// one bit rather than an O(log N) counter — a 64× memory reduction —
// at the cost of deletions: bits saturate, so only insertion streams
// are supported (Delete returns ErrBitDeletion).
//
// A BitSketch built with the same (Config, seed) as a counter Sketch
// places every element identically, and on an insert-only stream the
// two have identical occupancy patterns — so every estimator returns
// the *same* value from either representation (tested in
// bitsketch_test.go).
type BitSketch struct {
	cfg  Config
	seed uint64
	h    *hashing.Poly
	g    []*hashing.PairBit
	// bits holds the packed cell bits; cell (b, j, v) is bit
	// (b·s + j)·2 + v of the array.
	bits []uint64
}

// ErrBitDeletion is returned by BitSketch.Delete: bit cells saturate
// and cannot express deletions — the limitation that motivates the
// counter-based sketch.
var ErrBitDeletion = errors.New("core: bit sketches are insert-only; use counter sketches for update streams with deletions")

// NewBitSketch builds an empty insert-only sketch; see NewSketch for
// the seed/alignment contract.
func NewBitSketch(cfg Config, seed uint64) (*BitSketch, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g := make([]*hashing.PairBit, cfg.SecondLevel)
	for j := range g {
		g[j] = hashing.NewPairBit(hashing.DeriveSeed(seed, 1, uint64(j)))
	}
	cells := cfg.counters()
	return &BitSketch{
		cfg:  cfg,
		seed: seed,
		h:    hashing.NewPoly(hashing.DeriveSeed(seed, 0), cfg.FirstWise),
		g:    g,
		bits: make([]uint64, (cells+63)/64),
	}, nil
}

// Config returns the sketch's configuration.
func (x *BitSketch) Config() Config { return x.cfg }

// Seed returns the seed the sketch's hash functions derive from.
func (x *BitSketch) Seed() uint64 { return x.seed }

// cell returns the packed bit index of cell (b, j, v).
func (x *BitSketch) cell(b, j, v int) int {
	return (b*x.cfg.SecondLevel+j)*2 + v
}

// bit reads cell (b, j, v).
func (x *BitSketch) bit(b, j, v int) bool {
	c := x.cell(b, j, v)
	return x.bits[c/64]&(1<<uint(c%64)) != 0
}

// Insert records one occurrence of e (multiplicities are irrelevant —
// bits saturate, which is fine for distinct counting).
func (x *BitSketch) Insert(e uint64) {
	b := hashing.LSB(x.h.Hash(e), x.cfg.Buckets)
	er := hashing.Reduce61(e)
	base := b * x.cfg.SecondLevel * 2
	for j, g := range x.g {
		c := base + 2*j + g.BitReduced(er)
		x.bits[c/64] |= 1 << uint(c%64)
	}
}

// Delete always fails; see ErrBitDeletion.
func (x *BitSketch) Delete(uint64) error { return ErrBitDeletion }

// BucketEmpty reports whether bucket b has seen no element. Every
// element sets exactly one of the two g_1 cells, so emptiness is the
// conjunction of both being clear.
func (x *BitSketch) BucketEmpty(b int) bool {
	return !x.bit(b, 0, 0) && !x.bit(b, 0, 1)
}

// SingletonBucket reports whether bucket b holds exactly one distinct
// element, with the Lemma 3.1 guarantee (error probability 2^−s for
// buckets holding ≥ 2 distinct values).
func (x *BitSketch) SingletonBucket(b int) bool {
	if x.BucketEmpty(b) {
		return false
	}
	for j := 0; j < x.cfg.SecondLevel; j++ {
		if x.bit(b, j, 0) && x.bit(b, j, 1) {
			return false
		}
	}
	return true
}

// Aligned reports whether two bit sketches share hash functions.
func (x *BitSketch) Aligned(y *BitSketch) bool {
	return x.cfg == y.cfg && x.seed == y.seed
}

// Merge ORs y into x, producing the sketch of the union of the two
// insert streams (bits saturate, so OR is exactly set union).
func (x *BitSketch) Merge(y *BitSketch) error {
	if !x.Aligned(y) {
		return ErrNotAligned
	}
	for i, w := range y.bits {
		x.bits[i] |= w
	}
	return nil
}

// Clone returns a deep copy.
func (x *BitSketch) Clone() *BitSketch {
	c := &BitSketch{cfg: x.cfg, seed: x.seed, h: x.h, g: x.g, bits: make([]uint64, len(x.bits))}
	copy(c.bits, x.bits)
	return c
}

// Reset clears all bits.
func (x *BitSketch) Reset() {
	for i := range x.bits {
		x.bits[i] = 0
	}
}

// Equal reports alignment plus identical bit contents.
func (x *BitSketch) Equal(y *BitSketch) bool {
	if !x.Aligned(y) {
		return false
	}
	for i := range x.bits {
		if x.bits[i] != y.bits[i] {
			return false
		}
	}
	return true
}

// MemoryBytes reports the packed bit-array footprint — the quantity
// behind the paper's "number of sketches × 32 bytes" space accounting.
func (x *BitSketch) MemoryBytes() int { return len(x.bits) * 8 }

// MatchesCounters reports whether a counter sketch built with the same
// coins over the same insert-only stream has the same occupancy
// pattern (cell non-zero ⇔ bit set) — the bridge invariant between
// the two representations.
func (x *BitSketch) MatchesCounters(y *Sketch) bool {
	if x.cfg != y.cfg || x.seed != y.seed {
		return false
	}
	for b := 0; b < x.cfg.Buckets; b++ {
		for j := 0; j < x.cfg.SecondLevel; j++ {
			for v := 0; v < 2; v++ {
				if x.bit(b, j, v) != (y.count(b, j, v) > 0) {
					return false
				}
			}
		}
	}
	return true
}

// BitFamily is the r-fold replicated bit synopsis, mirroring Family.
type BitFamily struct {
	cfg    Config
	seed   uint64
	copies []*BitSketch

	// Query-view invalidation, mirroring Family: mutate only through
	// BitFamily-level methods (Insert/Merge), not Copy(i).Insert, or the
	// cached view goes stale. Truncate views share the version pointer.
	version *atomic.Uint64
	viewMu  sync.Mutex
	view    *familyView
}

// NewBitFamily builds a family of r empty bit sketches from a master
// seed; copy i's coins match copy i of a counter Family built from the
// same (cfg, seed).
func NewBitFamily(cfg Config, seed uint64, r int) (*BitFamily, error) {
	if r < 1 {
		return nil, fmt.Errorf("core: bit family needs at least 1 copy, got %d", r)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	copies := make([]*BitSketch, r)
	for i := range copies {
		sk, err := NewBitSketch(cfg, hashing.DeriveSeed(seed, uint64(i)))
		if err != nil {
			return nil, err
		}
		copies[i] = sk
	}
	return &BitFamily{cfg: cfg, seed: seed, copies: copies, version: new(atomic.Uint64)}, nil
}

// Config returns the family's configuration.
func (f *BitFamily) Config() Config { return f.cfg }

// Seed returns the family's master seed.
func (f *BitFamily) Seed() uint64 { return f.seed }

// Copies returns the copy count r.
func (f *BitFamily) Copies() int { return len(f.copies) }

// Copy returns the i-th sketch.
func (f *BitFamily) Copy(i int) *BitSketch { return f.copies[i] }

// Insert records one occurrence of e in every copy.
func (f *BitFamily) Insert(e uint64) {
	for _, x := range f.copies {
		x.Insert(e)
	}
	f.bumpVersion()
}

// Aligned reports shared coins.
func (f *BitFamily) Aligned(g *BitFamily) bool {
	return f.cfg == g.cfg && f.seed == g.seed
}

// Merge ORs g into f copy-by-copy.
func (f *BitFamily) Merge(g *BitFamily) error {
	if !f.Aligned(g) {
		return ErrNotAligned
	}
	if len(f.copies) != len(g.copies) {
		return fmt.Errorf("core: merging bit families with %d and %d copies", len(f.copies), len(g.copies))
	}
	for i := range f.copies {
		if err := f.copies[i].Merge(g.copies[i]); err != nil {
			return err
		}
	}
	f.bumpVersion()
	return nil
}

// Truncate returns a prefix view sharing storage with f.
func (f *BitFamily) Truncate(r int) (*BitFamily, error) {
	if r < 1 || r > len(f.copies) {
		return nil, fmt.Errorf("core: truncating %d-copy bit family to %d copies", len(f.copies), r)
	}
	return &BitFamily{cfg: f.cfg, seed: f.seed, copies: f.copies[:r], version: f.version}, nil
}

// ToCounters converts the bit family into a counter family with the
// same coins, setting each counter to its cell's bit (0 or 1). All
// occupancy-based observations — emptiness, singleton checks, and
// therefore every estimate — are preserved exactly, and the result can
// be merged with genuine counter families of the same coins (counter
// magnitudes stop tracking multiplicities, but no estimator reads
// magnitudes, only signs).
//
// The converted family does not satisfy Sketch.Validate's multiplicity
// invariant (bits cannot recover how many items a cell absorbed); it
// is an occupancy summary, which is all estimation needs.
func (f *BitFamily) ToCounters() *Family {
	copies := make([]*Sketch, len(f.copies))
	for i, x := range f.copies {
		sk, err := NewSketch(f.cfg, x.seed)
		if err != nil {
			// The bit sketch was built from the same validated config.
			panic(fmt.Sprintf("core: converting validated bit sketch: %v", err))
		}
		for b := 0; b < f.cfg.Buckets; b++ {
			for j := 0; j < f.cfg.SecondLevel; j++ {
				for v := 0; v < 2; v++ {
					if x.bit(b, j, v) {
						sk.counts[(b*f.cfg.SecondLevel+j)*2+v] = 1
					}
				}
			}
			// Occupancy count from the g_1 pair (every element sets
			// exactly one of its two cells).
			s2 := b * f.cfg.SecondLevel * 2
			sk.totals[b] = sk.counts[s2] + sk.counts[s2+1]
		}
		copies[i] = sk
	}
	return &Family{cfg: f.cfg, seed: f.seed, copies: copies, version: new(atomic.Uint64)}
}

// MemoryBytes reports the total packed footprint.
func (f *BitFamily) MemoryBytes() int {
	var n int
	for _, x := range f.copies {
		n += x.MemoryBytes()
	}
	return n
}
