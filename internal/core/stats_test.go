package core

import (
	"testing"

	"setsketch/internal/expr"
)

// TestEstimatorStatsAccumulate: the estimate path feeds the global
// estimator counters — one Estimates tick per witness run, one
// SingletonChecks tick per (copy, level) probe, hits bounded by checks.
// Counters are process-global, so the test asserts on deltas.
func TestEstimatorStatsAccumulate(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SecondLevel = 8
	const copies = 32
	fams := map[string]*Family{}
	for _, name := range []string{"A", "B"} {
		f, err := NewFamily(cfg, 7, copies)
		if err != nil {
			t.Fatal(err)
		}
		fams[name] = f
	}
	for e := uint64(0); e < 4000; e++ {
		fams["A"].Update(e, 1)
		if e%2 == 0 {
			fams["B"].Update(e, 1)
		}
	}
	node, err := expr.Parse("A & B")
	if err != nil {
		t.Fatal(err)
	}

	before := Stats.Snapshot()
	est, err := EstimateExpressionMultiLevel(node, fams, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	after := Stats.Snapshot()

	delta := func(k string) uint64 { return after[k] - before[k] }
	if delta("estimator_estimates_total") != 1 {
		t.Errorf("estimates delta = %d, want 1", delta("estimator_estimates_total"))
	}
	wantChecks := uint64(copies * cfg.Buckets) // multi-level probes every (copy, level)
	if delta("estimator_singleton_checks_total") != wantChecks {
		t.Errorf("singleton checks delta = %d, want %d",
			delta("estimator_singleton_checks_total"), wantChecks)
	}
	if got := delta("estimator_singleton_hits_total"); got != uint64(est.Valid) {
		t.Errorf("singleton hits delta = %d, want Valid = %d", got, est.Valid)
	}
	if got := delta("estimator_witnesses_total"); got != uint64(est.Witnesses) {
		t.Errorf("witnesses delta = %d, want Witnesses = %d", got, est.Witnesses)
	}
	if delta("estimator_union_estimates_total") == 0 {
		t.Error("union estimator ran without counting itself")
	}
	if delta("estimator_union_level_scans_total") == 0 {
		t.Error("union level scan not counted")
	}
	if delta("estimator_no_observations_total") != 0 {
		t.Error("healthy estimate counted as no-observations")
	}

	// The single-level binary estimators feed the same counters.
	before = Stats.Snapshot()
	if _, err := EstimateIntersection(fams["A"], fams["B"], 0.3); err != nil {
		t.Fatal(err)
	}
	after = Stats.Snapshot()
	if delta("estimator_estimates_total") != 1 {
		t.Errorf("binary estimates delta = %d, want 1", delta("estimator_estimates_total"))
	}
	if delta("estimator_singleton_checks_total") != copies {
		t.Errorf("binary singleton checks delta = %d, want %d",
			delta("estimator_singleton_checks_total"), copies)
	}
}
