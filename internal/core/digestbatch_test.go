package core

import (
	"bytes"
	"testing"

	"setsketch/internal/hashing"
)

// TestDigestBatchMatchesScalar: batch-computed digests must be
// word-for-word identical to per-element Digest across shapes,
// including degenerate batches.
func TestDigestBatchMatchesScalar(t *testing.T) {
	cfgs := []Config{
		DefaultConfig(),
		{Buckets: 8, SecondLevel: 1, FirstWise: 2},
		{Buckets: 61, SecondLevel: 58, FirstWise: 3},
		{Buckets: 16, SecondLevel: 7, FirstWise: 8},
	}
	for _, cfg := range cfgs {
		fam, err := NewFamily(cfg, 0xfeed, 9)
		if err != nil {
			t.Fatal(err)
		}
		rng := hashing.NewRNG(123)
		for _, n := range []int{0, 1, 2, 63, 256} {
			elems := make([]uint64, n)
			for k := range elems {
				elems[k] = rng.Uint64() // full domain, exercises Reduce61
			}
			ds := fam.DigestBatch(elems)
			if len(ds) != n {
				t.Fatalf("cfg %+v: DigestBatch returned %d digests for %d elems", cfg, len(ds), n)
			}
			for k, e := range elems {
				want := fam.Digest(e)
				for i := range want {
					if ds[k][i] != want[i] {
						t.Fatalf("cfg %+v: batch digest[%d][%d] = %#x, scalar = %#x (elem %#x)",
							cfg, k, i, ds[k][i], want[i], e)
					}
				}
			}
		}
	}
}

// TestUpdateBatchDigestMatchesDirect: replaying a batch through the
// copy-major kernel must build the same family as per-element direct
// updates, including deletions through zero and split copy ranges.
func TestUpdateBatchDigestMatchesDirect(t *testing.T) {
	cfg := DefaultConfig()
	const r = 7
	direct, err := NewFamily(cfg, 42, r)
	if err != nil {
		t.Fatal(err)
	}
	whole, _ := NewFamily(cfg, 42, r)
	split, _ := NewFamily(cfg, 42, r)

	rng := hashing.NewRNG(77)
	const n = 500
	elems := make([]uint64, n)
	deltas := make([]int64, n)
	for k := range elems {
		elems[k] = rng.Uint64n(64) // small domain: repeats and cancellations
		deltas[k] = int64(rng.Uint64n(7)) - 3
		direct.Update(elems[k], deltas[k])
	}
	ds := whole.DigestBatch(elems)
	whole.UpdateBatchDigest(ds, deltas)
	if !direct.Equal(whole) {
		t.Fatal("UpdateBatchDigest diverged from direct updates")
	}
	for lo := 0; lo < r; lo += 2 {
		hi := lo + 2
		if hi > r {
			hi = r
		}
		split.UpdateRangeBatchDigest(lo, hi, ds, deltas)
	}
	if !direct.Equal(split) {
		t.Fatal("split-range UpdateRangeBatchDigest diverged from direct updates")
	}
}

// TestDigestBatchIntoReusesStorage: caller-managed digest storage must
// be filled without the kernel allocating digest words of its own.
func TestDigestBatchIntoReusesStorage(t *testing.T) {
	fam, err := NewFamily(DefaultConfig(), 7, 4)
	if err != nil {
		t.Fatal(err)
	}
	elems := []uint64{1, 2, 3}
	slab := make([]uint64, len(elems)*fam.Copies())
	ds := make([]Digest, len(elems))
	for k := range ds {
		ds[k] = Digest(slab[k*fam.Copies() : (k+1)*fam.Copies()])
	}
	fam.DigestBatchInto(ds, elems)
	for k, e := range elems {
		want := fam.Digest(e)
		for i := range want {
			if slab[k*fam.Copies()+i] != want[i] {
				t.Fatalf("slab word (%d, %d) = %#x, want %#x", k, i, slab[k*fam.Copies()+i], want[i])
			}
		}
	}
}

// TestDigestBatchUnpackablePanics mirrors the scalar DigestInto guard.
func TestDigestBatchUnpackablePanics(t *testing.T) {
	fam, err := NewFamily(Config{Buckets: 61, SecondLevel: 59, FirstWise: 2}, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("DigestBatch on an unpackable shape did not panic")
		}
	}()
	fam.DigestBatch([]uint64{1})
}

// TestArenaPaddingInvariants: padded arenas must keep their padding
// lanes zero through updates, merges, and resets; the padding must be
// invisible to serialization; and copy views must stay line-aligned and
// disjoint.
func TestArenaPaddingInvariants(t *testing.T) {
	cfg := DefaultConfig() // Buckets = 61: stride rounds to 64
	const r = 6
	fam, err := NewFamily(cfg, 5, r)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(fam.totals), r*cfg.strideTotals(); got != want {
		t.Fatalf("totals arena len %d, want %d", got, want)
	}
	if cfg.strideTotals()%arenaAlign != 0 || cfg.strideCounts()%arenaAlign != 0 {
		t.Fatalf("strides %d/%d not aligned to %d", cfg.strideTotals(), cfg.strideCounts(), arenaAlign)
	}
	rng := hashing.NewRNG(9)
	for i := 0; i < 2000; i++ {
		fam.Update(rng.Uint64(), int64(rng.Uint64n(5))-2)
	}
	other, _ := NewFamily(cfg, 5, r)
	other.Insert(999)
	if err := fam.Merge(other); err != nil {
		t.Fatal(err)
	}
	checkPadding := func(when string) {
		t.Helper()
		st, nb := cfg.strideTotals(), cfg.Buckets
		for i := 0; i < r; i++ {
			for j := i*st + nb; j < (i+1)*st; j++ {
				if fam.totals[j] != 0 {
					t.Fatalf("%s: totals padding word %d (copy %d) = %d, want 0", when, j, i, fam.totals[j])
				}
			}
		}
		sc, nc := cfg.strideCounts(), cfg.counters()
		for i := 0; i < r; i++ {
			for j := i*sc + nc; j < (i+1)*sc; j++ {
				if fam.counts[j] != 0 {
					t.Fatalf("%s: counts padding word %d (copy %d) = %d, want 0", when, j, i, fam.counts[j])
				}
			}
		}
	}
	checkPadding("after updates and merge")

	// Padding must not leak into the wire format: round-trip equality.
	var buf bytes.Buffer
	if _, err := fam.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFamily(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(fam) {
		t.Fatal("padded family does not round-trip through serialization")
	}

	// MemoryBytes reports the logical counter footprint, not the padded
	// allocation.
	if got, want := fam.MemoryBytes(), 8*r*(cfg.Buckets+cfg.counters()); got != want {
		t.Fatalf("MemoryBytes = %d, want unpadded %d", got, want)
	}

	fam.Reset()
	checkPadding("after reset")
}
