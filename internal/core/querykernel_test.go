package core

import (
	"errors"
	"fmt"
	"testing"

	"setsketch/internal/expr"
	"setsketch/internal/hashing"
)

// kernelExprs are the expressions the differential tests sweep: every
// operator, nesting on both sides, and repeated stream references.
var kernelExprs = []string{
	"A",
	"A | B",
	"A & B",
	"A - B",
	"B - A",
	"A ^ B",
	"(A & B) - C",
	"A - (B | C)",
	"(A - B) | (B - C)",
	"(A | B) & (B | C)",
	"(A ^ B) - (C & A)",
}

// buildKernelFamilies creates three correlated streams with enough
// overlap that every expression above has witnesses.
func buildKernelFamilies(t testing.TB, cfg Config, seed uint64, r int) map[string]*Family {
	t.Helper()
	rng := hashing.NewRNG(seed * 31)
	a, b := overlapStreams(rng, 3000, 1000)
	c := append(append([]uint64(nil), a[:500]...), b[len(b)-500:]...)
	return buildFamilies(t, cfg, seed, r, map[string][]uint64{"A": a, "B": b, "C": c})
}

// sameEstimate requires exact (bit-identical) equality of every field.
func sameEstimate(t *testing.T, label string, got, want Estimate) {
	t.Helper()
	if got != want {
		t.Errorf("%s: estimates differ\n got: %+v\nwant: %+v", label, got, want)
	}
}

// TestCompiledMatchesReference pins the compiled kernel (serial and
// parallel) against the legacy counter-scanning estimator: same
// expression, same synopses, bit-identical Estimate.
func TestCompiledMatchesReference(t *testing.T) {
	for _, seed := range []uint64{3, 17} {
		fams := buildKernelFamilies(t, estCfg, seed, 96)
		for _, src := range kernelExprs {
			node := expr.MustParse(src)
			for _, multi := range []bool{false, true} {
				ref, refErr := EstimateExpressionReference(node, fams, 0.15, multi)
				for _, workers := range []int{0, 1, 3, 8, 96, 200} {
					opts := EstimateOptions{Workers: workers}
					got, err := EstimateExpressionOpts(node, fams, 0.15, multi, opts)
					if (err == nil) != (refErr == nil) {
						t.Fatalf("%s seed=%d multi=%v workers=%d: err %v vs ref %v",
							src, seed, multi, workers, err, refErr)
					}
					sameEstimate(t, fmt.Sprintf("%s seed=%d multi=%v workers=%d", src, seed, multi, workers), got, ref)
				}
			}
		}
	}
}

// TestCompiledMatchesReferenceBits is the same differential over the
// insert-only bit representation.
func TestCompiledMatchesReferenceBits(t *testing.T) {
	rng := hashing.NewRNG(99)
	a, b := overlapStreams(rng, 2000, 700)
	c := a[:400]
	const r = 64
	fams := map[string]*BitFamily{
		"A": mustBitFamily(t, estCfg, 5, r),
		"B": mustBitFamily(t, estCfg, 5, r),
		"C": mustBitFamily(t, estCfg, 5, r),
	}
	for _, e := range a {
		fams["A"].Insert(e)
	}
	for _, e := range b {
		fams["B"].Insert(e)
	}
	for _, e := range c {
		fams["C"].Insert(e)
	}
	for _, src := range kernelExprs {
		node := expr.MustParse(src)
		for _, multi := range []bool{false, true} {
			ref, refErr := EstimateExpressionReferenceBits(node, fams, 0.15, multi)
			for _, workers := range []int{0, 4, r} {
				got, err := EstimateExpressionBitsOpts(node, fams, 0.15, multi, EstimateOptions{Workers: workers})
				if (err == nil) != (refErr == nil) {
					t.Fatalf("%s multi=%v workers=%d: err %v vs ref %v", src, multi, workers, err, refErr)
				}
				sameEstimate(t, fmt.Sprintf("bits %s multi=%v workers=%d", src, multi, workers), got, ref)
			}
		}
	}
}

// TestCompiledMatchesInterpretedOracle pins the compiled kernel against
// the view-backed interpreted fallback (the > 64-stream path), which
// must agree exactly too.
func TestCompiledMatchesInterpretedOracle(t *testing.T) {
	fams := buildKernelFamilies(t, estCfg, 7, 48)
	for _, src := range kernelExprs {
		node := expr.MustParse(src)
		names, ordered, err := orderedFamilies(node, fams, func(f *Family) bool { return f == nil })
		if err != nil {
			t.Fatal(err)
		}
		r, err := alignedCopies(ordered)
		if err != nil {
			t.Fatal(err)
		}
		for _, multi := range []bool{false, true} {
			interp, interpErr := estimateExpressionOracle(node, names, newCounterOracle(ordered, r, len(ordered)), 0.15, multi)
			got, err := EstimateExpressionOpts(node, fams, 0.15, multi, EstimateOptions{})
			if (err == nil) != (interpErr == nil) {
				t.Fatalf("%s multi=%v: err %v vs interpreted %v", src, multi, err, interpErr)
			}
			sameEstimate(t, fmt.Sprintf("interp %s multi=%v", src, multi), got, interp)
		}
	}
}

// TestKernelErrorPaths exercises every estimator error through the
// compiled path, the interpreted reference, and the bit variant.
func TestKernelErrorPaths(t *testing.T) {
	fams := buildKernelFamilies(t, estCfg, 11, 16)
	node := expr.MustParse("A - B")
	opts := DefaultEstimateOptions()

	for _, eps := range []float64{0, -0.5, 1, 1.5} {
		if _, err := EstimateExpressionOpts(node, fams, eps, true, opts); err == nil {
			t.Errorf("eps=%v: want error", eps)
		}
		if _, err := EstimateExpressionReference(node, fams, eps, true); err == nil {
			t.Errorf("reference eps=%v: want error", eps)
		}
	}

	missing := expr.MustParse("A - Nope")
	var miss *ErrMissingStream
	if _, err := EstimateExpressionOpts(missing, fams, 0.1, true, opts); !errors.As(err, &miss) || miss.Name != "Nope" {
		t.Errorf("missing stream: got %v", err)
	}
	if _, err := EstimateExpressionReference(missing, fams, 0.1, true); err == nil {
		t.Error("reference missing stream: want error")
	}

	// Misaligned: different seed.
	bad := buildFamilies(t, estCfg, 999, 16, map[string][]uint64{"B": {1, 2, 3}})
	mixed := map[string]*Family{"A": fams["A"], "B": bad["B"]}
	if _, err := EstimateExpressionOpts(node, mixed, 0.1, true, opts); !errors.Is(err, ErrNotAligned) {
		t.Errorf("misaligned: got %v", err)
	}
	if _, err := EstimateExpressionReference(node, mixed, 0.1, true); !errors.Is(err, ErrNotAligned) {
		t.Errorf("reference misaligned: got %v", err)
	}

	// ErrNoObservations: a tiny difference drowned by a huge union, at
	// r = 1 copy, rarely yields a usable witness; empty-minus-empty is
	// deterministic (union = 0 → Value 0, no error), so use disjoint
	// identical streams instead: A - A over a non-empty stream gives
	// witnesses = 0 but valid > 0 → Value 0; the guaranteed error case
	// is valid = 0, which needs every union bucket non-singleton. Build
	// it by packing one copy with many elements at s = 1 so the
	// singleton test almost surely fails everywhere.
	tiny := Config{Buckets: 8, SecondLevel: 1, FirstWise: 8}
	dense := buildFamilies(t, tiny, 5, 1, map[string][]uint64{"A": nil, "B": nil})
	for e := uint64(0); e < 4096; e++ {
		dense["A"].Insert(e*2 + 1)
		dense["B"].Insert(e * 2)
	}
	_, err := EstimateExpressionOpts(node, dense, 0.9, true, opts)
	_, refErr := EstimateExpressionReference(node, dense, 0.9, true)
	if !errors.Is(err, ErrNoObservations) || !errors.Is(refErr, ErrNoObservations) {
		t.Errorf("dense no-observations: compiled %v, reference %v", err, refErr)
	}

	// Bit variant errors.
	bf := map[string]*BitFamily{"A": mustBitFamily(t, estCfg, 5, 8)}
	if _, err := EstimateExpressionBitsOpts(node, bf, 0.1, true, opts); err == nil {
		t.Error("bits missing stream: want error")
	}
	if _, err := EstimateExpressionBitsOpts(expr.MustParse("A"), bf, 2, true, opts); err == nil {
		t.Error("bits eps out of range: want error")
	}
}

// TestEstimateSerialAllocFree asserts the hot serial path allocates
// nothing once the family views are warm — the satellite requirement
// for embedding estimates in latency-sensitive loops.
func TestEstimateSerialAllocFree(t *testing.T) {
	fams := buildKernelFamilies(t, estCfg, 13, 64)
	node := expr.MustParse("(A - B) | (B - C)")
	q, err := CompileQuery(node)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Estimate(fams, 0.15, true, EstimateOptions{}); err != nil {
		t.Fatal(err) // warm the views
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := q.Estimate(fams, 0.15, true, EstimateOptions{}); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("serial compiled estimate allocates %.1f objects/op, want 0", allocs)
	}
}

// TestViewInvalidation checks that mutations through every family-level
// write path bump the version and are visible to the next estimate.
func TestViewInvalidation(t *testing.T) {
	fams := buildKernelFamilies(t, estCfg, 19, 32)
	node := expr.MustParse("A | B")
	estimate := func() Estimate {
		est, err := EstimateExpressionOpts(node, fams, 0.15, true, EstimateOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return est
	}
	reference := func() Estimate {
		est, err := EstimateExpressionReference(node, fams, 0.15, true)
		if err != nil {
			t.Fatal(err)
		}
		return est
	}

	before := estimate()
	v0 := fams["A"].Version()
	for e := uint64(0); e < 500; e++ {
		fams["A"].Update(e+1<<40, 1)
	}
	if fams["A"].Version() == v0 {
		t.Fatal("Update did not bump version")
	}
	after := estimate()
	if after == before {
		t.Error("estimate unchanged after 500 inserts: stale view")
	}
	sameEstimate(t, "after update", after, reference())

	other := buildFamilies(t, estCfg, 19, 32, map[string][]uint64{"B": {7, 8, 9, 10, 11}})
	v0 = fams["B"].Version()
	if err := fams["B"].Merge(other["B"]); err != nil {
		t.Fatal(err)
	}
	if fams["B"].Version() == v0 {
		t.Fatal("Merge did not bump version")
	}
	sameEstimate(t, "after merge", estimate(), reference())

	fams["A"].Reset()
	sameEstimate(t, "after reset", estimate(), reference())
}

// TestTruncateSharesVersion: a truncated family aliases the parent's
// counter storage, so its version counter must move with the parent's.
func TestTruncateSharesVersion(t *testing.T) {
	f := mustFamily(t, estCfg, 23, 16)
	f.Insert(1)
	tr, err := f.Truncate(8)
	if err != nil {
		t.Fatal(err)
	}
	v := tr.Version()
	f.Insert(2)
	if tr.Version() == v {
		t.Error("parent Update invisible to truncated family's version")
	}

	bf := mustBitFamily(t, estCfg, 23, 16)
	bf.Insert(1)
	btr, err := bf.Truncate(8)
	if err != nil {
		t.Fatal(err)
	}
	bv := btr.Version()
	bf.Insert(2)
	if btr.Version() == bv {
		t.Error("parent Insert invisible to truncated bit family's version")
	}
}

// TestViewMatchesChecks bridges the packed view to the §3.2 elementary
// checks it replaces: occupancy bits vs bucket totals, and the packed
// singleton test vs SingletonUnionBucketN.
func TestViewMatchesChecks(t *testing.T) {
	fams := buildKernelFamilies(t, estCfg, 29, 24)
	a, b := fams["A"], fams["B"]
	va, vb := a.queryView(), b.queryView()
	o := &viewOracle{cfg: a.cfg, r: 24, views: []*familyView{va, vb}}
	for i := 0; i < 24; i++ {
		sketches := []*Sketch{a.Copy(i), b.Copy(i)}
		for lvl := 0; lvl < a.cfg.Buckets; lvl++ {
			occA := a.Copy(i).BucketTotal(lvl) != 0
			if got := va.occ[i]>>uint(lvl)&1 == 1; got != occA {
				t.Fatalf("copy %d level %d: view occ %v, totals %v", i, lvl, got, occA)
			}
			want := SingletonUnionBucketN(sketches, lvl)
			if got := o.unionSingleton(i, lvl); got != want {
				t.Fatalf("copy %d level %d: view singleton %v, check %v", i, lvl, got, want)
			}
		}
	}
}

// TestToCountersKernelAgreement: families converted from the bit
// representation have per-copy storage and no flat arenas; the view
// builder must read them correctly.
func TestToCountersKernelAgreement(t *testing.T) {
	rng := hashing.NewRNG(77)
	a, b := overlapStreams(rng, 1500, 500)
	const r = 32
	bfams := map[string]*BitFamily{
		"A": mustBitFamily(t, estCfg, 3, r),
		"B": mustBitFamily(t, estCfg, 3, r),
	}
	for _, e := range a {
		bfams["A"].Insert(e)
	}
	for _, e := range b {
		bfams["B"].Insert(e)
	}
	cfams := map[string]*Family{"A": bfams["A"].ToCounters(), "B": bfams["B"].ToCounters()}
	node := expr.MustParse("A - B")
	got, err := EstimateExpressionOpts(node, cfams, 0.15, true, DefaultEstimateOptions())
	if err != nil {
		t.Fatal(err)
	}
	want, err := EstimateExpressionReference(node, cfams, 0.15, true)
	if err != nil {
		t.Fatal(err)
	}
	sameEstimate(t, "tocounters", got, want)
}

// TestParallelEstimateRace hammers one compiled query from many
// goroutines at once: concurrent estimates share the cached view and
// each fans out its own worker pool, all of which must be clean under
// -race. (Families are not internally synchronized against writers —
// the processor and coordinator lock around mutations — so this
// exercises the concurrent-reader contract only.)
func TestParallelEstimateRace(t *testing.T) {
	fams := buildKernelFamilies(t, estCfg, 31, 48)
	q, err := CompileQuery(expr.MustParse("(A - B) | (B - C)"))
	if err != nil {
		t.Fatal(err)
	}
	want, err := q.Estimate(fams, 0.2, true, EstimateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 4)
	for g := 0; g < 4; g++ {
		go func(workers int) {
			for j := 0; j < 50; j++ {
				got, err := q.Estimate(fams, 0.2, true, EstimateOptions{Workers: workers})
				if err != nil {
					done <- err
					return
				}
				if got != want {
					done <- fmt.Errorf("concurrent estimate diverged: %+v vs %+v", got, want)
					return
				}
			}
			done <- nil
		}(g + 1)
	}
	for g := 0; g < 4; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
