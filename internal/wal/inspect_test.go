package wal

import (
	"os"
	"path/filepath"
	"testing"

	"setsketch/internal/core"
	"setsketch/internal/datagen"
)

// TestInspectDir: a directory holding every record type, a snapshot,
// and a deliberately corrupted tail segment must be reported exactly —
// intact counts by type, the corruption error, and the truncation
// offset recovery would use.
func TestInspectDir(t *testing.T) {
	opts := testOptions()
	opts.Sync = SyncAlways
	dir := t.TempDir()
	l := mustOpen(t, dir, opts)
	ups := []datagen.Update{{Stream: "A", Elem: 1, Delta: 1}, {Stream: "B", Elem: 2, Delta: 1}}
	if _, err := l.Append(l.BuildUpdates("edge", ups)); err != nil {
		t.Fatal(err)
	}
	raw := &Record{Type: RecUpdates, Site: "edge", Count: 1,
		Updates: []datagen.Update{{Stream: "A", Elem: 9, Delta: 1}}}
	if _, err := l.Append(raw); err != nil {
		t.Fatal(err)
	}
	fam, _ := core.NewFamily(opts.Config, opts.Seed, opts.Copies)
	fam.Insert(42)
	var buf writerBuffer
	if _, err := fam.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	delta := &Record{Type: RecDelta, Site: "edge", Count: 3, Stream: "C", Synopsis: buf.b}
	if _, err := l.Append(delta); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(&Record{Type: RecMark, Site: "edge"}); err != nil {
		t.Fatal(err)
	}
	if err := l.WriteSnapshot(l.LastSeq(), 3, map[string]int{"edge": 3}, nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	segs, err := filepath.Glob(filepath.Join(dir, "*"+segSuffix))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments: %v %v", segs, err)
	}
	tail := segs[len(segs)-1]
	st, err := os.Stat(tail)
	if err != nil {
		t.Fatal(err)
	}
	intact := st.Size()
	f, err := os.OpenFile(tail, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{1, 2, 3}); err != nil { // partial frame header
		t.Fatal(err)
	}
	f.Close()

	rep, err := InspectDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Dir != dir {
		t.Errorf("Dir = %q, want %q", rep.Dir, dir)
	}
	if len(rep.Segments) != len(segs) {
		t.Fatalf("reported %d segments, want %d", len(rep.Segments), len(segs))
	}
	var total uint64
	byType := make(map[byte]uint64)
	for _, s := range rep.Segments {
		total += s.Records
		for typ, n := range s.ByType {
			byType[typ] += n
		}
	}
	if total != 4 {
		t.Errorf("intact records = %d, want 4", total)
	}
	for typ, want := range map[byte]uint64{RecDigests: 1, RecUpdates: 1, RecDelta: 1, RecMark: 1} {
		if byType[typ] != want {
			t.Errorf("records of type %s = %d, want %d", RecordTypeName(typ), byType[typ], want)
		}
	}
	last := rep.Segments[len(rep.Segments)-1]
	if last.Corrupt == "" {
		t.Error("corrupted tail segment not reported")
	}
	if last.TruncateAt != intact {
		t.Errorf("TruncateAt = %d, want %d", last.TruncateAt, intact)
	}
	if last.FirstSeq == 0 {
		t.Error("tail segment FirstSeq unreported despite readable header")
	}
	if len(rep.Snapshots) != 1 {
		t.Fatalf("reported %d snapshots, want 1", len(rep.Snapshots))
	}
	snap := rep.Snapshots[0]
	if snap.Err != "" {
		t.Errorf("intact snapshot reported unusable: %s", snap.Err)
	}
	if snap.Seq != 4 || snap.Updates != 3 {
		t.Errorf("snapshot = seq %d / %d updates, want 4 / 3", snap.Seq, snap.Updates)
	}

	// A snapshot whose data file is gone must be flagged, not fatal.
	if err := os.Remove(snap.DataPath); err != nil {
		t.Fatal(err)
	}
	rep, err = InspectDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Snapshots[0].Err == "" {
		t.Error("snapshot with missing data file reported as usable")
	}
}

// TestRecordTypeName pins the display names used by inspect output.
func TestRecordTypeName(t *testing.T) {
	for typ, want := range map[byte]string{
		RecUpdates: "updates", RecDigests: "digests",
		RecDelta: "delta", RecMark: "mark", 0xFF: "unknown",
	} {
		if got := RecordTypeName(typ); got != want {
			t.Errorf("RecordTypeName(%d) = %q, want %q", typ, got, want)
		}
	}
}

// TestSyncPolicyStrings pins the display names (ParseSyncPolicy's
// grammar is covered by TestParseSyncPolicy).
func TestSyncPolicyStrings(t *testing.T) {
	for pol, want := range map[SyncPolicy]string{
		SyncAlways: "always", SyncInterval: "interval", SyncNever: "never",
	} {
		if got := pol.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(pol), got, want)
		}
	}
	if got := SyncPolicy(99).String(); got != "SyncPolicy(99)" {
		t.Errorf("out-of-range String() = %q", got)
	}
}
