// Package wal implements the durability subsystem: an append-only
// write-ahead log of update batches plus periodic snapshots of merged
// family state, together supporting exact crash recovery.
//
// Sketch families are linear synopses — every counter is a sum of
// per-update contributions — so replaying any suffix of the logged
// update batches over an earlier family state reconstructs the exact
// sketch, bit for bit. Recovery is therefore: load the newest valid
// snapshot, replay every WAL record after the snapshot's covering
// sequence number, and the coordinator is exactly where it crashed.
//
// The log is a directory of segment files, each a fixed header followed
// by CRC32C-framed records with monotonically increasing sequence
// numbers:
//
//	segment header (35 bytes)
//	  magic   "SWAL"      4 bytes
//	  version u8          currently 1
//	  buckets u16, secondLevel u16, firstWise u16   (stored coins)
//	  seed    u64
//	  copies  u32
//	  first   u64         sequence number of the first record
//	  crc     u32         CRC32C over version..first
//
//	record frame
//	  length  u32         body bytes
//	  crc     u32         CRC32C over the body
//	  body:
//	    type  u8
//	    seq   u64
//	    payload             type-specific, see below
//
// All integers are little-endian; strings are uvarint length + bytes.
// Segments rotate at a size threshold and are named by the sequence
// number of their first record (%020d.wal), so the set of segments
// covering a replay suffix is computable from file names alone.
//
//sketchvet:bitexact
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"setsketch/internal/core"
	"setsketch/internal/datagen"
)

// Record types. An update batch is logged as packed digests when the
// stored coins are digest-packable (replay then costs s+1 plain
// additions per copy with zero hashing) and as raw ⟨stream, elem, ±v⟩
// triples otherwise. A synopsis delta is logged as the core
// serialization bytes it arrived in.
const (
	// RecUpdates is a raw update batch: the coins are not
	// digest-packable, so replay re-hashes each element.
	//
	//	site    string
	//	count   uvarint      updates credited toward watch triggers
	//	streams uvarint n, then n strings (referenced by index)
	//	entries uvarint m, then m × { stream uvarint, elem u64, delta zigzag }
	RecUpdates = byte(1)

	// RecDigests is a digest-packed update batch, coalesced to one net
	// entry per (stream, element):
	//
	//	site    string
	//	count   uvarint      updates credited (pre-coalescing batch size)
	//	words   uvarint      digest words per entry (= family copies)
	//	streams uvarint n, then n strings
	//	entries uvarint m, then m × { stream uvarint, elem u64,
	//	                              delta zigzag, words × u64 }
	RecDigests = byte(2)

	// RecDelta is one locally sketched synopsis delta:
	//
	//	site     string
	//	stream   string
	//	count    uvarint     local updates the delta summarizes
	//	synopsis uvarint len, then the core serialization bytes
	RecDelta = byte(3)

	// RecMark is a flush mark (site-local logs): every record at or
	// before it has been acknowledged downstream and is redundant.
	//
	//	site string
	RecMark = byte(4)

	// RecView is a continuous-view catalog change: a canonical
	// CREATE VIEW or DROP VIEW statement (see internal/cq). Replaying
	// the statement suffix over a snapshot's view list reconstructs the
	// catalog exactly, which is how views survive restarts.
	//
	//	view      string    view name
	//	statement string    canonical statement text
	RecView = byte(5)
)

// maxRecord bounds a decoded record body so corrupt length fields
// cannot force huge allocations. It comfortably exceeds the wire
// protocol's 64 MiB frame cap plus digest expansion.
const maxRecord = 256 << 20

// maxDigestWords bounds the per-entry digest width (= family copies,
// mirroring the serialization layer's copy-count cap).
const maxDigestWords = 1 << 20

// castagnoli is the CRC32C polynomial table used for all WAL framing.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt reports a record frame that failed its checksum or decoded
// inconsistently; ErrTorn reports an incomplete frame at the end of a
// segment (the signature of a crash mid-append).
var (
	ErrCorrupt = errors.New("wal: corrupt record")
	ErrTorn    = errors.New("wal: torn record at end of segment")
)

// DigestUpdate is one coalesced, digest-resolved entry of a RecDigests
// record: applying Digest with UpdateDigest is exactly equivalent to
// Delta copies of Update(Elem, ±1) by linearity.
type DigestUpdate struct {
	Stream string
	Elem   uint64
	Delta  int64
	Digest core.Digest
}

// Record is one WAL entry. Exactly one of the payload groups is
// populated, according to Type.
type Record struct {
	Seq  uint64
	Type byte
	Site string

	// Count is the number of stream updates this record credits toward
	// the coordinator's watch triggers (RecUpdates/RecDigests: the
	// batch size before coalescing; RecDelta: the reported local count).
	Count uint64

	Updates []datagen.Update // RecUpdates
	Digests []DigestUpdate   // RecDigests

	Stream   string // RecDelta
	Synopsis []byte // RecDelta

	View      string // RecView: view name
	Statement string // RecView: canonical CREATE VIEW / DROP VIEW text
}

// appendString appends a uvarint-length-prefixed string.
func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// streamTable builds the deduplicated stream-name table for a batch and
// the index of every name.
func streamTable(names func(yield func(string))) ([]string, map[string]int) {
	var tab []string
	idx := make(map[string]int)
	names(func(n string) {
		if _, ok := idx[n]; !ok {
			idx[n] = len(tab)
			tab = append(tab, n)
		}
	})
	return tab, idx
}

// encodeBody renders the record body (type, seq, payload). The frame
// header (length, crc) is written by the segment appender.
func encodeBody(rec *Record) ([]byte, error) {
	b := make([]byte, 0, 64)
	b = append(b, rec.Type)
	b = binary.LittleEndian.AppendUint64(b, rec.Seq)
	switch rec.Type {
	case RecUpdates:
		b = appendString(b, rec.Site)
		b = binary.AppendUvarint(b, rec.Count)
		tab, idx := streamTable(func(yield func(string)) {
			for _, u := range rec.Updates {
				yield(u.Stream)
			}
		})
		b = binary.AppendUvarint(b, uint64(len(tab)))
		for _, n := range tab {
			b = appendString(b, n)
		}
		b = binary.AppendUvarint(b, uint64(len(rec.Updates)))
		for _, u := range rec.Updates {
			b = binary.AppendUvarint(b, uint64(idx[u.Stream]))
			b = binary.LittleEndian.AppendUint64(b, u.Elem)
			b = binary.AppendVarint(b, u.Delta)
		}
	case RecDigests:
		b = appendString(b, rec.Site)
		b = binary.AppendUvarint(b, rec.Count)
		words := 0
		if len(rec.Digests) > 0 {
			words = len(rec.Digests[0].Digest)
		}
		b = binary.AppendUvarint(b, uint64(words))
		tab, idx := streamTable(func(yield func(string)) {
			for _, d := range rec.Digests {
				yield(d.Stream)
			}
		})
		b = binary.AppendUvarint(b, uint64(len(tab)))
		for _, n := range tab {
			b = appendString(b, n)
		}
		b = binary.AppendUvarint(b, uint64(len(rec.Digests)))
		for _, d := range rec.Digests {
			if len(d.Digest) != words {
				return nil, fmt.Errorf("wal: ragged digest lengths (%d vs %d words)", len(d.Digest), words)
			}
			b = binary.AppendUvarint(b, uint64(idx[d.Stream]))
			b = binary.LittleEndian.AppendUint64(b, d.Elem)
			b = binary.AppendVarint(b, d.Delta)
			for _, w := range d.Digest {
				b = binary.LittleEndian.AppendUint64(b, w)
			}
		}
	case RecDelta:
		b = appendString(b, rec.Site)
		b = appendString(b, rec.Stream)
		b = binary.AppendUvarint(b, rec.Count)
		b = binary.AppendUvarint(b, uint64(len(rec.Synopsis)))
		b = append(b, rec.Synopsis...)
	case RecMark:
		b = appendString(b, rec.Site)
	case RecView:
		b = appendString(b, rec.View)
		b = appendString(b, rec.Statement)
	default:
		return nil, fmt.Errorf("wal: unknown record type %#x", rec.Type)
	}
	if len(b) > maxRecord {
		return nil, fmt.Errorf("wal: record of %d bytes exceeds limit", len(b))
	}
	return b, nil
}

// byteCursor is a bounds-checked reader over a record body.
type byteCursor struct {
	b   []byte
	off int
	err error
}

func (c *byteCursor) fail() {
	if c.err == nil {
		c.err = ErrCorrupt
	}
}

func (c *byteCursor) u8() byte {
	if c.err != nil || c.off >= len(c.b) {
		c.fail()
		return 0
	}
	v := c.b[c.off]
	c.off++
	return v
}

func (c *byteCursor) u32() uint32 {
	if c.err != nil || c.off+4 > len(c.b) {
		c.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(c.b[c.off:])
	c.off += 4
	return v
}

func (c *byteCursor) u64() uint64 {
	if c.err != nil || c.off+8 > len(c.b) {
		c.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(c.b[c.off:])
	c.off += 8
	return v
}

func (c *byteCursor) uvarint() uint64 {
	if c.err != nil {
		return 0
	}
	v, n := binary.Uvarint(c.b[c.off:])
	if n <= 0 {
		c.fail()
		return 0
	}
	c.off += n
	return v
}

func (c *byteCursor) varint() int64 {
	if c.err != nil {
		return 0
	}
	v, n := binary.Varint(c.b[c.off:])
	if n <= 0 {
		c.fail()
		return 0
	}
	c.off += n
	return v
}

func (c *byteCursor) str() string {
	n := c.uvarint()
	if c.err != nil || n > uint64(len(c.b)-c.off) {
		c.fail()
		return ""
	}
	s := string(c.b[c.off : c.off+int(n)])
	c.off += int(n)
	return s
}

func (c *byteCursor) bytes() []byte {
	n := c.uvarint()
	if c.err != nil || n > uint64(len(c.b)-c.off) {
		c.fail()
		return nil
	}
	v := make([]byte, n)
	copy(v, c.b[c.off:])
	c.off += int(n)
	return v
}

// count reads a uvarint element count and sanity-bounds it by the
// remaining bytes (each element costs at least min bytes), so a corrupt
// count cannot drive a huge allocation before decoding fails.
func (c *byteCursor) count(min int) int {
	n := c.uvarint()
	if c.err != nil || n > uint64((len(c.b)-c.off)/min+1) {
		c.fail()
		return 0
	}
	return int(n)
}

// decodeBody parses a record body previously written by encodeBody.
// It never panics on corrupt input; malformed bodies return ErrCorrupt.
func decodeBody(b []byte) (*Record, error) {
	c := &byteCursor{b: b}
	rec := &Record{Type: c.u8(), Seq: c.u64()}
	switch rec.Type {
	case RecUpdates:
		rec.Site = c.str()
		rec.Count = c.uvarint()
		tab := make([]string, c.count(1))
		for i := range tab {
			tab[i] = c.str()
		}
		m := c.count(10)
		rec.Updates = make([]datagen.Update, 0, m)
		for i := 0; i < m && c.err == nil; i++ {
			si := c.uvarint()
			if si >= uint64(len(tab)) {
				c.fail()
				break
			}
			rec.Updates = append(rec.Updates, datagen.Update{
				Stream: tab[si], Elem: c.u64(), Delta: c.varint(),
			})
		}
	case RecDigests:
		rec.Site = c.str()
		rec.Count = c.uvarint()
		words := c.uvarint()
		if words > maxDigestWords {
			c.fail()
		}
		tab := make([]string, c.count(1))
		for i := range tab {
			tab[i] = c.str()
		}
		m := c.count(10 + 8*int(words))
		rec.Digests = make([]DigestUpdate, 0, m)
		for i := 0; i < m && c.err == nil; i++ {
			si := c.uvarint()
			if si >= uint64(len(tab)) {
				c.fail()
				break
			}
			d := DigestUpdate{Stream: tab[si], Elem: c.u64(), Delta: c.varint()}
			d.Digest = make(core.Digest, words)
			for w := range d.Digest {
				d.Digest[w] = c.u64()
			}
			rec.Digests = append(rec.Digests, d)
		}
	case RecDelta:
		rec.Site = c.str()
		rec.Stream = c.str()
		rec.Count = c.uvarint()
		rec.Synopsis = c.bytes()
	case RecMark:
		rec.Site = c.str()
	case RecView:
		rec.View = c.str()
		rec.Statement = c.str()
	default:
		return nil, fmt.Errorf("%w: unknown record type %#x", ErrCorrupt, rec.Type)
	}
	if c.err != nil {
		return nil, c.err
	}
	if c.off != len(b) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(b)-c.off)
	}
	return rec, nil
}
