package wal

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"setsketch/internal/core"
	"setsketch/internal/obs"
)

// Snapshots persist the coordinator's merged family state so recovery
// only replays the WAL suffix past the snapshot instead of the whole
// log. Each snapshot is two files, named by the covering WAL sequence
// number (the last record whose effect the snapshot includes):
//
//	snap-%020d.dat — the state
//	  magic   "SSNP"    4 bytes
//	  version u8        currently 2 (1 readable: it lacks the views section)
//	  seq     u64       covering WAL sequence number
//	  updates u64       stream updates credited at the snapshot point
//	  sites   uvarint n, then n × { name string, pushes uvarint }
//	  streams uvarint m, then m × { name string,
//	                                family uvarint len + core serialization }
//	  views   uvarint k, then k strings   (canonical CREATE VIEW statements;
//	                                       version ≥ 2 only)
//	  crc     u32       CRC32C over everything after the magic
//
//	snap-%020d.manifest — the commit record, written after the data
//	file is durable; recovery trusts only snapshots with a manifest
//	  magic   "SMAN"    4 bytes
//	  version u8        currently 1
//	  seq     u64
//	  updates u64
//	  data    string    data file name (relative to the directory)
//	  size    u64       data file size in bytes
//	  datacrc u32       CRC32C of the entire data file
//	  streams u32
//	  crc     u32       CRC32C over everything after the magic
//
// Both files are fsynced (and the directory fsynced after the rename)
// before the manifest appears, so a manifest's existence implies a
// complete, verifiable snapshot. A crash mid-snapshot leaves at most an
// orphaned .dat/.tmp file, which recovery ignores and the next
// successful snapshot cleans up.

const (
	snapMagic = "SSNP"
	maniMagic = "SMAN"
	// snapVersion 2 appends the continuous-view catalog (uvarint count,
	// then canonical statements) after the streams section. Version-1
	// data files (no views) remain readable; the manifest format is
	// unchanged and keeps its own version.
	snapVersion   = 2
	snapVersionV1 = 1
	maniVersion   = 1
	snapPrefix    = "snap-"
	snapSuffix    = ".dat"
	maniSuffix    = ".manifest"
	keepSnapshot  = 2 // newest snapshots retained after a successful write
)

// Snapshot is a loaded coordinator state snapshot.
type Snapshot struct {
	Seq     uint64 // covering WAL sequence number; replay resumes at Seq+1
	Updates uint64
	Sites   map[string]int
	Streams map[string]*core.Family
	// Views is the continuous-view catalog at the snapshot point:
	// canonical CREATE VIEW statements, sorted by view name (empty for
	// version-1 snapshots, written before views existed).
	Views []string
	Path  string
}

func snapDataPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%020d%s", snapPrefix, seq, snapSuffix))
}

func snapManifestPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%020d%s", snapPrefix, seq, maniSuffix))
}

// parseSnapshotName extracts the covering seq from a snapshot file name
// with the given suffix.
func parseSnapshotName(name, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, snapPrefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	base := strings.TrimSuffix(strings.TrimPrefix(name, snapPrefix), suffix)
	if len(base) != 20 {
		return 0, false
	}
	n, err := strconv.ParseUint(base, 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// encodeSnapshot renders the data-file bytes.
func encodeSnapshot(seq, updates uint64, sites map[string]int, fams map[string]*core.Family, views []string) ([]byte, error) {
	var b []byte
	b = append(b, snapMagic...)
	b = append(b, snapVersion)
	b = binary.LittleEndian.AppendUint64(b, seq)
	b = binary.LittleEndian.AppendUint64(b, updates)
	siteNames := make([]string, 0, len(sites))
	for n := range sites {
		siteNames = append(siteNames, n)
	}
	sort.Strings(siteNames)
	b = binary.AppendUvarint(b, uint64(len(siteNames)))
	for _, n := range siteNames {
		b = appendString(b, n)
		b = binary.AppendUvarint(b, uint64(sites[n]))
	}
	streamNames := make([]string, 0, len(fams))
	for n := range fams {
		streamNames = append(streamNames, n)
	}
	sort.Strings(streamNames)
	b = binary.AppendUvarint(b, uint64(len(streamNames)))
	var buf bytes.Buffer
	for _, n := range streamNames {
		b = appendString(b, n)
		buf.Reset()
		if _, err := fams[n].WriteTo(&buf); err != nil {
			return nil, err
		}
		b = binary.AppendUvarint(b, uint64(buf.Len()))
		b = append(b, buf.Bytes()...)
	}
	b = binary.AppendUvarint(b, uint64(len(views)))
	for _, v := range views {
		b = appendString(b, v)
	}
	b = binary.LittleEndian.AppendUint32(b, crc32.Checksum(b[4:], castagnoli))
	return b, nil
}

// decodeSnapshot parses a data file, verifying its checksum and every
// family's own checksum.
func decodeSnapshot(b []byte) (*Snapshot, error) {
	if len(b) < 4+1+8+8+4 || string(b[:4]) != snapMagic {
		return nil, fmt.Errorf("%w: not a snapshot", ErrCorrupt)
	}
	body, tail := b[4:len(b)-4], b[len(b)-4:]
	if binary.LittleEndian.Uint32(tail) != crc32.Checksum(body, castagnoli) {
		return nil, fmt.Errorf("%w: snapshot checksum mismatch", ErrCorrupt)
	}
	c := &byteCursor{b: body}
	version := c.u8()
	if version != snapVersion && version != snapVersionV1 {
		return nil, fmt.Errorf("%w: unsupported snapshot version %d", ErrCorrupt, version)
	}
	snap := &Snapshot{
		Seq:     c.u64(),
		Updates: c.u64(),
		Sites:   make(map[string]int),
		Streams: make(map[string]*core.Family),
	}
	for i, n := 0, c.count(2); i < n && c.err == nil; i++ {
		name := c.str()
		snap.Sites[name] = int(c.uvarint())
	}
	for i, n := 0, c.count(2); i < n && c.err == nil; i++ {
		name := c.str()
		famBytes := c.bytes()
		if c.err != nil {
			break
		}
		fam, err := core.ReadFamily(bytes.NewReader(famBytes))
		if err != nil {
			return nil, fmt.Errorf("%w: stream %q: %v", ErrCorrupt, name, err)
		}
		snap.Streams[name] = fam
	}
	if version >= 2 {
		for i, n := 0, c.count(2); i < n && c.err == nil; i++ {
			snap.Views = append(snap.Views, c.str())
		}
	}
	if c.err != nil {
		return nil, c.err
	}
	if c.off != len(body) {
		return nil, fmt.Errorf("%w: %d trailing snapshot bytes", ErrCorrupt, len(body)-c.off)
	}
	return snap, nil
}

// encodeManifest renders the manifest bytes for a written data file.
func encodeManifest(seq, updates uint64, dataName string, size int64, dataCRC uint32, streams int) []byte {
	var b []byte
	b = append(b, maniMagic...)
	b = append(b, maniVersion)
	b = binary.LittleEndian.AppendUint64(b, seq)
	b = binary.LittleEndian.AppendUint64(b, updates)
	b = appendString(b, dataName)
	b = binary.LittleEndian.AppendUint64(b, uint64(size))
	b = binary.LittleEndian.AppendUint32(b, dataCRC)
	b = binary.LittleEndian.AppendUint32(b, uint32(streams))
	b = binary.LittleEndian.AppendUint32(b, crc32.Checksum(b[4:], castagnoli))
	return b
}

// Manifest is a parsed snapshot manifest.
type Manifest struct {
	Seq      uint64
	Updates  uint64
	DataName string
	DataSize int64
	DataCRC  uint32
	Streams  int
}

// decodeManifest parses and verifies a manifest file's bytes.
func decodeManifest(b []byte) (*Manifest, error) {
	if len(b) < 4+1+8+8+4 || string(b[:4]) != maniMagic {
		return nil, fmt.Errorf("%w: not a snapshot manifest", ErrCorrupt)
	}
	body, tail := b[4:len(b)-4], b[len(b)-4:]
	if binary.LittleEndian.Uint32(tail) != crc32.Checksum(body, castagnoli) {
		return nil, fmt.Errorf("%w: manifest checksum mismatch", ErrCorrupt)
	}
	c := &byteCursor{b: body}
	if v := c.u8(); v != maniVersion {
		return nil, fmt.Errorf("%w: unsupported manifest version %d", ErrCorrupt, v)
	}
	m := &Manifest{Seq: c.u64(), Updates: c.u64(), DataName: c.str()}
	m.DataSize = int64(c.u64())
	m.DataCRC = c.u32()
	m.Streams = int(c.u32())
	if c.err != nil {
		return nil, c.err
	}
	if c.off != len(body) {
		return nil, fmt.Errorf("%w: %d trailing manifest bytes", ErrCorrupt, len(body)-c.off)
	}
	return m, nil
}

// writeDurable writes bytes to path via a temp file, fsyncs the file,
// renames it into place, and fsyncs the directory.
func writeDurable(path string, b []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	return syncDir(dir)
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// WriteSnapshot persists the coordinator state covering WAL sequence
// seq: data file first, then manifest, both durable, then prunes
// segments and snapshots the new snapshot makes redundant. Callers
// must pass a seq no greater than LastSeq and state that includes the
// effect of every record up to seq.
// views is the continuous-view catalog as canonical statements.
func (l *Log) WriteSnapshot(seq, updates uint64, sites map[string]int, fams map[string]*core.Family, views []string) error {
	start := time.Now()
	data, err := encodeSnapshot(seq, updates, sites, fams, views)
	if err != nil {
		return err
	}
	dataPath := snapDataPath(l.dir, seq)
	if err := writeDurable(dataPath, data); err != nil {
		return err
	}
	mani := encodeManifest(seq, updates, filepath.Base(dataPath),
		int64(len(data)), crc32.Checksum(data, castagnoli), len(fams))
	if err := writeDurable(snapManifestPath(l.dir, seq), mani); err != nil {
		return err
	}
	l.met.snapshots.Inc()
	l.met.snapshotSecs.ObserveSince(start)
	l.mu.Lock()
	l.lastSnap = seq
	l.mu.Unlock()
	l.log.Info("snapshot written", "seq", seq, "streams", len(fams),
		"views", len(views), "bytes", len(data), "elapsed", time.Since(start).String())
	return l.prune(seq)
}

// LastSnapshotSeq returns the covering seq of the newest snapshot
// written through this log (0 if none this process).
func (l *Log) LastSnapshotSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastSnap
}

// prune removes segments fully covered by the snapshot at seq (every
// record ≤ seq is redundant) and all but the newest keepSnapshot
// snapshots. Only sealed segments are candidates; the active segment
// always stays.
func (l *Log) prune(seq uint64) error {
	l.mu.Lock()
	var drop []segment
	for len(l.segs) > 1 {
		s := l.segs[0]
		if s.last == 0 || s.last > seq {
			break
		}
		drop = append(drop, s)
		l.segs = l.segs[1:]
	}
	l.mu.Unlock()
	for _, s := range drop {
		if err := os.Remove(s.path); err != nil {
			return err
		}
		l.met.prunedSegs.Inc()
		l.log.Debug("pruned covered segment", "segment", filepath.Base(s.path), "last_seq", s.last)
	}
	// Old snapshots: keep the newest keepSnapshot manifests (and their
	// data files); delete the rest plus orphaned data files.
	manifests, err := listSnapshotSeqs(l.dir, maniSuffix)
	if err != nil {
		return err
	}
	keep := make(map[uint64]bool, keepSnapshot)
	for i := 0; i < len(manifests) && i < keepSnapshot; i++ {
		keep[manifests[len(manifests)-1-i]] = true
	}
	for _, s := range manifests {
		if keep[s] {
			continue
		}
		os.Remove(snapManifestPath(l.dir, s))
		os.Remove(snapDataPath(l.dir, s))
	}
	dataSeqs, err := listSnapshotSeqs(l.dir, snapSuffix)
	if err != nil {
		return err
	}
	for _, s := range dataSeqs {
		if !keep[s] {
			os.Remove(snapDataPath(l.dir, s))
		}
	}
	return nil
}

// listSnapshotSeqs returns the covering seqs of all snapshot files with
// the given suffix, ascending.
func listSnapshotSeqs(dir, suffix string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var seqs []uint64
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if s, ok := parseSnapshotName(e.Name(), suffix); ok {
			seqs = append(seqs, s)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// LoadLatestSnapshot returns the newest valid snapshot in dir, or nil
// if none exists. A snapshot whose manifest or data file fails
// verification is skipped (with a warning through log, which may be
// nil) and the next older one is tried — recovery then simply replays
// a longer WAL suffix.
func LoadLatestSnapshot(dir string, log *obs.Logger) (*Snapshot, error) {
	seqs, err := listSnapshotSeqs(dir, maniSuffix)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	for i := len(seqs) - 1; i >= 0; i-- {
		snap, err := loadSnapshot(dir, seqs[i])
		if err != nil {
			log.Named("wal").Warn("skipping unusable snapshot",
				"seq", seqs[i], "err", err.Error())
			continue
		}
		return snap, nil
	}
	return nil, nil
}

// loadSnapshot loads and fully verifies the snapshot covering seq.
func loadSnapshot(dir string, seq uint64) (*Snapshot, error) {
	mb, err := os.ReadFile(snapManifestPath(dir, seq))
	if err != nil {
		return nil, err
	}
	m, err := decodeManifest(mb)
	if err != nil {
		return nil, err
	}
	db, err := os.ReadFile(filepath.Join(dir, filepath.Base(m.DataName)))
	if err != nil {
		return nil, err
	}
	if int64(len(db)) != m.DataSize {
		return nil, fmt.Errorf("%w: data file is %d bytes, manifest says %d", ErrCorrupt, len(db), m.DataSize)
	}
	if crc32.Checksum(db, castagnoli) != m.DataCRC {
		return nil, fmt.Errorf("%w: data file checksum does not match manifest", ErrCorrupt)
	}
	snap, err := decodeSnapshot(db)
	if err != nil {
		return nil, err
	}
	if snap.Seq != m.Seq {
		return nil, fmt.Errorf("%w: data covers seq %d, manifest says %d", ErrCorrupt, snap.Seq, m.Seq)
	}
	snap.Path = filepath.Join(dir, filepath.Base(m.DataName))
	return snap, nil
}
