package wal

import (
	"os"
	"path/filepath"
)

// Inspection is read-only dumping of a WAL directory for the
// `sketchd inspect wal` subcommand and for tests: unlike Open it never
// truncates a torn tail or validates coins, it just reports what is on
// disk, including where corruption starts.

// SegmentReport describes one segment file as found on disk.
type SegmentReport struct {
	Path     string
	Size     int64
	FirstSeq uint64 // from the header (0 if the header is unreadable)
	LastSeq  uint64 // last intact record (0 if none)
	Records  uint64
	ByType   map[byte]uint64 // intact record counts by record type
	Bytes    int64           // bytes of intact frames (header excluded)

	// Corrupt is non-empty when the scan stopped before the end of the
	// file: the error description, with TruncateAt the byte offset of
	// the last intact record's end — the point recovery would truncate
	// to.
	Corrupt    string
	TruncateAt int64
}

// SnapshotReport describes one snapshot (by manifest) as found on disk.
type SnapshotReport struct {
	ManifestPath string
	DataPath     string
	Seq          uint64
	Updates      uint64
	Streams      int
	DataSize     int64

	// Err is non-empty when the manifest or data file fails
	// verification; recovery would skip this snapshot.
	Err string
}

// DirReport is the full read-only report over a WAL directory.
type DirReport struct {
	Dir       string
	Segments  []SegmentReport
	Snapshots []SnapshotReport // ascending by covering seq
}

// RecordTypeName names a record type for display.
func RecordTypeName(t byte) string {
	switch t {
	case RecUpdates:
		return "updates"
	case RecDigests:
		return "digests"
	case RecDelta:
		return "delta"
	case RecMark:
		return "mark"
	case RecView:
		return "view"
	}
	return "unknown"
}

// InspectDir scans every segment and snapshot of a WAL directory
// without modifying anything.
func InspectDir(dir string) (*DirReport, error) {
	rep := &DirReport{Dir: dir}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	for _, s := range segs {
		sr := SegmentReport{Path: s.path, Size: s.size, ByType: make(map[byte]uint64)}
		if f, err := os.Open(s.path); err == nil {
			if _, _, _, first, err := readSegmentHeader(f); err == nil {
				sr.FirstSeq = first
			}
			f.Close()
		}
		last, end, scanErr := scanSegment(s.path, func(rec *Record) error {
			sr.Records++
			sr.ByType[rec.Type]++
			return nil
		})
		sr.LastSeq = last
		sr.Bytes = end - segHeaderSize
		if scanErr != nil {
			sr.Corrupt = scanErr.Error()
			sr.TruncateAt = end
		}
		rep.Segments = append(rep.Segments, sr)
	}
	seqs, err := listSnapshotSeqs(dir, maniSuffix)
	if err != nil {
		return nil, err
	}
	for _, seq := range seqs {
		sr := SnapshotReport{
			ManifestPath: snapManifestPath(dir, seq),
			Seq:          seq,
		}
		mb, err := os.ReadFile(sr.ManifestPath)
		if err != nil {
			sr.Err = err.Error()
			rep.Snapshots = append(rep.Snapshots, sr)
			continue
		}
		m, err := decodeManifest(mb)
		if err != nil {
			sr.Err = err.Error()
			rep.Snapshots = append(rep.Snapshots, sr)
			continue
		}
		sr.Updates = m.Updates
		sr.Streams = m.Streams
		sr.DataSize = m.DataSize
		sr.DataPath = filepath.Join(dir, filepath.Base(m.DataName))
		if _, err := loadSnapshot(dir, seq); err != nil {
			sr.Err = err.Error()
		}
		rep.Snapshots = append(rep.Snapshots, sr)
	}
	return rep, nil
}
