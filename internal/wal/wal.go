package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"setsketch/internal/core"
	"setsketch/internal/datagen"
	"setsketch/internal/obs"
)

const (
	segMagic   = "SWAL"
	segVersion = 1
	// segHeaderSize is the fixed segment header: magic(4) version(1)
	// buckets(2) secondLevel(2) firstWise(2) seed(8) copies(4)
	// first(8) crc(4).
	segHeaderSize = 35
	// frameHeaderSize prefixes every record: length(4) crc(4).
	frameHeaderSize = 8

	segSuffix = ".wal"
)

// SyncPolicy controls when appended records reach stable storage.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append: an acknowledged batch is
	// durable, at the cost of one fsync per append.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs on a wall-clock period (Options.SyncInterval):
	// a crash loses at most one interval of acknowledged work.
	SyncInterval
	// SyncNever leaves fsync to the OS page cache: fastest, loses
	// everything since the last rotation/snapshot on power failure.
	SyncNever
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	}
	return fmt.Sprintf("SyncPolicy(%d)", int(p))
}

// ParseSyncPolicy parses the -fsync flag grammar: "always", "never",
// or a duration (e.g. "100ms") selecting interval sync at that period.
func ParseSyncPolicy(s string) (SyncPolicy, time.Duration, error) {
	switch s {
	case "always":
		return SyncAlways, 0, nil
	case "never":
		return SyncNever, 0, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil || d <= 0 {
		return 0, 0, fmt.Errorf("wal: -fsync wants always, never, or a positive duration, got %q", s)
	}
	return SyncInterval, d, nil
}

// Options configures a Log. Config/Seed/Copies are the stored coins the
// log belongs to; they are stamped into every segment header so replay
// against mismatched coins fails loudly instead of corrupting state.
type Options struct {
	Config core.Config
	Seed   uint64
	Copies int

	// SegmentSize rotates to a new segment file once the current one
	// exceeds this many bytes (default 16 MiB).
	SegmentSize int64

	Sync         SyncPolicy
	SyncInterval time.Duration // default 100ms when Sync == SyncInterval

	Obs *obs.Registry
	Log *obs.Logger
}

const (
	defaultSegmentSize  = 16 << 20
	defaultSyncInterval = 100 * time.Millisecond
)

// segment is one on-disk segment file's metadata.
type segment struct {
	path  string
	first uint64 // seq of its first record
	last  uint64 // seq of its last record (0 while empty)
	size  int64
}

// walMetrics is the log's instrument set; per obs's contract every
// instrument works (uncollected) when no registry is attached.
type walMetrics struct {
	appends       *obs.Counter
	appendBytes   *obs.Counter
	appendSecs    *obs.Histogram
	fsyncs        *obs.Counter
	fsyncSecs     *obs.Histogram
	rotations     *obs.Counter
	tornTruncated *obs.Counter
	snapshots     *obs.Counter
	snapshotSecs  *obs.Histogram
	prunedSegs    *obs.Counter
	replayRecords *obs.Counter
	replaySecs    *obs.Histogram
}

func newWALMetrics(reg *obs.Registry) walMetrics {
	return walMetrics{
		appends: reg.Counter("wal_appends_total",
			"Records appended to the write-ahead log."),
		appendBytes: reg.Counter("wal_append_bytes_total",
			"Bytes appended to the write-ahead log (frames incl. headers)."),
		appendSecs: reg.Histogram("wal_append_seconds",
			"Append latency: encode + buffered write + any policy-mandated fsync.", nil),
		fsyncs: reg.Counter("wal_fsyncs_total",
			"fsync calls issued by the write-ahead log."),
		fsyncSecs: reg.Histogram("wal_fsync_seconds",
			"fsync latency of the write-ahead log.", nil),
		rotations: reg.Counter("wal_segment_rotations_total",
			"Segment files rotated out at the size threshold."),
		tornTruncated: reg.Counter("wal_torn_records_truncated_total",
			"Torn or corrupt tail records truncated during recovery."),
		snapshots: reg.Counter("wal_snapshots_total",
			"Coordinator state snapshots written."),
		snapshotSecs: reg.Histogram("wal_snapshot_seconds",
			"Snapshot write latency (serialize + fsync + manifest).", nil),
		prunedSegs: reg.Counter("wal_segments_pruned_total",
			"Segment files deleted because a snapshot covers them."),
		replayRecords: reg.Counter("wal_replay_records_total",
			"Records replayed during recovery (progress counter)."),
		replaySecs: reg.Histogram("wal_replay_seconds",
			"Total recovery replay latency.", nil),
	}
}

// Log is an append-only write-ahead log over a directory of segment
// files. It is safe for concurrent use; appends are serialized.
type Log struct {
	dir  string
	opts Options
	met  walMetrics
	log  *obs.Logger

	mu       sync.Mutex
	segs     []segment // all live segments, ascending by first seq
	f        *os.File  // active (last) segment
	w        *bufio.Writer
	nextSeq  uint64
	unsynced bool
	closed   bool

	// scratch family for digest packing (BuildUpdates); digests are a
	// pure function of the coins, so one spare family serves every
	// stream.
	smu     sync.Mutex
	scratch *core.Family

	stopSync chan struct{}
	syncDone chan struct{}

	// lastSnap tracks the covering seq of the newest snapshot written
	// through this Log, so no-op snapshot rounds can be skipped.
	lastSnap uint64
}

// Open opens (or creates) the log directory, validates every segment
// header against the stored coins, scans the final segment, and
// truncates a torn tail record if the process died mid-append. The
// returned log appends after the last intact record.
func Open(dir string, opts Options) (*Log, error) {
	if err := opts.Config.Validate(); err != nil {
		return nil, err
	}
	if opts.Copies < 1 {
		return nil, fmt.Errorf("wal: copies %d out of range", opts.Copies)
	}
	if opts.SegmentSize <= 0 {
		opts.SegmentSize = defaultSegmentSize
	}
	if opts.SegmentSize < segHeaderSize+frameHeaderSize {
		return nil, fmt.Errorf("wal: segment size %d smaller than one frame", opts.SegmentSize)
	}
	if opts.Sync == SyncInterval && opts.SyncInterval <= 0 {
		opts.SyncInterval = defaultSyncInterval
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	l := &Log{
		dir:  dir,
		opts: opts,
		met:  newWALMetrics(opts.Obs),
		log:  opts.Log.Named("wal"),
	}
	if err := l.scan(); err != nil {
		return nil, err
	}
	if reg := opts.Obs; reg != nil {
		reg.GaugeFunc("wal_segments",
			"Live write-ahead-log segment files.",
			func() float64 {
				l.mu.Lock()
				defer l.mu.Unlock()
				return float64(len(l.segs))
			})
		reg.GaugeFunc("wal_last_seq",
			"Highest sequence number appended to the write-ahead log.",
			func() float64 {
				l.mu.Lock()
				defer l.mu.Unlock()
				return float64(l.nextSeq - 1)
			})
		reg.GaugeFunc("wal_snapshot_last_seq",
			"Covering sequence number of the newest snapshot.",
			func() float64 {
				l.mu.Lock()
				defer l.mu.Unlock()
				return float64(l.lastSnap)
			})
	}
	if opts.Sync == SyncInterval {
		l.stopSync = make(chan struct{})
		l.syncDone = make(chan struct{})
		go l.syncLoop()
	}
	return l, nil
}

// segmentPath names the segment whose first record is seq.
func segmentPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%020d%s", seq, segSuffix))
}

// parseSegmentName extracts the first-record seq from a segment file
// name, or ok=false for non-segment files.
func parseSegmentName(name string) (uint64, bool) {
	if !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	base := strings.TrimSuffix(name, segSuffix)
	if len(base) != 20 {
		return 0, false
	}
	n, err := strconv.ParseUint(base, 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// listSegments returns the segment files of a directory ascending by
// first seq, without opening them.
func listSegments(dir string) ([]segment, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []segment
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		first, ok := parseSegmentName(e.Name())
		if !ok {
			continue
		}
		info, err := e.Info()
		if err != nil {
			return nil, err
		}
		segs = append(segs, segment{path: filepath.Join(dir, e.Name()), first: first, size: info.Size()})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].first < segs[j].first })
	return segs, nil
}

// scan reads the directory, verifies headers, determines the next
// sequence number from the final segment (truncating a torn tail), and
// opens the final segment for append.
func (l *Log) scan() error {
	segs, err := listSegments(l.dir)
	if err != nil {
		return err
	}
	for i := range segs {
		if err := l.checkHeader(&segs[i]); err != nil {
			return err
		}
	}
	l.segs = segs
	if len(segs) == 0 {
		l.nextSeq = 1
		return l.openSegment(1)
	}
	// Non-final segments were sealed by rotation; trust their sizes and
	// derive last seqs from the neighbors. The final segment is scanned
	// record by record — it is the only one a crash can tear.
	for i := 0; i+1 < len(segs); i++ {
		l.segs[i].last = segs[i+1].first - 1
	}
	tail := &l.segs[len(l.segs)-1]
	last, end, scanErr := scanSegment(tail.path, nil)
	if scanErr != nil && !isFrameError(scanErr) {
		return fmt.Errorf("wal: segment %s: %w", filepath.Base(tail.path), scanErr)
	}
	if scanErr != nil {
		l.met.tornTruncated.Inc()
		l.log.Warn("truncating torn tail record",
			"segment", filepath.Base(tail.path), "offset", end, "err", scanErr.Error())
		if err := os.Truncate(tail.path, end); err != nil {
			return err
		}
	}
	tail.size = end
	tail.last = last
	if last == 0 { // empty final segment: first record will be its name
		l.nextSeq = tail.first
	} else {
		l.nextSeq = last + 1
	}
	f, err := os.OpenFile(tail.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	l.f = f
	l.w = bufio.NewWriter(f)
	return nil
}

// checkHeader validates one segment's header against the log's coins.
func (l *Log) checkHeader(s *segment) error {
	f, err := os.Open(s.path)
	if err != nil {
		return err
	}
	defer f.Close()
	cfg, seed, copies, first, err := readSegmentHeader(f)
	if err != nil {
		return fmt.Errorf("wal: segment %s: %w", filepath.Base(s.path), err)
	}
	if cfg != l.opts.Config || seed != l.opts.Seed || copies != l.opts.Copies {
		return fmt.Errorf("wal: segment %s was written with different stored coins (cfg %+v seed %d copies %d)",
			filepath.Base(s.path), cfg, seed, copies)
	}
	if first != s.first {
		return fmt.Errorf("wal: segment %s header claims first seq %d", filepath.Base(s.path), first)
	}
	return nil
}

// encodeSegmentHeader renders the fixed segment header.
func encodeSegmentHeader(cfg core.Config, seed uint64, copies int, first uint64) []byte {
	b := make([]byte, segHeaderSize)
	copy(b, segMagic)
	b[4] = segVersion
	binary.LittleEndian.PutUint16(b[5:], uint16(cfg.Buckets))
	binary.LittleEndian.PutUint16(b[7:], uint16(cfg.SecondLevel))
	binary.LittleEndian.PutUint16(b[9:], uint16(cfg.FirstWise))
	binary.LittleEndian.PutUint64(b[11:], seed)
	binary.LittleEndian.PutUint32(b[19:], uint32(copies))
	binary.LittleEndian.PutUint64(b[23:], first)
	binary.LittleEndian.PutUint32(b[31:], crc32.Checksum(b[4:31], castagnoli))
	return b
}

// readSegmentHeader parses and verifies a segment header.
func readSegmentHeader(r io.Reader) (core.Config, uint64, int, uint64, error) {
	var b [segHeaderSize]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return core.Config{}, 0, 0, 0, fmt.Errorf("%w: truncated header: %v", ErrCorrupt, err)
	}
	if string(b[:4]) != segMagic {
		return core.Config{}, 0, 0, 0, fmt.Errorf("%w: bad magic %q", ErrCorrupt, b[:4])
	}
	if got := binary.LittleEndian.Uint32(b[31:]); got != crc32.Checksum(b[4:31], castagnoli) {
		return core.Config{}, 0, 0, 0, fmt.Errorf("%w: header checksum mismatch", ErrCorrupt)
	}
	if b[4] != segVersion {
		return core.Config{}, 0, 0, 0, fmt.Errorf("%w: unsupported version %d", ErrCorrupt, b[4])
	}
	cfg := core.Config{
		Buckets:     int(binary.LittleEndian.Uint16(b[5:])),
		SecondLevel: int(binary.LittleEndian.Uint16(b[7:])),
		FirstWise:   int(binary.LittleEndian.Uint16(b[9:])),
	}
	seed := binary.LittleEndian.Uint64(b[11:])
	copies := int(binary.LittleEndian.Uint32(b[19:]))
	first := binary.LittleEndian.Uint64(b[23:])
	return cfg, seed, copies, first, nil
}

// openSegment creates a fresh segment whose first record will be seq
// and makes it the append target.
func (l *Log) openSegment(seq uint64) error {
	path := segmentPath(l.dir, seq)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	hdr := encodeSegmentHeader(l.opts.Config, l.opts.Seed, l.opts.Copies, seq)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return err
	}
	l.f = f
	l.w = bufio.NewWriter(f)
	l.segs = append(l.segs, segment{path: path, first: seq, size: segHeaderSize})
	return nil
}

// scanSegment reads a segment's records, calling fn (when non-nil) for
// each decoded record. It returns the last intact seq (0 if none), the
// byte offset just past the last intact record, and the error that
// stopped the scan (nil at a clean EOF). A stop error of ErrTorn or
// ErrCorrupt at offset end means the file is valid up to end.
func scanSegment(path string, fn func(*Record) error) (last uint64, end int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<20)
	if _, _, _, _, err := readSegmentHeader(br); err != nil {
		return 0, 0, err
	}
	end = segHeaderSize
	var hdr [frameHeaderSize]byte
	body := make([]byte, 0, 4096)
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if err == io.EOF {
				return last, end, nil
			}
			return last, end, fmt.Errorf("%w: partial frame header: %v", ErrTorn, err)
		}
		n := binary.LittleEndian.Uint32(hdr[0:])
		wantCRC := binary.LittleEndian.Uint32(hdr[4:])
		if n == 0 || n > maxRecord {
			return last, end, fmt.Errorf("%w: frame length %d out of range", ErrCorrupt, n)
		}
		if cap(body) < int(n) {
			body = make([]byte, n)
		}
		body = body[:n]
		if _, err := io.ReadFull(br, body); err != nil {
			return last, end, fmt.Errorf("%w: partial frame body: %v", ErrTorn, err)
		}
		if crc32.Checksum(body, castagnoli) != wantCRC {
			return last, end, fmt.Errorf("%w: frame checksum mismatch", ErrCorrupt)
		}
		rec, err := decodeBody(body)
		if err != nil {
			return last, end, err
		}
		if rec.Seq != last+1 && last != 0 {
			return last, end, fmt.Errorf("%w: sequence jump %d -> %d", ErrCorrupt, last, rec.Seq)
		}
		if fn != nil {
			if err := fn(rec); err != nil {
				return last, end, err
			}
		}
		last = rec.Seq
		end += frameHeaderSize + int64(n)
	}
}

// BuildUpdates renders a raw update batch as a WAL record: coalesced,
// digest-packed entries when the stored coins allow it (replay then
// skips the hash bill entirely), raw triples otherwise. Applying the
// returned record is exactly equivalent to applying ups in order, by
// linearity of the sketch counters.
func (l *Log) BuildUpdates(site string, ups []datagen.Update) *Record {
	rec := &Record{Type: RecUpdates, Site: site, Count: uint64(len(ups))}
	if !l.opts.Config.DigestPackable() {
		rec.Updates = ups
		return rec
	}
	l.smu.Lock()
	if l.scratch == nil {
		// Coins were validated at Open; a scratch family only exists
		// to evaluate the digest hash functions.
		l.scratch, _ = core.NewFamily(l.opts.Config, l.opts.Seed, l.opts.Copies)
	}
	rec.Type = RecDigests
	rec.Digests = DigestUpdates(l.scratch, ups)
	l.smu.Unlock()
	return rec
}

// DigestUpdates coalesces a raw update batch per (stream, element),
// drops exact cancellations, and computes each survivor's packed
// digest through fam's batch kernel (one copy-major pass instead of a
// full hash-constant sweep per element — see core.Family.DigestBatch).
// It is the shared front half of the batch-amortized update path:
// BuildUpdates wraps the entries in a WAL record, and the
// coordinator's live non-WAL path applies them directly. The caller
// owns fam and its locking, and must have checked that fam's config is
// DigestPackable. Applying the returned entries in order is exactly
// equivalent to applying ups in order, by linearity of the sketch
// counters.
func DigestUpdates(fam *core.Family, ups []datagen.Update) []DigestUpdate {
	type key struct {
		stream string
		elem   uint64
	}
	idx := make(map[key]int, len(ups))
	entries := make([]DigestUpdate, 0, len(ups))
	for _, u := range ups {
		k := key{u.Stream, u.Elem}
		if i, ok := idx[k]; ok {
			entries[i].Delta += u.Delta
			continue
		}
		idx[k] = len(entries)
		entries = append(entries, DigestUpdate{Stream: u.Stream, Elem: u.Elem, Delta: u.Delta})
	}
	kept := entries[:0]
	for i := range entries {
		if entries[i].Delta == 0 {
			continue // exact cancellation: a no-op on every counter
		}
		kept = append(kept, entries[i])
	}
	if len(kept) > 0 {
		elems := make([]uint64, len(kept))
		for i := range kept {
			elems[i] = kept[i].Elem
		}
		digs := fam.DigestBatch(elems)
		for i := range kept {
			kept[i].Digest = digs[i]
		}
	}
	return kept
}

// Append assigns the next sequence number to rec, frames it, and writes
// it to the active segment, rotating first if the segment is full. With
// SyncAlways the record is on stable storage when Append returns.
func (l *Log) Append(rec *Record) (uint64, error) {
	start := time.Now()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, fmt.Errorf("wal: log is closed")
	}
	rec.Seq = l.nextSeq
	body, err := encodeBody(rec)
	if err != nil {
		return 0, err
	}
	frame := int64(frameHeaderSize + len(body))
	cur := &l.segs[len(l.segs)-1]
	if cur.size > segHeaderSize && cur.size+frame > l.opts.SegmentSize {
		if err := l.rotateLocked(rec.Seq); err != nil {
			return 0, err
		}
	}
	var hdr [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(body)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(body, castagnoli))
	if _, err := l.w.Write(hdr[:]); err != nil {
		return 0, err
	}
	if _, err := l.w.Write(body); err != nil {
		return 0, err
	}
	cur = &l.segs[len(l.segs)-1]
	cur.size += frame
	cur.last = rec.Seq
	l.nextSeq++
	l.unsynced = true
	if l.opts.Sync == SyncAlways {
		if err := l.syncLocked(); err != nil {
			return 0, err
		}
	}
	l.met.appends.Inc()
	l.met.appendBytes.Add(uint64(frame))
	l.met.appendSecs.ObserveSince(start)
	return rec.Seq, nil
}

// rotateLocked seals the active segment (flush + fsync, so sealed
// segments are always intact on disk) and opens a new one starting at
// seq.
func (l *Log) rotateLocked(seq uint64) error {
	if err := l.w.Flush(); err != nil {
		return err
	}
	if err := l.fsyncLocked(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		return err
	}
	if err := l.openSegment(seq); err != nil {
		return err
	}
	l.met.rotations.Inc()
	l.log.Debug("rotated segment", "first_seq", seq, "segments", len(l.segs))
	return nil
}

// syncLocked flushes buffered frames and fsyncs the active segment.
func (l *Log) syncLocked() error {
	if !l.unsynced {
		return nil
	}
	if err := l.w.Flush(); err != nil {
		return err
	}
	if err := l.fsyncLocked(); err != nil {
		return err
	}
	l.unsynced = false
	return nil
}

func (l *Log) fsyncLocked() error {
	start := time.Now()
	err := l.f.Sync()
	l.met.fsyncs.Inc()
	l.met.fsyncSecs.ObserveSince(start)
	return err
}

// Sync forces buffered records to stable storage regardless of policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	return l.syncLocked()
}

// syncLoop services SyncInterval policy in the background.
func (l *Log) syncLoop() {
	defer close(l.syncDone)
	t := time.NewTicker(l.opts.SyncInterval)
	defer t.Stop()
	for {
		select {
		case <-l.stopSync:
			return
		case <-t.C:
			if err := l.Sync(); err != nil {
				l.log.Warn("interval fsync failed", "err", err.Error())
			}
		}
	}
}

// LastSeq returns the sequence number of the last appended record (0 if
// none yet).
func (l *Log) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextSeq - 1
}

// SegmentCount returns the number of live segment files.
func (l *Log) SegmentCount() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.segs)
}

// Dir returns the log directory.
func (l *Log) Dir() string { return l.dir }

// Close flushes, fsyncs, and closes the active segment.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	err := l.syncLocked()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.closed = true
	l.mu.Unlock()
	if l.stopSync != nil {
		close(l.stopSync)
		<-l.syncDone
	}
	return err
}

// ReplayStats summarizes one recovery replay.
type ReplayStats struct {
	Records  uint64 // records applied
	Updates  uint64 // stream updates credited by those records
	FirstSeq uint64 // first seq applied (0 if none)
	LastSeq  uint64 // last seq applied (0 if none)
	Elapsed  time.Duration
}

// Replay iterates every record with seq >= from, in order, through fn.
// Call it after Open (which already truncated any torn tail) and
// before the first Append. A decode failure in a sealed (non-final)
// segment is fatal corruption and returns the error.
func (l *Log) Replay(from uint64, fn func(*Record) error) (ReplayStats, error) {
	start := time.Now()
	l.mu.Lock()
	// Flush so a replay after appends observes them (tests); the
	// common recovery path replays before any append.
	if l.w != nil && l.unsynced {
		l.w.Flush()
	}
	segs := append([]segment(nil), l.segs...)
	l.mu.Unlock()
	var stats ReplayStats
	for i, s := range segs {
		// Skip segments entirely before the replay point.
		if s.last != 0 && s.last < from {
			continue
		}
		_, _, err := scanSegment(s.path, func(rec *Record) error {
			if rec.Seq < from {
				return nil
			}
			if err := fn(rec); err != nil {
				return &callbackError{err}
			}
			stats.Records++
			stats.Updates += rec.Count
			if stats.FirstSeq == 0 {
				stats.FirstSeq = rec.Seq
			}
			stats.LastSeq = rec.Seq
			l.met.replayRecords.Inc()
			return nil
		})
		if err != nil {
			var cb *callbackError
			if errors.As(err, &cb) {
				return stats, cb.err
			}
			if i == len(segs)-1 && isFrameError(err) {
				// Open already truncated the torn tail, so a frame error
				// here only means appends raced this replay (tests); the
				// intact prefix is the whole log.
				break
			}
			return stats, fmt.Errorf("wal: replay %s: %w", filepath.Base(s.path), err)
		}
	}
	stats.Elapsed = time.Since(start)
	l.met.replaySecs.Observe(stats.Elapsed.Seconds())
	return stats, nil
}

// callbackError wraps an error raised by a replay callback so Replay
// can tell it apart from framing-layer corruption.
type callbackError struct{ err error }

func (e *callbackError) Error() string { return e.err.Error() }
func (e *callbackError) Unwrap() error { return e.err }

// isFrameError reports whether err originates from the framing layer
// (torn or corrupt record) rather than from elsewhere.
func isFrameError(err error) bool {
	return errors.Is(err, ErrTorn) || errors.Is(err, ErrCorrupt)
}
