package wal

import (
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"setsketch/internal/core"
	"setsketch/internal/datagen"
)

func writeSeed(t *testing.T, target, name string, b []byte) {
	t.Helper()
	dir := filepath.Join("testdata", "fuzz", target)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	content := "go test fuzz v1\n[]byte(" + strconv.Quote(string(b)) + ")\n"
	if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestGenSeedCorpus(t *testing.T) {
	if os.Getenv("GEN_FUZZ_CORPUS") == "" {
		t.Skip("set GEN_FUZZ_CORPUS=1 to regenerate testdata/fuzz seeds")
	}
	recs := map[string]*Record{
		"seed-updates-multi": {Seq: 10, Type: RecUpdates, Site: "edge-1", Count: 4, Updates: []datagen.Update{
			{Stream: "A", Elem: 5, Delta: 1}, {Stream: "B", Elem: 9, Delta: -3},
			{Stream: "A", Elem: 5, Delta: -1}, {Stream: "C", Elem: 1 << 40, Delta: 7},
		}},
		"seed-digest-long": {Seq: 11, Type: RecDigests, Site: "s", Count: 1, Digests: []DigestUpdate{
			{Stream: "A", Elem: 5, Delta: 2, Digest: core.Digest{1, 2, 3, 4, 5, 6, 7, 8}},
		}},
		"seed-view-unicode": {Seq: 12, Type: RecView, View: "v∪", Statement: "CREATE VIEW v∪ AS (A ∪ B)"},
	}
	for name, rec := range recs {
		body, err := encodeBody(rec)
		if err != nil {
			t.Fatal(err)
		}
		writeSeed(t, "FuzzDecodeBody", name, body)
		writeSeed(t, "FuzzDecodeBody", name+"-truncated", body[:len(body)/2])
	}

	cfg := core.Config{Buckets: 16, SecondLevel: 4, FirstWise: 3}
	famA, err := core.NewFamily(cfg, 7, 2)
	if err != nil {
		t.Fatal(err)
	}
	famA.Insert(42)
	famB, err := core.NewFamily(cfg, 7, 2)
	if err != nil {
		t.Fatal(err)
	}
	famB.Update(9, -2)
	snap, err := encodeSnapshot(20, 33, map[string]int{"s1": 2, "s2": 5},
		map[string]*core.Family{"A": famA, "B": famB},
		[]string{"CREATE VIEW v AS (A | B)", "CREATE VIEW w AS (A & B)"})
	if err != nil {
		t.Fatal(err)
	}
	writeSeed(t, "FuzzDecodeSnapshotManifest", "seed-snapshot-two-streams", snap)
	writeSeed(t, "FuzzDecodeSnapshotManifest", "seed-snapshot-truncated", snap[:len(snap)/2])
	writeSeed(t, "FuzzDecodeSnapshotManifest", "seed-manifest",
		encodeManifest(20, 33, "snap-000020.dat", int64(len(snap)), 7, 1))
}
