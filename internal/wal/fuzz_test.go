package wal

import (
	"testing"

	"setsketch/internal/core"
	"setsketch/internal/datagen"
)

// FuzzDecodeBody throws arbitrary bytes at the record decoder: it must
// never panic or over-allocate, only return a record or an error. Valid
// encodings are seeded so the fuzzer explores the interesting interior
// of the format, and any successfully decoded record must survive an
// encode/decode round trip (no decoded state the encoder cannot
// express).
func FuzzDecodeBody(f *testing.F) {
	seeds := []*Record{
		{Seq: 1, Type: RecUpdates, Site: "s", Count: 2,
			Updates: []datagen.Update{{Stream: "A", Elem: 5, Delta: 1}, {Stream: "B", Elem: 9, Delta: -3}}},
		{Seq: 2, Type: RecDigests, Site: "s", Count: 1,
			Digests: []DigestUpdate{{Stream: "A", Elem: 5, Delta: 2, Digest: core.Digest{1, 2, 3}}}},
		{Seq: 3, Type: RecDelta, Site: "s", Stream: "A", Count: 4, Synopsis: []byte{1, 2, 3, 4}},
		{Seq: 4, Type: RecMark, Site: "s"},
		{Seq: 5, Type: RecView, View: "v", Statement: "CREATE VIEW v AS (A | B)"},
	}
	for _, rec := range seeds {
		body, err := encodeBody(rec)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(body)
	}
	f.Add([]byte{})
	f.Add([]byte{0xff})

	f.Fuzz(func(t *testing.T, b []byte) {
		rec, err := decodeBody(b)
		if err != nil {
			return
		}
		// Anything the decoder accepts, the encoder must be able to
		// express, and the re-encoding must decode to the same shape.
		// (Byte equality is not required: uvarints and unreferenced
		// stream-table entries admit non-canonical inputs.)
		back, err := encodeBody(rec)
		if err != nil {
			t.Fatalf("re-encode of decoded record failed: %v", err)
		}
		rec2, err := decodeBody(back)
		if err != nil {
			t.Fatalf("re-encoded record does not decode: %v", err)
		}
		if rec2.Seq != rec.Seq || rec2.Type != rec.Type || rec2.Site != rec.Site ||
			rec2.Count != rec.Count || len(rec2.Updates) != len(rec.Updates) ||
			len(rec2.Digests) != len(rec.Digests) ||
			rec2.View != rec.View || rec2.Statement != rec.Statement {
			t.Fatalf("round trip changed the record: %+v vs %+v", rec2, rec)
		}
	})
}

// FuzzDecodeSnapshotManifest fuzzes the two snapshot parsers the same
// way: corrupt or truncated input must fail cleanly, never panic.
func FuzzDecodeSnapshotManifest(f *testing.F) {
	cfg := core.Config{Buckets: 8, SecondLevel: 4, FirstWise: 3}
	fam, err := core.NewFamily(cfg, 1, 2)
	if err != nil {
		f.Fatal(err)
	}
	fam.Insert(42)
	snap, err := encodeSnapshot(3, 10, map[string]int{"s": 2}, map[string]*core.Family{"A": fam}, []string{"CREATE VIEW v AS (A | A)"})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(snap)
	f.Add(encodeManifest(3, 10, "snap-x.dat", int64(len(snap)), 7, 1))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, b []byte) {
		decodeSnapshot(b)
		decodeManifest(b)
	})
}
