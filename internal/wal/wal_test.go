package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
	"time"

	"setsketch/internal/core"
	"setsketch/internal/datagen"
)

// testCoins is a small digest-packable shape for fast tests.
func testOptions() Options {
	cfg := core.Config{Buckets: 16, SecondLevel: 8, FirstWise: 3}
	return Options{Config: cfg, Seed: 0x5eed, Copies: 4}
}

// rawOptions is a non-packable shape (s > 58), forcing RecUpdates.
func rawOptions() Options {
	cfg := core.Config{Buckets: 16, SecondLevel: 60, FirstWise: 3}
	return Options{Config: cfg, Seed: 0x5eed, Copies: 4}
}

func mustOpen(t *testing.T, dir string, opts Options) *Log {
	t.Helper()
	l, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func testUpdates(n int, base uint64) []datagen.Update {
	ups := make([]datagen.Update, n)
	for i := range ups {
		stream := "A"
		if i%3 == 1 {
			stream = "B"
		}
		ups[i] = datagen.Update{Stream: stream, Elem: base + uint64(i%7), Delta: 1}
	}
	return ups
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, testOptions())
	var appended []uint64
	for i := 0; i < 10; i++ {
		rec := l.BuildUpdates("site1", testUpdates(5, uint64(i*100)))
		seq, err := l.Append(rec)
		if err != nil {
			t.Fatal(err)
		}
		appended = append(appended, seq)
	}
	if got := l.LastSeq(); got != 10 {
		t.Fatalf("LastSeq = %d, want 10", got)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2 := mustOpen(t, dir, testOptions())
	defer l2.Close()
	var seqs []uint64
	stats, err := l2.Replay(1, func(rec *Record) error {
		if rec.Type != RecDigests {
			t.Fatalf("record %d type %d, want RecDigests (packable coins)", rec.Seq, rec.Type)
		}
		if rec.Count != 5 {
			t.Fatalf("record %d count %d, want 5", rec.Seq, rec.Count)
		}
		seqs = append(seqs, rec.Seq)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != 10 || stats.Updates != 50 || stats.FirstSeq != 1 || stats.LastSeq != 10 {
		t.Fatalf("bad stats %+v", stats)
	}
	for i, s := range seqs {
		if s != appended[i] {
			t.Fatalf("replayed seq %d at position %d, want %d", s, i, appended[i])
		}
	}
	// Replay from the middle.
	stats, err = l2.Replay(7, func(*Record) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if stats.FirstSeq != 7 || stats.LastSeq != 10 || stats.Records != 4 {
		t.Fatalf("suffix replay stats %+v", stats)
	}
}

// TestDigestReplayEquivalence: applying the digest entries of a logged
// batch reproduces exactly the family a direct application builds —
// the linearity invariant recovery rests on.
func TestDigestReplayEquivalence(t *testing.T) {
	opts := testOptions()
	dir := t.TempDir()
	l := mustOpen(t, dir, opts)
	defer l.Close()

	direct, err := core.NewFamily(opts.Config, opts.Seed, opts.Copies)
	if err != nil {
		t.Fatal(err)
	}
	ups := []datagen.Update{
		{Stream: "A", Elem: 1, Delta: 2},
		{Stream: "A", Elem: 2, Delta: 1},
		{Stream: "A", Elem: 1, Delta: -1},
		{Stream: "A", Elem: 3, Delta: 4},
		{Stream: "A", Elem: 3, Delta: -4}, // cancels: coalescing drops it
	}
	for _, u := range ups {
		direct.Update(u.Elem, u.Delta)
	}
	rec := l.BuildUpdates("s", ups)
	if _, err := l.Append(rec); err != nil {
		t.Fatal(err)
	}

	replayed, err := core.NewFamily(opts.Config, opts.Seed, opts.Copies)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Replay(1, func(r *Record) error {
		for _, d := range r.Digests {
			replayed.UpdateDigest(d.Digest, d.Delta)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !direct.Equal(replayed) {
		t.Fatal("digest replay does not reproduce direct application")
	}
}

func TestRawRecordsWhenNotPackable(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, rawOptions())
	defer l.Close()
	rec := l.BuildUpdates("site1", testUpdates(4, 0))
	if rec.Type != RecUpdates || len(rec.Updates) != 4 {
		t.Fatalf("non-packable coins should log raw updates, got type %d with %d updates",
			rec.Type, len(rec.Updates))
	}
	if _, err := l.Append(rec); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Replay(1, func(r *Record) error {
		if r.Type != RecUpdates || len(r.Updates) != 4 {
			t.Fatalf("replayed type %d with %d updates", r.Type, len(r.Updates))
		}
		if r.Updates[1].Stream != "B" {
			t.Fatalf("stream table mixup: %+v", r.Updates[1])
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestDeltaRecordRoundTrip(t *testing.T) {
	opts := testOptions()
	dir := t.TempDir()
	l := mustOpen(t, dir, opts)
	defer l.Close()
	fam, _ := core.NewFamily(opts.Config, opts.Seed, opts.Copies)
	fam.Insert(42)
	var buf writerBuffer
	if _, err := fam.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	rec := &Record{Type: RecDelta, Site: "s1", Stream: "A", Count: 7, Synopsis: buf.b}
	if _, err := l.Append(rec); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Replay(1, func(r *Record) error {
		if r.Type != RecDelta || r.Stream != "A" || r.Count != 7 || r.Site != "s1" {
			t.Fatalf("bad delta record %+v", r)
		}
		got, err := core.ReadFamily(bytesReader(r.Synopsis))
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(fam) {
			t.Fatal("synopsis bytes corrupted through the WAL")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestSegmentRotationAndPrune(t *testing.T) {
	opts := testOptions()
	opts.SegmentSize = 2048 // tiny: rotate often
	dir := t.TempDir()
	l := mustOpen(t, dir, opts)
	fams := make(map[string]*core.Family)
	f, _ := core.NewFamily(opts.Config, opts.Seed, opts.Copies)
	for i := 0; i < 60; i++ {
		rec := l.BuildUpdates("s", testUpdates(8, uint64(i*1000)))
		if _, err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
		for _, d := range rec.Digests {
			f.UpdateDigest(d.Digest, d.Delta)
		}
	}
	fams["A"] = f
	if l.SegmentCount() < 3 {
		t.Fatalf("expected several segments, got %d", l.SegmentCount())
	}
	before := l.SegmentCount()

	// Snapshot at the current tip prunes all sealed segments.
	seq := l.LastSeq()
	if err := l.WriteSnapshot(seq, 60*8, map[string]int{"s": 60}, fams, nil); err != nil {
		t.Fatal(err)
	}
	if l.SegmentCount() >= before {
		t.Fatalf("snapshot did not prune segments: %d before, %d after", before, l.SegmentCount())
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Recovery: snapshot + suffix replay reproduces the tip exactly.
	snap, err := LoadLatestSnapshot(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if snap == nil || snap.Seq != seq || snap.Updates != 60*8 {
		t.Fatalf("bad snapshot %+v", snap)
	}
	if !snap.Streams["A"].Equal(f) {
		t.Fatal("snapshot family differs")
	}
	l2 := mustOpen(t, dir, opts)
	defer l2.Close()
	stats, err := l2.Replay(snap.Seq+1, func(*Record) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != 0 {
		t.Fatalf("replay past a tip snapshot should be empty, got %+v", stats)
	}
	// Appends continue from the recovered sequence.
	if s, err := l2.Append(l2.BuildUpdates("s", testUpdates(1, 0))); err != nil || s != seq+1 {
		t.Fatalf("append after recovery: seq %d err %v, want %d", s, err, seq+1)
	}
}

func TestTornTailTruncatedOnOpen(t *testing.T) {
	opts := testOptions()
	dir := t.TempDir()
	l := mustOpen(t, dir, opts)
	for i := 0; i < 5; i++ {
		if _, err := l.Append(l.BuildUpdates("s", testUpdates(3, uint64(i)))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(dir)
	if err != nil || len(segs) != 1 {
		t.Fatalf("want 1 segment, got %d (%v)", len(segs), err)
	}
	path := segs[0].path

	// Simulate a crash mid-append: chop bytes off the final record.
	info, _ := os.Stat(path)
	if err := os.Truncate(path, info.Size()-3); err != nil {
		t.Fatal(err)
	}

	l2 := mustOpen(t, dir, opts) // must truncate, not fail
	got := uint64(0)
	if _, err := l2.Replay(1, func(r *Record) error { got = r.Seq; return nil }); err != nil {
		t.Fatal(err)
	}
	if got != 4 {
		t.Fatalf("after torn-tail truncation last seq = %d, want 4", got)
	}
	// The torn seq is reused by the next append.
	if s, err := l2.Append(l2.BuildUpdates("s", testUpdates(1, 9))); err != nil || s != 5 {
		t.Fatalf("append after truncation: seq %d err %v, want 5", s, err)
	}
	l2.Close()
}

func TestCorruptMidRecordTruncatesSuffix(t *testing.T) {
	opts := testOptions()
	dir := t.TempDir()
	l := mustOpen(t, dir, opts)
	for i := 0; i < 5; i++ {
		if _, err := l.Append(l.BuildUpdates("s", testUpdates(3, uint64(i)))); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	segs, _ := listSegments(dir)
	path := segs[0].path

	// Flip one byte in the middle of record 3's frame: records 3..5 are
	// unrecoverable, 1..2 survive.
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Locate record 3's frame by walking the length prefixes.
	off := int64(segHeaderSize)
	cnt := 0
	for off < int64(len(b)) && cnt < 2 {
		n := int64(uint32(b[off]) | uint32(b[off+1])<<8 | uint32(b[off+2])<<16 | uint32(b[off+3])<<24)
		off += frameHeaderSize + n
		cnt++
	}
	b[off+frameHeaderSize+4] ^= 0xff
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}

	// Inspect (read-only) reports the corruption point.
	rep, err := InspectDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Segments[0].Corrupt == "" || rep.Segments[0].TruncateAt != off {
		t.Fatalf("inspect: corrupt=%q truncateAt=%d, want truncation at %d",
			rep.Segments[0].Corrupt, rep.Segments[0].TruncateAt, off)
	}
	if rep.Segments[0].Records != 2 {
		t.Fatalf("inspect: %d intact records, want 2", rep.Segments[0].Records)
	}

	// Open truncates to the intact prefix.
	l2 := mustOpen(t, dir, opts)
	defer l2.Close()
	if got := l2.LastSeq(); got != 2 {
		t.Fatalf("after corruption LastSeq = %d, want 2", got)
	}
}

func TestOpenRejectsMismatchedCoins(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, testOptions())
	if _, err := l.Append(l.BuildUpdates("s", testUpdates(1, 0))); err != nil {
		t.Fatal(err)
	}
	l.Close()
	other := testOptions()
	other.Seed++
	if _, err := Open(dir, other); err == nil {
		t.Fatal("Open accepted segments written with different coins")
	}
}

func TestSyncPolicies(t *testing.T) {
	for _, tc := range []struct {
		name string
		mod  func(*Options)
	}{
		{"always", func(o *Options) { o.Sync = SyncAlways }},
		{"interval", func(o *Options) { o.Sync = SyncInterval; o.SyncInterval = time.Millisecond }},
		{"never", func(o *Options) { o.Sync = SyncNever }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			opts := testOptions()
			tc.mod(&opts)
			dir := t.TempDir()
			l := mustOpen(t, dir, opts)
			for i := 0; i < 3; i++ {
				if _, err := l.Append(l.BuildUpdates("s", testUpdates(2, uint64(i)))); err != nil {
					t.Fatal(err)
				}
			}
			if err := l.Sync(); err != nil {
				t.Fatal(err)
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			l2 := mustOpen(t, dir, opts)
			defer l2.Close()
			stats, err := l2.Replay(1, func(*Record) error { return nil })
			if err != nil || stats.Records != 3 {
				t.Fatalf("replay after %s sync: %+v err %v", tc.name, stats, err)
			}
		})
	}
}

func TestParseSyncPolicy(t *testing.T) {
	if p, _, err := ParseSyncPolicy("always"); err != nil || p != SyncAlways {
		t.Fatalf("always: %v %v", p, err)
	}
	if p, _, err := ParseSyncPolicy("never"); err != nil || p != SyncNever {
		t.Fatalf("never: %v %v", p, err)
	}
	if p, d, err := ParseSyncPolicy("250ms"); err != nil || p != SyncInterval || d != 250*time.Millisecond {
		t.Fatalf("250ms: %v %v %v", p, d, err)
	}
	if _, _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Fatal("accepted garbage policy")
	}
	if _, _, err := ParseSyncPolicy("-1s"); err == nil {
		t.Fatal("accepted negative interval")
	}
}

func TestSnapshotFallsBackPastCorruptOne(t *testing.T) {
	opts := testOptions()
	dir := t.TempDir()
	l := mustOpen(t, dir, opts)
	defer l.Close()
	f, _ := core.NewFamily(opts.Config, opts.Seed, opts.Copies)
	f.Insert(1)
	fams := map[string]*core.Family{"A": f}
	if _, err := l.Append(l.BuildUpdates("s", testUpdates(1, 0))); err != nil {
		t.Fatal(err)
	}
	if err := l.WriteSnapshot(1, 1, nil, fams, nil); err != nil {
		t.Fatal(err)
	}
	f.Insert(2)
	if _, err := l.Append(l.BuildUpdates("s", testUpdates(1, 5))); err != nil {
		t.Fatal(err)
	}
	if err := l.WriteSnapshot(2, 2, nil, fams, nil); err != nil {
		t.Fatal(err)
	}
	// Corrupt the newest snapshot's data file.
	db, err := os.ReadFile(snapDataPath(dir, 2))
	if err != nil {
		t.Fatal(err)
	}
	db[len(db)/2] ^= 0xff
	if err := os.WriteFile(snapDataPath(dir, 2), db, 0o644); err != nil {
		t.Fatal(err)
	}
	snap, err := LoadLatestSnapshot(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if snap == nil || snap.Seq != 1 {
		t.Fatalf("expected fallback to snapshot 1, got %+v", snap)
	}
}

func TestLoadLatestSnapshotEmpty(t *testing.T) {
	snap, err := LoadLatestSnapshot(t.TempDir(), nil)
	if err != nil || snap != nil {
		t.Fatalf("empty dir: snap %+v err %v", snap, err)
	}
	snap, err = LoadLatestSnapshot(filepath.Join(t.TempDir(), "missing"), nil)
	if err != nil || snap != nil {
		t.Fatalf("missing dir: snap %+v err %v", snap, err)
	}
}

func TestReplayCallbackErrorPropagates(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, testOptions())
	defer l.Close()
	if _, err := l.Append(l.BuildUpdates("s", testUpdates(1, 0))); err != nil {
		t.Fatal(err)
	}
	sentinel := errors.New("boom")
	if _, err := l.Replay(1, func(*Record) error { return sentinel }); !errors.Is(err, sentinel) {
		t.Fatalf("callback error lost: %v", err)
	}
}

func TestSnapshotViewsRoundTrip(t *testing.T) {
	opts := testOptions()
	f, _ := core.NewFamily(opts.Config, opts.Seed, opts.Copies)
	f.Insert(1)
	views := []string{
		"CREATE VIEW a AS (A | B) WINDOW 5m SLIDE 1m GROUP BY tenant",
		"CREATE VIEW b AS (A & B) EMIT ISTREAM",
	}
	data, err := encodeSnapshot(9, 42, map[string]int{"s": 3},
		map[string]*core.Family{"A": f}, views)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := decodeSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Views) != len(views) {
		t.Fatalf("got %d views, want %d", len(snap.Views), len(views))
	}
	for i := range views {
		if snap.Views[i] != views[i] {
			t.Errorf("view %d: got %q want %q", i, snap.Views[i], views[i])
		}
	}
}

// TestSnapshotV1Decode pins backward compatibility: a version-1 data
// file (written before the views section existed) must still decode,
// with an empty view catalog. The v1 payload is synthesized from a v2
// encoding by flipping the version byte, stripping the empty views
// count, and re-checksumming.
func TestSnapshotV1Decode(t *testing.T) {
	opts := testOptions()
	f, _ := core.NewFamily(opts.Config, opts.Seed, opts.Copies)
	f.Insert(7)
	data, err := encodeSnapshot(5, 11, map[string]int{"s": 2},
		map[string]*core.Family{"A": f}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// magic(4) | version(1) ... | views-count uvarint (0x00) | crc(4)
	v1 := append([]byte{}, data[:len(data)-5]...) // drop views count + crc
	v1[4] = snapVersionV1
	v1 = binary.LittleEndian.AppendUint32(v1, crc32.Checksum(v1[4:], castagnoli))
	snap, err := decodeSnapshot(v1)
	if err != nil {
		t.Fatalf("v1 snapshot no longer decodes: %v", err)
	}
	if snap.Seq != 5 || snap.Updates != 11 || len(snap.Streams) != 1 || len(snap.Views) != 0 {
		t.Fatalf("v1 decode mismatch: %+v", snap)
	}
	if !snap.Streams["A"].Equal(f) {
		t.Error("v1 stream family not bit-identical")
	}
}

// --- small local helpers ---

type writerBuffer struct{ b []byte }

func (w *writerBuffer) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

func bytesReader(b []byte) *bytes.Reader { return bytes.NewReader(b) }
