package wal

import (
	"encoding/hex"
	"testing"

	"setsketch/internal/core"
	"setsketch/internal/datagen"
)

// TestWALGoldenBytes pins the on-disk formats — segment header, record
// bodies of every type, and the snapshot manifest — to byte-recorded
// golden values, mirroring core's TestSerializeGoldenBytes. If any of
// these fail, the durability formats changed: that needs a version
// bump (and migration thinking), not a golden update.
func TestWALGoldenBytes(t *testing.T) {
	cfg := core.Config{Buckets: 16, SecondLevel: 8, FirstWise: 3}

	t.Run("segment-header", func(t *testing.T) {
		got := hex.EncodeToString(encodeSegmentHeader(cfg, 0x5eed, 4, 1))
		const want = "5357414c01100008000300ed5e0000000000000400000001000000000000007272d062"
		if got != want {
			t.Errorf("segment header changed:\n got %s\nwant %s", got, want)
		}
	})

	t.Run("rec-updates", func(t *testing.T) {
		body, err := encodeBody(&Record{
			Seq: 7, Type: RecUpdates, Site: "edge1", Count: 3,
			Updates: []datagen.Update{
				{Stream: "A", Elem: 100, Delta: 1},
				{Stream: "B", Elem: 200, Delta: -2},
				{Stream: "A", Elem: 100, Delta: 1},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		const want = "010700000000000000056564676531030201410142030064000000000000000201c8000000000000000300640000000000000002"
		if got := hex.EncodeToString(body); got != want {
			t.Errorf("RecUpdates body changed:\n got %s\nwant %s", got, want)
		}
	})

	t.Run("rec-digests", func(t *testing.T) {
		body, err := encodeBody(&Record{
			Seq: 8, Type: RecDigests, Site: "edge1", Count: 2,
			Digests: []DigestUpdate{
				{Stream: "A", Elem: 100, Delta: 2, Digest: core.Digest{0x0102030405060708, 0x1112131415161718}},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		const want = "0208000000000000000565646765310202010141010064000000000000000408070605040302011817161514131211"
		if got := hex.EncodeToString(body); got != want {
			t.Errorf("RecDigests body changed:\n got %s\nwant %s", got, want)
		}
	})

	t.Run("rec-delta", func(t *testing.T) {
		body, err := encodeBody(&Record{
			Seq: 9, Type: RecDelta, Site: "edge1", Stream: "A", Count: 5,
			Synopsis: []byte{0xde, 0xad, 0xbe, 0xef},
		})
		if err != nil {
			t.Fatal(err)
		}
		const want = "03090000000000000005656467653101410504deadbeef"
		if got := hex.EncodeToString(body); got != want {
			t.Errorf("RecDelta body changed:\n got %s\nwant %s", got, want)
		}
	})

	t.Run("rec-mark", func(t *testing.T) {
		body, err := encodeBody(&Record{Seq: 10, Type: RecMark, Site: "edge1"})
		if err != nil {
			t.Fatal(err)
		}
		const want = "040a00000000000000056564676531"
		if got := hex.EncodeToString(body); got != want {
			t.Errorf("RecMark body changed:\n got %s\nwant %s", got, want)
		}
	})

	t.Run("rec-view", func(t *testing.T) {
		body, err := encodeBody(&Record{
			Seq: 11, Type: RecView, View: "v",
			Statement: "CREATE VIEW v AS (A | B)",
		})
		if err != nil {
			t.Fatal(err)
		}
		const want = "050b0000000000000001761843524541544520564945572076204153202841207c204229"
		if got := hex.EncodeToString(body); got != want {
			t.Errorf("RecView body changed:\n got %s\nwant %s", got, want)
		}
	})

	t.Run("manifest", func(t *testing.T) {
		got := hex.EncodeToString(encodeManifest(12, 3456, "snap-00000000000000000012.dat", 9999, 0xdeadbeef, 2))
		const want = "534d414e010c00000000000000800d0000000000001d736e61702d30303030303030303030303030303030303031322e6461740f27000000000000efbeadde020000006946e574"
		if got != want {
			t.Errorf("manifest changed:\n got %s\nwant %s", got, want)
		}
	})

	// Every golden body must also decode back to itself.
	t.Run("decode-inverse", func(t *testing.T) {
		recs := []*Record{
			{Seq: 7, Type: RecUpdates, Site: "edge1", Count: 3,
				Updates: []datagen.Update{{Stream: "A", Elem: 100, Delta: 1}}},
			{Seq: 8, Type: RecDigests, Site: "edge1", Count: 2,
				Digests: []DigestUpdate{{Stream: "A", Elem: 100, Delta: 2, Digest: core.Digest{1, 2}}}},
			{Seq: 9, Type: RecDelta, Site: "edge1", Stream: "A", Count: 5, Synopsis: []byte{1, 2, 3}},
			{Seq: 10, Type: RecMark, Site: "edge1"},
			{Seq: 11, Type: RecView, View: "v", Statement: "CREATE VIEW v AS (A | B)"},
		}
		for _, rec := range recs {
			body, err := encodeBody(rec)
			if err != nil {
				t.Fatal(err)
			}
			back, err := decodeBody(body)
			if err != nil {
				t.Fatalf("type %d: %v", rec.Type, err)
			}
			if back.Seq != rec.Seq || back.Type != rec.Type || back.Site != rec.Site ||
				back.Count != rec.Count || len(back.Updates) != len(rec.Updates) ||
				len(back.Digests) != len(rec.Digests) || back.Stream != rec.Stream ||
				back.View != rec.View || back.Statement != rec.Statement {
				t.Fatalf("type %d: decode mismatch: %+v vs %+v", rec.Type, back, rec)
			}
		}
	})
}
