package expr

import (
	"strings"
	"testing"
	"testing/quick"

	"setsketch/internal/hashing"
	"setsketch/internal/multiset"
)

func TestParseBasic(t *testing.T) {
	cases := []struct {
		in   string
		want string // canonical fully-parenthesized form
	}{
		{"A", "A"},
		{"A | B", "(A | B)"},
		{"A & B", "(A & B)"},
		{"A - B", "(A - B)"},
		{"A ∪ B", "(A | B)"},
		{"A ∩ B", "(A & B)"},
		{"A − B", "(A - B)"},
		{"A + B", "(A | B)"},
		{"A UNION B", "(A | B)"},
		{"a intersect b", "(a & b)"},
		{"A EXCEPT B", "(A - B)"},
		{"(A - B) & C", "((A - B) & C)"},
		{"A4 - (A3 & (A2 | A1))", "(A4 - (A3 & (A2 | A1)))"},
		// Precedence: & and - bind tighter than |, left-assoc.
		{"A | B & C", "(A | (B & C))"},
		{"A & B | C", "((A & B) | C)"},
		{"A - B - C", "((A - B) - C)"},
		{"A | B | C", "((A | B) | C)"},
		{"A & B - C", "((A & B) - C)"},
		{"_r1 & r_2", "(_r1 & r_2)"},
		{"A ^ B", "(A ^ B)"},
		{"A ⊕ B", "(A ^ B)"},
		{"A XOR B", "(A ^ B)"},
		{"A ^ B & C", "(A ^ (B & C))"}, // ^ at union precedence
		{"A | B ^ C", "((A | B) ^ C)"},
	}
	for _, c := range cases {
		n, err := Parse(c.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.in, err)
			continue
		}
		if got := n.String(); got != c.want {
			t.Errorf("Parse(%q).String() = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"", "A |", "| A", "(A", "A)", "A B", "A & & B", "A # B", "()", "A - ",
		"(A | B", "3A",
	}
	for _, in := range cases {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", in)
		}
	}
}

func TestParseErrorHasPosition(t *testing.T) {
	_, err := Parse("A & # B")
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("error type %T, want *ParseError", err)
	}
	if pe.Pos != 4 {
		t.Errorf("error position = %d, want 4", pe.Pos)
	}
	if !strings.Contains(pe.Error(), "offset 4") {
		t.Errorf("error message %q lacks offset", pe.Error())
	}
}

func TestStringRoundTrip(t *testing.T) {
	inputs := []string{
		"A", "(A | B)", "((A - B) & C)", "(A4 - (A3 & (A2 | A1)))",
		"(((A | B) & (C - D)) - (E & F))",
	}
	for _, in := range inputs {
		n := MustParse(in)
		re, err := Parse(n.String())
		if err != nil {
			t.Fatalf("reparse of %q failed: %v", n.String(), err)
		}
		if re.String() != n.String() {
			t.Errorf("round trip changed %q to %q", n.String(), re.String())
		}
	}
}

func TestStreams(t *testing.T) {
	n := MustParse("A4 - (A3 & (A2 | A1)) | A2")
	got := Streams(n)
	want := []string{"A1", "A2", "A3", "A4"}
	if len(got) != len(want) {
		t.Fatalf("Streams = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Streams = %v, want %v", got, want)
		}
	}
}

func TestEvalBool(t *testing.T) {
	n := MustParse("(A - B) & C")
	cases := []struct {
		a, b, c bool
		want    bool
	}{
		{true, false, true, true},
		{true, true, true, false},
		{false, false, true, false},
		{true, false, false, false},
	}
	for _, c := range cases {
		got := n.EvalBool(map[string]bool{"A": c.a, "B": c.b, "C": c.c})
		if got != c.want {
			t.Errorf("EvalBool(A=%v B=%v C=%v) = %v, want %v", c.a, c.b, c.c, got, c.want)
		}
	}
}

func set(elems ...uint64) multiset.Set {
	s := make(multiset.Set, len(elems))
	for _, e := range elems {
		s[e] = struct{}{}
	}
	return s
}

func TestEvalSet(t *testing.T) {
	sets := map[string]multiset.Set{
		"A": set(1, 2, 3, 4),
		"B": set(3, 4, 5),
		"C": set(1, 3, 6),
	}
	cases := []struct {
		expr string
		want int
	}{
		{"A | B", 5},
		{"A & B", 2},
		{"A - B", 2},
		{"(A - B) & C", 1}, // {1,2} ∩ {1,3,6} = {1}
		{"A - (B | C)", 1}, // {1,2,3,4} − {1,3,4,5,6} = {2}
		{"D", 0},           // unknown stream is empty
		{"A - D", 4},
	}
	for _, c := range cases {
		got := len(MustParse(c.expr).EvalSet(sets))
		if got != c.want {
			t.Errorf("|%s| = %d, want %d", c.expr, got, c.want)
		}
	}
}

// TestBoolMatchesSetSemantics is the correctness core of the §4 witness
// estimator: for every expression and element, B(E) evaluated on
// membership flags must agree with exact element-wise set semantics.
func TestBoolMatchesSetSemantics(t *testing.T) {
	rng := hashing.NewRNG(2003)
	names := []string{"A", "B", "C", "D"}
	for trial := 0; trial < 300; trial++ {
		n := randomExpr(rng, names, 4)
		sets := make(map[string]multiset.Set, len(names))
		for _, name := range names {
			s := make(multiset.Set)
			for e := uint64(0); e < 32; e++ {
				if rng.Float64() < 0.4 {
					s[e] = struct{}{}
				}
			}
			sets[name] = s
		}
		exact := n.EvalSet(sets)
		for e := uint64(0); e < 32; e++ {
			flags := make(map[string]bool, len(names))
			for _, name := range names {
				_, flags[name] = sets[name][e]
			}
			_, inExact := exact[e]
			if got := n.EvalBool(flags); got != inExact {
				t.Fatalf("expr %s element %d: EvalBool = %v, exact membership = %v",
					n.String(), e, got, inExact)
			}
		}
	}
}

// randomExpr builds a random expression tree of the given depth.
func randomExpr(rng *hashing.RNG, names []string, depth int) Node {
	if depth == 0 || rng.Float64() < 0.3 {
		return &Stream{Name: names[rng.Intn(len(names))]}
	}
	return &Binary{
		Op: Op(rng.Intn(4)),
		L:  randomExpr(rng, names, depth-1),
		R:  randomExpr(rng, names, depth-1),
	}
}

// TestRandomExprRoundTrip property-checks that String → Parse is the
// identity on random trees.
func TestRandomExprRoundTrip(t *testing.T) {
	rng := hashing.NewRNG(77)
	names := []string{"s1", "s2", "s3"}
	for trial := 0; trial < 500; trial++ {
		n := randomExpr(rng, names, 5)
		re, err := Parse(n.String())
		if err != nil {
			t.Fatalf("reparse of %q failed: %v", n.String(), err)
		}
		if re.String() != n.String() {
			t.Fatalf("round trip changed %q to %q", n.String(), re.String())
		}
	}
}

func TestMemberIsEvalBool(t *testing.T) {
	f := func(a, b, c bool) bool {
		n := MustParse("(A - B) | C")
		flags := map[string]bool{"A": a, "B": b, "C": c}
		return Member(n, flags) == n.EvalBool(flags)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse on invalid input did not panic")
		}
	}()
	MustParse("A &")
}

func TestOpString(t *testing.T) {
	if Union.String() != "|" || Intersect.String() != "&" || Diff.String() != "-" {
		t.Error("operator spellings changed")
	}
	if Op(99).String() == "" {
		t.Error("unknown operator String is empty")
	}
}
