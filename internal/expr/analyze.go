package expr

import "fmt"

// Semantic analysis of set expressions. Because the paper's Boolean
// mapping B(E) (§4) is exactly element-wise set semantics, two
// expressions denote the same set function iff their Boolean mappings
// agree on every membership assignment of their streams — a 2^n check
// that is cheap for the handful of streams real queries mention.

// maxAnalysisStreams bounds the 2^n truth-table enumeration.
const maxAnalysisStreams = 20

// assignments enumerates all membership assignments over names,
// calling fn with a reused map. fn returning false stops enumeration
// and makes assignments return false.
func assignments(names []string, fn func(map[string]bool) bool) (bool, error) {
	if len(names) > maxAnalysisStreams {
		return false, fmt.Errorf("expr: analysis over %d streams exceeds the %d-stream limit",
			len(names), maxAnalysisStreams)
	}
	flags := make(map[string]bool, len(names))
	for mask := uint(0); mask < 1<<uint(len(names)); mask++ {
		for i, name := range names {
			flags[name] = mask&(1<<uint(i)) != 0
		}
		if !fn(flags) {
			return false, nil
		}
	}
	return true, nil
}

// Equivalent reports whether two expressions denote the same set for
// every possible input (e.g. A − (B ∪ C) and (A − B) ∩ (A − C)).
func Equivalent(a, b Node) (bool, error) {
	names := Streams(&Binary{Op: Union, L: a, R: b})
	return assignments(names, func(flags map[string]bool) bool {
		return a.EvalBool(flags) == b.EvalBool(flags)
	})
}

// IsEmpty reports whether the expression denotes the empty set for
// every input (e.g. A − A, or (A ∩ B) − A). Estimating such an
// expression is pointless — the estimator will correctly return 0 —
// so callers can warn early.
func IsEmpty(e Node) (bool, error) {
	return assignments(Streams(e), func(flags map[string]bool) bool {
		return !e.EvalBool(flags)
	})
}

// IsUniverse reports whether the expression contains every element of
// the union of its streams for every input (e.g. A ∪ B over streams
// {A, B}, or A ∪ (B − A)). For such expressions the specialized union
// estimator (paper Fig. 5, better constants) can serve the query.
func IsUniverse(e Node) (bool, error) {
	names := Streams(e)
	return assignments(names, func(flags map[string]bool) bool {
		// Only assignments where the element is in *some* stream are
		// relevant: the all-false row is outside the union.
		inAny := false
		for _, name := range names {
			if flags[name] {
				inAny = true
				break
			}
		}
		return !inAny || e.EvalBool(flags)
	})
}
