package expr

import (
	"fmt"
	"math/rand"
	"testing"
)

// exhaustiveCheck verifies Eval against EvalBool for every assignment
// of the program's streams (so it only suits narrow expressions).
func exhaustiveCheck(t *testing.T, src string) {
	t.Helper()
	node := MustParse(src)
	names := Streams(node)
	prog, err := Compile(node, names)
	if err != nil {
		t.Fatalf("Compile(%q): %v", src, err)
	}
	flags := make(map[string]bool, len(names))
	for w := uint64(0); w < 1<<len(names); w++ {
		for k, name := range names {
			flags[name] = w>>k&1 == 1
		}
		if got, want := prog.Eval(w), node.EvalBool(flags); got != want {
			t.Fatalf("%q: Eval(%#b) = %v, EvalBool = %v", src, w, got, want)
		}
	}
}

func TestCompileMatchesEvalBool(t *testing.T) {
	for _, src := range []string{
		"A",
		"A | B",
		"A & B",
		"A - B",
		"B - A",
		"A ^ B",
		"(A - B) | (B - A)",
		"(A & B) - C",
		"A - (B | C)",
		"(A - B) & (A - C)",
		"((A | B) & (C | D)) - (E ^ F)",
		"A & A",
		"A - A",
	} {
		exhaustiveCheck(t, src)
	}
}

// TestCompileWideExpression forces the postfix-program path (> 6
// streams disables the truth table) and checks it against EvalBool on
// every assignment of its 8 streams.
func TestCompileWideExpression(t *testing.T) {
	src := "((S0 - S1) | (S2 & S3)) ^ ((S4 | S5) - (S6 & S7))"
	node := MustParse(src)
	names := Streams(node)
	prog, err := Compile(node, names)
	if err != nil {
		t.Fatal(err)
	}
	if prog.useTable {
		t.Fatalf("expected postfix path for %d streams", len(names))
	}
	flags := make(map[string]bool)
	for w := uint64(0); w < 1<<len(names); w++ {
		for k, name := range names {
			flags[name] = w>>k&1 == 1
		}
		if got, want := prog.Eval(w), node.EvalBool(flags); got != want {
			t.Fatalf("Eval(%#b) = %v, EvalBool = %v", w, got, want)
		}
	}
}

// TestCompileSupersetNames compiles against a name list wider than the
// expression (a processor's full stream set): unreferenced bits must
// not affect the result.
func TestCompileSupersetNames(t *testing.T) {
	node := MustParse("B - D")
	names := []string{"A", "B", "C", "D", "E"}
	prog, err := Compile(node, names)
	if err != nil {
		t.Fatal(err)
	}
	for w := uint64(0); w < 1<<len(names); w++ {
		want := w>>1&1 == 1 && w>>3&1 == 0 // B and not D
		if got := prog.Eval(w); got != want {
			t.Fatalf("Eval(%#b) = %v, want %v", w, got, want)
		}
	}
}

func TestCompileErrors(t *testing.T) {
	node := MustParse("A & B")
	if _, err := Compile(node, []string{"A", "A", "B"}); err == nil {
		t.Error("duplicate name in list: want error")
	}
	if _, err := Compile(node, []string{"A"}); err == nil {
		t.Error("missing referenced stream: want error")
	}
	wide := make([]string, MaxCompiledStreams+1)
	for i := range wide {
		wide[i] = fmt.Sprintf("S%d", i)
	}
	if _, err := Compile(node, wide); err == nil {
		t.Errorf("%d names: want error", len(wide))
	}
	if _, err := Compile(MustParse("S0 & S63"), wide[:MaxCompiledStreams]); err != nil {
		t.Errorf("%d names: %v", MaxCompiledStreams, err)
	}
}

func TestProgramAccessors(t *testing.T) {
	node := MustParse("A - C")
	prog, err := Compile(node, []string{"A", "B", "C"})
	if err != nil {
		t.Fatal(err)
	}
	if n := prog.NumStreams(); n != 3 {
		t.Errorf("NumStreams = %d, want 3", n)
	}
	if got := prog.Names(); len(got) != 3 || got[0] != "A" || got[2] != "C" {
		t.Errorf("Names = %v", got)
	}
	if bit, ok := prog.Bit("C"); !ok || bit != 2 {
		t.Errorf("Bit(C) = %d, %v", bit, ok)
	}
	if _, ok := prog.Bit("Z"); ok {
		t.Error("Bit(Z) should not resolve")
	}
	w := prog.Word(map[string]bool{"A": true, "C": true})
	if w != 0b101 {
		t.Errorf("Word = %#b, want 0b101", w)
	}
}

// TestCompileDeepChains stresses the fixed-size evaluation stack: long
// left- and right-leaning chains have Strahler number 2, and a fully
// balanced tree over 64 distinct leaves reaches the maximum depth the
// emitter must bound.
func TestCompileDeepChains(t *testing.T) {
	leaf := func(i int) Node { return &Stream{Name: fmt.Sprintf("S%d", i%4)} }
	left, right := leaf(0), leaf(0)
	for i := 1; i < 300; i++ {
		left = &Binary{Op: Op(i % 4), L: left, R: leaf(i)}
		right = &Binary{Op: Op(i % 4), L: leaf(i), R: right}
	}
	var balanced func(lo, hi int) Node
	balanced = func(lo, hi int) Node {
		if hi-lo == 1 {
			return &Stream{Name: fmt.Sprintf("T%02d", lo)}
		}
		mid := (lo + hi) / 2
		return &Binary{Op: Op((lo + hi) % 4), L: balanced(lo, mid), R: balanced(mid, hi)}
	}
	for _, node := range []Node{left, right, balanced(0, 64)} {
		names := Streams(node)
		prog, err := Compile(node, names)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(7))
		flags := make(map[string]bool)
		for trial := 0; trial < 200; trial++ {
			w := rng.Uint64() & (1<<len(names) - 1)
			for k, name := range names {
				flags[name] = w>>k&1 == 1
			}
			if got, want := prog.Eval(w), node.EvalBool(flags); got != want {
				t.Fatalf("chain: Eval(%#x) = %v, EvalBool = %v", w, got, want)
			}
		}
	}
}

// TestCompileRandomTrees compares compiled and interpreted evaluation
// over randomly generated expression trees and assignments, with a
// pinned seed for reproducibility.
func TestCompileRandomTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	streams := []string{"A", "B", "C", "D", "E", "F", "G", "H", "I", "J"}
	var gen func(depth int) Node
	gen = func(depth int) Node {
		if depth == 0 || rng.Intn(3) == 0 {
			return &Stream{Name: streams[rng.Intn(len(streams))]}
		}
		return &Binary{Op: Op(rng.Intn(4)), L: gen(depth - 1), R: gen(depth - 1)}
	}
	flags := make(map[string]bool)
	for trial := 0; trial < 500; trial++ {
		node := gen(4)
		names := Streams(node)
		prog, err := Compile(node, names)
		if err != nil {
			t.Fatalf("Compile(%q): %v", node, err)
		}
		for a := 0; a < 32; a++ {
			w := rng.Uint64() & (1<<len(names) - 1)
			for k, name := range names {
				flags[name] = w>>k&1 == 1
			}
			for _, name := range streams {
				if _, ok := prog.Bit(name); !ok {
					flags[name] = rng.Intn(2) == 1 // noise on unreferenced streams
				}
			}
			if got, want := prog.Eval(w), node.EvalBool(flags); got != want {
				t.Fatalf("%q: Eval(%#b) = %v, EvalBool = %v", node, w, got, want)
			}
		}
	}
}

// FuzzCompileEquivalence drives arbitrary expression sources and
// assignments through both evaluators: whenever the source parses and
// compiles, the compiled program must agree with EvalBool.
func FuzzCompileEquivalence(f *testing.F) {
	for _, seed := range []string{
		"A", "A & B", "(A - B) | C", "A ^ B ⊕ C", "A ∪ B ∩ C − D",
		"a UNION b INTERSECT c EXCEPT d XOR e", "A|B&C-D^E",
	} {
		f.Add(seed, uint64(0b1011))
	}
	f.Fuzz(func(t *testing.T, input string, assign uint64) {
		node, err := Parse(input)
		if err != nil {
			return
		}
		names := Streams(node)
		prog, err := Compile(node, names)
		if err != nil {
			return // > MaxCompiledStreams distinct streams
		}
		w := assign & (1<<len(names) - 1)
		flags := make(map[string]bool, len(names))
		for k, name := range names {
			flags[name] = w>>k&1 == 1
		}
		if got, want := prog.Eval(w), node.EvalBool(flags); got != want {
			t.Fatalf("%q: Eval(%#b) = %v, EvalBool = %v", input, w, got, want)
		}
		if prog.Word(flags) != w {
			t.Fatalf("%q: Word round-trip %#b → %#b", input, w, prog.Word(flags))
		}
	})
}
