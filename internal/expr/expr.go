// Package expr implements the set-expression language of the paper:
// expressions over named update streams built from union, intersection,
// and difference, e.g. (A − B) ∩ C or A4 − (A3 ∩ (A2 ∪ A1)).
//
// An expression has three evaluation modes, matching the three places
// the paper uses expressions:
//
//   - EvalBool evaluates the Boolean mapping B(E) of §4 over per-stream
//     bucket-occupancy flags — the witness condition of the general
//     set-expression estimator.
//   - EvalSet evaluates the expression exactly over materialized
//     supports (ground truth and baselines).
//   - Member evaluates membership of a single element given a
//     per-stream membership oracle (used by the synthetic data
//     generator to classify Venn partitions, §5.1).
//
//sketchvet:bitexact
package expr

import (
	"fmt"
	"sort"
	"strings"

	"setsketch/internal/multiset"
)

// Op identifies a set operator.
type Op int

// The three set operators of the paper (and of SQL's UNION / INTERSECT /
// EXCEPT), plus symmetric difference as a convenience: A ^ B desugars
// semantically to (A − B) ∪ (B − A) and is estimated through the same
// witness machinery (its Boolean mapping is XOR).
const (
	Union Op = iota
	Intersect
	Diff
	Xor
)

// String returns the canonical single-character spelling of the operator.
func (o Op) String() string {
	switch o {
	case Union:
		return "|"
	case Intersect:
		return "&"
	case Diff:
		return "-"
	case Xor:
		return "^"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Node is a set-expression AST node: either a Stream leaf or a Binary
// operator application.
type Node interface {
	// String renders the expression with explicit parentheses around
	// every binary application, so String output always reparses to an
	// identical tree.
	String() string

	// EvalBool evaluates the paper's Boolean mapping B(E): leaves read
	// the per-stream flag ("bucket non-empty for stream"), ∪ becomes
	// disjunction, ∩ conjunction, and − conjunction with negation.
	EvalBool(flags map[string]bool) bool

	// EvalSet evaluates the expression exactly over stream supports.
	// Streams absent from the map are treated as empty.
	EvalSet(sets map[string]multiset.Set) multiset.Set

	// streams accumulates the distinct stream names into out.
	streams(out map[string]struct{})
}

// Stream is a leaf node naming an input update stream.
type Stream struct {
	Name string
}

// String returns the stream name.
func (s *Stream) String() string { return s.Name }

// EvalBool reads the stream's occupancy flag.
func (s *Stream) EvalBool(flags map[string]bool) bool { return flags[s.Name] }

// EvalSet returns the stream's support (nil-safe).
func (s *Stream) EvalSet(sets map[string]multiset.Set) multiset.Set {
	if set, ok := sets[s.Name]; ok {
		return set
	}
	return multiset.Set{}
}

func (s *Stream) streams(out map[string]struct{}) { out[s.Name] = struct{}{} }

// Binary is an application of a set operator to two sub-expressions.
type Binary struct {
	Op   Op
	L, R Node
}

// String renders the application fully parenthesized.
func (b *Binary) String() string {
	return fmt.Sprintf("(%s %s %s)", b.L.String(), b.Op.String(), b.R.String())
}

// EvalBool applies the §4 Boolean mapping for the operator.
func (b *Binary) EvalBool(flags map[string]bool) bool {
	l := b.L.EvalBool(flags)
	switch b.Op {
	case Union:
		return l || b.R.EvalBool(flags)
	case Intersect:
		return l && b.R.EvalBool(flags)
	case Diff:
		return l && !b.R.EvalBool(flags)
	case Xor:
		return l != b.R.EvalBool(flags)
	default:
		panic(fmt.Sprintf("expr: unknown operator %d", int(b.Op)))
	}
}

// EvalSet evaluates the operator exactly.
func (b *Binary) EvalSet(sets map[string]multiset.Set) multiset.Set {
	l, r := b.L.EvalSet(sets), b.R.EvalSet(sets)
	switch b.Op {
	case Union:
		return multiset.Union(l, r)
	case Intersect:
		return multiset.Intersect(l, r)
	case Diff:
		return multiset.Diff(l, r)
	case Xor:
		return multiset.Union(multiset.Diff(l, r), multiset.Diff(r, l))
	default:
		panic(fmt.Sprintf("expr: unknown operator %d", int(b.Op)))
	}
}

func (b *Binary) streams(out map[string]struct{}) {
	b.L.streams(out)
	b.R.streams(out)
}

// Streams returns the sorted distinct stream names referenced by e.
func Streams(e Node) []string {
	set := make(map[string]struct{})
	e.streams(set)
	out := make([]string, 0, len(set))
	for name := range set {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Member reports whether an element belongs to the expression result,
// given per-stream membership. It is EvalBool under a different name:
// the §4 Boolean mapping is exactly element-wise set semantics, which is
// why the witness-based estimator is correct.
func Member(e Node, membership map[string]bool) bool { return e.EvalBool(membership) }

// ParseError describes a syntax error with its byte offset in the input.
type ParseError struct {
	Pos int
	Msg string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("expr: parse error at offset %d: %s", e.Pos, e.Msg)
}

// Parse parses a set expression. Grammar (lowest precedence first):
//
//	expr   := term   (('|' | '∪' | '+' | "UNION"
//	                 | '^' | '⊕' | "XOR")            term)*     left-assoc
//	term   := factor (('-' | '−' | "EXCEPT") factor
//	                 |('&' | '∩' | "INTERSECT") factor)*        left-assoc
//	factor := IDENT | '(' expr ')'
//
// Intersection and difference share a precedence level tighter than
// union and symmetric difference, mirroring SQL's
// INTERSECT-binds-tighter-than-UNION/EXCEPT rule applied to the
// paper's left-deep expressions. Identifiers are ASCII letters,
// digits, and underscores, starting with a letter or underscore.
func Parse(input string) (Node, error) {
	p := &parser{src: input}
	p.next()
	node, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.tok != tokEOF {
		return nil, &ParseError{Pos: p.tokPos, Msg: fmt.Sprintf("unexpected %q after expression", p.lit)}
	}
	return node, nil
}

// MustParse is Parse that panics on error, for tests and fixed
// expressions in examples.
func MustParse(input string) Node {
	n, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return n
}

type token int

const (
	tokEOF token = iota
	tokIdent
	tokUnion
	tokIntersect
	tokDiff
	tokXor
	tokLParen
	tokRParen
	tokInvalid
)

type parser struct {
	src    string
	pos    int    // scanning position
	tok    token  // current token
	lit    string // current token text
	tokPos int    // byte offset of current token
}

func (p *parser) next() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t' || p.src[p.pos] == '\n' || p.src[p.pos] == '\r') {
		p.pos++
	}
	p.tokPos = p.pos
	if p.pos >= len(p.src) {
		p.tok, p.lit = tokEOF, ""
		return
	}
	c := p.src[p.pos]
	switch {
	case c == '(':
		p.tok, p.lit = tokLParen, "("
		p.pos++
	case c == ')':
		p.tok, p.lit = tokRParen, ")"
		p.pos++
	case c == '|' || c == '+':
		p.tok, p.lit = tokUnion, string(c)
		p.pos++
	case c == '&':
		p.tok, p.lit = tokIntersect, "&"
		p.pos++
	case c == '-':
		p.tok, p.lit = tokDiff, "-"
		p.pos++
	case c == '^':
		p.tok, p.lit = tokXor, "^"
		p.pos++
	case strings.HasPrefix(p.src[p.pos:], "∪"):
		p.tok, p.lit = tokUnion, "∪"
		p.pos += len("∪")
	case strings.HasPrefix(p.src[p.pos:], "∩"):
		p.tok, p.lit = tokIntersect, "∩"
		p.pos += len("∩")
	case strings.HasPrefix(p.src[p.pos:], "−"):
		p.tok, p.lit = tokDiff, "−"
		p.pos += len("−")
	case strings.HasPrefix(p.src[p.pos:], "⊕"):
		p.tok, p.lit = tokXor, "⊕"
		p.pos += len("⊕")
	case isIdentStart(c):
		start := p.pos
		for p.pos < len(p.src) && isIdentChar(p.src[p.pos]) {
			p.pos++
		}
		word := p.src[start:p.pos]
		switch strings.ToUpper(word) {
		case "UNION":
			p.tok, p.lit = tokUnion, word
		case "INTERSECT":
			p.tok, p.lit = tokIntersect, word
		case "EXCEPT":
			p.tok, p.lit = tokDiff, word
		case "XOR":
			p.tok, p.lit = tokXor, word
		default:
			p.tok, p.lit = tokIdent, word
		}
	default:
		p.tok, p.lit = tokInvalid, string(c)
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentChar(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}

func (p *parser) parseExpr() (Node, error) {
	left, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for p.tok == tokUnion || p.tok == tokXor {
		op := Union
		if p.tok == tokXor {
			op = Xor
		}
		p.next()
		right, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: op, L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseTerm() (Node, error) {
	left, err := p.parseFactor()
	if err != nil {
		return nil, err
	}
	for p.tok == tokIntersect || p.tok == tokDiff {
		op := Intersect
		if p.tok == tokDiff {
			op = Diff
		}
		p.next()
		right, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: op, L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseFactor() (Node, error) {
	switch p.tok {
	case tokIdent:
		node := &Stream{Name: p.lit}
		p.next()
		return node, nil
	case tokLParen:
		p.next()
		node, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if p.tok != tokRParen {
			return nil, &ParseError{Pos: p.tokPos, Msg: "missing closing parenthesis"}
		}
		p.next()
		return node, nil
	case tokEOF:
		return nil, &ParseError{Pos: p.tokPos, Msg: "unexpected end of expression"}
	default:
		return nil, &ParseError{Pos: p.tokPos, Msg: fmt.Sprintf("unexpected %q", p.lit)}
	}
}
