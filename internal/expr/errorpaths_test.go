package expr

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

// TestParseErrorTaxonomy pins down which error each malformed input
// produces and where it points: error positions are byte offsets (so
// multibyte operators count their UTF-8 length), and each failure mode
// has its own message.
func TestParseErrorTaxonomy(t *testing.T) {
	cases := []struct {
		in      string
		wantPos int
		wantMsg string
	}{
		{"A | B C", 6, "after expression"},
		{"(A | B", 6, "missing closing parenthesis"},
		{"A &", 3, "unexpected end of expression"},
		{"", 0, "unexpected end of expression"},
		{"& A", 0, "unexpected"},
		// "A ∪ " is 6 bytes (∪ is 3), so the bad rune sits at offset 6.
		{"A ∪ ☃", 6, "unexpected"},
	}
	for _, c := range cases {
		_, err := Parse(c.in)
		if err == nil {
			t.Errorf("Parse(%q) succeeded, want error", c.in)
			continue
		}
		var pe *ParseError
		if !errors.As(err, &pe) {
			t.Errorf("Parse(%q) error type %T, want *ParseError", c.in, err)
			continue
		}
		if pe.Pos != c.wantPos {
			t.Errorf("Parse(%q) error position = %d, want %d (%v)", c.in, pe.Pos, c.wantPos, err)
		}
		if !strings.Contains(pe.Msg, c.wantMsg) {
			t.Errorf("Parse(%q) message %q does not mention %q", c.in, pe.Msg, c.wantMsg)
		}
	}
}

// TestParseDeepNesting checks that pathological nesting neither crashes
// the recursive-descent parser nor survives into the canonical form
// (parens group but allocate no nodes).
func TestParseDeepNesting(t *testing.T) {
	const depth = 10_000
	node, err := Parse(strings.Repeat("(", depth) + "A" + strings.Repeat(")", depth))
	if err != nil {
		t.Fatalf("deeply nested parse failed: %v", err)
	}
	if node.String() != "A" {
		t.Fatalf("canonical form %q, want %q", node.String(), "A")
	}
	if _, err := Parse(strings.Repeat("(", depth) + "A"); err == nil {
		t.Fatal("unbalanced deep nesting parsed, want error")
	}
}

// TestCompileTooManyStreamsFromExpression drives the 64-stream compile
// limit from an actual parsed expression (not a hand-built name list):
// Compile(e, Streams(e)) must refuse 65 distinct leaves.
func TestCompileTooManyStreamsFromExpression(t *testing.T) {
	var sb strings.Builder
	for i := 0; i <= MaxCompiledStreams; i++ {
		if i > 0 {
			sb.WriteString(" | ")
		}
		fmt.Fprintf(&sb, "S%02d", i)
	}
	node := MustParse(sb.String())
	names := Streams(node)
	if len(names) != MaxCompiledStreams+1 {
		t.Fatalf("expression has %d streams, want %d", len(names), MaxCompiledStreams+1)
	}
	_, err := Compile(node, names)
	if err == nil || !strings.Contains(err.Error(), "max 64") {
		t.Fatalf("Compile over 65 streams: %v, want the 64-stream limit error", err)
	}
}

// TestCompileChainStackDepth pins the fixed-stack guarantee emit's doc
// comment makes: a maximal right-deep chain still evaluates with an
// operand stack of two, because the deeper subtree is emitted first.
func TestCompileChainStackDepth(t *testing.T) {
	names := make([]string, MaxCompiledStreams)
	for i := range names {
		names[i] = fmt.Sprintf("S%02d", i)
	}
	src := names[len(names)-1]
	for i := len(names) - 2; i >= 0; i-- {
		src = names[i] + " | (" + src + ")"
	}
	prog, err := Compile(MustParse(src), names)
	if err != nil {
		t.Fatalf("Compile right-deep chain: %v", err)
	}
	if prog.depth != 2 {
		t.Errorf("right-deep chain operand stack depth = %d, want 2", prog.depth)
	}
}
