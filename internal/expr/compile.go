package expr

import "fmt"

// MaxCompiledStreams is the largest number of distinct streams a
// compiled Program supports: one bit position per stream in a packed
// uint64 occupancy word.
const MaxCompiledStreams = 64

// tableStreams is the widest expression compiled to a full truth table
// (2^n bits in a single uint64); wider expressions run the postfix
// program instead.
const tableStreams = 6

// Program is a compiled form of a set expression's Boolean mapping
// B(E): stream names are mapped to bit positions in a packed uint64
// occupancy word, and evaluation is either a single truth-table lookup
// (≤ 6 streams) or a short postfix program over a fixed-size stack.
// A Program is immutable after Compile and safe for concurrent use.
type Program struct {
	names    []string // bit position → stream name
	code     []progIns
	depth    int    // max operand-stack depth of code
	cur      int    // stack depth at the current emit point (compile-time only)
	table    uint64 // truth table indexed by occupancy word, if useTable
	useTable bool
}

// progIns is one postfix instruction: the high byte is the opcode, the
// low byte is the operand bit position (opLoad only).
type progIns uint16

const (
	opLoad progIns = iota << 8 // push bit arg of the occupancy word
	opUnion
	opIntersect
	opDiff    // pop y, pop x, push x &^ y (operands in source order)
	opDiffRev // pop y, pop x, push y &^ x (operands emitted reversed)
	opXor
)

// Compile compiles e against a bit assignment: names[k] occupies bit k
// of the occupancy word. names must list every stream e references (it
// may be a superset, e.g. all streams a processor tracks) and at most
// MaxCompiledStreams entries are addressable; otherwise Compile returns
// an error. The usual call is Compile(e, Streams(e)).
func Compile(e Node, names []string) (*Program, error) {
	if len(names) > MaxCompiledStreams {
		return nil, fmt.Errorf("expr: cannot compile over %d streams (max %d)", len(names), MaxCompiledStreams)
	}
	bits := make(map[string]int, len(names))
	for k, name := range names {
		if _, dup := bits[name]; dup {
			return nil, fmt.Errorf("expr: duplicate stream %q in compile name list", name)
		}
		bits[name] = k
	}
	p := &Program{names: append([]string(nil), names...)}
	if err := p.emit(e, bits); err != nil {
		return nil, err
	}
	// For narrow expressions, precompute the full truth table once so
	// Eval is a single shift-and-mask. The table is built by running
	// the just-emitted postfix code over every assignment, so the two
	// strategies cannot diverge.
	if len(names) <= tableStreams {
		for w := uint64(0); w < 1<<len(names); w++ {
			if p.run(w) {
				p.table |= 1 << w
			}
		}
		p.useTable = true
	}
	return p, nil
}

// emit appends postfix code for e. The deeper subtree of every binary
// node is emitted first, which bounds the operand-stack depth by the
// tree's Strahler number — at most log2 of the node count, and never
// more than MaxCompiledStreams for any expression over ≤ 64 distinct
// leaves — so Eval can use a fixed-size stack.
func (p *Program) emit(e Node, bits map[string]int) error {
	switch n := e.(type) {
	case *Stream:
		bit, ok := bits[n.Name]
		if !ok {
			return fmt.Errorf("expr: stream %q missing from compile name list", n.Name)
		}
		p.code = append(p.code, opLoad|progIns(bit))
		p.push(1)
		return nil
	case *Binary:
		first, second := n.L, n.R
		op := opUnion
		switch n.Op {
		case Union:
		case Intersect:
			op = opIntersect
		case Xor:
			op = opXor
		case Diff:
			op = opDiff
		default:
			return fmt.Errorf("expr: unknown operator %d", int(n.Op))
		}
		if nodeDepth(n.R) > nodeDepth(n.L) {
			first, second = n.R, n.L
			if n.Op == Diff {
				op = opDiffRev // difference is the one non-commutative operator
			}
		}
		if err := p.emit(first, bits); err != nil {
			return err
		}
		if err := p.emit(second, bits); err != nil {
			return err
		}
		p.code = append(p.code, op)
		p.push(-1) // two operands popped, one result pushed
		return nil
	default:
		return fmt.Errorf("expr: unknown node type %T", e)
	}
}

// push tracks the operand-stack effect of the last instruction and
// records the high-water mark in p.depth.
func (p *Program) push(delta int) {
	p.cur += delta
	if p.cur > p.depth {
		p.depth = p.cur
	}
}

// nodeDepth returns the operand-stack depth needed to evaluate e with
// deeper-subtree-first ordering (the Strahler number of the tree).
func nodeDepth(e Node) int {
	b, ok := e.(*Binary)
	if !ok {
		return 1
	}
	l, r := nodeDepth(b.L), nodeDepth(b.R)
	if l == r {
		return l + 1
	}
	if l > r {
		return l
	}
	return r
}

// Eval evaluates the compiled Boolean mapping over a packed occupancy
// word: bit k of occ is the flag for stream Names()[k]. It allocates
// nothing and is safe for concurrent use.
func (p *Program) Eval(occ uint64) bool {
	if p.useTable {
		return p.table>>(occ&(1<<len(p.names)-1))&1 == 1
	}
	return p.run(occ)
}

// run interprets the postfix code. Stack depth is bounded by
// MaxCompiledStreams (see emit), so the stack lives in the frame.
func (p *Program) run(occ uint64) bool {
	var stack [MaxCompiledStreams]uint64
	sp := 0
	for _, ins := range p.code {
		switch ins & 0xff00 {
		case opLoad:
			stack[sp] = occ >> (ins & 0xff) & 1
			sp++
		case opUnion:
			sp--
			stack[sp-1] |= stack[sp]
		case opIntersect:
			sp--
			stack[sp-1] &= stack[sp]
		case opDiff:
			sp--
			stack[sp-1] &^= stack[sp]
		case opDiffRev:
			sp--
			stack[sp-1] = stack[sp] &^ stack[sp-1]
		case opXor:
			sp--
			stack[sp-1] ^= stack[sp]
		}
	}
	return stack[0] == 1
}

// Names returns the bit assignment: bit k of the occupancy word is the
// flag for Names()[k].
func (p *Program) Names() []string { return append([]string(nil), p.names...) }

// Bit returns the occupancy-word bit position of a stream name.
func (p *Program) Bit(name string) (int, bool) {
	for k, n := range p.names {
		if n == name {
			return k, true
		}
	}
	return 0, false
}

// NumStreams returns the number of addressable streams (bit width of
// the occupancy word).
func (p *Program) NumStreams() int { return len(p.names) }

// Word packs a flag map into an occupancy word under the program's bit
// assignment — the bridge between the interpreted EvalBool representation
// and the compiled one, used by tests and differential checks.
func (p *Program) Word(flags map[string]bool) uint64 {
	var occ uint64
	for k, name := range p.names {
		if flags[name] {
			occ |= 1 << k
		}
	}
	return occ
}
