package expr

import "testing"

// FuzzParse exercises the tokenizer/parser on arbitrary input: it must
// never panic, and on success the canonical form must reparse to an
// identical tree (print/parse idempotence).
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"A", "A & B", "(A - B) | C", "A ^ B ⊕ C", "A ∪ B ∩ C − D",
		"a UNION b INTERSECT c EXCEPT d XOR e",
		"(((((X)))))", "A &", ")(", "", "42", "A|B&C-D^E",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		node, err := Parse(input)
		if err != nil {
			return // rejection is fine; panics are not
		}
		canon := node.String()
		re, err := Parse(canon)
		if err != nil {
			t.Fatalf("canonical form %q of %q does not reparse: %v", canon, input, err)
		}
		if re.String() != canon {
			t.Fatalf("canonical form not a fixed point: %q → %q", canon, re.String())
		}
	})
}
