package expr

import (
	"strings"
	"testing"

	"setsketch/internal/hashing"
	"setsketch/internal/multiset"
)

func TestEquivalent(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		{"A", "A", true},
		{"A | B", "B | A", true},
		{"A & B", "B & A", true},
		{"A - B", "B - A", false},
		{"A - (B | C)", "(A - B) & (A - C)", true}, // De Morgan
		{"A - (B & C)", "(A - B) | (A - C)", true},
		{"A ^ B", "(A - B) | (B - A)", true}, // xor desugaring
		{"A ^ B", "(A | B) - (A & B)", true},
		{"A & (B | C)", "(A & B) | (A & C)", true}, // distributivity
		{"A & (B | C)", "(A & B) | C", false},
		{"A", "A & A", true},
		{"A", "A | B", false},
		{"A - A", "B - B", true}, // both empty
	}
	for _, c := range cases {
		got, err := Equivalent(MustParse(c.a), MustParse(c.b))
		if err != nil {
			t.Fatalf("Equivalent(%q, %q): %v", c.a, c.b, err)
		}
		if got != c.want {
			t.Errorf("Equivalent(%q, %q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestIsEmpty(t *testing.T) {
	cases := []struct {
		in   string
		want bool
	}{
		{"A", false},
		{"A - A", true},
		{"(A & B) - A", true},
		{"(A & B) - B", true},
		{"A & B", false},
		{"A ^ A", true},
		{"(A - B) & B", true},
		{"(A - B) & (B - A)", true},
	}
	for _, c := range cases {
		got, err := IsEmpty(MustParse(c.in))
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("IsEmpty(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestIsUniverse(t *testing.T) {
	cases := []struct {
		in   string
		want bool
	}{
		{"A", true}, // single stream: the union IS A
		{"A | B", true},
		{"A | (B - A)", true},
		{"A & B", false},
		{"A - B", false},
		{"A | B | C", true},
		{"(A | B) & (A | B | C)", false}, // misses C-only elements
	}
	for _, c := range cases {
		got, err := IsUniverse(MustParse(c.in))
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("IsUniverse(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestAnalysisStreamLimit(t *testing.T) {
	// Build an expression over 21 streams.
	var sb strings.Builder
	for i := 0; i < 21; i++ {
		if i > 0 {
			sb.WriteString(" | ")
		}
		sb.WriteString("s")
		sb.WriteByte(byte('a' + i))
	}
	n := MustParse(sb.String())
	if _, err := IsEmpty(n); err == nil {
		t.Error("21-stream analysis accepted")
	}
	if _, err := Equivalent(n, n); err == nil {
		t.Error("21-stream equivalence accepted")
	}
}

// TestEquivalenceMatchesSetEvaluation cross-checks the truth-table
// decision against exact set evaluation on random inputs: equivalent
// expressions must produce identical sets, non-equivalent ones must
// differ on some random input (statistically).
func TestEquivalenceMatchesSetEvaluation(t *testing.T) {
	rng := hashing.NewRNG(9)
	names := []string{"A", "B", "C"}
	for trial := 0; trial < 200; trial++ {
		e1 := randomExpr(rng, names, 3)
		e2 := randomExpr(rng, names, 3)
		eq, err := Equivalent(e1, e2)
		if err != nil {
			t.Fatal(err)
		}
		if !eq {
			continue
		}
		// Equivalent per truth table ⇒ identical sets on any input.
		sets := randomSets(rng, names)
		s1, s2 := e1.EvalSet(sets), e2.EvalSet(sets)
		if len(s1) != len(s2) {
			t.Fatalf("%s ≡ %s but sets differ (%d vs %d)", e1, e2, len(s1), len(s2))
		}
		for e := range s1 {
			if _, ok := s2[e]; !ok {
				t.Fatalf("%s ≡ %s but element %d only in the first", e1, e2, e)
			}
		}
	}
}

func randomSets(rng *hashing.RNG, names []string) map[string]multiset.Set {
	sets := make(map[string]multiset.Set, len(names))
	for _, name := range names {
		s := make(multiset.Set)
		for e := uint64(0); e < 24; e++ {
			if rng.Float64() < 0.4 {
				s[e] = struct{}{}
			}
		}
		sets[name] = s
	}
	return sets
}
