//go:build amd64

package hashing

// AVX-512 path for PairBitBank.PackColumns. The batch digest kernel
// spends most of its time evaluating r·s pairwise hashes a_j·x+b_j over
// GF(2^61−1); with 8 elements per ZMM lane and the 61-bit operands
// split into 32-bit halves for VPMULUDQ, the whole fold sequence runs
// in ~3 instructions per evaluation instead of ~17 scalar ones. The
// assembly computes the same canonical residues as the pure-Go loop —
// bit-identical by TestPackColumnsAVX512MatchesGeneric and the digest
// fuzz targets — and is gated on runtime AVX-512F detection with the
// pure-Go loop as the fallback (and as the tail handler for batch
// lengths that are not a multiple of 8).

// packColumnsAsm evaluates s functions with halved coefficients
// alo/ahi and offsets bs at the n reduced inputs xs (n a multiple of
// 8, n ≥ 8, s ≥ 1), ORing each element's packed bit vector into dst at
// position shift. Implemented in pack_amd64.s.
//
//go:noescape
func packColumnsAsm(alo, ahi, bs *uint64, s int, xs, dst *uint64, n int, shift uint64)

// cpuidAsm and xgetbvAsm are thin wrappers over the CPUID and XGETBV
// instructions (pack_amd64.s).
func cpuidAsm(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
func xgetbvAsm() (eax, edx uint32)

// useAVX512 gates the assembly kernel; set at init, clearable in tests
// to exercise the generic path on AVX-512 hosts.
var useAVX512 = detectAVX512()

// detectAVX512 reports whether the CPU and OS support the AVX-512F
// instructions the kernel uses: OSXSAVE with XMM/YMM/opmask/ZMM state
// enabled in XCR0, plus the AVX512F feature bit.
func detectAVX512() bool {
	maxLeaf, _, _, _ := cpuidAsm(0, 0)
	if maxLeaf < 7 {
		return false
	}
	_, _, ecx1, _ := cpuidAsm(1, 0)
	const osxsave = 1 << 27
	if ecx1&osxsave == 0 {
		return false
	}
	xlo, _ := xgetbvAsm()
	// XCR0: SSE (1), AVX (2), opmask (5), ZMM_Hi256 (6), Hi16_ZMM (7).
	const needed = 1<<1 | 1<<2 | 1<<5 | 1<<6 | 1<<7
	if xlo&needed != needed {
		return false
	}
	_, ebx7, _, _ := cpuidAsm(7, 0)
	const avx512f = 1 << 16
	return ebx7&avx512f != 0
}
