package hashing

// RNG is a small, fast, deterministic pseudo-random generator
// (splitmix64). It exists so that hash-function construction — the
// "stored coins" of the distributed model — does not depend on
// math/rand's global state or version-dependent stream, and so that a
// (master seed, index) pair always derives the same coins on every
// site and every run.
//
// RNG is not safe for concurrent use; derive independent children with
// DeriveSeed instead of sharing one instance.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next 64-bit value of the splitmix64 sequence.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64n returns a value uniform on [0, n) using rejection sampling,
// so the result is exactly uniform for every n > 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("hashing: Uint64n(0)")
	}
	// Largest multiple of n that fits in a uint64; values at or above
	// it are rejected to avoid modulo bias.
	limit := (^uint64(0)) - (^uint64(0))%n
	for {
		v := r.Uint64()
		if v < limit {
			return v % n
		}
	}
}

// Float64 returns a value uniform on [0, 1) with 53 bits of precision.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a value uniform on [0, n).
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("hashing: Intn with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Perm returns a random permutation of [0, n) (Fisher–Yates).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// DeriveSeed deterministically derives a child seed from a master seed
// and a sequence of indices. It is the seed-tree primitive behind the
// stored-coins model: DeriveSeed(master, copy, level) yields the same
// coins at every site. Derivation mixes each index through splitmix64,
// so children with different paths are statistically independent.
func DeriveSeed(master uint64, path ...uint64) uint64 {
	s := master
	for _, p := range path {
		r := NewRNG(s ^ (p+1)*0x9e3779b97f4a7c15)
		s = r.Uint64()
	}
	return s
}
