// Package hashing provides the limited-independence hash-function families
// and deterministic seed derivation that 2-level hash sketches are built on.
//
// The paper's analysis (Ganguly, Garofalakis, Rastogi; SIGMOD 2003, §3.6)
// requires first-level hash functions that are Θ(log 1/ε)-wise independent
// and second-level functions that are pairwise independent. Both are
// realized here as degree-d polynomials over the Mersenne-prime field
// GF(2^61−1): a polynomial with d independently random coefficients is
// d-wise independent, and evaluation costs d−1 multiply-adds.
//
// All randomness is derived deterministically from 64-bit seeds via a
// splitmix64 mixer. Deterministic derivation is what implements the
// "distributed-streams model with stored coins" (Gibbons–Tirthapura):
// two sites that share a master seed construct bit-identical hash
// functions and therefore mergeable, aligned sketches.
package hashing

import (
	"fmt"
	"math/bits"
)

// MersennePrime is 2^61 − 1, the field modulus used by all polynomial
// hash families in this package.
const MersennePrime uint64 = (1 << 61) - 1

// FieldBits is the bit width of polynomial hash outputs. A first-level
// hash value is uniform over [0, MersennePrime), so its LSB index is
// (almost exactly) geometric over {0, …, FieldBits−1}.
const FieldBits = 61

// Func is a hash function from the update-stream element domain into
// [0, 2^Bits()). Implementations must be deterministic and safe for
// concurrent use (they are immutable after construction).
type Func interface {
	// Hash maps an element to its hash value.
	Hash(x uint64) uint64
	// Bits reports the output width in bits.
	Bits() int
}

// BitFunc is a hash function onto the binary domain {0, 1}, used for the
// second level of a 2-level hash sketch.
type BitFunc interface {
	// Bit maps an element to 0 or 1.
	Bit(x uint64) int
}

// mulmod61 computes a*b mod 2^61−1 without overflow using a 128-bit
// intermediate product. For p = 2^61−1, (hi, lo) with hi = ⌊ab/2^64⌋
// satisfies ab ≡ hi·2^3·(2^61 mod p) + lo ≡ 8·hi + lo (mod p) after
// folding, because 2^64 ≡ 2^3 (mod 2^61−1).
func mulmod61(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	// ab = hi·2^64 + lo ≡ 8·hi + lo (mod 2^61−1).
	r := 8*hi + (lo >> 61) + (lo & MersennePrime)
	// 8*hi can overflow only if hi ≥ 2^61, impossible since a, b < 2^61.
	r = (r >> 61) + (r & MersennePrime)
	if r >= MersennePrime {
		r -= MersennePrime
	}
	return r
}

// addmod61 computes a+b mod 2^61−1 for a, b < 2^61−1.
func addmod61(a, b uint64) uint64 {
	r := a + b
	if r >= MersennePrime {
		r -= MersennePrime
	}
	return r
}

// Poly is a degree-(d−1) polynomial hash over GF(2^61−1). With d
// independently random coefficients it is a d-wise independent family:
// for any d distinct inputs the outputs are independent and uniform
// over the field. Poly implements Func.
type Poly struct {
	// coef holds the polynomial coefficients, constant term first.
	// All are in [0, MersennePrime); the leading coefficient is nonzero
	// so distinct functions of the same degree remain distinct.
	coef []uint64
}

// NewPoly constructs a degree-(wise−1) polynomial hash function — a member
// of a wise-wise independent family — with coefficients drawn from the
// given seed. wise must be at least 1; wise = 2 gives the classic pairwise
// linear family a·x + b.
func NewPoly(seed uint64, wise int) *Poly {
	if wise < 1 {
		panic(fmt.Sprintf("hashing: polynomial independence degree %d < 1", wise))
	}
	rng := NewRNG(seed)
	coef := make([]uint64, wise)
	for i := range coef {
		coef[i] = rng.Uint64n(MersennePrime)
	}
	// Force a nonzero leading coefficient so the map is a genuine
	// degree-(wise−1) polynomial (required for injectivity arguments).
	if wise > 1 && coef[wise-1] == 0 {
		coef[wise-1] = 1
	}
	return &Poly{coef: coef}
}

// Hash evaluates the polynomial at x (reduced into the field) by
// Horner's rule.
func (p *Poly) Hash(x uint64) uint64 {
	// Elements come from [M] with M ≤ 2^32 in the paper's model, so the
	// reduction is usually a no-op.
	return p.HashReduced(Reduce61(x))
}

// HashReduced evaluates the polynomial at an input already reduced into
// the field, skipping the entry reduction Hash performs. The digest and
// family update paths reduce a stream element once and evaluate many
// polynomials at it.
func (p *Poly) HashReduced(x uint64) uint64 {
	acc := p.coef[len(p.coef)-1]
	for i := len(p.coef) - 2; i >= 0; i-- {
		acc = addmod61(mulmod61(acc, x), p.coef[i])
	}
	return acc
}

// HashReducedBatch evaluates the polynomial at every reduced input in
// xs, writing dst[k] = HashReduced(xs[k]). Horner's rule is a serial
// multiply-add chain per element, so evaluating one element at a time
// leaves the multiplier idle between dependent steps; the batch form
// runs four independent chains at once with their accumulators held in
// registers (unroll-and-jam), filling those stalls, and loads each
// coefficient once per four elements instead of once per element.
// dst and xs must have equal length and may not alias.
func (p *Poly) HashReducedBatch(dst, xs []uint64) {
	if len(xs) == 0 {
		return
	}
	_ = dst[len(xs)-1]
	top := p.coef[len(p.coef)-1]
	k := 0
	for ; k+4 <= len(xs); k += 4 {
		x0, x1, x2, x3 := xs[k], xs[k+1], xs[k+2], xs[k+3]
		a0, a1, a2, a3 := top, top, top, top
		for i := len(p.coef) - 2; i >= 0; i-- {
			c := p.coef[i]
			a0 = addmod61(mulmod61(a0, x0), c)
			a1 = addmod61(mulmod61(a1, x1), c)
			a2 = addmod61(mulmod61(a2, x2), c)
			a3 = addmod61(mulmod61(a3, x3), c)
		}
		dst[k], dst[k+1], dst[k+2], dst[k+3] = a0, a1, a2, a3
	}
	for ; k < len(xs); k++ {
		dst[k] = p.HashReduced(xs[k])
	}
}

// Bits reports the output width (61 for the Mersenne field).
func (p *Poly) Bits() int { return FieldBits }

// Wise reports the independence degree of the family this function was
// drawn from.
func (p *Poly) Wise() int { return len(p.coef) }

// PairBit is a pairwise-independent binary hash g: [M] → {0, 1}, the
// second-level family of a 2-level hash sketch (Lemma 3.1 needs only
// pairwise independence). It evaluates a random linear map over
// GF(2^61−1) and returns the high bit of the field value; the bias of
// that bit is < 2^−60 and the pairwise independence of the underlying
// field values carries over.
type PairBit struct {
	a, b uint64
}

// NewPairBit constructs a pairwise-independent binary hash from seed.
func NewPairBit(seed uint64) *PairBit {
	rng := NewRNG(seed)
	a := rng.Uint64n(MersennePrime-1) + 1 // nonzero slope
	b := rng.Uint64n(MersennePrime)
	return &PairBit{a: a, b: b}
}

// Bit returns the second-level bucket (0 or 1) for x.
func (g *PairBit) Bit(x uint64) int {
	return g.BitReduced(Reduce61(x))
}

// BitReduced is Bit for an input already reduced into the field. The
// sketch update hot path evaluates s second-level functions per stream
// item; reducing the element once and calling BitReduced avoids s−1
// redundant reductions.
func (g *PairBit) BitReduced(x uint64) int {
	v := addmod61(mulmod61(g.a, x), g.b)
	return int(v >> (FieldBits - 1))
}

// PairBitBank is a bank of pairwise-independent bit functions with the
// (a, b) coefficient pairs stored in two flat arrays instead of s
// separately allocated PairBit objects. The batch digest kernel walks
// all s functions for every element of a batch; with the boxed layout
// that is s pointer chases per element, where the bank's contiguous
// coefficient arrays stream through the prefetcher. Evaluation is
// bit-identical to calling each PairBit in turn.
type PairBitBank struct {
	a, b []uint64
	// alo/ahi are a's 32-bit halves, precomputed for the SIMD kernel
	// (whose 32×32→64 multiplies want split operands).
	alo, ahi []uint64
}

// NewPairBitBank flattens gs into a bank. len(gs) must be ≤ 64 so the
// packed bit vector fits one word.
func NewPairBitBank(gs []*PairBit) *PairBitBank {
	if len(gs) > 64 {
		panic(fmt.Sprintf("hashing: pair-bit bank of %d functions does not pack into a word", len(gs)))
	}
	bk := &PairBitBank{
		a:   make([]uint64, len(gs)),
		b:   make([]uint64, len(gs)),
		alo: make([]uint64, len(gs)),
		ahi: make([]uint64, len(gs)),
	}
	for j, g := range gs {
		bk.a[j], bk.b[j] = g.a, g.b
		bk.alo[j], bk.ahi[j] = g.a&0xffffffff, g.a>>32
	}
	return bk
}

// Len reports the number of functions in the bank.
func (bk *PairBitBank) Len() int { return len(bk.a) }

// PackColumns evaluates every function in the bank at every reduced
// input in xs and ORs function j's bit into dst[k] at position shift+j
// — PackBits for a whole batch. The inner loop fuses the multiply and
// the addition into one modular reduction: with a, x, b < p the value
// u = 8·hi + (lo>>61) + (lo&p) + b is < 2^63 and ≡ a·x+b (mod p), so
// one fold plus one conditional subtract lands in [0, p) exactly as
// addmod61(mulmod61(a, x), b) does, three ALU ops cheaper. The packed
// word accumulates in a register; dst is touched once per element.
// dst and xs must have equal length and may not alias.
func (bk *PairBitBank) PackColumns(dst, xs []uint64, shift uint) {
	if len(xs) == 0 || len(bk.a) == 0 {
		return
	}
	_ = dst[len(xs)-1]
	start := 0
	if useAVX512 && len(xs) >= 8 {
		start = len(xs) &^ 7
		packColumnsAsm(&bk.alo[0], &bk.ahi[0], &bk.b[0], len(bk.a),
			&xs[0], &dst[0], start, uint64(shift))
	}
	bk.packColumnsGeneric(dst[start:], xs[start:], shift)
}

// packColumnsGeneric is the portable PackColumns loop, also used for
// the tail the 8-wide assembly kernel leaves behind.
func (bk *PairBitBank) packColumnsGeneric(dst, xs []uint64, shift uint) {
	as := bk.a
	bs := bk.b[:len(as)] // one bounds proof for both coefficient loads
	for k, x := range xs {
		var w uint64
		// Bits accumulate high-to-low through w<<1|bit so function j's
		// bit ends at position j without a variable shift per step.
		for j := len(as) - 1; j >= 0; j-- {
			hi, lo := bits.Mul64(as[j], x)
			u := 8*hi + (lo >> 61) + (lo & MersennePrime) + bs[j]
			v := (u >> 61) + (u & MersennePrime)
			if v >= MersennePrime {
				v -= MersennePrime
			}
			w = w<<1 | v>>(FieldBits-1)
		}
		dst[k] |= w << shift
	}
}

// BitColumnReduced evaluates g at every reduced input in xs and ORs the
// resulting bit into dst[k] at position shift — one second-level
// function's column of a batch of digest words. The digest batch kernel
// iterates functions outer and elements inner so each function's (a, b)
// pair stays in registers across the whole batch; callers are expected
// to have zeroed (or bucket-initialized) dst beforehand. dst and xs
// must have equal length and may not alias.
func (g *PairBit) BitColumnReduced(dst, xs []uint64, shift uint) {
	if len(xs) == 0 {
		return
	}
	_ = dst[len(xs)-1]
	a, b := g.a, g.b
	for k, x := range xs {
		v := addmod61(mulmod61(a, x), b)
		dst[k] |= (v >> (FieldBits - 1)) << shift
	}
}

// PackBits evaluates every function in gs at the reduced input x and
// packs the resulting bits into one word, g[j]'s bit at position j.
// This is the digest builder's batch form of BitReduced: the sketch
// kernel evaluates all s second-level functions for an element exactly
// once and replays the packed word thereafter. len(gs) must be ≤ 64.
func PackBits(gs []*PairBit, x uint64) uint64 {
	var w uint64
	for j, g := range gs {
		v := addmod61(mulmod61(g.a, x), g.b)
		w |= (v >> (FieldBits - 1)) << uint(j)
	}
	return w
}

// Reduce61 maps an arbitrary 64-bit value into [0, 2^61−1).
func Reduce61(x uint64) uint64 {
	if x >= MersennePrime {
		x = (x >> 61) + (x & MersennePrime)
		if x >= MersennePrime {
			x -= MersennePrime
		}
	}
	return x
}

// MultiplyShift is Dietzfelbinger's 2-universal multiply-shift hash on
// 64-bit inputs. It is the cheapest family in this package (one multiply)
// and is offered as a fast alternative first level where strict t-wise
// independence is not required (e.g. baselines and ablations).
type MultiplyShift struct {
	a    uint64 // odd multiplier
	bits int    // output width
}

// NewMultiplyShift constructs a multiply-shift function with the given
// output width in (0, 64].
func NewMultiplyShift(seed uint64, outBits int) *MultiplyShift {
	if outBits <= 0 || outBits > 64 {
		panic(fmt.Sprintf("hashing: multiply-shift output width %d out of range (0, 64]", outBits))
	}
	rng := NewRNG(seed)
	return &MultiplyShift{a: rng.Uint64() | 1, bits: outBits}
}

// Hash maps x to a value of Bits() bits.
func (m *MultiplyShift) Hash(x uint64) uint64 {
	return (m.a * x) >> (64 - uint(m.bits))
}

// Bits reports the configured output width.
func (m *MultiplyShift) Bits() int { return m.bits }

// LSB returns the index of the least-significant set bit of v, the
// first-level bucket operator of the paper: for h uniform on [2^w],
// Pr[LSB(h(x)) = l] = 2^−(l+1). LSB(0) is defined as width−1 so that a
// zero hash lands in the last (rarest) bucket instead of out of range.
func LSB(v uint64, width int) int {
	if v == 0 {
		return width - 1
	}
	l := bits.TrailingZeros64(v)
	if l >= width {
		return width - 1
	}
	return l
}
