//go:build !amd64

package hashing

// Non-amd64 hosts always take the pure-Go PackColumns loop.
var useAVX512 = false

// packColumnsAsm is never called when useAVX512 is false; this stub
// keeps the dispatch site compiling on every architecture.
func packColumnsAsm(alo, ahi, bs *uint64, s int, xs, dst *uint64, n int, shift uint64) {
	panic("hashing: packColumnsAsm on non-amd64 host")
}
