package hashing

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMulmod61MatchesBigArithmetic(t *testing.T) {
	// Cross-check the folded 128-bit reduction against a slow but
	// obviously correct implementation via repeated addition doubling.
	slow := func(a, b uint64) uint64 {
		a %= MersennePrime
		b %= MersennePrime
		var acc uint64
		for b > 0 {
			if b&1 == 1 {
				acc = addmod61(acc, a)
			}
			a = addmod61(a, a)
			b >>= 1
		}
		return acc
	}
	cases := [][2]uint64{
		{0, 0},
		{1, 1},
		{MersennePrime - 1, MersennePrime - 1},
		{MersennePrime - 1, 2},
		{1 << 60, 1 << 60},
		{123456789, 987654321},
	}
	for _, c := range cases {
		if got, want := mulmod61(c[0], c[1]), slow(c[0], c[1]); got != want {
			t.Errorf("mulmod61(%d, %d) = %d, want %d", c[0], c[1], got, want)
		}
	}
	rng := NewRNG(7)
	for i := 0; i < 2000; i++ {
		a, b := rng.Uint64n(MersennePrime), rng.Uint64n(MersennePrime)
		if got, want := mulmod61(a, b), slow(a, b); got != want {
			t.Fatalf("mulmod61(%d, %d) = %d, want %d", a, b, got, want)
		}
	}
}

func TestMulmod61Properties(t *testing.T) {
	commutes := func(a, b uint64) bool {
		return mulmod61(a%MersennePrime, b%MersennePrime) == mulmod61(b%MersennePrime, a%MersennePrime)
	}
	if err := quick.Check(commutes, nil); err != nil {
		t.Error(err)
	}
	identity := func(a uint64) bool {
		a %= MersennePrime
		return mulmod61(a, 1) == a
	}
	if err := quick.Check(identity, nil); err != nil {
		t.Error(err)
	}
	distributes := func(a, b, c uint64) bool {
		a, b, c = a%MersennePrime, b%MersennePrime, c%MersennePrime
		return mulmod61(a, addmod61(b, c)) == addmod61(mulmod61(a, b), mulmod61(a, c))
	}
	if err := quick.Check(distributes, nil); err != nil {
		t.Error(err)
	}
}

func TestPolyDeterministic(t *testing.T) {
	p1 := NewPoly(42, 4)
	p2 := NewPoly(42, 4)
	for x := uint64(0); x < 1000; x++ {
		if p1.Hash(x) != p2.Hash(x) {
			t.Fatalf("same-seed polynomials disagree at x=%d", x)
		}
	}
	p3 := NewPoly(43, 4)
	same := 0
	for x := uint64(0); x < 1000; x++ {
		if p1.Hash(x) == p3.Hash(x) {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different-seed polynomials agree on %d of 1000 inputs", same)
	}
}

func TestPolyOutputInField(t *testing.T) {
	for _, wise := range []int{1, 2, 3, 8, 16} {
		p := NewPoly(uint64(wise)*17, wise)
		if p.Wise() != wise {
			t.Errorf("Wise() = %d, want %d", p.Wise(), wise)
		}
		rng := NewRNG(99)
		for i := 0; i < 1000; i++ {
			x := rng.Uint64()
			if v := p.Hash(x); v >= MersennePrime {
				t.Fatalf("wise=%d: Hash(%d) = %d outside field", wise, x, v)
			}
		}
	}
}

func TestPolyDegreeValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewPoly(seed, 0) did not panic")
		}
	}()
	NewPoly(1, 0)
}

// TestPolyUniformity verifies that hash outputs are close to uniform by
// bucketing the top bits and applying a chi-squared bound.
func TestPolyUniformity(t *testing.T) {
	const (
		buckets = 64
		n       = 64 * 1024
	)
	p := NewPoly(12345, 2)
	counts := make([]int, buckets)
	for x := uint64(0); x < n; x++ {
		counts[p.Hash(x)>>(FieldBits-6)]++
	}
	expected := float64(n) / buckets
	var chi2 float64
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// 63 degrees of freedom; mean 63, sd ≈ 11.2. Allow a wide margin.
	if chi2 > 120 {
		t.Errorf("chi-squared = %.1f, far from uniform (df = 63)", chi2)
	}
}

// TestLSBGeometric verifies the first-level bucket distribution
// Pr[LSB(h(x)) = l] ≈ 2^−(l+1), which the estimator analysis relies on.
func TestLSBGeometric(t *testing.T) {
	const n = 1 << 17
	p := NewPoly(2026, 8)
	counts := make([]int, FieldBits)
	for x := uint64(0); x < n; x++ {
		counts[LSB(p.Hash(x), FieldBits)]++
	}
	for l := 0; l < 8; l++ {
		want := float64(n) / math.Pow(2, float64(l+1))
		got := float64(counts[l])
		if math.Abs(got-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: count %.0f, want ≈ %.0f", l, got, want)
		}
	}
}

// TestPairBitPairwiseIndependence estimates, for random input pairs, the
// probability that a fresh PairBit maps both to the same bit. Pairwise
// independence predicts exactly 1/2.
func TestPairBitPairwiseIndependence(t *testing.T) {
	const trials = 20000
	rng := NewRNG(5)
	same := 0
	for i := 0; i < trials; i++ {
		g := NewPairBit(rng.Uint64())
		x := rng.Uint64n(1 << 32)
		y := rng.Uint64n(1 << 32)
		for y == x {
			y = rng.Uint64n(1 << 32)
		}
		if g.Bit(x) == g.Bit(y) {
			same++
		}
	}
	frac := float64(same) / trials
	if math.Abs(frac-0.5) > 0.015 {
		t.Errorf("collision fraction %.4f, want ≈ 0.5 (pairwise independence)", frac)
	}
}

func TestPairBitBalance(t *testing.T) {
	g := NewPairBit(31337)
	ones := 0
	const n = 1 << 16
	for x := uint64(0); x < n; x++ {
		b := g.Bit(x)
		if b != 0 && b != 1 {
			t.Fatalf("Bit returned %d", b)
		}
		ones += b
	}
	frac := float64(ones) / n
	if math.Abs(frac-0.5) > 0.02 {
		t.Errorf("ones fraction %.4f, want ≈ 0.5", frac)
	}
}

func TestMultiplyShift(t *testing.T) {
	m := NewMultiplyShift(77, 32)
	if m.Bits() != 32 {
		t.Fatalf("Bits() = %d, want 32", m.Bits())
	}
	for x := uint64(0); x < 1000; x++ {
		if v := m.Hash(x); v >= 1<<32 {
			t.Fatalf("Hash(%d) = %d exceeds 32 bits", x, v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("NewMultiplyShift with width 0 did not panic")
		}
	}()
	NewMultiplyShift(1, 0)
}

func TestLSBEdgeCases(t *testing.T) {
	if got := LSB(0, 61); got != 60 {
		t.Errorf("LSB(0, 61) = %d, want 60", got)
	}
	if got := LSB(1, 61); got != 0 {
		t.Errorf("LSB(1, 61) = %d, want 0", got)
	}
	if got := LSB(8, 61); got != 3 {
		t.Errorf("LSB(8, 61) = %d, want 3", got)
	}
	// A value whose trailing zeros exceed the width clamps to width−1.
	if got := LSB(1<<40, 8); got != 7 {
		t.Errorf("LSB(1<<40, 8) = %d, want 7", got)
	}
}

func TestRNGUint64nUniform(t *testing.T) {
	rng := NewRNG(11)
	const n, buckets = 30000, 10
	counts := make([]int, buckets)
	for i := 0; i < n; i++ {
		counts[rng.Uint64n(buckets)]++
	}
	for b, c := range counts {
		want := float64(n) / buckets
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("bucket %d: %d draws, want ≈ %.0f", b, c, want)
		}
	}
}

func TestRNGPanics(t *testing.T) {
	rng := NewRNG(1)
	for name, fn := range map[string]func(){
		"Uint64n(0)": func() { rng.Uint64n(0) },
		"Intn(0)":    func() { rng.Intn(0) },
		"Intn(-1)":   func() { rng.Intn(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestRNGPerm(t *testing.T) {
	rng := NewRNG(3)
	p := rng.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("Perm produced invalid or duplicate value %d", v)
		}
		seen[v] = true
	}
}

func TestDeriveSeedIndependence(t *testing.T) {
	// Same path → same seed; different path → different seed.
	if DeriveSeed(1, 2, 3) != DeriveSeed(1, 2, 3) {
		t.Error("DeriveSeed is not deterministic")
	}
	seen := make(map[uint64]bool)
	for i := uint64(0); i < 1000; i++ {
		s := DeriveSeed(42, i)
		if seen[s] {
			t.Fatalf("DeriveSeed collision at index %d", i)
		}
		seen[s] = true
	}
	if DeriveSeed(1, 0) == DeriveSeed(2, 0) {
		t.Error("different masters derive the same child seed")
	}
	// Path depth matters: (a, b) must differ from (b, a) in general.
	if DeriveSeed(9, 1, 2) == DeriveSeed(9, 2, 1) {
		t.Error("DeriveSeed ignores path order")
	}
}

func TestFloat64Range(t *testing.T) {
	rng := NewRNG(8)
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		f := rng.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0, 1)", f)
		}
		sum += f
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean of Float64 draws = %.4f, want ≈ 0.5", mean)
	}
}

// TestPolyTwiseIndependencePairs spot-checks pairwise behaviour of the
// degree-8 family used as the default first level: over random function
// draws, Pr[h(x) ≡ h(y) in top bit] ≈ 1/2.
func TestPolyTwiseIndependencePairs(t *testing.T) {
	const trials = 8000
	rng := NewRNG(13)
	same := 0
	for i := 0; i < trials; i++ {
		p := NewPoly(rng.Uint64(), 8)
		x, y := rng.Uint64n(1<<32), rng.Uint64n(1<<32)
		for y == x {
			y = rng.Uint64n(1 << 32)
		}
		if p.Hash(x)>>(FieldBits-1) == p.Hash(y)>>(FieldBits-1) {
			same++
		}
	}
	frac := float64(same) / trials
	if math.Abs(frac-0.5) > 0.025 {
		t.Errorf("top-bit agreement %.4f, want ≈ 0.5", frac)
	}
}

func BenchmarkPolyHashDegree2(b *testing.B) { benchPoly(b, 2) }
func BenchmarkPolyHashDegree8(b *testing.B) { benchPoly(b, 8) }

func benchPoly(b *testing.B, wise int) {
	p := NewPoly(1, wise)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= p.Hash(uint64(i))
	}
	_ = sink
}

func BenchmarkPairBit(b *testing.B) {
	g := NewPairBit(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink ^= g.Bit(uint64(i))
	}
	_ = sink
}

// TestHashReducedMatchesHash: HashReduced on a pre-reduced input is the
// same function as Hash on the raw input — the contract the update
// kernel relies on when hoisting the reduction out of per-copy loops.
func TestHashReducedMatchesHash(t *testing.T) {
	p := NewPoly(77, 8)
	rng := NewRNG(5)
	for i := 0; i < 2000; i++ {
		x := rng.Uint64()
		if got, want := p.HashReduced(Reduce61(x)), p.Hash(x); got != want {
			t.Fatalf("HashReduced(Reduce61(%#x)) = %d, Hash = %d", x, got, want)
		}
	}
}

// TestPackBitsMatchesBitReduced: bit j of the packed word must equal
// g_j's individual evaluation, for every width up to a full word.
func TestPackBitsMatchesBitReduced(t *testing.T) {
	for _, n := range []int{1, 2, 32, 58, 64} {
		gs := make([]*PairBit, n)
		for j := range gs {
			gs[j] = NewPairBit(DeriveSeed(9, uint64(j)))
		}
		rng := NewRNG(uint64(n))
		for i := 0; i < 500; i++ {
			x := Reduce61(rng.Uint64())
			w := PackBits(gs, x)
			for j, g := range gs {
				if got, want := int(w>>uint(j))&1, g.BitReduced(x); got != want {
					t.Fatalf("n=%d: packed bit %d = %d, BitReduced = %d (x=%#x)", n, j, got, want, x)
				}
			}
			if n < 64 && w>>uint(n) != 0 {
				t.Fatalf("n=%d: PackBits set bits above position %d: %#x", n, n-1, w)
			}
		}
	}
}

// TestHashReducedBatchMatchesScalar: the coefficient-outer batch
// evaluation must be bit-identical to per-element Horner for every
// independence degree and batch size, including empty and length-1
// batches.
func TestHashReducedBatchMatchesScalar(t *testing.T) {
	for _, wise := range []int{1, 2, 4, 8, 16} {
		p := NewPoly(DeriveSeed(31, uint64(wise)), wise)
		rng := NewRNG(uint64(wise) * 7)
		for _, n := range []int{0, 1, 2, 3, 64, 256, 1000} {
			xs := make([]uint64, n)
			for k := range xs {
				xs[k] = Reduce61(rng.Uint64())
			}
			dst := make([]uint64, n)
			p.HashReducedBatch(dst, xs)
			for k, x := range xs {
				if got, want := dst[k], p.HashReduced(x); got != want {
					t.Fatalf("wise=%d n=%d: batch[%d] = %d, scalar = %d (x=%#x)", wise, n, k, got, want, x)
				}
			}
		}
	}
}

// TestBitColumnReducedMatchesScalar: the column form must set exactly
// the scalar bit at the requested position and leave other bits alone.
func TestBitColumnReducedMatchesScalar(t *testing.T) {
	rng := NewRNG(44)
	for _, shift := range []uint{0, 6, 31, 63} {
		g := NewPairBit(DeriveSeed(12, uint64(shift)))
		xs := make([]uint64, 300)
		for k := range xs {
			xs[k] = Reduce61(rng.Uint64())
		}
		dst := make([]uint64, len(xs))
		base := uint64(0xa5) &^ (1 << shift) // pre-existing bits must survive
		for k := range dst {
			dst[k] = base
		}
		g.BitColumnReduced(dst, xs, shift)
		for k, x := range xs {
			want := base | uint64(g.BitReduced(x))<<shift
			if dst[k] != want {
				t.Fatalf("shift=%d: dst[%d] = %#x, want %#x (x=%#x)", shift, k, dst[k], want, x)
			}
		}
		g.BitColumnReduced(nil, nil, shift) // empty batch is a no-op
	}
}

// TestPackColumnsMatchesPackBits: the flattened-bank batch evaluation
// (including its fused modular reduction) must reproduce PackBits
// bit-for-bit, including at field boundary values.
func TestPackColumnsMatchesPackBits(t *testing.T) {
	rng := NewRNG(2)
	for _, s := range []int{1, 2, 7, 32, 58, 64} {
		gs := make([]*PairBit, s)
		for j := range gs {
			gs[j] = NewPairBit(DeriveSeed(3, uint64(s), uint64(j)))
		}
		bk := NewPairBitBank(gs)
		if bk.Len() != s {
			t.Fatalf("bank len %d, want %d", bk.Len(), s)
		}
		xs := []uint64{0, 1, 2, MersennePrime - 1, MersennePrime - 2, 1 << 60, (1 << 61) - 2}
		for i := 0; i < 4000; i++ {
			xs = append(xs, Reduce61(rng.Uint64()))
		}
		for _, shift := range []uint{0, 6} {
			dst := make([]uint64, len(xs))
			for k := range dst {
				dst[k] = 1 // pre-existing low bit must survive shift>0
			}
			bk.PackColumns(dst, xs, shift)
			for k, x := range xs {
				want := uint64(1) | PackBits(gs, x)<<shift
				if shift == 0 {
					want = 1 | PackBits(gs, x)
				}
				if dst[k] != want {
					t.Fatalf("s=%d shift=%d: PackColumns[%d] = %#x, want %#x (x=%#x)", s, shift, k, dst[k], want, x)
				}
			}
		}
	}
}

// TestPackColumnsAVX512MatchesGeneric: on hosts with the assembly
// kernel, both PackColumns paths must agree bit-for-bit across shapes,
// shifts, boundary inputs, and batch lengths straddling the 8-wide
// blocking (tails exercise the generic loop after the kernel).
func TestPackColumnsAVX512MatchesGeneric(t *testing.T) {
	if !HasAVX512ForTest() {
		t.Skip("no AVX-512 on this host")
	}
	rng := NewRNG(17)
	for _, s := range []int{1, 2, 31, 32, 58, 64} {
		gs := make([]*PairBit, s)
		for j := range gs {
			gs[j] = NewPairBit(DeriveSeed(8, uint64(s), uint64(j)))
		}
		bk := NewPairBitBank(gs)
		for _, n := range []int{1, 7, 8, 9, 16, 255, 256, 1000} {
			xs := make([]uint64, n)
			for k := range xs {
				switch k % 5 {
				case 0:
					xs[k] = MersennePrime - 1 - uint64(k)%3
				case 1:
					xs[k] = uint64(k) // tiny values
				default:
					xs[k] = Reduce61(rng.Uint64())
				}
			}
			for _, shift := range []uint{0, 6} {
				asm := make([]uint64, n)
				gen := make([]uint64, n)
				bk.PackColumns(asm, xs, shift)
				restore := SetAVX512ForTest(false)
				bk.PackColumns(gen, xs, shift)
				restore()
				for k := range xs {
					if asm[k] != gen[k] {
						t.Fatalf("s=%d n=%d shift=%d: asm[%d]=%#x generic=%#x (x=%#x)",
							s, n, shift, k, asm[k], gen[k], xs[k])
					}
				}
			}
		}
	}
}
