//go:build amd64

#include "textflag.h"

// func packColumnsAsm(alo, ahi, bs *uint64, s int, xs, dst *uint64, n int, shift uint64)
//
// 8 elements per ZMM register, one pairwise hash function per inner
// iteration. Operands are < 2^61 and split into 32-bit halves, so with
// xl/xh and al/ah the product is
//
//	a·x = al·xl + (al·xh + ah·xl)·2^32 + ah·xh·2^64
//
// and, using 2^61 ≡ 1 and 2^64 ≡ 8 (mod p = 2^61−1) plus
// M·2^32 = (M>>29)·2^61 + (M&(2^29−1))·2^32:
//
//	u = (P0>>61) + (P0&p) + (M>>29) + (M&mask29)<<32 + 8·P3 + b
//
// with every addend < 2^61 (so u < 2^63+2^34, no 64-bit overflow), then
// one fold v = (u>>61)+(u&p) ∈ [0, p+4] and one masked subtract give
// the canonical residue — the same value the pure-Go loop computes.
// Bits accumulate high-to-low through W = W<<1 | bit, matching the
// generic path.
//
// Preconditions (enforced by the Go dispatch): n ≥ 8 and a multiple of
// 8, s ≥ 1, all xs[k] < 2^61 (reduced).
TEXT ·packColumnsAsm(SB), NOSPLIT, $0-64
	MOVQ alo+0(FP), R8
	MOVQ ahi+8(FP), R9
	MOVQ bs+16(FP), R10
	MOVQ s+24(FP), CX
	MOVQ xs+32(FP), SI
	MOVQ dst+40(FP), DI
	MOVQ n+48(FP), DX
	MOVQ shift+56(FP), AX
	MOVQ AX, X13

	MOVQ $0x1FFFFFFFFFFFFFFF, AX // p = 2^61 − 1
	VPBROADCASTQ AX, Z0
	MOVQ $0x1FFFFFFF, AX         // mask29 = 2^29 − 1
	VPBROADCASTQ AX, Z1

	MOVQ CX, R15
	DECQ R15
	SHLQ $3, R15                 // byte offset of coefficient s−1

elemloop:
	VMOVDQU64 (SI), Z2           // X (VPMULUDQ reads only the low 32 bits, so X doubles as xl)
	VPSRLQ $32, Z2, Z3           // xh
	VPXORQ Z4, Z4, Z4            // W = 0

	LEAQ (R8)(R15*1), R12        // &alo[s−1], walking down
	LEAQ (R9)(R15*1), R13
	LEAQ (R10)(R15*1), R14
	MOVQ CX, BX

jloop:
	VPBROADCASTQ (R12), Z5       // al
	VPBROADCASTQ (R13), Z6       // ah
	VPBROADCASTQ (R14), Z7       // b
	VPMULUDQ Z2, Z5, Z8          // P0 = al·xl
	VPMULUDQ Z3, Z5, Z9          // P1 = al·xh
	VPMULUDQ Z2, Z6, Z10         // P2 = ah·xl
	VPMULUDQ Z3, Z6, Z11         // P3 = ah·xh
	VPADDQ Z10, Z9, Z9           // M = P1 + P2
	VPSRLQ $29, Z9, Z10          // M >> 29
	VPANDQ Z1, Z9, Z9            // M & mask29
	VPSLLQ $32, Z9, Z9           // (M & mask29) << 32
	VPSRLQ $61, Z8, Z12          // P0 >> 61
	VPANDQ Z0, Z8, Z8            // P0 & p
	VPADDQ Z12, Z8, Z8
	VPSLLQ $3, Z11, Z11          // 8·P3
	VPADDQ Z10, Z8, Z8
	VPADDQ Z9, Z8, Z8
	VPADDQ Z11, Z8, Z8
	VPADDQ Z7, Z8, Z8            // u
	VPSRLQ $61, Z8, Z12
	VPANDQ Z0, Z8, Z8
	VPADDQ Z12, Z8, Z8           // v ∈ [0, p+4]
	VPCMPUQ $5, Z0, Z8, K1       // v ≥ p
	VPSUBQ Z0, Z8, K1, Z8        // canonicalize into [0, p)
	VPSRLQ $60, Z8, Z8           // top bit of the 61-bit value
	VPADDQ Z4, Z4, Z4            // W <<= 1
	VPORQ Z8, Z4, Z4             // W |= bit

	SUBQ $8, R12
	SUBQ $8, R13
	SUBQ $8, R14
	DECQ BX
	JNZ  jloop

	VPSLLQ X13, Z4, Z4           // W << shift
	VMOVDQU64 (DI), Z8
	VPORQ Z8, Z4, Z8
	VMOVDQU64 Z8, (DI)

	ADDQ $64, SI
	ADDQ $64, DI
	SUBQ $8, DX
	JNZ  elemloop

	VZEROUPPER
	RET

// func cpuidAsm(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidAsm(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbvAsm() (eax, edx uint32)
TEXT ·xgetbvAsm(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
