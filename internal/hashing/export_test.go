package hashing

// SetAVX512ForTest toggles the assembly PackColumns kernel so tests can
// compare both paths on hosts that have it. Returns a restore func.
func SetAVX512ForTest(on bool) (restore func()) {
	old := useAVX512
	if on && !old {
		// Never force the kernel on where detection said no.
		return func() {}
	}
	useAVX512 = on
	return func() { useAVX512 = old }
}

// HasAVX512ForTest reports whether the assembly kernel is active.
func HasAVX512ForTest() bool { return useAVX512 }
