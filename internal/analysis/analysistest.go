package analysis

// analysistest-style harness: run one analyzer over a testdata module
// and compare its diagnostics against // want "regex" comments in the
// sources. Each analyzer keeps a self-contained Go module under
// testdata/ (the go tool ignores testdata directories, so these
// modules never leak into the repo build).

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// wantRe matches one expectation:  // want "regex"  (possibly several
// per comment, each introduced by its own `want`).
var wantRe = regexp.MustCompile(`want\s+("(?:[^"\\]|\\.)*")`)

// RunTest loads ./... from moddir (a module rooted in testdata), runs
// the analyzer, and reports any mismatch between its diagnostics and
// the // want expectations as test failures.
func RunTest(t *testing.T, moddir string, a *Analyzer) {
	t.Helper()
	pkgs, err := Load(moddir, "./...")
	if err != nil {
		t.Fatalf("loading %s: %v", moddir, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("no packages under %s", moddir)
	}
	diags, err := RunAnalyzers(pkgs, []*Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	type expectation struct {
		re      *regexp.Regexp
		matched bool
	}
	expected := make(map[string][]*expectation) // "file:line" -> expectations
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
						pat, err := strconv.Unquote(m[1])
						if err != nil {
							t.Fatalf("%s: bad want string %s: %v", pkg.Fset.Position(c.Pos()), m[1], err)
						}
						re, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("%s: bad want regexp %q: %v", pkg.Fset.Position(c.Pos()), pat, err)
						}
						key := lineKey(pkg.Fset, c.Pos())
						expected[key] = append(expected[key], &expectation{re: re})
					}
				}
			}
		}
	}

	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		found := false
		for _, exp := range expected[key] {
			if !exp.matched && exp.re.MatchString(d.Message) {
				exp.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for key, exps := range expected {
		for _, exp := range exps {
			if !exp.matched {
				t.Errorf("%s: expected diagnostic matching %q, got none", key, exp.re)
			}
		}
	}
}

func lineKey(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	return fmt.Sprintf("%s:%d", p.Filename, p.Line)
}

// CommentDirectives collects, per file line, the text of comments
// starting with the given prefix — shared by analyzers that read
// annotations like "// guarded by: mu". The returned map keys are
// "filename:line"; values are the directive bodies with the prefix and
// surrounding space stripped.
func CommentDirectives(fset *token.FileSet, files []*ast.File, prefix string) map[string]string {
	out := make(map[string]string)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if rest, ok := strings.CutPrefix(text, prefix); ok {
					out[lineKey(fset, c.Pos())] = strings.TrimSpace(rest)
				}
			}
		}
	}
	return out
}
