// Package a exercises the walbefore analyzer: WAL-logged state may
// only change after the corresponding record is appended.
package a

type wal struct{ records [][]byte }

func (w *wal) AppendRecord(b []byte) error {
	w.records = append(w.records, b)
	return nil
}

type engine struct{ views map[string]int }

func (e *engine) Register(name string) { e.views[name] = 1 }
func (e *engine) View(name string) int { return e.views[name] }

type coord struct {
	log *wal

	fams    map[string]int // wal: state
	updates uint64         // wal: state
	cqe     *engine        // wal: state
}

// Good: append strictly precedes every mutation.
//
//sketchvet:wal-handler
func (c *coord) Apply(k string, v int) error {
	if err := c.log.AppendRecord(nil); err != nil {
		return err
	}
	c.fams[k] = v
	c.updates++
	return nil
}

// Good: the append is reached through an in-package helper.
//
//sketchvet:wal-handler
func (c *coord) ApplyViaHelper(k string, v int) error {
	if err := c.logRecord(); err != nil {
		return err
	}
	c.fams[k] = v
	c.cqe.Register(k)
	return nil
}

func (c *coord) logRecord() error { return c.log.AppendRecord(nil) }

// Bad: the mutation happens before the append — a crash in between
// loses it on replay.
//
//sketchvet:wal-handler
func (c *coord) ApplyBackwards(k string, v int) error {
	c.fams[k] = v // want "mutates WAL state before the WAL append"
	return c.log.AppendRecord(nil)
}

// Bad: a handler that never appends at all.
//
//sketchvet:wal-handler
func (c *coord) ApplyNoLog(k string, v int) {
	c.fams[k] = v // want "mutates WAL state but never appends a record"
}

// Bad: exported mutation with no annotation at all.
func (c *coord) Poke(k string) { // want "exported function Poke mutates WAL-logged state"
	delete(c.fams, k)
}

// Good: replay paths apply without appending, by declared exemption.
//
//sketchvet:wal-exempt replay applies already-logged records
func (c *coord) replayRecord(k string, v int) {
	c.fams[k] = v
	c.updates++
}

// Good: recovery drives the exempt replay helper; exemption absorbs
// the mutator obligation.
func (c *coord) Recover() {
	for k := range c.fams {
		c.replayRecord(k, 0)
	}
}

// applyLocked is an unexported helper mutator: fine when reached from
// handlers (ApplyViaMutator), flagged when reached from undisciplined
// code (Undisciplined).
func (c *coord) applyLocked(k string, v int) {
	c.fams[k] = v
	c.cqe.Register(k)
}

// Good: append, then mutate through the helper.
//
//sketchvet:wal-handler
func (c *coord) ApplyViaMutator(k string, v int) error {
	if err := c.logRecord(); err != nil {
		return err
	}
	c.applyLocked(k, v)
	return nil
}

// Bad: a plain exported function driving the mutator skips the WAL
// entirely — the helper's obligation propagates up to it.
func (c *coord) Undisciplined(k string) { // want "exported function Undisciplined mutates WAL-logged state"
	c.applyLocked(k, 1)
}

// Good: reads of state need no discipline.
func (c *coord) Peek(k string) int {
	return c.fams[k] + c.cqe.View(k)
}
