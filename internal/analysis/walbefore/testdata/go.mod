module walbeforetest

go 1.22
