// Package walbefore checks the durability subsystem's append-before-
// apply contract: state that is recovered from the write-ahead log must
// never change before the record describing the change is appended,
// or a crash between the two loses the mutation.
//
// Annotations:
//
//	// wal: state              — on a struct field: the field is part
//	                             of the WAL-logged state.
//	//sketchvet:wal-handler    — on a function: it mutates WAL state
//	                             and must append before the first
//	                             mutation.
//	//sketchvet:wal-exempt <reason> — on a function: it mutates WAL
//	                             state legitimately without appending
//	                             (replay, snapshot install, pre-traffic
//	                             setup).
//
// A mutation is a write rooted at a state field (assignment, ++/--,
// delete, index store) or a method call on a state field whose name is
// not in the read allowlist. Unexported functions that mutate state
// become "mutators"; calling one counts as a mutation at the call
// site, so the discipline composes through helpers. An appender is a
// call to any Append* method, or to an in-package function that
// (transitively) appends — c.logRecordLocked counts.
//
// Checks:
//   - in a wal-handler, every mutation must appear after an appender
//     call in source order;
//   - an exported function that mutates state — directly or through
//     unexported helpers — must be annotated wal-handler or
//     wal-exempt. The obligation propagates up the in-package call
//     graph until a handler or exempt function absorbs it.
package walbefore

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"setsketch/internal/analysis"
)

// Analyzer is the walbefore analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "walbefore",
	Doc:  "check that WAL-logged state mutations are preceded by the corresponding append",
	Run:  run,
}

// readAllowlist holds method names that observe state without mutating
// it; calls to these on a state field are not mutations.
var readAllowlist = map[string]bool{
	"View": true, "Views": true, "Counts": true, "Statements": true,
	"Specs": true, "Evaluate": true, "Now": true, "Len": true,
	"Keys": true, "Get": true, "String": true, "Snapshot": true,
	// Load is the read half of the atomic types (atomic.Uint64 counters
	// annotated as WAL state); Add/Store remain mutations.
	"Load": true,
}

// funcFacts summarizes one function body for the fixed-point pass.
type funcFacts struct {
	decl      *ast.FuncDecl
	handler   bool
	exempt    bool
	mutations []token.Pos                 // direct state mutations
	appends   []token.Pos                 // direct Append* calls
	calls     map[*types.Func][]token.Pos // in-package callees
}

func run(pass *analysis.Pass) error {
	stateFields := collectStateFields(pass)
	if len(stateFields) == 0 {
		return nil
	}

	facts := make(map[*types.Func]*funcFacts)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			ff := &funcFacts{
				decl:    fd,
				handler: hasDirective(fd, "wal-handler"),
				exempt:  hasDirective(fd, "wal-exempt"),
				calls:   make(map[*types.Func][]token.Pos),
			}
			scanBody(pass, fd, stateFields, ff)
			facts[fn] = ff
		}
	}

	// Fixed point 1: appenders — functions whose body appends, directly
	// or through an in-package call.
	appender := make(map[*types.Func]bool)
	for fn, ff := range facts {
		if len(ff.appends) > 0 {
			appender[fn] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for fn, ff := range facts {
			if appender[fn] {
				continue
			}
			for callee := range ff.calls {
				if appender[callee] {
					appender[fn] = true
					changed = true
					break
				}
			}
		}
	}

	// Fixed point 2: mutators — functions that mutate state, directly
	// or through calls, excluding handlers and exempt functions (they
	// absorb the obligation themselves).
	mutator := make(map[*types.Func]bool)
	// witness records, per mutator, a call path to a direct mutation —
	// it turns "X mutates state" into an actionable diagnostic.
	witness := make(map[*types.Func]string)
	for fn, ff := range facts {
		if len(ff.mutations) > 0 && !ff.handler && !ff.exempt {
			mutator[fn] = true
			witness[fn] = "directly"
		}
	}
	for changed := true; changed; {
		changed = false
		for fn, ff := range facts {
			if mutator[fn] || ff.handler || ff.exempt {
				continue
			}
			for callee := range ff.calls {
				if mutator[callee] {
					mutator[fn] = true
					if witness[callee] == "directly" {
						witness[fn] = "via " + callee.Name()
					} else {
						witness[fn] = "via " + callee.Name() + ", " + strings.TrimPrefix(witness[callee], "via ")
					}
					changed = true
					break
				}
			}
		}
	}

	for fn, ff := range facts {
		// Mutation events seen from this function: direct mutations
		// plus calls into mutators.
		events := append([]token.Pos(nil), ff.mutations...)
		for callee, sites := range ff.calls {
			if mutator[callee] {
				events = append(events, sites...)
			}
		}
		// Append events: direct appends plus calls into appenders.
		appendEvents := append([]token.Pos(nil), ff.appends...)
		for callee, sites := range ff.calls {
			if appender[callee] {
				appendEvents = append(appendEvents, sites...)
			}
		}

		switch {
		case ff.exempt:
		case ff.handler:
			firstAppend := token.Pos(-1)
			for _, p := range appendEvents {
				if firstAppend < 0 || p < firstAppend {
					firstAppend = p
				}
			}
			for _, m := range events {
				if firstAppend < 0 {
					pass.Reportf(m, "wal-handler %s mutates WAL state but never appends a record", fn.Name())
					continue
				}
				if m < firstAppend {
					pass.Reportf(m, "wal-handler %s mutates WAL state before the WAL append (append-before-apply)", fn.Name())
				}
			}
		case mutator[fn] && fn.Exported():
			// The obligation propagated all the way to an exported
			// entry point without meeting an append or an annotation.
			pass.Reportf(ff.decl.Name.Pos(),
				"exported function %s mutates WAL-logged state (%s) but is not marked //sketchvet:wal-handler or //sketchvet:wal-exempt", fn.Name(), witness[fn])
		}
	}
	return nil
}

// collectStateFields gathers fields annotated "// wal: state".
func collectStateFields(pass *analysis.Pass) map[*types.Var]bool {
	out := make(map[*types.Var]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				if !fieldDirective(field, "wal:", "state") {
					continue
				}
				for _, name := range field.Names {
					if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
						out[v] = true
					}
				}
			}
			return true
		})
	}
	return out
}

func fieldDirective(field *ast.Field, key, value string) bool {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if rest, ok := strings.CutPrefix(text, key); ok {
				if fields := strings.Fields(rest); len(fields) > 0 && fields[0] == value {
					return true
				}
			}
		}
	}
	return false
}

func hasDirective(fd *ast.FuncDecl, name string) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(c.Text, "//sketchvet:"+name) {
			return true
		}
	}
	return false
}

// scanBody records the function's direct mutations, direct appends, and
// in-package calls.
func scanBody(pass *analysis.Pass, fd *ast.FuncDecl, state map[*types.Var]bool, ff *funcFacts) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if p, ok := stateRoot(pass, lhs, state); ok {
					ff.mutations = append(ff.mutations, p)
				}
			}
		case *ast.IncDecStmt:
			if p, ok := stateRoot(pass, n.X, state); ok {
				ff.mutations = append(ff.mutations, p)
			}
		case *ast.CallExpr:
			scanCall(pass, n, state, ff)
		}
		return true
	})
}

func scanCall(pass *analysis.Pass, call *ast.CallExpr, state map[*types.Var]bool, ff *funcFacts) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if fun.Name == "delete" && len(call.Args) > 0 {
			if p, ok := stateRoot(pass, call.Args[0], state); ok {
				ff.mutations = append(ff.mutations, p)
			}
			return
		}
		if fn, ok := pass.TypesInfo.Uses[fun].(*types.Func); ok && fn.Pkg() == pass.Pkg {
			ff.calls[fn] = append(ff.calls[fn], call.Pos())
		}
	case *ast.SelectorExpr:
		if strings.HasPrefix(fun.Sel.Name, "Append") {
			ff.appends = append(ff.appends, call.Pos())
			return
		}
		if fn, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok && fn.Pkg() == pass.Pkg {
			ff.calls[fn] = append(ff.calls[fn], call.Pos())
		}
		// A non-allowlisted method invoked on a state field mutates it.
		if !readAllowlist[fun.Sel.Name] {
			if p, ok := stateRoot(pass, fun.X, state); ok {
				ff.mutations = append(ff.mutations, p)
			}
		}
	}
}

// stateRoot reports whether the expression's selector chain touches a
// WAL state field, returning the position to anchor the finding on.
func stateRoot(pass *analysis.Pass, e ast.Expr, state map[*types.Var]bool) (token.Pos, bool) {
	for {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			if s := pass.TypesInfo.Selections[x]; s != nil {
				if v, ok := s.Obj().(*types.Var); ok && state[v] {
					return x.Sel.Pos(), true
				}
			}
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return token.NoPos, false
		}
	}
}
