package walbefore_test

import (
	"path/filepath"
	"testing"

	"setsketch/internal/analysis"
	"setsketch/internal/analysis/walbefore"
)

func TestWALBefore(t *testing.T) {
	moddir, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	analysis.RunTest(t, moddir, walbefore.Analyzer)
}
