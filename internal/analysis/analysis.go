// Package analysis is a stdlib-only reimplementation of the core of
// golang.org/x/tools/go/analysis, sized for this repo's needs: an
// Analyzer runs over one type-checked package at a time and reports
// position-anchored diagnostics.
//
// The x/tools module is not vendored here (the module is deliberately
// dependency-free), so this package provides the three pieces sketchvet
// needs: the Analyzer/Pass/Diagnostic vocabulary, a package loader
// built on `go list -deps -json` plus go/parser and go/types (load.go),
// and an analysistest-style harness driven by // want comments
// (analysistest.go). The API mirrors x/tools closely enough that the
// analyzers under internal/analysis/... could be ported to a real
// multichecker by swapping imports.
//
// Suppression: a comment of the form
//
//	//sketchvet:ignore <analyzer> [reason...]
//
// on the flagged line (or alone on the line above it) silences that
// analyzer's diagnostics for the line. Analyzers define their own
// richer annotations (// guarded by:, // caller holds:,
// //sketchvet:wal-handler, ...) documented in their package docs.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //sketchvet:ignore directives.
	Name string
	// Doc is a one-paragraph description of what the analyzer checks.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// Pass is one (analyzer, package) unit of work. All syntax and type
// information covers the package's non-test Go files.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// PkgPath is the package's import path; Dir its directory on disk.
	PkgPath string
	Dir     string
	// ModDir is the directory of the go.mod governing the package —
	// where repo-level artifacts (OPERATIONS.md, QUERIES.md) live.
	ModDir string

	diags      []Diagnostic
	suppressed map[string]map[int]bool // filename -> line -> suppressed
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a diagnostic at pos unless an ignore directive
// covers it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if lines, ok := p.suppressed[position.Filename]; ok && lines[position.Line] {
		return
	}
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
	})
}

// buildSuppressions indexes //sketchvet:ignore directives for one
// analyzer: a directive suppresses its own line, and — when it is the
// only thing on its line — the following line.
func (p *Pass) buildSuppressions() {
	p.suppressed = make(map[string]map[int]bool)
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//sketchvet:ignore")
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 || fields[0] != p.Analyzer.Name {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				lines := p.suppressed[pos.Filename]
				if lines == nil {
					lines = make(map[int]bool)
					p.suppressed[pos.Filename] = lines
				}
				lines[pos.Line] = true
				lines[pos.Line+1] = true
			}
		}
	}
}

// RunAnalyzers applies every analyzer to every package and returns the
// combined diagnostics sorted by position. PerAnalyzer durations are
// reported through the optional timing callback.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var all []Diagnostic
	for _, a := range analyzers {
		for _, pkg := range pkgs {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				PkgPath:   pkg.PkgPath,
				Dir:       pkg.Dir,
				ModDir:    pkg.ModDir,
			}
			pass.buildSuppressions()
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.PkgPath, err)
			}
			all = append(all, pass.diags...)
		}
	}
	sortDiagnostics(all)
	return all, nil
}

func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}
