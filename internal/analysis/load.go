package analysis

// Package loading without golang.org/x/tools/go/packages: one
// `go list -deps -json` invocation enumerates the target packages and
// their full dependency graph in topological order, then each package
// is parsed with go/parser and type-checked with go/types against the
// already-checked dependencies. Dependency-only packages (the standard
// library, mostly) are checked with IgnoreFuncBodies — their exported
// API is all the analyzers need — while target packages get full
// bodies, comments, and types.Info.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, type-checked package.
type Package struct {
	PkgPath   string
	Name      string
	Dir       string
	ModDir    string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listPackage is the subset of `go list -json` output the loader uses.
type listPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Imports    []string
	ImportMap  map[string]string
	Standard   bool
	DepOnly    bool
	Module     *struct{ Dir string }
	Error      *struct{ Err string }
}

// Load lists patterns from dir (a module directory; "" = cwd), parses
// and type-checks the matched packages plus their dependency graph,
// and returns the matched packages only. Dependency type-check errors
// are tolerated (IgnoreFuncBodies makes them rare and benign); errors
// in the target packages fail the load — analyzers need sound types.
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-e", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	// Cgo-free file sets keep source type-checking self-contained.
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %w\n%s", patterns, err, stderr.String())
	}

	var listed []*listPackage
	dec := json.NewDecoder(&stdout)
	for {
		lp := new(listPackage)
		if err := dec.Decode(lp); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, fmt.Errorf("go list: decoding output: %w", err)
		}
		listed = append(listed, lp)
	}

	fset := token.NewFileSet()
	checked := make(map[string]*types.Package, len(listed))
	// The gc export-data importer resolves any stdlib package whose
	// source-check fails (none expected, but belt and braces for
	// toolchain-internal packages).
	fallback := importer.ForCompiler(fset, "gc", nil)
	var out []*Package
	for _, lp := range listed {
		if lp.ImportPath == "unsafe" {
			checked["unsafe"] = types.Unsafe
			continue
		}
		if lp.Error != nil && !lp.DepOnly {
			return nil, fmt.Errorf("go list: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		target := !lp.DepOnly
		files, err := parseFiles(fset, lp, target)
		if err != nil {
			if !target {
				continue // a dep that fails to parse resolves via fallback
			}
			return nil, err
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		}
		cfg := &types.Config{
			IgnoreFuncBodies: !target,
			FakeImportC:      true,
			Importer: importerFunc(func(path string) (*types.Package, error) {
				if mapped, ok := lp.ImportMap[path]; ok {
					path = mapped
				}
				if p, ok := checked[path]; ok && p != nil {
					return p, nil
				}
				return fallback.Import(path)
			}),
		}
		var firstErr error
		cfg.Error = func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		}
		tpkg, _ := cfg.Check(lp.ImportPath, fset, files, info)
		if target && firstErr != nil {
			return nil, fmt.Errorf("type-checking %s: %w", lp.ImportPath, firstErr)
		}
		checked[lp.ImportPath] = tpkg
		if !target {
			continue
		}
		modDir := lp.Dir
		if lp.Module != nil && lp.Module.Dir != "" {
			modDir = lp.Module.Dir
		}
		out = append(out, &Package{
			PkgPath:   lp.ImportPath,
			Name:      lp.Name,
			Dir:       lp.Dir,
			ModDir:    modDir,
			Fset:      fset,
			Files:     files,
			Types:     tpkg,
			TypesInfo: info,
		})
	}
	return out, nil
}

// parseFiles parses a listed package's non-test Go files. Target
// packages keep comments (annotations live there); dependencies skip
// object resolution work they don't need.
func parseFiles(fset *token.FileSet, lp *listPackage, target bool) ([]*ast.File, error) {
	mode := parser.SkipObjectResolution
	if target {
		mode |= parser.ParseComments
	}
	files := make([]*ast.File, 0, len(lp.GoFiles))
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, mode)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %w", filepath.Join(lp.Dir, name), err)
		}
		files = append(files, f)
	}
	return files, nil
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
