// Package obslint replaces the grep-based docs lint with AST-level
// truth: every obs metric registered in code must follow the naming
// scheme and be documented in OPERATIONS.md, every sketchd and
// sketchbench flag must be documented in OPERATIONS.md or QUERIES.md,
// and every query-language keyword must appear in QUERIES.md.
//
// Metric registrations are calls to Counter/Gauge/Histogram/
// CounterFunc/GaugeFunc on an obs.Registry. The series name is
// resolved statically: a constant string, the first argument of an
// obs.Label(...) call, or — where grep could never follow — an
// identifier bound by ranging over a map composite literal with
// constant string keys (the estimator_* registration loop), including
// through `name := name` rebinding.
//
// Scheme: names are lowercase snake_case with a known subsystem
// prefix; counters end in _total, histograms in _seconds, and gauges
// must not end in _total.
//
// Flags are fs.String/Bool/... registrations in package main under a
// directory named sketchd or sketchbench; each must appear as `-name`
// in OPERATIONS.md or QUERIES.md. Keywords are ALL-CAPS string
// literals in packages cq and expr; each must appear in QUERIES.md.
package obslint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strings"

	"setsketch/internal/analysis"
)

// Analyzer is the obslint analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "obslint",
	Doc:  "check metric/flag/keyword naming and documentation coverage",
	Run:  run,
}

// registryMethods maps registration method name -> metric kind.
var registryMethods = map[string]string{
	"Counter":     "counter",
	"CounterFunc": "counter",
	"Gauge":       "gauge",
	"GaugeFunc":   "gauge",
	"Histogram":   "histogram",
}

// prefixes are the documented metric subsystems (OPERATIONS.md
// sections).
var prefixes = map[string]bool{
	"ingest": true, "stream": true, "coord": true, "watch": true,
	"cq": true, "estimator": true, "wal": true, "process": true,
	"estimate": true,
}

var (
	nameRe    = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)
	keywordRe = regexp.MustCompile(`^[A-Z]{2,}$`)
)

// flagCheckedDirs are the command directories whose flags must be
// documented: the operator-facing daemons and tools.
var flagCheckedDirs = map[string]bool{
	"sketchd":     true,
	"sketchbench": true,
}

// flagMethods are the *flag.FlagSet registration methods whose first
// argument is the flag name.
var flagMethods = map[string]bool{
	"String": true, "Bool": true, "Int": true, "Int64": true,
	"Uint": true, "Uint64": true, "Float64": true, "Duration": true,
}

func run(pass *analysis.Pass) error {
	docs := newDocSet(pass.ModDir)
	checkMetrics(pass, docs)
	if pass.Pkg.Name() == "main" && flagCheckedDirs[filepath.Base(pass.Dir)] {
		checkFlags(pass, docs)
	}
	if name := pass.Pkg.Name(); name == "cq" || name == "expr" {
		checkKeywords(pass, docs)
	}
	return nil
}

// docSet lazily loads the documentation files named by the checks.
type docSet struct {
	modDir string
	files  map[string]string // basename -> contents ("" = missing)
}

func newDocSet(modDir string) *docSet {
	return &docSet{modDir: modDir, files: make(map[string]string)}
}

func (d *docSet) contains(basename, needle string) bool {
	text, ok := d.files[basename]
	if !ok {
		b, err := os.ReadFile(filepath.Join(d.modDir, basename))
		if err != nil {
			b = nil
		}
		text = string(b)
		d.files[basename] = text
	}
	return strings.Contains(text, needle)
}

func checkMetrics(pass *analysis.Pass, docs *docSet) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			kind, ok := registryMethods[sel.Sel.Name]
			if !ok || len(call.Args) == 0 || !isRegistryMethod(pass, sel) {
				return true
			}
			names, resolved := metricNames(pass, call.Args[0])
			if !resolved {
				pass.Reportf(call.Args[0].Pos(),
					"metric name is not statically resolvable; use a constant, obs.Label, or a map-literal registration loop")
				return true
			}
			for _, name := range names {
				checkMetricName(pass, call.Args[0].Pos(), kind, name, docs)
			}
			return true
		})
	}
}

// isRegistryMethod reports whether sel names a method of obs.Registry.
func isRegistryMethod(pass *analysis.Pass, sel *ast.SelectorExpr) bool {
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Registry" && obj.Pkg() != nil && obj.Pkg().Name() == "obs"
}

func checkMetricName(pass *analysis.Pass, pos token.Pos, kind, name string, docs *docSet) {
	if !nameRe.MatchString(name) {
		pass.Reportf(pos, "metric %q is not lowercase snake_case", name)
		return
	}
	prefix, _, _ := strings.Cut(name, "_")
	if !prefixes[prefix] {
		pass.Reportf(pos, "metric %q has unknown subsystem prefix %q (known: ingest stream coord watch cq estimator wal process estimate)", name, prefix)
		return
	}
	switch kind {
	case "counter":
		if !strings.HasSuffix(name, "_total") {
			pass.Reportf(pos, "counter %q must end in _total", name)
			return
		}
	case "histogram":
		if !strings.HasSuffix(name, "_seconds") {
			pass.Reportf(pos, "histogram %q must end in _seconds", name)
			return
		}
	case "gauge":
		if strings.HasSuffix(name, "_total") {
			pass.Reportf(pos, "gauge %q must not end in _total (that suffix marks counters)", name)
			return
		}
	}
	if !docs.contains("OPERATIONS.md", name) {
		pass.Reportf(pos, "metric %q is not documented in OPERATIONS.md", name)
	}
}

// metricNames statically resolves the series-name argument to one or
// more names.
func metricNames(pass *analysis.Pass, arg ast.Expr) ([]string, bool) {
	if s, ok := constString(pass, arg); ok {
		return []string{s}, true
	}
	// obs.Label(base, kv...): the base name is what the scheme and the
	// docs key on.
	if call, ok := arg.(*ast.CallExpr); ok {
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Label" && len(call.Args) > 0 {
			if s, ok := constString(pass, call.Args[0]); ok {
				return []string{s}, true
			}
		}
		return nil, false
	}
	// Identifier: follow `x := y` rebinding, then a range over a map
	// composite literal with constant keys.
	id, ok := arg.(*ast.Ident)
	if !ok {
		return nil, false
	}
	obj := pass.TypesInfo.Uses[id]
	for i := 0; i < 4 && obj != nil; i++ {
		if keys, ok := rangeKeyNames(pass, obj); ok {
			return keys, true
		}
		next, ok := rebindSource(pass, obj)
		if !ok {
			break
		}
		obj = next
	}
	return nil, false
}

func constString(pass *analysis.Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// rebindSource resolves `x := y` (single ident to single ident) to y's
// object — the `name := name` loop-shadow idiom.
func rebindSource(pass *analysis.Pass, obj types.Object) (types.Object, bool) {
	var out types.Object
	found := false
	forEachNode(pass, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		lhs, ok := as.Lhs[0].(*ast.Ident)
		if !ok || pass.TypesInfo.Defs[lhs] != obj {
			return true
		}
		if rhs, ok := as.Rhs[0].(*ast.Ident); ok {
			out = pass.TypesInfo.Uses[rhs]
			found = out != nil
		}
		return !found
	})
	return out, found
}

// rangeKeyNames resolves an object bound as the key of a range over a
// map composite literal to the literal's constant string keys.
func rangeKeyNames(pass *analysis.Pass, obj types.Object) ([]string, bool) {
	var names []string
	found := false
	forEachNode(pass, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		key, ok := rng.Key.(*ast.Ident)
		if !ok || pass.TypesInfo.Defs[key] != obj {
			return true
		}
		lit, ok := rng.X.(*ast.CompositeLit)
		if !ok {
			return true
		}
		for _, el := range lit.Elts {
			kv, ok := el.(*ast.KeyValueExpr)
			if !ok {
				return true
			}
			s, ok := constString(pass, kv.Key)
			if !ok {
				return true
			}
			names = append(names, s)
		}
		found = true
		return false
	})
	return names, found
}

func forEachNode(pass *analysis.Pass, fn func(ast.Node) bool) {
	for _, f := range pass.Files {
		ast.Inspect(f, fn)
	}
}

func checkFlags(pass *analysis.Pass, docs *docSet) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !flagMethods[sel.Sel.Name] || len(call.Args) == 0 {
				return true
			}
			if !isFlagSetMethod(pass, sel) {
				return true
			}
			name, ok := constString(pass, call.Args[0])
			if !ok {
				pass.Reportf(call.Args[0].Pos(), "flag name is not a constant string")
				return true
			}
			if !docs.contains("OPERATIONS.md", "-"+name) && !docs.contains("QUERIES.md", "-"+name) {
				pass.Reportf(call.Args[0].Pos(),
					"flag -%s is not documented in OPERATIONS.md or QUERIES.md", name)
			}
			return true
		})
	}
}

// isFlagSetMethod reports whether sel names a *flag.FlagSet method.
func isFlagSetMethod(pass *analysis.Pass, sel *ast.SelectorExpr) bool {
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "FlagSet" && obj.Pkg() != nil && obj.Pkg().Path() == "flag"
}

// checkKeywords requires every ALL-CAPS literal (a query-language
// keyword) to be documented in QUERIES.md. Each distinct keyword is
// reported once, at its first occurrence.
func checkKeywords(pass *analysis.Pass, docs *docSet) {
	seen := make(map[string]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				return true
			}
			s, ok := constString(pass, lit)
			if !ok || !keywordRe.MatchString(s) || seen[s] {
				return true
			}
			seen[s] = true
			if !docs.contains("QUERIES.md", s) {
				pass.Reportf(lit.Pos(), "query keyword %q is not documented in QUERIES.md", s)
			}
			return true
		})
	}
}
