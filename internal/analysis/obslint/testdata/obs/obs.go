// Package obs is a minimal stand-in for the real registry: obslint
// matches on the Registry type name and package name, not the import
// path, so these fixtures exercise the same detection.
package obs

type Metric struct{}

type Registry struct{}

func (r *Registry) Counter(series, help string) *Metric                { return &Metric{} }
func (r *Registry) Gauge(series, help string) *Metric                  { return &Metric{} }
func (r *Registry) Histogram(series, help string, b []float64) *Metric { return &Metric{} }
func (r *Registry) CounterFunc(series, help string, fn func() uint64)  {}
func (r *Registry) GaugeFunc(series, help string, fn func() float64)   {}

func Label(series string, kv ...string) string { return series }
