// Package cq (fixture) exercises obslint's keyword checks.
package cq

func Keywords() []string {
	return []string{
		"CREATE", "VIEW", "WINDOW", // good: documented
		"FROB", // want "query keyword \"FROB\" is not documented in QUERIES.md"
	}
}
