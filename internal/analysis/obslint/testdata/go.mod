module obslinttest

go 1.22
