// Command sketchd (fixture) exercises obslint's flag checks.
package main

import (
	"flag"
	"time"
)

func main() {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	// Good: documented flags.
	fs.String("listen", ":7070", "address to listen on")
	fs.Duration("idle-timeout", time.Minute, "session idle timeout")
	// Bad: undocumented flag.
	fs.Int("secret-knob", 0, "undocumented tuning knob") // want "flag -secret-knob is not documented in OPERATIONS.md or QUERIES.md"
	_ = fs
}
