// Command sketchbench (fixture) exercises obslint's flag checks on the
// load-generator command directory.
package main

import "flag"

func main() {
	fs := flag.NewFlagSet("sketchbench", flag.ContinueOnError)
	// Good: documented flag.
	fs.Int("sessions", 1, "concurrent streaming sessions")
	// Bad: undocumented flag.
	fs.Float64("hidden-ratio", 0, "undocumented ratio") // want "flag -hidden-ratio is not documented in OPERATIONS.md or QUERIES.md"
	_ = fs
}
