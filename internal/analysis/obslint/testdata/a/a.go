// Package a exercises obslint's metric checks.
package a

import "obslinttest/obs"

func Register(reg *obs.Registry) {
	// Good: documented, well-formed names of every kind.
	reg.Counter("ingest_updates_accepted_total", "Accepted updates.")
	reg.Gauge("coord_streams", "Known streams.")
	reg.Histogram("wal_append_seconds", "Append latency.", nil)
	reg.GaugeFunc("process_goroutines", "Live goroutines.", func() float64 { return 0 })

	// Good: the labeled form documents its base name.
	reg.Counter(obs.Label("stream_frames_received_total", "type", "push"), "Frames.")

	// Bad: counters must end in _total.
	reg.Counter("ingest_updates_accepted", "Accepted updates.") // want "counter \"ingest_updates_accepted\" must end in _total"

	// Bad: histograms must end in _seconds.
	reg.Histogram("wal_append_latency", "Append latency.", nil) // want "histogram \"wal_append_latency\" must end in _seconds"

	// Bad: gauges must not borrow the counter suffix.
	reg.Gauge("coord_streams_total", "Known streams.") // want "gauge \"coord_streams_total\" must not end in _total"

	// Bad: unknown subsystem prefix.
	reg.Counter("sketchy_things_total", "Things.") // want "metric \"sketchy_things_total\" has unknown subsystem prefix \"sketchy\""

	// Bad: registered but absent from OPERATIONS.md.
	reg.Counter("coord_undocumented_total", "Mystery.") // want "metric \"coord_undocumented_total\" is not documented in OPERATIONS.md"

	// Bad: the name cannot be resolved statically.
	reg.Counter(dynamicName(), "Mystery.") // want "metric name is not statically resolvable"
}

func dynamicName() string { return "coord_streams" }

// RegisterLoop is the map-literal registration loop the grep lint could
// never see through: every key resolves, including via the name := name
// rebinding.
func RegisterLoop(reg *obs.Registry) {
	for name, help := range map[string]string{
		"estimator_estimates_total": "Estimator invocations.",
		"estimator_witnesses_total": "Witness observations.",
	} {
		name := name
		reg.CounterFunc(name, help, func() uint64 { return 0 })
	}
	// Bad: one key in the loop is undocumented.
	for name, help := range map[string]string{
		"estimator_unlisted_total": "Missing from docs.",
	} {
		reg.CounterFunc(name, help, func() uint64 { return 0 }) // want "metric \"estimator_unlisted_total\" is not documented in OPERATIONS.md"
	}
}
