package obslint_test

import (
	"path/filepath"
	"testing"

	"setsketch/internal/analysis"
	"setsketch/internal/analysis/obslint"
)

func TestObsLint(t *testing.T) {
	moddir, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	analysis.RunTest(t, moddir, obslint.Analyzer)
}
