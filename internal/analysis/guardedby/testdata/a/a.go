// Package a exercises the guardedby analyzer: annotated fields must be
// accessed under their named lock.
package a

import "sync"

type Counter struct {
	mu sync.RWMutex
	n  int            // guarded by: mu
	m  map[string]int // guarded by: mu

	plain sync.Mutex
	p     int // guarded by: plain

	free int // unannotated: never checked
}

// Good: write lock held across the write.
func (c *Counter) Inc() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

// Good: deferred unlock keeps the lock held to the end.
func (c *Counter) IncDeferred() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
	c.m["x"] = c.n
}

// Good: read lock is enough for reads.
func (c *Counter) Get() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.n
}

// Bad: no lock at all.
func (c *Counter) Racy() int {
	c.n++      // want "write to guarded field n without holding mu"
	return c.n // want "read guarded field n without holding mu"
}

// Bad: read lock does not license writes.
func (c *Counter) RacyWrite() {
	c.mu.RLock()
	defer c.mu.RUnlock()
	c.n = 7 // want "write to guarded field n holds only the read lock mu"
}

// Bad: access after the unlock.
func (c *Counter) UseAfterUnlock() int {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
	return c.n // want "read guarded field n without holding mu"
}

// Bad: the lock is only held on one branch.
func (c *Counter) BranchLeak(cond bool) {
	if cond {
		c.mu.Lock()
	}
	c.n++ // want "write to guarded field n without holding mu"
	if cond {
		c.mu.Unlock()
	}
}

// Good: early-return arm unlocks; fallthrough path stays locked.
func (c *Counter) EarlyReturn(err bool) int {
	c.mu.Lock()
	if err {
		c.mu.Unlock()
		return -1
	}
	c.n++
	c.mu.Unlock()
	return 0
}

// Good: the doc contract transfers the obligation to callers.
// caller holds: mu
func (c *Counter) incLocked() {
	c.n++
	delete(c.m, "x")
}

// Bad: map mutations are writes through the field.
func (c *Counter) RacyDelete() {
	delete(c.m, "x") // want "write to guarded field m without holding mu"
}

// Good: freshly constructed values are not shared yet.
func NewCounter() *Counter {
	c := &Counter{m: map[string]int{}}
	c.n = 1
	c.m["seed"] = 1
	return c
}

// Bad: a closure may run later; it must lock for itself.
func (c *Counter) Closure() func() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return func() int {
		return c.n // want "read guarded field n without holding mu"
	}
}

// Good: a closure that locks for itself.
func (c *Counter) GoodClosure() func() int {
	return func() int {
		c.mu.RLock()
		defer c.mu.RUnlock()
		return c.n
	}
}

// Good: plain Mutex Lock licenses reads and writes.
func (c *Counter) PlainOK() int {
	c.plain.Lock()
	defer c.plain.Unlock()
	c.p++
	return c.p
}

// Suppressed: the directive silences the next line.
func (c *Counter) Suppressed() int {
	//sketchvet:ignore guardedby intentionally racy stat
	return c.n
}
