package a

import "sync"

// Hub/Spoke mirror the Coordinator/Watcher shape: spoke state guarded
// by a mutex reached through a struct-typed field path.
type Hub struct {
	wmu    sync.Mutex
	spokes map[int]*Spoke // guarded by: wmu
}

type Spoke struct {
	hub   *Hub
	epoch int // guarded by: hub.wmu
}

// Good: the path annotation resolves to the same lock object whether
// reached as h.wmu or s.hub.wmu.
func (s *Spoke) Bump() {
	s.hub.wmu.Lock()
	s.epoch++
	s.hub.wmu.Unlock()
}

func (h *Hub) Sweep() {
	h.wmu.Lock()
	defer h.wmu.Unlock()
	for _, s := range h.spokes {
		s.epoch++
	}
}

// Bad: no lock on the path-guarded field.
func (s *Spoke) RacyBump() {
	s.epoch++ // want "write to guarded field epoch without holding wmu"
}

// Bad: range variables alias shared state — freshness does not apply.
func (h *Hub) RacySweep() {
	for _, s := range h.spokes { // want "read guarded field spokes without holding wmu"
		s.epoch = 0 // want "write to guarded field epoch without holding wmu"
	}
}
