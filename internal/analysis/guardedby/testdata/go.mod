module guardedbytest

go 1.22
