package guardedby_test

import (
	"path/filepath"
	"testing"

	"setsketch/internal/analysis"
	"setsketch/internal/analysis/guardedby"
)

func TestGuardedBy(t *testing.T) {
	moddir, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	analysis.RunTest(t, moddir, guardedby.Analyzer)
}
