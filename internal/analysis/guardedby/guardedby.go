// Package guardedby checks lock-annotation discipline: a struct field
// annotated
//
//	// guarded by: mu
//	// guarded by: c.wmu
//
// may only be accessed while the named mutex is held. The mutex is
// named by a path resolved from the annotated field's struct — a bare
// name is a sibling field, a dotted path walks through struct-typed
// fields (c.wmu: field c, then field wmu of c's type). Reads require
// at least a read lock (RLock or Lock), writes require the write lock.
//
// Holding is established flow-insensitively per function body by
// tracking Lock/RLock/Unlock/RUnlock calls on the annotated mutex
// *object* (the types.Var of the field), in source order, with
// branch-aware merging: a lock taken in only one arm of an if is not
// held after it unless the other arm terminates. Deferred unlocks keep
// the lock held to the end of the function. Function literals start
// with no locks held — they may run later — so closures must lock for
// themselves.
//
// Escape hatches, in decreasing preference:
//
//   - // caller holds: mu   (function doc) — the contract-documented
//     form: the function requires its caller to hold the lock.
//   - accesses whose receiver chain is rooted at a local variable
//     freshly built from a composite literal or new() in the same
//     function are exempt: the object is not shared yet (constructors).
//   - //sketchvet:ignore guardedby on the flagged line.
package guardedby

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"setsketch/internal/analysis"
)

// Analyzer is the guardedby analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "guardedby",
	Doc:  "check that fields annotated '// guarded by: <mutex>' are only accessed with the lock held",
	Run:  run,
}

// lockInfo describes the mutex guarding one annotated field.
type lockInfo struct {
	mutex *types.Var // the mutex field object
	rw    bool       // sync.RWMutex (read locks exist)
}

func run(pass *analysis.Pass) error {
	guarded := collectAnnotations(pass)
	if len(guarded) == 0 {
		return nil
	}
	mutexByName := make(map[string][]*types.Var)
	for _, li := range guarded {
		name := li.mutex.Name()
		seen := false
		for _, v := range mutexByName[name] {
			if v == li.mutex {
				seen = true
			}
		}
		if !seen {
			mutexByName[name] = append(mutexByName[name], li.mutex)
		}
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			c := &checker{
				pass:    pass,
				guarded: guarded,
				state:   newLockState(),
				fresh:   make(map[*types.Var]bool),
			}
			c.addCallerHolds(fd, mutexByName)
			c.collectFresh(fd.Body)
			c.stmt(fd.Body)
		}
	}
	return nil
}

// collectAnnotations maps guarded field objects to their lock info.
func collectAnnotations(pass *analysis.Pass) map[*types.Var]lockInfo {
	out := make(map[*types.Var]lockInfo)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				path, ok := guardDirective(field)
				if !ok {
					continue
				}
				if len(field.Names) == 0 {
					pass.Reportf(field.Pos(), "'guarded by:' annotation on an embedded field is not supported")
					continue
				}
				owner := pass.TypesInfo.Defs[field.Names[0]].(*types.Var)
				li, err := resolveLockPath(owner, path)
				if err != "" {
					pass.Reportf(field.Pos(), "bad 'guarded by: %s' annotation: %s", path, err)
					continue
				}
				for _, name := range field.Names {
					out[pass.TypesInfo.Defs[name].(*types.Var)] = li
				}
			}
			return true
		})
	}
	return out
}

// guardDirective extracts the mutex path of a field's "guarded by:"
// annotation from its doc or line comment.
func guardDirective(field *ast.Field) (string, bool) {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(strings.TrimPrefix(c.Text, "//"), "/*"))
			if rest, ok := strings.CutPrefix(text, "guarded by:"); ok {
				path := strings.TrimSpace(rest)
				if i := strings.IndexAny(path, " \t;,"); i >= 0 {
					path = path[:i]
				}
				return path, path != ""
			}
		}
	}
	return "", false
}

// resolveLockPath walks a dotted mutex path from the struct that owns
// the annotated field and returns the mutex object it lands on.
func resolveLockPath(owner *types.Var, path string) (lockInfo, string) {
	// The owner var's parent struct is not directly recorded by
	// go/types; owningStruct recovers it by scanning the package's
	// struct types. The path is then resolved against that struct.
	strct := owningStruct(owner)
	if strct == nil {
		return lockInfo{}, "cannot resolve owning struct"
	}
	segs := strings.Split(path, ".")
	curStruct := strct
	var target *types.Var
	for i, seg := range segs {
		fv := lookupField(curStruct, seg)
		if fv == nil {
			return lockInfo{}, "no field " + seg
		}
		if i == len(segs)-1 {
			target = fv
			break
		}
		next, ok := derefStruct(fv.Type())
		if !ok {
			return lockInfo{}, "field " + seg + " is not a struct"
		}
		curStruct = next
	}
	rw, ok := isMutex(target.Type())
	if !ok {
		return lockInfo{}, "field " + segs[len(segs)-1] + " is not a sync.Mutex or sync.RWMutex"
	}
	return lockInfo{mutex: target, rw: rw}, ""
}

// fieldOwners caches field object -> owning struct resolution.
var fieldOwners = map[*types.Var]*types.Struct{}

// owningStruct finds the *types.Struct that declares the field var by
// scanning the field lists of every struct in the field's package.
func owningStruct(field *types.Var) *types.Struct {
	if s, ok := fieldOwners[field]; ok {
		return s
	}
	pkg := field.Pkg()
	if pkg == nil {
		return nil
	}
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			fieldOwners[st.Field(i)] = st
		}
	}
	return fieldOwners[field]
}

func lookupField(st *types.Struct, name string) *types.Var {
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == name {
			return st.Field(i)
		}
	}
	return nil
}

func derefStruct(t types.Type) (*types.Struct, bool) {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	return st, ok
}

// isMutex reports whether t is sync.Mutex or sync.RWMutex (rw reports
// the latter).
func isMutex(t types.Type) (rw, ok bool) {
	if p, yes := t.Underlying().(*types.Pointer); yes {
		t = p.Elem()
	}
	named, yes := t.(*types.Named)
	if !yes {
		return false, false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false, false
	}
	switch obj.Name() {
	case "Mutex":
		return false, true
	case "RWMutex":
		return true, true
	}
	return false, false
}

// lockState is the set of locks held at a program point.
type lockState struct {
	read  map[*types.Var]int
	write map[*types.Var]int
}

func newLockState() *lockState {
	return &lockState{read: map[*types.Var]int{}, write: map[*types.Var]int{}}
}

func (s *lockState) clone() *lockState {
	c := newLockState()
	for k, v := range s.read {
		c.read[k] = v
	}
	for k, v := range s.write {
		c.write[k] = v
	}
	return c
}

// mergeMin keeps, for each lock, the minimum hold count across states
// — the conservative "held on every path" answer.
func mergeMin(states []*lockState) *lockState {
	if len(states) == 0 {
		return newLockState()
	}
	out := states[0].clone()
	for _, s := range states[1:] {
		for k, v := range out.read {
			if s.read[k] < v {
				out.read[k] = s.read[k]
			}
		}
		for k := range out.read {
			if _, ok := s.read[k]; !ok {
				out.read[k] = 0
			}
		}
		for k, v := range out.write {
			if s.write[k] < v {
				out.write[k] = s.write[k]
			}
		}
	}
	return out
}

// checker walks one function body in source order.
type checker struct {
	pass        *analysis.Pass
	guarded     map[*types.Var]lockInfo
	state       *lockState
	callerHolds map[*types.Var]bool
	fresh       map[*types.Var]bool // locals built from composite literals
}

// addCallerHolds reads "// caller holds: mu[, wmu]" doc directives.
func (c *checker) addCallerHolds(fd *ast.FuncDecl, byName map[string][]*types.Var) {
	c.callerHolds = map[*types.Var]bool{}
	if fd.Doc == nil {
		return
	}
	for _, cm := range fd.Doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(cm.Text, "//"))
		rest, ok := strings.CutPrefix(text, "caller holds:")
		if !ok {
			// Also accept the conventional prose form "Caller holds c.mu."
			rest, ok = strings.CutPrefix(text, "Caller holds")
			if !ok {
				continue
			}
		}
		for _, tok := range strings.FieldsFunc(rest, func(r rune) bool {
			return r == ',' || r == ' ' || r == ';' || r == '.' && false
		}) {
			tok = strings.TrimRight(tok, ".")
			segs := strings.Split(tok, ".")
			name := segs[len(segs)-1]
			for _, mv := range byName[name] {
				c.callerHolds[mv] = true
			}
		}
	}
}

// collectFresh records locals initialized from composite literals or
// new() — objects that cannot be shared with other goroutines yet.
func (c *checker) collectFresh(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || i >= len(as.Rhs) {
				continue
			}
			if !isFreshExpr(as.Rhs[i]) {
				continue
			}
			if v, ok := c.pass.TypesInfo.Defs[id].(*types.Var); ok {
				c.fresh[v] = true
			}
		}
		return true
	})
}

func isFreshExpr(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			_, ok := e.X.(*ast.CompositeLit)
			return ok
		}
	case *ast.CallExpr:
		if id, ok := e.Fun.(*ast.Ident); ok && id.Name == "new" {
			return true
		}
	}
	return false
}

// stmt processes one statement, updating lock state in source order.
func (c *checker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		for _, sub := range s.List {
			c.stmt(sub)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			c.stmt(s.Init)
		}
		c.expr(s.Cond, false)
		var merged []*lockState
		saved := c.state
		c.state = saved.clone()
		c.stmt(s.Body)
		if !terminates(s.Body) {
			merged = append(merged, c.state)
		}
		c.state = saved.clone()
		if s.Else != nil {
			c.stmt(s.Else)
		}
		if s.Else == nil || !stmtTerminates(s.Else) {
			merged = append(merged, c.state)
		}
		c.state = mergeMin(merged)
	case *ast.ForStmt:
		if s.Init != nil {
			c.stmt(s.Init)
		}
		if s.Cond != nil {
			c.expr(s.Cond, false)
		}
		if s.Post != nil {
			c.stmt(s.Post)
		}
		saved := c.state.clone()
		c.stmt(s.Body)
		c.state = mergeMin([]*lockState{saved, c.state})
	case *ast.RangeStmt:
		c.expr(s.X, false)
		saved := c.state.clone()
		c.stmt(s.Body)
		c.state = mergeMin([]*lockState{saved, c.state})
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		c.caseBodies(s)
	case *ast.DeferStmt:
		// A deferred unlock fires at return: the lock stays held for
		// the rest of the body, so skip the state change. Everything
		// else in the call (receiver, args) is still an access.
		if !c.lockCall(s.Call, true) {
			c.expr(s.Call, false)
		}
	case *ast.GoStmt:
		// The goroutine runs concurrently: analyze its callee literal
		// (if any) with no locks held; the call's operands are accesses.
		c.expr(s.Call, false)
	case *ast.ExprStmt:
		c.expr(s.X, false)
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			c.expr(r, false)
		}
		for _, l := range s.Lhs {
			c.expr(l, true)
		}
	case *ast.IncDecStmt:
		c.expr(s.X, true)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			c.expr(r, false)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						c.expr(v, false)
					}
				}
			}
		}
	case *ast.SendStmt:
		c.expr(s.Chan, false)
		c.expr(s.Value, false)
	case *ast.LabeledStmt:
		c.stmt(s.Stmt)
	}
}

// caseBodies handles switch/select: each clause sees the entry state;
// afterwards the minimum across non-terminating clauses holds.
func (c *checker) caseBodies(s ast.Stmt) {
	var init ast.Stmt
	var tag ast.Expr
	var body *ast.BlockStmt
	switch s := s.(type) {
	case *ast.SwitchStmt:
		init, tag, body = s.Init, s.Tag, s.Body
	case *ast.TypeSwitchStmt:
		init, body = s.Init, s.Body
	case *ast.SelectStmt:
		body = s.Body
	}
	if init != nil {
		c.stmt(init)
	}
	if tag != nil {
		c.expr(tag, false)
	}
	saved := c.state
	var merged []*lockState
	hasDefault := false
	for _, clause := range body.List {
		var stmts []ast.Stmt
		switch cl := clause.(type) {
		case *ast.CaseClause:
			for _, e := range cl.List {
				c.state = saved
				c.expr(e, false)
			}
			stmts = cl.Body
			hasDefault = hasDefault || cl.List == nil
		case *ast.CommClause:
			stmts = cl.Body
			hasDefault = hasDefault || cl.Comm == nil
			if cl.Comm != nil {
				c.state = saved.clone()
				c.stmt(cl.Comm)
				saved, c.state = c.state, saved // comm effects stay in-branch
			}
		}
		c.state = saved.clone()
		for _, st := range stmts {
			c.stmt(st)
		}
		if !stmtsTerminate(stmts) {
			merged = append(merged, c.state)
		}
	}
	if !hasDefault {
		merged = append(merged, saved.clone())
	}
	c.state = mergeMin(merged)
}

// expr walks an expression in evaluation order. write marks the
// outermost expression as a store target.
func (c *checker) expr(e ast.Expr, write bool) {
	switch e := e.(type) {
	case nil:
	case *ast.SelectorExpr:
		if c.lockCallSelector(e) {
			return // handled as part of the call
		}
		c.expr(e.X, false)
		c.checkAccess(e, write)
	case *ast.IndexExpr:
		c.expr(e.X, write) // writing m[k] writes through the field
		c.expr(e.Index, false)
	case *ast.StarExpr:
		c.expr(e.X, write)
	case *ast.ParenExpr:
		c.expr(e.X, write)
	case *ast.UnaryExpr:
		// Taking the address of a guarded location hands out an alias;
		// require the write lock.
		c.expr(e.X, write || e.Op == token.AND)
	case *ast.BinaryExpr:
		c.expr(e.X, false)
		c.expr(e.Y, false)
	case *ast.CallExpr:
		if c.lockCall(e, false) {
			return
		}
		if id, ok := e.Fun.(*ast.Ident); ok && id.Name == "delete" && len(e.Args) > 0 {
			// delete(c.fams, k) writes through the map field.
			c.expr(e.Args[0], true)
			for _, a := range e.Args[1:] {
				c.expr(a, false)
			}
			return
		}
		c.expr(e.Fun, false)
		for _, a := range e.Args {
			c.expr(a, false)
		}
	case *ast.FuncLit:
		// The literal may run on another goroutine or after unlock:
		// analyze its body with nothing held and no fresh locals.
		sub := &checker{
			pass:        c.pass,
			guarded:     c.guarded,
			state:       newLockState(),
			callerHolds: map[*types.Var]bool{},
			fresh:       map[*types.Var]bool{},
		}
		sub.collectFresh(e.Body)
		sub.stmt(e.Body)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				c.expr(kv.Value, false)
				continue
			}
			c.expr(el, false)
		}
	case *ast.KeyValueExpr:
		c.expr(e.Key, false)
		c.expr(e.Value, false)
	case *ast.SliceExpr:
		c.expr(e.X, write)
		c.expr(e.Low, false)
		c.expr(e.High, false)
		c.expr(e.Max, false)
	case *ast.TypeAssertExpr:
		c.expr(e.X, false)
	case *ast.IndexListExpr:
		c.expr(e.X, false)
	}
}

// lockCallSelector reports whether sel is the Fun of a lock-method
// call; those are consumed by lockCall via the enclosing CallExpr.
func (c *checker) lockCallSelector(sel *ast.SelectorExpr) bool {
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
		_, ok := c.mutexOf(sel)
		return ok
	}
	return false
}

// lockCall applies a Lock/Unlock call's state transition. deferred
// calls are recognized but do not change state.
func (c *checker) lockCall(call *ast.CallExpr, deferred bool) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	op := sel.Sel.Name
	switch op {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return false
	}
	mv, ok := c.mutexOf(sel)
	if !ok {
		return false
	}
	if deferred {
		return true
	}
	switch op {
	case "Lock":
		c.state.write[mv]++
	case "Unlock":
		if c.state.write[mv] > 0 {
			c.state.write[mv]--
		}
	case "RLock":
		c.state.read[mv]++
	case "RUnlock":
		if c.state.read[mv] > 0 {
			c.state.read[mv]--
		}
	}
	return true
}

// mutexOf resolves the receiver of a lock-method selector (c.mu.Lock →
// the mu field object) when it is an annotated mutex.
func (c *checker) mutexOf(sel *ast.SelectorExpr) (*types.Var, bool) {
	var obj types.Object
	switch x := sel.X.(type) {
	case *ast.SelectorExpr:
		if s := c.pass.TypesInfo.Selections[x]; s != nil {
			obj = s.Obj()
		} else {
			obj = c.pass.TypesInfo.Uses[x.Sel]
		}
	case *ast.Ident:
		obj = c.pass.TypesInfo.Uses[x]
	default:
		return nil, false
	}
	mv, ok := obj.(*types.Var)
	if !ok {
		return nil, false
	}
	for _, li := range c.guarded {
		if li.mutex == mv {
			return mv, true
		}
	}
	return nil, false
}

// checkAccess validates one selector access against the annotations.
func (c *checker) checkAccess(sel *ast.SelectorExpr, write bool) {
	s := c.pass.TypesInfo.Selections[sel]
	if s == nil || s.Kind() != types.FieldVal {
		return
	}
	fv, ok := s.Obj().(*types.Var)
	if !ok {
		return
	}
	li, ok := c.guarded[fv]
	if !ok {
		return
	}
	if c.callerHolds[li.mutex] {
		return
	}
	if base, ok := chainBase(sel.X); ok {
		if v, ok := c.pass.TypesInfo.Uses[base].(*types.Var); ok && c.fresh[v] {
			return
		}
	}
	if c.state.write[li.mutex] > 0 {
		return
	}
	if !write && li.rw && c.state.read[li.mutex] > 0 {
		return
	}
	kind := "read"
	if write {
		kind = "write to"
	}
	lock := li.mutex.Name()
	if write && li.rw && c.state.read[li.mutex] > 0 {
		c.pass.Reportf(sel.Sel.Pos(),
			"%s guarded field %s holds only the read lock %s (write lock required)", kind, fv.Name(), lock)
		return
	}
	c.pass.Reportf(sel.Sel.Pos(),
		"%s guarded field %s without holding %s (add %s.Lock or a '// caller holds: %s' contract)",
		kind, fv.Name(), lock, lock, lock)
}

// chainBase unwraps a selector receiver chain to its base identifier.
func chainBase(e ast.Expr) (*ast.Ident, bool) {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x, true
		case *ast.SelectorExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.CallExpr:
			return nil, false
		default:
			return nil, false
		}
	}
}

func terminates(b *ast.BlockStmt) bool { return stmtsTerminate(b.List) }

func stmtsTerminate(list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	return stmtTerminates(list[len(list)-1])
}

func stmtTerminates(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.BranchStmt:
		return s.Tok == token.CONTINUE || s.Tok == token.BREAK || s.Tok == token.GOTO
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.BlockStmt:
		return terminates(s)
	case *ast.IfStmt:
		return terminates(s.Body) && s.Else != nil && stmtTerminates(s.Else)
	}
	return false
}
