package bitexact_test

import (
	"path/filepath"
	"testing"

	"setsketch/internal/analysis"
	"setsketch/internal/analysis/bitexact"
)

func TestBitExact(t *testing.T) {
	moddir, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	analysis.RunTest(t, moddir, bitexact.Analyzer)
}
