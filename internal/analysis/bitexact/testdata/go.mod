module bitexacttest

go 1.22
