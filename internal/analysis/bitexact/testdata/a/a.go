// Package a exercises the bitexact analyzer in an opted-in package.
//
//sketchvet:bitexact
package a

import (
	"bytes"
	"math"
	"sort"
)

// Good: collect-then-sort is the sanctioned map-iteration idiom.
func SortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Bad: the unsorted append leaks map order into the result.
func UnsortedKeys(m map[string]float64) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "append to keys inside map iteration fixes nondeterministic order"
	}
	return keys
}

// Good: integer accumulation is commutative — merge order cannot
// change the bits (the cq window-merge pattern).
func MergeCounts(dst, src map[string]int64) {
	for k, v := range src {
		dst[k] += v
	}
}

// Bad: float accumulation order changes the bits.
func SumValues(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want "floating-point accumulation inside map iteration is order-dependent"
	}
	return sum
}

// Good: iterating a sorted key slice pins the accumulation order.
func SumValuesSorted(m map[string]float64) float64 {
	var sum float64
	for _, k := range SortedKeys(m) {
		sum += m[k]
	}
	return sum
}

// Bad: writing to a sink inside map iteration emits nondeterministic
// byte order.
func Encode(m map[string]int64) []byte {
	var buf bytes.Buffer
	for k := range m {
		buf.WriteString(k) // want "WriteString inside map iteration emits output in nondeterministic order"
	}
	return buf.Bytes()
}

// Good: allowlisted math functions are the pinned kernel set.
func Estimate(x float64) float64 {
	return math.Pow(2, math.Log1p(x)/math.Log(2))
}

// Bad: math.Sin is not part of the pinned contract.
func Wobble(x float64) float64 {
	return math.Sin(x) // want "math.Sin is not on the bit-identical allowlist"
}

// Good: comparing against a constant is the pinned-epilogue idiom.
func IsZero(u float64) bool {
	return u == 0
}

// Bad: equality between two computed floats.
func SameEstimate(a, b float64) bool {
	return a == b // want "float == comparison between computed values breaks bit-exactness"
}

// Good: bit comparison is exact by construction.
func SameBits(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

// Suppressed: the ignore directive covers the next line.
func SuppressedCompare(a, b float64) bool {
	//sketchvet:ignore bitexact test oracle compares exact bits on purpose
	return a == b
}
