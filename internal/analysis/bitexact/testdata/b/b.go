// Package b has no bitexact directive: nothing here may be flagged,
// however order-dependent it is.
package b

import "math"

func UnpinnedEverywhere(m map[string]float64) (float64, bool) {
	var sum float64
	for _, v := range m {
		sum += v
	}
	return math.Sin(sum), sum == 1.0/3.0*3.0
}
