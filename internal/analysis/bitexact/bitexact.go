// Package bitexact checks packages on the bit-identical contract: the
// serial, compiled, and parallel estimator paths must produce the same
// bits, so code in these packages must avoid the three classic sources
// of run-to-run divergence.
//
// A package opts in with a directive comment in any of its files:
//
//	//sketchvet:bitexact
//
// Checks, in opted-in packages only:
//
//  1. Map iteration into output order: a `range` over a map whose body
//     appends into a slice declared outside the loop is flagged unless
//     the slice is later passed to sort.* / slices.Sort* in the same
//     function (the collect-then-sort idiom). Bodies that write to an
//     io.Writer-shaped sink (Write*/Fprint*/Encode* methods) or
//     accumulate floating point inside map iteration are flagged
//     unconditionally — both bake nondeterministic order into output
//     bits. Integer accumulation is commutative and allowed.
//
//  2. Unpinned math: calls to math.* functions outside the allowlist
//     of functions the kernels are specified against. Anything else
//     (math.Sin, math.FMA, ...) risks platform-dependent bits.
//
//  3. Float equality: ==/!= between floating-point operands where
//     neither side is a compile-time constant. Comparisons against
//     constants (x == 0 in the pinned epilogue) are the contract's
//     own idiom and stay legal.
//
// //sketchvet:ignore bitexact suppresses a finding on its line.
package bitexact

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"setsketch/internal/analysis"
)

// Analyzer is the bitexact analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "bitexact",
	Doc:  "check bit-identical-contract packages for ordering and float hazards",
	Run:  run,
}

// mathAllowlist lists the math functions the estimator contract pins;
// see DESIGN.md's bit-identical section.
var mathAllowlist = map[string]bool{
	"Pow": true, "Log": true, "Log2": true, "Log1p": true,
	"Sqrt": true, "Ceil": true, "Floor": true, "Trunc": true,
	"Exp": true, "Exp2": true, "Abs": true, "Inf": true, "IsInf": true,
	"IsNaN": true, "NaN": true, "Min": true, "Max": true,
	"Float64bits": true, "Float64frombits": true,
	"Float32bits": true, "Float32frombits": true,
	"MaxUint32": true, "MaxUint64": true, "MaxInt64": true,
	"MaxFloat64": true,
}

func run(pass *analysis.Pass) error {
	if !optedIn(pass) {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

// optedIn reports whether any file carries the bitexact directive.
func optedIn(pass *analysis.Pass) bool {
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if strings.HasPrefix(c.Text, "//sketchvet:bitexact") {
					return true
				}
			}
		}
	}
	return false
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	sorted := sortedSlices(pass, fd.Body)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if isMapType(pass, n.X) {
				checkMapRangeBody(pass, n, sorted)
			}
		case *ast.CallExpr:
			checkMathCall(pass, n)
		case *ast.BinaryExpr:
			checkFloatEq(pass, n)
		}
		return true
	})
}

// sortedSlices collects slice objects passed to sort.*/slices.Sort* in
// the function — appends into these inside a map range are the legal
// collect-then-sort idiom.
func sortedSlices(pass *analysis.Pass, body *ast.BlockStmt) map[types.Object]bool {
	out := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgID, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := pass.TypesInfo.Uses[pkgID].(*types.PkgName)
		if !ok {
			return true
		}
		switch pn.Imported().Path() {
		case "sort", "slices":
		default:
			return true
		}
		for _, arg := range call.Args {
			if obj := rootObject(pass, arg); obj != nil {
				out[obj] = true
			}
		}
		return true
	})
	return out
}

func checkMapRangeBody(pass *analysis.Pass, rng *ast.RangeStmt, sorted map[types.Object]bool) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok {
					continue
				}
				id, ok := call.Fun.(*ast.Ident)
				if !ok || id.Name != "append" || i >= len(n.Lhs) {
					continue
				}
				obj := rootObject(pass, n.Lhs[i])
				if obj == nil || sorted[obj] {
					continue
				}
				// Appends into a slice that outlives the loop pick up
				// map order; appends into loop-local scratch do not.
				if obj.Pos() < rng.Pos() {
					pass.Reportf(n.Pos(),
						"append to %s inside map iteration fixes nondeterministic order into output (collect then sort.Slice, or iterate a sorted key slice)", obj.Name())
				}
			}
			if n.Tok == token.ADD_ASSIGN || n.Tok == token.SUB_ASSIGN || n.Tok == token.MUL_ASSIGN {
				for _, lhs := range n.Lhs {
					if isFloatExpr(pass, lhs) {
						pass.Reportf(n.Pos(),
							"floating-point accumulation inside map iteration is order-dependent (iterate sorted keys)")
					}
				}
			}
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				name := sel.Sel.Name
				if strings.HasPrefix(name, "Write") || strings.HasPrefix(name, "Fprint") ||
					strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Encode") {
					pass.Reportf(n.Pos(),
						"%s inside map iteration emits output in nondeterministic order (iterate sorted keys)", name)
				}
			}
		}
		return true
	})
}

func checkMathCall(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	pkgID, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	pn, ok := pass.TypesInfo.Uses[pkgID].(*types.PkgName)
	if !ok || pn.Imported().Path() != "math" {
		return
	}
	if !mathAllowlist[sel.Sel.Name] {
		pass.Reportf(call.Pos(),
			"math.%s is not on the bit-identical allowlist (pinned functions: see DESIGN.md invariants)", sel.Sel.Name)
	}
}

func checkFloatEq(pass *analysis.Pass, e *ast.BinaryExpr) {
	if e.Op != token.EQL && e.Op != token.NEQ {
		return
	}
	if !isFloatExpr(pass, e.X) && !isFloatExpr(pass, e.Y) {
		return
	}
	xc := pass.TypesInfo.Types[e.X].Value != nil
	yc := pass.TypesInfo.Types[e.Y].Value != nil
	if xc || yc {
		return // comparison against a constant: the pinned-epilogue idiom
	}
	pass.Reportf(e.OpPos,
		"float %s comparison between computed values breaks bit-exactness (compare bits, a constant, or an epsilon)", e.Op)
}

func isFloatExpr(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.TypesInfo.Types[e].Type
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isMapType reports whether e has map type.
func isMapType(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.TypesInfo.Types[e].Type
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// rootObject unwraps selectors/indexing to the base identifier's object.
func rootObject(pass *analysis.Pass, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			if obj := pass.TypesInfo.Uses[x]; obj != nil {
				return obj
			}
			return pass.TypesInfo.Defs[x]
		case *ast.SelectorExpr:
			// Field chains root at the field object itself so that
			// c.keys and local keys are distinct.
			if s := pass.TypesInfo.Selections[x]; s != nil {
				return s.Obj()
			}
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		default:
			return nil
		}
	}
}
