package harness

import (
	"math"
	"testing"

	"setsketch/internal/core"
	"setsketch/internal/datagen"
)

func TestTrimmedMean(t *testing.T) {
	cases := []struct {
		errs []float64
		trim float64
		want float64
	}{
		{[]float64{1, 2, 3, 4}, 0, 2.5},
		{[]float64{1, 2, 3, 100}, 0.25, 2},   // drops the 100
		{[]float64{1, 2, 3, 4, 100}, 0.3, 2}, // ceil(1.5) = 2 dropped
		{[]float64{5}, 0.9, 5},               // always keeps ≥ 1
		{[]float64{3, 1, 2}, 0, 2},           // unsorted input
	}
	for _, c := range cases {
		if got := TrimmedMean(c.errs, c.trim); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("TrimmedMean(%v, %v) = %v, want %v", c.errs, c.trim, got, c.want)
		}
	}
	if !math.IsNaN(TrimmedMean(nil, 0.3)) {
		t.Error("TrimmedMean(nil) != NaN")
	}
}

func TestTrimmedMeanDoesNotMutate(t *testing.T) {
	in := []float64{3, 1, 2}
	TrimmedMean(in, 0.3)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Error("TrimmedMean mutated its input")
	}
}

// quickCfg keeps harness tests fast on one core.
var quickCfg = core.Config{Buckets: 61, SecondLevel: 16, FirstWise: 8}

func TestSweepIntersection(t *testing.T) {
	s := Sweep{
		Expr:         "A & B",
		Union:        2048,
		Targets:      []int{512},
		SketchCounts: []int{64, 256},
		Runs:         4,
		TrimFraction: 0.3,
		Eps:          0.2,
		Config:       quickCfg,
		Seed:         1,
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("got %d points, want 2", len(res.Points))
	}
	series := res.Series(512)
	if len(series) != 2 || series[0].Sketches != 64 || series[1].Sketches != 256 {
		t.Fatalf("bad series: %+v", series)
	}
	for _, p := range series {
		if p.Runs != 4 {
			t.Errorf("point %+v lost runs", p)
		}
		if math.IsNaN(p.Error) || p.Error > 1.5 {
			t.Errorf("implausible error at r=%d: %v", p.Sketches, p.Error)
		}
	}
	// More sketches should not be drastically worse.
	if series[1].Error > series[0].Error*2+0.1 {
		t.Errorf("error grew with sketches: %v -> %v", series[0].Error, series[1].Error)
	}
}

func TestSweepReproducible(t *testing.T) {
	s := Sweep{
		Expr: "A - B", Union: 1024, Targets: []int{256},
		SketchCounts: []int{64}, Runs: 3, TrimFraction: 0.3,
		Eps: 0.25, Config: quickCfg, Seed: 7,
	}
	r1, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.Points {
		if r1.Points[i] != r2.Points[i] {
			t.Fatalf("same-seed sweeps differ: %+v vs %+v", r1.Points[i], r2.Points[i])
		}
	}
}

// TestSweepChurnInvariance is the end-to-end deletion-invariance
// experiment: identical seeds with and without deletion churn must give
// *identical* errors, because the sketches see the same net multisets.
func TestSweepChurnInvariance(t *testing.T) {
	base := Sweep{
		Expr: "A & B", Union: 1024, Targets: []int{256},
		SketchCounts: []int{96}, Runs: 3, TrimFraction: 0.3,
		Eps: 0.25, Config: quickCfg, Seed: 11,
	}
	clean, err := base.Run()
	if err != nil {
		t.Fatal(err)
	}
	churned := base
	churned.Churn = datagen.ChurnSpec{Phantoms: 1.0, Overcount: 0.5}
	dirty, err := churned.Run()
	if err != nil {
		t.Fatal(err)
	}
	for i := range clean.Points {
		if clean.Points[i].Error != dirty.Points[i].Error {
			t.Errorf("churn changed the estimate: %v vs %v",
				clean.Points[i].Error, dirty.Points[i].Error)
		}
	}
}

func TestSweepSingleLevelMode(t *testing.T) {
	base := Sweep{
		Expr: "A & B", Union: 1024, Targets: []int{256},
		SketchCounts: []int{128}, Runs: 3, TrimFraction: 0.3,
		Eps: 0.25, Config: quickCfg, Seed: 5,
	}
	multi, err := base.Run()
	if err != nil {
		t.Fatal(err)
	}
	single := base
	single.SingleLevel = true
	sres, err := single.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Same workloads, different estimators: results must differ (the
	// single-level estimator uses far fewer observations) and both be
	// finite.
	if multi.Points[0].Error == sres.Points[0].Error {
		t.Error("single-level mode produced identical errors to multi-level")
	}
	for _, p := range append(multi.Points, sres.Points...) {
		if math.IsNaN(p.Error) {
			t.Errorf("NaN error in %+v", p)
		}
	}
}

// TestSweepExpressionsDecorrelated guards the seed-mixing fix: two
// sweeps that differ only in the expression must not produce
// point-for-point identical error rows.
func TestSweepExpressionsDecorrelated(t *testing.T) {
	base := Sweep{
		Union: 1024, Targets: []int{256}, SketchCounts: []int{64, 128},
		Runs: 3, TrimFraction: 0.3, Eps: 0.25, Config: quickCfg, Seed: 5,
	}
	inter := base
	inter.Expr = "A & B"
	diff := base
	diff.Expr = "A - B"
	ri, err := inter.Run()
	if err != nil {
		t.Fatal(err)
	}
	rd, err := diff.Run()
	if err != nil {
		t.Fatal(err)
	}
	identical := true
	for i := range ri.Points {
		if ri.Points[i].Error != rd.Points[i].Error {
			identical = false
		}
	}
	if identical {
		t.Error("A&B and A-B sweeps produced identical error rows; expression not mixed into seeds")
	}
}

func TestFNV64(t *testing.T) {
	if fnv64("A & B") == fnv64("A - B") {
		t.Error("fnv64 collides on the two figure expressions")
	}
	if fnv64("") != 14695981039346656037 {
		t.Error("fnv64 offset basis wrong")
	}
}

func TestSweepValidation(t *testing.T) {
	good := Sweep{
		Expr: "A & B", Union: 256, Targets: []int{64},
		SketchCounts: []int{16}, Runs: 1, TrimFraction: 0.3,
		Eps: 0.3, Config: quickCfg, Seed: 1,
	}
	bad := []func(*Sweep){
		func(s *Sweep) { s.Expr = "A &" },
		func(s *Sweep) { s.Union = 0 },
		func(s *Sweep) { s.Targets = nil },
		func(s *Sweep) { s.SketchCounts = nil },
		func(s *Sweep) { s.Runs = 0 },
		func(s *Sweep) { s.TrimFraction = 1 },
		func(s *Sweep) { s.Eps = 0 },
		func(s *Sweep) { s.TrimFraction = -0.1 },
	}
	for i, mutate := range bad {
		s := good
		mutate(&s)
		if _, err := s.Run(); err == nil {
			t.Errorf("bad sweep %d accepted", i)
		}
	}
}
