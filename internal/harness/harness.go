// Package harness implements the experimental methodology of the
// paper's §5: repeated randomized trials over controlled synthetic
// workloads, the trimmed-average relative-error metric (drop the 30%
// worst errors per configuration), and accuracy-vs-space sweeps over
// the number of maintained 2-level hash sketches — the axes of paper
// Figures 7(a), 7(b), and 8.
package harness

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"setsketch/internal/core"
	"setsketch/internal/datagen"
	"setsketch/internal/expr"
	"setsketch/internal/hashing"
	"setsketch/internal/multiset"
)

// Sweep describes one figure-style experiment: for each target
// expression size and each sketch count, measure the trimmed-average
// relative error of the estimator across Runs randomized trials.
type Sweep struct {
	// Expr is the set expression under test, e.g. "A & B" or "(A - B) & C".
	Expr string
	// Union is u = |∪_i A_i| (§5.1 uses ≈ 2^18; scale down for speed —
	// the error behaviour depends on the target/union *ratio*).
	Union int
	// Targets are the desired |E| values, one series per value.
	Targets []int
	// SketchCounts are the r values swept along the x-axis.
	SketchCounts []int
	// Runs is the number of randomized trials per point (§5.1: 10–15).
	Runs int
	// TrimFraction is the fraction of the highest errors discarded per
	// point (§5.1: 0.30).
	TrimFraction float64
	// Eps is the ε parameter handed to the estimators.
	Eps float64
	// Config shapes the sketches; zero value means core.DefaultConfig.
	Config core.Config
	// Seed drives all randomness; every (run, target) pair derives its
	// own child seed, so sweeps are reproducible.
	Seed uint64
	// Churn optionally renders the workload as an update stream with
	// deletions instead of inserting elements directly (the net
	// multisets, and hence correct estimates, are identical).
	Churn datagen.ChurnSpec
	// SingleLevel switches from the multi-level witness estimator (the
	// default, which matches the paper's experimental error levels) to
	// the single-level estimator exactly as written in Fig. 6 / §4.
	// See EXPERIMENTS.md for the comparison.
	SingleLevel bool
	// Workers bounds trial parallelism; 0 means GOMAXPROCS.
	Workers int
}

// Point is one measured point of a sweep.
type Point struct {
	// Target is the requested |E| for this series.
	Target int
	// Sketches is the number of 2-level hash sketch copies r.
	Sketches int
	// Error is the trimmed-average relative error at this point.
	Error float64
	// Runs is the number of trials that produced a usable estimate.
	Runs int
	// Failed counts trials where the estimator returned no valid
	// observation (counted as error 1.0 in Error).
	Failed int
}

// Result is a completed sweep: points ordered by (target, sketches).
type Result struct {
	Sweep  Sweep
	Points []Point
}

// trial measures, for one generated workload, the relative error at
// every sketch count, reusing one maximal family per stream and
// estimating from prefixes (the estimate at r copies depends only on
// the first r copies, so this matches building r sketches directly).
func (s *Sweep) trial(node expr.Node, target int, runSeed uint64) ([]float64, []bool, error) {
	rng := hashing.NewRNG(runSeed)
	w, err := datagen.Generate(datagen.Spec{Expr: node, Union: s.Union, Target: target, Balance: true}, rng)
	if err != nil {
		return nil, nil, err
	}
	exact := exactSize(w, node)

	maxR := 0
	for _, r := range s.SketchCounts {
		if r > maxR {
			maxR = r
		}
	}
	cfg := s.Config
	if cfg == (core.Config{}) {
		cfg = core.DefaultConfig()
	}
	fams := make(map[string]*core.Family, len(w.Streams))
	famSeed := hashing.DeriveSeed(runSeed, 1)
	for name := range w.Streams {
		f, err := core.NewFamily(cfg, famSeed, maxR)
		if err != nil {
			return nil, nil, err
		}
		fams[name] = f
	}
	if s.Churn == (datagen.ChurnSpec{}) {
		for name, elems := range w.Streams {
			f := fams[name]
			for _, e := range elems {
				f.Insert(e)
			}
		}
	} else {
		ups, err := datagen.RenderUpdates(w, s.Churn, rng)
		if err != nil {
			return nil, nil, err
		}
		for _, u := range ups {
			fams[u.Stream].Update(u.Elem, u.Delta)
		}
	}

	errs := make([]float64, len(s.SketchCounts))
	failed := make([]bool, len(s.SketchCounts))
	for i, r := range s.SketchCounts {
		view := make(map[string]*core.Family, len(fams))
		for name, f := range fams {
			tr, err := f.Truncate(r)
			if err != nil {
				return nil, nil, err
			}
			view[name] = tr
		}
		estimator := core.EstimateExpressionMultiLevel
		if s.SingleLevel {
			estimator = core.EstimateExpression
		}
		est, err := estimator(node, view, s.Eps)
		switch {
		case err == core.ErrNoObservations:
			errs[i], failed[i] = 1, true
		case err != nil:
			return nil, nil, err
		case exact == 0:
			// Relative error is undefined at |E| = 0; score absolute
			// deviation scaled by 1 so a correct 0 estimate is perfect.
			errs[i] = math.Abs(est.Value)
		default:
			errs[i] = math.Abs(est.Value-float64(exact)) / float64(exact)
		}
	}
	return errs, failed, nil
}

// Run executes the sweep and collects trimmed-average errors.
func (s Sweep) Run() (*Result, error) {
	node, err := expr.Parse(s.Expr)
	if err != nil {
		return nil, err
	}
	if err := s.validate(); err != nil {
		return nil, err
	}
	type cell struct {
		errs   []float64
		failed int
	}
	grid := make([][]cell, len(s.Targets))
	for i := range grid {
		grid[i] = make([]cell, len(s.SketchCounts))
	}

	// Mix the expression into the seed path: with a shared (seed,
	// target, run) alone, the generator hands different expressions
	// byte-identical element assignments and hash placements, and the
	// witness outcome degenerates to the same "element ∈ E" indicator —
	// making, e.g., the A&B and A−B sweeps coincide point for point.
	exprSeed := fnv64(s.Expr)

	type job struct{ ti, run int }
	jobs := make(chan job)
	var mu sync.Mutex
	var firstErr error
	var wg sync.WaitGroup
	workers := s.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				runSeed := hashing.DeriveSeed(s.Seed^exprSeed, uint64(j.ti), uint64(j.run))
				errs, failed, err := s.trial(node, s.Targets[j.ti], runSeed)
				mu.Lock()
				if err != nil && firstErr == nil {
					firstErr = err
				}
				if err == nil {
					for k := range errs {
						grid[j.ti][k].errs = append(grid[j.ti][k].errs, errs[k])
						if failed[k] {
							grid[j.ti][k].failed++
						}
					}
				}
				mu.Unlock()
			}
		}()
	}
	for ti := range s.Targets {
		for run := 0; run < s.Runs; run++ {
			jobs <- job{ti, run}
		}
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	res := &Result{Sweep: s}
	for ti, target := range s.Targets {
		for ri, r := range s.SketchCounts {
			c := grid[ti][ri]
			res.Points = append(res.Points, Point{
				Target:   target,
				Sketches: r,
				Error:    TrimmedMean(c.errs, s.TrimFraction),
				Runs:     len(c.errs),
				Failed:   c.failed,
			})
		}
	}
	return res, nil
}

func (s Sweep) validate() error {
	if s.Union <= 0 {
		return fmt.Errorf("harness: union size %d", s.Union)
	}
	if len(s.Targets) == 0 || len(s.SketchCounts) == 0 {
		return fmt.Errorf("harness: empty targets or sketch counts")
	}
	if s.Runs <= 0 {
		return fmt.Errorf("harness: runs = %d", s.Runs)
	}
	if s.TrimFraction < 0 || s.TrimFraction >= 1 {
		return fmt.Errorf("harness: trim fraction %v out of [0, 1)", s.TrimFraction)
	}
	if s.Eps <= 0 || s.Eps >= 1 {
		return fmt.Errorf("harness: eps %v out of (0, 1)", s.Eps)
	}
	return nil
}

// fnv64 is FNV-1a over a string, used to mix the expression text into
// seed derivation.
func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// exactSize computes the exact |E| of a workload.
func exactSize(w *datagen.Workload, node expr.Node) int {
	sets := make(map[string]multiset.Set, len(w.Streams))
	for name, elems := range w.Streams {
		set := make(multiset.Set, len(elems))
		for _, e := range elems {
			set[e] = struct{}{}
		}
		sets[name] = set
	}
	return len(node.EvalSet(sets))
}

// TrimmedMean returns the mean of errs after discarding the ⌈trim·n⌉
// highest values — the §5.1 "trimmed-average" metric that suppresses
// the outlier estimates a randomized scheme occasionally produces.
// An empty input returns NaN.
func TrimmedMean(errs []float64, trim float64) float64 {
	if len(errs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), errs...)
	sort.Float64s(sorted)
	keep := len(sorted) - int(math.Ceil(trim*float64(len(sorted))))
	if keep < 1 {
		keep = 1
	}
	var sum float64
	for _, e := range sorted[:keep] {
		sum += e
	}
	return sum / float64(keep)
}

// Series extracts the (sketches, error) series for one target from a
// result, in sketch-count order — one plotted line of a paper figure.
func (r *Result) Series(target int) []Point {
	var out []Point
	for _, p := range r.Points {
		if p.Target == target {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Sketches < out[j].Sketches })
	return out
}
