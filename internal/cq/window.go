package cq

import (
	"time"

	"setsketch/internal/core"
)

// Ring is the windowed sketch state of one (view, group) pair: a ring
// of per-bucket family sets, each bucket covering one slide interval.
// The window estimate merges every live bucket; advancing the window
// drops the bucket that fell out of it — and by linearity that drop is
// exact, because a merged family is precisely the counter sum of its
// buckets. There is no decayed residue, no approximation: the merged
// window family is bit-identical to a family built from only the
// in-window updates (tested differentially in window_test.go).
//
// An all-time "ring" (window 0) is a single eternal bucket that never
// rotates; Merged then returns the live families without copying.
//
// Ring does no locking: the Engine's embedder serializes mutations and
// keeps reads (Merged, LiveBuckets) from racing them.
type Ring struct {
	slide  time.Duration
	newFam func() (*core.Family, error)

	// buckets[i] is nil or the family set of one slide interval; head
	// indexes the current interval [start, start+slide).
	buckets []map[string]*core.Family
	head    int
	start   time.Time
}

// NewRing creates the state for one group of a view: spec.Buckets()
// slots of spec.Slide width, the current bucket starting at now
// (aligned down to a slide boundary so bucket edges are stable across
// groups). newFam mints empty aligned families on demand.
func NewRing(spec ViewSpec, now time.Time, newFam func() (*core.Family, error)) *Ring {
	r := &Ring{newFam: newFam, buckets: make([]map[string]*core.Family, spec.Buckets())}
	if spec.Windowed() {
		r.slide = spec.Slide
		r.start = now.Truncate(spec.Slide)
	}
	return r
}

// RotateTo advances the ring so its current bucket covers now,
// clearing each slot that wraps around (its contents fell out of the
// window). It returns how many slots advanced and how many non-empty
// buckets were evicted; evictions > 0 means the window's merged
// contents changed. All-time rings never rotate.
func (r *Ring) RotateTo(now time.Time) (rotations, evictions int) {
	if r.slide <= 0 {
		return 0, 0
	}
	steps := int64(now.Sub(r.start) / r.slide)
	if steps <= 0 {
		return 0, 0
	}
	n := int64(len(r.buckets))
	if steps >= n {
		// The whole window aged out (idle view, or a clock jump): every
		// bucket is evicted and the ring restarts at now's boundary.
		for i, b := range r.buckets {
			if len(b) > 0 {
				evictions++
			}
			r.buckets[i] = nil
		}
		r.head = 0
		r.start = now.Truncate(r.slide)
		return len(r.buckets), evictions
	}
	for i := int64(0); i < steps; i++ {
		r.start = r.start.Add(r.slide)
		r.head = (r.head + 1) % len(r.buckets)
		if len(r.buckets[r.head]) > 0 {
			evictions++
		}
		r.buckets[r.head] = nil
	}
	return int(steps), evictions
}

// family returns the current bucket's family for a stream, creating
// bucket and family on first touch.
func (r *Ring) family(stream string) (*core.Family, error) {
	b := r.buckets[r.head]
	if b == nil {
		b = make(map[string]*core.Family)
		r.buckets[r.head] = b
	}
	f, ok := b[stream]
	if !ok {
		var err error
		if f, err = r.newFam(); err != nil {
			return nil, err
		}
		b[stream] = f
	}
	return f, nil
}

// Observe applies one update to the current bucket.
func (r *Ring) Observe(stream string, elem uint64, delta int64) error {
	f, err := r.family(stream)
	if err != nil {
		return err
	}
	f.Update(elem, delta)
	return nil
}

// ObserveDigest applies one precomputed digest update to the current
// bucket — digests depend only on the stored coins, so a digest
// computed for the coordinator's all-time family applies unchanged to
// any aligned bucket family.
func (r *Ring) ObserveDigest(stream string, d core.Digest, delta int64) error {
	f, err := r.family(stream)
	if err != nil {
		return err
	}
	f.UpdateDigest(d, delta)
	return nil
}

// MergeDelta merges a site-sketched synopsis delta into the current
// bucket (window position = coordinator arrival time).
func (r *Ring) MergeDelta(stream string, fam *core.Family) error {
	f, err := r.family(stream)
	if err != nil {
		return err
	}
	return f.Merge(fam)
}

// Merged returns the window's family set: every live bucket merged,
// per stream. Single-bucket (all-time) rings return their live
// families without copying; windowed rings merge into clones, leaving
// bucket state untouched, so Merged is always read-only on the ring.
func (r *Ring) Merged() (map[string]*core.Family, error) {
	if len(r.buckets) == 1 {
		if r.buckets[0] == nil {
			return map[string]*core.Family{}, nil
		}
		return r.buckets[0], nil
	}
	out := make(map[string]*core.Family)
	for _, b := range r.buckets {
		for name, f := range b {
			if cur, ok := out[name]; ok {
				if err := cur.Merge(f); err != nil {
					return nil, err
				}
			} else {
				out[name] = f.Clone()
			}
		}
	}
	return out, nil
}

// LiveBuckets counts buckets currently holding state.
func (r *Ring) LiveBuckets() int {
	n := 0
	for _, b := range r.buckets {
		if len(b) > 0 {
			n++
		}
	}
	return n
}

// Empty reports whether no bucket holds state.
func (r *Ring) Empty() bool { return r.LiveBuckets() == 0 }
