package cq

import (
	"container/list"
	"sort"
)

// Groups is the bounded keyed state of one view: group key → Ring,
// with least-recently-updated eviction once the table exceeds its cap.
// Recency is update recency, not read recency — evaluation sweeps
// every group each round and must not refresh anything.
//
// Eviction drops the whole group's sketch state; a key that reappears
// starts from empty. That makes grouped estimates exact only for keys
// that stayed under the cap's protection — the documented trade for a
// hard memory bound (see QUERIES.md "Group eviction").
type Groups struct {
	max   int        // 0 = unbounded (the implicit group of ungrouped views)
	order *list.List // front = most recently updated
	m     map[string]*list.Element
}

// groupState is one group's entry: its key and windowed sketch state.
type groupState struct {
	key  string
	ring *Ring
}

// newGroups creates a table evicting past max live groups (0 =
// unbounded).
func newGroups(max int) *Groups {
	return &Groups{max: max, order: list.New(), m: make(map[string]*list.Element)}
}

// Touch returns the group's state, creating it via mk on first use and
// marking it most-recently-updated. When creation pushes the table
// past its cap, the least-recently-updated groups are dropped and
// their keys returned.
func (g *Groups) Touch(key string, mk func() *Ring) (*groupState, []string) {
	if el, ok := g.m[key]; ok {
		g.order.MoveToFront(el)
		return el.Value.(*groupState), nil
	}
	st := &groupState{key: key, ring: mk()}
	g.m[key] = g.order.PushFront(st)
	var evicted []string
	for g.max > 0 && g.order.Len() > g.max {
		back := g.order.Back()
		old := back.Value.(*groupState)
		g.order.Remove(back)
		delete(g.m, old.key)
		evicted = append(evicted, old.key)
	}
	return st, evicted
}

// Get returns a group's state without touching recency, or nil.
func (g *Groups) Get(key string) *groupState {
	if el, ok := g.m[key]; ok {
		return el.Value.(*groupState)
	}
	return nil
}

// Len reports how many groups are live.
func (g *Groups) Len() int { return g.order.Len() }

// Keys returns the live group keys, sorted, so evaluation and
// delivery order are deterministic.
func (g *Groups) Keys() []string {
	out := make([]string, 0, len(g.m))
	for k := range g.m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// each calls fn for every live group.
func (g *Groups) each(fn func(*groupState)) {
	for el := g.order.Front(); el != nil; el = el.Next() {
		fn(el.Value.(*groupState))
	}
}
