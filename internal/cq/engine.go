package cq

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"setsketch/internal/core"
	"setsketch/internal/expr"
	"setsketch/internal/obs"
)

// Options configures an Engine.
type Options struct {
	// NewFamily mints an empty family aligned with the embedding
	// coordinator's stored coins (required): every bucket and group
	// family must merge and digest-apply against the same coins.
	NewFamily func() (*core.Family, error)
	// MaxGroups bounds the live groups of each grouped view; past it
	// the least-recently-updated group is evicted. 0 selects the
	// default (4096); negative disables the bound.
	MaxGroups int
	// GroupSep splits a physical stream name into ⟨group, logical⟩ for
	// grouped views ("acme:logins" → group "acme", logical "logins").
	// Default ":".
	GroupSep string
	// Now is the window clock (default time.Now). Tests and examples
	// inject fake clocks to drive rotation deterministically.
	Now func() time.Time
}

// DefaultMaxGroups bounds grouped views that do not override it.
const DefaultMaxGroups = 4096

func (o Options) withDefaults() Options {
	if o.MaxGroups == 0 {
		o.MaxGroups = DefaultMaxGroups
	}
	if o.MaxGroups < 0 {
		o.MaxGroups = 0 // unbounded
	}
	if o.GroupSep == "" {
		o.GroupSep = ":"
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return o
}

// engineMetrics is the engine's counter set (gauges — views, buckets,
// groups — are registered by the embedder, which owns the lock they
// must be read under).
type engineMetrics struct {
	updates         *obs.Counter
	windowRotations *obs.Counter
	windowEvictions *obs.Counter
	groupEvictions  *obs.Counter
}

func newEngineMetrics(reg *obs.Registry) engineMetrics {
	return engineMetrics{
		updates: reg.Counter("cq_view_updates_total",
			"Stream updates routed into continuous-view window/group state."),
		windowRotations: reg.Counter("cq_window_rotations_total",
			"Window ring bucket advances across all views and groups."),
		windowEvictions: reg.Counter("cq_window_evictions_total",
			"Non-empty window buckets dropped after falling out of their window (exact eviction by linearity)."),
		groupEvictions: reg.Counter("cq_group_evictions_total",
			"Group sketch states evicted by the bounded per-view group table (least-recently-updated first)."),
	}
}

// Engine holds the continuous-view catalog and all window/group sketch
// state. It does no locking: the embedding coordinator calls every
// mutating method (Register, Drop, Observe*, MergeDelta, Rotate*)
// under its state write lock and the read-only ones (Evaluate, Specs,
// counters) under at least a read lock.
type Engine struct {
	opts Options
	met  engineMetrics
	log  *obs.Logger

	views map[string]*View
	// routes caches physical stream → observation targets; rebuilt
	// lazily after any Register/Drop. Its keys mirror the
	// coordinator's stream map, so it is bounded by the same
	// cardinality.
	routes map[string][]route
	// empty backs Evaluate's missing-stream backfill: a referenced
	// stream with no in-window state is an empty set, not an error
	// (after eviction the two are indistinguishable anyway). Estimation
	// is read-only, so one shared instance serves every view.
	empty *core.Family
}

// route is one resolved observation target: updates to a physical
// stream feed view v's group as logical stream logical.
type route struct {
	v       *View
	group   string
	logical string
}

// NewEngine creates an empty engine.
func NewEngine(opts Options) (*Engine, error) {
	if opts.NewFamily == nil {
		return nil, fmt.Errorf("cq: Options.NewFamily is required")
	}
	empty, err := opts.NewFamily()
	if err != nil {
		return nil, err
	}
	return &Engine{
		opts:   opts.withDefaults(),
		met:    newEngineMetrics(nil),
		views:  make(map[string]*View),
		routes: make(map[string][]route),
		empty:  empty,
	}, nil
}

// SetObservability attaches a metrics registry and logger, exporting
// the cq_* counters documented in OPERATIONS.md. Call once, before
// traffic; either argument may be nil.
func (e *Engine) SetObservability(reg *obs.Registry, log *obs.Logger) {
	e.met = newEngineMetrics(reg)
	e.log = log.Named("cq")
}

// Now returns the engine's window clock reading.
func (e *Engine) Now() time.Time { return e.opts.Now() }

// View is one registered continuous view: its spec, compiled query,
// and keyed window state. All fields are engine-lock-domain state.
type View struct {
	spec      ViewSpec
	node      expr.Node
	q         *core.Query // nil beyond the 64-stream kernel limit
	streams   []string    // sorted logical streams the expression reads
	streamSet map[string]struct{}
	groups    *Groups
	// version stamps content-visible changes (observations, non-empty
	// evictions, group evictions) so watchers can skip rounds whose
	// window contents cannot have changed.
	version uint64
}

// Spec returns the view's definition.
func (v *View) Spec() ViewSpec { return v.spec }

// Version returns the view's change stamp.
func (v *View) Version() uint64 { return v.version }

// Streams returns the logical streams the view's expression reads.
func (v *View) Streams() []string { return append([]string(nil), v.streams...) }

// newRing mints one group's ring for this view.
func (v *View) newRing(e *Engine) *Ring {
	return NewRing(v.spec, e.opts.Now(), e.opts.NewFamily)
}

// Register adds a view to the catalog. The spec is validated (and its
// expression canonicalized); a name collision is an error.
func (e *Engine) Register(spec ViewSpec) (*View, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if _, ok := e.views[spec.Name]; ok {
		return nil, fmt.Errorf("cq: view %q already exists", spec.Name)
	}
	node, err := expr.Parse(spec.Expr)
	if err != nil {
		return nil, err // unreachable: Validate parsed it
	}
	v := &View{
		spec:      spec,
		node:      node,
		streams:   expr.Streams(node),
		streamSet: make(map[string]struct{}),
	}
	for _, name := range v.streams {
		v.streamSet[name] = struct{}{}
	}
	if q, err := core.CompileQuery(node); err == nil {
		v.q = q
	}
	max := e.opts.MaxGroups
	if !spec.Grouped() {
		max = 0 // single implicit group, never evicted
	}
	v.groups = newGroups(max)
	if !spec.Grouped() {
		// Eager implicit group so evaluation always yields one result
		// row (estimate 0 before any update), never an empty set of
		// groups.
		v.groups.Touch("", func() *Ring { return v.newRing(e) })
	}
	e.views[spec.Name] = v
	e.routes = make(map[string][]route)
	return v, nil
}

// Drop removes a view and all its state; it reports whether the view
// existed.
func (e *Engine) Drop(name string) bool {
	if _, ok := e.views[name]; !ok {
		return false
	}
	delete(e.views, name)
	e.routes = make(map[string][]route)
	return true
}

// View returns a registered view, or nil.
func (e *Engine) View(name string) *View { return e.views[name] }

// Specs returns every registered view's definition, sorted by name.
func (e *Engine) Specs() []ViewSpec {
	names := make([]string, 0, len(e.views))
	for n := range e.views {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]ViewSpec, 0, len(names))
	for _, n := range names {
		out = append(out, e.views[n].spec)
	}
	return out
}

// Statements returns the canonical CREATE VIEW statement of every
// registered view, sorted by name — the catalog serialization
// persisted in snapshots.
func (e *Engine) Statements() []string {
	specs := e.Specs()
	out := make([]string, 0, len(specs))
	for _, s := range specs {
		out = append(out, s.Statement())
	}
	return out
}

// route resolves a physical stream's observation targets, caching the
// answer. Ungrouped views match the stream name exactly; grouped views
// match "⟨group⟩⟨sep⟩⟨logical⟩" where logical is one of the view's
// streams. Route order is deterministic (views sorted by name).
func (e *Engine) route(stream string) []route {
	if rts, ok := e.routes[stream]; ok {
		return rts
	}
	group, logical := "", ""
	if i := strings.Index(stream, e.opts.GroupSep); i > 0 {
		group, logical = stream[:i], stream[i+len(e.opts.GroupSep):]
	}
	names := make([]string, 0, len(e.views))
	for n := range e.views {
		names = append(names, n)
	}
	sort.Strings(names)
	rts := []route{}
	for _, n := range names {
		v := e.views[n]
		if v.spec.Grouped() {
			if logical != "" {
				if _, ok := v.streamSet[logical]; ok {
					rts = append(rts, route{v: v, group: group, logical: logical})
				}
			}
		} else if _, ok := v.streamSet[stream]; ok {
			rts = append(rts, route{v: v, group: "", logical: stream})
		}
	}
	e.routes[stream] = rts
	return rts
}

// target resolves one route to its group's ring, rotating it to now,
// touching group recency, and accounting evictions.
func (e *Engine) target(rt route, now time.Time) *Ring {
	st, evicted := rt.v.groups.Touch(rt.group, func() *Ring { return rt.v.newRing(e) })
	if len(evicted) > 0 {
		e.met.groupEvictions.Add(uint64(len(evicted)))
		rt.v.version++
		if e.log != nil {
			e.log.Debug("groups evicted", "view", rt.v.spec.Name, "evicted", len(evicted), "live", rt.v.groups.Len())
		}
	}
	e.rotate(rt.v, st.ring, now)
	return st.ring
}

// rotate advances one ring and accounts the change.
func (e *Engine) rotate(v *View, r *Ring, now time.Time) {
	rotations, evictions := r.RotateTo(now)
	if rotations > 0 {
		e.met.windowRotations.Add(uint64(rotations))
	}
	if evictions > 0 {
		e.met.windowEvictions.Add(uint64(evictions))
		v.version++ // window contents changed even without new updates
	}
}

// Observe routes one raw update into every interested view's current
// bucket. Streams no view reads cost one cache lookup.
func (e *Engine) Observe(stream string, elem uint64, delta int64) error {
	rts := e.route(stream)
	if len(rts) == 0 {
		return nil
	}
	now := e.opts.Now()
	for _, rt := range rts {
		if err := e.target(rt, now).Observe(rt.logical, elem, delta); err != nil {
			return err
		}
		rt.v.version++
		e.met.updates.Inc()
	}
	return nil
}

// ObserveDigest routes one digest-packed update (the WAL/ingest fast
// path: the hash bill was already paid once).
func (e *Engine) ObserveDigest(stream string, d core.Digest, delta int64) error {
	rts := e.route(stream)
	if len(rts) == 0 {
		return nil
	}
	now := e.opts.Now()
	for _, rt := range rts {
		if err := e.target(rt, now).ObserveDigest(rt.logical, d, delta); err != nil {
			return err
		}
		rt.v.version++
		e.met.updates.Inc()
	}
	return nil
}

// MergeDelta routes one site-sketched synopsis delta, merged by
// linearity into every interested view's current bucket.
func (e *Engine) MergeDelta(stream string, fam *core.Family) error {
	rts := e.route(stream)
	if len(rts) == 0 {
		return nil
	}
	now := e.opts.Now()
	for _, rt := range rts {
		if err := e.target(rt, now).MergeDelta(rt.logical, fam); err != nil {
			return err
		}
		rt.v.version++
		e.met.updates.Inc()
	}
	return nil
}

// RotateAll advances every windowed ring to now, evicting aged-out
// buckets — the coordinator's rotation tick, so idle views still
// age (and their watchers still see version changes).
func (e *Engine) RotateAll(now time.Time) {
	for _, v := range e.views {
		if !v.spec.Windowed() {
			continue
		}
		v.groups.each(func(st *groupState) { e.rotate(v, st.ring, now) })
	}
}

// GroupResult is one per-group evaluation of a view. The engine leaves
// Delta zero; the watch layer fills it for ISTREAM emission (signed
// change in the estimate since the group's last emitted round).
type GroupResult struct {
	Group string
	Est   core.Estimate
	Delta float64
	Err   string
}

// Evaluate estimates a view's expression for every live group, in
// sorted group order. It is read-only on engine state (rotation
// happens in the mutation/tick paths), so the embedder may run it
// under a read lock. Per-group errors (typically a group that has not
// yet seen every referenced stream) are reported in-band.
func (e *Engine) Evaluate(v *View, eps float64, opts core.EstimateOptions) []GroupResult {
	keys := v.groups.Keys()
	out := make([]GroupResult, 0, len(keys))
	for _, k := range keys {
		st := v.groups.Get(k)
		res := GroupResult{Group: k}
		fams, err := st.ring.Merged()
		if err == nil {
			// A referenced stream absent from the window is an empty
			// set — aged-out and never-seen are indistinguishable once
			// the bucket that held it is gone. Backfill into a copy:
			// Merged may alias live bucket state.
			missing := 0
			for _, name := range v.streams {
				if _, ok := fams[name]; !ok {
					missing++
				}
			}
			if missing > 0 {
				filled := make(map[string]*core.Family, len(fams)+missing)
				for name, f := range fams {
					filled[name] = f
				}
				for _, name := range v.streams {
					if _, ok := filled[name]; !ok {
						filled[name] = e.empty
					}
				}
				fams = filled
			}
		}
		if err == nil {
			var est core.Estimate
			if v.q != nil {
				est, err = v.q.Estimate(fams, eps, true, opts)
			} else {
				est, err = core.EstimateExpressionOpts(v.node, fams, eps, true, opts)
			}
			res.Est = est
		}
		if err != nil {
			res.Err = err.Error()
		}
		out = append(out, res)
	}
	return out
}

// Counts reports catalog-wide totals for the embedder's gauges:
// registered views, live (non-empty) window buckets, and live groups
// of grouped views.
func (e *Engine) Counts() (views, buckets, groups int) {
	views = len(e.views)
	for _, v := range e.views {
		v.groups.each(func(st *groupState) { buckets += st.ring.LiveBuckets() })
		if v.spec.Grouped() {
			groups += v.groups.Len()
		}
	}
	return views, buckets, groups
}
