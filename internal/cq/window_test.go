package cq

import (
	"testing"
	"time"

	"setsketch/internal/core"
)

var testCfg = core.Config{Buckets: 61, SecondLevel: 16, FirstWise: 8}

func testNewFam() (*core.Family, error) {
	return core.NewFamily(testCfg, 42, 64)
}

func mustFam(t testing.TB) *core.Family {
	t.Helper()
	f, err := testNewFam()
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// timedUpdate is one update with its arrival time, replayed both into
// the ring and into the from-scratch reference.
type timedUpdate struct {
	at     time.Time
	stream string
	elem   uint64
	delta  int64
}

// referenceFams builds from-scratch families from only the updates
// still inside the window that a ring rotated to `now` covers: the
// current bucket's interval plus the N−1 before it.
func referenceFams(t testing.TB, spec ViewSpec, now time.Time, ups []timedUpdate) map[string]*core.Family {
	t.Helper()
	out := make(map[string]*core.Family)
	var lo time.Time
	windowed := spec.Windowed()
	if windowed {
		lo = now.Truncate(spec.Slide).Add(-time.Duration(spec.Buckets()-1) * spec.Slide)
	}
	for _, u := range ups {
		if u.at.After(now) {
			continue
		}
		if windowed && u.at.Truncate(spec.Slide).Before(lo) {
			continue
		}
		f, ok := out[u.stream]
		if !ok {
			f = mustFam(t)
			out[u.stream] = f
		}
		f.Update(u.elem, u.delta)
	}
	return out
}

// checkDifferential replays updates (already time-sorted) through a
// ring, rotating as the clock advances, then asserts the merged window
// families are bit-identical to the from-scratch reference at several
// checkpoints — including ones far past the last update, where every
// bucket has been evicted.
func checkDifferential(t testing.TB, spec ViewSpec, start time.Time, ups []timedUpdate, checkpoints []time.Time) {
	t.Helper()
	r := NewRing(spec, start, testNewFam)
	i := 0
	for _, now := range checkpoints {
		for i < len(ups) && !ups[i].at.After(now) {
			r.RotateTo(ups[i].at)
			if err := r.Observe(ups[i].stream, ups[i].elem, ups[i].delta); err != nil {
				t.Fatal(err)
			}
			i++
		}
		r.RotateTo(now)
		got, err := r.Merged()
		if err != nil {
			t.Fatal(err)
		}
		want := referenceFams(t, spec, now, ups)
		if len(got) < len(want) {
			t.Fatalf("at %v: merged has %d streams, reference %d", now, len(got), len(want))
		}
		for name, g := range got {
			w, ok := want[name]
			if !ok {
				// The ring may retain an all-zero family (created then
				// aged to empty content); it must equal an empty one.
				w = mustFam(t)
			}
			if !g.Equal(w) {
				t.Fatalf("at %v: stream %q: merged family differs from from-scratch reference", now, name)
			}
		}
		for name := range want {
			if _, ok := got[name]; !ok {
				t.Fatalf("at %v: stream %q missing from merged window", now, name)
			}
		}
	}
}

func TestWindowDifferentialSliding(t *testing.T) {
	spec := ViewSpec{Name: "v", Expr: "a | b", Window: 5 * time.Minute, Slide: time.Minute}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	start := time.Unix(1_700_000_000, 0)
	var ups []timedUpdate
	for i := 0; i < 600; i++ {
		at := start.Add(time.Duration(i) * 2 * time.Second)
		stream := "a"
		if i%3 == 0 {
			stream = "b"
		}
		delta := int64(1)
		if i%7 == 0 {
			delta = -1 // deletions ride the same linear path
		}
		ups = append(ups, timedUpdate{at: at, stream: stream, elem: uint64(i % 97), delta: delta})
	}
	var checks []time.Time
	for m := 0; m <= 25; m++ {
		checks = append(checks, start.Add(time.Duration(m)*time.Minute+17*time.Second))
	}
	// Far future: everything evicted.
	checks = append(checks, start.Add(2*time.Hour))
	checkDifferential(t, spec, start, ups, checks)
}

func TestWindowDifferentialTumbling(t *testing.T) {
	spec := ViewSpec{Name: "v", Expr: "a", Window: time.Minute}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	start := time.Unix(1_700_000_000, 30)
	var ups []timedUpdate
	for i := 0; i < 200; i++ {
		ups = append(ups, timedUpdate{
			at:     start.Add(time.Duration(i) * 5 * time.Second),
			stream: "a", elem: uint64(i), delta: 1,
		})
	}
	var checks []time.Time
	for s := 0; s <= 1100; s += 37 {
		checks = append(checks, start.Add(time.Duration(s)*time.Second))
	}
	checkDifferential(t, spec, start, ups, checks)
}

// All-time rings must behave exactly like a single always-merged
// family: no rotation ever, Merged returns the live state.
func TestAllTimeRingNeverRotates(t *testing.T) {
	spec := ViewSpec{Name: "v", Expr: "a"}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	start := time.Unix(0, 0)
	r := NewRing(spec, start, testNewFam)
	ref := mustFam(t)
	for i := 0; i < 100; i++ {
		if rot, ev := r.RotateTo(start.Add(time.Duration(i) * time.Hour)); rot != 0 || ev != 0 {
			t.Fatalf("all-time ring rotated: %d/%d", rot, ev)
		}
		if err := r.Observe("a", uint64(i), 1); err != nil {
			t.Fatal(err)
		}
		ref.Update(uint64(i), 1)
	}
	got, err := r.Merged()
	if err != nil {
		t.Fatal(err)
	}
	if !got["a"].Equal(ref) {
		t.Fatal("all-time merged family differs from reference")
	}
}

// Digest updates and raw updates must land identically: a digest is
// just the precomputed hash row of the same linear counter update.
func TestRingDigestMatchesRaw(t *testing.T) {
	spec := ViewSpec{Name: "v", Expr: "a", Window: 4 * time.Minute, Slide: time.Minute}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	start := time.Unix(1_700_000_000, 0)
	raw := NewRing(spec, start, testNewFam)
	dig := NewRing(spec, start, testNewFam)
	probe := mustFam(t) // digest source: any aligned family works
	for i := 0; i < 300; i++ {
		at := start.Add(time.Duration(i) * time.Second)
		raw.RotateTo(at)
		dig.RotateTo(at)
		if err := raw.Observe("a", uint64(i%50), 1); err != nil {
			t.Fatal(err)
		}
		if err := dig.ObserveDigest("a", probe.Digest(uint64(i%50)), 1); err != nil {
			t.Fatal(err)
		}
	}
	a, err := raw.Merged()
	if err != nil {
		t.Fatal(err)
	}
	b, err := dig.Merged()
	if err != nil {
		t.Fatal(err)
	}
	if !a["a"].Equal(b["a"]) {
		t.Fatal("digest-fed ring differs from raw-fed ring")
	}
}

// MergeDelta must be equivalent to applying the delta's updates
// directly into the same bucket.
func TestRingMergeDelta(t *testing.T) {
	spec := ViewSpec{Name: "v", Expr: "a", Window: 2 * time.Minute, Slide: time.Minute}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	start := time.Unix(1_700_000_000, 0)
	r := NewRing(spec, start, testNewFam)
	delta := mustFam(t)
	ref := mustFam(t)
	for i := 0; i < 40; i++ {
		delta.Update(uint64(i), 2)
		ref.Update(uint64(i), 2)
	}
	if err := r.MergeDelta("a", delta); err != nil {
		t.Fatal(err)
	}
	got, err := r.Merged()
	if err != nil {
		t.Fatal(err)
	}
	if !got["a"].Equal(ref) {
		t.Fatal("merged delta differs from direct updates")
	}
}

// The merged estimate itself must be identical, not merely the
// counters: the whole point of the linearity argument.
func TestWindowEstimateMatchesReference(t *testing.T) {
	spec := ViewSpec{Name: "v", Expr: "a | b", Window: 3 * time.Minute, Slide: time.Minute}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	node, q := mustQuery(t, spec.Expr)
	start := time.Unix(1_700_000_000, 0)
	r := NewRing(spec, start, testNewFam)
	var ups []timedUpdate
	for i := 0; i < 400; i++ {
		stream := "a"
		if i%2 == 0 {
			stream = "b"
		}
		u := timedUpdate{at: start.Add(time.Duration(i) * time.Second), stream: stream, elem: uint64(i % 131), delta: 1}
		ups = append(ups, u)
		r.RotateTo(u.at)
		if err := r.Observe(u.stream, u.elem, u.delta); err != nil {
			t.Fatal(err)
		}
	}
	now := ups[len(ups)-1].at
	r.RotateTo(now)
	merged, err := r.Merged()
	if err != nil {
		t.Fatal(err)
	}
	ref := referenceFams(t, spec, now, ups)
	var opts core.EstimateOptions
	got, err := q.Estimate(merged, 0.1, true, opts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.EstimateExpressionOpts(node, ref, 0.1, true, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got.Value != want.Value {
		t.Fatalf("windowed estimate %v != reference %v", got.Value, want.Value)
	}
}

// FuzzWindowDifferential drives a ring with fuzzer-chosen updates and
// clock steps and checks bit-identity against the reference at the
// final instant.
func FuzzWindowDifferential(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint8(5), uint8(1))
	f.Add([]byte{0xff, 0x00, 0x80, 0x21}, uint8(3), uint8(3))
	f.Add([]byte{9}, uint8(1), uint8(1))
	f.Fuzz(func(t *testing.T, script []byte, windowMin, slideMin uint8) {
		w := time.Duration(windowMin%16+1) * time.Minute
		s := time.Duration(slideMin%16+1) * time.Minute
		if w%s != 0 {
			t.Skip()
		}
		spec := ViewSpec{Name: "v", Expr: "a | b", Window: w, Slide: s}
		if err := spec.Validate(); err != nil {
			t.Skip()
		}
		start := time.Unix(1_700_000_000, 0)
		r := NewRing(spec, start, testNewFam)
		now := start
		var ups []timedUpdate
		for _, b := range script {
			// High bits advance the clock (0–3 slides plus a remainder);
			// low bits choose stream/element/sign.
			now = now.Add(time.Duration(b>>6) * s).Add(time.Duration(b&0x0f) * 7 * time.Second)
			stream := "a"
			if b&0x10 != 0 {
				stream = "b"
			}
			delta := int64(1)
			if b&0x20 != 0 {
				delta = -1
			}
			u := timedUpdate{at: now, stream: stream, elem: uint64(b % 37), delta: delta}
			ups = append(ups, u)
			r.RotateTo(u.at)
			if err := r.Observe(u.stream, u.elem, u.delta); err != nil {
				t.Fatal(err)
			}
		}
		r.RotateTo(now)
		got, err := r.Merged()
		if err != nil {
			t.Fatal(err)
		}
		want := referenceFams(t, spec, now, ups)
		for name, g := range got {
			w, ok := want[name]
			if !ok {
				w = mustFam(t)
			}
			if !g.Equal(w) {
				t.Fatalf("stream %q: merged differs from reference", name)
			}
		}
		for name := range want {
			if _, ok := got[name]; !ok {
				t.Fatalf("stream %q missing from merged", name)
			}
		}
	})
}
