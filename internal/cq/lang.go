// Package cq implements the continuous-query surface over the paper's
// set-expression estimators: sliding/tumbling time windows, keyed
// sketch groups, and a small declarative view language, all layered on
// the same linear synopses the point-in-time query processor uses.
//
// Everything here exploits one fact: a sketch family is a linear
// function of its update stream. That makes a time window a ring of
// per-bucket families merged on evaluation (eviction = dropping the
// oldest bucket, exactly — no decay approximation), and a keyed group
// just one family set per group key, merged and estimated
// independently.
//
// The language is deliberately tiny:
//
//	CREATE VIEW name AS <set-expression>
//	    [WINDOW <duration> [SLIDE <duration>]]
//	    [GROUP BY <key>]
//	    [EMIT RSTREAM|ISTREAM]
//	DROP VIEW name
//
// parsed into ViewSpec values that compile down to existing watch
// registrations and the compiled query kernel (QUERIES.md is the full
// reference). The Engine type holds the per-view window/group state;
// it does no locking of its own — the embedding coordinator serializes
// mutations under its state lock.
//
//sketchvet:bitexact
package cq

import (
	"fmt"
	"strings"
	"time"

	"setsketch/internal/expr"
)

// EmitMode selects which per-group results a view emits each round.
type EmitMode int

const (
	// EmitRStream emits the current estimate of every group every
	// round (the relation stream of CQL: the full answer, re-stated).
	EmitRStream EmitMode = iota
	// EmitIStream emits only groups whose estimate changed since the
	// last emitted round, carrying the signed change in Delta (the
	// insert stream of CQL, generalized to signed cardinality deltas).
	EmitIStream
)

// String returns the keyword spelling of the emit mode.
func (m EmitMode) String() string {
	if m == EmitIStream {
		return "ISTREAM"
	}
	return "RSTREAM"
}

// maxWindowBuckets bounds WINDOW/SLIDE so a view cannot demand an
// absurd ring (each bucket holds one family per referenced stream per
// live group).
const maxWindowBuckets = 4096

// ViewSpec is one parsed continuous-view definition.
type ViewSpec struct {
	// Name identifies the view in the catalog; a set-expression
	// identifier ([A-Za-z_][A-Za-z0-9_]*).
	Name string
	// Expr is the set expression evaluated each round, in canonical
	// (fully parenthesized) form.
	Expr string
	// Window is the time span estimates cover; 0 means all-time.
	Window time.Duration
	// Slide is the window advance granularity (= bucket width). 0 with
	// a window selects a tumbling window (Slide = Window). Must divide
	// Window evenly.
	Slide time.Duration
	// GroupBy names the group dimension; "" disables grouping. Grouped
	// views read logical streams: a physical stream "acme:logins"
	// contributes to group "acme" of a view referencing "logins" (the
	// separator is Options.GroupSep).
	GroupBy string
	// Emit selects RSTREAM (default) or ISTREAM delivery.
	Emit EmitMode
}

// Windowed reports whether the view has a time window.
func (s ViewSpec) Windowed() bool { return s.Window > 0 }

// Grouped reports whether the view is keyed.
func (s ViewSpec) Grouped() bool { return s.GroupBy != "" }

// Buckets returns the ring size Window/Slide (1 for all-time views).
func (s ViewSpec) Buckets() int {
	if s.Window <= 0 || s.Slide <= 0 {
		return 1
	}
	return int(s.Window / s.Slide)
}

// Statement renders the canonical CREATE VIEW statement. Parsing the
// result yields an identical spec (the round-trip is tested), which is
// why catalogs persist statements, not structs.
func (s ViewSpec) Statement() string {
	var b strings.Builder
	fmt.Fprintf(&b, "CREATE VIEW %s AS %s", s.Name, s.Expr)
	if s.Window > 0 {
		fmt.Fprintf(&b, " WINDOW %s", formatDuration(s.Window))
		if s.Slide > 0 && s.Slide != s.Window {
			fmt.Fprintf(&b, " SLIDE %s", formatDuration(s.Slide))
		}
	}
	if s.GroupBy != "" {
		fmt.Fprintf(&b, " GROUP BY %s", s.GroupBy)
	}
	if s.Emit != EmitRStream {
		fmt.Fprintf(&b, " EMIT %s", s.Emit)
	}
	return b.String()
}

// formatDuration renders a duration the way a person would write it in
// a statement: time.Duration.String() minus redundant zero units
// ("5m0s" → "5m", "1h0m0s" → "1h"), so canonical statements read like
// the input that produced them.
func formatDuration(d time.Duration) string {
	s := d.String()
	// Only strip a zero component that follows a larger unit, so "30s"
	// stays intact while "5m0s" and "1h0m0s" lose their zero tails.
	if strings.HasSuffix(s, "m0s") {
		s = strings.TrimSuffix(s, "0s")
	}
	if strings.HasSuffix(s, "h0m") {
		s = strings.TrimSuffix(s, "0m")
	}
	return s
}

// Validate checks the structural constraints ParseStatement enforces,
// normalizing a zero Slide to the tumbling default. Specs built in
// code should call it before Engine.Register.
func (s *ViewSpec) Validate() error {
	if !isIdent(s.Name) {
		return fmt.Errorf("cq: view name %q is not an identifier", s.Name)
	}
	node, err := expr.Parse(s.Expr)
	if err != nil {
		return fmt.Errorf("cq: view %s: %w", s.Name, err)
	}
	for _, name := range expr.Streams(node) {
		if isClauseKeyword(name) {
			return fmt.Errorf("cq: view %s: stream name %q is a reserved keyword", s.Name, name)
		}
	}
	s.Expr = node.String()
	if s.Window < 0 || s.Slide < 0 {
		return fmt.Errorf("cq: view %s: negative window or slide", s.Name)
	}
	if s.Window == 0 {
		if s.Slide != 0 {
			return fmt.Errorf("cq: view %s: SLIDE without WINDOW", s.Name)
		}
	} else {
		if s.Slide == 0 {
			s.Slide = s.Window // tumbling
		}
		if s.Slide > s.Window {
			return fmt.Errorf("cq: view %s: slide %s exceeds window %s", s.Name, s.Slide, s.Window)
		}
		if s.Window%s.Slide != 0 {
			return fmt.Errorf("cq: view %s: slide %s does not divide window %s evenly", s.Name, s.Slide, s.Window)
		}
		if n := s.Window / s.Slide; n > maxWindowBuckets {
			return fmt.Errorf("cq: view %s: window/slide = %d buckets exceeds the %d-bucket limit", s.Name, n, maxWindowBuckets)
		}
	}
	if s.GroupBy != "" && !isIdent(s.GroupBy) {
		return fmt.Errorf("cq: view %s: group key %q is not an identifier", s.Name, s.GroupBy)
	}
	return nil
}

// Statement is one parsed catalog statement: exactly one of Create and
// Drop is set.
type Statement struct {
	Create *ViewSpec
	Drop   string // view name
}

// clause keywords are reserved inside view statements: they terminate
// the expression region, so a stream may not be named after one there.
func isClauseKeyword(w string) bool {
	switch strings.ToUpper(w) {
	case "WINDOW", "SLIDE", "GROUP", "EMIT":
		return true
	}
	return false
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentChar(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}

func isIdent(s string) bool {
	if s == "" || !isIdentStart(s[0]) {
		return false
	}
	for i := 1; i < len(s); i++ {
		if !isIdentChar(s[i]) {
			return false
		}
	}
	return true
}

// stmtScanner walks a statement's word tokens (identifier/keyword/
// duration runs), reporting each word's byte offset so the expression
// region can be sliced out of the source verbatim. Punctuation — the
// expression's operators and parentheses — is skipped a byte at a
// time; only words matter to the clause grammar.
type stmtScanner struct {
	src string
	pos int
}

// next returns the next word and its byte offset, or "" at the end.
// Words are runs of identifier characters plus '.' (for durations like
// "1.5m"); any other byte is skipped.
func (sc *stmtScanner) next() (string, int) {
	for sc.pos < len(sc.src) {
		c := sc.src[sc.pos]
		if isIdentChar(c) || c == '.' {
			start := sc.pos
			for sc.pos < len(sc.src) && (isIdentChar(sc.src[sc.pos]) || sc.src[sc.pos] == '.') {
				sc.pos++
			}
			return sc.src[start:sc.pos], start
		}
		sc.pos++
	}
	return "", len(sc.src)
}

// StatementError describes a view-statement syntax error with its byte
// offset in the input.
type StatementError struct {
	Pos int
	Msg string
}

func (e *StatementError) Error() string {
	return fmt.Sprintf("cq: statement error at offset %d: %s", e.Pos, e.Msg)
}

// ParseStatement parses one catalog statement:
//
//	CREATE VIEW name AS expr [WINDOW dur [SLIDE dur]] [GROUP BY key] [EMIT RSTREAM|ISTREAM]
//	DROP VIEW name
//
// Keywords are case-insensitive; clauses appear in the order shown.
// The expression uses the full set-expression grammar of expr.Parse
// (see QUERIES.md), except that WINDOW, SLIDE, GROUP, and EMIT are
// reserved and cannot name streams inside a view statement.
func ParseStatement(src string) (*Statement, error) {
	sc := &stmtScanner{src: src}
	w, pos := sc.next()
	switch strings.ToUpper(w) {
	case "CREATE":
		return parseCreate(src, sc)
	case "DROP":
		return parseDrop(sc)
	case "":
		return nil, &StatementError{Pos: pos, Msg: "empty statement"}
	default:
		return nil, &StatementError{Pos: pos, Msg: fmt.Sprintf("expected CREATE or DROP, found %q", w)}
	}
}

func parseDrop(sc *stmtScanner) (*Statement, error) {
	if w, pos := sc.next(); strings.ToUpper(w) != "VIEW" {
		return nil, &StatementError{Pos: pos, Msg: fmt.Sprintf("expected VIEW after DROP, found %q", w)}
	}
	name, pos := sc.next()
	if !isIdent(name) {
		return nil, &StatementError{Pos: pos, Msg: fmt.Sprintf("expected a view name, found %q", name)}
	}
	if w, pos := sc.next(); w != "" {
		return nil, &StatementError{Pos: pos, Msg: fmt.Sprintf("unexpected %q after DROP VIEW", w)}
	}
	return &Statement{Drop: name}, nil
}

func parseCreate(src string, sc *stmtScanner) (*Statement, error) {
	if w, pos := sc.next(); strings.ToUpper(w) != "VIEW" {
		return nil, &StatementError{Pos: pos, Msg: fmt.Sprintf("expected VIEW after CREATE, found %q", w)}
	}
	name, pos := sc.next()
	if !isIdent(name) || isClauseKeyword(name) {
		return nil, &StatementError{Pos: pos, Msg: fmt.Sprintf("expected a view name, found %q", name)}
	}
	asWord, asPos := sc.next()
	if strings.ToUpper(asWord) != "AS" {
		return nil, &StatementError{Pos: asPos, Msg: fmt.Sprintf("expected AS after the view name, found %q", asWord)}
	}
	// The expression runs from here to the first clause keyword (or the
	// end); it is sliced out verbatim and handed to the expression
	// parser, so the full expr grammar — operators, parentheses,
	// Unicode spellings — works unchanged inside a statement.
	exprStart := sc.pos
	exprEnd := len(src)
	var clause string
	var clausePos int
	for {
		w, pos := sc.next()
		if w == "" {
			break
		}
		if isClauseKeyword(w) {
			clause, clausePos, exprEnd = strings.ToUpper(w), pos, pos
			break
		}
	}
	exprSrc := strings.TrimSpace(src[exprStart:exprEnd])
	if exprSrc == "" {
		return nil, &StatementError{Pos: exprStart, Msg: "missing set expression after AS"}
	}
	spec := &ViewSpec{Name: name, Expr: exprSrc}
	if err := parseClauses(spec, sc, clause, clausePos); err != nil {
		return nil, err
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return &Statement{Create: spec}, nil
}

// parseClauses consumes the optional clause tail, starting from the
// clause keyword (if any) that terminated the expression region.
func parseClauses(spec *ViewSpec, sc *stmtScanner, clause string, pos int) error {
	duration := func(after string) (time.Duration, error) {
		w, wpos := sc.next()
		d, err := time.ParseDuration(w)
		if err != nil || d <= 0 {
			return 0, &StatementError{Pos: wpos, Msg: fmt.Sprintf("expected a positive duration after %s, found %q", after, w)}
		}
		return d, nil
	}
	if clause == "WINDOW" {
		d, err := duration("WINDOW")
		if err != nil {
			return err
		}
		spec.Window = d
		clause, pos = nextClause(sc)
		if clause == "SLIDE" {
			d, err := duration("SLIDE")
			if err != nil {
				return err
			}
			spec.Slide = d
			clause, pos = nextClause(sc)
		}
	} else if clause == "SLIDE" {
		return &StatementError{Pos: pos, Msg: "SLIDE without WINDOW"}
	}
	if clause == "GROUP" {
		if w, wpos := sc.next(); strings.ToUpper(w) != "BY" {
			return &StatementError{Pos: wpos, Msg: fmt.Sprintf("expected BY after GROUP, found %q", w)}
		}
		key, kpos := sc.next()
		if !isIdent(key) || isClauseKeyword(key) {
			return &StatementError{Pos: kpos, Msg: fmt.Sprintf("expected a group key after GROUP BY, found %q", key)}
		}
		spec.GroupBy = key
		clause, pos = nextClause(sc)
	}
	if clause == "EMIT" {
		w, wpos := sc.next()
		switch strings.ToUpper(w) {
		case "RSTREAM":
			spec.Emit = EmitRStream
		case "ISTREAM":
			spec.Emit = EmitIStream
		default:
			return &StatementError{Pos: wpos, Msg: fmt.Sprintf("expected RSTREAM or ISTREAM after EMIT, found %q", w)}
		}
		clause, pos = nextClause(sc)
	}
	if clause != "" {
		return &StatementError{Pos: pos, Msg: fmt.Sprintf("unexpected %q", clause)}
	}
	return nil
}

// nextClause reads the next word, requiring it to be a clause keyword
// or the end of the statement. It returns the uppercased keyword.
func nextClause(sc *stmtScanner) (string, int) {
	w, pos := sc.next()
	if w == "" {
		return "", pos
	}
	if isClauseKeyword(w) {
		return strings.ToUpper(w), pos
	}
	return w, pos // caller reports "unexpected"
}
