package cq

import (
	"testing"
	"time"

	"setsketch/internal/core"
	"setsketch/internal/expr"
	"setsketch/internal/obs"
)

func mustQuery(t testing.TB, src string) (expr.Node, *core.Query) {
	t.Helper()
	node, err := expr.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	q, err := core.CompileQuery(node)
	if err != nil {
		t.Fatal(err)
	}
	return node, q
}

// fakeClock is an injectable window clock.
type fakeClock struct{ now time.Time }

func (c *fakeClock) Now() time.Time          { return c.now }
func (c *fakeClock) Advance(d time.Duration) { c.now = c.now.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{now: time.Unix(1_700_000_000, 0)} }

func testEngine(t testing.TB, clk *fakeClock, maxGroups int) *Engine {
	t.Helper()
	e, err := NewEngine(Options{
		NewFamily: testNewFam,
		MaxGroups: maxGroups,
		Now:       clk.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	e.SetObservability(obs.NewRegistry(), nil)
	return e
}

func register(t testing.TB, e *Engine, stmt string) *View {
	t.Helper()
	st, err := ParseStatement(stmt)
	if err != nil {
		t.Fatal(err)
	}
	v, err := e.Register(*st.Create)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestEngineRegisterDrop(t *testing.T) {
	e := testEngine(t, newFakeClock(), 0)
	register(t, e, "CREATE VIEW v1 AS a | b")
	register(t, e, "CREATE VIEW v2 AS c WINDOW 5m SLIDE 1m GROUP BY tenant")

	if _, err := e.Register(ViewSpec{Name: "v1", Expr: "a"}); err == nil {
		t.Fatal("duplicate name accepted")
	}
	if _, err := e.Register(ViewSpec{Name: "bad name", Expr: "a"}); err == nil {
		t.Fatal("invalid spec accepted")
	}
	stmts := e.Statements()
	if len(stmts) != 2 || stmts[0] != "CREATE VIEW v1 AS (a | b)" {
		t.Fatalf("statements %q", stmts)
	}
	if e.View("v1") == nil || e.View("nope") != nil {
		t.Fatal("View lookup broken")
	}
	if !e.Drop("v1") || e.Drop("v1") {
		t.Fatal("Drop not idempotent-correct")
	}
	if got := len(e.Specs()); got != 1 {
		t.Fatalf("%d specs after drop", got)
	}
}

func TestEngineUngroupedObserveEvaluate(t *testing.T) {
	clk := newFakeClock()
	e := testEngine(t, clk, 0)
	v := register(t, e, "CREATE VIEW v AS a | b")

	for i := 0; i < 500; i++ {
		stream := "a"
		if i%2 == 0 {
			stream = "b"
		}
		if err := e.Observe(stream, uint64(i%300), 1); err != nil {
			t.Fatal(err)
		}
	}
	res := e.Evaluate(v, 0.1, core.EstimateOptions{})
	if len(res) != 1 || res[0].Group != "" {
		t.Fatalf("results %+v", res)
	}
	if res[0].Err != "" {
		t.Fatalf("evaluate error: %s", res[0].Err)
	}
	// Reference: same updates into plain families, same estimator.
	fams := map[string]*core.Family{"a": mustFam(t), "b": mustFam(t)}
	for i := 0; i < 500; i++ {
		stream := "a"
		if i%2 == 0 {
			stream = "b"
		}
		fams[stream].Update(uint64(i%300), 1)
	}
	node, _ := mustQuery(t, "a | b")
	want, err := core.EstimateExpressionOpts(node, fams, 0.1, true, core.EstimateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Est.Value != want.Value {
		t.Fatalf("engine estimate %v != reference %v", res[0].Est.Value, want.Value)
	}
}

// A referenced stream with no in-window state evaluates as an empty
// set (not an error): after eviction, never-seen and aged-out are the
// same thing.
func TestEngineMissingStreamIsEmptySet(t *testing.T) {
	e := testEngine(t, newFakeClock(), 0)
	v := register(t, e, "CREATE VIEW v AS a & b")
	for i := 0; i < 50; i++ {
		if err := e.Observe("a", uint64(i), 1); err != nil {
			t.Fatal(err)
		}
	}
	res := e.Evaluate(v, 0.1, core.EstimateOptions{})
	if len(res) != 1 || res[0].Err != "" {
		t.Fatalf("want clean result, got %+v", res)
	}
	if res[0].Est.Value != 0 {
		t.Fatalf("a ∩ ∅ estimated %v", res[0].Est.Value)
	}
	// The backfill must never leak the shared empty family into live
	// bucket state: observing b afterwards starts from true empty.
	if err := e.Observe("b", 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := e.Observe("b", 1, -1); err != nil {
		t.Fatal(err)
	}
	res = e.Evaluate(v, 0.1, core.EstimateOptions{})
	if res[0].Err != "" || res[0].Est.Value != 0 {
		t.Fatalf("after b touch: %+v", res[0])
	}
	ref := mustFam(t)
	st := v.groups.Get("")
	merged, err := st.ring.Merged()
	if err != nil {
		t.Fatal(err)
	}
	if !merged["b"].Equal(ref) {
		t.Fatal("shared empty family was mutated by live updates")
	}
	if !e.empty.Equal(ref) {
		t.Fatal("engine's shared empty family is no longer empty")
	}
}

func TestEngineGroupRouting(t *testing.T) {
	clk := newFakeClock()
	e := testEngine(t, clk, 0)
	v := register(t, e, "CREATE VIEW v AS logins GROUP BY tenant")

	for i := 0; i < 100; i++ {
		if err := e.Observe("acme:logins", uint64(i), 1); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		if err := e.Observe("globex:logins", uint64(i), 1); err != nil {
			t.Fatal(err)
		}
	}
	// Streams no view reads, wrong logical names, and bare names must
	// not create groups.
	if err := e.Observe("acme:payments", 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := e.Observe("logins", 1, 1); err != nil {
		t.Fatal(err)
	}
	res := e.Evaluate(v, 0.1, core.EstimateOptions{})
	if len(res) != 2 || res[0].Group != "acme" || res[1].Group != "globex" {
		t.Fatalf("groups %+v", res)
	}
	for _, r := range res {
		if r.Err != "" {
			t.Fatalf("group %q: %s", r.Group, r.Err)
		}
	}
	if res[0].Est.Value < res[1].Est.Value {
		t.Fatalf("acme (100 distinct) estimated below globex (10): %+v", res)
	}
}

func TestEngineGroupEvictionLRU(t *testing.T) {
	clk := newFakeClock()
	e := testEngine(t, clk, 2)
	v := register(t, e, "CREATE VIEW v AS s GROUP BY k")

	ev0 := e.met.groupEvictions.Value()
	e.Observe("g1:s", 1, 1)
	e.Observe("g2:s", 2, 1)
	e.Observe("g1:s", 3, 1) // refresh g1: g2 is now least recent
	e.Observe("g3:s", 4, 1) // evicts g2
	if got := e.met.groupEvictions.Value() - ev0; got != 1 {
		t.Fatalf("evictions %d", got)
	}
	res := e.Evaluate(v, 0.1, core.EstimateOptions{})
	if len(res) != 2 || res[0].Group != "g1" || res[1].Group != "g3" {
		t.Fatalf("live groups %+v", res)
	}
	// A reappearing key starts from empty state.
	e.Observe("g2:s", 9, 1)
	res = e.Evaluate(v, 0.1, core.EstimateOptions{})
	var g2 *GroupResult
	for i := range res {
		if res[i].Group == "g2" {
			g2 = &res[i]
		}
	}
	if g2 == nil || g2.Err != "" {
		t.Fatalf("g2 after reappearance: %+v", res)
	}
	if g2.Est.Value > 2 {
		t.Fatalf("reappeared group did not start fresh: estimate %v", g2.Est.Value)
	}
}

func TestEngineVersionStamps(t *testing.T) {
	clk := newFakeClock()
	e := testEngine(t, clk, 0)
	v := register(t, e, "CREATE VIEW v AS a WINDOW 3m SLIDE 1m")

	v0 := v.Version()
	e.Observe("a", 1, 1)
	if v.Version() == v0 {
		t.Fatal("observe did not bump version")
	}
	v1 := v.Version()

	// Rotation over empty buckets changes nothing visible.
	clk.Advance(time.Minute)
	e.RotateAll(clk.Now())
	if v.Version() != v1 {
		t.Fatal("empty rotation bumped version")
	}
	// Rotation that evicts the only non-empty bucket does.
	clk.Advance(10 * time.Minute)
	e.RotateAll(clk.Now())
	if v.Version() == v1 {
		t.Fatal("eviction did not bump version")
	}
}

func TestEngineRotateAllEvicts(t *testing.T) {
	clk := newFakeClock()
	e := testEngine(t, clk, 0)
	v := register(t, e, "CREATE VIEW v AS a WINDOW 2m SLIDE 1m")
	e.Observe("a", 7, 1)

	res := e.Evaluate(v, 0.1, core.EstimateOptions{})
	if res[0].Err != "" || res[0].Est.Value == 0 {
		t.Fatalf("pre-eviction %+v", res)
	}
	clk.Advance(5 * time.Minute)
	e.RotateAll(clk.Now())
	res = e.Evaluate(v, 0.1, core.EstimateOptions{})
	if res[0].Err != "" {
		t.Fatalf("post-eviction %+v", res)
	}
	if res[0].Est.Value != 0 {
		t.Fatalf("window aged out but estimate %v", res[0].Est.Value)
	}
}

func TestEngineCounts(t *testing.T) {
	clk := newFakeClock()
	e := testEngine(t, clk, 0)
	register(t, e, "CREATE VIEW v1 AS a WINDOW 5m SLIDE 1m")
	register(t, e, "CREATE VIEW v2 AS s GROUP BY k")

	e.Observe("a", 1, 1)
	e.Observe("t1:s", 1, 1)
	e.Observe("t2:s", 1, 1)

	views, buckets, groups := e.Counts()
	if views != 2 {
		t.Fatalf("views %d", views)
	}
	if buckets != 3 { // v1's one live bucket + one per live group of v2
		t.Fatalf("buckets %d", buckets)
	}
	if groups != 2 {
		t.Fatalf("groups %d", groups)
	}
}

func TestEngineMetricsCounters(t *testing.T) {
	clk := newFakeClock()
	e := testEngine(t, clk, 0)
	register(t, e, "CREATE VIEW v AS a WINDOW 2m SLIDE 1m")

	e.Observe("a", 1, 1)
	e.Observe("a", 2, 1)
	if got := e.met.updates.Value(); got != 2 {
		t.Fatalf("cq_view_updates_total %d", got)
	}
	clk.Advance(time.Minute)
	e.RotateAll(clk.Now())
	if got := e.met.windowRotations.Value(); got == 0 {
		t.Fatal("cq_window_rotations_total stayed 0")
	}
	clk.Advance(10 * time.Minute)
	e.RotateAll(clk.Now())
	if got := e.met.windowEvictions.Value(); got == 0 {
		t.Fatal("cq_window_evictions_total stayed 0")
	}
}

// Grouped windowed observation must equal the windowed reference per
// group — groups are fully independent rings.
func TestEngineGroupedWindowDifferential(t *testing.T) {
	clk := newFakeClock()
	e := testEngine(t, clk, 0)
	v := register(t, e, "CREATE VIEW v AS s WINDOW 3m SLIDE 1m GROUP BY k")

	start := clk.Now()
	var byGroup = map[string][]timedUpdate{}
	for i := 0; i < 300; i++ {
		clk.Advance(2 * time.Second)
		g := "g1"
		if i%3 == 0 {
			g = "g2"
		}
		u := timedUpdate{at: clk.Now(), stream: "s", elem: uint64(i % 53), delta: 1}
		byGroup[g] = append(byGroup[g], u)
		if err := e.Observe(g+":s", u.elem, u.delta); err != nil {
			t.Fatal(err)
		}
	}
	_ = start
	e.RotateAll(clk.Now())
	spec := v.Spec()
	for g, ups := range byGroup {
		st := v.groups.Get(g)
		if st == nil {
			t.Fatalf("group %q missing", g)
		}
		merged, err := st.ring.Merged()
		if err != nil {
			t.Fatal(err)
		}
		want := referenceFams(t, spec, clk.Now(), ups)
		for name, f := range want {
			if got, ok := merged[name]; !ok || !got.Equal(f) {
				t.Fatalf("group %q stream %q differs from reference", g, name)
			}
		}
	}
}

func TestEngineRequiresNewFamily(t *testing.T) {
	if _, err := NewEngine(Options{}); err == nil {
		t.Fatal("NewEngine accepted nil NewFamily")
	}
}
