package cq

import (
	"strings"
	"testing"
	"time"
)

func mustCreate(t *testing.T, src string) *ViewSpec {
	t.Helper()
	st, err := ParseStatement(src)
	if err != nil {
		t.Fatalf("ParseStatement(%q): %v", src, err)
	}
	if st.Create == nil {
		t.Fatalf("ParseStatement(%q): not a CREATE", src)
	}
	return st.Create
}

func TestParseCreateMinimal(t *testing.T) {
	spec := mustCreate(t, "CREATE VIEW v AS a | b")
	if spec.Name != "v" || spec.Expr != "(a | b)" {
		t.Fatalf("got %+v", spec)
	}
	if spec.Windowed() || spec.Grouped() || spec.Emit != EmitRStream {
		t.Fatalf("unexpected clauses: %+v", spec)
	}
	if spec.Buckets() != 1 {
		t.Fatalf("all-time view wants 1 bucket, got %d", spec.Buckets())
	}
}

func TestParseCreateFull(t *testing.T) {
	spec := mustCreate(t,
		"create view errs as (logins & errors) - bots window 5m slide 1m group by tenant emit istream")
	if spec.Name != "errs" {
		t.Fatalf("name %q", spec.Name)
	}
	if spec.Expr != "((logins & errors) - bots)" {
		t.Fatalf("expr %q", spec.Expr)
	}
	if spec.Window != 5*time.Minute || spec.Slide != time.Minute {
		t.Fatalf("window %v slide %v", spec.Window, spec.Slide)
	}
	if spec.GroupBy != "tenant" || spec.Emit != EmitIStream {
		t.Fatalf("group %q emit %v", spec.GroupBy, spec.Emit)
	}
	if spec.Buckets() != 5 {
		t.Fatalf("buckets %d", spec.Buckets())
	}
}

func TestParseTumblingDefault(t *testing.T) {
	spec := mustCreate(t, "CREATE VIEW v AS a WINDOW 10m")
	if spec.Slide != 10*time.Minute {
		t.Fatalf("tumbling default: slide %v", spec.Slide)
	}
	if spec.Buckets() != 1 {
		t.Fatalf("tumbling buckets %d", spec.Buckets())
	}
}

func TestParseUnicodeOperators(t *testing.T) {
	spec := mustCreate(t, "CREATE VIEW v AS (a ∪ b) ∩ (c ⊕ d) WINDOW 1h SLIDE 15m")
	if spec.Expr != "((a | b) & (c ^ d))" {
		t.Fatalf("expr %q", spec.Expr)
	}
}

func TestParseWordOperators(t *testing.T) {
	spec := mustCreate(t, "CREATE VIEW v AS a UNION b EXCEPT c")
	// EXCEPT binds tighter than UNION in the expression grammar.
	if spec.Expr != "(a | (b - c))" {
		t.Fatalf("expr %q", spec.Expr)
	}
}

func TestParseDrop(t *testing.T) {
	st, err := ParseStatement("DROP VIEW old_view")
	if err != nil {
		t.Fatal(err)
	}
	if st.Drop != "old_view" || st.Create != nil {
		t.Fatalf("got %+v", st)
	}
}

// Statement() must render a form that reparses to the identical spec —
// the catalog persists statements, so this round-trip is load-bearing.
func TestStatementRoundTrip(t *testing.T) {
	srcs := []string{
		"CREATE VIEW v AS a",
		"CREATE VIEW v AS a | b WINDOW 5m SLIDE 1m",
		"CREATE VIEW v AS a & b WINDOW 1h",
		"CREATE VIEW v AS a ^ b GROUP BY region",
		"CREATE VIEW v AS (a - b) | c WINDOW 30s SLIDE 10s GROUP BY tenant EMIT ISTREAM",
		"CREATE VIEW v AS a EMIT RSTREAM",
	}
	for _, src := range srcs {
		spec := mustCreate(t, src)
		again := mustCreate(t, spec.Statement())
		if *again != *spec {
			t.Errorf("%q: round-trip mismatch:\n  once:  %+v\n  twice: %+v", src, spec, again)
		}
		if again.Statement() != spec.Statement() {
			t.Errorf("%q: statement not a fixed point: %q vs %q", src, spec.Statement(), again.Statement())
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src, want string
	}{
		{"", "empty statement"},
		{"SELECT 1", "expected CREATE or DROP"},
		{"CREATE TABLE t AS a", "expected VIEW"},
		{"CREATE VIEW AS a", "expected AS"}, // "AS" scans as the name
		{"CREATE VIEW window AS a", "expected a view name"},
		{"CREATE VIEW v a | b", "expected AS"},
		{"CREATE VIEW v AS", "missing set expression"},
		{"CREATE VIEW v AS WINDOW 5m", "missing set expression"},
		{"CREATE VIEW v AS a | ", "expr"},
		{"CREATE VIEW v AS a WINDOW", "expected a positive duration"},
		{"CREATE VIEW v AS a WINDOW banana", "expected a positive duration"},
		{"CREATE VIEW v AS a SLIDE 1m", "SLIDE without WINDOW"},
		{"CREATE VIEW v AS a WINDOW 5m SLIDE 2m", "does not divide"},
		{"CREATE VIEW v AS a WINDOW 1m SLIDE 5m", "exceeds window"},
		{"CREATE VIEW v AS a WINDOW 5000h SLIDE 1s", "bucket limit"},
		{"CREATE VIEW v AS a GROUP tenant", "expected BY"},
		{"CREATE VIEW v AS a GROUP BY", "expected a group key"},
		{"CREATE VIEW v AS a GROUP BY emit", "expected a group key"},
		{"CREATE VIEW v AS a EMIT DSTREAM", "expected RSTREAM or ISTREAM"},
		{"CREATE VIEW v AS a EMIT RSTREAM trailing", "unexpected"},
		{"CREATE VIEW v AS a GROUP BY k WINDOW 5m", "unexpected"}, // clauses are ordered
		{"DROP VIEW", "expected a view name"},
		{"DROP TABLE v", "expected VIEW"},
		{"DROP VIEW v extra", "unexpected"},
	}
	for _, c := range cases {
		_, err := ParseStatement(c.src)
		if err == nil {
			t.Errorf("%q: no error", c.src)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%q: error %q does not mention %q", c.src, err, c.want)
		}
	}
}

// The scanner skips punctuation, so "WINDOW -5m" reads the duration as
// a positive "5m" — sign characters never reach ParseDuration. Pin
// that down so a doc change doesn't silently alter it.
func TestParseNegativeDurationSignIgnored(t *testing.T) {
	spec := mustCreate(t, "CREATE VIEW v AS a WINDOW -5m")
	if spec.Window != 5*time.Minute {
		t.Fatalf("window %v", spec.Window)
	}
}

func TestValidateNormalizes(t *testing.T) {
	s := ViewSpec{Name: "v", Expr: "a|b", Window: time.Hour}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Slide != time.Hour {
		t.Fatalf("tumbling normalization: slide %v", s.Slide)
	}
	if s.Expr != "(a | b)" {
		t.Fatalf("canonicalization: %q", s.Expr)
	}
}

func TestValidateRejects(t *testing.T) {
	bad := []ViewSpec{
		{Name: "9v", Expr: "a"},
		{Name: "v", Expr: "a |"},
		{Name: "v", Expr: "a", Slide: time.Minute},
		{Name: "v", Expr: "a", Window: -time.Minute},
		{Name: "v", Expr: "a", GroupBy: "no spaces"},
		{Name: "v", Expr: "window"}, // reserved stream name
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("%+v: accepted", s)
		}
	}
}

func TestStatementErrorOffset(t *testing.T) {
	_, err := ParseStatement("CREATE VIEW v AS a WINDOW banana")
	se, ok := err.(*StatementError)
	if !ok {
		t.Fatalf("want *StatementError, got %T", err)
	}
	if se.Pos != strings.Index("CREATE VIEW v AS a WINDOW banana", "banana") {
		t.Fatalf("offset %d", se.Pos)
	}
}
