// Package multiset implements the exact update-stream data model of the
// paper: multi-sets of elements from an integer domain, maintained under
// a stream of insertions and deletions, with exact distinct counts and
// exact set-expression cardinalities.
//
// The package serves two roles: it is the ground-truth oracle that every
// sketch estimator is tested and benchmarked against, and it is the
// "exact" baseline of the experimental study (a baseline whose memory is
// linear in the number of live distinct elements, which is precisely
// what the sketches avoid).
package multiset

import (
	"fmt"
	"sort"
)

// ErrIllegalDeletion is returned when an update would drive an element's
// net frequency negative. The paper's model (§2.1) assumes all deletions
// are legal; this error surfaces violations instead of silently
// corrupting the ground truth.
type ErrIllegalDeletion struct {
	Element uint64
	Have    int64
	Delete  int64
}

func (e *ErrIllegalDeletion) Error() string {
	return fmt.Sprintf("multiset: deleting %d copies of element %d with net frequency %d",
		e.Delete, e.Element, e.Have)
}

// Multiset tracks exact net frequencies of elements under a stream of
// updates. The zero value is not ready for use; call New.
type Multiset struct {
	freq map[uint64]int64
	// total is the sum of all net frequencies (number of live items).
	total int64
}

// New returns an empty multiset.
func New() *Multiset {
	return &Multiset{freq: make(map[uint64]int64)}
}

// Update applies a net frequency change of v (positive for insertions,
// negative for deletions) to element e. It returns ErrIllegalDeletion —
// without applying the update — if the result would be negative.
func (m *Multiset) Update(e uint64, v int64) error {
	cur := m.freq[e]
	next := cur + v
	if next < 0 {
		return &ErrIllegalDeletion{Element: e, Have: cur, Delete: -v}
	}
	if next == 0 {
		delete(m.freq, e)
	} else {
		m.freq[e] = next
	}
	m.total += v
	return nil
}

// Insert adds one copy of e.
func (m *Multiset) Insert(e uint64) { m.freq[e]++; m.total++ }

// Count returns the net frequency of e (zero if absent).
func (m *Multiset) Count(e uint64) int64 { return m.freq[e] }

// Contains reports whether e has positive net frequency.
func (m *Multiset) Contains(e uint64) bool { return m.freq[e] > 0 }

// Distinct returns the number of distinct elements with positive net
// frequency — the quantity |A| the paper estimates.
func (m *Multiset) Distinct() int { return len(m.freq) }

// Total returns the sum of net frequencies (total live items), the
// quantity bounded by N in the paper's counter-size analysis.
func (m *Multiset) Total() int64 { return m.total }

// Elements returns the distinct live elements in unspecified order.
func (m *Multiset) Elements() []uint64 {
	out := make([]uint64, 0, len(m.freq))
	for e := range m.freq {
		out = append(out, e)
	}
	return out
}

// SortedElements returns the distinct live elements in increasing order
// (useful for deterministic tests and serialization).
func (m *Multiset) SortedElements() []uint64 {
	out := m.Elements()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Range calls fn for every live (element, frequency) pair until fn
// returns false.
func (m *Multiset) Range(fn func(e uint64, freq int64) bool) {
	for e, f := range m.freq {
		if !fn(e, f) {
			return
		}
	}
}

// Clone returns a deep copy.
func (m *Multiset) Clone() *Multiset {
	c := &Multiset{freq: make(map[uint64]int64, len(m.freq)), total: m.total}
	for e, f := range m.freq {
		c.freq[e] = f
	}
	return c
}

// Set is the support of a multiset: the set of elements with positive
// net frequency. Exact set-expression evaluation operates on Sets.
type Set map[uint64]struct{}

// Support returns the support set of m.
func (m *Multiset) Support() Set {
	s := make(Set, len(m.freq))
	for e := range m.freq {
		s[e] = struct{}{}
	}
	return s
}

// Union returns a ∪ b.
func Union(a, b Set) Set {
	out := make(Set, len(a)+len(b))
	for e := range a {
		out[e] = struct{}{}
	}
	for e := range b {
		out[e] = struct{}{}
	}
	return out
}

// Intersect returns a ∩ b.
func Intersect(a, b Set) Set {
	if len(b) < len(a) {
		a, b = b, a
	}
	out := make(Set)
	for e := range a {
		if _, ok := b[e]; ok {
			out[e] = struct{}{}
		}
	}
	return out
}

// Diff returns a − b.
func Diff(a, b Set) Set {
	out := make(Set)
	for e := range a {
		if _, ok := b[e]; !ok {
			out[e] = struct{}{}
		}
	}
	return out
}
