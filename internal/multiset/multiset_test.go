package multiset

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestUpdateInsertDelete(t *testing.T) {
	m := New()
	if err := m.Update(5, 3); err != nil {
		t.Fatal(err)
	}
	if got := m.Count(5); got != 3 {
		t.Fatalf("Count(5) = %d, want 3", got)
	}
	if err := m.Update(5, -3); err != nil {
		t.Fatal(err)
	}
	if m.Contains(5) {
		t.Error("element 5 still live after full deletion")
	}
	if m.Distinct() != 0 || m.Total() != 0 {
		t.Errorf("Distinct = %d, Total = %d after emptying, want 0, 0", m.Distinct(), m.Total())
	}
}

func TestIllegalDeletion(t *testing.T) {
	m := New()
	m.Insert(1)
	err := m.Update(1, -2)
	var illegal *ErrIllegalDeletion
	if !errors.As(err, &illegal) {
		t.Fatalf("Update(1, -2) error = %v, want ErrIllegalDeletion", err)
	}
	if illegal.Element != 1 || illegal.Have != 1 || illegal.Delete != 2 {
		t.Errorf("ErrIllegalDeletion fields = %+v", illegal)
	}
	// The failed update must not be applied.
	if got := m.Count(1); got != 1 {
		t.Errorf("Count(1) = %d after rejected delete, want 1", got)
	}
	if m.Total() != 1 {
		t.Errorf("Total = %d after rejected delete, want 1", m.Total())
	}
	if illegal.Error() == "" {
		t.Error("empty error message")
	}
}

func TestDeleteUnknownElement(t *testing.T) {
	m := New()
	if err := m.Update(99, -1); err == nil {
		t.Error("deleting an absent element did not error")
	}
}

func TestDistinctAndTotal(t *testing.T) {
	m := New()
	for i := uint64(0); i < 100; i++ {
		if err := m.Update(i%10, 1); err != nil {
			t.Fatal(err)
		}
	}
	if m.Distinct() != 10 {
		t.Errorf("Distinct = %d, want 10", m.Distinct())
	}
	if m.Total() != 100 {
		t.Errorf("Total = %d, want 100", m.Total())
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := New()
	m.Insert(1)
	c := m.Clone()
	c.Insert(2)
	if m.Contains(2) {
		t.Error("mutating clone changed original")
	}
	if !c.Contains(1) {
		t.Error("clone missing original element")
	}
}

func TestSortedElements(t *testing.T) {
	m := New()
	for _, e := range []uint64{9, 3, 7, 1} {
		m.Insert(e)
	}
	got := m.SortedElements()
	want := []uint64{1, 3, 7, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SortedElements = %v, want %v", got, want)
		}
	}
}

func TestRangeEarlyStop(t *testing.T) {
	m := New()
	for i := uint64(0); i < 10; i++ {
		m.Insert(i)
	}
	calls := 0
	m.Range(func(e uint64, f int64) bool {
		calls++
		return calls < 3
	})
	if calls != 3 {
		t.Errorf("Range visited %d pairs after early stop, want 3", calls)
	}
}

func TestSupport(t *testing.T) {
	m := New()
	m.Insert(4)
	m.Insert(4)
	m.Insert(8)
	s := m.Support()
	if len(s) != 2 {
		t.Fatalf("Support size = %d, want 2", len(s))
	}
	if _, ok := s[4]; !ok {
		t.Error("Support missing element 4")
	}
}

func toSet(xs []uint64) Set {
	s := make(Set, len(xs))
	for _, x := range xs {
		s[x%64] = struct{}{} // fold into a small domain to force overlaps
	}
	return s
}

func TestSetAlgebraProperties(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}

	// |A ∪ B| = |A| + |B| − |A ∩ B| (inclusion–exclusion).
	inclExcl := func(xs, ys []uint64) bool {
		a, b := toSet(xs), toSet(ys)
		return len(Union(a, b)) == len(a)+len(b)-len(Intersect(a, b))
	}
	if err := quick.Check(inclExcl, cfg); err != nil {
		t.Error(err)
	}

	// A − B and A ∩ B partition A.
	partition := func(xs, ys []uint64) bool {
		a, b := toSet(xs), toSet(ys)
		return len(Diff(a, b))+len(Intersect(a, b)) == len(a)
	}
	if err := quick.Check(partition, cfg); err != nil {
		t.Error(err)
	}

	// Union and intersection commute; difference generally does not,
	// but (A − B) ∩ B = ∅ always.
	diffDisjoint := func(xs, ys []uint64) bool {
		a, b := toSet(xs), toSet(ys)
		return len(Intersect(Diff(a, b), b)) == 0
	}
	if err := quick.Check(diffDisjoint, cfg); err != nil {
		t.Error(err)
	}

	// De Morgan within a universe: A − (B ∪ C) = (A − B) ∩ (A − C).
	deMorgan := func(xs, ys, zs []uint64) bool {
		a, b, c := toSet(xs), toSet(ys), toSet(zs)
		lhs := Diff(a, Union(b, c))
		rhs := Intersect(Diff(a, b), Diff(a, c))
		if len(lhs) != len(rhs) {
			return false
		}
		for e := range lhs {
			if _, ok := rhs[e]; !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(deMorgan, cfg); err != nil {
		t.Error(err)
	}
}

// TestUpdateSequenceProperty: any legal interleaving of insertions and
// deletions yields the same multiset as the net-frequency summary —
// the exact analogue of the sketch deletion-invariance property.
func TestUpdateSequenceProperty(t *testing.T) {
	f := func(ops []int16) bool {
		m := New()
		net := make(map[uint64]int64)
		for _, op := range ops {
			e := uint64(op) % 16
			// Insert twice, then delete once, keeping deletions legal.
			if err := m.Update(e, 2); err != nil {
				return false
			}
			net[e] += 2
			if err := m.Update(e, -1); err != nil {
				return false
			}
			net[e]--
		}
		if m.Distinct() != len(net) {
			return false
		}
		for e, f := range net {
			if m.Count(e) != f {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestIntersectSwapsForSize(t *testing.T) {
	big := make(Set)
	for i := uint64(0); i < 1000; i++ {
		big[i] = struct{}{}
	}
	small := Set{5: {}, 2000: {}}
	// Both orders must agree.
	a := Intersect(big, small)
	b := Intersect(small, big)
	if len(a) != 1 || len(b) != 1 {
		t.Errorf("Intersect sizes = %d, %d, want 1, 1", len(a), len(b))
	}
}
