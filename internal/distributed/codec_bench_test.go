package distributed

import (
	"bytes"
	"testing"

	"setsketch/internal/datagen"
)

// Frame-codec benchmarks: the per-batch cost of the binary session
// encoding on both ends, isolated from the network. Together with the
// alloc pins in alloc_test.go these keep the zero-alloc wire path from
// bit-rotting: check.sh smokes them on every run, and full numbers
// land in BENCH_e2e.json's codec block via scripts/bench.sh.

// BenchmarkUpdateBatchEncodeFrame: build one 64-update batch frame in a
// reused buffer (the client's SendUpdates encode half).
func BenchmarkUpdateBatchEncodeFrame(b *testing.B) {
	ups := sessionTestUpdates()
	var frame []byte
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		frame = append(frame[:0], msgUpdateBatch, 0, 0, 0, 0)
		frame = appendUpdateBatch(frame, uint64(i), ups)
		if _, err := finishFrame(frame); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N*len(ups))/b.Elapsed().Seconds(), "updates/s")
}

// BenchmarkUpdateBatchDecodeFrame: read the frame off a connection
// buffer and decode it through the stream-name interner (the server's
// receive half).
func BenchmarkUpdateBatchDecodeFrame(b *testing.B) {
	payload := appendUpdateBatch(nil, 7, sessionTestUpdates())
	frame, err := appendFrame(nil, msgUpdateBatch, payload)
	if err != nil {
		b.Fatal(err)
	}
	var (
		fr    frameReader
		names interner
		ups   []datagen.Update
	)
	r := bytes.NewReader(frame)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Reset(frame)
		_, p, err := fr.read(r)
		if err != nil {
			b.Fatal(err)
		}
		_, decoded, err := decodeUpdateBatch(p, ups[:0], names.intern)
		if err != nil {
			b.Fatal(err)
		}
		ups = decoded[:0]
	}
	b.ReportMetric(float64(b.N*64)/b.Elapsed().Seconds(), "updates/s")
}
