package distributed

import (
	"bytes"
	"encoding/binary"
	"io"
	"net"
	"testing"
	"time"

	"setsketch/internal/core"
	"setsketch/internal/datagen"
)

// Allocation pins for the wire hot path, in the spirit of core's
// TestEstimateSerialAllocFree: the session frame codec, the framed
// read/write paths on both ends, and the coordinator's warm serial
// estimate must not allocate per operation. Regressions here silently
// tax every frame of every streaming session, so they fail loudly.

// ackConn is an in-memory net.Conn that answers every written session
// frame with a well-formed binary ack echoing the frame's sequence
// number — the minimal alloc-free peer for client-side pins.
type ackConn struct {
	ack [frameHeaderLen + 16]byte
	pos int
}

func (c *ackConn) Write(p []byte) (int, error) {
	if len(p) < frameHeaderLen+8 {
		return 0, io.ErrShortWrite
	}
	seq := binary.LittleEndian.Uint64(p[frameHeaderLen:])
	c.ack[0] = msgAck
	binary.BigEndian.PutUint32(c.ack[1:frameHeaderLen], 16)
	binary.LittleEndian.PutUint64(c.ack[frameHeaderLen:], seq)
	binary.LittleEndian.PutUint64(c.ack[frameHeaderLen+8:], 0)
	c.pos = 0
	return len(p), nil
}

func (c *ackConn) Read(p []byte) (int, error) {
	if c.pos >= len(c.ack) {
		return 0, io.EOF
	}
	n := copy(p, c.ack[c.pos:])
	c.pos += n
	return n, nil
}

func (c *ackConn) Close() error                       { return nil }
func (c *ackConn) LocalAddr() net.Addr                { return nil }
func (c *ackConn) RemoteAddr() net.Addr               { return nil }
func (c *ackConn) SetDeadline(t time.Time) error      { return nil }
func (c *ackConn) SetReadDeadline(t time.Time) error  { return nil }
func (c *ackConn) SetWriteDeadline(t time.Time) error { return nil }

// nullConn discards writes; the server-side frame write target.
type nullConn struct{ ackConn }

func (c *nullConn) Write(p []byte) (int, error) { return len(p), nil }

func sessionTestUpdates() []datagen.Update {
	ups := make([]datagen.Update, 64)
	for i := range ups {
		ups[i] = datagen.Update{Stream: "ab", Elem: uint64(i * 977), Delta: 1}
		if i%2 == 1 {
			ups[i].Stream = "cd"
		}
	}
	return ups
}

// TestSessionFrameCodecAllocFree pins the client side: encoding and
// sending an update batch, a synopsis delta, or a heartbeat — including
// reading and decoding the ack — allocates nothing once the session's
// scratch buffers have grown to their working size.
func TestSessionFrameCodecAllocFree(t *testing.T) {
	sess := &StreamSession{c: &Client{conn: &ackConn{}}, site: "pin"}
	ups := sessionTestUpdates()
	fam, err := testCoins.NewFamily()
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 100; i++ {
		fam.Update(i, 1)
	}
	// Warm the scratch buffers.
	if _, err := sess.SendUpdates(ups); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.SendDelta("ab", fam, 100); err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		if _, err := sess.SendUpdates(ups); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("SendUpdates allocates %.1f objects/op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		if _, err := sess.SendDelta("ab", fam, 100); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("SendDelta allocates %.1f objects/op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		if _, err := sess.Heartbeat(); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("Heartbeat allocates %.1f objects/op, want 0", allocs)
	}
}

// TestServerFramePathAllocFree pins the server side: reading a frame
// into the connection buffer, decoding an update batch through the
// stream-name interner, and framing + writing the binary ack are all
// allocation-free at steady state. (Reconstructing a delta's family is
// excluded — a decoded synopsis is a fresh *core.Family by design.)
func TestServerFramePathAllocFree(t *testing.T) {
	payload := appendUpdateBatch(nil, 7, sessionTestUpdates())
	frame, err := appendFrame(nil, msgUpdateBatch, payload)
	if err != nil {
		t.Fatal(err)
	}
	st := &connState{srv: &Server{met: newServerMetrics(nil)}, conn: &nullConn{}}
	r := bytes.NewReader(frame)

	runOnce := func() {
		r.Reset(frame)
		typ, p, err := st.fr.read(r)
		if err != nil || typ != msgUpdateBatch {
			t.Fatalf("frame read: type %#x, err %v", typ, err)
		}
		seq, ups, err := decodeUpdateBatch(p, st.ups[:0], st.names.intern)
		st.ups = ups[:0]
		if err != nil {
			t.Fatal(err)
		}
		reply, replyTyp := st.ackReply(seq)
		if err := st.write(replyTyp, reply); err != nil {
			t.Fatal(err)
		}
	}
	runOnce() // warm buffers and the interner
	if allocs := testing.AllocsPerRun(100, runOnce); allocs != 0 {
		t.Errorf("update-batch read+decode+ack allocates %.1f objects/op, want 0", allocs)
	}

	// Delta envelope: seq/count/stream/synopsis slicing is alloc-free.
	dpayload := appendDeltaHeader(nil, 9, "ab", 42)
	dpayload = append(dpayload, 0xde, 0xad)
	warmDelta := func() {
		seq, count, stream, syn, err := decodeDelta(dpayload)
		if err != nil || seq != 9 || count != 42 || string(stream) != "ab" || len(syn) != 2 {
			t.Fatalf("delta envelope decode broken: %d %d %q %d %v", seq, count, stream, len(syn), err)
		}
	}
	warmDelta()
	if allocs := testing.AllocsPerRun(100, warmDelta); allocs != 0 {
		t.Errorf("delta envelope decode allocates %.1f objects/op, want 0", allocs)
	}
}

// TestCoordinatorEstimateSerialAllocFree extends core's serial-estimate
// pin across the coordinator: with the expression compiled (warm cache)
// and the occupancy views warm, a serial ad-hoc Estimate allocates
// nothing per call.
func TestCoordinatorEstimateSerialAllocFree(t *testing.T) {
	coord, err := NewCoordinator(testCoins)
	if err != nil {
		t.Fatal(err)
	}
	coord.SetEstimateOptions(core.EstimateOptions{}) // serial kernel
	for _, stream := range []string{"A", "B"} {
		fam, err := testCoins.NewFamily()
		if err != nil {
			t.Fatal(err)
		}
		for i := uint64(0); i < 500; i++ {
			fam.Update(i*3%700, 1)
		}
		if err := coord.Push("site", stream, fam); err != nil {
			t.Fatal(err)
		}
	}
	const exprSrc = "A | B"
	if _, err := coord.Estimate(exprSrc, 0.15); err != nil {
		t.Fatal(err) // compile the expression, warm the views
	}
	if allocs := testing.AllocsPerRun(50, func() {
		if _, err := coord.Estimate(exprSrc, 0.15); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("warm serial Estimate allocates %.1f objects/op, want 0", allocs)
	}
}
