package distributed

import (
	"fmt"
	"sort"
	"sync"

	"setsketch/internal/core"
	"setsketch/internal/expr"
)

// Coordinator is the central site of Fig. 1: it accumulates synopses
// pushed by stream sites — merging multiple contributions to the same
// stream by sketch linearity — and answers set-expression cardinality
// queries over the merged collection. A Coordinator is safe for
// concurrent use.
type Coordinator struct {
	coins Coins

	mu    sync.RWMutex
	fams  map[string]*core.Family
	sites map[string]int // pushes accepted per site, for diagnostics
}

// NewCoordinator creates a coordinator expecting synopses built from
// the given coins.
func NewCoordinator(coins Coins) (*Coordinator, error) {
	if err := coins.Validate(); err != nil {
		return nil, err
	}
	return &Coordinator{
		coins: coins,
		fams:  make(map[string]*core.Family),
		sites: make(map[string]int),
	}, nil
}

// Coins returns the coordinator's expected coins.
func (c *Coordinator) Coins() Coins { return c.coins }

// Push merges a site's synopsis for one stream into the coordinator's
// state. Contributions to the same stream from different sites add up
// to the synopsis of the full stream (linearity); synopses built with
// the wrong coins are rejected with core.ErrNotAligned.
func (c *Coordinator) Push(site, stream string, fam *core.Family) error {
	if fam == nil {
		return fmt.Errorf("distributed: nil synopsis from site %q", site)
	}
	if fam.Config() != c.coins.Config || fam.Seed() != c.coins.Seed || fam.Copies() != c.coins.Copies {
		return core.ErrNotAligned
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	cur, ok := c.fams[stream]
	if !ok {
		cur, _ = c.coins.NewFamily() // coins validated at construction
		c.fams[stream] = cur
	}
	if err := cur.Merge(fam); err != nil {
		return err
	}
	c.sites[site]++
	return nil
}

// PushSnapshot pushes every stream of a site snapshot.
func (c *Coordinator) PushSnapshot(site string, snap map[string]*core.Family) error {
	// Deterministic order so a failure is reproducible.
	names := make([]string, 0, len(snap))
	for name := range snap {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if err := c.Push(site, name, snap[name]); err != nil {
			return fmt.Errorf("stream %q: %w", name, err)
		}
	}
	return nil
}

// Streams returns the names of all streams with merged synopses, sorted.
func (c *Coordinator) Streams() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.fams))
	for name := range c.fams {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Pushes returns how many synopsis pushes each site has contributed.
func (c *Coordinator) Pushes() map[string]int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make(map[string]int, len(c.sites))
	for k, v := range c.sites {
		out[k] = v
	}
	return out
}

// Estimate answers a set-expression cardinality query over the merged
// synopses (the paper's "Set-Expression Cardinality Query Processor").
func (c *Coordinator) Estimate(expression string, eps float64) (core.Estimate, error) {
	node, err := expr.Parse(expression)
	if err != nil {
		return core.Estimate{}, err
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	return core.EstimateExpressionMultiLevel(node, c.fams, eps)
}

// Family returns a deep copy of the merged synopsis for a stream, or
// nil if unknown.
func (c *Coordinator) Family(stream string) *core.Family {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if f, ok := c.fams[stream]; ok {
		return f.Clone()
	}
	return nil
}
