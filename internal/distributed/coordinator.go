package distributed

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"setsketch/internal/core"
	"setsketch/internal/cq"
	"setsketch/internal/datagen"
	"setsketch/internal/expr"
	"setsketch/internal/ingest"
	"setsketch/internal/obs"
	"setsketch/internal/wal"
)

// Coordinator is the central site of Fig. 1: it accumulates synopses
// pushed by stream sites — merging multiple contributions to the same
// stream by sketch linearity — and answers set-expression cardinality
// queries over the merged collection. It also hosts the standing
// continuous queries of watch.go, re-evaluated as updates accumulate.
// A Coordinator is safe for concurrent use; per-stream state is
// partitioned into lock-striped shards (shard.go) so sessions writing
// disjoint streams proceed in parallel.
type Coordinator struct {
	coins Coins

	met coordMetrics
	log *obs.Logger

	// estOpts tunes the core query kernel (worker-pool size). Set it
	// via SetEstimateOptions before the coordinator serves traffic,
	// like SetObservability.
	estOpts core.EstimateOptions

	// wlog, when set via AttachWAL, makes every accepted mutation
	// durable before it is applied (durability.go). Set before the
	// coordinator serves traffic; nil means durability is off.
	wlog *wal.Log

	// fence is the cross-shard consistency fence. Every mutation batch
	// holds it shared for its whole append+apply window (writers stay
	// concurrent with each other); whole-state operations — snapshots,
	// view-catalog changes, recovery installs — take it exclusively,
	// so they see no batch half-done anywhere and a WAL sequence
	// number consistent with every shard. Lock order: fence, then
	// shard mu (ascending), then vmu, then the WAL's internal lock.
	fence sync.RWMutex

	// shards stripe the merged per-stream state (fams, site accounting,
	// version stamps); see shard.go for the locking rules.
	shards    []coordShard
	shardMask uint64

	// read is the copy-on-write union of every shard's family map.
	// Published maps are immutable; a new map is built (under rmu, and
	// the creating stream's shard write lock) only when a stream first
	// appears, so the estimate path reads the whole collection with
	// one atomic load and zero allocations.
	read atomic.Pointer[map[string]*core.Family]
	rmu  sync.Mutex // serializes copy-on-write rebuilds of read

	// updates counts stream updates credited so far (watch triggers).
	// wal: state
	updates atomic.Uint64

	// vmu guards the continuous-view engine, which holds the view
	// catalog and all window/group sketch state (views.go). Batch
	// writers take it — inside their shard critical section, around
	// the WAL append — only when views exist, so the engine observes
	// mutations in log order; evaluation takes it shared.
	vmu sync.RWMutex
	// guarded by: vmu
	// wal: state
	cqe *cq.Engine
	// hasViews mirrors "the catalog is non-empty". It flips only while
	// the catalog change holds the fence exclusively, so a batch
	// (fence shared) can skip the whole view path with one load.
	hasViews atomic.Bool

	// dmu serializes the optional coordinator-side digest cache shared
	// by all sessions' Appliers (SetDigestCache); two short critical
	// sections per batch: probe and refill. nil dcache = cache off.
	dmu    sync.Mutex
	dcache *ingest.DigestCache

	// apool backs the one-off Coordinator.ApplyUpdates entry point;
	// streaming sessions hold their own Applier instead (stream.go).
	apool sync.Pool

	// cmu guards the ad-hoc query compile cache: Estimate(string) hits
	// it so repeated queries skip parse + compile. Watchers bypass it —
	// they hold their compiled queries from registration.
	cmu sync.Mutex
	// guarded by: cmu
	compileCache map[string]compiledExpr

	wmu sync.Mutex // guards the watcher registry; never taken under w.mu
	// guarded by: wmu
	watchers map[int]*Watcher
	// guarded by: wmu
	nextID int
}

// compiledExpr is one parse+compile result: the parsed node always,
// plus the compiled kernel query when the expression fits the packed
// occupancy word (≤ 64 distinct streams; q is nil otherwise and the
// interpreted path serves it).
type compiledExpr struct {
	src  string
	node expr.Node
	q    *core.Query
	// locks is the ascending, deduplicated list of shard indexes
	// owning the expression's referenced streams: the estimate path
	// RLocks exactly these, so reads are consistent against
	// multi-shard batches without touching unrelated stripes.
	locks []int
}

// compileCacheMax bounds the ad-hoc compile cache. Eviction is an
// arbitrary map entry — standing queries belong in watchers, which hold
// their programs directly, so the cache only needs to absorb ad-hoc
// query churn, not preserve recency.
const compileCacheMax = 1024

// coordMetrics is the coordinator's instrument set; per obs's contract
// every instrument works (uncollected) when no registry is attached.
type coordMetrics struct {
	deltasMerged         *obs.Counter
	rawBatches           *obs.Counter
	rawUpdates           *obs.Counter
	estimates            *obs.Counter
	estimateErrors       *obs.Counter
	estimateSecs         *obs.Histogram
	compileHits          *obs.Counter
	compileMisses        *obs.Counter
	digestCacheHits      *obs.Counter
	digestCacheMisses    *obs.Counter
	digestCacheEvictions *obs.Counter
	watchRounds          *obs.Counter
	watchEvals           *obs.Counter
	watchSkipped         *obs.Counter
	watchDelivered       *obs.Counter
	watchDropped         *obs.Counter
	watchSlowDrops       *obs.Counter
	cqViewRounds         *obs.Counter
	cqViewResults        *obs.Counter
	cqViewErrors         *obs.Counter
}

func newCoordMetrics(reg *obs.Registry) coordMetrics {
	return coordMetrics{
		deltasMerged: reg.Counter("coord_deltas_merged_total",
			"Synopsis deltas (and one-shot pushes) merged by linearity."),
		rawBatches: reg.Counter("coord_raw_update_batches_total",
			"Raw update batches sketched centrally (forward-mode sessions)."),
		rawUpdates: reg.Counter("coord_raw_updates_total",
			"Raw stream updates sketched centrally."),
		estimates: reg.Counter("coord_estimates_total",
			"Set-expression cardinality estimates computed."),
		estimateErrors: reg.Counter("coord_estimate_errors_total",
			"Estimates that failed (parse error, missing stream, no valid observations)."),
		estimateSecs: reg.Histogram("estimate_latency_seconds",
			"Set-expression estimate latency through the compiled query kernel (ad-hoc and watch rounds).", nil),
		compileHits: reg.Counter("coord_compile_cache_hits_total",
			"Ad-hoc estimate expressions served from the parse+compile cache."),
		compileMisses: reg.Counter("coord_compile_cache_misses_total",
			"Ad-hoc estimate expressions parsed and compiled fresh."),
		digestCacheHits: reg.Counter("coord_digest_cache_hits_total",
			"Raw-update digests served from the coordinator digest cache (hash bill skipped)."),
		digestCacheMisses: reg.Counter("coord_digest_cache_misses_total",
			"Coordinator digest-cache lookups that missed and were batch-computed on session scratch."),
		digestCacheEvictions: reg.Counter("coord_digest_cache_evictions_total",
			"Coordinator digest-cache slots overwritten by a colliding element (direct-mapped eviction)."),
		watchRounds: reg.Counter("watch_rounds_total",
			"Continuous-query evaluation rounds fired (update-count, interval, and Tick rounds)."),
		watchEvals: reg.Counter("watch_evaluations_total",
			"Individual watch-expression evaluations (rounds x expressions)."),
		watchSkipped: reg.Counter("watch_rounds_skipped_total",
			"Watch rounds skipped because no referenced family's version changed since the watcher's last evaluation."),
		watchDelivered: reg.Counter("watch_results_delivered_total",
			"Watch results enqueued to watcher channels."),
		watchDropped: reg.Counter("watch_results_dropped_total",
			"Watch results lost to full bounded watcher queues."),
		watchSlowDrops: reg.Counter("watch_slow_consumer_drops_total",
			"Watchers unregistered after exceeding MaxDrops consecutive losses."),
		cqViewRounds: reg.Counter("cq_view_rounds_total",
			"Continuous-view evaluation rounds run (one per watched view per fired round)."),
		cqViewResults: reg.Counter("cq_view_results_total",
			"Per-group continuous-view results delivered to watchers (after ISTREAM filtering)."),
		cqViewErrors: reg.Counter("cq_view_errors_total",
			"Continuous-view evaluations that failed (unknown view or per-group estimate error)."),
	}
}

// SetObservability attaches a metrics registry and logger to the
// coordinator, exporting the coord_*, watch_*, and estimator_* series
// documented in OPERATIONS.md. Call it once, before the coordinator
// serves traffic (and before SetDigestCache, which binds the cache
// counters at creation); either argument may be nil.
//
//sketchvet:wal-exempt pre-traffic setup: wires instruments, mutates no recovered state
func (c *Coordinator) SetObservability(reg *obs.Registry, log *obs.Logger) {
	c.met = newCoordMetrics(reg)
	c.log = log.Named("coord")
	c.vmu.Lock()
	c.cqe.SetObservability(reg, log)
	c.vmu.Unlock()
	reg.GaugeFunc("cq_views",
		"Continuous views registered in the catalog.",
		func() float64 {
			c.vmu.RLock()
			defer c.vmu.RUnlock()
			v, _, _ := c.cqe.Counts()
			return float64(v)
		})
	reg.GaugeFunc("cq_window_buckets",
		"Live (non-empty) window-ring buckets across all views and groups.",
		func() float64 {
			c.vmu.RLock()
			defer c.vmu.RUnlock()
			_, b, _ := c.cqe.Counts()
			return float64(b)
		})
	reg.GaugeFunc("cq_groups",
		"Live keyed groups across all grouped views (bounded by -cq-max-groups per view).",
		func() float64 {
			c.vmu.RLock()
			defer c.vmu.RUnlock()
			_, _, g := c.cqe.Counts()
			return float64(g)
		})
	reg.CounterFunc("coord_updates_credited_total",
		"Stream updates credited toward watch triggers (raw updates individually; deltas by reported counts).",
		c.Updates)
	reg.GaugeFunc("coord_streams",
		"Distinct streams with merged synopses.",
		func() float64 { return float64(len(*c.read.Load())) })
	reg.GaugeFunc("coord_shards",
		"Lock-striped state shards the coordinator is partitioned into (-shards).",
		func() float64 { return float64(len(c.shards)) })
	reg.GaugeFunc("watch_active",
		"Standing continuous queries currently registered.",
		func() float64 { return float64(c.Watchers()) })
	reg.GaugeFunc("watch_queue_occupancy",
		"Buffered results across all watcher queues (bounded; drops when full).",
		func() float64 {
			c.wmu.Lock()
			defer c.wmu.Unlock()
			n := 0
			for _, w := range c.watchers {
				n += len(w.ch)
			}
			return float64(n)
		})
	// The estimator quality counters live in core (the estimate path has
	// no coordinator handle); export them here so singleton-bucket hit
	// rate and witness yield ride along with the coordinator's series.
	for name, help := range map[string]string{
		"estimator_estimates_total":         "Witness-estimator invocations (expression/difference/intersection).",
		"estimator_no_observations_total":   "Estimates that found no valid witness observation (ErrNoObservations).",
		"estimator_singleton_checks_total":  "(copy, level) union-bucket singleton probes.",
		"estimator_singleton_hits_total":    "Probes that found a singleton union bucket (valid observations r').",
		"estimator_witnesses_total":         "Valid observations that witnessed the estimated expression.",
		"estimator_union_estimates_total":   "Union-estimator invocations, including internal u-hat sub-estimates.",
		"estimator_union_level_scans_total": "First-level bucket indices scanned by union estimators.",
	} {
		name := name
		reg.CounterFunc(name, help, func() uint64 { return core.Stats.Snapshot()[name] })
	}
}

// NewCoordinator creates a coordinator expecting synopses built from
// the given coins, partitioned into the GOMAXPROCS-derived default
// shard count (override with SetShards before serving traffic).
//
//sketchvet:wal-exempt construction: builds empty shards, nothing to log yet
func NewCoordinator(coins Coins) (*Coordinator, error) {
	if err := coins.Validate(); err != nil {
		return nil, err
	}
	cqe, err := cq.NewEngine(cq.Options{NewFamily: coins.NewFamily})
	if err != nil {
		return nil, err
	}
	c := &Coordinator{
		coins:        coins,
		met:          newCoordMetrics(nil), // unregistered instruments until SetObservability
		estOpts:      core.DefaultEstimateOptions(),
		cqe:          cqe,
		compileCache: make(map[string]compiledExpr),
		watchers:     make(map[int]*Watcher),
	}
	c.initShards(defaultShardCount())
	c.apool.New = func() any { return c.NewApplier() }
	return c, nil
}

// SetEstimateOptions tunes the query kernel for all estimates this
// coordinator computes (ad-hoc and watch rounds). Call it before the
// coordinator serves traffic; the default is one witness-scan worker
// per CPU.
func (c *Coordinator) SetEstimateOptions(opts core.EstimateOptions) {
	c.estOpts = opts
}

// Coins returns the coordinator's expected coins.
func (c *Coordinator) Coins() Coins { return c.coins }

// Push merges a site's synopsis for one stream into the coordinator's
// state. Contributions to the same stream from different sites add up
// to the synopsis of the full stream (linearity); synopses built with
// the wrong coins are rejected with core.ErrNotAligned.
func (c *Coordinator) Push(site, stream string, fam *core.Family) error {
	// A one-shot push does not report how many updates it summarizes;
	// credit one watch-trigger event.
	return c.ApplyDelta(site, stream, fam, 1)
}

// ApplyDelta merges a synopsis delta like Push and additionally credits
// count stream updates toward the continuous-query triggers — streaming
// sites report how many local updates each flushed delta summarizes, so
// update-count watch thresholds fire accurately in delta mode too.
//
//sketchvet:wal-handler
func (c *Coordinator) ApplyDelta(site, stream string, fam *core.Family, count uint64) error {
	if fam == nil {
		return fmt.Errorf("distributed: nil synopsis from site %q", site)
	}
	if fam.Config() != c.coins.Config || fam.Seed() != c.coins.Seed || fam.Copies() != c.coins.Copies {
		return core.ErrNotAligned
	}
	rec, err := c.deltaRecord(site, stream, fam, count) // nil when durability is off
	if err != nil {
		return err
	}
	lo := c.shardIndex(stream)
	hi := c.shardIndex(site)
	if lo > hi {
		lo, hi = hi, lo
	}
	c.fence.RLock()
	c.shards[lo].mu.Lock()
	if hi != lo {
		c.shards[hi].mu.Lock()
	}
	total, err := c.applyDeltaShards(rec, site, stream, fam, count)
	if hi != lo {
		c.shards[hi].mu.Unlock()
	}
	c.shards[lo].mu.Unlock()
	c.fence.RUnlock()
	if err != nil {
		return err // not logged or not applied: not acked
	}
	c.met.deltasMerged.Inc()
	c.evalDue(total)
	return nil
}

// applyDeltaShards logs and applies one synopsis delta under the
// stream's (and site stripe's) write locks: append-before-apply, with
// the view engine fed in log order when views exist.
// caller holds: mu
func (c *Coordinator) applyDeltaShards(rec *wal.Record, site, stream string, fam *core.Family, count uint64) (uint64, error) {
	if c.hasViews.Load() {
		c.vmu.Lock()
		err := c.logRecord(rec)
		if err == nil {
			err = c.cqe.MergeDelta(stream, fam)
		}
		c.vmu.Unlock()
		if err != nil {
			return 0, err
		}
	} else if err := c.logRecord(rec); err != nil {
		return 0, err
	}
	if err := c.mergeDeltaLocked(stream, fam); err != nil {
		return 0, err
	}
	return c.creditLocked(site, count), nil
}

// mergeDeltaLocked merges one delta synopsis into its stream's merged
// family, bumping the stripe's version stamp.
// caller holds: mu
func (c *Coordinator) mergeDeltaLocked(stream string, fam *core.Family) error {
	sh := c.shardFor(stream)
	if err := c.famLocked(sh, stream).Merge(fam); err != nil {
		return err
	}
	sh.version++
	return nil
}

// ApplyUpdates applies raw stream updates directly to the coordinator's
// synopses. One-off entry point that borrows a pooled Applier;
// streaming sessions hold their own (NewApplier) so batches on
// different connections never share digest scratch.
func (c *Coordinator) ApplyUpdates(site string, ups []datagen.Update) error {
	a := c.apool.Get().(*Applier)
	err := a.ApplyUpdates(site, ups)
	c.apool.Put(a)
	return err
}

// Updates returns how many stream updates have been credited so far
// (raw updates individually; pushes and deltas by their reported
// counts).
func (c *Coordinator) Updates() uint64 {
	return c.updates.Load()
}

// PushSnapshot pushes every stream of a site snapshot.
func (c *Coordinator) PushSnapshot(site string, snap map[string]*core.Family) error {
	// Deterministic order so a failure is reproducible.
	names := make([]string, 0, len(snap))
	for name := range snap {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if err := c.Push(site, name, snap[name]); err != nil {
			return fmt.Errorf("stream %q: %w", name, err)
		}
	}
	return nil
}

// Streams returns the names of all streams with merged synopses, sorted.
func (c *Coordinator) Streams() []string {
	fams := *c.read.Load()
	out := make([]string, 0, len(fams))
	for name := range fams {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Pushes returns how many synopsis pushes each site has contributed.
func (c *Coordinator) Pushes() map[string]int {
	out := make(map[string]int)
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.RLock()
		for k, v := range sh.sites {
			out[k] += v
		}
		sh.mu.RUnlock()
	}
	return out
}

// Estimate answers an ad-hoc set-expression cardinality query over the
// merged synopses (the paper's "Set-Expression Cardinality Query
// Processor"). The expression string is parsed and compiled at most
// once per process (bounded cache); standing queries should use Watch,
// which compiles at registration and never touches the cache.
func (c *Coordinator) Estimate(expression string, eps float64) (core.Estimate, error) {
	ce, err := c.compiled(expression)
	if err != nil {
		c.met.estimates.Inc()
		c.met.estimateErrors.Inc()
		return core.Estimate{}, err
	}
	return c.estimateCompiled(ce, eps)
}

// compiled returns the parse+compile result for an ad-hoc expression,
// consulting the bounded cache.
func (c *Coordinator) compiled(expression string) (compiledExpr, error) {
	c.cmu.Lock()
	ce, ok := c.compileCache[expression]
	c.cmu.Unlock()
	if ok {
		c.met.compileHits.Inc()
		return ce, nil
	}
	c.met.compileMisses.Inc()
	node, err := expr.Parse(expression)
	if err != nil {
		return compiledExpr{}, err
	}
	ce = compiledExpr{src: expression, node: node}
	// CompileQuery fails only for > 64 distinct streams; such
	// expressions run interpreted (q stays nil).
	if q, err := core.CompileQuery(node); err == nil {
		ce.q = q
	}
	ce.locks = c.shardLockSet(expr.Streams(node))
	c.cmu.Lock()
	if len(c.compileCache) >= compileCacheMax {
		for k := range c.compileCache {
			delete(c.compileCache, k)
			break
		}
	}
	c.compileCache[expression] = ce
	c.cmu.Unlock()
	return ce, nil
}

// estimateCompiled runs one estimate through the query kernel,
// recording latency and error metrics. Shared by ad-hoc queries and
// watch rounds. It RLocks only the shards owning the expression's
// referenced streams, in ascending order: batch writers hold all their
// destination shards for the whole append+apply window, so the reader
// either sees a batch entirely or not at all — the same consistency
// the old single state lock gave, without stalling writers on
// unrelated stripes.
func (c *Coordinator) estimateCompiled(ce compiledExpr, eps float64) (core.Estimate, error) {
	c.met.estimates.Inc()
	start := time.Now()
	for _, si := range ce.locks {
		c.shards[si].mu.RLock()
	}
	fams := *c.read.Load()
	var est core.Estimate
	var err error
	if ce.q != nil {
		est, err = ce.q.Estimate(fams, eps, true, c.estOpts)
	} else {
		est, err = core.EstimateExpressionOpts(ce.node, fams, eps, true, c.estOpts)
	}
	for _, si := range ce.locks {
		c.shards[si].mu.RUnlock()
	}
	c.met.estimateSecs.ObserveSince(start)
	if err != nil {
		c.met.estimateErrors.Inc()
		c.log.Debug("estimate failed", "expr", ce.src, "err", err)
	}
	return est, err
}

// streamVersions fills out[i] with a change stamp for names[i]: 0 when
// the stream has no merged synopsis yet, otherwise the family's
// mutation version offset by 1 (so appearance itself is a change).
// Watchers compare stamps between rounds to skip no-op re-evaluations.
func (c *Coordinator) streamVersions(names []string, out []uint64) {
	for i, name := range names {
		sh := c.shardFor(name)
		sh.mu.RLock()
		if f, ok := sh.fams[name]; ok {
			out[i] = f.Version() + 1
		} else {
			out[i] = 0
		}
		sh.mu.RUnlock()
	}
}

// Family returns a deep copy of the merged synopsis for a stream, or
// nil if unknown.
func (c *Coordinator) Family(stream string) *core.Family {
	sh := c.shardFor(stream)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if f, ok := sh.fams[stream]; ok {
		return f.Clone()
	}
	return nil
}
