package distributed

import (
	"fmt"
	"sort"
	"sync"

	"setsketch/internal/core"
	"setsketch/internal/datagen"
	"setsketch/internal/expr"
)

// Coordinator is the central site of Fig. 1: it accumulates synopses
// pushed by stream sites — merging multiple contributions to the same
// stream by sketch linearity — and answers set-expression cardinality
// queries over the merged collection. It also hosts the standing
// continuous queries of watch.go, re-evaluated as updates accumulate.
// A Coordinator is safe for concurrent use.
type Coordinator struct {
	coins Coins

	mu      sync.RWMutex
	fams    map[string]*core.Family
	sites   map[string]int // pushes accepted per site, for diagnostics
	updates uint64         // stream updates credited so far (watch triggers)

	wmu      sync.Mutex // guards the watcher registry; never taken under w.mu
	watchers map[int]*Watcher
	nextID   int
}

// NewCoordinator creates a coordinator expecting synopses built from
// the given coins.
func NewCoordinator(coins Coins) (*Coordinator, error) {
	if err := coins.Validate(); err != nil {
		return nil, err
	}
	return &Coordinator{
		coins:    coins,
		fams:     make(map[string]*core.Family),
		sites:    make(map[string]int),
		watchers: make(map[int]*Watcher),
	}, nil
}

// Coins returns the coordinator's expected coins.
func (c *Coordinator) Coins() Coins { return c.coins }

// Push merges a site's synopsis for one stream into the coordinator's
// state. Contributions to the same stream from different sites add up
// to the synopsis of the full stream (linearity); synopses built with
// the wrong coins are rejected with core.ErrNotAligned.
func (c *Coordinator) Push(site, stream string, fam *core.Family) error {
	// A one-shot push does not report how many updates it summarizes;
	// credit one watch-trigger event.
	return c.ApplyDelta(site, stream, fam, 1)
}

// ApplyDelta merges a synopsis delta like Push and additionally credits
// count stream updates toward the continuous-query triggers — streaming
// sites report how many local updates each flushed delta summarizes, so
// update-count watch thresholds fire accurately in delta mode too.
func (c *Coordinator) ApplyDelta(site, stream string, fam *core.Family, count uint64) error {
	if fam == nil {
		return fmt.Errorf("distributed: nil synopsis from site %q", site)
	}
	if fam.Config() != c.coins.Config || fam.Seed() != c.coins.Seed || fam.Copies() != c.coins.Copies {
		return core.ErrNotAligned
	}
	c.mu.Lock()
	cur, ok := c.fams[stream]
	if !ok {
		cur, _ = c.coins.NewFamily() // coins validated at construction
		c.fams[stream] = cur
	}
	if err := cur.Merge(fam); err != nil {
		c.mu.Unlock()
		return err
	}
	c.sites[site]++
	c.updates += count
	total := c.updates
	c.mu.Unlock()
	c.evalDue(total)
	return nil
}

// ApplyUpdates applies raw stream updates directly to the coordinator's
// synopses — the server side of a msgUpdateBatch streaming session,
// where thin clients forward updates for the coordinator to sketch
// centrally instead of sketching locally and shipping deltas.
func (c *Coordinator) ApplyUpdates(site string, ups []datagen.Update) error {
	if len(ups) == 0 {
		return nil
	}
	c.mu.Lock()
	for _, u := range ups {
		f, ok := c.fams[u.Stream]
		if !ok {
			f, _ = c.coins.NewFamily() // coins validated at construction
			c.fams[u.Stream] = f
		}
		f.Update(u.Elem, u.Delta)
	}
	c.sites[site]++
	c.updates += uint64(len(ups))
	total := c.updates
	c.mu.Unlock()
	c.evalDue(total)
	return nil
}

// Updates returns how many stream updates have been credited so far
// (raw updates individually; pushes and deltas by their reported
// counts).
func (c *Coordinator) Updates() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.updates
}

// PushSnapshot pushes every stream of a site snapshot.
func (c *Coordinator) PushSnapshot(site string, snap map[string]*core.Family) error {
	// Deterministic order so a failure is reproducible.
	names := make([]string, 0, len(snap))
	for name := range snap {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if err := c.Push(site, name, snap[name]); err != nil {
			return fmt.Errorf("stream %q: %w", name, err)
		}
	}
	return nil
}

// Streams returns the names of all streams with merged synopses, sorted.
func (c *Coordinator) Streams() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.fams))
	for name := range c.fams {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Pushes returns how many synopsis pushes each site has contributed.
func (c *Coordinator) Pushes() map[string]int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make(map[string]int, len(c.sites))
	for k, v := range c.sites {
		out[k] = v
	}
	return out
}

// Estimate answers a set-expression cardinality query over the merged
// synopses (the paper's "Set-Expression Cardinality Query Processor").
func (c *Coordinator) Estimate(expression string, eps float64) (core.Estimate, error) {
	node, err := expr.Parse(expression)
	if err != nil {
		return core.Estimate{}, err
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	return core.EstimateExpressionMultiLevel(node, c.fams, eps)
}

// Family returns a deep copy of the merged synopsis for a stream, or
// nil if unknown.
func (c *Coordinator) Family(stream string) *core.Family {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if f, ok := c.fams[stream]; ok {
		return f.Clone()
	}
	return nil
}
