package distributed

import (
	"testing"

	"setsketch/internal/core"
	"setsketch/internal/datagen"
	"setsketch/internal/obs"
)

// feedStream applies one insert to the named stream on the coordinator.
func feedStream(t *testing.T, coord *Coordinator, stream string, elem uint64) {
	t.Helper()
	if err := coord.ApplyUpdates("site", []datagen.Update{{Stream: stream, Elem: elem, Delta: 1}}); err != nil {
		t.Fatal(err)
	}
}

// TestWatchRoundSkip: a watcher whose referenced families have not
// changed since its last evaluated round is skipped (no evaluation, no
// delivery), counted in watch_rounds_skipped_total; rounds where a
// referenced stream moved evaluate as before.
func TestWatchRoundSkip(t *testing.T) {
	reg := obs.NewRegistry()
	coord, err := NewCoordinator(testCoins)
	if err != nil {
		t.Fatal(err)
	}
	coord.SetObservability(reg, nil)
	w, err := coord.Watch(WatchSpec{Exprs: []string{"A"}, Eps: 0.2, EveryUpdates: 1, Buffer: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	feedStream(t, coord, "A", 1) // round 1: A changed → evaluates
	feedStream(t, coord, "B", 2) // rounds 2–4: A untouched → skipped
	feedStream(t, coord, "B", 3)
	feedStream(t, coord, "B", 4)
	feedStream(t, coord, "A", 5) // round 5: A changed → evaluates

	counter := func(name string) uint64 { return reg.Counter(name, "").Value() }
	if got := counter("watch_rounds_total"); got != 2 {
		t.Errorf("watch rounds = %d, want 2", got)
	}
	if got := counter("watch_rounds_skipped_total"); got != 3 {
		t.Errorf("watch rounds skipped = %d, want 3", got)
	}
	if got := counter("watch_evaluations_total"); got != 2 {
		t.Errorf("watch evaluations = %d, want 2", got)
	}
	if got := counter("watch_results_delivered_total"); got != 2 {
		t.Errorf("results delivered = %d, want 2", got)
	}
	for i := 0; i < 2; i++ {
		res := <-w.C
		if res.Err != "" {
			t.Errorf("round %d: unexpected error %q", i, res.Err)
		}
	}
	select {
	case res := <-w.C:
		t.Errorf("unexpected extra result %+v", res)
	default:
	}
}

// TestWatchMissingStreamKeepsEvaluating: while a referenced stream has
// not appeared, every round must re-evaluate and deliver the error —
// skipping would silence the consumer's only signal.
func TestWatchMissingStreamKeepsEvaluating(t *testing.T) {
	reg := obs.NewRegistry()
	coord, err := NewCoordinator(testCoins)
	if err != nil {
		t.Fatal(err)
	}
	coord.SetObservability(reg, nil)
	w, err := coord.Watch(WatchSpec{Exprs: []string{"Nope"}, Eps: 0.2, EveryUpdates: 1, Buffer: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	for i := 0; i < 3; i++ {
		feedStream(t, coord, "A", uint64(i))
	}
	counter := func(name string) uint64 { return reg.Counter(name, "").Value() }
	if got := counter("watch_rounds_total"); got != 3 {
		t.Errorf("watch rounds = %d, want 3", got)
	}
	if got := counter("watch_rounds_skipped_total"); got != 0 {
		t.Errorf("watch rounds skipped = %d, want 0", got)
	}
	for i := 0; i < 3; i++ {
		if res := <-w.C; res.Err == "" {
			t.Errorf("round %d: want missing-stream error", i)
		}
	}
}

// TestCoordinatorCompileCache: repeated estimates of the same source
// text hit the compiled-query cache, and estimate latency lands in the
// estimate_latency_seconds histogram.
func TestCoordinatorCompileCache(t *testing.T) {
	reg := obs.NewRegistry()
	coord, err := NewCoordinator(testCoins)
	if err != nil {
		t.Fatal(err)
	}
	coord.SetObservability(reg, nil)
	for i := uint64(0); i < 50; i++ {
		feedStream(t, coord, "A", i)
		feedStream(t, coord, "B", i+25)
	}
	counter := func(name string) uint64 { return reg.Counter(name, "").Value() }
	for i := 0; i < 3; i++ {
		if _, err := coord.Estimate("A | B", 0.2); err != nil {
			t.Fatal(err)
		}
	}
	if got := counter("coord_compile_cache_misses_total"); got != 1 {
		t.Errorf("compile misses = %d, want 1", got)
	}
	if got := counter("coord_compile_cache_hits_total"); got != 2 {
		t.Errorf("compile hits = %d, want 2", got)
	}
	if got := reg.Histogram("estimate_latency_seconds", "", nil).Count(); got != 3 {
		t.Errorf("estimate latency observations = %d, want 3", got)
	}
	// A second source text is its own cache entry.
	if _, err := coord.Estimate("A & B", 0.2); err != nil {
		t.Fatal(err)
	}
	if got := counter("coord_compile_cache_misses_total"); got != 2 {
		t.Errorf("compile misses after new text = %d, want 2", got)
	}
}

// TestCoordinatorEstimateWorkers: serial and parallel coordinator
// estimates agree exactly.
func TestCoordinatorEstimateWorkers(t *testing.T) {
	serial, err := NewCoordinator(testCoins)
	if err != nil {
		t.Fatal(err)
	}
	serial.SetEstimateOptions(core.EstimateOptions{Workers: 0})
	parallel, err := NewCoordinator(testCoins)
	if err != nil {
		t.Fatal(err)
	}
	parallel.SetEstimateOptions(core.EstimateOptions{Workers: 8})
	for i := uint64(0); i < 400; i++ {
		feedStream(t, serial, "A", i)
		feedStream(t, parallel, "A", i)
		feedStream(t, serial, "B", i+200)
		feedStream(t, parallel, "B", i+200)
	}
	for _, src := range []string{"A | B", "A & B", "A - B", "A ^ B"} {
		a, err := serial.Estimate(src, 0.2)
		if err != nil {
			t.Fatal(err)
		}
		b, err := parallel.Estimate(src, 0.2)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Errorf("%s: serial %+v != parallel %+v", src, a, b)
		}
	}
}
