package distributed

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"setsketch/internal/core"
	"setsketch/internal/cq"
	"setsketch/internal/expr"
)

// Continuous queries: clients register set expressions once, and the
// coordinator re-evaluates them as the merged synopses evolve — every
// N credited updates, on a wall-clock interval, or on an explicit
// Tick — streaming each round of estimates to the watcher's bounded
// channel. This turns the paper's point-in-time "Set-Expression
// Cardinality Query Processor" into a standing-query engine over the
// live update stream.
//
// Delivery is strictly non-blocking: a consumer that stops draining
// its channel first loses results and, past MaxDrops consecutive
// losses, is unregistered and its channel closed — one slow watcher
// can never stall ingest or the other watchers.

// WatchSpec describes one standing continuous query registration.
type WatchSpec struct {
	// Exprs are the set expressions re-evaluated each round. All must
	// parse at registration time; streams they reference may appear
	// later (evaluation errors are reported per-round in Err).
	Exprs []string
	// Views names continuous views (CreateView) this watcher follows.
	// Every named view must exist at registration; rounds evaluate each
	// view per live group, honoring the view's window and emit mode. A
	// view dropped mid-watch reports an unknown-view error each round.
	Views []string
	// Eps is the accuracy parameter passed to the estimator.
	Eps float64
	// EveryUpdates re-evaluates after this many newly credited stream
	// updates. 0 disables update-driven rounds.
	EveryUpdates uint64
	// Interval adds wall-clock rounds on top of update-driven ones.
	// 0 disables timed rounds.
	Interval time.Duration
	// Buffer is the watcher's bounded result-queue length (default 16).
	Buffer int
	// MaxDrops is how many consecutive results may be lost to a full
	// queue before the watcher is dropped as a slow consumer
	// (default 8).
	MaxDrops int
}

// WatchResult is one continuous-query evaluation: either an ad-hoc
// expression round (Expr set) or one group of a continuous-view round
// (View set; Group "" for ungrouped views).
type WatchResult struct {
	Expr    string
	View    string // continuous-view name, for view rounds
	Group   string // group key of a grouped view's result
	Epoch   uint64 // evaluation round, per watcher
	Updates uint64 // coordinator update count when the round fired
	Est     core.Estimate
	// Delta is the signed change in the estimate since this group's
	// last emitted round (ISTREAM rounds only; RSTREAM leaves it 0).
	Delta float64
	Err   string // per-expression evaluation error, if any
}

// Watcher is one registered continuous query. Results arrive on C,
// which is closed when the watcher is dropped (slow consumer) or
// closed by either side.
type Watcher struct {
	C <-chan WatchResult

	c    *Coordinator
	id   int
	spec WatchSpec

	// queries holds the parsed + compiled form of spec.Exprs, built
	// once at registration and reused every round; streams is the
	// sorted union of streams they reference; views mirrors spec.Views.
	// All are immutable.
	queries []compiledExpr
	streams []string
	views   []string

	// lastEval and epoch are guarded by c.wmu, as are the round-skip
	// fields: evaluated ("at least one round ran") and lastVersions /
	// lastViewVersions (change stamps at the last evaluated round,
	// aligned with streams and views respectively).
	// guarded by: c.wmu
	lastEval, epoch uint64
	// guarded by: c.wmu
	evaluated, lastHadError bool
	// guarded by: c.wmu
	lastVersions, lastViewVersions []uint64
	// lastVals backs ISTREAM emit filtering: view name → group key →
	// last emitted estimate.
	// guarded by: c.wmu
	lastVals map[string]map[string]float64

	mu sync.Mutex // guards ch sends vs close; never hold c.wmu under it
	ch chan WatchResult
	// guarded by: mu
	drops int
	// guarded by: mu
	closed bool
	// guarded by: mu
	reason  string
	tickers chan struct{} // closed to stop the interval goroutine
}

// Watch registers a standing continuous query. Every expression must
// parse; at least one trigger (EveryUpdates or Interval) must be set.
//
// Delivery semantics: each watcher owns a bounded queue of
// spec.Buffer results, and the coordinator never blocks on it. A
// round evaluated while the queue is full is lost, and after
// spec.MaxDrops consecutive losses the watcher is unregistered and
// its channel closed — Reason() then describes the drop, and
// protocol clients receive it as a terminal error frame. Consumers
// that must not lose rounds should drain C promptly or size Buffer
// for their worst-case stall.
func (c *Coordinator) Watch(spec WatchSpec) (*Watcher, error) {
	if len(spec.Exprs) == 0 && len(spec.Views) == 0 {
		return nil, fmt.Errorf("distributed: watch registers no expressions or views")
	}
	for _, name := range spec.Views {
		// The nil check belongs under the same lock as the lookup:
		// SetCQOptions swaps the engine pointer.
		c.vmu.RLock()
		cqe := c.cqe
		known := cqe != nil && cqe.View(name) != nil
		c.vmu.RUnlock()
		if cqe == nil {
			return nil, fmt.Errorf("distributed: continuous views are not enabled")
		}
		if !known {
			return nil, fmt.Errorf("distributed: watch references unknown view %q", name)
		}
	}
	// Parse and compile every expression once here; rounds reuse the
	// compiled queries instead of re-parsing the strings.
	queries := make([]compiledExpr, 0, len(spec.Exprs))
	streamSet := make(map[string]struct{})
	for _, e := range spec.Exprs {
		node, err := expr.Parse(e)
		if err != nil {
			return nil, fmt.Errorf("distributed: watch expression %q: %w", e, err)
		}
		ce := compiledExpr{src: e, node: node}
		if q, err := core.CompileQuery(node); err == nil {
			ce.q = q
		}
		ce.locks = c.shardLockSet(expr.Streams(node))
		queries = append(queries, ce)
		for _, name := range expr.Streams(node) {
			streamSet[name] = struct{}{}
		}
	}
	streams := make([]string, 0, len(streamSet))
	for name := range streamSet {
		streams = append(streams, name)
	}
	sort.Strings(streams)
	if spec.EveryUpdates == 0 && spec.Interval <= 0 {
		return nil, fmt.Errorf("distributed: watch needs EveryUpdates or Interval")
	}
	if spec.Eps <= 0 {
		spec.Eps = 0.1
	}
	if spec.Buffer <= 0 {
		spec.Buffer = 16
	}
	if spec.MaxDrops <= 0 {
		spec.MaxDrops = 8
	}
	w := &Watcher{
		c:                c,
		spec:             spec,
		queries:          queries,
		streams:          streams,
		views:            append([]string(nil), spec.Views...),
		lastVersions:     make([]uint64, len(streams)),
		lastViewVersions: make([]uint64, len(spec.Views)),
		lastVals:         make(map[string]map[string]float64),
		ch:               make(chan WatchResult, spec.Buffer),
		tickers:          make(chan struct{}),
	}
	w.C = w.ch
	c.wmu.Lock()
	w.id = c.nextID
	c.nextID++
	w.lastEval = c.Updates()
	c.watchers[w.id] = w
	c.wmu.Unlock()
	if spec.Interval > 0 {
		go w.runTicker()
	}
	return w, nil
}

func (w *Watcher) runTicker() {
	t := time.NewTicker(w.spec.Interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			w.c.evalWatcher(w, true)
		case <-w.tickers:
			return
		}
	}
}

// Close unregisters the watcher and closes its channel. Safe to call
// from either side, multiple times.
func (w *Watcher) Close() { w.drop("closed") }

// Reason reports why the watcher's channel closed ("" while open,
// "closed" after Close, or a slow-consumer description).
func (w *Watcher) Reason() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.reason
}

// Dropped reports how many results have been lost to a full queue in
// the current consecutive run.
func (w *Watcher) Dropped() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.drops
}

// drop closes the watcher with a reason and unregisters it.
func (w *Watcher) drop(reason string) {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return
	}
	w.closed = true
	w.reason = reason
	close(w.ch)
	close(w.tickers)
	w.mu.Unlock()
	w.c.wmu.Lock()
	delete(w.c.watchers, w.id)
	w.c.wmu.Unlock()
	if reason != "closed" {
		w.c.log.Warn("watcher dropped", "id", w.id, "reason", reason)
	}
}

// CloseWatchers drops every registered watcher with the given reason,
// closing their channels. Protocol sessions relay the reason to their
// clients as a terminal error frame, so a shutting-down coordinator
// should call this before tearing down connections.
func (c *Coordinator) CloseWatchers(reason string) {
	c.wmu.Lock()
	all := make([]*Watcher, 0, len(c.watchers))
	for _, w := range c.watchers {
		all = append(all, w)
	}
	c.wmu.Unlock()
	for _, w := range all {
		w.drop(reason)
	}
}

// deliver enqueues one result without ever blocking. A full queue
// drops the result; MaxDrops consecutive losses drop the watcher.
func (w *Watcher) deliver(res WatchResult) {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return
	}
	select {
	case w.ch <- res:
		w.drops = 0
		w.mu.Unlock()
		w.c.met.watchDelivered.Inc()
	default: // queue full: lose the result, never block ingest
		w.drops++
		over := w.drops > w.spec.MaxDrops
		drops := w.drops
		w.mu.Unlock()
		w.c.met.watchDropped.Inc()
		if over {
			w.c.met.watchSlowDrops.Inc()
			w.drop(fmt.Sprintf("slow consumer: %d consecutive results dropped", drops))
		}
	}
}

// evalDue runs an evaluation round for every watcher whose
// update-count threshold has been crossed. Called after mutations,
// without c.mu held.
func (c *Coordinator) evalDue(total uint64) {
	var due []*Watcher
	c.wmu.Lock()
	for _, w := range c.watchers {
		if w.spec.EveryUpdates > 0 && total-w.lastEval >= w.spec.EveryUpdates {
			w.lastEval = total
			w.epoch++
			due = append(due, w)
		}
	}
	c.wmu.Unlock()
	for _, w := range due {
		c.evalRound(w)
	}
}

// evalWatcher runs one evaluation round for a single watcher; force
// rounds (ticks) fire regardless of the update threshold.
func (c *Coordinator) evalWatcher(w *Watcher, force bool) {
	total := c.Updates()
	c.wmu.Lock()
	if _, ok := c.watchers[w.id]; !ok {
		c.wmu.Unlock()
		return
	}
	if !force && (w.spec.EveryUpdates == 0 || total-w.lastEval < w.spec.EveryUpdates) {
		c.wmu.Unlock()
		return
	}
	w.lastEval = total
	w.epoch++
	c.wmu.Unlock()
	c.evalRound(w)
}

// evalRound evaluates all of a watcher's expressions once and delivers
// the results — unless nothing the watcher reads has changed since its
// last evaluated round, in which case the round is skipped (counted in
// watch_rounds_skipped_total, no delivery). The first round always
// evaluates, and rounds whose previous evaluation reported any
// per-expression error keep re-evaluating (the error, e.g. a stream
// that has not appeared yet, must keep reaching the consumer).
// Versions are sampled before evaluating, so updates racing with the
// evaluation re-trigger the next round rather than being lost.
func (c *Coordinator) evalRound(w *Watcher) {
	// Windowed views age by rotation: sweep before sampling versions so
	// an eviction due now is visible to this round, not the next.
	if len(w.views) > 0 {
		c.RotateViews()
	}
	versions := make([]uint64, len(w.streams))
	c.streamVersions(w.streams, versions)
	viewVersions := make([]uint64, len(w.views))
	c.viewVersions(w.views, viewVersions)
	c.wmu.Lock()
	epoch := w.epoch
	skip := w.evaluated && !w.lastHadError &&
		versionsEqual(versions, w.lastVersions) &&
		versionsEqual(viewVersions, w.lastViewVersions)
	if !skip {
		w.evaluated = true
		copy(w.lastVersions, versions)
		copy(w.lastViewVersions, viewVersions)
	}
	c.wmu.Unlock()
	if skip {
		c.met.watchSkipped.Inc()
		return
	}
	total := c.Updates()
	c.met.watchRounds.Inc()
	c.met.watchEvals.Add(uint64(len(w.queries)))
	hadErr := false
	for _, ce := range w.queries {
		res := WatchResult{Expr: ce.src, Epoch: epoch, Updates: total}
		est, err := c.estimateCompiled(ce, w.spec.Eps)
		if err != nil {
			res.Err = err.Error()
			hadErr = true
		} else {
			res.Est = est
		}
		w.deliver(res)
	}
	if c.evalViews(w, epoch, total) {
		hadErr = true
	}
	c.wmu.Lock()
	w.lastHadError = hadErr
	c.wmu.Unlock()
}

// evalViews runs one round over every view the watcher follows,
// delivering per-group results after the view's emit-mode filtering.
// It reports whether any result carried an error (which keeps the
// watcher re-evaluating every round until the error clears).
func (c *Coordinator) evalViews(w *Watcher, epoch, total uint64) bool {
	hadErr := false
	for _, name := range w.views {
		c.vmu.RLock()
		v := c.cqe.View(name)
		var results []cq.GroupResult
		var emit cq.EmitMode
		if v != nil {
			emit = v.Spec().Emit
			results = c.cqe.Evaluate(v, w.spec.Eps, c.estOpts)
		}
		c.vmu.RUnlock()
		c.met.cqViewRounds.Inc()
		if v == nil {
			hadErr = true
			c.met.cqViewErrors.Inc()
			w.deliver(WatchResult{View: name, Epoch: epoch, Updates: total,
				Err: fmt.Sprintf("unknown view %q", name)})
			continue
		}
		if emit == cq.EmitIStream {
			results = w.filterIStream(name, results)
		}
		for _, r := range results {
			if r.Err != "" {
				hadErr = true
				c.met.cqViewErrors.Inc()
			}
			w.deliver(WatchResult{View: name, Group: r.Group, Epoch: epoch,
				Updates: total, Est: r.Est, Delta: r.Delta, Err: r.Err})
		}
		c.met.cqViewResults.Add(uint64(len(results)))
	}
	return hadErr
}

// filterIStream keeps only groups whose estimate changed since the
// watcher last emitted them, stamping each survivor's Delta. Vanished
// groups (evicted, or aged to nothing) are forgotten — no retraction is
// emitted, and a reappearing group re-emits from zero.
func (w *Watcher) filterIStream(view string, results []cq.GroupResult) []cq.GroupResult {
	w.c.wmu.Lock()
	defer w.c.wmu.Unlock()
	last := w.lastVals[view]
	if last == nil {
		last = make(map[string]float64)
		w.lastVals[view] = last
	}
	seen := make(map[string]bool, len(results))
	out := make([]cq.GroupResult, 0, len(results))
	for _, r := range results {
		seen[r.Group] = true
		if r.Err != "" {
			out = append(out, r) // errors always reach the consumer
			continue
		}
		prev := last[r.Group]
		if _, ok := last[r.Group]; ok && prev == r.Est.Value {
			continue
		}
		r.Delta = r.Est.Value - prev
		last[r.Group] = r.Est.Value
		out = append(out, r)
	}
	for g := range last {
		if !seen[g] {
			delete(last, g)
		}
	}
	return out
}

func versionsEqual(a, b []uint64) bool {
	for i, v := range a {
		if v != b[i] {
			return false
		}
	}
	return true
}

// Tick forces an evaluation round for every registered watcher — the
// epoch tick of the continuous-query model, driven by whatever clock
// the embedding system prefers.
func (c *Coordinator) Tick() {
	c.wmu.Lock()
	due := make([]*Watcher, 0, len(c.watchers))
	for _, w := range c.watchers {
		w.epoch++
		due = append(due, w)
	}
	c.wmu.Unlock()
	for _, w := range due {
		c.evalRound(w)
	}
}

// Watchers reports how many continuous queries are registered.
func (c *Coordinator) Watchers() int {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return len(c.watchers)
}
